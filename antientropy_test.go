package antientropy_test

import (
	"context"
	"log/slog"
	"math"
	"testing"
	"time"

	"antientropy"
)

func TestFacadeSimulationQuickstart(t *testing.T) {
	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N:       1000,
		Cycles:  30,
		Seed:    1,
		Fn:      antientropy.Average,
		Init:    func(node int) float64 { return float64(node) },
		Overlay: antientropy.NewscastOverlay(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := engine.ParticipantMoments()
	if math.Abs(m.Mean()-499.5) > 1e-6 {
		t.Fatalf("mean = %g", m.Mean())
	}
	if m.Variance() > 1e-9 {
		t.Fatalf("variance = %g", m.Variance())
	}
}

func TestFacadeOverlays(t *testing.T) {
	overlays := map[string]antientropy.OverlayBuilder{
		"newscast":      antientropy.NewscastOverlay(20),
		"random":        antientropy.RandomOverlay(10),
		"complete":      antientropy.CompleteOverlay(),
		"complete-live": antientropy.CompleteLiveOverlay(),
		"watts-strogatz": antientropy.WattsStrogatzOverlay(
			10, 0.5),
		"scale-free": antientropy.ScaleFreeOverlay(5),
		"regular":    antientropy.RegularOverlay(10),
	}
	for name, ov := range overlays {
		t.Run(name, func(t *testing.T) {
			engine, err := antientropy.Simulate(antientropy.SimConfig{
				N: 300, Cycles: 25, Seed: 2,
				Fn:      antientropy.Average,
				Init:    antientropy.ConstInit(5),
				Overlay: ov,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := engine.ParticipantMoments()
			if math.Abs(m.Mean()-5) > 1e-9 {
				t.Fatalf("%s: mean %g", name, m.Mean())
			}
		})
	}
}

func TestFacadeFailureModels(t *testing.T) {
	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N: 500, Cycles: 10, Seed: 3,
		Fn:      antientropy.Average,
		Init:    antientropy.ConstInit(1),
		Overlay: antientropy.NewscastOverlay(20),
		Failures: []antientropy.FailureModel{
			antientropy.Churn{PerCycle: 5},
			antientropy.CrashCount{PerCycle: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if engine.AliveCount() != 500-20 {
		t.Fatalf("alive = %d", engine.AliveCount())
	}
}

func TestFacadeDerivedAggregates(t *testing.T) {
	if got := antientropy.SumFromAverage(2, 10); got != 20 {
		t.Fatalf("SumFromAverage = %g", got)
	}
	if got := antientropy.SizeFromAverage(0.001); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("SizeFromAverage = %g", got)
	}
	combined, err := antientropy.Combine([]float64{90, 100, 110})
	if err != nil || combined != 100 {
		t.Fatalf("Combine = %g, %v", combined, err)
	}
	if _, err := antientropy.FunctionByName("average"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCountExperimentViaVectorMode(t *testing.T) {
	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N: 800, Cycles: 30, Seed: 4,
		Dim:     1,
		Leaders: []int{0},
		Overlay: antientropy.NewscastOverlay(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := engine.SizeMoments()
	if math.Abs(sizes.Mean()-800) > 1 {
		t.Fatalf("size estimate = %g", sizes.Mean())
	}
}

func TestFacadeLiveCluster(t *testing.T) {
	net := antientropy.NewMemNetwork(antientropy.MemNetworkConfig{Seed: 5})
	defer net.Close()
	sched := antientropy.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    300 * time.Millisecond,
		CycleLen: 10 * time.Millisecond,
		Gamma:    30,
	}
	logger := slog.New(slog.NewTextHandler(nopWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))
	const n = 6
	endpoints := make([]antientropy.Endpoint, n)
	addrs := make([]string, n)
	for i := range endpoints {
		ep := net.Endpoint()
		endpoints[i] = ep
		addrs[i] = ep.Addr()
	}
	nodes := make([]*antientropy.Node, n)
	for i := range nodes {
		v := float64(i * 3)
		node, err := antientropy.NewNode(antientropy.NodeConfig{
			Endpoint:  endpoints[i],
			Schedule:  sched,
			Function:  antientropy.Average,
			Value:     func() float64 { return v },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    logger,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	want := 7.5 // mean of 0,3,6,9,12,15
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		done := 0
		for _, node := range nodes {
			if v, ok := node.Estimate(); ok && math.Abs(v-want) < 0.05 {
				done++
			}
		}
		if done == n {
			return
		}
	}
	t.Fatal("live cluster did not converge through the facade")
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestFacadeExperimentRegistry(t *testing.T) {
	exps := antientropy.Experiments()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	res, err := antientropy.RunExperiment("fig2", antientropy.ExperimentOptions{N: 500, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig2" || len(res.Series) != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
	if _, err := antientropy.RunExperiment("figXX", antientropy.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
