// Package antientropy is a Go implementation of the robust, proactive
// gossip aggregation protocols of Montresor, Jelasity & Babaoglu,
// "Robust Aggregation Protocols for Large-Scale Overlay Networks"
// (DSN 2004) — push-pull anti-entropy averaging with epochs, automatic
// restart, the multi-leader COUNT protocol, derived aggregates (SUM,
// PRODUCT, VARIANCE, network size), NEWSCAST membership, and the
// multi-instance robustness scheme.
//
// The package is a facade over the implementation packages:
//
//   - Simulation: Simulate runs the cycle-driven engine used to reproduce
//     every figure of the paper (see Experiments / RunExperiment).
//   - Deployment: NewNode runs a live node — active/passive goroutine
//     pair, real timeouts, epochs, joins — over an in-memory network
//     (NewMemNetwork) or UDP (ListenUDP).
//
// # Quick start (simulation)
//
//	engine, err := antientropy.Simulate(antientropy.SimConfig{
//	    N:       1000,
//	    Cycles:  30,
//	    Seed:    1,
//	    Fn:      antientropy.Average,
//	    Init:    func(node int) float64 { return float64(node) },
//	    Overlay: antientropy.NewscastOverlay(30),
//	})
//	m := engine.ParticipantMoments()
//	fmt.Println(m.Mean(), m.Variance()) // ≈ 499.5, ≈ 0
//
// # Quick start (live nodes)
//
//	net := antientropy.NewMemNetwork(antientropy.MemNetworkConfig{})
//	node, err := antientropy.NewNode(antientropy.NodeConfig{
//	    Endpoint: net.Endpoint(),
//	    Schedule: antientropy.Schedule{Start: anchor, Delta: 30 * time.Second,
//	        CycleLen: time.Second, Gamma: 30},
//	    Value:    readLocalLoad,
//	})
//	err = node.Start(ctx)
//	...
//	estimate, ok := node.Estimate()
package antientropy

import (
	"context"
	"io"
	"net/http"

	"antientropy/internal/agent"
	"antientropy/internal/core"
	"antientropy/internal/experiments"
	"antientropy/internal/obs"
	"antientropy/internal/overlay"
	"antientropy/internal/parsim"
	"antientropy/internal/scenario"
	"antientropy/internal/serve"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
	"antientropy/internal/topology"
	"antientropy/internal/transport"
)

// Aggregation functions (paper §3, §5).
type (
	// Function is a scalar aggregate: an elementary symmetric exchange
	// rule plus metadata.
	Function = core.Function
	// UpdateFunc is the elementary exchange step UPDATE(a, b).
	UpdateFunc = core.UpdateFunc
	// MapState is the COUNT protocol's leader → estimate map.
	MapState = core.MapState
	// LeaderID identifies a COUNT instance.
	LeaderID = core.LeaderID
)

// The scalar aggregates shipped with the library.
var (
	// Average computes the arithmetic mean (paper §3).
	Average = core.Average
	// Min propagates the global minimum (paper §5).
	Min = core.Min
	// Max propagates the global maximum (paper §5).
	Max = core.Max
	// GeometricMean converges to the geometric mean (paper §5).
	GeometricMean = core.GeometricMean
)

// FunctionByName resolves a scalar aggregate ("average", "min", "max",
// "geometric-mean").
func FunctionByName(name string) (Function, error) { return core.FunctionByName(name) }

// Derived aggregates (paper §5).
var (
	// SizeFromAverage converts a COUNT estimate into a network size.
	SizeFromAverage = core.SizeFromAverage
	// SumFromAverage composes SUM = average × size.
	SumFromAverage = core.SumFromAverage
	// VarianceFromMoments composes VARIANCE = E[x²] − E[x]².
	VarianceFromMoments = core.VarianceFromMoments
	// ProductFromGeometricMean composes PRODUCT = gm^N.
	ProductFromGeometricMean = core.ProductFromGeometricMean
	// Combine is the §7.3 multi-instance trimmed-mean combiner.
	Combine = core.Combine
)

// Pluggable combiners — the merge-policy half of the defense API.
type (
	// Combiner reduces a set of estimate samples to one value: the
	// pluggable merge policy shared by the §7.3 multi-instance
	// combination and the per-exchange defended merge (MergeGuard).
	Combiner = core.Combiner
	// CombinerMean is the undefended arithmetic-mean combiner.
	CombinerMean = core.Mean
	// CombinerClampedMean clamps samples into [Min, Max] then averages.
	CombinerClampedMean = core.ClampedMean
	// CombinerMedianOfK is the outlier-rejecting median combiner.
	CombinerMedianOfK = core.MedianOfK
	// CombinerTrimmedMean is the paper's §7.3 trimmed mean.
	CombinerTrimmedMean = core.TrimmedMean
	// MergeGuard applies a Combiner to the pairwise push-pull merge over
	// a window of recent peer samples.
	MergeGuard = core.MergeGuard
)

// CombinerByName resolves a combiner name ("mean", "clamped-mean",
// "median-of-k", "trimmed-mean"); clamp bounds apply to "clamped-mean".
func CombinerByName(name string, clampMin, clampMax float64) (Combiner, error) {
	return core.CombinerByName(name, clampMin, clampMax)
}

// NewMergeGuard builds a defended-merge guard over n node slots with a
// per-merge sample budget of k (k < 2 selects core.DefaultMergeK).
func NewMergeGuard(c Combiner, k, n int) *MergeGuard { return core.NewMergeGuard(c, k, n) }

// Simulation API (the paper's PeerSim-equivalent substrate).
type (
	// SimConfig configures one simulated epoch.
	SimConfig = sim.Config
	// SimEngine is a running/finished simulation.
	SimEngine = sim.Engine
	// OverlayBuilder constructs the overlay for a simulation run.
	OverlayBuilder = sim.OverlayBuilder
	// FailureModel injects crashes/churn at cycle starts.
	FailureModel = sim.FailureModel
	// Moments is a streaming mean/variance/min/max accumulator.
	Moments = stats.Moments
	// RNG is the deterministic generator used throughout.
	RNG = stats.RNG
)

// Failure models of §6/§7.
type (
	// CrashFraction crashes a proportion P_f of live nodes per cycle.
	CrashFraction = sim.CrashFraction
	// SuddenDeath crashes a fraction of the network at one cycle.
	SuddenDeath = sim.SuddenDeath
	// Churn substitutes a fixed number of nodes per cycle.
	Churn = sim.Churn
	// CrashCount crashes a fixed number of nodes per cycle.
	CrashCount = sim.CrashCount
)

// Simulate validates cfg and runs all configured cycles.
func Simulate(cfg SimConfig) (*SimEngine, error) { return sim.Run(cfg) }

// Derived aggregates composed from concurrent protocol instances (§5).
type (
	// DerivedConfig parameterizes a composed aggregate simulation.
	DerivedConfig = sim.DerivedConfig
	// DerivedResult carries per-node combined estimates.
	DerivedResult = sim.DerivedResult
)

// SimulateSum estimates Σ values = average × network size (§5).
func SimulateSum(cfg DerivedConfig) (*DerivedResult, error) { return sim.RunSum(cfg) }

// SimulateVariance estimates Var(values) = E[x²] − E[x]² (§5).
func SimulateVariance(cfg DerivedConfig) (*DerivedResult, error) { return sim.RunVariance(cfg) }

// SimulateProduct estimates Π values = geometric-mean^N (§5).
func SimulateProduct(cfg DerivedConfig) (*DerivedResult, error) { return sim.RunProduct(cfg) }

// Multi-epoch simulation (§4.1 automatic restart, §5 COUNT lifecycle).
type (
	// EpochChainConfig drives consecutive AVERAGE epochs over changing
	// values.
	EpochChainConfig = sim.EpochChainConfig
	// EpochResult is one epoch's outcome.
	EpochResult = sim.EpochResult
	// CountChainConfig drives the COUNT lifecycle: P_lead = C/N̂ leader
	// election fed by the previous epoch's estimate.
	CountChainConfig = sim.CountChainConfig
	// CountEpochResult is one COUNT epoch's outcome.
	CountEpochResult = sim.CountEpochResult
)

// SimulateEpochs runs consecutive restarting epochs of AVERAGE (§4.1).
func SimulateEpochs(cfg EpochChainConfig) ([]EpochResult, error) {
	return sim.RunEpochChain(cfg)
}

// SimulateCountEpochs runs the full COUNT lifecycle across epochs (§5).
func SimulateCountEpochs(cfg CountChainConfig) ([]CountEpochResult, error) {
	return sim.RunCountEpochChain(cfg)
}

// NewSimulation builds an engine without running it, for step-by-step
// control (Engine.Step).
func NewSimulation(cfg SimConfig) (*SimEngine, error) { return sim.New(cfg) }

// Sharded simulation API: the multi-core engine of internal/parsim,
// built for 10⁵–10⁶-node runs. The node space is split into K shards
// with per-shard RNG streams; results are bit-deterministic per
// (seed, shard count) and statistically equivalent across shard counts.
type (
	// ShardedConfig configures one sharded simulation run.
	ShardedConfig = parsim.Config
	// ShardedEngine is a running/finished sharded simulation.
	ShardedEngine = parsim.Engine
	// ShardedOverlaySpec selects the sharded overlay implementation.
	ShardedOverlaySpec = parsim.OverlaySpec
	// SimCore is the engine surface shared by the serial and the sharded
	// engine — what the scenario executor programs against.
	SimCore = sim.Core
)

// SimulateSharded validates cfg and runs all configured cycles on the
// sharded engine.
func SimulateSharded(cfg ShardedConfig) (*ShardedEngine, error) { return parsim.Run(cfg) }

// NewShardedSimulation builds a sharded engine without running it, for
// step-by-step control.
func NewShardedSimulation(cfg ShardedConfig) (*ShardedEngine, error) { return parsim.New(cfg) }

// ShardedNewscastOverlay selects the sharded NEWSCAST overlay with cache
// size c for a ShardedConfig.
func ShardedNewscastOverlay(c int) ShardedOverlaySpec { return parsim.Newscast(c) }

// ShardedCompleteLiveOverlay selects the fully connected overlay over
// the live membership for a ShardedConfig.
func ShardedCompleteLiveOverlay() ShardedOverlaySpec { return parsim.CompleteLive() }

// ShardedStaticOverlay selects a fixed generated topology for a
// ShardedConfig — the sharded counterpart of the static overlay
// builders (Watts–Strogatz, scale-free, random k-out, complete).
func ShardedStaticOverlay(build func(n int, rng *RNG) (topology.Graph, error)) ShardedOverlaySpec {
	return parsim.Static(build)
}

// ShardedNewscastFrozenOverlay selects a NEWSCAST overlay whose gossip
// is frozen after bootstrap (ablation A3) for a ShardedConfig.
func ShardedNewscastFrozenOverlay(c int) ShardedOverlaySpec { return parsim.NewscastFrozen(c) }

// NewRNG returns a deterministic random generator.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// Overlay builders.

// NewscastOverlay runs the NEWSCAST membership protocol with cache size c
// inside the simulation (paper §4.4).
func NewscastOverlay(c int) OverlayBuilder { return sim.Newscast(c) }

// RandomOverlay is a random graph where each node knows `degree` peers.
func RandomOverlay(degree int) OverlayBuilder { return experiments.RandomOverlay(degree) }

// CompleteOverlay is the static fully connected overlay.
func CompleteOverlay() OverlayBuilder { return experiments.CompleteOverlay() }

// CompleteLiveOverlay is fully connected over the *live* membership
// (crashed nodes vanish from everyone's neighbor sets).
func CompleteLiveOverlay() OverlayBuilder { return sim.CompleteLive() }

// WattsStrogatzOverlay is a small-world overlay with rewiring probability
// beta and even lattice degree k.
func WattsStrogatzOverlay(k int, beta float64) OverlayBuilder {
	return sim.StaticFunc(func(n int, rng *stats.RNG) (topology.Graph, error) {
		return topology.NewWattsStrogatz(n, k, beta, rng)
	})
}

// ScaleFreeOverlay is a Barabási–Albert preferential-attachment overlay
// with m edges per new node.
func ScaleFreeOverlay(m int) OverlayBuilder {
	return sim.StaticFunc(func(n int, rng *stats.RNG) (topology.Graph, error) {
		return topology.NewBarabasiAlbert(n, m, rng)
	})
}

// RegularOverlay is a random simple k-regular undirected overlay — the
// strictest reading of the paper's "regular degree of 20".
func RegularOverlay(k int) OverlayBuilder {
	return sim.StaticFunc(func(n int, rng *stats.RNG) (topology.Graph, error) {
		return topology.NewKRegular(n, k, rng)
	})
}

// Init helpers for SimConfig.Init.
var (
	// PeakInit gives one node `total` and everyone else 0 (paper §3).
	PeakInit = sim.PeakInit
	// ConstInit gives every node the same value.
	ConstInit = sim.ConstInit
	// UniformInit draws values uniformly from [lo, hi).
	UniformInit = sim.UniformInit
	// LinearInit assigns node i the value i.
	LinearInit = sim.LinearInit
)

// Live deployment API (paper §4 practical protocol).
type (
	// NodeConfig configures a live aggregation node.
	NodeConfig = agent.Config
	// Node is a running aggregation participant.
	Node = agent.Node
	// NodeMetrics counts a live node's protocol events.
	NodeMetrics = agent.Metrics
	// EpochOutput is one completed epoch's result.
	EpochOutput = agent.Output
	// Schedule fixes δ, Δ and γ (paper §4.1).
	Schedule = core.Schedule
	// Mode selects scalar aggregation or COUNT.
	Mode = agent.Mode
)

// Node modes.
const (
	// ModeScalar runs one scalar aggregate per epoch.
	ModeScalar = agent.ModeScalar
	// ModeCount estimates the network size (paper §5).
	ModeCount = agent.ModeCount
)

// NewNode validates cfg and builds a live node (start with Node.Start).
func NewNode(cfg NodeConfig) (*Node, error) { return agent.New(cfg) }

// Live telemetry (metrics registry, Prometheus export, exchange traces).
type (
	// MetricsRegistry names and exports a set of zero-allocation metric
	// instruments in the Prometheus text format.
	MetricsRegistry = obs.Registry
	// MetricsHistogram is a fixed-bucket histogram instrument.
	MetricsHistogram = obs.Histogram
	// TraceRing is a bounded ring of exchange-lifecycle trace events.
	TraceRing = obs.TraceRing
	// TraceEvent is one structured exchange-lifecycle event.
	TraceEvent = obs.TraceEvent
	// TraceSpan is one exchange's causally stitched event group: every
	// event sharing the initiator-stamped exchange identifier, classified
	// into an outcome with one-way-delay and round-trip estimates.
	TraceSpan = obs.Span
	// Timeline is the per-cycle flight recorder: a bounded ring of fleet
	// snapshots served at /debug/timeline.
	Timeline = obs.Timeline
	// TimelineEntry is one flight-recorder snapshot.
	TimelineEntry = obs.TimelineEntry
	// Health evaluates the fleet health rules once per cycle, exporting
	// agg_alerts_total / agg_alert_active and logging transitions.
	Health = obs.Health
	// HealthConfig tunes the health-rule thresholds.
	HealthConfig = obs.HealthConfig
	// HealthSample is one cycle's fleet state fed to the health rules.
	HealthSample = obs.HealthSample
	// TelemetryServer serves /metrics, /debug/trace, /debug/timeline and
	// /debug/pprof.
	TelemetryServer = obs.Server
)

// RTTBuckets are the default histogram bounds (seconds) for exchange
// round-trip latency.
var RTTBuckets = obs.RTTBuckets

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceRing builds a ring retaining the newest capacity exchange
// trace events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewTraceRing(capacity) }

// NewTimeline builds a flight recorder retaining the newest capacity
// per-cycle snapshots.
func NewTimeline(capacity int) *Timeline { return obs.NewTimeline(capacity) }

// NewHealth builds a health-rule engine, registering its alert metric
// families on reg (may be nil).
func NewHealth(reg *MetricsRegistry, cfg HealthConfig) *Health { return obs.NewHealth(reg, cfg) }

// StitchTraceSpans groups trace events by exchange identifier into
// causal cross-node spans, ordered by start time.
func StitchTraceSpans(events []TraceEvent) []TraceSpan { return obs.StitchSpans(events) }

// ServeTelemetry starts the telemetry HTTP server on addr, exposing reg
// on /metrics, trace (may be nil) on /debug/trace, timeline (may be
// nil) on /debug/timeline and the runtime profiles on /debug/pprof/.
// Close the returned server to stop it.
func ServeTelemetry(addr string, reg *MetricsRegistry, trace *TraceRing, timeline *Timeline) (*TelemetryServer, error) {
	return obs.Serve(addr, reg, trace, timeline)
}

// Aggregation-as-a-service layer (cmd/aggd): a registry of named
// aggregation instances — each an embedded fleet of live nodes — served
// over a versioned HTTP JSON API with per-tenant token-bucket admission
// control.
type (
	// ServeRegistry owns a daemon's live aggregation instances.
	ServeRegistry = serve.Registry
	// ServeRegistryConfig tunes a ServeRegistry.
	ServeRegistryConfig = serve.RegistryConfig
	// ServeInstance is one named, long-running hosted aggregate.
	ServeInstance = serve.Instance
	// ServeInstanceConfig describes one instance (mirrors the POST
	// /v1/instances body).
	ServeInstanceConfig = serve.InstanceConfig
	// ServeEstimate is the serving snapshot of one instance: estimate,
	// epoch, generation and the spread-derived confidence.
	ServeEstimate = serve.Estimate
	// ServeLimits are the static creation bounds (instance and fleet caps).
	ServeLimits = serve.Limits
	// ServeTransport selects the embedded fleets' wire.
	ServeTransport = serve.Transport
	// ServeAPI is the versioned /v1 HTTP JSON handler.
	ServeAPI = serve.API
	// ServeAPIConfig wires a ServeAPI.
	ServeAPIConfig = serve.APIConfig
	// ServeTenant is one API client population: name, key, limit.
	ServeTenant = serve.Tenant
	// ServeTenants resolves API keys to tenants.
	ServeTenants = serve.Tenants
	// ServeLimiter is per-tenant token-bucket admission control.
	ServeLimiter = serve.Limiter
	// ServeLimit is one tenant's token-bucket parameters.
	ServeLimit = serve.Limit
	// ServeMetrics is the agg_serve_* instrument set.
	ServeMetrics = serve.Metrics
)

// Fleet transports for ServeRegistryConfig.Transport.
const (
	// ServeTransportMem runs each instance fleet on its own in-memory
	// datagram network (the default).
	ServeTransportMem = serve.TransportMem
	// ServeTransportUDP runs each instance fleet on a shared batched UDP
	// mux over loopback sockets.
	ServeTransportUDP = serve.TransportUDP
)

// ServeFunctions lists the aggregation functions an instance can host
// ("average", "count", "sum", "variance").
func ServeFunctions() []string { return serve.Functions() }

// NewServeRegistry builds an empty instance registry.
func NewServeRegistry(cfg ServeRegistryConfig) *ServeRegistry { return serve.NewRegistry(cfg) }

// NewServeAPI builds the /v1 HTTP handler over a registry.
func NewServeAPI(cfg ServeAPIConfig) *ServeAPI { return serve.NewAPI(cfg) }

// NewServeTenants builds an API-key resolver. An empty list yields open
// single-user mode (every request admitted as the tenant "default").
func NewServeTenants(list []ServeTenant) (*ServeTenants, error) { return serve.NewTenants(list) }

// NewServeLimiter builds an empty admission limiter; seed it with
// ServeLimiter.SetLimit per tenant.
func NewServeLimiter() *ServeLimiter { return serve.NewLimiter() }

// NewServeMetrics registers the agg_serve_* families on reg (nil reg
// returns a no-op recorder).
func NewServeMetrics(reg *MetricsRegistry) *ServeMetrics { return serve.NewMetrics(reg) }

// ServeTelemetryWith starts the telemetry HTTP server with extra routes
// mounted on the same mux — how cmd/aggd serves its /v1 API next to
// /metrics and the /debug endpoints on one listener. mount (may be nil)
// runs before the server starts.
func ServeTelemetryWith(addr string, reg *MetricsRegistry, trace *TraceRing, timeline *Timeline, mount func(mux *http.ServeMux)) (*TelemetryServer, error) {
	return obs.ServeWith(addr, reg, trace, timeline, mount)
}

// RegisterNodeMetrics exposes aggregated node protocol counters on reg
// under the canonical agg_* names; snap is called at scrape time and
// returns the (summed) NodeMetrics of the population the process hosts.
func RegisterNodeMetrics(reg *MetricsRegistry, snap func() NodeMetrics) {
	agent.RegisterMetrics(reg, snap)
}

// Transports.
type (
	// Endpoint is a node's transport attachment.
	Endpoint = transport.Endpoint
	// MemNetwork is an in-memory datagram network with loss/latency/
	// partition injection.
	MemNetwork = transport.MemNetwork
	// MemNetworkConfig tunes the simulated network conditions.
	MemNetworkConfig = transport.MemNetworkConfig
	// UDPEndpoint is a real-network UDP endpoint.
	UDPEndpoint = transport.UDPEndpoint
	// UDPMux is a shared batched UDP datagram layer: many virtual
	// endpoints on a small fixed socket set with one pooled reader set.
	UDPMux = transport.UDPMux
	// UDPMuxConfig tunes a UDPMux (socket count, batch size, queues).
	UDPMuxConfig = transport.UDPMuxConfig
	// MuxEndpoint is one virtual endpoint of a UDPMux.
	MuxEndpoint = transport.MuxEndpoint
)

// NewMemNetwork creates an in-memory network.
func NewMemNetwork(cfg MemNetworkConfig) *MemNetwork { return transport.NewMemNetwork(cfg) }

// NewMemFleet opens n endpoints on an in-memory network and returns them
// together with their address list — the shared bootstrap contact set a
// founding deployment passes to every node. It replaces the
// endpoint-and-address collection loop every in-process deployment used
// to hand-roll before seeding the membership layer.
func NewMemFleet(net *MemNetwork, n int) ([]Endpoint, []string) {
	endpoints := make([]Endpoint, n)
	addrs := make([]string, n)
	for i := range endpoints {
		ep := net.Endpoint()
		endpoints[i] = ep
		addrs[i] = ep.Addr()
	}
	return endpoints, addrs
}

// ParseAddrList splits a comma-separated contact list ("a:1, b:2") into
// the address slice NodeConfig.Bootstrap/Seeds take, trimming blanks.
func ParseAddrList(s string) []string { return overlay.SplitAddrList(s) }

// ListenUDP opens a UDP endpoint ("host:port"; ":0" picks a free port).
func ListenUDP(listen string, queueLen int) (*UDPEndpoint, error) {
	return transport.ListenUDP(listen, queueLen)
}

// NewUDPMux opens a shared batched UDP layer. Endpoints created from it
// (UDPMux.Endpoint) are drop-in NodeConfig.Endpoint values: all nodes of
// the process then share the mux's sockets and reader goroutines, with
// recvmmsg/sendmmsg batching on Linux.
func NewUDPMux(cfg UDPMuxConfig) (*UDPMux, error) { return transport.NewUDPMux(cfg) }

// Experiment harness (reproduces every figure of the paper).
type (
	// Experiment is a registered paper figure or ablation.
	Experiment = experiments.Runner
	// ExperimentOptions scale an experiment (N, repetitions, seed).
	ExperimentOptions = experiments.Options
	// ExperimentResult is a regenerated figure.
	ExperimentResult = experiments.Result
)

// Experiments lists every registered experiment (fig2 … fig8b plus
// ablations and scenario-based figures), sorted by id.
func Experiments() []Experiment { return experiments.Registry() }

// Declarative scenario engine: scripted churn, partitions, loss/delay
// bursts and value dynamics driving both the simulator and the live
// runtime (see cmd/aggscen).
type (
	// Scenario is one declarative run description (JSON-loadable).
	Scenario = scenario.Scenario
	// ScenarioEvent is one timed intervention of a scenario.
	ScenarioEvent = scenario.Event
	// ScenarioRun is one executed scenario with per-cycle metrics.
	ScenarioRun = scenario.RunResult
	// ScenarioCycle is one cycle's metrics row.
	ScenarioCycle = scenario.CycleMetrics
	// ScenarioSimOptions tune the simulator executor (engine selection,
	// shard count, overlay override).
	ScenarioSimOptions = scenario.SimOptions
	// ScenarioLiveOptions tune the live-fleet executor.
	ScenarioLiveOptions = scenario.LiveOptions
	// ScenarioUDPOptions tune the multi-process UDP executor.
	ScenarioUDPOptions = scenario.UDPOptions
	// ScenarioDivergence summarizes how two executions of one scenario
	// differ cycle by cycle.
	ScenarioDivergence = scenario.Divergence
)

// Engine names for ScenarioSimOptions.Engine (and, with the same
// spelling, ExperimentOptions.Engine).
const (
	// ScenarioEngineSerial selects the serial engine of internal/sim.
	ScenarioEngineSerial = scenario.EngineSerial
	// ScenarioEngineSharded selects the sharded engine of internal/parsim.
	ScenarioEngineSharded = scenario.EngineSharded
	// ScenarioEngineAuto selects the engine by network size: sharded at
	// AutoEngineThreshold node slots and above, serial below.
	ScenarioEngineAuto = scenario.EngineAuto
)

// AutoEngineThreshold is the network size at or above which engine
// auto-selection picks the sharded engine.
const AutoEngineThreshold = parsim.AutoEngineThreshold

// ScenarioCSVHeader is the column row of the scenario metric CSV stream.
const ScenarioCSVHeader = scenario.CSVHeader

// CannedScenarios returns the standard scenario library (steady churn,
// flash crowd, correlated crash, partition-and-heal, loss burst, value
// drift, rolling restart).
func CannedScenarios() []Scenario { return scenario.Canned() }

// ScenarioByName finds a canned scenario.
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// LoadScenario reads and validates one JSON scenario.
func LoadScenario(r io.Reader) (Scenario, error) { return scenario.Load(r) }

// RunScenarioSim executes a scenario deterministically on the
// cycle-driven simulator (serial engine).
func RunScenarioSim(sc Scenario) (*ScenarioRun, error) { return scenario.RunSim(sc) }

// RunScenarioSimWith executes a scenario on the selected simulation
// engine: ScenarioEngineSerial or ScenarioEngineSharded with a shard
// count (deterministic per seed + shard count).
func RunScenarioSimWith(sc Scenario, opts ScenarioSimOptions) (*ScenarioRun, error) {
	return scenario.RunSimWith(sc, opts)
}

// DivergeScenarioRuns computes the per-cycle divergence of two runs of
// the same scenario — typically one simulator run and one live-fleet
// run, whose metric streams share the CSV schema and the scripted value
// signal.
func DivergeScenarioRuns(a, b *ScenarioRun) ScenarioDivergence { return scenario.Diverge(a, b) }

// RunScenarioLive executes a scenario against a fleet of live nodes over
// the in-memory transport.
func RunScenarioLive(ctx context.Context, sc Scenario, opts ScenarioLiveOptions) (*ScenarioRun, error) {
	return scenario.RunLive(ctx, sc, opts)
}

// RunScenarioUDP executes a scenario against a fleet of live nodes on
// real UDP loopback sockets, sliced across worker processes. The
// supervisor coordinates cycle barriers and scripted events over the
// workers' stdin/stdout pipes and injects partitions and loss through
// per-process drop-rule filters (see transport.UDPFilter).
func RunScenarioUDP(ctx context.Context, sc Scenario, opts ScenarioUDPOptions) (*ScenarioRun, error) {
	return scenario.RunUDP(ctx, sc, opts)
}

// RunScenarioUDPWorker runs the worker half of the UDP executor on the
// given control channel (normally os.Stdin/os.Stdout). cmd/aggscen calls
// it in its hidden -worker mode; embedders whose binary cannot be
// re-executed with that flag point ScenarioUDPOptions.WorkerCmd at any
// program calling this.
func RunScenarioUDPWorker(in io.Reader, out io.Writer) error {
	return scenario.RunUDPWorker(in, out)
}

// ScenarioSchemaVersion is the current scenario JSON schema version.
// Version 2 added the adversary/defense section; version-1 documents
// still load but may not declare adversaries.
const ScenarioSchemaVersion = scenario.SchemaVersion

// Adversary model: scripted Byzantine behaviors, the defense
// configuration countering them, and the honest-twin bias report
// quantifying an attack's impact.
type (
	// ScenarioAdversary is one scripted Byzantine behavior of a
	// scenario (inject-extreme, lie-estimate, replay-stale,
	// sybil-flood).
	ScenarioAdversary = scenario.Adversary
	// ScenarioAdversaryBehavior names an adversary behavior.
	ScenarioAdversaryBehavior = scenario.Behavior
	// ScenarioDefense configures the countermeasures of a scenario:
	// the merge combiner (with clamp bounds and sample window) and the
	// epoch-scoped join cap.
	ScenarioDefense = scenario.Defense
	// ScenarioDecodeError is the typed error strict scenario decoding
	// returns on unknown fields or malformed JSON.
	ScenarioDecodeError = scenario.DecodeError
	// ScenarioBiasReport quantifies an attack's impact as the
	// per-cycle estimate bias of an attacked run against its honest
	// twin (same seed, adversaries stripped).
	ScenarioBiasReport = scenario.BiasReport
	// ScenarioTwinResult bundles an attacked run, its honest twin and
	// the bias report between them.
	ScenarioTwinResult = scenario.TwinResult
)

// Adversary behaviors for ScenarioAdversary.Behavior.
const (
	// ScenarioBehaviorInjectExtreme makes Byzantine nodes restart each
	// epoch with a huge local value.
	ScenarioBehaviorInjectExtreme = scenario.BehaviorInjectExtreme
	// ScenarioBehaviorLieEstimate makes Byzantine nodes lie about
	// their estimate on the wire (fixed value or amplified).
	ScenarioBehaviorLieEstimate = scenario.BehaviorLieEstimate
	// ScenarioBehaviorReplayStale makes Byzantine nodes replay a prior
	// epoch's estimate and epoch tag.
	ScenarioBehaviorReplayStale = scenario.BehaviorReplayStale
	// ScenarioBehaviorSybilFlood joins waves of attacker-controlled
	// identities each cycle.
	ScenarioBehaviorSybilFlood = scenario.BehaviorSybilFlood
)

// ScenarioBias compares an attacked run against its honest twin cycle by
// cycle. Both runs must cover the same cycle count (same scenario shape,
// same seed).
func ScenarioBias(attacked, honest *ScenarioRun) ScenarioBiasReport {
	return scenario.Bias(attacked, honest)
}

// RunScenarioSimWithTwin executes the scenario twice on the selected
// simulation engine — once with adversaries stripped (the honest twin),
// once as scripted — and reports the induced estimate bias. The twin
// shares the seed, so the bias isolates the attack's effect.
func RunScenarioSimWithTwin(sc Scenario, opts ScenarioSimOptions) (*ScenarioTwinResult, error) {
	return scenario.RunSimWithTwin(sc, opts)
}

// RunExperiment regenerates one figure by id.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	r, err := experiments.Lookup(id)
	if err != nil {
		return nil, err
	}
	return r.Run(opts)
}
