// Live network: real asynchronous nodes (goroutine active/passive thread
// pairs, §4 of the paper) gossiping over a lossy in-memory network with
// latency. Demonstrates epochs and automatic restart (the aggregate
// adapts when local values change), plus a §4.2 join: a node arriving
// mid-epoch waits for the next epoch before participating.
package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"sync/atomic"
	"time"

	"antientropy"
)

func main() {
	// A lossy, slow network: 1–5 ms latency and 5% message loss — the
	// protocol shrugs it off (§6.2, §7.2).
	net := antientropy.NewMemNetwork(antientropy.MemNetworkConfig{
		MinLatency: time.Millisecond,
		MaxLatency: 5 * time.Millisecond,
		Loss:       0.05,
		Seed:       1,
	})
	defer net.Close()

	schedule := antientropy.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    500 * time.Millisecond,
		CycleLen: 20 * time.Millisecond,
		Gamma:    25,
	}
	quiet := slog.New(slog.NewTextHandler(nop{}, &slog.HandlerOptions{Level: slog.LevelError}))

	// 16 sensors report a temperature; the fleet agrees on the average.
	const sensors = 16
	var temperature atomic.Int64 // shared "environment", degrees ×10
	temperature.Store(200)       // 20.0°C

	endpoints, addrs := antientropy.NewMemFleet(net, sensors)
	nodes := make([]*antientropy.Node, sensors)
	ctx := context.Background()
	for i := range nodes {
		offset := float64(i%5) - 2 // per-sensor bias −2…+2
		node, err := antientropy.NewNode(antientropy.NodeConfig{
			Endpoint:  endpoints[i],
			Schedule:  schedule,
			Function:  antientropy.Average,
			Value:     func() float64 { return float64(temperature.Load())/10 + offset },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quiet,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(ctx); err != nil {
			log.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()

	fmt.Printf("%d sensor nodes gossiping (δ=%v, Δ=%v, 5%% loss)\n\n",
		sensors, schedule.CycleLen, schedule.Delta)

	report := func(label string) {
		est, _ := nodes[0].Estimate()
		out, ok := nodes[0].LastOutput()
		fmt.Printf("%-28s current estimate %6.2f°C", label, est)
		if ok {
			fmt.Printf("   last epoch output %6.2f°C (epoch %d)", out.Value, out.Epoch)
		}
		fmt.Println()
	}

	time.Sleep(600 * time.Millisecond)
	report("after first epoch:")

	// The environment changes: automatic restart (§4.1) adapts the
	// estimate within one epoch.
	temperature.Store(300) // 30.0°C
	fmt.Println("\n>> temperature jumps to 30.0°C")
	time.Sleep(time.Second)
	report("one epoch later:")

	// A latecomer joins mid-epoch (§4.2): it waits for the next epoch.
	joiner, err := antientropy.NewNode(antientropy.NodeConfig{
		Endpoint: net.Endpoint(),
		Schedule: schedule,
		Function: antientropy.Average,
		Value:    func() float64 { return float64(temperature.Load()) / 10 },
		Seeds:    []string{addrs[0], addrs[1]},
		Seed:     99,
		Logger:   quiet,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := joiner.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer joiner.Stop()
	fmt.Printf("\n>> new node joins via seeds (participating: %v)\n", joiner.Participating())
	time.Sleep(time.Second)
	est, ok := joiner.Estimate()
	fmt.Printf("after the next epoch:        joiner participating=%v estimate %6.2f°C (ok=%v)\n",
		joiner.Participating(), est, ok)
	fmt.Printf("joiner peers known: %d\n", joiner.PeerCount())

	m := nodes[0].Metrics()
	fmt.Printf("\nnode 0 protocol counters: %+v\n", m)
}

type nop struct{}

func (nop) Write(p []byte) (int, error) { return len(p), nil }
