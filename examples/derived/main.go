// Derived aggregates: §5 of the paper shows how the basic averaging
// scheme composes into COUNT, SUM, VARIANCE and PRODUCT by running a few
// concurrent instances. This example computes all of them over one
// simulated network and compares with ground truth.
package main

import (
	"fmt"
	"log"
	"math"

	"antientropy"
)

func main() {
	const (
		n      = 10000
		cycles = 30
		seed   = 5
	)
	// Node i's measurement: positive, varied, known ground truth.
	values := func(i int) float64 { return 1 + float64(i%7)*0.25 }

	var sum, sumSq, logSum float64
	for i := 0; i < n; i++ {
		v := values(i)
		sum += v
		sumSq += v * v
		logSum += math.Log(v)
	}
	trueAvg := sum / n
	trueVar := sumSq/n - trueAvg*trueAvg
	trueGM := math.Exp(logSum / n)

	fmt.Printf("derived aggregates over %d nodes (30 gossip cycles each)\n\n", n)
	fmt.Printf("%-10s %16s %16s %10s\n", "aggregate", "estimated", "true", "rel.err")

	overlay := antientropy.NewscastOverlay(30)
	report := func(name string, got, want float64) {
		fmt.Printf("%-10s %16.6g %16.6g %9.2e\n", name, got, want, math.Abs(got-want)/math.Abs(want))
	}

	// COUNT: network size from a single peak instance.
	count, err := antientropy.Simulate(antientropy.SimConfig{
		N: n, Cycles: cycles, Seed: seed,
		Dim: 1, Leaders: []int{0},
		Overlay: overlay,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("count", count.SizeMoments().Mean(), n)

	// AVERAGE: the basic protocol.
	avg, err := antientropy.Simulate(antientropy.SimConfig{
		N: n, Cycles: cycles, Seed: seed + 1,
		Fn: antientropy.Average, Init: values,
		Overlay: overlay,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("average", avg.ParticipantMoments().Mean(), trueAvg)

	// SUM = average × size (two concurrent instances).
	sumRes, err := antientropy.SimulateSum(antientropy.DerivedConfig{
		N: n, Cycles: cycles, Seed: seed + 2,
		Values: values, Overlay: overlay, Leader: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("sum", sumRes.Estimates.Mean(), sum)

	// VARIANCE = E[x²] − E[x]² (two concurrent instances).
	varRes, err := antientropy.SimulateVariance(antientropy.DerivedConfig{
		N: n, Cycles: cycles, Seed: seed + 3,
		Values: values, Overlay: overlay, Leader: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("variance", varRes.Estimates.Mean(), trueVar)

	// GEOMETRIC MEAN: the √(ab) update rule.
	gm, err := antientropy.Simulate(antientropy.SimConfig{
		N: n, Cycles: cycles, Seed: seed + 4,
		Fn: antientropy.GeometricMean, Init: values,
		Overlay: overlay,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("geo-mean", gm.ParticipantMoments().Mean(), trueGM)

	// PRODUCT = gm^N — astronomically large here, so compare in log space.
	prodGM := gm.ParticipantMoments().Mean()
	prodSize := count.SizeMoments().Mean()
	logProduct := prodSize * math.Log(prodGM)
	fmt.Printf("%-10s %16s %16s %9.2e  (log-space: %.1f vs %.1f)\n",
		"product", "e^"+fmt.Sprintf("%.1f", logProduct), "e^"+fmt.Sprintf("%.1f", logSum),
		math.Abs(logProduct-logSum)/logSum, logProduct, logSum)

	fmt.Println("\nall aggregates derive from the same exchange primitive — the paper's §5 claim")
}
