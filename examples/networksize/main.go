// Network-size monitoring: the COUNT protocol (paper §5) estimates how
// many nodes a P2P system has, while nodes continuously crash and join
// (Figure 6b scenario). Multiple concurrent instances plus the §7.3
// trimmed-mean combiner keep the estimate robust.
package main

import (
	"fmt"
	"log"

	"antientropy"
)

func main() {
	const (
		n         = 20000
		cycles    = 30
		churn     = n / 100 // 1% of the network replaced every cycle
		instances = 20
	)

	fmt.Println("COUNT: decentralized network-size estimation under churn")
	fmt.Printf("%d nodes, %d substituted per cycle, %d concurrent instances\n\n", n, churn, instances)

	// Each instance is led by one node; here the leaders are spread
	// deterministically (a deployment uses the P_lead coin flip).
	leaders := make([]int, instances)
	for d := range leaders {
		leaders[d] = d * (n / instances)
	}

	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N:       n,
		Cycles:  cycles,
		Seed:    7,
		Dim:     instances,
		Leaders: leaders,
		Overlay: antientropy.NewscastOverlay(30),
		Failures: []antientropy.FailureModel{
			antientropy.Churn{PerCycle: churn},
		},
		Observe: func(cycle int, e *antientropy.SimEngine) {
			if cycle%5 != 0 || cycle == 0 {
				return
			}
			sizes := e.SizeMoments()
			fmt.Printf("cycle %2d: size estimate mean %9.1f  [min %9.1f, max %9.1f] over %d participants\n",
				cycle, sizes.Mean(), sizes.Min(), sizes.Max(), sizes.N())
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sizes := engine.SizeMoments()
	fmt.Printf("\ntrue size: %d (constant under churn)\n", n)
	fmt.Printf("estimated: %.1f (relative error %.2f%%)\n",
		sizes.Mean(), 100*(sizes.Mean()-n)/float64(n))
	fmt.Printf("%d of the original participants survived the epoch\n", sizes.N())
}
