// Load balancing: the paper's §1 motivating application. Knowing the
// global average load lets every node decide *locally* when to stop
// transferring load — a near-optimal scheme (their reference [6]).
//
// Phase 1 uses the aggregation protocol to give every node an estimate of
// the global average load. Phase 2 runs a naive pairwise balancer in
// which an overloaded node pushes its excess to a random underloaded
// neighbor, stopping as soon as it sits within a tolerance band around
// the learned average — no central coordinator anywhere.
package main

import (
	"fmt"
	"log"
	"math"

	"antientropy"
)

const (
	n         = 5000
	tolerance = 0.05 // stop when within 5% of the learned average
)

func main() {
	// Skewed initial loads: 10% of the nodes hold 90% of the work.
	loads := make([]float64, n)
	rng := antientropy.NewRNG(99)
	for i := range loads {
		if rng.Float64() < 0.1 {
			loads[i] = 90 + 20*rng.Float64()
		} else {
			loads[i] = 1 + 2*rng.Float64()
		}
	}
	trueAvg := mean(loads)
	fmt.Printf("load balancing over %d nodes; true average load %.3f\n", n, trueAvg)
	fmt.Printf("initial imbalance: max %.1f, min %.1f\n\n", maxOf(loads), minOf(loads))

	// Phase 1: every node learns the average through gossip.
	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N:       n,
		Cycles:  30,
		Seed:    1,
		Fn:      antientropy.Average,
		Init:    func(i int) float64 { return loads[i] },
		Overlay: antientropy.NewscastOverlay(30),
	})
	if err != nil {
		log.Fatal(err)
	}
	estimates := make([]float64, n)
	engine.ForEachParticipant(func(node int, v float64) { estimates[node] = v })
	fmt.Printf("phase 1 (30 gossip cycles): every node's average estimate ≈ %.3f\n\n", estimates[0])

	// Phase 2: local decisions only — an overloaded node splits its load
	// evenly with a random lighter peer (the same midpoint operation the
	// averaging protocol uses, so excess diffuses exponentially), and it
	// stops for good once it sits inside the tolerance band around ITS
	// OWN average estimate. The estimate is exactly the termination
	// criterion the paper's load-balancing reference needs: without it a
	// node cannot know locally whether the system is balanced.
	peers := antientropy.NewRNG(2)
	for round := 1; round <= 60; round++ {
		moved := 0.0
		for i := 0; i < n; i++ {
			target := estimates[i]
			if loads[i] <= target*(1+tolerance) {
				continue // balanced — purely local decision
			}
			j := peers.Intn(n)
			if j == i || loads[j] >= loads[i] {
				continue
			}
			mid := (loads[i] + loads[j]) / 2
			moved += loads[i] - mid
			loads[i], loads[j] = mid, mid
		}
		if round%5 == 0 || moved == 0 {
			fmt.Printf("round %2d: max load %8.3f  min load %7.3f  moved %9.3f\n",
				round, maxOf(loads), minOf(loads), moved)
		}
		if moved == 0 {
			break
		}
	}

	fmt.Printf("\nfinal spread: [%.3f, %.3f] around target %.3f (±%.0f%% band)\n",
		minOf(loads), maxOf(loads), trueAvg, tolerance*100)
	fmt.Printf("total load conserved: %.6f (initial %.6f)\n", mean(loads)*n, trueAvg*n)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Max(m, x)
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Min(m, x)
	}
	return m
}
