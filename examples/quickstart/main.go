// Quickstart: 1 000 simulated nodes compute their global average with the
// push-pull anti-entropy protocol and converge in ~30 cycles, reproducing
// the behaviour of Figure 2 of the DSN'04 paper in miniature.
package main

import (
	"fmt"
	"log"

	"antientropy"
)

func main() {
	const n = 1000

	fmt.Println("anti-entropy AVERAGE over a NEWSCAST overlay")
	fmt.Printf("%d nodes, node i holds value i (true average %.1f)\n\n", n, float64(n-1)/2)
	fmt.Printf("%5s %14s %14s %14s\n", "cycle", "min", "max", "variance")

	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N:       n,
		Cycles:  30,
		Seed:    1,
		Fn:      antientropy.Average,
		Init:    func(node int) float64 { return float64(node) },
		Overlay: antientropy.NewscastOverlay(30),
		Observe: func(cycle int, e *antientropy.SimEngine) {
			if cycle%3 != 0 {
				return
			}
			m := e.ParticipantMoments()
			fmt.Printf("%5d %14.6f %14.6f %14.3e\n", cycle, m.Min(), m.Max(), m.Variance())
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	m := engine.ParticipantMoments()
	fmt.Printf("\nfinal estimate at every node: %.6f (true average %.1f)\n", m.Mean(), float64(n-1)/2)
	fmt.Printf("exchange stats: %+v\n", engine.Metrics())
}
