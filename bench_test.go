// Benchmarks regenerating every table and figure of the DSN'04 paper at
// laptop scale (the paper shows behaviour is network-size independent;
// cmd/aggsim reruns any figure at the full 10⁵–10⁶ scale). Each figure
// benchmark prints the regenerated series once, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the paper's evaluation tables in one run. Micro-benchmarks
// cover the protocol's hot paths.
package antientropy_test

import (
	"sync"
	"testing"

	"antientropy"
	"antientropy/internal/baseline"
	"antientropy/internal/core"
	"antientropy/internal/experiments"
	"antientropy/internal/newscast"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
	"antientropy/internal/theory"
	"antientropy/internal/topology"
	"antientropy/internal/wire"
)

// Bench scale: large enough for the paper's shapes, small enough that the
// whole root-package run (all twelve figures plus ablations and micros)
// stays well inside go test's default 10-minute timeout.
const (
	benchN    = 8000
	benchReps = 3
)

// logOnce prints a figure's series a single time per benchmark.
var logOnce sync.Map

func runFigure(b *testing.B, id string, opts antientropy.ExperimentOptions) {
	b.Helper()
	var res *antientropy.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = antientropy.RunExperiment(id, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := logOnce.LoadOrStore(id, true); !done && res != nil {
		b.Logf("\n%s", res.String())
	}
}

func benchOpts() antientropy.ExperimentOptions {
	return antientropy.ExperimentOptions{N: benchN, Reps: benchReps}
}

func BenchmarkFig2AveragePeak(b *testing.B) {
	runFigure(b, "fig2", benchOpts())
}

func BenchmarkFig3aConvergenceVsSize(b *testing.B) {
	// N here is the sweep's maximum size.
	runFigure(b, "fig3a", antientropy.ExperimentOptions{N: benchN, Reps: 3})
}

func BenchmarkFig3bVarianceReduction(b *testing.B) {
	runFigure(b, "fig3b", antientropy.ExperimentOptions{N: benchN, Reps: 3})
}

func BenchmarkFig4aWattsStrogatzBeta(b *testing.B) {
	runFigure(b, "fig4a", antientropy.ExperimentOptions{N: benchN, Reps: 3})
}

func BenchmarkFig4bNewscastCacheSize(b *testing.B) {
	runFigure(b, "fig4b", antientropy.ExperimentOptions{N: benchN, Reps: 3})
}

func BenchmarkFig5CrashVariance(b *testing.B) {
	// Fig 5 estimates a variance across repetitions; it needs more reps
	// than the envelope figures (EXPERIMENTS.md records a 100-rep run).
	runFigure(b, "fig5", antientropy.ExperimentOptions{N: benchN, Reps: 25})
}

func BenchmarkFig6aSuddenDeath(b *testing.B) {
	runFigure(b, "fig6a", benchOpts())
}

func BenchmarkFig6bChurn(b *testing.B) {
	runFigure(b, "fig6b", benchOpts())
}

// BenchmarkFig6bSerialPacked pins the serial engine explicitly on the
// NEWSCAST-heaviest figure (COUNT under churn, cache exchanges every
// cycle): it tracks the serial overlay's packed-cache win in the CI
// bench artifact. Before the unified packed membership layer the serial
// run spent most of its time in the generic comparator-sorted cache
// merges.
func BenchmarkFig6bSerialPacked(b *testing.B) {
	opts := benchOpts()
	opts.Engine = experiments.EngineSerial
	runFigure(b, "fig6b", opts)
}

func BenchmarkFig7aLinkFailure(b *testing.B) {
	runFigure(b, "fig7a", benchOpts())
}

func BenchmarkFig7bMessageLoss(b *testing.B) {
	runFigure(b, "fig7b", benchOpts())
}

func BenchmarkFig8aMultiInstanceChurn(b *testing.B) {
	runFigure(b, "fig8a", benchOpts())
}

func BenchmarkFig8bMultiInstanceLoss(b *testing.B) {
	runFigure(b, "fig8b", benchOpts())
}

func BenchmarkAblationPushPull(b *testing.B) {
	runFigure(b, "ablation-pushpull", antientropy.ExperimentOptions{N: 5000, Reps: 3})
}

func BenchmarkAblationCombiner(b *testing.B) {
	runFigure(b, "ablation-combiner", antientropy.ExperimentOptions{N: 5000, Reps: 3})
}

func BenchmarkAblationPeerSelection(b *testing.B) {
	runFigure(b, "ablation-peer-selection", antientropy.ExperimentOptions{N: 5000, Reps: 3})
}

// --- Engine-agnostic figure sweeps on the sharded engine ---
//
// Reduced-scale reruns of a figure and an ablation with -engine sharded:
// the CI bench job times them next to their serial counterparts above
// (same N, same reps), so the figure-sweep perf baseline of both engines
// lands in the scenario-engine-bench artifact.

func BenchmarkFig2Sharded(b *testing.B) {
	runFigure(b, "fig2", antientropy.ExperimentOptions{
		N: benchN, Reps: benchReps,
		Engine: antientropy.ScenarioEngineSharded, Shards: 8,
	})
}

func BenchmarkAblationCombinerSharded(b *testing.B) {
	runFigure(b, "ablation-combiner", antientropy.ExperimentOptions{
		N: 5000, Reps: 3,
		Engine: antientropy.ScenarioEngineSharded, Shards: 8,
	})
}

// BenchmarkRhoTheory verifies the §3 headline result ρ ≈ 1/(2√e) and
// reports the measured factor as a metric.
func BenchmarkRhoTheory(b *testing.B) {
	var rho float64
	for i := 0; i < b.N; i++ {
		var tracker stats.ConvergenceTracker
		_, err := sim.Run(sim.Config{
			N: benchN, Cycles: 20, Seed: 1,
			Fn:      core.Average,
			Init:    sim.UniformInit(0, 1, 2),
			Overlay: experiments.RandomOverlay(20),
			Observe: func(_ int, e *sim.Engine) {
				m := e.ParticipantMoments()
				tracker.Record(m.Variance())
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		rho, err = tracker.AverageFactor(20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rho, "rho")
	b.ReportMetric(theory.RhoPushPull, "rho-theory")
}

// BenchmarkExchangeDistribution verifies §4.5: exchanges per node per
// cycle ≈ 1 + Poisson(1) (mean 2, variance 1).
func BenchmarkExchangeDistribution(b *testing.B) {
	var m stats.Moments
	for i := 0; i < b.N; i++ {
		e, err := sim.New(sim.Config{
			N: benchN, Cycles: 3, Seed: 3,
			Fn:             core.Average,
			Init:           sim.ConstInit(1),
			Overlay:        experiments.CompleteOverlay(),
			TrackExchanges: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		m = stats.Moments{}
		for c := 0; c < 3; c++ {
			e.Step()
			for node := 0; node < benchN; node++ {
				count, err := e.ExchangeCount(node)
				if err != nil {
					b.Fatal(err)
				}
				m.Add(float64(count))
			}
		}
	}
	b.ReportMetric(m.Mean(), "exchanges-mean")
	b.ReportMetric(m.Variance(), "exchanges-var")
}

// --- Scenario engine ---

// benchScenario runs the canned partition-and-heal scenario at the given
// size on the selected simulation engine — the perf baseline for the
// scenario path (hooks, exchange filter, per-cycle metrics).
func benchScenario(b *testing.B, n int, opts antientropy.ScenarioSimOptions) {
	b.Helper()
	sc, err := antientropy.ScenarioByName("partition-heal")
	if err != nil {
		b.Fatal(err)
	}
	sc.N = n
	var res *antientropy.ScenarioRun
	for i := 0; i < b.N; i++ {
		res, err = antientropy.RunScenarioSimWith(sc, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	final := res.Final()
	b.ReportMetric(final.RelError, "final-rel-err")
	b.ReportMetric(float64(res.TotalMessages())/float64(len(res.PerCycle)-1), "messages/cycle")
}

// BenchmarkScenarioPartitionHeal10k is the serial-engine baseline the
// sharded engine is measured against (see ROADMAP "perf baseline").
func BenchmarkScenarioPartitionHeal10k(b *testing.B) {
	benchScenario(b, 10000, antientropy.ScenarioSimOptions{})
}

// BenchmarkScenarioPartitionHeal10kSharded runs the same workload on the
// sharded engine at 8 shards: the acceptance bar is ≥3× over the serial
// engine on the same machine (typically far more — the flat packed
// NEWSCAST path wins even on one core, and the shards parallelize on
// top of that).
func BenchmarkScenarioPartitionHeal10kSharded(b *testing.B) {
	benchScenario(b, 10000, antientropy.ScenarioSimOptions{
		Engine: antientropy.ScenarioEngineSharded, Shards: 8,
	})
}

// BenchmarkScenarioPartitionHeal100kSharded is the scale benchmark the
// serial engine cannot reach in reasonable time: the full 90-cycle
// partition-heal scenario at 10⁵ nodes.
func BenchmarkScenarioPartitionHeal100kSharded(b *testing.B) {
	benchScenario(b, 100000, antientropy.ScenarioSimOptions{
		Engine: antientropy.ScenarioEngineSharded, Shards: 8,
	})
}

// --- Micro-benchmarks: protocol hot paths ---

func BenchmarkExchangeScalar(b *testing.B) {
	a, v := 1.0, 2.0
	for i := 0; i < b.N; i++ {
		a, v = core.Average.Update(a, v)
	}
	_ = a
}

func BenchmarkMapMerge(b *testing.B) {
	x := core.MapState{}
	y := core.MapState{}
	for l := core.LeaderID(0); l < 20; l++ {
		if l%2 == 0 {
			x[l] = float64(l)
		} else {
			y[l] = float64(l)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.Merge(x, y)
		_ = m
	}
}

func BenchmarkSimCycleRandomOverlay(b *testing.B) {
	e, err := sim.New(sim.Config{
		N: benchN, Cycles: 1 << 30, Seed: 1,
		Fn:      core.Average,
		Init:    sim.LinearInit(),
		Overlay: experiments.RandomOverlay(20),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(benchN), "exchanges/cycle")
}

func BenchmarkSimCycleNewscast(b *testing.B) {
	e, err := sim.New(sim.Config{
		N: benchN, Cycles: 1 << 30, Seed: 1,
		Fn:      core.Average,
		Init:    sim.LinearInit(),
		Overlay: sim.Newscast(30),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkSimCycleVector32(b *testing.B) {
	leaders := make([]int, 32)
	for d := range leaders {
		leaders[d] = d
	}
	e, err := sim.New(sim.Config{
		N: benchN, Cycles: 1 << 30, Seed: 1,
		Dim: 32, Leaders: leaders,
		Overlay: experiments.RandomOverlay(20),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkNewscastExchange(b *testing.B) {
	x, err := newscast.NewCache[int32](1, 30)
	if err != nil {
		b.Fatal(err)
	}
	y, err := newscast.NewCache[int32](2, 30)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 40; i++ {
		x.Absorb([]newscast.Entry[int32]{{Key: int32(rng.Intn(1000)), Stamp: int64(i)}})
		y.Absorb([]newscast.Entry[int32]{{Key: int32(rng.Intn(1000)), Stamp: int64(i)}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newscast.Exchange(x, y, int64(i))
	}
}

func BenchmarkTopologyRandomKOut(b *testing.B) {
	rng := stats.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := topology.NewRandomKOut(benchN, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyWattsStrogatz(b *testing.B) {
	rng := stats.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := topology.NewWattsStrogatz(benchN, 20, 0.25, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyBarabasiAlbert(b *testing.B) {
	rng := stats.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := topology.NewBarabasiAlbert(benchN, 10, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	msg := &wire.ExchangeRequest{
		From: "10.1.2.3:7000",
		Payload: wire.Payload{
			Seq: 1, Epoch: 42, FuncID: wire.FuncAverage, Scalar: 3.14,
			View: wire.ViewFrame{Kind: wire.ViewFull, Gen: 1, Entries: []wire.Descriptor{
				{Addr: "10.0.0.1:7000", Stamp: 1}, {Addr: "10.0.0.2:7000", Stamp: 2},
				{Addr: "10.0.0.3:7000", Stamp: 3}, {Addr: "10.0.0.4:7000", Stamp: 4},
			}},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPushSumRound(b *testing.B) {
	ps, err := baseline.NewPushSum(baseline.Config{
		N: benchN, Rounds: 1 << 30, Seed: 1,
		SInit:   func(i int) float64 { return float64(i) },
		WInit:   func(int) float64 { return 1 },
		Overlay: experiments.RandomOverlay(20),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Step()
	}
}

func BenchmarkTrimmedMeanCombine(b *testing.B) {
	rng := stats.NewRNG(1)
	ests := make([]float64, 50)
	for i := range ests {
		ests[i] = 1000 * rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Combine(ests); err != nil {
			b.Fatal(err)
		}
	}
}
