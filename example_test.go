package antientropy_test

import (
	"fmt"

	"antientropy"
)

// ExampleSimulate runs the basic AVERAGE protocol of §3: 1 000 nodes,
// each holding its index, agree on the global average in 30 cycles.
func ExampleSimulate() {
	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N:       1000,
		Cycles:  30,
		Seed:    1,
		Fn:      antientropy.Average,
		Init:    func(node int) float64 { return float64(node) },
		Overlay: antientropy.RandomOverlay(20),
	})
	if err != nil {
		panic(err)
	}
	m := engine.ParticipantMoments()
	converged := m.Max()-m.Min() < 0.001
	fmt.Printf("mean %.4f, all nodes agree: %v\n", m.Mean(), converged)
	// Output:
	// mean 499.5000, all nodes agree: true
}

// ExampleSimulate_count estimates the network size with the COUNT
// protocol (§5): one leader starts with 1, everyone else with 0, and
// every node ends up with 1/N.
func ExampleSimulate_count() {
	engine, err := antientropy.Simulate(antientropy.SimConfig{
		N:       5000,
		Cycles:  30,
		Seed:    2,
		Dim:     1,
		Leaders: []int{0},
		Overlay: antientropy.NewscastOverlay(30),
	})
	if err != nil {
		panic(err)
	}
	sizes := engine.SizeMoments()
	fmt.Printf("estimated size %.0f (true 5000)\n", sizes.Mean())
	// Output:
	// estimated size 5000 (true 5000)
}

// ExampleSimulateSum composes the SUM aggregate from an averaging
// instance and a COUNT instance, as §5 prescribes.
func ExampleSimulateSum() {
	res, err := antientropy.SimulateSum(antientropy.DerivedConfig{
		N:       2000,
		Cycles:  30,
		Seed:    3,
		Values:  func(node int) float64 { return 2 }, // true sum 4000
		Overlay: antientropy.RandomOverlay(20),
		Leader:  0,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimated sum %.0f\n", res.Estimates.Mean())
	// Output:
	// estimated sum 4000
}

// ExampleCombine applies the §7.3 multi-instance combiner: the ⌊t/3⌋
// lowest and highest of t concurrent estimates are discarded before
// averaging, which removes the outlier here entirely.
func ExampleCombine() {
	estimates := []float64{98000, 101000, 99000, 2500000, 100000, 102000}
	robust, err := antientropy.Combine(estimates)
	if err != nil {
		panic(err)
	}
	fmt.Printf("combined estimate %.0f\n", robust)
	// Output:
	// combined estimate 100500
}

// ExampleRunExperiment regenerates a (scaled-down) paper figure.
func ExampleRunExperiment() {
	res, err := antientropy.RunExperiment("fig2", antientropy.ExperimentOptions{
		N:    1000,
		Reps: 2,
	})
	if err != nil {
		panic(err)
	}
	last := res.Series[0].Points[len(res.Series[0].Points)-1]
	fmt.Printf("%s: %d series, final %s point at cycle %.0f\n",
		res.ID, len(res.Series), res.Series[0].Label, last.X)
	// Output:
	// fig2: 2 series, final Minimum point at cycle 30
}
