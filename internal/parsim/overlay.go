package parsim

import (
	"fmt"

	"antientropy/internal/overlay"
	"antientropy/internal/stats"
	"antientropy/internal/topology"
)

// OverlaySpec selects the sharded overlay implementation for a run.
// Specs are descriptions, not instances: the engine builds the overlay
// against its own shard layout.
type OverlaySpec interface {
	build(e *Engine) (overlayImpl, error)
}

// overlayImpl is the engine's internal view of a sharded overlay.
// neighbor must only read the node's own view (it runs in the parallel
// phase); stepShard runs one shard's slice of the overlay round,
// deferring cross-shard work; flushCross drains the deferred work
// serially.
type overlayImpl interface {
	neighbor(node int, rng *stats.RNG) int
	stepShard(s *shard, cycle int)
	flushCross(cycle int)
	onJoin(node, cycle int, rng *stats.RNG)
}

// Newscast selects the sharded NEWSCAST overlay with cache size c
// (values below 1 fall back to the paper's recommended 30). It is the
// parallel equivalent of sim.Newscast: every cycle each live node
// initiates one cache exchange; exchanges with crashed peers are
// skipped, and the scenario partition filter vetoes gossip across a
// split exactly as it vetoes aggregation exchanges.
func Newscast(c int) OverlaySpec {
	if c < 1 {
		c = 30
	}
	return newscastSpec{c: c}
}

type newscastSpec struct{ c int }

func (sp newscastSpec) build(e *Engine) (overlayImpl, error) {
	t, err := overlay.NewTable(e.nodes, sp.c)
	if err != nil {
		return nil, err
	}
	o := &shardedNewscast{
		e:             e,
		t:             t,
		bootstrapSize: min(sp.c, e.nodes-1),
	}
	// Seed every cache with up to c distinct random peers (a warmed-up
	// overlay, as the paper's experiments assume). Seeding is sharded:
	// each shard seeds its own nodes from its own stream, so a 10⁶-node
	// build parallelizes like a cycle does.
	e.parallel(func(s *shard) {
		for i := s.lo; i < s.hi; i++ {
			t.At(i).SeedRandom(o.bootstrapSize, e.nodes, 0, s.rng)
		}
	})
	return o, nil
}

// shardedNewscast drives the unified packed membership layer
// (overlay.Table — one flat allocation-free view array, the identical
// representation and merge code the serial engine and the live agent
// use) through the engine's two-phase shard schedule.
type shardedNewscast struct {
	e *Engine
	t *overlay.Table

	// bootstrapSize is how many contacts a joiner or reseeded node gets.
	bootstrapSize int

	// scratch is the serial-phase merge buffer (flushCross, onJoin); the
	// parallel phase uses the per-shard scratch.
	scratch []uint64
}

// neighbor draws a uniform member of the node's current view.
func (o *shardedNewscast) neighbor(node int, rng *stats.RNG) int {
	return o.t.Neighbor(node, rng)
}

// stepShard runs one shard's gossip initiations: intra-shard exchanges
// apply immediately, cross-shard ones are deferred to flushCross. Only
// the initiator's own view is read to pick the peer, and only local
// caches are written, so the phase is race-free.
func (o *shardedNewscast) stepShard(s *shard, cycle int) {
	e := o.e
	s.gossip = s.gossip[:0]
	s.permute()
	for _, off := range s.perm {
		i := s.lo + int(off)
		if !e.alive.Contains(i) {
			continue
		}
		j := o.neighbor(i, s.rng)
		if j < 0 || !e.alive.Contains(j) {
			continue
		}
		if e.filter != nil && !e.filter(i, j) {
			continue
		}
		if e.shardOf(j) == s.index {
			s.scratch = o.t.Exchange(s.scratch, i, j, cycle)
		} else {
			s.gossip = append(s.gossip, crossPair{i: int32(i), j: int32(j)})
		}
	}
}

// flushCross applies the deferred cross-shard gossip exchanges in shard
// order — the deterministic merge step of the overlay round.
func (o *shardedNewscast) flushCross(cycle int) {
	for _, s := range o.e.shards {
		for _, p := range s.gossip {
			o.scratch = o.t.Exchange(o.scratch, int(p.i), int(p.j), cycle)
		}
	}
}

// onJoin reseeds the view of a node that took over a slot (churn, joins)
// or is being refreshed by a post-heal rendezvous. Like the serial
// overlay's bootstrap, contacts are drawn from the whole slot space, so
// a joiner may briefly hold a dead contact — NEWSCAST repairs that
// within a cycle or two.
func (o *shardedNewscast) onJoin(node, cycle int, rng *stats.RNG) {
	o.t.At(node).SeedRandom(o.bootstrapSize, o.e.nodes, int32(cycle), rng)
}

// CompleteLive selects the fully connected overlay over the live
// membership: every node can contact every other live node, the
// sharded equivalent of sim.CompleteLive.
func CompleteLive() OverlaySpec { return completeLiveSpec{} }

type completeLiveSpec struct{}

func (completeLiveSpec) build(e *Engine) (overlayImpl, error) { return &completeLive{e: e}, nil }

type completeLive struct{ e *Engine }

// neighbor rejection-samples a live peer different from the caller. The
// live set is only mutated in serial phases, so concurrent reads with
// per-shard RNGs are safe.
func (o *completeLive) neighbor(node int, rng *stats.RNG) int {
	if o.e.alive.Len() == 0 {
		return -1
	}
	for attempt := 0; attempt < 64; attempt++ {
		j := o.e.alive.Random(rng)
		if j != node {
			return j
		}
	}
	return -1
}

func (o *completeLive) stepShard(s *shard, cycle int)          {}
func (o *completeLive) flushCross(cycle int)                   {}
func (o *completeLive) onJoin(node, cycle int, rng *stats.RNG) {}

// NewscastFrozen selects a NEWSCAST overlay whose descriptor gossip is
// disabled after the bootstrap seeding (the A3 ablation): aggregation
// keeps sampling the same static random views. The sharded equivalent of
// sim.NewscastFrozen.
func NewscastFrozen(c int) OverlaySpec {
	if c < 1 {
		c = 30
	}
	return frozenNewscastSpec{c: c}
}

type frozenNewscastSpec struct{ c int }

func (sp frozenNewscastSpec) build(e *Engine) (overlayImpl, error) {
	inner, err := newscastSpec{c: sp.c}.build(e)
	if err != nil {
		return nil, err
	}
	return &frozenNewscast{shardedNewscast: inner.(*shardedNewscast)}, nil
}

// frozenNewscast keeps the seeded views but never gossips.
type frozenNewscast struct {
	*shardedNewscast
}

func (f *frozenNewscast) stepShard(s *shard, cycle int) {}
func (f *frozenNewscast) flushCross(cycle int)          {}

// Static selects a fixed topology generated by build — the sharded
// equivalent of sim.StaticFunc, covering the non-random topology
// families of the fig3/fig4 sweeps (Watts–Strogatz, scale-free, random
// k-out, complete). The graph is generated once at engine construction
// from a dedicated stream of the engine seed and served through
// topology's packed CSR adjacency, which the parallel exchange phases
// read concurrently without synchronization: Neighbor only reads the
// adjacency and draws from the caller's shard-private RNG.
func Static(build func(n int, rng *stats.RNG) (topology.Graph, error)) OverlaySpec {
	return staticSpec{gen: build}
}

type staticSpec struct {
	gen func(n int, rng *stats.RNG) (topology.Graph, error)
}

func (sp staticSpec) build(e *Engine) (overlayImpl, error) {
	// The builder RNG is split off the control stream, so the graph is a
	// pure function of (seed, shard count) like everything else.
	g, err := sp.gen(e.nodes, e.ctl.Split())
	if err != nil {
		return nil, err
	}
	if g.N() != e.nodes {
		return nil, fmt.Errorf("parsim: static overlay has %d nodes, engine expects %d", g.N(), e.nodes)
	}
	return &staticOverlay{g: g}, nil
}

// staticOverlay adapts a topology.Graph: links never change, there is no
// per-cycle gossip, and joins keep the slot's original adjacency —
// matching the serial engine's static overlay semantics.
type staticOverlay struct {
	g topology.Graph
}

func (o *staticOverlay) neighbor(node int, rng *stats.RNG) int {
	return o.g.Neighbor(node, rng)
}

func (o *staticOverlay) stepShard(s *shard, cycle int)          {}
func (o *staticOverlay) flushCross(cycle int)                   {}
func (o *staticOverlay) onJoin(node, cycle int, rng *stats.RNG) {}
