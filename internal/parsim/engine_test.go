package parsim

import (
	"math"
	"testing"

	"antientropy/internal/core"
	"antientropy/internal/sim"
)

func baseConfig(n, cycles int, seed uint64, shards int) Config {
	return Config{
		N: n, Cycles: cycles, Seed: seed, Shards: shards,
		Fn:   core.Average,
		Init: func(node int) float64 { return float64(node) },
	}
}

// run executes cfg and returns the finished engine.
func run(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                        // no nodes
		{N: 10},                   // no function
		{N: 10, Fn: core.Average}, // no init
		{N: 10, Cycles: -1, Fn: core.Average, Init: func(int) float64 { return 0 }},
		{N: 10, InitialAlive: 11, Fn: core.Average, Init: func(int) float64 { return 0 }},
		{N: 10, MessageLoss: 1.5, Fn: core.Average, Init: func(int) float64 { return 0 }},
		{N: 10, LinkFailure: -0.1, Fn: core.Average, Init: func(int) float64 { return 0 }},
		{N: 10, Shards: -2, Fn: core.Average, Init: func(int) float64 { return 0 }},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

func TestShardLayoutCoversNodeSpace(t *testing.T) {
	// Every node must belong to exactly the shard whose range holds it,
	// for awkward N/K combinations included.
	for _, tc := range []struct{ n, k int }{{10, 3}, {7, 7}, {100, 8}, {5, 16}, {1, 1}, {1000, 13}} {
		e, err := New(baseConfig(tc.n, 0, 1, tc.k))
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, s := range e.shards {
			if s.lo > s.hi {
				t.Fatalf("n=%d k=%d: shard %d has inverted range [%d,%d)", tc.n, tc.k, s.index, s.lo, s.hi)
			}
			for i := s.lo; i < s.hi; i++ {
				if got := e.shardOf(i); got != s.index {
					t.Fatalf("n=%d k=%d: node %d in range of shard %d but shardOf=%d", tc.n, tc.k, i, s.index, got)
				}
				covered++
			}
		}
		if covered != tc.n {
			t.Fatalf("n=%d k=%d: shards cover %d nodes", tc.n, tc.k, covered)
		}
	}
}

// TestDeterminismAcrossRuns is the core of the determinism contract:
// the same seed and shard count must reproduce every estimate and every
// metric counter bit-for-bit.
func TestDeterminismAcrossRuns(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		cfg := baseConfig(500, 20, 42, shards)
		cfg.MessageLoss = 0.05
		cfg.LinkFailure = 0.02
		a := run(t, cfg)
		b := run(t, cfg)
		if a.Metrics() != b.Metrics() {
			t.Fatalf("shards=%d: metrics diverged: %+v vs %+v", shards, a.Metrics(), b.Metrics())
		}
		for i := 0; i < cfg.N; i++ {
			if a.Value(i) != b.Value(i) {
				t.Fatalf("shards=%d: node %d estimate diverged: %v vs %v", shards, i, a.Value(i), b.Value(i))
			}
		}
	}
}

// TestDeterminismAcrossWorkerCounts checks that the worker pool size —
// pure execution parallelism — cannot change results: only the shard
// count may.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	ref := baseConfig(400, 15, 7, 8)
	ref.Workers = 1
	par := ref
	par.Workers = 8
	a := run(t, ref)
	b := run(t, par)
	if a.Metrics() != b.Metrics() {
		t.Fatalf("metrics depend on worker count: %+v vs %+v", a.Metrics(), b.Metrics())
	}
	for i := 0; i < ref.N; i++ {
		if a.Value(i) != b.Value(i) {
			t.Fatalf("node %d estimate depends on worker count", i)
		}
	}
}

// TestConvergesToTrueMean checks the protocol's contract on the sharded
// engine at several shard counts: every shard count is a valid execution
// that converges to the same aggregate.
func TestConvergesToTrueMean(t *testing.T) {
	const n = 1000
	want := float64(n-1) / 2
	for _, shards := range []int{1, 2, 8} {
		e := run(t, baseConfig(n, 40, 3, shards))
		m := e.ParticipantMoments()
		if math.Abs(m.Mean()-want) > 1e-6 {
			t.Fatalf("shards=%d: mean %g, want %g", shards, m.Mean(), want)
		}
		if m.StdDev() > 1e-4 {
			t.Fatalf("shards=%d: stddev %g, not converged", shards, m.StdDev())
		}
	}
}

// TestMassConservation verifies the invariant the paper's correctness
// rests on: with no message loss, the participants' total mass is
// unchanged by exchanges — intra-shard, cross-shard, and under a
// partition filter alike.
func TestMassConservation(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		var initial float64
		groupOf := make([]int, 600)
		for i := range groupOf {
			groupOf[i] = i % 2
		}
		cfg := baseConfig(600, 30, 9, shards)
		cfg.Script = func(cycle int, e *Engine) {
			switch cycle {
			case 5:
				e.SetExchangeFilter(func(i, j int) bool { return groupOf[i] == groupOf[j] })
			case 20:
				e.SetExchangeFilter(nil)
			}
		}
		cfg.Observe = func(cycle int, e *Engine) {
			var sum float64
			for i := 0; i < e.N(); i++ {
				if e.Participating(i) {
					sum += e.Value(i)
				}
			}
			if cycle == 0 {
				initial = sum
				return
			}
			if math.Abs(sum-initial) > 1e-6*math.Abs(initial) {
				t.Fatalf("shards=%d cycle %d: mass %g, want %g", shards, cycle, sum, initial)
			}
		}
		run(t, cfg)
	}
}

// TestMassConservationUnderKills checks that a crash removes exactly the
// victim's estimate from the total and nothing else.
func TestMassConservationUnderKills(t *testing.T) {
	const n = 400
	var expected float64
	started := false
	cfg := baseConfig(n, 25, 11, 4)
	cfg.Script = func(cycle int, e *Engine) {
		if cycle%5 != 0 {
			return
		}
		for k := 0; k < 10 && e.AliveCount() > 1; k++ {
			victim := e.RandomAlive()
			expected -= e.Value(victim)
			e.Kill(victim)
		}
	}
	cfg.Observe = func(cycle int, e *Engine) {
		var sum float64
		for i := 0; i < n; i++ {
			if e.Participating(i) {
				sum += e.Value(i)
			}
		}
		if !started {
			expected = sum
			started = true
			return
		}
		if math.Abs(sum-expected) > 1e-6*math.Abs(expected)+1e-9 {
			t.Fatalf("cycle %d: mass %g, want %g", cycle, sum, expected)
		}
	}
	run(t, cfg)
}

// TestJoinerSitsOutEpoch mirrors the §4.2 semantics on the sharded
// engine: a replaced slot refuses the current epoch until Restart.
func TestJoinerSitsOutEpoch(t *testing.T) {
	cfg := baseConfig(100, 6, 5, 4)
	cfg.Script = func(cycle int, e *Engine) {
		if cycle == 2 {
			e.Kill(7)
			e.Replace(7)
		}
		if cycle == 4 {
			e.Restart(nil)
		}
	}
	cfg.Observe = func(cycle int, e *Engine) {
		switch {
		case cycle >= 2 && cycle < 4:
			if e.Participating(7) {
				t.Fatalf("cycle %d: joiner participates before the restart", cycle)
			}
			if !e.Alive(7) {
				t.Fatalf("cycle %d: joiner not alive", cycle)
			}
		case cycle >= 4:
			if !e.Participating(7) {
				t.Fatalf("cycle %d: joiner still refused after restart", cycle)
			}
		}
	}
	run(t, cfg)
}

// TestMetricsAreConsistent checks the exchange-outcome bookkeeping: the
// counters must partition the attempts.
func TestMetricsAreConsistent(t *testing.T) {
	cfg := baseConfig(800, 20, 13, 8)
	cfg.MessageLoss = 0.1
	cfg.LinkFailure = 0.05
	cfg.Script = func(cycle int, e *Engine) {
		if cycle == 3 {
			for k := 0; k < 100; k++ {
				e.Kill(e.RandomAlive())
			}
		}
	}
	e := run(t, cfg)
	m := e.Metrics()
	outcomes := m.Completed + m.Timeouts + m.Refusals + m.LinkDrops +
		m.RequestLosses + m.ReplyLosses + m.PartitionDrops
	if outcomes != m.Attempts {
		t.Fatalf("outcome counters %d do not partition attempts %d: %+v", outcomes, m.Attempts, m)
	}
	if m.Completed == 0 || m.Timeouts == 0 || m.LinkDrops == 0 || m.RequestLosses == 0 {
		t.Fatalf("expected all failure modes to occur: %+v", m)
	}
}

// TestCompleteLiveOverlay runs the fully connected overlay: no timeouts
// can occur because only live peers are drawn.
func TestCompleteLiveOverlay(t *testing.T) {
	cfg := baseConfig(300, 15, 17, 4)
	cfg.Overlay = CompleteLive()
	cfg.Script = func(cycle int, e *Engine) {
		if cycle == 2 {
			for k := 0; k < 200; k++ {
				e.Kill(e.RandomAlive())
			}
		}
	}
	e := run(t, cfg)
	if e.Metrics().Timeouts != 0 {
		t.Fatalf("complete-live overlay produced %d timeouts", e.Metrics().Timeouts)
	}
	if e.AliveCount() != 100 {
		t.Fatalf("alive = %d", e.AliveCount())
	}
}

// TestGossipRespectsFilter: with a partition filter installed from the
// start and one side holding a constant, no information may cross — the
// overlay views and the estimates of each side stay pure.
func TestGossipRespectsFilter(t *testing.T) {
	const n = 200
	groupOf := make([]int, n)
	for i := range groupOf {
		if i >= n/2 {
			groupOf[i] = 1
		}
	}
	cfg := baseConfig(n, 30, 19, 4)
	cfg.Init = func(node int) float64 {
		if groupOf[node] == 0 {
			return 0
		}
		return 100
	}
	cfg.BeforeCycle = func(cycle int, e *Engine) {
		if cycle == 1 {
			e.SetExchangeFilter(func(i, j int) bool { return groupOf[i] == groupOf[j] })
		}
	}
	e := run(t, cfg)
	for i := 0; i < n; i++ {
		want := float64(groupOf[i]) * 100
		if math.Abs(e.Value(i)-want) > 1e-9 {
			t.Fatalf("node %d: estimate %g leaked across the partition (want %g)", i, e.Value(i), want)
		}
	}
}

// TestMillionNodeSmoke is the scale acceptance check: a 10⁶-node run
// must complete in CI-feasible time. It is skipped in -short mode.
func TestMillionNodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-node smoke run skipped in short mode")
	}
	const n = 1_000_000
	cfg := baseConfig(n, 5, 23, 16)
	e := run(t, cfg)
	m := e.ParticipantMoments()
	want := float64(n-1) / 2
	// Five cycles cut the initial spread by ~(1/2.72)^5; full convergence
	// is not the point — scale and sanity are.
	if math.Abs(m.Mean()-want) > want*0.01 {
		t.Fatalf("1M-node mean %g, want ~%g", m.Mean(), want)
	}
	if got := e.Metrics().Attempts; got < int64(n)*4 {
		t.Fatalf("only %d attempts over 5 cycles at 1M nodes", got)
	}
}

// TestShardedMatchesSerialStatistically compares the two engines on the
// same workload: their converged estimates must agree to within the
// protocol's variance, though their trajectories differ.
func TestShardedMatchesSerialStatistically(t *testing.T) {
	const n = 500
	serial, err := sim.Run(sim.Config{
		N: n, Cycles: 40, Seed: 31,
		Fn:      core.Average,
		Init:    func(node int) float64 { return float64(node) },
		Overlay: sim.Newscast(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	sharded := run(t, baseConfig(n, 40, 31, 4))
	sm := serial.ParticipantMoments()
	pm := sharded.ParticipantMoments()
	if math.Abs(sm.Mean()-pm.Mean()) > 1e-6 {
		t.Fatalf("engines disagree: serial %g vs sharded %g", sm.Mean(), pm.Mean())
	}
}
