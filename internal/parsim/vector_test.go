package parsim

import (
	"math"
	"testing"

	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
	"antientropy/internal/topology"
)

func vectorConfig(n, cycles, dim int, seed uint64, shards int) Config {
	return Config{
		N: n, Cycles: cycles, Seed: seed, Shards: shards,
		Dim: dim,
		VecInit: func(node, d int) float64 {
			return float64((node+1)*(d+1)) / float64(n)
		},
	}
}

func TestVectorConfigValidation(t *testing.T) {
	leaders := []int{0, 1}
	bad := []Config{
		// Both modes at once.
		{N: 10, Fn: core.Average, Init: func(int) float64 { return 0 }, Dim: 1, Leaders: []int{0}},
		// Vector mode without leaders or init.
		{N: 10, Dim: 2},
		// Both leaders and VecInit.
		{N: 10, Dim: 2, Leaders: leaders, VecInit: func(int, int) float64 { return 0 }},
		// Leader count != Dim.
		{N: 10, Dim: 3, Leaders: leaders},
		// Leader outside the initially alive range.
		{N: 10, InitialAlive: 5, Dim: 2, Leaders: []int{0, 7}},
		// Leader out of range.
		{N: 10, Dim: 2, Leaders: []int{0, 10}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid vector config accepted", i)
		}
	}
}

// TestVectorMassConservation is the invariant the COUNT protocol rests
// on, on the sharded engine: with no loss, every component's total mass
// over participants is unchanged by exchanges — intra-shard and
// cross-shard (deferred merge) alike.
func TestVectorMassConservation(t *testing.T) {
	const n, dim = 600, 3
	for _, shards := range []int{1, 2, 8} {
		initial := make([]float64, dim)
		seen := false
		cfg := vectorConfig(n, 30, dim, 9, shards)
		cfg.Observe = func(cycle int, e *Engine) {
			sums := make([]float64, dim)
			e.ForEachParticipantVec(func(_ int, vec []float64) {
				for d, v := range vec {
					sums[d] += v
				}
			})
			if !seen {
				copy(initial, sums)
				seen = true
				return
			}
			for d := range sums {
				if math.Abs(sums[d]-initial[d]) > 1e-6*math.Abs(initial[d]) {
					t.Fatalf("shards=%d cycle %d dim %d: mass %g, want %g",
						shards, cycle, d, sums[d], initial[d])
				}
			}
		}
		run(t, cfg)
	}
}

// TestVectorDeterminism pins the determinism contract in vector mode:
// the same seed and shard count reproduce every component bit-for-bit.
func TestVectorDeterminism(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := vectorConfig(400, 20, 4, 42, shards)
		cfg.MessageLoss = 0.05
		a := run(t, cfg)
		b := run(t, cfg)
		for i := 0; i < cfg.N; i++ {
			va, vb := a.Vector(i), b.Vector(i)
			for d := range va {
				if va[d] != vb[d] {
					t.Fatalf("shards=%d: node %d dim %d diverged: %v vs %v", shards, i, d, va[d], vb[d])
				}
			}
		}
	}
}

// TestVectorCountConverges runs a two-instance COUNT (leaders hold the
// peak) and checks the combined size estimates converge to N on every
// shard count, matching the serial engine statistically.
func TestVectorCountConverges(t *testing.T) {
	const n = 1000
	for _, shards := range []int{1, 2, 8} {
		cfg := Config{
			N: n, Cycles: 40, Seed: 7, Shards: shards,
			Dim: 2, Leaders: []int{0, n / 2},
		}
		e := run(t, cfg)
		m := e.SizeMoments()
		if m.N() == 0 {
			t.Fatalf("shards=%d: no finite size estimates", shards)
		}
		if math.Abs(m.Mean()-n)/n > 0.01 {
			t.Fatalf("shards=%d: size estimate %g, want ≈ %d", shards, m.Mean(), n)
		}
	}
}

// TestVectorReplaceAndRestartVec mirrors the §4.2/§5 lifecycle in vector
// mode: a replaced slot loses its mass and sits out the epoch until
// RestartVec reinstates everyone with a fresh per-component init.
func TestVectorReplaceAndRestartVec(t *testing.T) {
	cfg := vectorConfig(100, 8, 2, 5, 4)
	cfg.Script = func(cycle int, e *Engine) {
		if cycle == 2 {
			e.Kill(7)
			e.Replace(7)
		}
		if cycle == 5 {
			e.RestartVec(func(node, d int) float64 { return float64(d) })
		}
	}
	cfg.Observe = func(cycle int, e *Engine) {
		switch {
		case cycle >= 2 && cycle < 5:
			if e.Participating(7) {
				t.Fatalf("cycle %d: joiner participates before RestartVec", cycle)
			}
			if cycle == 2 {
				for d, v := range e.Vector(7) {
					if v != 0 {
						t.Fatalf("replaced slot kept mass %g in dim %d", v, d)
					}
				}
			}
		case cycle == 5:
			if !e.Participating(7) {
				t.Fatal("joiner still refused after RestartVec")
			}
		}
	}
	run(t, cfg)
}

// TestStaticTopologySharded checks the packed static overlay: a random
// k-out graph drives the exchanges (deterministically per seed + shard
// count), the protocol converges to the true mean, and joins/reseeds are
// no-ops exactly like the serial static overlay.
func TestStaticTopologySharded(t *testing.T) {
	const n = 800
	build := func(n int, rng *stats.RNG) (topology.Graph, error) {
		return topology.NewRandomKOut(n, 20, rng)
	}
	want := float64(n-1) / 2
	for _, shards := range []int{1, 4} {
		cfg := baseConfig(n, 40, 13, shards)
		cfg.Overlay = Static(build)
		a := run(t, cfg)
		m := a.ParticipantMoments()
		if math.Abs(m.Mean()-want) > 1e-6 {
			t.Fatalf("shards=%d: mean %g, want %g", shards, m.Mean(), want)
		}
		if m.StdDev() > 1e-4 {
			t.Fatalf("shards=%d: stddev %g, not converged", shards, m.StdDev())
		}
		b := run(t, cfg)
		for i := 0; i < n; i++ {
			if a.Value(i) != b.Value(i) {
				t.Fatalf("shards=%d: static topology run not deterministic at node %d", shards, i)
			}
		}
	}
}

// TestFrozenNewscastSharded: the frozen overlay still carries the
// aggregate (its bootstrapped views form a connected random graph) but
// performs no gossip, so a crashed peer's descriptor never ages out —
// timeouts keep accruing, unlike with fresh NEWSCAST.
func TestFrozenNewscastSharded(t *testing.T) {
	const n = 500
	cfg := baseConfig(n, 40, 17, 4)
	cfg.Overlay = NewscastFrozen(30)
	e := run(t, cfg)
	m := e.ParticipantMoments()
	want := float64(n-1) / 2
	if math.Abs(m.Mean()-want) > 1e-6 {
		t.Fatalf("frozen overlay mean %g, want %g", m.Mean(), want)
	}
	kill := baseConfig(n, 30, 17, 4)
	kill.Overlay = NewscastFrozen(30)
	kill.Script = func(cycle int, e *Engine) {
		if cycle == 2 {
			for k := 0; k < 100; k++ {
				e.Kill(e.RandomAlive())
			}
		}
	}
	froze := run(t, kill)
	fresh := kill
	fresh.Overlay = Newscast(30)
	warm := run(t, fresh)
	if froze.Metrics().Timeouts <= warm.Metrics().Timeouts {
		t.Fatalf("frozen overlay should accrue more timeouts than fresh NEWSCAST: %d vs %d",
			froze.Metrics().Timeouts, warm.Metrics().Timeouts)
	}
}

// TestFailureModelsOnShardedEngine drives the paper's failure models
// through Config.Failures — the same sim.FailureModel values the serial
// engine uses — and checks their semantics.
func TestFailureModelsOnShardedEngine(t *testing.T) {
	const n = 400
	cfg := baseConfig(n, 10, 19, 4)
	cfg.Failures = []sim.FailureModel{sim.Churn{PerCycle: 20}}
	e := run(t, cfg)
	if got := e.AliveCount(); got != n {
		t.Fatalf("churn changed the network size: %d", got)
	}
	if got := e.ParticipantCount(); got >= n {
		t.Fatalf("churn joiners should sit out the epoch: %d participants of %d", got, n)
	}

	crash := baseConfig(n, 10, 19, 4)
	crash.Failures = []sim.FailureModel{sim.SuddenDeath{AtCycle: 3, Fraction: 0.5}}
	e = run(t, crash)
	if got := e.AliveCount(); got != n/2 {
		t.Fatalf("sudden death left %d alive, want %d", got, n/2)
	}
}
