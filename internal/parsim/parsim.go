// Package parsim is the sharded, multi-core counterpart of internal/sim:
// a cycle-driven simulation engine that partitions the node space into K
// contiguous shards and runs the per-cycle push-pull exchange loop and
// the NEWSCAST overlay step across a worker pool. It exists to reach the
// paper's upper evaluation range — 10⁵–10⁶-node overlays under churn,
// crashes and partitions — which the serial engine cannot simulate in
// reasonable wall-clock time.
//
// # Execution model
//
// Every cycle runs in two phases per subsystem:
//
//  1. Parallel phase: each shard, driven exclusively by its own RNG
//     stream (stats.NewStreamRNG(seed, shard)), processes its local nodes
//     in a shard-private random order. Exchanges whose peer lives in the
//     same shard are applied immediately; exchanges that cross a shard
//     boundary are fully decided (loss draws included) and appended to
//     the shard's outbox. Shards read shared state (liveness,
//     participation, the partition filter) but never write outside their
//     own node range, so the phase is race-free without locks.
//  2. Deterministic merge: the outboxes are drained serially in shard
//     order, applying the deferred cross-shard exchanges. A deferred
//     exchange acts on the peers' then-current estimates — exactly a
//     message that spent the cycle in flight.
//
// # Determinism contract
//
// The same seed and the same shard count yield bit-identical runs —
// estimates, metrics and CSV output — regardless of GOMAXPROCS or
// worker scheduling, because shard streams are pure functions of
// (seed, shard index) and the merge order is fixed. Different shard
// counts are different (equally valid) executions: cross-shard exchanges
// resolve at merge time rather than in the global initiation order, so
// per-cycle trajectories differ across shard counts while converging to
// the same statistics. Pin -shards along with -seed to reproduce a run.
//
// The engine implements the same surface the declarative scenario
// executor consumes (sim.Core), so every scenario runs unchanged on
// either engine; internal/scenario selects via SimOptions.Engine.
package parsim

import (
	"errors"
	"fmt"
	"runtime"

	"antientropy/internal/core"
	"antientropy/internal/sim"
)

// AutoEngineThreshold is the network size at or above which size-based
// engine auto-selection ("auto") picks this sharded engine over the
// serial one. Below it the serial engine's lower fixed costs win; above
// it the flat packed overlay and shard parallelism dominate (ROADMAP
// perf baselines: 8.4× for the 10⁴-node partition-heal scenario and for
// the fig6b sweep at 2×10⁴ nodes, both on one core).
const AutoEngineThreshold = 20000

// Config describes one sharded simulation run. It mirrors sim.Config —
// scalar mode (Fn/Init) or vector mode (Dim with Leaders or VecInit),
// failure models, loss rates and a pluggable overlay — so the paper's
// figure sweeps run unchanged on either engine.
type Config struct {
	// N is the number of node slots.
	N int
	// InitialAlive, when positive, starts only slots [0, InitialAlive)
	// alive and participating (scenario joins later fill the rest). Zero
	// means all N slots start alive.
	InitialAlive int
	// Cycles is the number of cycles Run executes.
	Cycles int
	// Seed drives all randomness: the control stream and every shard
	// stream derive from it.
	Seed uint64
	// Shards is the shard count K. Zero selects GOMAXPROCS. The node
	// space [0, N) is split into K contiguous ranges of near-equal size;
	// K is clamped to N.
	Shards int
	// Workers bounds the goroutines driving the parallel phases. Zero
	// selects min(Shards, GOMAXPROCS). One worker degenerates to a
	// serial loop with no synchronization cost.
	Workers int

	// Fn is the scalar aggregation function (scalar mode). Exactly one of
	// Fn.Update or Dim must be set.
	Fn core.Function
	// Init yields node i's initial estimate (scalar mode).
	Init func(node int) float64

	// Dim > 0 selects vector mode: the state is a Dim-dimensional vector
	// averaged element-wise — the flattened COUNT map state, exactly as
	// in sim.Config. Cross-shard exchanges defer the whole vector update
	// to the merge, so per-component mass is conserved like scalar mass.
	Dim int
	// Leaders[d] is the node whose d-th component starts at 1; all other
	// components start at 0. Exactly one of Leaders and VecInit must be
	// set in vector mode.
	Leaders []int
	// VecInit initializes component d of node i arbitrarily (§5 derived
	// aggregates).
	VecInit func(node, dim int) float64

	// Overlay selects the sharded overlay (default: Newscast(30)).
	Overlay OverlaySpec

	// LinkFailure is P_d, the per-exchange drop probability (§6.2).
	LinkFailure float64
	// MessageLoss is the per-message drop probability (§7.2).
	MessageLoss float64

	// Failures are applied in order at the beginning of every cycle
	// (after Script), through the shared sim.Core surface — the same
	// models, with the same semantics, as the serial engine's.
	Failures []sim.FailureModel

	// Adversary, when non-nil, rewrites the scalar estimate a node
	// reports to its exchange peer — the Byzantine wire-lying hook, with
	// the same contract as sim.Config.Adversary. It must be a pure
	// function of (cycle, node, local): shards call it concurrently.
	// Scalar mode only.
	Adversary func(cycle, node int, local float64) (float64, bool)

	// Guard, when non-nil, replaces the hardcoded push-pull average
	// merge of scalar exchanges with the pluggable Combiner defense,
	// with the same contract as sim.Config.Guard. Node sample windows
	// are only touched by the owning shard (intra-shard exchanges) or
	// the serial merge (cross-shard), so the guard needs no locking.
	// Scalar mode only.
	Guard *core.MergeGuard

	// BeforeCycle, when non-nil, runs serially at the start of every
	// cycle — the scenario engine's epoch-restart hook.
	BeforeCycle func(cycle int, e *Engine)
	// Script, when non-nil, runs serially after BeforeCycle — the
	// scenario engine's event hook (churn, partitions, loss changes).
	Script func(cycle int, e *Engine)
	// Observe, when non-nil, is called after initialization (cycle 0)
	// and after every completed cycle.
	Observe func(cycle int, e *Engine)
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("parsim: invalid node count %d", c.N)
	}
	if c.Cycles < 0 {
		return fmt.Errorf("parsim: invalid cycle count %d", c.Cycles)
	}
	if c.InitialAlive < 0 || c.InitialAlive > c.N {
		return fmt.Errorf("parsim: initial alive count %d not in [0, %d]", c.InitialAlive, c.N)
	}
	scalar := c.Fn.Update != nil
	vector := c.Dim > 0
	if scalar == vector {
		return errors.New("parsim: exactly one of Fn (scalar mode) and Dim (vector mode) must be set")
	}
	if scalar && c.Init == nil {
		return errors.New("parsim: scalar mode requires Init")
	}
	if vector {
		hasLeaders := len(c.Leaders) > 0
		hasVecInit := c.VecInit != nil
		if hasLeaders == hasVecInit {
			return errors.New("parsim: vector mode requires exactly one of Leaders and VecInit")
		}
		if hasLeaders {
			if len(c.Leaders) != c.Dim {
				return fmt.Errorf("parsim: vector mode needs exactly Dim=%d leaders, got %d", c.Dim, len(c.Leaders))
			}
			live := c.N
			if c.InitialAlive > 0 {
				live = c.InitialAlive
			}
			for d, l := range c.Leaders {
				if l < 0 || l >= live {
					return fmt.Errorf("parsim: leader %d of instance %d out of range", l, d)
				}
			}
		}
	}
	if c.Shards < 0 {
		return fmt.Errorf("parsim: invalid shard count %d", c.Shards)
	}
	if c.LinkFailure < 0 || c.LinkFailure > 1 {
		return fmt.Errorf("parsim: link failure probability %g not in [0,1]", c.LinkFailure)
	}
	if c.MessageLoss < 0 || c.MessageLoss > 1 {
		return fmt.Errorf("parsim: message loss probability %g not in [0,1]", c.MessageLoss)
	}
	return nil
}

// shardCount resolves the effective K for this configuration.
func (c Config) shardCount() int {
	k := c.Shards
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > c.N {
		k = c.N
	}
	if k < 1 {
		k = 1
	}
	return k
}

// workerCount resolves the goroutine budget for the parallel phases.
func (c Config) workerCount(shards int) int {
	w := c.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}
