// Package parsim is the sharded, multi-core counterpart of internal/sim:
// a cycle-driven simulation engine that partitions the node space into K
// contiguous shards and runs the per-cycle push-pull exchange loop and
// the NEWSCAST overlay step across a worker pool. It exists to reach the
// paper's upper evaluation range — 10⁵–10⁶-node overlays under churn,
// crashes and partitions — which the serial engine cannot simulate in
// reasonable wall-clock time.
//
// # Execution model
//
// Every cycle runs in two phases per subsystem:
//
//  1. Parallel phase: each shard, driven exclusively by its own RNG
//     stream (stats.NewStreamRNG(seed, shard)), processes its local nodes
//     in a shard-private random order. Exchanges whose peer lives in the
//     same shard are applied immediately; exchanges that cross a shard
//     boundary are fully decided (loss draws included) and appended to
//     the shard's outbox. Shards read shared state (liveness,
//     participation, the partition filter) but never write outside their
//     own node range, so the phase is race-free without locks.
//  2. Deterministic merge: the outboxes are drained serially in shard
//     order, applying the deferred cross-shard exchanges. A deferred
//     exchange acts on the peers' then-current estimates — exactly a
//     message that spent the cycle in flight.
//
// # Determinism contract
//
// The same seed and the same shard count yield bit-identical runs —
// estimates, metrics and CSV output — regardless of GOMAXPROCS or
// worker scheduling, because shard streams are pure functions of
// (seed, shard index) and the merge order is fixed. Different shard
// counts are different (equally valid) executions: cross-shard exchanges
// resolve at merge time rather than in the global initiation order, so
// per-cycle trajectories differ across shard counts while converging to
// the same statistics. Pin -shards along with -seed to reproduce a run.
//
// The engine implements the same surface the declarative scenario
// executor consumes (sim.Core), so every scenario runs unchanged on
// either engine; internal/scenario selects via SimOptions.Engine.
package parsim

import (
	"errors"
	"fmt"
	"runtime"

	"antientropy/internal/core"
)

// Config describes one sharded simulation run. It mirrors the scalar
// subset of sim.Config; vector mode and pluggable topology builders are
// deliberately out of scope — the sharded engine exists for the scenario
// workloads, which run scalar aggregation over NEWSCAST.
type Config struct {
	// N is the number of node slots.
	N int
	// InitialAlive, when positive, starts only slots [0, InitialAlive)
	// alive and participating (scenario joins later fill the rest). Zero
	// means all N slots start alive.
	InitialAlive int
	// Cycles is the number of cycles Run executes.
	Cycles int
	// Seed drives all randomness: the control stream and every shard
	// stream derive from it.
	Seed uint64
	// Shards is the shard count K. Zero selects GOMAXPROCS. The node
	// space [0, N) is split into K contiguous ranges of near-equal size;
	// K is clamped to N.
	Shards int
	// Workers bounds the goroutines driving the parallel phases. Zero
	// selects min(Shards, GOMAXPROCS). One worker degenerates to a
	// serial loop with no synchronization cost.
	Workers int

	// Fn is the scalar aggregation function.
	Fn core.Function
	// Init yields node i's initial estimate.
	Init func(node int) float64

	// Overlay selects the sharded overlay (default: Newscast(30)).
	Overlay OverlaySpec

	// LinkFailure is P_d, the per-exchange drop probability (§6.2).
	LinkFailure float64
	// MessageLoss is the per-message drop probability (§7.2).
	MessageLoss float64

	// BeforeCycle, when non-nil, runs serially at the start of every
	// cycle — the scenario engine's epoch-restart hook.
	BeforeCycle func(cycle int, e *Engine)
	// Script, when non-nil, runs serially after BeforeCycle — the
	// scenario engine's event hook (churn, partitions, loss changes).
	Script func(cycle int, e *Engine)
	// Observe, when non-nil, is called after initialization (cycle 0)
	// and after every completed cycle.
	Observe func(cycle int, e *Engine)
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("parsim: invalid node count %d", c.N)
	}
	if c.Cycles < 0 {
		return fmt.Errorf("parsim: invalid cycle count %d", c.Cycles)
	}
	if c.InitialAlive < 0 || c.InitialAlive > c.N {
		return fmt.Errorf("parsim: initial alive count %d not in [0, %d]", c.InitialAlive, c.N)
	}
	if c.Fn.Update == nil {
		return errors.New("parsim: aggregation function is required")
	}
	if c.Init == nil {
		return errors.New("parsim: scalar init is required")
	}
	if c.Shards < 0 {
		return fmt.Errorf("parsim: invalid shard count %d", c.Shards)
	}
	if c.LinkFailure < 0 || c.LinkFailure > 1 {
		return fmt.Errorf("parsim: link failure probability %g not in [0,1]", c.LinkFailure)
	}
	if c.MessageLoss < 0 || c.MessageLoss > 1 {
		return fmt.Errorf("parsim: message loss probability %g not in [0,1]", c.MessageLoss)
	}
	return nil
}

// shardCount resolves the effective K for this configuration.
func (c Config) shardCount() int {
	k := c.Shards
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > c.N {
		k = c.N
	}
	if k < 1 {
		k = 1
	}
	return k
}

// workerCount resolves the goroutine budget for the parallel phases.
func (c Config) workerCount(shards int) int {
	w := c.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}
