package parsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
)

// Engine runs a sharded simulation. It implements sim.Core, so the
// declarative scenario executor drives it exactly like the serial
// engine. All exported mutators are serial-phase operations: call them
// only from the engine's own hooks or between cycles.
type Engine struct {
	cfg    Config
	nodes  int
	shards []*shard
	// workers bounds the parallel-phase goroutines.
	workers int

	// ctl is the control stream (stream 0): all serial-phase randomness —
	// scripted victim picks, join reseeds, rendezvous — draws from it, so
	// scenario scripts are deterministic independent of the shard count's
	// stream layout.
	ctl *stats.RNG

	// Global node state. Written only in serial phases (hooks, merge);
	// the parallel phases read it freely and write scalar/vec only within
	// their own shard range. Exactly one of scalar and vec is non-nil,
	// matching the serial engine's scalar/vector modes.
	alive         *sim.IndexSet
	participating []bool
	scalar        []float64
	vec           []float64 // flattened [node*dim+d], vector mode

	overlay overlayImpl

	// filter, when non-nil, vetoes exchanges — aggregation and gossip —
	// between node pairs (partition enforcement).
	filter func(i, j int) bool

	cycle   int
	metrics sim.Metrics
}

// shard owns the contiguous node range [lo, hi) and everything the
// parallel phases need without touching other shards: a private RNG
// stream, permutation and merge scratch buffers, outboxes for deferred
// cross-shard work, and local metric counters.
type shard struct {
	index  int
	lo, hi int
	rng    *stats.RNG

	// perm holds the shard-local initiation order (offsets into [lo,hi)).
	perm []int32
	// out collects decided cross-shard aggregation exchanges.
	out []crossExchange
	// gossip collects deferred cross-shard NEWSCAST exchanges.
	gossip []crossPair
	// scratch is the overlay merge buffer.
	scratch []uint64

	metrics sim.Metrics
}

// crossExchange is a fully decided aggregation exchange whose peer lives
// in another shard; only the state update is deferred to the merge.
type crossExchange struct {
	i, j      int32
	replyLost bool
}

// crossPair is a deferred cross-shard gossip exchange.
type crossPair struct {
	i, j int32
}

// permute refills s.perm with a fresh random order of the local nodes.
func (s *shard) permute() {
	n := s.hi - s.lo
	s.perm = s.perm[:n]
	for i := range s.perm {
		s.perm[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := s.rng.Intn(i + 1)
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
	}
}

// New validates cfg, builds the shards and the overlay, and initializes
// node states, returning an engine positioned before cycle 1.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.shardCount()
	e := &Engine{
		cfg:           cfg,
		nodes:         cfg.N,
		workers:       cfg.workerCount(k),
		ctl:           stats.NewStreamRNG(cfg.Seed, 0),
		alive:         sim.NewIndexSet(cfg.N, false),
		participating: make([]bool, cfg.N),
	}
	initialAlive := cfg.N
	if cfg.InitialAlive > 0 {
		initialAlive = cfg.InitialAlive
	}
	for i := 0; i < initialAlive; i++ {
		e.alive.Add(i)
		e.participating[i] = true
	}
	if cfg.Dim > 0 {
		e.vec = make([]float64, cfg.N*cfg.Dim)
		if cfg.VecInit != nil {
			for i := 0; i < cfg.N; i++ {
				for d := 0; d < cfg.Dim; d++ {
					e.vec[i*cfg.Dim+d] = cfg.VecInit(i, d)
				}
			}
		} else {
			for d, l := range cfg.Leaders {
				e.vec[l*cfg.Dim+d] = 1
			}
		}
	} else {
		e.scalar = make([]float64, cfg.N)
		for i := range e.scalar {
			e.scalar[i] = cfg.Init(i)
		}
	}
	e.shards = make([]*shard, k)
	maxLocal := 0
	for s := 0; s < k; s++ {
		lo := (s*cfg.N + k - 1) / k
		hi := ((s+1)*cfg.N + k - 1) / k
		if local := hi - lo; local > maxLocal {
			maxLocal = local
		}
		e.shards[s] = &shard{
			index: s, lo: lo, hi: hi,
			// Shard streams are 1-based; stream 0 is the control stream.
			rng: stats.NewStreamRNG(cfg.Seed, uint64(s)+1),
		}
	}
	for _, s := range e.shards {
		s.perm = make([]int32, 0, maxLocal)
	}
	spec := cfg.Overlay
	if spec == nil {
		spec = Newscast(30)
	}
	ov, err := spec.build(e)
	if err != nil {
		return nil, fmt.Errorf("parsim: building overlay: %w", err)
	}
	e.overlay = ov
	return e, nil
}

// Run executes all configured cycles, invoking the observer after
// initialization and after each cycle.
func Run(cfg Config) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.observe()
	for e.cycle < cfg.Cycles {
		e.Step()
		e.observe()
	}
	return e, nil
}

func (e *Engine) observe() {
	if e.cfg.Observe != nil {
		e.cfg.Observe(e.cycle, e)
	}
}

// shardOf maps a node to its shard index (floor(i·K/N), matching the
// contiguous ranges built in New).
func (e *Engine) shardOf(i int) int {
	return i * len(e.shards) / e.nodes
}

// parallel runs fn over every shard across the worker pool. With one
// worker (or one shard) it degenerates to a plain loop.
func (e *Engine) parallel(fn func(s *shard)) {
	if e.workers <= 1 || len(e.shards) == 1 {
		for _, s := range e.shards {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(e.shards) {
					return
				}
				fn(e.shards[k])
			}
		}()
	}
	wg.Wait()
}

// Step advances the simulation by one full cycle: serial hooks and
// failure models first, then the parallel overlay round with its
// deterministic cross-shard flush, then the parallel exchange phase with
// its deterministic merge.
func (e *Engine) Step() {
	e.cycle++
	if e.cfg.BeforeCycle != nil {
		e.cfg.BeforeCycle(e.cycle, e)
	}
	if e.cfg.Script != nil {
		e.cfg.Script(e.cycle, e)
	}
	for _, f := range e.cfg.Failures {
		f.Apply(e.cycle, e)
	}
	e.parallel(func(s *shard) { e.overlay.stepShard(s, e.cycle) })
	e.overlay.flushCross(e.cycle)
	e.parallel(func(s *shard) { e.exchangeShard(s) })
	for _, s := range e.shards {
		for _, x := range s.out {
			e.applyExchange(int(x.i), int(x.j), x.replyLost)
		}
		e.metrics.Add(s.metrics)
	}
}

// exchangeShard runs one shard's slice of the exchange loop: every live
// local participant initiates one push-pull exchange. Intra-shard
// exchanges apply immediately; cross-shard exchanges are decided here
// (all loss draws come from the shard stream) and deferred to the merge.
func (e *Engine) exchangeShard(s *shard) {
	s.out = s.out[:0]
	s.metrics = sim.Metrics{}
	s.permute()
	for _, off := range s.perm {
		i := s.lo + int(off)
		if !e.alive.Contains(i) || !e.participating[i] {
			continue
		}
		j := e.overlay.neighbor(i, s.rng)
		if j < 0 || j == i {
			continue
		}
		allowed := e.filter == nil || e.filter(i, j)
		proceed, replyLost := sim.DecideExchange(s.rng, &s.metrics,
			e.alive.Contains(j), e.participating[j], allowed,
			e.cfg.LinkFailure, e.cfg.MessageLoss)
		if !proceed {
			continue
		}
		if e.shardOf(j) == s.index {
			e.applyExchange(i, j, replyLost)
		} else {
			s.out = append(s.out, crossExchange{i: int32(i), j: int32(j), replyLost: replyLost})
		}
	}
}

// applyExchange performs the push-pull state update: the responder always
// updates; the initiator updates only if the reply arrived (§7.2). A
// deferred cross-shard exchange lands here during the serial merge and
// acts on the peers' then-current state, so scalar mass — and, in vector
// mode, every component's mass — is conserved across the merge exactly
// as within a shard.
func (e *Engine) applyExchange(i, j int, replyLost bool) {
	if dim := e.cfg.Dim; dim > 0 {
		vi := e.vec[i*dim : (i+1)*dim]
		vj := e.vec[j*dim : (j+1)*dim]
		for d := range vj {
			m := (vi[d] + vj[d]) / 2
			if !replyLost {
				vi[d] = m
			}
			vj[d] = m
		}
		return
	}
	si, sj := e.scalar[i], e.scalar[j]
	if e.cfg.Adversary == nil && e.cfg.Guard == nil {
		ni, nj := e.cfg.Fn.Update(si, sj)
		e.scalar[j] = nj
		if !replyLost {
			e.scalar[i] = ni
		}
		return
	}
	// Byzantine path: each side merges the peer's *reported* value —
	// possibly corrupted by the adversary hook — while local state stays
	// honest; the guard, when set, screens the report through the
	// pluggable Combiner defense (see sim.Config.Guard).
	ri, rj := si, sj
	if adv := e.cfg.Adversary; adv != nil {
		if v, lied := adv(e.cycle, i, si); lied {
			ri = v
		}
		if v, lied := adv(e.cycle, j, sj); lied {
			rj = v
		}
	}
	if g := e.cfg.Guard; g != nil {
		e.scalar[j] = g.Merge(j, sj, ri)
		if !replyLost {
			e.scalar[i] = g.Merge(i, si, rj)
		}
		return
	}
	ni, _ := e.cfg.Fn.Update(si, rj)
	_, nj := e.cfg.Fn.Update(ri, sj)
	e.scalar[j] = nj
	if !replyLost {
		e.scalar[i] = ni
	}
}

// --- sim.Core ---

var _ sim.Core = (*Engine)(nil)

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int { return e.cycle }

// N returns the (constant) number of node slots.
func (e *Engine) N() int { return e.nodes }

// Dim returns the state-vector dimension (0 in scalar mode).
func (e *Engine) Dim() int { return e.cfg.Dim }

// Shards returns the effective shard count K.
func (e *Engine) Shards() int { return len(e.shards) }

// AliveCount returns the number of currently live nodes.
func (e *Engine) AliveCount() int { return e.alive.Len() }

// Alive reports whether node is currently live.
func (e *Engine) Alive(node int) bool { return e.alive.Contains(node) }

// Participating reports whether node is live and part of the current
// epoch.
func (e *Engine) Participating(node int) bool {
	return e.alive.Contains(node) && e.participating[node]
}

// ParticipantCount returns the number of live nodes taking part in the
// current epoch.
func (e *Engine) ParticipantCount() int {
	count := 0
	for _, id := range e.alive.Items() {
		if e.participating[id] {
			count++
		}
	}
	return count
}

// ParticipantMoments returns streaming moments of the participants'
// estimates.
func (e *Engine) ParticipantMoments() stats.Moments {
	var m stats.Moments
	for _, id := range e.alive.Items() {
		if e.participating[id] {
			m.Add(e.scalar[id])
		}
	}
	return m
}

// Metrics returns the exchange counters accumulated so far.
func (e *Engine) Metrics() sim.Metrics { return e.metrics }

// Value returns node's current estimate (scalar mode).
func (e *Engine) Value(node int) float64 { return e.scalar[node] }

// Vector returns a copy of node's state vector (vector mode).
func (e *Engine) Vector(node int) []float64 {
	dim := e.cfg.Dim
	return append([]float64(nil), e.vec[node*dim:(node+1)*dim]...)
}

// ForEachParticipant calls fn for every live, participating node with
// its scalar estimate (scalar mode).
func (e *Engine) ForEachParticipant(fn func(node int, value float64)) {
	for _, id := range e.alive.Items() {
		i := int(id)
		if e.participating[i] {
			fn(i, e.scalar[i])
		}
	}
}

// ForEachParticipantVec calls fn for every live, participating node with
// a read-only view of its state vector (vector mode). The slice must not
// be retained or modified.
func (e *Engine) ForEachParticipantVec(fn func(node int, vec []float64)) {
	dim := e.cfg.Dim
	for _, id := range e.alive.Items() {
		i := int(id)
		if e.participating[i] {
			fn(i, e.vec[i*dim:(i+1)*dim])
		}
	}
}

// SizeEstimateAt converts node's vector-mode state into a network-size
// estimate using the §7.3 combiner across the run's concurrent
// instances, mirroring the serial engine's semantics exactly: instances
// from which the node holds no mass are excluded, and a node holding no
// mass at all reports +Inf.
func (e *Engine) SizeEstimateAt(node int) float64 {
	dim := e.cfg.Dim
	if dim == 0 {
		return core.SizeFromAverage(e.scalar[node])
	}
	ests := make([]float64, 0, dim)
	for d := 0; d < dim; d++ {
		if v := e.vec[node*dim+d]; v > 0 {
			ests = append(ests, core.SizeFromAverage(v))
		}
	}
	if len(ests) == 0 {
		return math.Inf(1)
	}
	combined, err := core.Combine(ests)
	if err != nil {
		return math.Inf(1)
	}
	return combined
}

// SizeMoments aggregates the finite size estimates of all participants.
func (e *Engine) SizeMoments() stats.Moments {
	var m stats.Moments
	if e.cfg.Dim == 0 {
		e.ForEachParticipant(func(_ int, v float64) {
			if s := core.SizeFromAverage(v); !math.IsInf(s, 1) {
				m.Add(s)
			}
		})
		return m
	}
	for _, id := range e.alive.Items() {
		i := int(id)
		if !e.participating[i] {
			continue
		}
		if s := e.SizeEstimateAt(i); !math.IsInf(s, 1) {
			m.Add(s)
		}
	}
	return m
}

// Kill marks a node as crashed (§6.1).
func (e *Engine) Kill(node int) {
	e.alive.Remove(node)
}

// Replace models churn: the slot is taken over by a brand-new node that
// sits out the current epoch (§4.2) but joins the membership overlay.
func (e *Engine) Replace(node int) {
	e.alive.Add(node)
	e.participating[node] = false
	if dim := e.cfg.Dim; dim > 0 {
		for d := 0; d < dim; d++ {
			e.vec[node*dim+d] = 0
		}
	} else {
		e.scalar[node] = 0
	}
	if e.cfg.Guard != nil {
		e.cfg.Guard.ResetNode(node)
	}
	e.overlay.onJoin(node, e.cycle, e.ctl)
}

// Restart begins a new epoch in place (§4.1): every live node becomes a
// participant and, in scalar mode, reloads a fresh local value from init
// when given.
func (e *Engine) Restart(init func(node int) float64) {
	if e.cfg.Guard != nil {
		// Peer samples gathered under the previous epoch's value
		// assignment must not vote in the next.
		e.cfg.Guard.ResetAll()
	}
	for _, id := range e.alive.Items() {
		i := int(id)
		e.participating[i] = true
		if e.scalar != nil && init != nil {
			e.scalar[i] = init(i)
		}
	}
}

// RestartVec begins a new epoch in vector mode (§5 COUNT lifecycle):
// every live node becomes a participant and, when init is non-nil,
// reloads component d of its state vector from init(node, d).
func (e *Engine) RestartVec(init func(node, dim int) float64) {
	dim := e.cfg.Dim
	for _, id := range e.alive.Items() {
		i := int(id)
		e.participating[i] = true
		if e.vec != nil && init != nil {
			for d := 0; d < dim; d++ {
				e.vec[i*dim+d] = init(i, d)
			}
		}
	}
}

// SetScalar overwrites node's estimate (scripted mid-epoch intervention).
func (e *Engine) SetScalar(node int, v float64) {
	e.scalar[node] = v
}

// SetExchangeFilter installs (or removes, with nil) the partition veto.
// The sharded overlay consults the same filter, so a partition blocks
// membership gossip along with aggregation exchanges.
func (e *Engine) SetExchangeFilter(filter func(i, j int) bool) {
	e.filter = filter
}

// SetMessageLoss changes the per-message drop probability mid-run.
func (e *Engine) SetMessageLoss(p float64) {
	e.cfg.MessageLoss = clamp01(p)
}

// SetLinkFailure changes the per-exchange drop probability mid-run.
func (e *Engine) SetLinkFailure(p float64) {
	e.cfg.LinkFailure = clamp01(p)
}

// RandomAlive returns a uniformly random live node (control stream), or
// -1 when none is left.
func (e *Engine) RandomAlive() int {
	if e.alive.Len() == 0 {
		return -1
	}
	return e.alive.Random(e.ctl)
}

// ReseedOverlay refreshes node's overlay view from a random sample of
// the whole network (post-heal rendezvous).
func (e *Engine) ReseedOverlay(node int) {
	e.overlay.onJoin(node, e.cycle, e.ctl)
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
