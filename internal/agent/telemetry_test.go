package agent

import (
	"context"
	"strings"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/obs"
	"antientropy/internal/transport"
)

// TestRTTAndTraceTelemetry runs a small fleet with a shared RTT
// histogram and trace ring and checks the exchange lifecycle shows up:
// measured round trips (counted and histogrammed) and initiate/absorb
// trace events.
func TestRTTAndTraceTelemetry(t *testing.T) {
	sched := testSchedule()
	rtt := obs.NewHistogram(obs.RTTBuckets)
	ring := obs.NewTraceRing(256)
	nodes := launchTelemetryCluster(t, 4, sched, rtt, ring)

	deadline := time.Now().Add(5 * time.Second)
	var total Metrics
	for {
		total = Metrics{}
		for _, n := range nodes {
			total.Accumulate(n.Metrics())
		}
		if total.RTTSamples > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if total.RTTSamples == 0 {
		t.Fatal("no exchange round trips measured")
	}
	if total.RTTTotal <= 0 {
		t.Errorf("RTTTotal = %v, want > 0", total.RTTTotal)
	}
	if snap := rtt.Snapshot(); snap.Count == 0 {
		t.Error("shared RTT histogram received no observations")
	}
	kinds := make(map[obs.TraceKind]int)
	for _, ev := range ring.Events() {
		kinds[ev.Kind]++
		if ev.Node == "" {
			t.Error("trace event without node address")
		}
	}
	if kinds[obs.TraceInitiate] == 0 {
		t.Errorf("no initiate trace events: %v", kinds)
	}
	if kinds[obs.TraceAbsorb] == 0 && kinds[obs.TraceServed] == 0 {
		t.Errorf("no absorb/served trace events: %v", kinds)
	}
}

// launchTelemetryCluster mirrors launchCluster but threads a shared RTT
// histogram and trace ring through every node's config.
func launchTelemetryCluster(t *testing.T, n int, sched core.Schedule, rtt *obs.Histogram, ring *obs.TraceRing) []*Node {
	t.Helper()
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 7})
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		v := float64(i)
		node, err := New(Config{
			Endpoint:  eps[i],
			Schedule:  sched,
			Function:  core.Average,
			Value:     func() float64 { return v },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quietLogger(),
			RTT:       rtt,
			Trace:     ring,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
		net.Close()
	})
	return nodes
}

func TestRegisterMetricsExportsCanonicalNames(t *testing.T) {
	reg := obs.NewRegistry()
	snap := Metrics{
		ExchangesInitiated: 10,
		ExchangesCompleted: 8,
		ExchangesServed:    7,
		Timeouts:           2,
		RefusedBusy:        1,
		PeerDeclined:       3,
		RefusedJoining:     4,
		StaleDropped:       5,
		EpochJumps:         6,
		DecodeErrors:       9,
		GossipFramesFull:   11,
		GossipFramesDelta:  12,
		GossipEntriesSent:  13,
	}
	RegisterMetrics(reg, func() Metrics { return snap })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for name, want := range map[string]string{
		"agg_exchanges_initiated_total":       "10",
		"agg_exchanges_completed_total":       "8",
		"agg_exchanges_served_total":          "7",
		"agg_exchange_timeouts_total":         "2",
		"agg_exchanges_refused_busy_total":    "1",
		"agg_exchanges_declined_total":        "3",
		"agg_exchanges_refused_joining_total": "4",
		"agg_stale_dropped_total":             "5",
		"agg_epoch_jumps_total":               "6",
		"agg_decode_errors_total":             "9",
		"agg_gossip_frames_full_total":        "11",
		"agg_gossip_frames_delta_total":       "12",
		"agg_gossip_entries_sent_total":       "13",
	} {
		if !strings.Contains(out, name+" "+want+"\n") {
			t.Errorf("missing %s %s in export", name, want)
		}
	}
	// Nil registry and nil snapshot are no-ops, not panics.
	RegisterMetrics(nil, func() Metrics { return snap })
	RegisterMetrics(reg, nil)
}

// TestMetricsSnapshotAllocFree guards the satellite fix: Metrics() must
// not take the node lock or allocate, so scraping never perturbs the
// exchange path.
func TestMetricsSnapshotAllocFree(t *testing.T) {
	var c counters
	c.exchangesInitiated.Add(3)
	if n := testing.AllocsPerRun(1000, func() { _ = c.snapshot() }); n != 0 {
		t.Errorf("counters.snapshot allocates %.1f times per call", n)
	}
}
