package agent

import (
	"context"
	"math"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/transport"
)

// launchLossyCluster starts founding nodes over a network with loss and
// latency.
func launchLossyCluster(t *testing.T, n int, netCfg transport.MemNetworkConfig,
	sched core.Schedule, values func(i int) float64) ([]*Node, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(netCfg)
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		v := values(i)
		node, err := New(Config{
			Endpoint:  eps[i],
			Schedule:  sched,
			Function:  core.Average,
			Value:     func() float64 { return v },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
		net.Close()
	})
	return nodes, net
}

func TestClusterConvergesUnderLossAndLatency(t *testing.T) {
	// 10% loss and real latency: §7.2 says reasonable loss keeps the
	// estimates reliable. Epoch outputs must land within a few percent of
	// the true average.
	sched := core.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    400 * time.Millisecond,
		CycleLen: 10 * time.Millisecond,
		Gamma:    40,
	}
	nodes, _ := launchLossyCluster(t, 10, transport.MemNetworkConfig{
		Loss:       0.1,
		MinLatency: 500 * time.Microsecond,
		MaxLatency: 2 * time.Millisecond,
		Seed:       7,
	}, sched, func(i int) float64 { return float64(i) })
	want := 4.5
	deadline := time.Now().Add(6 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		good := 0
		for _, node := range nodes {
			if out, ok := node.LastOutput(); ok && out.OK && math.Abs(out.Value-want) < 0.25 {
				good++
			}
		}
		if good >= 8 {
			return
		}
	}
	for i, node := range nodes {
		out, _ := node.LastOutput()
		t.Logf("node %d: %+v metrics=%+v", i, out, node.Metrics())
	}
	t.Fatal("cluster never produced accurate epoch outputs under loss")
}

func TestPartitionHealsAndEstimatesRecover(t *testing.T) {
	// Partition one node away: its exchanges all fail (it behaves as if
	// every link were down, §6.2) and its estimate freezes; after the
	// heal it rejoins the consensus by the following epoch.
	sched := core.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    300 * time.Millisecond,
		CycleLen: 10 * time.Millisecond,
		Gamma:    30,
	}
	nodes, net := launchLossyCluster(t, 6, transport.MemNetworkConfig{Seed: 8},
		sched, func(i int) float64 { return float64(i * 2) }) // avg 5
	victim := nodes[5]
	for _, other := range nodes[:5] {
		net.PartitionBoth(victim.Addr(), other.Addr())
	}
	// The victim's exchanges time out; the rest of the cluster still
	// completes its epochs and the five connected nodes' epoch outputs
	// agree among themselves. Instantaneous estimates are racy against
	// epoch restarts, so compare completed outputs.
	agreeDeadline := time.Now().Add(4 * time.Second)
	agreed := false
	for time.Now().Before(agreeDeadline) && !agreed {
		time.Sleep(100 * time.Millisecond)
		outs := make([]Output, 0, 5)
		for _, node := range nodes[:5] {
			if out, ok := node.LastOutput(); ok && out.OK {
				outs = append(outs, out)
			}
		}
		if len(outs) < 5 {
			continue
		}
		agreed = true
		for _, o := range outs[1:] {
			if o.Epoch != outs[0].Epoch || math.Abs(o.Value-outs[0].Value) > 0.5 {
				agreed = false
				break
			}
		}
	}
	if !agreed {
		t.Fatal("connected nodes never agreed during the partition")
	}
	if victim.Metrics().Timeouts == 0 {
		t.Fatal("partitioned node recorded no timeouts")
	}
	// Heal and wait: within two epochs everyone agrees again.
	for _, other := range nodes[:5] {
		net.HealBoth(victim.Addr(), other.Addr())
	}
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		vv, vok := victim.Estimate()
		ov, ook := nodes[0].Estimate()
		if vok && ook && math.Abs(vv-ov) < 0.1 {
			return
		}
	}
	t.Fatal("victim never re-converged after heal")
}

func TestCountLeaderElectionAdaptsAcrossEpochs(t *testing.T) {
	// §5: P_lead = C/N̂ with N̂ from the previous epoch. After the first
	// epoch, every node's size guess should be near the true size, so the
	// expected number of leaders per epoch stabilizes around C.
	const n = 8
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 9})
	defer net.Close()
	sched := core.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    300 * time.Millisecond,
		CycleLen: 10 * time.Millisecond,
		Gamma:    30,
	}
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := New(Config{
			Endpoint:         eps[i],
			Schedule:         sched,
			Mode:             ModeCount,
			Concurrency:      4,
			InitialSizeGuess: n,
			Bootstrap:        addrs,
			Seed:             uint64(i + 1),
			Logger:           quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	// Collect several epochs of outputs.
	deadline := time.Now().Add(6 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		withHistory := 0
		for _, node := range nodes {
			if len(node.Outputs()) >= 3 {
				withHistory++
			}
		}
		if withHistory == n {
			break
		}
	}
	// Across the retained outputs, the usable size estimates should
	// bracket the truth loosely (few instances on a tiny cluster).
	usable := 0
	for _, node := range nodes {
		for _, out := range node.Outputs() {
			if out.OK && out.Value > n/4 && out.Value < n*4 {
				usable++
			}
		}
	}
	if usable < n {
		t.Fatalf("only %d usable size outputs across the cluster", usable)
	}
}

func TestLateReplyIsIgnored(t *testing.T) {
	// A reply arriving after the timeout must not be applied (the
	// paper's lost-response case). Force it with a timeout shorter than
	// the network latency.
	sched := core.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    time.Hour, // no epoch boundary interference
		CycleLen: 20 * time.Millisecond,
		Gamma:    1 << 20,
	}
	net := transport.NewMemNetwork(transport.MemNetworkConfig{
		MinLatency: 15 * time.Millisecond,
		MaxLatency: 18 * time.Millisecond,
		Seed:       10,
	})
	defer net.Close()
	epA, epB := net.Endpoint(), net.Endpoint()
	mk := func(ep *transport.MemEndpoint, v float64, peer string, seed uint64) *Node {
		node, err := New(Config{
			Endpoint: ep, Schedule: sched,
			Value:          func() float64 { return v },
			Bootstrap:      []string{peer},
			RequestTimeout: 5 * time.Millisecond, // << round trip ≈ 30ms
			Seed:           seed, Logger: quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	a := mk(epA, 10, epB.Addr(), 1)
	b := mk(epB, 20, epA.Addr(), 2)
	for _, node := range []*Node{a, b} {
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer a.Stop()
	defer b.Stop()
	time.Sleep(time.Second)
	ma, mb := a.Metrics(), b.Metrics()
	if ma.Timeouts+mb.Timeouts == 0 {
		t.Fatalf("expected timeouts with 5ms timeout over 15ms links: %+v %+v", ma, mb)
	}
	if ma.ExchangesCompleted+mb.ExchangesCompleted != 0 {
		t.Fatalf("no exchange should complete inside the timeout: %+v %+v", ma, mb)
	}
	// States have drifted (responders updated, initiators did not) — the
	// documented lost-response semantics; what matters is that nothing
	// crashed and the nodes keep running.
	if _, ok := a.Estimate(); !ok {
		t.Fatal("node a lost its estimate")
	}
}

func TestJoinReplySeedsMembership(t *testing.T) {
	sched := testSchedule()
	nodes, net := launchCluster(t, 5, sched, func(i int) float64 { return 1 })
	time.Sleep(100 * time.Millisecond) // let gossip mix the caches
	joiner, err := New(Config{
		Endpoint: net.Endpoint(),
		Schedule: sched,
		Value:    func() float64 { return 1 },
		Seeds:    []string{nodes[0].Addr()},
		Seed:     50,
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	// The JoinReply plus membership gossip must teach the joiner more
	// peers than its single seed.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if joiner.PeerCount() >= 3 {
			return
		}
	}
	t.Fatalf("joiner knows only %d peers (%v)", joiner.PeerCount(), joiner.Peers())
}
