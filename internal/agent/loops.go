package agent

import (
	"context"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/newscast"
	"antientropy/internal/wire"
)

// tickLoop is the active thread of Figure 1: every δ it advances the
// epoch if the schedule says so and initiates one exchange (aggregation
// when participating, membership-only while waiting to join).
//
// Each node's cycle is offset by a random phase within δ. Without the
// stagger, nodes started together initiate simultaneously, find each
// other busy and refuse each other's exchanges every single cycle —
// the classic synchronized-gossip livelock.
func (n *Node) tickLoop(ctx context.Context) {
	defer n.wg.Done()
	n.mu.Lock()
	phase := time.Duration(n.rng.Intn(int(n.cfg.Schedule.CycleLen)))
	n.mu.Unlock()
	select {
	case <-ctx.Done():
		return
	case <-time.After(phase):
	}
	ticker := time.NewTicker(n.cfg.Schedule.CycleLen)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			n.advanceEpoch(now)
			n.initiate(ctx, now)
		}
	}
}

// advanceEpoch applies the schedule: when wall-clock time has entered a
// later epoch, finish the current instance (recording its output) and
// restart from fresh local values (§4.1). Joiners whose wait has elapsed
// begin participating.
func (n *Node) advanceEpoch(now time.Time) {
	scheduled := n.cfg.Schedule.EpochAt(now)
	n.mu.Lock()
	defer n.mu.Unlock()
	if scheduled <= n.epoch {
		return
	}
	n.finishEpochLocked(now)
	n.epoch = scheduled
	n.startEpochLocked()
}

// finishEpochLocked records the ending epoch's output.
func (n *Node) finishEpochLocked(now time.Time) {
	if !n.participating {
		return
	}
	v, ok := n.estimateLocked()
	out := Output{Epoch: n.epoch, Value: v, OK: ok, At: now}
	n.outputs = append(n.outputs, out)
	if len(n.outputs) > n.cfg.MaxOutputs {
		n.outputs = n.outputs[len(n.outputs)-n.cfg.MaxOutputs:]
	}
	n.publishLocked(out)
}

// startEpochLocked re-initializes the protocol instance for n.epoch.
func (n *Node) startEpochLocked() {
	if !n.participating && n.epoch >= n.joinEpoch {
		n.participating = true
	}
	if n.participating {
		n.resetStateLocked()
	}
}

// resetStateLocked loads fresh initial values (§4.1 restart).
func (n *Node) resetStateLocked() {
	if n.cfg.Mode == ModeScalar {
		n.scalar = n.cfg.Value()
		return
	}
	// ModeCount: flip the P_lead coin using the previous epoch's size
	// estimate (§5).
	sizeGuess := n.cfg.InitialSizeGuess
	for i := len(n.outputs) - 1; i >= 0; i-- {
		if n.outputs[i].OK {
			sizeGuess = n.outputs[i].Value
			break
		}
	}
	pLead := core.LeaderProbability(n.cfg.Concurrency, sizeGuess)
	if n.rng.Bool(pLead) {
		n.mapState = core.NewLeaderState(n.leaderID)
	} else {
		n.mapState = core.MapState{}
	}
}

// initiate performs the active-thread step: select a peer and run one
// push-pull exchange, or a membership exchange while not participating.
func (n *Node) initiate(ctx context.Context, now time.Time) {
	n.mu.Lock()
	if n.busy {
		// The previous exchange is still outstanding; §6.2 says skipping
		// is harmless.
		n.mu.Unlock()
		return
	}
	peer, ok := n.cache.Peer(n.rng)
	if !ok {
		n.mu.Unlock()
		return
	}
	seq := n.nextSeqLocked()
	if !n.participating {
		// Joiners integrate into the overlay while they wait (§4.2).
		msg := &wire.Membership{From: n.Addr(), Seq: seq, Entries: n.gossipLocked(now)}
		n.mu.Unlock()
		n.send(peer, msg)
		return
	}
	if n.cfg.Schedule.CycleWithin(now) >= n.cfg.Schedule.Gamma {
		// §4.1: the protocol is terminated after γ cycles; the converged
		// estimate is this epoch's output and the node idles until the
		// next epoch (it still answers peers that are behind, and keeps
		// the overlay fresh with membership gossip).
		msg := &wire.Membership{From: n.Addr(), Seq: seq, Entries: n.gossipLocked(now)}
		n.mu.Unlock()
		n.send(peer, msg)
		return
	}
	n.busy = true
	ch := make(chan wire.Payload, 1)
	n.pending[seq] = ch
	payload := n.payloadLocked(seq, now)
	epoch := n.epoch
	n.metrics.ExchangesInitiated++
	n.mu.Unlock()

	n.send(peer, &wire.ExchangeRequest{From: n.Addr(), Payload: payload})
	n.wg.Add(1)
	go n.awaitReply(ctx, seq, epoch, payload, ch)
}

// awaitReply waits for the push-pull response and applies it (active
// thread's sp ← UPDATE(sp, sq)).
func (n *Node) awaitReply(ctx context.Context, seq, epoch uint64, sent wire.Payload, ch <-chan wire.Payload) {
	defer n.wg.Done()
	timer := time.NewTimer(n.cfg.RequestTimeout)
	defer timer.Stop()
	var reply wire.Payload
	ok := false
	select {
	case <-ctx.Done():
	case <-timer.C:
	case reply = <-ch:
		ok = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.pending, seq)
	n.busy = false
	if !ok {
		n.metrics.Timeouts++
		return
	}
	if reply.Flags&wire.FlagRefused != 0 {
		// The peer declined (busy or joining): the exchange is skipped,
		// exactly as if the link had failed (§6.2).
		n.metrics.PeerDeclined++
		return
	}
	// A reply from a different epoch must not be merged: the local
	// instance it belonged to is gone (its effect equals a lost reply).
	if reply.Epoch != n.epoch || epoch != n.epoch {
		n.metrics.StaleDropped++
		return
	}
	n.applyLocked(reply)
	n.metrics.ExchangesCompleted++
	_ = sent
}

// applyLocked merges a remote state into ours.
func (n *Node) applyLocked(remote wire.Payload) {
	if n.cfg.Mode == ModeScalar {
		next, _ := n.cfg.Function.Update(n.scalar, remote.Scalar)
		n.scalar = next
		return
	}
	theirs := make(core.MapState, len(remote.Entries))
	for _, e := range remote.Entries {
		theirs[core.LeaderID(e.Leader)] = e.Value
	}
	n.mapState = core.Merge(n.mapState, theirs)
}

// payloadLocked snapshots the node's state for the wire.
func (n *Node) payloadLocked(seq uint64, now time.Time) wire.Payload {
	p := wire.Payload{
		Seq:    seq,
		Epoch:  n.epoch,
		FuncID: n.funcID,
		Gossip: n.gossipLocked(now),
	}
	if n.cfg.Mode == ModeScalar {
		p.Scalar = n.scalar
		return p
	}
	entries := make([]wire.MapEntry, 0, len(n.mapState))
	for l, v := range n.mapState {
		if len(entries) == wire.MaxMapEntries {
			break
		}
		entries = append(entries, wire.MapEntry{Leader: int64(l), Value: v})
	}
	p.Entries = entries
	return p
}

// gossipLocked builds the piggybacked NEWSCAST view: cache content plus a
// fresh self-descriptor, truncated to the wire limit.
func (n *Node) gossipLocked(now time.Time) []wire.Descriptor {
	view := n.cache.View(now.UnixMicro())
	if len(view) > wire.MaxDescriptors {
		view = view[:wire.MaxDescriptors]
	}
	out := make([]wire.Descriptor, 0, len(view))
	for _, e := range view {
		out = append(out, wire.Descriptor{Addr: e.Key, Stamp: e.Stamp})
	}
	return out
}

// absorbGossipLocked merges received descriptors into the cache.
func (n *Node) absorbGossipLocked(ds []wire.Descriptor) {
	if len(ds) == 0 {
		return
	}
	entries := make([]newscast.Entry[string], 0, len(ds))
	for _, d := range ds {
		if d.Addr == "" {
			continue
		}
		entries = append(entries, newscast.Entry[string]{Key: d.Addr, Stamp: d.Stamp})
	}
	n.cache.Absorb(entries)
}

func (n *Node) nextSeqLocked() uint64 {
	n.seq++
	return n.seq
}

// send encodes and transmits a message; transport errors are logged and
// otherwise treated as loss, per the system model.
func (n *Node) send(to string, msg wire.Message) {
	data, err := wire.Encode(msg)
	if err != nil {
		n.log.Error("encode failed", "type", msg.Type().String(), "err", err)
		return
	}
	if err := n.cfg.Endpoint.Send(to, data); err != nil {
		n.log.Debug("send failed", "to", to, "type", msg.Type().String(), "err", err)
	}
}

// sendJoinRequest asks one seed for epoch timing and contacts (§4.2).
func (n *Node) sendJoinRequest() {
	n.mu.Lock()
	seq := n.nextSeqLocked()
	var seed string
	if len(n.cfg.Seeds) > 0 {
		seed = n.cfg.Seeds[n.rng.Intn(len(n.cfg.Seeds))]
	}
	n.mu.Unlock()
	if seed == "" || seed == n.Addr() {
		return
	}
	n.send(seed, &wire.JoinRequest{From: n.Addr(), Seq: seq})
}
