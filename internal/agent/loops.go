package agent

import (
	"context"
	"slices"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/obs"
	"antientropy/internal/overlay"
	"antientropy/internal/wire"
)

// tickLoop is the active thread of Figure 1: every δ it advances the
// epoch if the schedule says so and initiates one exchange (aggregation
// when participating, membership-only while waiting to join).
//
// Each node's cycle is offset by a random phase within δ. Without the
// stagger, nodes started together initiate simultaneously, find each
// other busy and refuse each other's exchanges every single cycle —
// the classic synchronized-gossip livelock.
func (n *Node) tickLoop(ctx context.Context) {
	defer n.wg.Done()
	n.mu.Lock()
	phase := time.Duration(n.rng.Intn(int(n.cfg.Schedule.CycleLen)))
	n.mu.Unlock()
	select {
	case <-ctx.Done():
		return
	case <-time.After(phase):
	}
	ticker := time.NewTicker(n.cfg.Schedule.CycleLen)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			n.advanceEpoch(now)
			n.initiate(ctx, now)
		}
	}
}

// advanceEpoch applies the schedule: when wall-clock time has entered a
// later epoch, finish the current instance (recording its output) and
// restart from fresh local values (§4.1). Joiners whose wait has elapsed
// begin participating.
func (n *Node) advanceEpoch(now time.Time) {
	scheduled := n.cfg.Schedule.EpochAt(now)
	n.mu.Lock()
	defer n.mu.Unlock()
	if scheduled <= n.epoch {
		return
	}
	n.finishEpochLocked(now)
	n.epoch = scheduled
	n.startEpochLocked()
}

// finishEpochLocked records the ending epoch's output.
func (n *Node) finishEpochLocked(now time.Time) {
	if !n.participating {
		return
	}
	v, ok := n.estimateLocked()
	out := Output{Epoch: n.epoch, Value: v, OK: ok, At: now}
	n.outputs = append(n.outputs, out)
	if len(n.outputs) > n.cfg.MaxOutputs {
		n.outputs = n.outputs[len(n.outputs)-n.cfg.MaxOutputs:]
	}
	n.publishLocked(out)
}

// startEpochLocked re-initializes the protocol instance for n.epoch.
func (n *Node) startEpochLocked() {
	if !n.participating && n.epoch >= n.joinEpoch {
		n.participating = true
	}
	if n.participating {
		n.resetStateLocked()
	}
}

// resetStateLocked loads fresh initial values (§4.1 restart).
func (n *Node) resetStateLocked() {
	if n.guard != nil {
		// Peer samples gathered under the previous epoch's value
		// assignment must not vote in the next.
		n.guard.ResetAll()
	}
	if n.cfg.Mode == ModeScalar {
		if n.hasPending {
			n.scalar = n.pendingValue
		} else {
			n.scalar = n.cfg.Value()
		}
		return
	}
	// ModeCount: flip the P_lead coin using the previous epoch's size
	// estimate (§5).
	sizeGuess := n.cfg.InitialSizeGuess
	for i := len(n.outputs) - 1; i >= 0; i-- {
		if n.outputs[i].OK {
			sizeGuess = n.outputs[i].Value
			break
		}
	}
	pLead := core.LeaderProbability(n.cfg.Concurrency, sizeGuess)
	if n.rng.Bool(pLead) {
		n.mapState = core.NewLeaderState(n.leaderID)
	} else {
		n.mapState = core.MapState{}
	}
}

// initiate performs the active-thread step: select a peer and run one
// push-pull exchange, or a membership exchange while not participating.
func (n *Node) initiate(ctx context.Context, now time.Time) {
	n.mu.Lock()
	if n.busy {
		// The previous exchange is still outstanding; §6.2 says skipping
		// is harmless.
		n.mu.Unlock()
		return
	}
	id, ok := n.view.Peer(n.rng)
	if !ok {
		n.mu.Unlock()
		return
	}
	peer := n.book.Addr(id)
	sess := n.peers.Get(peer)
	seq := n.nextSeqLocked()
	if !n.participating || n.cfg.Schedule.CycleWithin(now) >= n.cfg.Schedule.Gamma {
		// Joiners integrate into the overlay while they wait (§4.2), and
		// after γ cycles the protocol is terminated (§4.1): the converged
		// estimate is this epoch's output and the node idles until the
		// next epoch — it still answers peers that are behind, and keeps
		// the overlay fresh with membership gossip.
		frame, version := n.frameForLocked(sess, now)
		msg := &wire.Membership{From: n.Addr(), Seq: seq, View: frame}
		n.mu.Unlock()
		n.send(peer, msg, version)
		return
	}
	n.busy = true
	ch := make(chan wire.Payload, 1)
	n.pending[seq] = ch
	xid := n.xidLocked(seq)
	payload, version := n.payloadLocked(sess, seq, xid, now)
	epoch := n.epoch
	n.metrics.exchangesInitiated.Add(1)
	n.mu.Unlock()

	start := time.Now()
	n.trace(obs.TraceInitiate, peer, seq, epoch, xid, start)
	n.send(peer, &wire.ExchangeRequest{From: n.Addr(), Payload: payload}, version)
	n.wg.Add(1)
	go n.awaitReply(ctx, peer, seq, epoch, xid, start, ch)
}

// awaitReply waits for the push-pull response and applies it (active
// thread's sp ← UPDATE(sp, sq)).
func (n *Node) awaitReply(ctx context.Context, peer string, seq, epoch, xid uint64, start time.Time, ch <-chan wire.Payload) {
	defer n.wg.Done()
	timer := time.NewTimer(n.cfg.RequestTimeout)
	defer timer.Stop()
	var reply wire.Payload
	ok := false
	select {
	case <-ctx.Done():
	case <-timer.C:
	case reply = <-ch:
		ok = true
	}
	if ok {
		// The round trip is measured for every reply, refusals included:
		// it observes the network and the peer's receive path, not the
		// merge. Timeouts are accounted separately — mixing the timeout
		// bound into the latency histogram would fabricate a mode at
		// RequestTimeout.
		rtt := time.Since(start)
		n.metrics.rttSamples.Add(1)
		n.metrics.rttTotalNanos.Add(int64(rtt))
		if n.cfg.RTT != nil {
			n.cfg.RTT.Observe(rtt.Seconds())
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.pending, seq)
	n.busy = false
	if !ok {
		n.metrics.timeouts.Add(1)
		n.trace(obs.TraceTimeout, peer, seq, epoch, xid, time.Time{})
		return
	}
	if reply.Flags&wire.FlagRefused != 0 {
		// The peer declined (busy or joining): the exchange is skipped,
		// exactly as if the link had failed (§6.2).
		n.metrics.peerDeclined.Add(1)
		n.trace(obs.TraceDeclined, peer, seq, epoch, xid, time.Time{})
		return
	}
	// A reply from a different epoch must not be merged: the local
	// instance it belonged to is gone (its effect equals a lost reply).
	if reply.Epoch != n.epoch || epoch != n.epoch {
		n.metrics.staleDropped.Add(1)
		n.trace(obs.TraceStaleDrop, peer, seq, epoch, xid, time.Time{})
		return
	}
	n.applyLocked(reply)
	n.metrics.exchangesCompleted.Add(1)
	n.trace(obs.TraceAbsorb, peer, seq, n.epoch, xid, time.Time{})
}

// trace records one exchange-lifecycle event on the optional ring. A
// zero at is stamped by the ring.
func (n *Node) trace(kind obs.TraceKind, peer string, seq, epoch, xid uint64, at time.Time) {
	if n.cfg.Trace == nil {
		return
	}
	n.cfg.Trace.Record(obs.TraceEvent{
		At: at, Node: n.Addr(), Peer: peer, Kind: kind, Seq: seq, Epoch: epoch, XID: xid,
	})
}

// applyLocked merges a remote state into ours.
func (n *Node) applyLocked(remote wire.Payload) {
	if n.cfg.Mode == ModeScalar {
		if n.guard != nil {
			// The combiner defense decides what the peer's reported
			// estimate is worth before it enters the local state.
			n.scalar = n.guard.Merge(0, n.scalar, remote.Scalar)
			return
		}
		next, _ := n.cfg.Function.Update(n.scalar, remote.Scalar)
		n.scalar = next
		return
	}
	theirs := make(core.MapState, len(remote.Entries))
	for _, e := range remote.Entries {
		theirs[core.LeaderID(e.Leader)] = e.Value
	}
	n.mapState = core.Merge(n.mapState, theirs)
}

// payloadLocked snapshots the node's state for the wire, with the
// membership frame addressed to the exchange peer's session. It returns
// the wire version the payload was built for — the frame shape and the
// encoding version must be decided at the same instant, under the same
// lock, or a concurrent version observation could pair a delta frame
// with a legacy encoding.
func (n *Node) payloadLocked(sess *peerSession, seq, xid uint64, now time.Time) (wire.Payload, uint8) {
	frame, version := n.frameForLocked(sess, now)
	p := wire.Payload{
		Seq:    seq,
		XID:    xid,
		Epoch:  n.epoch,
		FuncID: n.funcID,
		View:   frame,
	}
	if n.cfg.Mode == ModeScalar {
		p.Scalar = n.scalar
		if adv := n.cfg.Adversary; adv != nil {
			// The single wire-level injection point: requests and replies
			// alike report the corrupted value (and, for replay-stale, a
			// past epoch tag), while XID/Seq stay honest so the exchange
			// still stitches into one trace span.
			if v, epochTag, lied := adv(n.epoch, n.scalar); lied {
				p.Scalar, p.Epoch = v, epochTag
				n.metrics.adversaryLies.Add(1)
			}
		}
		return p, version
	}
	entries := make([]wire.MapEntry, 0, len(n.mapState))
	for l, v := range n.mapState {
		if len(entries) == wire.MaxMapEntries {
			break
		}
		entries = append(entries, wire.MapEntry{Leader: int64(l), Value: v})
	}
	p.Entries = entries
	return p, version
}

// viewDescriptorsLocked unpacks the piggybacked NEWSCAST view — cache
// content plus a fresh self-descriptor — into wire form for a peer at
// the given wire version (stamps as ticks, or as schedule-derived
// microseconds for legacy peers), truncated to the wire limit.
func (n *Node) viewDescriptorsLocked(now time.Time, version uint8) []wire.Descriptor {
	packed := n.view.Packed()
	out := make([]wire.Descriptor, 0, len(packed)+1)
	// The byte cap (MaxViewBytes) applies here too; the fresh
	// self-descriptor appended last is always included, so its wire size
	// is reserved up front.
	budget := n.cfg.MaxViewBytes - wire.DescriptorWireSize(n.Addr())
	for _, e := range packed {
		if len(out) == wire.MaxDescriptors-1 {
			break
		}
		a := n.book.Addr(overlay.UnpackKey(e))
		if n.cfg.MaxViewBytes > 0 {
			sz := wire.DescriptorWireSize(a)
			if sz > budget {
				break
			}
			budget -= sz
		}
		out = append(out, wire.Descriptor{
			Addr:  a,
			Stamp: n.stampToWire(overlay.UnpackStamp(e), version),
		})
	}
	return append(out, wire.Descriptor{Addr: n.Addr(), Stamp: n.stampToWire(n.tick(now), version)})
}

// frameForLocked builds the outgoing membership frame for one peer
// session, and returns the wire version to encode the carrying message
// at. The per-peer delta codec decides between a first-contact full
// view and a delta against the peer's last-acknowledged snapshot,
// straight off the packed view so addresses are resolved only for the
// entries actually sent. Peers that spoke the legacy wire version get a
// plain un-numbered full view — they track no generations.
func (n *Node) frameForLocked(sess *peerSession, now time.Time) (wire.ViewFrame, uint8) {
	if sess.version == wire.VersionLegacy {
		frame := wire.ViewFrame{Kind: wire.ViewFull, Entries: n.viewDescriptorsLocked(now, sess.version)}
		n.metrics.gossipFramesFull.Add(1)
		n.metrics.gossipEntriesSent.Add(int64(len(frame.Entries)))
		return frame, wire.VersionLegacy
	}
	packed := n.view.Packed()
	if len(packed) > wire.MaxDescriptors-1 {
		packed = packed[:wire.MaxDescriptors-1]
	}
	// Insert the fresh self-descriptor at its sort position: the codec
	// diffs sorted packed sets.
	self := overlay.Pack(n.view.Self(), n.tick(now))
	at, _ := slices.BinarySearch(packed, self)
	buf := append(n.packedScratch[:0], packed[:at]...)
	buf = append(buf, self)
	buf = append(buf, packed[at:]...)
	n.packedScratch = buf
	frame := sess.codec.EncodeViewBudget(buf, n.book.Addr, n.cfg.MaxViewBytes)
	if frame.Kind == wire.ViewDelta {
		n.metrics.gossipFramesDelta.Add(1)
	} else {
		n.metrics.gossipFramesFull.Add(1)
	}
	n.metrics.gossipEntriesSent.Add(int64(len(frame.Entries)))
	return frame, sess.wireVersion()
}

// downgradeStreak is how many consecutive lower-version datagrams a
// session tolerates before downgrading: one or two are the echo of our
// own multi-version join probe or a reordered frame, a steady stream
// means the peer really is running an older binary again (a rollback)
// and would drop everything we encode at the newer version.
const downgradeStreak = 3

// observePeerLocked records the wire version a peer just demonstrated
// and returns its session. Versions upgrade immediately, but downgrade
// only after downgradeStreak consecutive datagrams at the same lower
// version: last-message-wins would let the echo of our own join probe
// latch two current nodes onto a downlevel wire for good, while never
// downgrading would permanently blackhole a peer rolled back to an
// older binary. The rule is version-agnostic — a v3 session rolls back
// to v2 (losing only exchange IDs) exactly like a v2 session rolls
// back to the legacy full-view wire.
func (n *Node) observePeerLocked(peer string, version uint8) *peerSession {
	sess := n.peers.Get(peer)
	switch {
	case version >= sess.version:
		sess.version = version
		sess.downStreak = 0
	default:
		if sess.downVersion != version {
			sess.downVersion, sess.downStreak = version, 0
		}
		if sess.downStreak++; sess.downStreak >= downgradeStreak {
			sess.version = version
			sess.downStreak = 0
		}
	}
	return sess
}

// absorbFrameLocked runs a received membership frame through the peer
// session's codec (acknowledgement bookkeeping) and merges the carried
// descriptors into the cache.
func (n *Node) absorbFrameLocked(sess *peerSession, f wire.ViewFrame) {
	n.absorbDescriptorsLocked(sess.codec.Observe(f))
}

// absorbDescriptorsLocked merges received descriptors into the cache.
func (n *Node) absorbDescriptorsLocked(ds []wire.Descriptor) {
	if len(ds) == 0 {
		return
	}
	entries := make([]overlay.Entry, 0, len(ds))
	for _, d := range ds {
		if d.Addr == "" {
			continue
		}
		entries = append(entries, overlay.Entry{Key: n.book.Intern(d.Addr), Stamp: n.stampFromWire(d.Stamp)})
	}
	n.view.Absorb(entries)
}

func (n *Node) nextSeqLocked() uint64 {
	n.seq++
	return n.seq
}

// send encodes and transmits a message at the given wire version (0
// means the current one); transport errors are logged and otherwise
// treated as loss, per the system model. The caller resolves the
// version in the same critical section that shaped the message, so a
// concurrent version observation can never pair a delta frame with a
// legacy encoding.
func (n *Node) send(to string, msg wire.Message, version uint8) {
	if version == 0 {
		version = wire.Version
	}
	data, err := wire.EncodeVersion(msg, version)
	if err != nil {
		n.log.Error("encode failed", "type", msg.Type().String(), "err", err)
		return
	}
	if err := n.cfg.Endpoint.Send(to, data); err != nil {
		n.log.Debug("send failed", "to", to, "type", msg.Type().String(), "err", err)
	}
}

// sendJoinRequest asks one seed for epoch timing and contacts (§4.2).
// While the seed's wire version is unknown, the request goes out at
// every supported version: a downlevel seed silently drops datagrams
// encoded at versions it does not know and, as the contacted party,
// would never speak first — so the passive per-connection negotiation
// needs this active probe to bootstrap a mixed-version join. Its reply
// pins the version for all subsequent traffic; duplicate JoinReplies
// are harmlessly idempotent.
func (n *Node) sendJoinRequest() {
	n.mu.Lock()
	seq := n.nextSeqLocked()
	var seed string
	if len(n.cfg.Seeds) > 0 {
		seed = n.cfg.Seeds[n.rng.Intn(len(n.cfg.Seeds))]
	}
	versionKnown := false
	version := uint8(wire.Version)
	if sess, ok := n.peers.Peek(seed); ok && sess.version != 0 {
		versionKnown = true
		version = sess.version
	}
	n.mu.Unlock()
	if seed == "" || seed == n.Addr() {
		return
	}
	msg := &wire.JoinRequest{From: n.Addr(), Seq: seq}
	n.send(seed, msg, version)
	if !versionKnown {
		n.send(seed, msg, wire.VersionDelta)
		n.send(seed, msg, wire.VersionLegacy)
	}
}
