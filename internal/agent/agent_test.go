package agent

import (
	"context"
	"log/slog"
	"math"
	"runtime"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/transport"
)

// quietLogger suppresses debug chatter in tests.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// testSchedule returns a fast schedule: δ = 10ms, γ = 25 cycles,
// Δ = 250ms, anchored in the recent past so every node agrees on epochs.
func testSchedule() core.Schedule {
	return core.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    250 * time.Millisecond,
		CycleLen: 10 * time.Millisecond,
		Gamma:    25,
	}
}

// launchCluster starts n founding scalar nodes over a fresh mem network.
func launchCluster(t *testing.T, n int, sched core.Schedule, values func(i int) float64) ([]*Node, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 42})
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		v := values(i)
		node, err := New(Config{
			Endpoint:  eps[i],
			Schedule:  sched,
			Function:  core.Average,
			Value:     func() float64 { return v },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
		net.Close()
	})
	return nodes, net
}

func TestNewValidation(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 1})
	defer net.Close()
	ep := net.Endpoint()
	sched := testSchedule()
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no endpoint", Config{Schedule: sched, Value: func() float64 { return 1 }}},
		{"bad schedule", Config{Endpoint: ep, Value: func() float64 { return 1 }}},
		{"scalar without value", Config{Endpoint: ep, Schedule: sched}},
		{"unknown mode", Config{Endpoint: ep, Schedule: sched, Mode: Mode(9), Value: func() float64 { return 1 }}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	// Valid config fills defaults.
	n, err := New(Config{Endpoint: ep, Schedule: sched, Value: func() float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.Function.Name != "average" || n.cfg.CacheSize <= 0 || n.cfg.RequestTimeout <= 0 {
		t.Error("defaults not applied")
	}
}

func TestStartTwiceFails(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 1})
	defer net.Close()
	node, err := New(Config{
		Endpoint: net.Endpoint(), Schedule: testSchedule(),
		Value: func() float64 { return 1 }, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	if err := node.Start(context.Background()); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestStopIdempotent(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 1})
	defer net.Close()
	node, err := New(Config{
		Endpoint: net.Endpoint(), Schedule: testSchedule(),
		Value: func() float64 { return 1 }, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := node.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := node.Stop(); err != nil {
		t.Fatal("second stop errored:", err)
	}
	// Stop before start is a no-op.
	fresh, err := New(Config{
		Endpoint: net.Endpoint(), Schedule: testSchedule(),
		Value: func() float64 { return 1 }, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterConvergesToAverage(t *testing.T) {
	const n = 12
	nodes, _ := launchCluster(t, n, testSchedule(), func(i int) float64 { return float64(i * 10) })
	want := 0.0
	for i := 0; i < n; i++ {
		want += float64(i * 10)
	}
	want /= n

	// Wait for convergence within the running epoch.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		worst := 0.0
		allOK := true
		for _, node := range nodes {
			v, ok := node.Estimate()
			if !ok {
				allOK = false
				break
			}
			if d := math.Abs(v - want); d > worst {
				worst = d
			}
		}
		if allOK && worst < 0.01*want {
			return // converged
		}
	}
	for i, node := range nodes {
		v, ok := node.Estimate()
		t.Logf("node %d: estimate %.3f ok=%v metrics=%+v", i, v, ok, node.Metrics())
	}
	t.Fatalf("cluster did not converge to %.2f", want)
}

func TestEpochOutputsRecorded(t *testing.T) {
	nodes, _ := launchCluster(t, 6, testSchedule(), func(i int) float64 { return 4 })
	// Wait at least two epoch boundaries.
	time.Sleep(600 * time.Millisecond)
	for i, node := range nodes {
		outs := node.Outputs()
		if len(outs) == 0 {
			t.Fatalf("node %d recorded no epoch outputs", i)
		}
		last, ok := node.LastOutput()
		if !ok {
			t.Fatalf("node %d has no last output", i)
		}
		if !last.OK {
			t.Fatalf("node %d last output unusable", i)
		}
		if math.Abs(last.Value-4) > 0.01 {
			t.Fatalf("node %d epoch output %.4f, want 4 (constant inputs)", i, last.Value)
		}
		// Epochs must be strictly increasing.
		for j := 1; j < len(outs); j++ {
			if outs[j].Epoch <= outs[j-1].Epoch {
				t.Fatalf("node %d outputs not epoch-ordered: %+v", i, outs)
			}
		}
	}
}

func TestRestartAdaptsToChangedValues(t *testing.T) {
	// §4.1: restarting makes the protocol adaptive. Change the local
	// values after the first epoch; later outputs must track the new
	// average.
	const n = 8
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 43})
	defer net.Close()
	sched := testSchedule()
	var mu chan struct{} // closed when values switch
	mu = make(chan struct{})
	addrs := make([]string, n)
	eps := make([]*transport.MemEndpoint, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := New(Config{
			Endpoint: eps[i],
			Schedule: sched,
			Value: func() float64 {
				select {
				case <-mu:
					return 100
				default:
					return 10
				}
			},
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	time.Sleep(300 * time.Millisecond) // let the first epoch finish
	close(mu)                          // values jump from 10 to 100
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		adapted := 0
		for _, node := range nodes {
			if out, ok := node.LastOutput(); ok && math.Abs(out.Value-100) < 1 {
				adapted++
			}
		}
		if adapted == n {
			return
		}
	}
	for i, node := range nodes {
		out, ok := node.LastOutput()
		t.Logf("node %d: last output %+v ok=%v", i, out, ok)
	}
	t.Fatal("outputs never adapted to the new values")
}

func TestJoinerWaitsForNextEpoch(t *testing.T) {
	nodes, net := launchCluster(t, 4, testSchedule(), func(i int) float64 { return 7 })
	// A joiner arrives mid-epoch.
	ep := net.Endpoint()
	joiner, err := New(Config{
		Endpoint: ep,
		Schedule: testSchedule(),
		Value:    func() float64 { return 7 },
		Seeds:    []string{nodes[0].Addr()},
		Seed:     99,
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	if joiner.Participating() {
		t.Fatal("joiner participated immediately")
	}
	if _, ok := joiner.Estimate(); ok {
		t.Fatal("joiner produced an estimate before joining")
	}
	// After an epoch boundary the joiner participates and converges.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if v, ok := joiner.Estimate(); ok && math.Abs(v-7) < 0.1 {
			if joiner.PeerCount() == 0 {
				t.Fatal("joiner has no peers despite participating")
			}
			return
		}
	}
	t.Fatalf("joiner never integrated: participating=%v metrics=%+v",
		joiner.Participating(), joiner.Metrics())
}

func TestEpochJumpForward(t *testing.T) {
	// A node whose schedule lags (its Start is in the future relative to
	// the others) sits in epoch 0; contact with a normal node must pull
	// it forward epidemically (§4.3).
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 44})
	defer net.Close()
	fast := testSchedule()
	fast.Start = fast.Start.Add(-10 * fast.Delta) // deep into epoch ~10
	slow := fast
	slow.Start = time.Now().Add(time.Hour) // thinks epochs haven't begun

	epA, epB := net.Endpoint(), net.Endpoint()
	a, err := New(Config{
		Endpoint: epA, Schedule: fast,
		Value: func() float64 { return 1 }, Bootstrap: []string{epB.Addr()},
		Seed: 1, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		Endpoint: epB, Schedule: slow,
		Value: func() float64 { return 3 }, Bootstrap: []string{epA.Addr()},
		Seed: 2, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	if err := b.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if b.Epoch() >= a.Epoch()-1 && b.Metrics().EpochJumps > 0 {
			return
		}
	}
	t.Fatalf("slow node never jumped: a.epoch=%d b.epoch=%d b.metrics=%+v",
		a.Epoch(), b.Epoch(), b.Metrics())
}

func TestTimeoutOnDeadPeer(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 45})
	defer net.Close()
	alive := net.Endpoint()
	dead := net.Endpoint()
	node, err := New(Config{
		Endpoint: alive, Schedule: testSchedule(),
		Value: func() float64 { return 5 }, Bootstrap: []string{dead.Addr()},
		RequestTimeout: 20 * time.Millisecond,
		Seed:           1, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = dead.Close() // the only known peer is dead
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if node.Metrics().Timeouts > 2 {
			// Node survives, estimate stays at the local value.
			if v, ok := node.Estimate(); !ok || v != 5 {
				t.Fatalf("estimate corrupted: %v %v", v, ok)
			}
			return
		}
	}
	t.Fatalf("no timeouts recorded: %+v", node.Metrics())
}

func TestCountModeEstimatesSize(t *testing.T) {
	const n = 10
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 46})
	defer net.Close()
	sched := core.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    400 * time.Millisecond,
		CycleLen: 10 * time.Millisecond,
		Gamma:    40,
	}
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := New(Config{
			Endpoint:         eps[i],
			Schedule:         sched,
			Mode:             ModeCount,
			Concurrency:      6,
			InitialSizeGuess: n,
			Bootstrap:        addrs,
			Seed:             uint64(i + 1),
			Logger:           quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	// Wait for a couple of epoch outputs; accept a generous band — with
	// C≈6 instances on 10 nodes the trimmed estimate is coarse but must
	// land in the right order of magnitude.
	deadline := time.Now().Add(6 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		good := 0
		for _, node := range nodes {
			if out, ok := node.LastOutput(); ok && out.OK && out.Value > n/3 && out.Value < n*3 {
				good++
			}
		}
		if good >= n*2/3 {
			return
		}
	}
	for i, node := range nodes {
		out, ok := node.LastOutput()
		t.Logf("node %d: output %+v ok=%v", i, out, ok)
	}
	t.Fatal("COUNT estimates never landed near the true size")
}

func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	nodes, net := launchCluster(t, 5, testSchedule(), func(i int) float64 { return 1 })
	time.Sleep(200 * time.Millisecond)
	for _, node := range nodes {
		if err := node.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	net.Close()
	// Allow stragglers to exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
		if runtime.NumGoroutine() <= before+2 {
			return
		}
	}
	t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
}

func TestClusterOverUDP(t *testing.T) {
	const n = 5
	sched := testSchedule()
	eps := make([]*transport.UDPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenUDP("127.0.0.1:0", 0)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		v := float64((i + 1) * 2)
		node, err := New(Config{
			Endpoint:  eps[i],
			Schedule:  sched,
			Value:     func() float64 { return v },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	want := 6.0 // mean of 2,4,6,8,10
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		converged := 0
		for _, node := range nodes {
			if v, ok := node.Estimate(); ok && math.Abs(v-want) < 0.05 {
				converged++
			}
		}
		if converged == n {
			return
		}
	}
	t.Fatal("UDP cluster did not converge")
}

func TestBusyRefusalsCounted(t *testing.T) {
	// With a large request timeout and constant cross-traffic, some
	// passive requests must hit the busy window.
	nodes, _ := launchCluster(t, 8, testSchedule(), func(i int) float64 { return float64(i) })
	time.Sleep(500 * time.Millisecond)
	totalServed := int64(0)
	for _, node := range nodes {
		m := node.Metrics()
		totalServed += m.ExchangesServed
	}
	if totalServed == 0 {
		t.Fatal("no exchanges served at all")
	}
}

func TestMinModeBroadcastsMinimum(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 47})
	defer net.Close()
	const n = 6
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		v := float64(10 + i)
		node, err := New(Config{
			Endpoint: eps[i], Schedule: testSchedule(),
			Function: core.Min, Value: func() float64 { return v },
			Bootstrap: addrs, Seed: uint64(i + 1), Logger: quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		done := 0
		for _, node := range nodes {
			if v, ok := node.Estimate(); ok && v == 10 {
				done++
			}
		}
		if done == n {
			return
		}
	}
	t.Fatal("minimum never propagated to all nodes")
}
