package agent

import (
	"context"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/transport"
)

// TestEpochSpreadStaysBounded exercises the §4.3 claim at cluster scale:
// when a subset of nodes lags several epochs behind (clock drift), the
// first contact with a fresher node pulls it forward, and the epidemic
// propagation of the larger epoch id re-synchronizes the whole cluster
// within a small number of cycles — T_j stays bounded.
func TestEpochSpreadStaysBounded(t *testing.T) {
	const n = 16
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 80})
	defer net.Close()
	fresh := core.Schedule{
		Start:    time.Now().Add(-10 * 300 * time.Millisecond), // ~epoch 10
		Delta:    300 * time.Millisecond,
		CycleLen: 10 * time.Millisecond,
		Gamma:    30,
	}
	lagging := fresh
	lagging.Start = time.Now().Add(time.Hour) // stuck believing epoch 0

	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		sched := fresh
		if i%2 == 1 {
			sched = lagging // half the cluster drifts
		}
		node, err := New(Config{
			Endpoint:  eps[i],
			Schedule:  sched,
			Value:     func() float64 { return 1 },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()

	// Within roughly one epoch of wall time, every node must sit within
	// one epoch of the cluster maximum (laggards are dragged forward
	// epidemically; the fresh half keeps advancing on its clock).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		lo, hi := nodes[0].Epoch(), nodes[0].Epoch()
		for _, node := range nodes[1:] {
			e := node.Epoch()
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
		}
		if hi-lo <= 1 && hi >= 9 {
			// Also require that laggards actually jumped (not just their
			// own clocks).
			jumps := int64(0)
			for i := 1; i < n; i += 2 {
				jumps += nodes[i].Metrics().EpochJumps
			}
			if jumps == 0 {
				t.Fatal("cluster synchronized without any epoch jumps — drift model broken")
			}
			return
		}
	}
	for i, node := range nodes {
		t.Logf("node %d: epoch %d jumps %d", i, node.Epoch(), node.Metrics().EpochJumps)
	}
	t.Fatal("epoch spread never collapsed")
}
