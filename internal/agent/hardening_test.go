package agent

import (
	"context"
	"testing"
	"time"

	"antientropy/internal/transport"
	"antientropy/internal/wire"
)

func TestNodeSurvivesGarbageDatagrams(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 60})
	defer net.Close()
	nodeEP := net.Endpoint()
	attacker := net.Endpoint()
	node, err := New(Config{
		Endpoint:  nodeEP,
		Schedule:  testSchedule(),
		Value:     func() float64 { return 5 },
		Bootstrap: []string{attacker.Addr()},
		Seed:      1,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	garbage := [][]byte{
		{},
		{0x00},
		[]byte("not a protocol message at all"),
		[]byte("AE04"),                       // magic only
		[]byte("AE04\x01"),                   // missing type
		[]byte("AE04\x63\x01"),               // wrong version
		[]byte("AE04\x01\xFF"),               // unknown type
		append([]byte("AE04\x01\x01"), 0xFF), // truncated exchange request
	}
	for _, g := range garbage {
		if err := attacker.Send(nodeEP.Addr(), g); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if node.Metrics().DecodeErrors >= int64(len(garbage)-0) {
			break
		}
	}
	m := node.Metrics()
	if m.DecodeErrors < 5 {
		t.Fatalf("only %d decode errors recorded", m.DecodeErrors)
	}
	// The node keeps functioning.
	if v, ok := node.Estimate(); !ok || v != 5 {
		t.Fatalf("estimate corrupted after garbage: %v %v", v, ok)
	}
}

func TestNodeIgnoresForgedReplies(t *testing.T) {
	// A reply with an unknown sequence number (never requested) must be
	// discarded without touching the state.
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 61})
	defer net.Close()
	nodeEP := net.Endpoint()
	attacker := net.Endpoint()
	node, err := New(Config{
		Endpoint:  nodeEP,
		Schedule:  testSchedule(),
		Value:     func() float64 { return 5 },
		Bootstrap: []string{attacker.Addr()},
		Seed:      1,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	forged := &wire.ExchangeReply{From: attacker.Addr(), Payload: wire.Payload{
		Seq: 999999, Epoch: node.Epoch(), FuncID: wire.FuncAverage, Scalar: 1e12,
	}}
	data, err := wire.Encode(forged)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := attacker.Send(nodeEP.Addr(), data); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	// The estimate may have drifted through legitimate (timed-out)
	// exchanges with the silent attacker, but must not have absorbed the
	// forged 1e12.
	if v, ok := node.Estimate(); ok && v > 1e6 {
		t.Fatalf("forged reply was applied: estimate %g", v)
	}
}

func TestStaleEpochRequestDropped(t *testing.T) {
	// A request tagged with an older epoch must be ignored (§4.3
	// DropStale), not merged.
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 62})
	defer net.Close()
	nodeEP := net.Endpoint()
	sender := net.Endpoint()
	sched := testSchedule()
	sched.Start = sched.Start.Add(-100 * sched.Delta) // node deep in epoch ~100
	node, err := New(Config{
		Endpoint:  nodeEP,
		Schedule:  sched,
		Value:     func() float64 { return 5 },
		Bootstrap: []string{sender.Addr()},
		Seed:      1,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	stale := &wire.ExchangeRequest{From: sender.Addr(), Payload: wire.Payload{
		Seq: 1, Epoch: 1, FuncID: wire.FuncAverage, Scalar: 1e12,
	}}
	data, err := wire.Encode(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(nodeEP.Addr(), data); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if node.Metrics().StaleDropped > 0 {
			break
		}
	}
	if node.Metrics().StaleDropped == 0 {
		t.Fatal("stale request not recorded as dropped")
	}
	if v, _ := node.Estimate(); v > 1e6 {
		t.Fatalf("stale request was merged: estimate %g", v)
	}
}

func TestConcurrentStopIsSafe(t *testing.T) {
	nodes, _ := launchCluster(t, 4, testSchedule(), func(i int) float64 { return 1 })
	done := make(chan error, len(nodes)*2)
	for _, node := range nodes {
		node := node
		go func() { done <- node.Stop() }()
		go func() { done <- node.Stop() }()
	}
	for i := 0; i < len(nodes)*2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
