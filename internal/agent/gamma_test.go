package agent

import (
	"context"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/transport"
)

func TestProtocolIdlesAfterGammaCycles(t *testing.T) {
	// §4.1: the instance terminates after γ cycles. With γ = 5 and a long
	// Δ, aggregation exchanges must stop after ~5 cycles while membership
	// gossip continues.
	// Anchor at "now" so the epoch's cycle counter starts at 0 (a
	// truncated anchor could already be past γ cycles into the epoch).
	sched := core.Schedule{
		Start:    time.Now(),
		Delta:    time.Hour,
		CycleLen: 10 * time.Millisecond,
		Gamma:    5,
	}
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 70})
	defer net.Close()
	epA, epB := net.Endpoint(), net.Endpoint()
	mk := func(ep *transport.MemEndpoint, peer string, seed uint64) *Node {
		node, err := New(Config{
			Endpoint: ep, Schedule: sched,
			Value:     func() float64 { return 1 },
			Bootstrap: []string{peer},
			Seed:      seed, Logger: quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	a := mk(epA, epB.Addr(), 1)
	b := mk(epB, epA.Addr(), 2)
	for _, node := range []*Node{a, b} {
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer a.Stop()
	defer b.Stop()

	// Run well past γ cycles.
	time.Sleep(300 * time.Millisecond)
	initiatedAtCheck := a.Metrics().ExchangesInitiated
	if initiatedAtCheck == 0 {
		t.Fatal("no exchanges at all")
	}
	if initiatedAtCheck > 8 {
		t.Fatalf("%d exchanges initiated with gamma=5", initiatedAtCheck)
	}
	// And the count must not grow any further.
	time.Sleep(300 * time.Millisecond)
	if after := a.Metrics().ExchangesInitiated; after != initiatedAtCheck {
		t.Fatalf("exchanges continued after gamma: %d -> %d", initiatedAtCheck, after)
	}
}
