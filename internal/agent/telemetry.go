package agent

import "antientropy/internal/obs"

// RegisterMetrics exposes one aggregated agent counter set on reg under
// the canonical agg_* names. snap is called at scrape time and should
// return the summed Metrics of whatever population the process hosts —
// a single node, a live fleet plus its retired crash victims, or a UDP
// supervisor's merged worker totals. Registering funcs (rather than
// having nodes increment registry counters directly) keeps the per-node
// counters authoritative, which crash retirement requires, and keeps
// the hot path at exactly one atomic add per event.
func RegisterMetrics(reg *obs.Registry, snap func() Metrics) {
	if reg == nil || snap == nil {
		return
	}
	counter := func(name, help string, read func(Metrics) int64) {
		reg.CounterFunc(name, help, func() int64 { return read(snap()) })
	}
	counter("agg_exchanges_initiated_total",
		"Active-thread exchange attempts.",
		func(m Metrics) int64 { return m.ExchangesInitiated })
	counter("agg_exchanges_completed_total",
		"Exchange replies applied by the initiator.",
		func(m Metrics) int64 { return m.ExchangesCompleted })
	counter("agg_exchanges_served_total",
		"Passive-thread exchange replies sent.",
		func(m Metrics) int64 { return m.ExchangesServed })
	counter("agg_exchange_timeouts_total",
		"Exchange replies that never arrived in time.",
		func(m Metrics) int64 { return m.Timeouts })
	counter("agg_exchanges_refused_busy_total",
		"Incoming exchange requests NACKed while an exchange was outstanding.",
		func(m Metrics) int64 { return m.RefusedBusy })
	counter("agg_exchanges_declined_total",
		"Own exchange requests NACKed by a busy or joining peer.",
		func(m Metrics) int64 { return m.PeerDeclined })
	counter("agg_exchanges_refused_joining_total",
		"Incoming exchange requests NACKed while waiting to join (§4.2).",
		func(m Metrics) int64 { return m.RefusedJoining })
	counter("agg_stale_dropped_total",
		"Messages dropped for belonging to an older epoch.",
		func(m Metrics) int64 { return m.StaleDropped })
	counter("agg_epoch_jumps_total",
		"Jump-forward epoch synchronizations (§4.3).",
		func(m Metrics) int64 { return m.EpochJumps })
	counter("agg_decode_errors_total",
		"Undecodable datagrams received.",
		func(m Metrics) int64 { return m.DecodeErrors })
	counter("agg_gossip_frames_full_total",
		"Outgoing membership frames carrying the whole view.",
		func(m Metrics) int64 { return m.GossipFramesFull })
	counter("agg_gossip_frames_delta_total",
		"Outgoing delta-encoded membership frames.",
		func(m Metrics) int64 { return m.GossipFramesDelta })
	counter("agg_gossip_entries_sent_total",
		"Descriptors sent across all outgoing membership frames.",
		func(m Metrics) int64 { return m.GossipEntriesSent })
	counter("agg_adversary_lies_total",
		"Corrupted wire reports emitted by Byzantine nodes.",
		func(m Metrics) int64 { return m.AdversaryLies })
	counter("agg_adversary_rejected_total",
		"Peer-reported samples the merge-guard defense rejected or clamped.",
		func(m Metrics) int64 { return m.DefenseRejected })
}
