package agent

import (
	"context"
	"fmt"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/overlay"
	"antientropy/internal/transport"
	"antientropy/internal/wire"
)

// BenchmarkHandleExchangeRequest measures the passive-thread hot path:
// decode + epoch check + reply + state merge for one datagram.
func BenchmarkHandleExchangeRequest(b *testing.B) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 1})
	defer net.Close()
	peer := net.Endpoint()
	node, err := New(Config{
		Endpoint: net.Endpoint(),
		Schedule: core.Schedule{
			Start: time.Now(), Delta: time.Hour,
			CycleLen: time.Hour, Gamma: 1 << 20, // ticker never fires
		},
		Value:     func() float64 { return 1 },
		Bootstrap: []string{peer.Addr()},
		Seed:      1,
		Logger:    quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer node.Stop()
	gossip := make([]wire.Descriptor, 0, 31)
	gossip = append(gossip, wire.Descriptor{Addr: peer.Addr(), Stamp: 1})
	for i := 0; i < 30; i++ {
		gossip = append(gossip, wire.Descriptor{Addr: fmt.Sprintf("10.9.0.%d:7000", i), Stamp: int64(i)})
	}
	msg := &wire.ExchangeRequest{From: peer.Addr(), Payload: wire.Payload{
		Seq: 1, Epoch: node.Epoch(), FuncID: wire.FuncAverage, Scalar: 2,
		View: wire.ViewFrame{Kind: wire.ViewFull, Gen: 1, Entries: gossip},
	}}
	data, err := wire.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.handle(peer.Addr(), data)
	}
}

// BenchmarkLiveClusterEpoch measures wall-clock epochs of a real 16-node
// cluster over the in-memory transport (end-to-end: timers, sockets,
// codec, merges).
func BenchmarkLiveClusterEpoch(b *testing.B) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 2})
	defer net.Close()
	sched := core.Schedule{
		Start:    time.Now(),
		Delta:    100 * time.Millisecond,
		CycleLen: 5 * time.Millisecond,
		Gamma:    20,
	}
	const n = 16
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		v := float64(i)
		node, err := New(Config{
			Endpoint: eps[i], Schedule: sched,
			Value:     func() float64 { return v },
			Bootstrap: addrs, Seed: uint64(i + 1), Logger: quietLogger(),
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	sub := nodes[0].Subscribe(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		select {
		case <-sub:
		case <-time.After(5 * time.Second):
			b.Fatal("no epoch output within 5s")
		}
	}
	b.StopTimer()
	m := nodes[0].Metrics()
	b.ReportMetric(float64(m.ExchangesCompleted)/float64(b.N), "exchanges/epoch")
}

// benchEncodeNode builds a node with a full 30-descriptor NEWSCAST view
// and a schedule whose ticker never fires, so the benchmark drives the
// gossip encode path by hand.
func benchEncodeNode(b *testing.B) (*Node, []string) {
	b.Helper()
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 1})
	b.Cleanup(func() { net.Close() })
	contacts := make([]string, 30)
	for i := range contacts {
		contacts[i] = fmt.Sprintf("10.0.0.%d:7000", i+1)
	}
	node, err := New(Config{
		Endpoint: net.Endpoint(),
		Schedule: core.Schedule{
			Start: time.Now(), Delta: time.Hour,
			CycleLen: time.Hour, Gamma: 1 << 20,
		},
		Value:     func() float64 { return 1 },
		Bootstrap: contacts,
		Seed:      1,
		Logger:    quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = node.Stop() })
	return node, contacts
}

// benchAgentCycleEncode measures the per-cycle cost of snapshotting the
// node state and encoding one exchange request — the live executor's
// dominant CPU item. Every iteration models one steady-state cycle: two
// cache descriptors refresh (one served and one initiated exchange's
// worth of churn) plus the node's own fresh self-descriptor. With
// established=false every frame carries the full ~30-descriptor view
// (the pre-delta protocol, and still the first-contact cost); with
// established=true the peer acknowledges each frame, so the codec ships
// deltas.
func benchAgentCycleEncode(b *testing.B, established bool) {
	node, contacts := benchEncodeNode(b)
	const peer = "peer-x:7000"
	sess := node.peers.Get(peer)
	var peerGen uint32
	refresh := [2]int32{
		node.book.Intern(contacts[0]),
		node.book.Intern(contacts[1]),
	}
	var bytes int64
	// The benchmark's schedule quantizes ticks at one hour, so a single
	// wall-clock sample serves every iteration.
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.mu.Lock()
		// The cycle's view churn: the absorbs of the cycle refreshed two
		// descriptors.
		stamp := int32(i + 1)
		node.view.Absorb([]overlay.Entry{
			{Key: refresh[0], Stamp: stamp},
			{Key: refresh[1], Stamp: stamp},
		})
		// Snapshot and encode the outgoing exchange request.
		payload, _ := node.payloadLocked(sess, uint64(i+1), uint64(i+1), now)
		node.mu.Unlock()
		data, err := wire.Encode(&wire.ExchangeRequest{From: node.Addr(), Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(data))
		if established {
			// The peer acks every frame, as a live reply would.
			peerGen++
			node.mu.Lock()
			sess.codec.Observe(wire.ViewFrame{
				Kind: wire.ViewDelta, Gen: peerGen, Ack: payload.View.Gen,
			})
			node.mu.Unlock()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
}

// BenchmarkAgentCycleEncodeFull is the full-view baseline: no frame is
// ever acknowledged, so every cycle re-encodes the whole view.
func BenchmarkAgentCycleEncodeFull(b *testing.B) { benchAgentCycleEncode(b, false) }

// BenchmarkAgentCycleEncodeDelta is the steady-state delta path: the
// peer acknowledges frames, so each cycle ships only the refreshed
// descriptors.
func BenchmarkAgentCycleEncodeDelta(b *testing.B) { benchAgentCycleEncode(b, true) }
