package agent

import (
	"context"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/transport"
	"antientropy/internal/wire"
)

// BenchmarkHandleExchangeRequest measures the passive-thread hot path:
// decode + epoch check + reply + state merge for one datagram.
func BenchmarkHandleExchangeRequest(b *testing.B) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 1})
	defer net.Close()
	peer := net.Endpoint()
	node, err := New(Config{
		Endpoint: net.Endpoint(),
		Schedule: core.Schedule{
			Start: time.Now(), Delta: time.Hour,
			CycleLen: time.Hour, Gamma: 1 << 20, // ticker never fires
		},
		Value:     func() float64 { return 1 },
		Bootstrap: []string{peer.Addr()},
		Seed:      1,
		Logger:    quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer node.Stop()
	msg := &wire.ExchangeRequest{From: peer.Addr(), Payload: wire.Payload{
		Seq: 1, Epoch: node.Epoch(), FuncID: wire.FuncAverage, Scalar: 2,
		Gossip: []wire.Descriptor{{Addr: peer.Addr(), Stamp: 1}},
	}}
	data, err := wire.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.handle(peer.Addr(), data)
	}
}

// BenchmarkLiveClusterEpoch measures wall-clock epochs of a real 16-node
// cluster over the in-memory transport (end-to-end: timers, sockets,
// codec, merges).
func BenchmarkLiveClusterEpoch(b *testing.B) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 2})
	defer net.Close()
	sched := core.Schedule{
		Start:    time.Now(),
		Delta:    100 * time.Millisecond,
		CycleLen: 5 * time.Millisecond,
		Gamma:    20,
	}
	const n = 16
	eps := make([]*transport.MemEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		v := float64(i)
		node, err := New(Config{
			Endpoint: eps[i], Schedule: sched,
			Value:     func() float64 { return v },
			Bootstrap: addrs, Seed: uint64(i + 1), Logger: quietLogger(),
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Stop()
		}
	}()
	sub := nodes[0].Subscribe(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		select {
		case <-sub:
		case <-time.After(5 * time.Second):
			b.Fatal("no epoch output within 5s")
		}
	}
	b.StopTimer()
	m := nodes[0].Metrics()
	b.ReportMetric(float64(m.ExchangesCompleted)/float64(b.N), "exchanges/epoch")
}
