// Package agent is the live, asynchronous implementation of the paper's
// practical aggregation protocol (§4): every node runs the active/passive
// thread pair of Figure 1 on goroutines over a datagram transport, with
// real δ-cycle timers, exchange timeouts, epoch restarts (§4.1), join
// handling (§4.2), epidemic epoch synchronization (§4.3) and a NEWSCAST
// membership service (§4.4) piggybacked on every exchange.
//
// Concurrency note. The paper treats an exchange as atomic; over a real
// network the initiator's state could drift between sending its estimate
// and receiving the reply, which would break mass conservation. This
// implementation therefore marks a node busy while it has an exchange
// outstanding and lets a busy node refuse incoming exchange requests.
// A refusal behaves exactly like the paper's link failure — §6.2 proves
// that only slows convergence and introduces no error. A reply that
// arrives after the timeout is dropped, which reproduces the paper's
// "lost response" case (§7.2).
package agent

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/obs"
	"antientropy/internal/overlay"
	"antientropy/internal/stats"
	"antientropy/internal/transport"
	"antientropy/internal/wire"
)

// Mode selects the aggregate a node computes.
type Mode int

// Available modes.
const (
	// ModeScalar runs one scalar aggregate (AVERAGE, MIN, MAX,
	// GEOMETRIC-MEAN) per epoch.
	ModeScalar Mode = iota + 1
	// ModeCount runs the multi-leader COUNT protocol (§5): the node's
	// state is a leader-id → estimate map and the epoch output is a
	// network-size estimate.
	ModeCount
)

// Config describes one live node.
type Config struct {
	// Endpoint is the node's transport attachment. The node takes
	// ownership: Stop closes it.
	Endpoint transport.Endpoint
	// Schedule fixes δ, Δ and γ; all nodes of a deployment share it
	// (epoch synchronization absorbs clock drift, §4.3).
	Schedule core.Schedule
	// Mode selects scalar aggregation (default) or COUNT.
	Mode Mode
	// Function is the scalar aggregate (ModeScalar; default AVERAGE).
	Function core.Function
	// Value supplies the node's current local value, sampled at every
	// epoch start (ModeScalar). Required in ModeScalar.
	Value func() float64
	// CacheSize is the NEWSCAST cache capacity c (default 30).
	CacheSize int
	// Seeds are bootstrap contact addresses. A node with seeds performs
	// the §4.2 join: it asks a seed for the next epoch and refrains from
	// participating until that epoch starts.
	Seeds []string
	// Bootstrap pre-populates the NEWSCAST cache without the join wait.
	// Use it only when founding a deployment, where every node starts in
	// the same (first) epoch anyway; later arrivals must use Seeds.
	Bootstrap []string
	// RequestTimeout bounds the wait for an exchange reply (default:
	// half the cycle length).
	RequestTimeout time.Duration
	// Concurrency is the desired number of concurrent COUNT instances C
	// (ModeCount; default 8).
	Concurrency float64
	// InitialSizeGuess seeds P_lead = C/N̂ before the first epoch output
	// exists (ModeCount; default 16).
	InitialSizeGuess float64
	// Seed drives the node's randomness (0 derives one from the address
	// and the clock).
	Seed uint64
	// Logger receives debug events (default: slog.Default with the node
	// address attached).
	Logger *slog.Logger
	// MaxOutputs bounds the retained epoch outputs (default 16).
	MaxOutputs int
	// MaxViewBytes caps the encoded size of the piggybacked membership
	// view per exchange (0 = unlimited). The overlay tolerates partial
	// views by design (§4): descriptors trimmed by the cap are resent by
	// later frames, never starved. The cap may drop even the fresh
	// self-descriptor from a frame — harmless for the same reason.
	MaxViewBytes int
	// Adversary, when non-nil, corrupts the scalar estimate this node
	// reports on the wire — the Byzantine hook the scenario executor's
	// adversary schedules drive. Local state stays honest; only the
	// outgoing payload (request and reply alike) is rewritten, and the
	// exchange identifier is untouched so traces still stitch. The hook
	// receives the node's epoch and honest scalar and returns the
	// reported value, the epoch tag to stamp it with (replay-stale lies
	// about the epoch too; honest behaviors echo the input epoch), and
	// whether the node lied. ModeScalar only.
	Adversary func(epoch uint64, local float64) (value float64, epochTag uint64, lied bool)
	// Combiner, when non-nil, replaces the hardcoded push-pull merge of
	// scalar exchanges with the pluggable defense (clamped-mean,
	// median-of-k, ...) over a window of CombinerK samples (0 =
	// core.DefaultMergeK). The window resets at every epoch restart.
	// ModeScalar only.
	Combiner  core.Combiner
	CombinerK int
	// RTT, when set, receives every measured exchange round trip in
	// seconds. Fleets share one histogram across all their nodes, so a
	// process exports a single agg_exchange_rtt_seconds series.
	RTT *obs.Histogram
	// Trace, when set, receives structured exchange-lifecycle events
	// (initiate → absorb/timeout/declined, refusals, epoch jumps, stale
	// drops). Fleets share one bounded ring across all their nodes.
	Trace *obs.TraceRing
}

// Output is one completed epoch's aggregation result.
type Output struct {
	// Epoch identifier.
	Epoch uint64
	// Value is the estimate when the epoch ended (for ModeCount, the
	// combined network-size estimate).
	Value float64
	// OK reports whether the node held a usable estimate (a COUNT node
	// that never received mass has none).
	OK bool
	// At is when the epoch was left.
	At time.Time
}

// Metrics is a snapshot of a node's protocol counters.
type Metrics struct {
	// ExchangesInitiated counts active-thread attempts.
	ExchangesInitiated int64
	// ExchangesCompleted counts replies applied.
	ExchangesCompleted int64
	// ExchangesServed counts passive-thread replies sent.
	ExchangesServed int64
	// Timeouts counts replies that never arrived in time.
	Timeouts int64
	// RefusedBusy counts requests dropped while an exchange was
	// outstanding.
	RefusedBusy int64
	// PeerDeclined counts own requests NACKed by a busy or joining peer.
	PeerDeclined int64
	// RefusedJoining counts requests dropped while waiting for our first
	// epoch (§4.2/§7.1).
	RefusedJoining int64
	// StaleDropped counts messages from older epochs.
	StaleDropped int64
	// EpochJumps counts §4.3 jump-forward synchronizations.
	EpochJumps int64
	// DecodeErrors counts undecodable datagrams.
	DecodeErrors int64
	// GossipFramesFull counts outgoing membership frames that carried
	// the whole view (first contact, or a delta would not have been
	// smaller).
	GossipFramesFull int64
	// GossipFramesDelta counts outgoing delta frames.
	GossipFramesDelta int64
	// GossipEntriesSent counts descriptors across all outgoing frames —
	// divided by the frame counts it measures what the delta codec saves
	// against always-full gossip (the view size + 1).
	GossipEntriesSent int64
	// RTTSamples counts exchange replies whose initiate→reply round
	// trip was measured; RTTTotal is their summed latency, so the mean
	// round trip is RTTTotal/RTTSamples. Refusal NACKs count too — the
	// measurement is of the network round trip, not of the merge.
	RTTSamples int64
	// RTTTotal is the summed round-trip latency of RTTSamples replies.
	RTTTotal time.Duration
	// AdversaryLies counts outgoing payloads the Config.Adversary hook
	// corrupted.
	AdversaryLies int64
	// DefenseRejected counts peer-reported samples the Config.Combiner
	// defense rejected or clamped.
	DefenseRejected int64
}

// Accumulate adds o's counts into m — the fleet-aggregation and
// crash-retirement primitive: a worker sums its live nodes plus the
// counters of nodes it already stopped, and the sums stay monotone.
func (m *Metrics) Accumulate(o Metrics) {
	m.ExchangesInitiated += o.ExchangesInitiated
	m.ExchangesCompleted += o.ExchangesCompleted
	m.ExchangesServed += o.ExchangesServed
	m.Timeouts += o.Timeouts
	m.RefusedBusy += o.RefusedBusy
	m.PeerDeclined += o.PeerDeclined
	m.RefusedJoining += o.RefusedJoining
	m.StaleDropped += o.StaleDropped
	m.EpochJumps += o.EpochJumps
	m.DecodeErrors += o.DecodeErrors
	m.GossipFramesFull += o.GossipFramesFull
	m.GossipFramesDelta += o.GossipFramesDelta
	m.GossipEntriesSent += o.GossipEntriesSent
	m.RTTSamples += o.RTTSamples
	m.RTTTotal += o.RTTTotal
	m.AdversaryLies += o.AdversaryLies
	m.DefenseRejected += o.DefenseRejected
}

// counters is the node's live counter set: plain atomics, so the
// exchange hot paths pay one uncontended atomic add per event and
// Metrics() snapshots without taking the node lock — metric scrapes
// never contend with the protocol.
type counters struct {
	exchangesInitiated atomic.Int64
	exchangesCompleted atomic.Int64
	exchangesServed    atomic.Int64
	timeouts           atomic.Int64
	refusedBusy        atomic.Int64
	peerDeclined       atomic.Int64
	refusedJoining     atomic.Int64
	staleDropped       atomic.Int64
	epochJumps         atomic.Int64
	decodeErrors       atomic.Int64
	gossipFramesFull   atomic.Int64
	gossipFramesDelta  atomic.Int64
	gossipEntriesSent  atomic.Int64
	rttSamples         atomic.Int64
	rttTotalNanos      atomic.Int64
	adversaryLies      atomic.Int64
}

// snapshot reads every counter. Loads are individually atomic; a
// snapshot taken mid-exchange may see the exchange half-counted, which
// is the usual scrape contract.
func (c *counters) snapshot() Metrics {
	return Metrics{
		ExchangesInitiated: c.exchangesInitiated.Load(),
		ExchangesCompleted: c.exchangesCompleted.Load(),
		ExchangesServed:    c.exchangesServed.Load(),
		Timeouts:           c.timeouts.Load(),
		RefusedBusy:        c.refusedBusy.Load(),
		PeerDeclined:       c.peerDeclined.Load(),
		RefusedJoining:     c.refusedJoining.Load(),
		StaleDropped:       c.staleDropped.Load(),
		EpochJumps:         c.epochJumps.Load(),
		DecodeErrors:       c.decodeErrors.Load(),
		GossipFramesFull:   c.gossipFramesFull.Load(),
		GossipFramesDelta:  c.gossipFramesDelta.Load(),
		GossipEntriesSent:  c.gossipEntriesSent.Load(),
		RTTSamples:         c.rttSamples.Load(),
		RTTTotal:           time.Duration(c.rttTotalNanos.Load()),
		AdversaryLies:      c.adversaryLies.Load(),
	}
}

// Node is a live aggregation participant. Create with New, run with
// Start, stop with Stop.
type Node struct {
	cfg    Config
	log    *slog.Logger
	funcID uint8
	// guard is the merge-side combiner defense (nil without one). Its
	// internal counters are atomics; the sample window is guarded by mu
	// like the scalar state it defends.
	guard *core.MergeGuard

	mu            sync.Mutex
	epoch         uint64
	joinEpoch     uint64 // first epoch we may participate in
	participating bool
	scalar        float64
	mapState      core.MapState
	leaderID      core.LeaderID
	// book interns peer addresses to the dense int32 keys of the packed
	// membership view; view is this node's NEWSCAST cache — the same
	// overlay.Membership implementation both simulation engines run on.
	book *overlay.Book
	view *overlay.Membership
	// peers tracks per-peer connection state: the negotiated wire
	// version and the delta-gossip codec (wire.ViewCodec).
	peers *transport.Sessions[peerSession]
	// packedScratch is the reusable packed-view buffer of the gossip
	// encode path (guarded by mu like the view it snapshots).
	packedScratch []uint64
	pending       map[uint64]chan wire.Payload
	// pendingValue overrides cfg.Value once SetValue has been called:
	// the serving layer feeds value updates through it without holding a
	// reference into its own store.
	pendingValue float64
	hasPending   bool
	busy         bool
	seq          uint64
	xidBase      uint64
	rng          *stats.RNG
	outputs      []Output
	started      bool
	stopped      bool

	// metrics is deliberately outside the mu regime: its fields are
	// atomics, incremented on the hot paths and snapshot lock-free.
	metrics counters

	cancel context.CancelFunc
	wg     sync.WaitGroup

	subs []chan Output
}

// New validates cfg and builds a node (not yet started).
func New(cfg Config) (*Node, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("agent: endpoint is required")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeScalar
	}
	switch cfg.Mode {
	case ModeScalar:
		if cfg.Function.Update == nil {
			cfg.Function = core.Average
		}
		if cfg.Value == nil {
			return nil, errors.New("agent: scalar mode requires a Value supplier")
		}
	case ModeCount:
		if cfg.Concurrency <= 0 {
			cfg.Concurrency = 8
		}
		if cfg.InitialSizeGuess < 1 {
			cfg.InitialSizeGuess = 16
		}
	default:
		return nil, fmt.Errorf("agent: unknown mode %d", cfg.Mode)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = overlay.DefaultCacheSize
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = cfg.Schedule.CycleLen / 2
	}
	if cfg.RequestTimeout <= 0 {
		return nil, errors.New("agent: request timeout must be positive")
	}
	if cfg.MaxOutputs <= 0 {
		cfg.MaxOutputs = 16
	}
	addr := cfg.Endpoint.Addr()
	if cfg.Seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(addr))
		cfg.Seed = h.Sum64() ^ uint64(time.Now().UnixNano())
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	logger = logger.With("node", addr)
	book := overlay.NewBook()
	view, err := overlay.NewMembership(book.Intern(addr), cfg.CacheSize)
	if err != nil {
		return nil, err
	}
	funcID := wire.FuncCount
	if cfg.Mode == ModeScalar {
		funcID, err = wire.FuncIDFor(cfg.Function.Name)
		if err != nil {
			return nil, err
		}
	}
	n := &Node{
		cfg:     cfg,
		log:     logger,
		funcID:  funcID,
		book:    book,
		view:    view,
		peers:   transport.NewSessions(0, func(string) *peerSession { return &peerSession{} }),
		pending: make(map[uint64]chan wire.Payload),
		rng:     stats.NewRNG(cfg.Seed),
	}
	if cfg.Combiner != nil && cfg.Mode == ModeScalar {
		n.guard = core.NewMergeGuard(cfg.Combiner, cfg.CombinerK, 1)
	}
	n.leaderID = leaderIDFor(addr)
	// The exchange-ID stream mixes the address into the seed so two
	// nodes sharing a Seed (deterministic fleets) still stamp disjoint
	// XIDs, then splitmix64 whitens per sequence number (xidLocked).
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	n.xidBase = splitmix64(cfg.Seed ^ h.Sum64())
	return n, nil
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer
// turning a counter stream into well-distributed 64-bit identifiers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// xidLocked derives the exchange ID for a sequence number: unique per
// (node, seq) with overwhelming probability across a fleet, never 0
// (0 means "no XID" on the wire and in traces).
func (n *Node) xidLocked(seq uint64) uint64 {
	xid := splitmix64(n.xidBase + seq)
	if xid == 0 {
		xid = 1
	}
	return xid
}

// peerSession is the per-peer connection state kept in the transport
// session table: the wire version the peer demonstrated (0 until it
// speaks, meaning "assume current") and the delta-gossip codec.
type peerSession struct {
	version uint8
	// downStreak counts consecutive datagrams at downVersion from a
	// peer whose session is at a newer version (see observePeerLocked).
	downStreak  uint8
	downVersion uint8
	codec       wire.ViewCodec
}

// wireVersion resolves the version to encode messages to this peer at:
// the demonstrated one, or the current version while the peer has not
// spoken yet.
func (s *peerSession) wireVersion() uint8 {
	if s.version == 0 {
		return wire.Version
	}
	return s.version
}

// tick converts wall-clock time into the logical NEWSCAST stamp: whole
// cycles since the shared schedule anchor — exactly the paper's logical
// time, comparable across every node of a deployment because the
// schedule is shared (§4.1). Saturates instead of wrapping at the 2³¹
// horizon (68 years at 1-second cycles).
func (n *Node) tick(now time.Time) int32 {
	d := now.Sub(n.cfg.Schedule.Start)
	if d < 0 {
		return 0
	}
	t := int64(d / n.cfg.Schedule.CycleLen)
	if t > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(t)
}

// stampFromWire converts a received descriptor stamp into the packed
// int32 tick space. Version-2 peers send ticks directly; version-1
// peers stamped with wall-clock microseconds, which are recognized by
// being far outside the tick range (2³¹ µs is 35 minutes past the Unix
// epoch — no real clock) and converted through the shared schedule, so
// legacy descriptors age correctly instead of poisoning the
// freshest-wins merge as permanently-fresh entries.
func (n *Node) stampFromWire(stamp int64) int32 {
	if stamp > math.MaxInt32 {
		return n.tick(time.UnixMicro(stamp))
	}
	if stamp < 0 {
		return 0
	}
	return int32(stamp)
}

// stampToWire converts a tick stamp for a peer at the given wire
// version: ticks verbatim for current peers, schedule-derived wall-clock
// microseconds for legacy peers (whose merges compare against their own
// UnixMicro stamps).
func (n *Node) stampToWire(stamp int32, version uint8) int64 {
	if version != wire.VersionLegacy {
		return int64(stamp)
	}
	return n.cfg.Schedule.Start.Add(time.Duration(stamp) * n.cfg.Schedule.CycleLen).UnixMicro()
}

// leaderIDFor derives the COUNT instance id from the node address, as the
// paper suggests ("e.g., the address of the leader").
func leaderIDFor(addr string) core.LeaderID {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return core.LeaderID(h.Sum64() & 0x7fffffffffffffff)
}

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.cfg.Endpoint.Addr() }

// Start launches the node's goroutines: the passive thread (receive
// dispatch) and the active thread (δ ticker). It returns immediately.
func (n *Node) Start(ctx context.Context) error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return errors.New("agent: already started")
	}
	n.started = true
	now := time.Now()
	n.epoch = n.cfg.Schedule.EpochAt(now)
	if len(n.cfg.Seeds) > 0 {
		// §4.2: joiners sit out the epoch in progress. The local guess is
		// refined by the seed's JoinReply.
		n.joinEpoch = n.epoch + 1
		n.participating = false
		n.view.Seed(n.contactEntries(n.cfg.Seeds, n.tick(now)))
	} else {
		n.participating = true
		if len(n.cfg.Bootstrap) > 0 {
			n.view.Seed(n.contactEntries(n.cfg.Bootstrap, n.tick(now)))
		}
		n.resetStateLocked()
	}
	n.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	n.cancel = cancel
	if he, ok := n.cfg.Endpoint.(transport.HandlerEndpoint); ok {
		// Handler-capable transports (UDPMux) invoke the passive thread
		// directly on their shared reader goroutines: no per-node receive
		// goroutine, no channel hop, and the pooled receive buffer is
		// returned as soon as the datagram is handled. Stop remains safe:
		// Endpoint.Close is the transport's barrier that waits out any
		// in-flight handler call before returning.
		he.SetHandler(func(p transport.Packet) {
			n.handle(p.From, p.Data)
			p.Release()
		})
		n.wg.Add(1)
	} else {
		n.wg.Add(2)
		go n.recvLoop(ctx)
	}
	go n.tickLoop(ctx)
	if len(n.cfg.Seeds) > 0 {
		n.sendJoinRequest()
	}
	return nil
}

// Stop terminates the node, closes its endpoint and waits for all
// goroutines. Safe to call more than once.
func (n *Node) Stop() error {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.stopped = true
	n.mu.Unlock()
	n.cancel()
	err := n.cfg.Endpoint.Close()
	n.wg.Wait()
	n.mu.Lock()
	n.closeSubsLocked()
	n.mu.Unlock()
	return err
}

// Estimate returns the node's current (converging) estimate. In
// ModeCount it is the combined network-size estimate; ok is false while
// the node holds no usable estimate.
func (n *Node) Estimate() (value float64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.estimateLocked()
}

func (n *Node) estimateLocked() (float64, bool) {
	if !n.participating {
		return 0, false
	}
	if n.cfg.Mode == ModeScalar {
		return n.scalar, true
	}
	v, err := n.mapState.CombinedSize()
	if err != nil {
		return 0, false
	}
	return v, true
}

// SetValue updates the node's local value (ModeScalar). Exactly like a
// change observed through Config.Value, the new value is sampled at the
// next epoch restart (§4.1) — mid-epoch mass is never disturbed, so the
// running instance keeps conserving its invariant. Once called, the
// stored value supersedes Config.Value for every later restart; the
// latest call wins. This is the value-update hook of the serving layer:
// clients feed values over an API and the fleet picks them up at the
// next restart.
func (n *Node) SetValue(v float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pendingValue, n.hasPending = v, true
}

// Snapshot is one consistent read of a node's serving-relevant state:
// epoch, current estimate and the most recent sealed epoch output, all
// observed under one acquisition of the node lock. Serving layers use
// it instead of separate Epoch/Estimate/LastOutput calls, whose values
// could straddle an epoch restart.
type Snapshot struct {
	// Epoch is the node's current epoch identifier.
	Epoch uint64
	// Estimate is the current (converging) estimate; OK is false while
	// the node holds no usable estimate (joining, or a COUNT node
	// without mass).
	Estimate float64
	OK       bool
	// Participating reports whether the node takes part in this epoch.
	Participating bool
	// LastOutput is the most recent completed epoch's output; HasOutput
	// is false until a first epoch has been sealed.
	LastOutput Output
	HasOutput  bool
}

// Snapshot atomically reads the node's serving-relevant state.
func (n *Node) Snapshot() Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.estimateLocked()
	s := Snapshot{
		Epoch:         n.epoch,
		Estimate:      v,
		OK:            ok,
		Participating: n.participating,
	}
	if len(n.outputs) > 0 {
		s.LastOutput = n.outputs[len(n.outputs)-1]
		s.HasOutput = true
	}
	return s
}

// Epoch returns the node's current epoch identifier.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Participating reports whether the node takes part in the current epoch.
func (n *Node) Participating() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.participating
}

// Outputs returns the retained completed-epoch outputs, oldest first.
func (n *Node) Outputs() []Output {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Output(nil), n.outputs...)
}

// LastOutput returns the most recent epoch output.
func (n *Node) LastOutput() (Output, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.outputs) == 0 {
		return Output{}, false
	}
	return n.outputs[len(n.outputs)-1], true
}

// Metrics returns a snapshot of the node's protocol counters. It takes
// no lock: the counters are atomics, so scraping a running fleet never
// contends with the exchange path.
func (n *Node) Metrics() Metrics {
	m := n.metrics.snapshot()
	if n.guard != nil {
		m.DefenseRejected = n.guard.Rejected()
	}
	return m
}

// Subscribe returns a channel that receives every completed epoch's
// output — the paper's motivating monitoring pattern ("some aggregate
// reaching a specific value may trigger the execution of certain
// operations", §1). The channel is buffered; if the subscriber falls
// behind, the oldest unread outputs are dropped rather than blocking the
// protocol. The channel is closed when the node stops.
func (n *Node) Subscribe(buffer int) <-chan Output {
	if buffer < 1 {
		buffer = 8
	}
	ch := make(chan Output, buffer)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		close(ch)
		return ch
	}
	n.subs = append(n.subs, ch)
	return ch
}

// publishLocked delivers an epoch output to all subscribers without ever
// blocking: a full buffer drops its oldest entry first.
func (n *Node) publishLocked(out Output) {
	for _, ch := range n.subs {
		for {
			select {
			case ch <- out:
			default:
				select {
				case <-ch: // evict the oldest
					continue
				default:
				}
			}
			break
		}
	}
}

// closeSubsLocked closes all subscriber channels (at Stop).
func (n *Node) closeSubsLocked() {
	for _, ch := range n.subs {
		close(ch)
	}
	n.subs = nil
}

// contactEntries interns a contact address list into packed membership
// entries, dropping blanks and the node's own address — the one seeding
// path shared by founding bootstraps, §4.2 join seeds and out-of-band
// contact injection.
func (n *Node) contactEntries(addrs []string, stamp int32) []overlay.Entry {
	entries := make([]overlay.Entry, 0, len(addrs))
	for _, a := range addrs {
		if a == "" || a == n.Addr() {
			continue
		}
		entries = append(entries, overlay.Entry{Key: n.book.Intern(a), Stamp: stamp})
	}
	return entries
}

// AddContacts injects out-of-band discovered peer addresses into the
// NEWSCAST cache, stamped fresh. Deployments call it when an external
// discovery source (a seed list, DNS, an operator) learns of peers — for
// example to remerge the overlay after a network partition heals, when
// both sides' caches have long evicted each other's descriptors. The
// injected descriptors then spread epidemically through normal gossip.
func (n *Node) AddContacts(addrs []string) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.view.Absorb(n.contactEntries(addrs, n.tick(now)))
}

// PeerCount returns the NEWSCAST cache occupancy.
func (n *Node) PeerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Len()
}

// Peers returns the current NEWSCAST view (addresses only).
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	packed := n.view.Packed()
	out := make([]string, 0, len(packed))
	for _, e := range packed {
		out = append(out, n.book.Addr(overlay.UnpackKey(e)))
	}
	return out
}
