package agent

import (
	"context"
	"errors"
	"testing"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/transport"
	"antientropy/internal/wire"
)

// TestDeltaGossipEngages runs a small live fleet and verifies the delta
// handshake forms end to end: after a few cycles of request/reply gossip
// every node has had a frame acknowledged by some peer, meaning its
// subsequent piggybacked views to that peer go out as deltas, not full
// copies. (A 4-node fleet rather than a pair: two nodes whose random
// phases land within the message-processing latency refuse each other
// forever — the synchronized-gossip livelock that predates this codec.)
func TestDeltaGossipEngages(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 7})
	defer net.Close()
	sched := core.Schedule{
		Start:    time.Now(),
		Delta:    time.Second,
		CycleLen: 10 * time.Millisecond,
		Gamma:    100,
	}
	const fleet = 4
	eps := make([]*transport.MemEndpoint, fleet)
	addrs := make([]string, fleet)
	for i := range eps {
		eps[i] = net.Endpoint()
		addrs[i] = eps[i].Addr()
	}
	nodes := make([]*Node, fleet)
	for i := range nodes {
		node, err := New(Config{
			Endpoint: eps[i], Schedule: sched,
			Value:     func() float64 { return float64(i) },
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Stop()
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		engaged := 0
		for _, n := range nodes {
			n.mu.Lock()
			for _, peer := range addrs {
				if peer == n.Addr() {
					continue
				}
				if sess, ok := n.peers.Peek(peer); ok && sess.codec.AckedGen() > 0 {
					engaged++
					break
				}
			}
			n.mu.Unlock()
		}
		if engaged == fleet {
			return // every node sends deltas to at least one peer
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("delta handshake never formed: no acknowledged generations after 5s")
}

// TestLegacyPeerNegotiation pins the per-connection version negotiation:
// a peer that speaks wire version 1 gets version-1 replies carrying a
// plain full view, and its message still updates our cache.
func TestLegacyPeerNegotiation(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 9})
	defer net.Close()
	legacy := net.Endpoint() // the old node, driven by hand
	ep := net.Endpoint()
	node, err := New(Config{
		Endpoint: ep,
		Schedule: core.Schedule{
			Start: time.Now(), Delta: time.Hour,
			CycleLen: time.Hour, Gamma: 1 << 20, // ticker never fires
		},
		Value:     func() float64 { return 1 },
		Bootstrap: []string{legacy.Addr()},
		Seed:      3,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	msg := &wire.Membership{From: legacy.Addr(), Seq: 1, View: wire.ViewFrame{
		Kind:    wire.ViewFull,
		Entries: []wire.Descriptor{{Addr: "third:1", Stamp: 2}},
	}}
	data, err := wire.EncodeLegacy(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Send(ep.Addr(), data); err != nil {
		t.Fatal(err)
	}

	select {
	case pkt := <-legacy.Recv():
		reply, version, err := wire.DecodeExt(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if version != wire.VersionLegacy {
			t.Fatalf("reply version = %d, want %d", version, wire.VersionLegacy)
		}
		mr, ok := reply.(*wire.MembershipReply)
		if !ok {
			t.Fatalf("reply is %T", reply)
		}
		if mr.View.Kind != wire.ViewFull || mr.View.Gen != 0 {
			t.Fatalf("legacy reply frame = %+v, want un-numbered full view", mr.View)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no membership reply")
	}

	// The legacy peer's gossip landed in the cache.
	deadline := time.Now().Add(time.Second)
	for {
		if containsAddr(node.Peers(), "third:1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("legacy gossip not absorbed; peers = %v", node.Peers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLegacyEncodeRejectsDelta documents the downgrade rule the agent
// relies on: a delta frame cannot be encoded at the legacy version.
func TestLegacyEncodeRejectsDelta(t *testing.T) {
	_, err := wire.EncodeLegacy(&wire.Membership{From: "a", Seq: 1, View: wire.ViewFrame{
		Kind: wire.ViewDelta, Gen: 2, Base: 1,
	}})
	if !errors.Is(err, wire.ErrBadViewKind) {
		t.Fatalf("EncodeLegacy(delta) = %v, want ErrBadViewKind", err)
	}
}

func containsAddr(addrs []string, want string) bool {
	for _, a := range addrs {
		if a == want {
			return true
		}
	}
	return false
}

// TestVersionNeverDowngrades pins the upgrade-only negotiation rule: a
// peer that once demonstrated wire version 2 keeps receiving version-2
// replies even if a later version-1 datagram arrives bearing its
// address (the echo of our own dual-version join probe, or a reordered
// legacy frame) — last-message-wins would latch two current nodes onto
// legacy full-view gossip permanently.
func TestVersionNeverDowngrades(t *testing.T) {
	net := transport.NewMemNetwork(transport.MemNetworkConfig{Seed: 11})
	defer net.Close()
	peer := net.Endpoint()
	ep := net.Endpoint()
	node, err := New(Config{
		Endpoint: ep,
		Schedule: core.Schedule{
			Start: time.Now(), Delta: time.Hour,
			CycleLen: time.Hour, Gamma: 1 << 20,
		},
		Value:     func() float64 { return 1 },
		Bootstrap: []string{peer.Addr()},
		Seed:      5,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	sendAt := func(encode func(wire.Message) ([]byte, error), seq uint64) uint8 {
		t.Helper()
		data, err := encode(&wire.Membership{From: peer.Addr(), Seq: seq,
			View: wire.ViewFrame{Kind: wire.ViewFull, Gen: uint32(seq),
				Entries: []wire.Descriptor{{Addr: "x:1", Stamp: 1}}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := peer.Send(ep.Addr(), data); err != nil {
			t.Fatal(err)
		}
		select {
		case pkt := <-peer.Recv():
			_, version, err := wire.DecodeExt(pkt.Data)
			if err != nil {
				t.Fatal(err)
			}
			return version
		case <-time.After(2 * time.Second):
			t.Fatal("no reply")
			return 0
		}
	}

	if v := sendAt(wire.Encode, 1); v != wire.Version {
		t.Fatalf("v2 message answered at version %d", v)
	}
	// A stray legacy datagram must not downgrade the connection…
	if v := sendAt(wire.EncodeLegacy, 2); v != wire.Version {
		t.Fatalf("legacy echo downgraded the connection to version %d", v)
	}
	// …but a steady legacy stream means the peer really rolled back to a
	// legacy binary, and staying at version 2 would blackhole it.
	var last uint8
	for seq := uint64(3); seq < 3+uint64(downgradeStreak); seq++ {
		last = sendAt(wire.EncodeLegacy, seq)
	}
	if last != wire.VersionLegacy {
		t.Fatalf("persistent legacy stream not honored: still replying at version %d", last)
	}
	// And the rolled-back peer can upgrade again.
	if v := sendAt(wire.Encode, 99); v != wire.Version {
		t.Fatalf("re-upgrade failed: version %d", v)
	}
}
