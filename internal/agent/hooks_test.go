package agent

import (
	"testing"
	"time"
)

// TestSetValueTakesEffectNextEpoch: a SetValue call mid-epoch must not
// disturb the running instance, and the fleet must converge to the new
// mean once the next epoch has sampled the updated value.
func TestSetValueTakesEffectNextEpoch(t *testing.T) {
	nodes, _ := launchCluster(t, 8, testSchedule(), func(i int) float64 { return 10 })
	// Wait for the first sealed output at the old value.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if out, ok := nodes[0].LastOutput(); ok && out.OK {
			if out.Value < 9.9 || out.Value > 10.1 {
				t.Fatalf("pre-update output %g, want ≈ 10", out.Value)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no epoch output before update")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range nodes {
		n.SetValue(40)
	}
	// Within a few epochs every node must seal an output at the new mean.
	deadline = time.Now().Add(3 * time.Second)
	for {
		if out, ok := nodes[0].LastOutput(); ok && out.OK && out.Value > 39 && out.Value < 41 {
			return
		}
		if time.Now().After(deadline) {
			out, _ := nodes[0].LastOutput()
			t.Fatalf("fleet never converged to updated value; last output %+v", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSetValueOverridesConfigValue: once SetValue has been called, later
// restarts must sample the stored value, not Config.Value.
func TestSetValueOverridesConfigValue(t *testing.T) {
	nodes, _ := launchCluster(t, 3, testSchedule(), func(i int) float64 { return 5 })
	nodes[0].SetValue(7)
	nodes[0].mu.Lock()
	nodes[0].resetStateLocked()
	got := nodes[0].scalar
	nodes[0].mu.Unlock()
	if got != 7 {
		t.Fatalf("restart sampled %g, want the SetValue override 7", got)
	}
}

// TestSnapshotConsistency: Snapshot must agree with the individual
// accessors and carry the newest sealed output.
func TestSnapshotConsistency(t *testing.T) {
	nodes, _ := launchCluster(t, 4, testSchedule(), func(i int) float64 { return 3 })
	deadline := time.Now().Add(3 * time.Second)
	for {
		s := nodes[0].Snapshot()
		if s.HasOutput {
			if !s.Participating {
				t.Fatal("founding node not participating in snapshot")
			}
			if !s.OK {
				t.Fatal("snapshot has output but no usable estimate")
			}
			if s.LastOutput.Epoch >= s.Epoch {
				t.Fatalf("sealed output epoch %d not before current epoch %d",
					s.LastOutput.Epoch, s.Epoch)
			}
			if s.LastOutput.Value < 2.9 || s.LastOutput.Value > 3.1 {
				t.Fatalf("sealed output %g, want ≈ 3", s.LastOutput.Value)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never reported a sealed output")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
