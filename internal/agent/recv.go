package agent

import (
	"context"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/obs"
	"antientropy/internal/wire"
)

// recvLoop is the passive thread of Figure 1: it serves exchange
// requests, answers joins and membership gossip, and reacts to epoch
// identifiers (§4.3).
func (n *Node) recvLoop(ctx context.Context) {
	defer n.wg.Done()
	for {
		select {
		case <-ctx.Done():
			// Drain until the endpoint closes its channel.
			for pkt := range n.cfg.Endpoint.Recv() {
				pkt.Release() // discard: we are shutting down
			}
			return
		case pkt, ok := <-n.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			n.handle(pkt.From, pkt.Data)
			pkt.Release()
		}
	}
}

// handle decodes and dispatches one datagram together with the wire
// version it arrived at. Each handler records the version inside its
// own critical section (observePeerLocked) — the per-connection
// negotiation: replies to a legacy peer are encoded at the legacy
// version with plain full views.
func (n *Node) handle(from string, data []byte) {
	msg, version, err := wire.DecodeExt(data)
	if err != nil {
		n.metrics.decodeErrors.Add(1)
		n.trace(obs.TraceDecodeError, from, 0, 0, 0, time.Time{})
		n.log.Debug("undecodable datagram", "from", from, "err", err)
		return
	}
	now := time.Now()
	switch m := msg.(type) {
	case *wire.ExchangeRequest:
		n.handleExchangeRequest(m, now, version)
	case *wire.ExchangeReply:
		n.handleExchangeReply(m, version)
	case *wire.JoinRequest:
		n.handleJoinRequest(m, now, version)
	case *wire.JoinReply:
		n.handleJoinReply(m, from, version)
	case *wire.Membership:
		n.handleMembership(m, now, version)
	case *wire.MembershipReply:
		n.handleMembershipReply(m, version)
	}
}

// handleExchangeRequest is the passive thread's core: reply with the
// local state, then install the merged state (Figure 1b), subject to the
// epoch rules of §4.2/§4.3 and the busy rule documented on the package.
func (n *Node) handleExchangeRequest(m *wire.ExchangeRequest, now time.Time, version uint8) {
	n.mu.Lock()
	sess := n.observePeerLocked(m.From, version)
	peerVersion := sess.version // captured under mu for the refusal sends
	// Run the frame through the codec now (the reply must acknowledge
	// it), but absorb its descriptors only after the reply frame is
	// built: the reply is the pre-merge state (Figure 1b), and a delta
	// reply computed post-merge would echo the initiator's own
	// just-sent descriptors straight back at it.
	gossip := sess.codec.Observe(m.View)
	switch core.Synchronize(n.epoch, m.Epoch) {
	case core.DropStale:
		n.metrics.staleDropped.Add(1)
		n.trace(obs.TraceStaleDrop, m.From, m.Seq, m.Epoch, m.XID, now)
		n.absorbDescriptorsLocked(gossip)
		n.mu.Unlock()
		return
	case core.JumpForward:
		if n.participating || m.Epoch >= n.joinEpoch {
			// §4.3: adopt the newer epoch immediately, restarting from
			// fresh local values; then serve the request in that epoch.
			n.finishEpochLocked(now)
			n.epoch = m.Epoch
			n.metrics.epochJumps.Add(1)
			n.trace(obs.TraceEpochJump, m.From, m.Seq, m.Epoch, m.XID, now)
			n.startEpochLocked()
		}
	case core.KeepEpoch:
		// Proceed.
	}
	if !n.participating {
		// §7.1: nodes that joined mid-epoch refuse connections belonging
		// to the running epoch. The explicit NACK has the same effect as
		// the paper's timeout — the exchange is skipped — but frees the
		// initiator immediately.
		n.metrics.refusedJoining.Add(1)
		n.trace(obs.TraceRefusedJoining, m.From, m.Seq, m.Epoch, m.XID, now)
		n.absorbDescriptorsLocked(gossip)
		n.mu.Unlock()
		n.send(m.From, refusal(n.Addr(), m.Seq, m.XID, m.Epoch), peerVersion)
		return
	}
	if n.busy {
		// Serving now could break mass conservation with our outstanding
		// exchange; refusing behaves like a failed link (§6.2).
		n.metrics.refusedBusy.Add(1)
		n.trace(obs.TraceRefusedBusy, m.From, m.Seq, m.Epoch, m.XID, now)
		n.absorbDescriptorsLocked(gossip)
		n.mu.Unlock()
		n.send(m.From, refusal(n.Addr(), m.Seq, m.XID, m.Epoch), peerVersion)
		return
	}
	if n.epoch != m.Epoch {
		// Jump was vetoed (we are a joiner for an even later epoch).
		n.metrics.staleDropped.Add(1)
		n.trace(obs.TraceStaleDrop, m.From, m.Seq, m.Epoch, m.XID, now)
		n.absorbDescriptorsLocked(gossip)
		n.mu.Unlock()
		n.send(m.From, refusal(n.Addr(), m.Seq, m.XID, m.Epoch), peerVersion)
		return
	}
	// Reply with the pre-merge state, then update (Figure 1b).
	payload, replyVersion := n.payloadLocked(sess, m.Seq, m.XID, now)
	reply := &wire.ExchangeReply{From: n.Addr(), Payload: payload}
	n.absorbDescriptorsLocked(gossip)
	n.applyLocked(m.Payload)
	n.metrics.exchangesServed.Add(1)
	n.trace(obs.TraceServed, m.From, m.Seq, m.Epoch, m.XID, now)
	n.mu.Unlock()
	n.send(m.From, reply, replyVersion)
}

// refusal builds the decline NACK for an exchange request. It carries no
// membership frame: a refusal must stay cheap, and skipping the codec
// keeps the generation stream reserved for frames that carry state. The
// initiator's exchange identifier is echoed so the decline stitches
// into its span.
func refusal(from string, seq, xid, epoch uint64) *wire.ExchangeReply {
	return &wire.ExchangeReply{From: from, Payload: wire.Payload{
		Seq: seq, XID: xid, Epoch: epoch, Flags: wire.FlagRefused,
	}}
}

// handleExchangeReply routes the response to the waiting active thread.
func (n *Node) handleExchangeReply(m *wire.ExchangeReply, version uint8) {
	n.mu.Lock()
	sess := n.observePeerLocked(m.From, version)
	n.absorbFrameLocked(sess, m.View)
	ch, ok := n.pending[m.Seq]
	n.mu.Unlock()
	if !ok {
		// Late reply: the request already timed out. The responder
		// updated, we did not — the paper's "lost response" (§7.2).
		return
	}
	select {
	case ch <- m.Payload:
	default:
		// Duplicate reply; first one wins.
	}
}

// handleJoinRequest serves §4.2: hand out the next epoch identifier, the
// time until it starts, and bootstrap contacts. Seeds are a plain full
// descriptor list — a join is first contact, there is no delta base yet.
func (n *Node) handleJoinRequest(m *wire.JoinRequest, now time.Time, version uint8) {
	info := n.cfg.Schedule.JoinAt(now)
	n.mu.Lock()
	sess := n.observePeerLocked(m.From, version)
	seeds := n.viewDescriptorsLocked(now, sess.version)
	replyVersion := sess.version
	n.mu.Unlock()
	n.send(m.From, &wire.JoinReply{
		Seq:        m.Seq,
		NextEpoch:  info.NextEpoch,
		WaitMicros: info.WaitFor.Microseconds(),
		Seeds:      seeds,
	}, replyVersion)
}

// handleJoinReply installs the join information from a seed. JoinReply
// carries no From field; the transport-level sender identifies the seed
// whose wire version the reply demonstrates (this is what resolves the
// dual-version join probe).
func (n *Node) handleJoinReply(m *wire.JoinReply, from string, version uint8) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if from != "" {
		n.observePeerLocked(from, version)
	}
	if n.participating {
		return // already integrated
	}
	if m.NextEpoch > n.joinEpoch {
		n.joinEpoch = m.NextEpoch
	}
	n.absorbDescriptorsLocked(m.Seeds)
}

// handleMembership serves a standalone NEWSCAST exchange: run the frame
// through the peer's codec, reply with the pre-merge view (acknowledging
// the received frame), then absorb.
func (n *Node) handleMembership(m *wire.Membership, now time.Time, version uint8) {
	n.mu.Lock()
	sess := n.observePeerLocked(m.From, version)
	entries := sess.codec.Observe(m.View)
	frame, replyVersion := n.frameForLocked(sess, now)
	reply := &wire.MembershipReply{From: n.Addr(), Seq: m.Seq, View: frame}
	n.absorbDescriptorsLocked(entries)
	n.mu.Unlock()
	n.send(m.From, reply, replyVersion)
}

// handleMembershipReply absorbs the second half of a membership exchange.
func (n *Node) handleMembershipReply(m *wire.MembershipReply, version uint8) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.absorbFrameLocked(n.observePeerLocked(m.From, version), m.View)
}
