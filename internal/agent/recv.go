package agent

import (
	"context"
	"time"

	"antientropy/internal/core"
	"antientropy/internal/newscast"
	"antientropy/internal/wire"
)

// recvLoop is the passive thread of Figure 1: it serves exchange
// requests, answers joins and membership gossip, and reacts to epoch
// identifiers (§4.3).
func (n *Node) recvLoop(ctx context.Context) {
	defer n.wg.Done()
	for {
		select {
		case <-ctx.Done():
			// Drain until the endpoint closes its channel.
			for range n.cfg.Endpoint.Recv() {
				// Discard: we are shutting down.
			}
			return
		case pkt, ok := <-n.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			n.handle(pkt.From, pkt.Data)
		}
	}
}

// handle decodes and dispatches one datagram.
func (n *Node) handle(from string, data []byte) {
	msg, err := wire.Decode(data)
	if err != nil {
		n.mu.Lock()
		n.metrics.DecodeErrors++
		n.mu.Unlock()
		n.log.Debug("undecodable datagram", "from", from, "err", err)
		return
	}
	now := time.Now()
	switch m := msg.(type) {
	case *wire.ExchangeRequest:
		n.handleExchangeRequest(m, now)
	case *wire.ExchangeReply:
		n.handleExchangeReply(m)
	case *wire.JoinRequest:
		n.handleJoinRequest(m, now)
	case *wire.JoinReply:
		n.handleJoinReply(m, now)
	case *wire.Membership:
		n.handleMembership(m, now)
	case *wire.MembershipReply:
		n.handleMembershipReply(m)
	}
}

// handleExchangeRequest is the passive thread's core: reply with the
// local state, then install the merged state (Figure 1b), subject to the
// epoch rules of §4.2/§4.3 and the busy rule documented on the package.
func (n *Node) handleExchangeRequest(m *wire.ExchangeRequest, now time.Time) {
	n.mu.Lock()
	n.absorbGossipLocked(m.Gossip)
	switch core.Synchronize(n.epoch, m.Epoch) {
	case core.DropStale:
		n.metrics.StaleDropped++
		n.mu.Unlock()
		return
	case core.JumpForward:
		if n.participating || m.Epoch >= n.joinEpoch {
			// §4.3: adopt the newer epoch immediately, restarting from
			// fresh local values; then serve the request in that epoch.
			n.finishEpochLocked(now)
			n.epoch = m.Epoch
			n.metrics.EpochJumps++
			n.startEpochLocked()
		}
	case core.KeepEpoch:
		// Proceed.
	}
	if !n.participating {
		// §7.1: nodes that joined mid-epoch refuse connections belonging
		// to the running epoch. The explicit NACK has the same effect as
		// the paper's timeout — the exchange is skipped — but frees the
		// initiator immediately.
		n.metrics.RefusedJoining++
		n.mu.Unlock()
		n.send(m.From, refusal(n.Addr(), m.Seq, m.Epoch))
		return
	}
	if n.busy {
		// Serving now could break mass conservation with our outstanding
		// exchange; refusing behaves like a failed link (§6.2).
		n.metrics.RefusedBusy++
		n.mu.Unlock()
		n.send(m.From, refusal(n.Addr(), m.Seq, m.Epoch))
		return
	}
	if n.epoch != m.Epoch {
		// Jump was vetoed (we are a joiner for an even later epoch).
		n.metrics.StaleDropped++
		n.mu.Unlock()
		n.send(m.From, refusal(n.Addr(), m.Seq, m.Epoch))
		return
	}
	// Reply with the pre-merge state, then update (Figure 1b).
	reply := &wire.ExchangeReply{From: n.Addr(), Payload: n.payloadLocked(m.Seq, now)}
	n.applyLocked(m.Payload)
	n.metrics.ExchangesServed++
	n.mu.Unlock()
	n.send(m.From, reply)
}

// refusal builds the decline NACK for an exchange request.
func refusal(from string, seq, epoch uint64) *wire.ExchangeReply {
	return &wire.ExchangeReply{From: from, Payload: wire.Payload{
		Seq: seq, Epoch: epoch, Flags: wire.FlagRefused,
	}}
}

// handleExchangeReply routes the response to the waiting active thread.
func (n *Node) handleExchangeReply(m *wire.ExchangeReply) {
	n.mu.Lock()
	n.absorbGossipLocked(m.Gossip)
	ch, ok := n.pending[m.Seq]
	n.mu.Unlock()
	if !ok {
		// Late reply: the request already timed out. The responder
		// updated, we did not — the paper's "lost response" (§7.2).
		return
	}
	select {
	case ch <- m.Payload:
	default:
		// Duplicate reply; first one wins.
	}
}

// handleJoinRequest serves §4.2: hand out the next epoch identifier, the
// time until it starts, and bootstrap contacts.
func (n *Node) handleJoinRequest(m *wire.JoinRequest, now time.Time) {
	info := n.cfg.Schedule.JoinAt(now)
	n.mu.Lock()
	seeds := n.gossipLocked(now)
	n.mu.Unlock()
	n.send(m.From, &wire.JoinReply{
		Seq:        m.Seq,
		NextEpoch:  info.NextEpoch,
		WaitMicros: info.WaitFor.Microseconds(),
		Seeds:      seeds,
	})
}

// handleJoinReply installs the join information from a seed.
func (n *Node) handleJoinReply(m *wire.JoinReply, now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.participating {
		return // already integrated
	}
	if m.NextEpoch > n.joinEpoch {
		n.joinEpoch = m.NextEpoch
	}
	entries := make([]newscast.Entry[string], 0, len(m.Seeds))
	for _, d := range m.Seeds {
		if d.Addr == "" || d.Addr == n.Addr() {
			continue
		}
		entries = append(entries, newscast.Entry[string]{Key: d.Addr, Stamp: d.Stamp})
	}
	n.cache.Absorb(entries)
	_ = now
}

// handleMembership serves a standalone NEWSCAST exchange.
func (n *Node) handleMembership(m *wire.Membership, now time.Time) {
	n.mu.Lock()
	reply := &wire.MembershipReply{From: n.Addr(), Seq: m.Seq, Entries: n.gossipLocked(now)}
	n.absorbGossipLocked(m.Entries)
	n.mu.Unlock()
	n.send(m.From, reply)
}

// handleMembershipReply absorbs the second half of a membership exchange.
func (n *Node) handleMembershipReply(m *wire.MembershipReply) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.absorbGossipLocked(m.Entries)
}
