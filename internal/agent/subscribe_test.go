package agent

import (
	"testing"
	"time"
)

func TestSubscribeReceivesEpochOutputs(t *testing.T) {
	nodes, _ := launchCluster(t, 4, testSchedule(), func(i int) float64 { return 6 })
	sub := nodes[0].Subscribe(16)
	var got []Output
	deadline := time.After(3 * time.Second)
	for len(got) < 3 {
		select {
		case out, ok := <-sub:
			if !ok {
				t.Fatal("subscription closed early")
			}
			got = append(got, out)
		case <-deadline:
			t.Fatalf("only %d outputs received", len(got))
		}
	}
	for i, out := range got {
		if !out.OK {
			t.Errorf("output %d unusable: %+v", i, out)
		}
		if out.Value < 5.9 || out.Value > 6.1 {
			t.Errorf("output %d value %g, want ≈ 6", i, out.Value)
		}
		if i > 0 && got[i].Epoch <= got[i-1].Epoch {
			t.Errorf("outputs out of order: %+v", got)
		}
	}
}

func TestSubscribeSlowConsumerDropsOldest(t *testing.T) {
	nodes, _ := launchCluster(t, 3, testSchedule(), func(i int) float64 { return 1 })
	sub := nodes[0].Subscribe(1) // tiny buffer, never read until the end
	time.Sleep(1200 * time.Millisecond)
	// The buffer holds the most recent output; the node never blocked.
	select {
	case out := <-sub:
		if out.Epoch == 0 {
			t.Error("kept output looks like the very first epoch — eviction broken")
		}
	default:
		t.Fatal("no output buffered at all")
	}
	if _, ok := nodes[0].Estimate(); !ok {
		t.Fatal("node damaged by slow subscriber")
	}
}

func TestSubscribeClosedOnStop(t *testing.T) {
	nodes, _ := launchCluster(t, 3, testSchedule(), func(i int) float64 { return 1 })
	sub := nodes[0].Subscribe(4)
	if err := nodes[0].Stop(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-sub:
			if !ok {
				return // closed as promised
			}
		case <-deadline:
			t.Fatal("subscription never closed after Stop")
		}
	}
}

func TestSubscribeAfterStopReturnsClosed(t *testing.T) {
	nodes, _ := launchCluster(t, 3, testSchedule(), func(i int) float64 { return 1 })
	if err := nodes[0].Stop(); err != nil {
		t.Fatal(err)
	}
	sub := nodes[0].Subscribe(4)
	if _, ok := <-sub; ok {
		t.Fatal("subscription on stopped node delivered an output")
	}
}
