package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 outputs", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator produced duplicates: %d distinct of 100", len(seen))
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child's stream must differ from the parent's subsequent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided %d times", same)
	}
}

func TestStreamRNGStability(t *testing.T) {
	// Stream s of seed is a pure function of (seed, s): re-deriving it
	// must reproduce the stream bit-for-bit.
	a := NewStreamRNG(42, 3)
	b := NewStreamRNG(42, 3)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream re-derivation diverged at step %d", i)
		}
	}
}

func TestStreamRNGIndependence(t *testing.T) {
	// Distinct streams of one seed, the same stream across seeds, and the
	// root generator itself must all produce disjoint output prefixes.
	gens := []*RNG{
		NewRNG(11),
		NewStreamRNG(11, 0),
		NewStreamRNG(11, 1),
		NewStreamRNG(11, 2),
		NewStreamRNG(12, 0),
	}
	seen := make(map[uint64][]int)
	for g, r := range gens {
		for i := 0; i < 200; i++ {
			v := r.Uint64()
			if prior := seen[v]; len(prior) > 0 {
				t.Fatalf("generators %v and %d emitted identical value %d", prior, g, v)
			}
			seen[v] = append(seen[v], g)
		}
	}
}

func TestStreamRNGUniformity(t *testing.T) {
	// Stream generators must still look uniform: the mean of many
	// Float64 draws concentrates around 1/2.
	for stream := uint64(0); stream < 4; stream++ {
		r := NewStreamRNG(5, stream)
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Float64()
		}
		if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
			t.Fatalf("stream %d mean %g, want ~0.5", stream, mean)
		}
	}
}

func TestRNGSplitDeterminism(t *testing.T) {
	c1 := NewRNG(9).Split()
	c2 := NewRNG(9).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("value %d drawn %d times, expected ~%.0f", v, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(17)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %.4f, want ~0.30", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	tests := []struct {
		lambda float64
	}{{0.5}, {1}, {4}, {10}}
	for _, tc := range tests {
		r := NewRNG(23)
		var m Moments
		for i := 0; i < 50000; i++ {
			m.Add(float64(r.Poisson(tc.lambda)))
		}
		if math.Abs(m.Mean()-tc.lambda) > 0.1*tc.lambda+0.05 {
			t.Errorf("Poisson(%g): mean %.3f", tc.lambda, m.Mean())
		}
		if math.Abs(m.Variance()-tc.lambda) > 0.15*tc.lambda+0.1 {
			t.Errorf("Poisson(%g): variance %.3f", tc.lambda, m.Variance())
		}
	}
}

func TestPoissonNonPositiveLambda(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d", got)
	}
}

func TestPoissonLargeLambda(t *testing.T) {
	r := NewRNG(29)
	var m Moments
	for i := 0; i < 20000; i++ {
		v := r.Poisson(100)
		if v < 0 {
			t.Fatal("negative Poisson variate")
		}
		m.Add(float64(v))
	}
	if math.Abs(m.Mean()-100) > 2 {
		t.Fatalf("Poisson(100) mean %.2f", m.Mean())
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	var m Moments
	for i := 0; i < 100000; i++ {
		m.Add(r.NormFloat64())
	}
	if math.Abs(m.Mean()) > 0.02 {
		t.Fatalf("normal mean %.4f", m.Mean())
	}
	if math.Abs(m.Variance()-1) > 0.03 {
		t.Fatalf("normal variance %.4f", m.Variance())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := make([]int, 257)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("invalid permutation value %d", v)
		}
		seen[v] = true
	}
}

func TestPermShufflesUniformly(t *testing.T) {
	// Over many draws, element 0 should land in each slot about equally.
	r := NewRNG(37)
	const n, draws = 5, 50000
	counts := make([]int, n)
	p := make([]int, n)
	for i := 0; i < draws; i++ {
		r.Perm(p)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	expected := float64(draws) / n
	for pos, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Errorf("element 0 in slot %d: %d draws, expected ~%.0f", pos, c, expected)
		}
	}
}

func TestSampleDistinctAndExcluded(t *testing.T) {
	r := NewRNG(41)
	dst := make([]int, 10)
	for trial := 0; trial < 100; trial++ {
		r.Sample(dst, 50, func(v int) bool { return v == 7 })
		seen := make(map[int]bool)
		for _, v := range dst {
			if v == 7 {
				t.Fatal("excluded value sampled")
			}
			if v < 0 || v >= 50 {
				t.Fatalf("out-of-range sample %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleNilExclusion(t *testing.T) {
	r := NewRNG(43)
	dst := make([]int, 3)
	r.Sample(dst, 3, nil)
	seen := map[int]bool{dst[0]: true, dst[1]: true, dst[2]: true}
	if len(seen) != 3 {
		t.Fatalf("Sample with n == len(dst) must be a permutation, got %v", dst)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
