package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMomentsAgainstNaive(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		mean float64
		vari float64
	}{
		{"pair", []float64{2, 4}, 3, 2},
		{"constant", []float64{5, 5, 5, 5}, 5, 0},
		{"integers", []float64{1, 2, 3, 4, 5}, 3, 2.5},
		{"negatives", []float64{-3, 0, 3}, 0, 9},
		{"peak", []float64{100, 0, 0, 0}, 25, 2500},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var m Moments
			m.AddAll(tc.xs)
			if !almostEqual(m.Mean(), tc.mean, 1e-12) {
				t.Errorf("mean = %g, want %g", m.Mean(), tc.mean)
			}
			if !almostEqual(m.Variance(), tc.vari, 1e-9) {
				t.Errorf("variance = %g, want %g", m.Variance(), tc.vari)
			}
			if m.N() != len(tc.xs) {
				t.Errorf("n = %d, want %d", m.N(), len(tc.xs))
			}
		})
	}
}

func TestMomentsMinMax(t *testing.T) {
	var m Moments
	m.AddAll([]float64{3, -1, 7, 0})
	if m.Min() != -1 || m.Max() != 7 {
		t.Fatalf("min/max = %g/%g, want -1/7", m.Min(), m.Max())
	}
}

func TestMomentsFewObservations(t *testing.T) {
	var m Moments
	if m.Variance() != 0 || m.Mean() != 0 || m.N() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	m.Add(42)
	if m.Variance() != 0 {
		t.Fatal("single observation has zero variance")
	}
	if m.Mean() != 42 {
		t.Fatalf("mean = %g", m.Mean())
	}
}

func TestMomentsNumericalStability(t *testing.T) {
	// Welford must survive a large common offset that would destroy the
	// naive sum-of-squares formula.
	var m Moments
	offset := 1e12
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x + offset)
	}
	if !almostEqual(m.Variance(), 2.5, 1e-3) {
		t.Fatalf("variance with offset = %g, want 2.5", m.Variance())
	}
}

func TestMomentsMatchesPaperEquation1(t *testing.T) {
	// Equation (1): unbiased variance with denominator N−1 over the peak
	// distribution used throughout the paper: one node at N, rest 0.
	n := 1000
	var m Moments
	m.Add(float64(n))
	for i := 1; i < n; i++ {
		m.Add(0)
	}
	mean := m.Mean()
	if !almostEqual(mean, 1, 1e-12) {
		t.Fatalf("peak mean = %g, want 1", mean)
	}
	// σ²₀ = (1/(N−1))·((N−1)²·1 + (N−1)·1) = N
	want := float64(n)
	if !almostEqual(m.Variance(), want, 1e-6) {
		t.Fatalf("peak variance = %g, want %g", m.Variance(), want)
	}
}

func TestPopVariance(t *testing.T) {
	var m Moments
	m.AddAll([]float64{2, 4})
	if !almostEqual(m.PopVariance(), 1, 1e-12) {
		t.Fatalf("population variance = %g, want 1", m.PopVariance())
	}
}

func TestEmptyErrors(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean(nil) should return ErrEmpty")
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Variance(nil) should return ErrEmpty")
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Error("MinMax(nil) should return ErrEmpty")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("Quantile(nil) should return ErrEmpty")
	}
	if _, err := TrimmedMean(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Error("TrimmedMean(nil) should return ErrEmpty")
	}
	if _, err := GeometricMean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("GeometricMean(nil) should return ErrEmpty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, tc := range tests {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", tc.q, err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileRangeError(t *testing.T) {
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("negative quantile accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("quantile > 1 accepted")
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Fatalf("Median = %g, %v; want 5", got, err)
	}
}

func TestTrimmedMeanPaperCombiner(t *testing.T) {
	// §7.3: with t estimates, drop ⌊t/3⌋ lowest and ⌊t/3⌋ highest.
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		// t=6: drop 2 lowest (1,2) and 2 highest (100, 1000) -> mean(3,4)
		{"six", []float64{1000, 1, 3, 100, 2, 4}, 3.5},
		// t=3: drop 1 low, 1 high -> middle value
		{"three", []float64{10, 1, 5}, 5},
		// t=2: drop nothing (⌊2/3⌋=0) -> plain mean
		{"two", []float64{1, 3}, 2},
		// t=1
		{"one", []float64{7}, 7},
		// outlier robustness: huge outlier removed entirely
		{"outlier", []float64{1e9, 100, 101, 99, 100, 1}, 100},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := TrimmedMean(tc.xs, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tc.want, 1e-9) {
				t.Errorf("TrimmedMean = %g, want %g", got, tc.want)
			}
		})
	}
}

func TestTrimmedMeanDegenerateTrim(t *testing.T) {
	// k=1 would discard everything; must fall back to the plain mean.
	got, err := TrimmedMean([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Fatalf("TrimmedMean fallback = %g, want 2", got)
	}
}

func TestTrimmedMeanBadDivisor(t *testing.T) {
	if _, err := TrimmedMean([]float64{1}, 0); err == nil {
		t.Error("divisor 0 accepted")
	}
}

func TestTrimmedMeanBoundsProperty(t *testing.T) {
	// The trimmed mean always lies within [min, max] of the input.
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Tame magnitudes to avoid float overflow in sums.
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		tm, err := TrimmedMean(xs, 3)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(xs)
		return tm >= lo-1e-9 && tm <= hi+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	got, err := GeometricMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 4, 1e-9) {
		t.Fatalf("GeometricMean(2,8) = %g, want 4", got)
	}
	if _, err := GeometricMean([]float64{1, -1}); err == nil {
		t.Error("negative input accepted")
	}
	if _, err := GeometricMean([]float64{0}); err == nil {
		t.Error("zero input accepted")
	}
}

func TestMeanVarianceHelpers(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || m != 2 {
		t.Fatalf("Mean = %g, %v", m, err)
	}
	v, err := Variance([]float64{1, 2, 3})
	if err != nil || !almostEqual(v, 1, 1e-12) {
		t.Fatalf("Variance = %g, %v", v, err)
	}
	lo, hi, err := MinMax([]float64{3, 1, 2})
	if err != nil || lo != 1 || hi != 3 {
		t.Fatalf("MinMax = %g, %g, %v", lo, hi, err)
	}
}
