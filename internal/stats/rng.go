// Package stats provides the statistical substrate for the aggregation
// library: a deterministic, splittable random number generator, streaming
// moment accumulators, quantiles, trimmed means, and the distribution
// helpers the DSN'04 paper relies on (Poisson exchange counts,
// convergence-factor estimation).
//
// All randomness in the simulator flows through RNG so that every
// experiment is reproducible bit-for-bit from a single seed.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256++ with splitmix64 seeding. It is NOT safe for concurrent use;
// derive independent generators with Split for use across goroutines.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator deterministically initialized from seed.
// Distinct seeds yield independent-looking streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Split returns a new generator whose stream is independent of the
// receiver's subsequent output. The receiver is advanced.
func (r *RNG) Split() *RNG {
	// Seeding a fresh splitmix chain from the parent's output decorrelates
	// the child from the parent's future xoshiro stream.
	return NewRNG(r.Uint64())
}

// NewStreamRNG returns the generator for stream index `stream` of the
// family rooted at seed: a pure function of (seed, stream), so shard s of
// a K-sharded run always receives the same stream regardless of how many
// other streams were derived before it. Distinct (seed, stream) pairs
// yield independent-looking generators; NewStreamRNG(seed, s) is also
// decorrelated from NewRNG(seed) itself.
func NewStreamRNG(seed, stream uint64) *RNG {
	// Advance the splitmix chain once so stream 0 differs from NewRNG(seed),
	// then jump the chain by the stream index before drawing the child seed.
	sm, _ := splitmix64(seed)
	sm += stream * 0x9e3779b97f4a7c15
	_, out := splitmix64(sm)
	return NewRNG(out)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics: callers must validate their bounds.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method (unbiased).
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda the PTRS transformed-rejection
// method would be preferable, but the paper only needs lambda ~ 1, so the
// simple method with a normal fallback at lambda > 30 suffices.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction; adequate for
		// configuration sampling (never used in the convergence hot loop).
		v := math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64())
		if v < 0 {
			return 0
		}
		return int(v)
	}
	limit := math.Exp(-lambda)
	p := 1.0
	k := 0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Perm fills dst with a uniformly random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Shuffle performs a Fisher–Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample fills dst with distinct uniform values from [0, n) excluding the
// values for which excluded returns true. It panics if fewer than len(dst)
// admissible values exist is not checked; callers must guarantee
// feasibility. Uses simple rejection, appropriate for len(dst) << n.
func (r *RNG) Sample(dst []int, n int, excluded func(int) bool) {
	seen := make(map[int]struct{}, len(dst))
	for i := range dst {
		for {
			v := r.Intn(n)
			if excluded != nil && excluded(v) {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			dst[i] = v
			break
		}
	}
}
