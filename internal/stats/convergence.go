package stats

import (
	"errors"
	"math"
)

// ConvergenceTracker records the empirical variance of the local estimates
// at the end of each cycle and derives the per-cycle convergence factor
// ρ_i = σ²_i / σ²_{i−1} (paper §3) and its average over a window of
// cycles (used throughout the paper's Figures 3, 4 and 7).
//
// The zero value is ready to use; record the cycle-0 (initial) variance
// first, then one variance per completed cycle.
type ConvergenceTracker struct {
	variances []float64
}

// Record appends the variance observed at the end of the current cycle.
func (c *ConvergenceTracker) Record(variance float64) {
	c.variances = append(c.variances, variance)
}

// Cycles returns the number of completed cycles recorded (excluding the
// initial variance).
func (c *ConvergenceTracker) Cycles() int {
	if len(c.variances) == 0 {
		return 0
	}
	return len(c.variances) - 1
}

// Variance returns the variance recorded after cycle i, where i = 0 is the
// initial distribution.
func (c *ConvergenceTracker) Variance(i int) (float64, error) {
	if i < 0 || i >= len(c.variances) {
		return 0, errors.New("stats: cycle index out of range")
	}
	return c.variances[i], nil
}

// Factor returns ρ_i = σ²_i / σ²_{i−1} for cycle i ≥ 1. Cycles in which
// the previous variance was already zero (fully converged) report a factor
// of 0.
func (c *ConvergenceTracker) Factor(i int) (float64, error) {
	if i < 1 || i >= len(c.variances) {
		return 0, errors.New("stats: cycle index out of range")
	}
	prev := c.variances[i-1]
	if prev == 0 {
		return 0, nil
	}
	return c.variances[i] / prev, nil
}

// AverageFactor returns the geometric mean of the per-cycle convergence
// factors over cycles [1, upTo], i.e. (σ²_upTo / σ²_0)^(1/upTo). The
// geometric mean is the right average for multiplicative reduction rates
// and is what the paper plots as the "average convergence factor over a
// period of 20 cycles". When the variance underflows to zero before upTo
// cycles, the last positive variance is used and the exponent adjusted, so
// that extremely fast topologies do not report a spurious zero.
func (c *ConvergenceTracker) AverageFactor(upTo int) (float64, error) {
	if upTo < 1 || upTo >= len(c.variances) {
		return 0, errors.New("stats: cycle index out of range")
	}
	v0 := c.variances[0]
	if v0 == 0 {
		return 0, errors.New("stats: initial variance is zero")
	}
	// Find the last cycle ≤ upTo with positive variance.
	last := 0
	for i := 1; i <= upTo; i++ {
		if c.variances[i] > 0 {
			last = i
		}
	}
	if last == 0 {
		return 0, nil
	}
	ratio := c.variances[last] / v0
	return math.Pow(ratio, 1/float64(last)), nil
}

// NormalizedReduction returns σ²_i / σ²_0 for every recorded cycle i,
// the series plotted in Figure 3(b).
func (c *ConvergenceTracker) NormalizedReduction() []float64 {
	if len(c.variances) == 0 {
		return nil
	}
	v0 := c.variances[0]
	out := make([]float64, len(c.variances))
	for i, v := range c.variances {
		if v0 == 0 {
			out[i] = 0
			continue
		}
		out[i] = v / v0
	}
	return out
}
