package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summary operations on empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Moments accumulates count, mean and variance in a single streaming pass
// using Welford's numerically stable algorithm. The zero value is ready to
// use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates the observation x.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// AddAll incorporates every value of xs.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// N returns the number of observations.
func (m Moments) N() int { return m.n }

// Mean returns the arithmetic mean (0 for an empty accumulator).
func (m Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (denominator n−1), as in
// equation (1) of the paper. It returns 0 for fewer than two observations.
func (m Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// PopVariance returns the population variance (denominator n).
func (m Moments) PopVariance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the sample standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (0 when empty).
func (m Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 when empty).
func (m Moments) Max() float64 { return m.max }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var m Moments
	m.AddAll(xs)
	return m.Mean(), nil
}

// Variance returns the unbiased sample variance of xs (equation (1)).
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var m Moments
	m.AddAll(xs)
	return m.Variance(), nil
}

// MinMax returns the extreme values of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// TrimmedMean implements the combiner of paper §7.3: the values are
// sorted, the ⌊len/k⌋ lowest and ⌊len/k⌋ highest are discarded (the paper
// uses k = 3), and the mean of the remainder is returned. If trimming
// would discard everything the plain mean is returned.
func TrimmedMean(xs []float64, k int) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if k <= 0 {
		return 0, errors.New("stats: trim divisor must be positive")
	}
	drop := len(xs) / k
	if 2*drop >= len(xs) {
		return Mean(xs)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Mean(sorted[drop : len(sorted)-drop])
}

// GeometricMean returns the geometric mean of xs, which must all be
// positive.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sumLog := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs))), nil
}
