package stats

import (
	"math"
	"testing"
)

func TestConvergenceTrackerFactors(t *testing.T) {
	var c ConvergenceTracker
	c.Record(100) // cycle 0 (initial)
	c.Record(25)  // cycle 1: factor 0.25
	c.Record(5)   // cycle 2: factor 0.2

	if c.Cycles() != 2 {
		t.Fatalf("Cycles = %d, want 2", c.Cycles())
	}
	f1, err := c.Factor(1)
	if err != nil || !almostEqual(f1, 0.25, 1e-12) {
		t.Fatalf("Factor(1) = %g, %v", f1, err)
	}
	f2, err := c.Factor(2)
	if err != nil || !almostEqual(f2, 0.2, 1e-12) {
		t.Fatalf("Factor(2) = %g, %v", f2, err)
	}
}

func TestConvergenceTrackerAverageFactorIsGeometricMean(t *testing.T) {
	var c ConvergenceTracker
	c.Record(1)
	c.Record(0.5)  // factor 0.5
	c.Record(0.1)  // factor 0.2
	c.Record(0.05) // factor 0.5
	avg, err := c.AverageFactor(3)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.5*0.2*0.5, 1.0/3)
	if !almostEqual(avg, want, 1e-12) {
		t.Fatalf("AverageFactor = %g, want %g", avg, want)
	}
}

func TestConvergenceTrackerUnderflowHandling(t *testing.T) {
	// Once the variance underflows to exactly zero the average factor
	// must use the last positive cycle instead of reporting 0.
	var c ConvergenceTracker
	c.Record(1)
	c.Record(0.25)
	c.Record(0) // converged exactly
	avg, err := c.AverageFactor(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(avg, 0.25, 1e-12) {
		t.Fatalf("AverageFactor with underflow = %g, want 0.25", avg)
	}
}

func TestConvergenceTrackerZeroFromStart(t *testing.T) {
	var c ConvergenceTracker
	c.Record(1)
	c.Record(0)
	c.Record(0)
	avg, err := c.AverageFactor(2)
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("AverageFactor = %g, want 0 (instant convergence)", avg)
	}
	f, err := c.Factor(2)
	if err != nil || f != 0 {
		t.Fatalf("Factor after zero variance = %g, %v; want 0", f, err)
	}
}

func TestConvergenceTrackerErrors(t *testing.T) {
	var c ConvergenceTracker
	if _, err := c.Variance(0); err == nil {
		t.Error("Variance on empty tracker should error")
	}
	c.Record(1)
	if _, err := c.Factor(1); err == nil {
		t.Error("Factor(1) with a single record should error")
	}
	if _, err := c.AverageFactor(1); err == nil {
		t.Error("AverageFactor(1) with a single record should error")
	}
	if _, err := c.Factor(0); err == nil {
		t.Error("Factor(0) should error (cycle 0 is the initial state)")
	}
	c2 := ConvergenceTracker{}
	c2.Record(0)
	c2.Record(0)
	if _, err := c2.AverageFactor(1); err == nil {
		t.Error("zero initial variance should error")
	}
}

func TestNormalizedReduction(t *testing.T) {
	var c ConvergenceTracker
	c.Record(10)
	c.Record(5)
	c.Record(1)
	got := c.NormalizedReduction()
	want := []float64{1, 0.5, 0.1}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("reduction[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	var empty ConvergenceTracker
	if empty.NormalizedReduction() != nil {
		t.Error("empty tracker should return nil")
	}
}

func TestVarianceAccessor(t *testing.T) {
	var c ConvergenceTracker
	c.Record(3)
	v, err := c.Variance(0)
	if err != nil || v != 3 {
		t.Fatalf("Variance(0) = %g, %v", v, err)
	}
	if _, err := c.Variance(1); err == nil {
		t.Error("out-of-range access should error")
	}
	if _, err := c.Variance(-1); err == nil {
		t.Error("negative access should error")
	}
}
