package scenario

import (
	"context"
	"testing"
	"time"
)

// TestLivePartitionHealReconverges runs a miniature partition-and-heal
// scenario against a real agent fleet. The run is wall-clock driven, so
// assertions are deliberately loose: the point is that the live runtime
// survives the partition and re-converges after the heal, mirroring the
// simulator executor's prediction.
func TestLivePartitionHealReconverges(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet test skipped in -short mode")
	}
	sc := Scenario{
		Name: "live-partition-heal", N: 48, Cycles: 36, EpochLen: 12, Seed: 5,
		Events: []Event{
			{Kind: KindPartition, At: 4, Groups: []float64{1, 1}},
			{Kind: KindHeal, At: 16},
		},
	}.WithDefaults()
	res, err := RunLive(context.Background(), sc, LiveOptions{CycleLen: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCycle) != sc.Cycles+1 {
		t.Fatalf("got %d metric rows, want %d", len(res.PerCycle), sc.Cycles+1)
	}
	f := res.Final()
	if f.Alive != sc.N {
		t.Fatalf("final alive = %d, want %d", f.Alive, sc.N)
	}
	if f.RelError > 0.05 {
		t.Fatalf("final rel error %g: live fleet did not re-converge after the heal", f.RelError)
	}
	if res.TotalMessages() == 0 {
		t.Fatal("no exchange attempts recorded")
	}
}

// TestLiveChurnJoinCrash exercises the remaining live event kinds on a
// small fleet: churn, a join wave, a crash and a loss burst.
func TestLiveChurnJoinCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet test skipped in -short mode")
	}
	sc := Scenario{
		Name: "live-mixed", N: 40, Cycles: 30, EpochLen: 10, Seed: 6,
		Events: []Event{
			{Kind: KindChurn, At: 3, Until: 8, Count: 1},
			{Kind: KindJoin, At: 5, Count: 8},
			{Kind: KindCrash, At: 12, Count: 6},
			{Kind: KindLoss, At: 15, Until: 20, Rate: 0.2},
		},
	}.WithDefaults()
	res, err := RunLive(context.Background(), sc, LiveOptions{CycleLen: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerCycle[8].Alive; got != 48 {
		t.Fatalf("alive after the join wave = %d, want 48", got)
	}
	if got := res.PerCycle[13].Alive; got != 42 {
		t.Fatalf("alive after the crash = %d, want 42", got)
	}
	// After the loss burst ends, a clean epoch (cycles 21-30) restores a
	// close estimate.
	if f := res.Final(); f.RelError > 0.1 {
		t.Fatalf("final rel error %g after churn/join/crash/loss", f.RelError)
	}
}
