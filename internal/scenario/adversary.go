package scenario

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"antientropy/internal/agent"
	"antientropy/internal/stats"
)

// advSchedule is the materialized Byzantine plan of one run: which node
// slots are attacker-controlled, what each reports on the wire, and the
// bookkeeping the replay attack needs. It is derived from the Scenario
// alone — a dedicated RNG seeded from the scenario seed picks the
// Byzantine slots — so every executor (serial sim, sharded sim, live
// and udp fleets) selects the identical attacker set and their metric
// streams stay comparable, exactly as the honest script machinery does.
type advSchedule struct {
	sc    Scenario
	total int // run length in cycles

	// byzOf[slot] is the index of the adversary entry controlling the
	// slot (-1 = honest). Slots are drawn from the initial population
	// [0, N); sybil attackers instead mark the join slots they take.
	byzOf []int
	// sybilOf[slot] is the adversary index of the sybil attacker
	// occupying the slot (-1 = none), marked as sybil joins land.
	sybilOf []int

	// stale[slot] is the estimate a replay-stale attacker currently
	// replays; staleQ buffers the per-epoch-boundary snapshots until the
	// configured lag is reached. Written serially at epoch boundaries
	// (BeforeCycle), read-only during the exchange phase, so the sharded
	// engine's parallel shards need no locking.
	stale     []float64
	haveStale []bool
	staleQ    [][]float64

	byzN   int
	sybilN atomic.Int64
	lies   atomic.Int64
}

// newAdvSchedule materializes the Byzantine plan for a run over `slots`
// node slots, or returns nil when the scenario has no adversaries —
// the nil schedule keeps every honest code path bit-identical to the
// pre-adversary engine.
func newAdvSchedule(sc Scenario, slots int) *advSchedule {
	if !sc.HasAdversary() {
		return nil
	}
	s := &advSchedule{
		sc:        sc,
		total:     sc.Cycles,
		byzOf:     make([]int, slots),
		sybilOf:   make([]int, slots),
		stale:     make([]float64, slots),
		haveStale: make([]bool, slots),
		staleQ:    make([][]float64, slots),
	}
	for i := range s.byzOf {
		s.byzOf[i] = -1
		s.sybilOf[i] = -1
	}
	// The attacker picks are a pure function of the scenario: a dedicated
	// stream (decorrelated from the driver, value and engine streams)
	// permutes the initial population once per adversary entry, in entry
	// order. Earlier entries win contested slots.
	rng := stats.NewRNG(sc.Seed ^ 0x62797a616e74) // "byzant"
	perm := make([]int, sc.N)
	for ai, a := range sc.Adversaries {
		if a.Behavior == BehaviorSybilFlood {
			continue // sybil attackers create their own nodes
		}
		count := a.Count
		if count == 0 {
			count = int(math.Round(a.Fraction * float64(sc.N)))
		}
		rng.Perm(perm)
		taken := 0
		for _, slot := range perm {
			if taken >= count {
				break
			}
			if s.byzOf[slot] != -1 {
				continue
			}
			s.byzOf[slot] = ai
			s.byzN++
			taken++
		}
	}
	return s
}

// hostile reports whether the slot is attacker-controlled (Byzantine or
// sybil). Membership is constant over the run — the active window gates
// the behavior, not the sample-set filtering — so the honest population
// the metrics are computed over never shifts mid-run.
func (s *advSchedule) hostile(node int) bool {
	return s.byzOf[node] >= 0 || s.sybilOf[node] >= 0
}

// HostileCount returns the number of attacker-controlled slots so far
// (static Byzantine picks plus sybil joins that have landed).
func (s *advSchedule) HostileCount() int { return s.byzN + int(s.sybilN.Load()) }

// Lies returns the cumulative count of corrupted wire reports.
func (s *advSchedule) Lies() int64 { return s.lies.Load() }

// markSybil records a sybil attacker landing on a join slot.
func (s *advSchedule) markSybil(slot, adversary int) {
	s.sybilOf[slot] = adversary
	s.sybilN.Add(1)
}

// initValue resolves the local value an attacker-controlled slot
// (re)starts an epoch with: inject-extreme poisons the restart value
// while active, sybil slots always report their configured value, and
// everyone else keeps the honest scripted value. The honest value is
// passed in so the schedule never touches the ValueProgram — the truth
// signal stays honest.
func (s *advSchedule) initValue(node, cycle int, honest float64) float64 {
	if ai := s.sybilOf[node]; ai >= 0 {
		return s.sc.Adversaries[ai].Value
	}
	if ai := s.byzOf[node]; ai >= 0 {
		a := s.sc.Adversaries[ai]
		if a.Behavior == BehaviorInjectExtreme && a.activeAt(cycle, s.total) {
			return a.Value
		}
	}
	return honest
}

// engineHook builds the wire-lying hook the simulation engines install
// (sim.Config.Adversary / parsim.Config.Adversary), or nil when no
// configured behavior lies on the wire. The hook is a pure function of
// (cycle, node, local) plus the serially-updated replay snapshots, so
// the sharded engine's shards may call it concurrently.
func (s *advSchedule) engineHook() func(cycle, node int, local float64) (float64, bool) {
	need := false
	for _, a := range s.sc.Adversaries {
		if a.Behavior == BehaviorLieEstimate || a.Behavior == BehaviorReplayStale {
			need = true
		}
	}
	if !need {
		return nil
	}
	return func(cycle, node int, local float64) (float64, bool) {
		ai := s.byzOf[node]
		if ai < 0 {
			return 0, false
		}
		a := s.sc.Adversaries[ai]
		if !a.activeAt(cycle, s.total) {
			return 0, false
		}
		switch a.Behavior {
		case BehaviorLieEstimate:
			v := a.Value
			if a.Amplify != 0 {
				v = a.Amplify * local
			}
			s.lies.Add(1)
			return v, true
		case BehaviorReplayStale:
			if !s.haveStale[node] {
				return 0, false // no snapshot yet: first epochs answer honestly
			}
			s.lies.Add(1)
			return s.stale[node], true
		}
		return 0, false
	}
}

// snapshotEpoch records the replay-stale attackers' current estimates at
// an epoch boundary (call before the Restart wipes them). Once Lag
// snapshots have accumulated, the oldest becomes the replayed value —
// the estimate the node held Lag epochs ago.
func (s *advSchedule) snapshotEpoch(value func(node int) float64) {
	for slot, ai := range s.byzOf {
		if ai < 0 {
			continue
		}
		a := s.sc.Adversaries[ai]
		if a.Behavior != BehaviorReplayStale {
			continue
		}
		q := append(s.staleQ[slot], value(slot))
		if len(q) > a.Lag {
			q = q[1:]
		}
		s.staleQ[slot] = q
		if len(q) == a.Lag {
			s.stale[slot], s.haveStale[slot] = q[0], true
		}
	}
}

// replayLag returns the replay-stale lag of the adversary controlling
// the slot, or 0 when the slot doesn't replay.
func (s *advSchedule) replayLag(slot int) int {
	if ai := s.byzOf[slot]; ai >= 0 {
		if a := s.sc.Adversaries[ai]; a.Behavior == BehaviorReplayStale {
			return a.Lag
		}
	}
	return 0
}

// liveStaleState hands a replay-stale attacker's lagged snapshot from
// the output-subscription goroutine to its wire hook. The hook runs
// under the node's own state mutex and must not call node methods or
// take driver locks, so the snapshot travels as atomics.
type liveStaleState struct {
	have atomic.Bool
	bits atomic.Uint64 // math.Float64bits of the stale estimate
	tag  atomic.Uint64 // the epoch the estimate was sealed in
}

// liveValueSupplier builds a slot's epoch-restart value supplier for
// the live executors: the honest scripted signal read at the driver's
// current cycle, overridden by the adversary plan (inject-extreme,
// sybil) for attacker-controlled slots. Cycle 0 is the pre-run founding
// restart; the adversary window is 1-based, so poisoning is gated from
// cycle 1 on.
func liveValueSupplier(adv *advSchedule, prog *ValueProgram, slot int, cycleNow *atomic.Int64) func() float64 {
	if adv == nil {
		return func() float64 { return prog.Value(slot, int(cycleNow.Load())) }
	}
	return func() float64 {
		cycle := int(cycleNow.Load())
		honest := prog.Value(slot, cycle)
		w := cycle
		if w < 1 {
			w = 1
		}
		return adv.initValue(slot, w, honest)
	}
}

// wireHook builds a live-fleet slot's wire-lying hook (agent.Config's
// Adversary), or nil for honest slots. The agent applies it at payload
// construction — the single point both the exchange request and the
// pre-merge reply pass through — so lies corrupt the wire while the
// trace XIDs stay intact and exchange traces still stitch. The hook
// runs under the node's state mutex: it reads only the immutable
// schedule, the driver's atomic cycle clock and the replay snapshot
// atomics. Lying is counted by the agent's own metrics, which the
// fleet aggregation (agent.RegisterMetrics) exports.
func (s *advSchedule) wireHook(slot int, st *liveStaleState, cycleNow *atomic.Int64) func(epoch uint64, local float64) (float64, uint64, bool) {
	ai := s.byzOf[slot]
	if ai < 0 {
		return nil
	}
	a := s.sc.Adversaries[ai]
	if a.Behavior != BehaviorLieEstimate && a.Behavior != BehaviorReplayStale {
		return nil
	}
	total := s.total
	return func(epoch uint64, local float64) (float64, uint64, bool) {
		if !a.activeAt(int(cycleNow.Load()), total) {
			return 0, 0, false
		}
		switch a.Behavior {
		case BehaviorLieEstimate:
			v := a.Value
			if a.Amplify != 0 {
				v = a.Amplify * local
			}
			return v, epoch, true
		case BehaviorReplayStale:
			if !st.have.Load() {
				return 0, 0, false // no lagged snapshot yet: answer honestly
			}
			// Replaying the stale epoch tag along with the stale estimate
			// hands honest receivers the §4.3 DropStale defense.
			return math.Float64frombits(st.bits.Load()), st.tag.Load(), true
		}
		return 0, 0, false
	}
}

// replayWatch feeds a replay-stale attacker's snapshot from the node's
// sealed epoch outputs: once lag outputs have accumulated the oldest
// becomes the replayed (estimate, epoch-tag) pair — exactly what the
// node reported lag epochs ago. The subscription closes when the node
// stops, ending the goroutine; wg tracks it for driver shutdown.
func replayWatch(node *agent.Node, st *liveStaleState, lag int, wg *sync.WaitGroup) {
	ch := node.Subscribe(4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var q []agent.Output
		for out := range ch {
			q = append(q, out)
			if len(q) > lag {
				q = q[1:]
			}
			if len(q) == lag {
				st.bits.Store(math.Float64bits(q[0].Value))
				st.tag.Store(q[0].Epoch)
				st.have.Store(true)
			}
		}
	}()
}

// BiasReport quantifies an attack's impact: the per-cycle difference
// between the attacked run's mean estimate and its honest twin's, both
// executed with the same seed, engine and defense (see HonestTwin). With
// honest metrics sampled over the honest population only, the bias
// isolates what the attack leaks into honest estimates.
type BiasReport struct {
	// Scenario and Executor identify the attacked run.
	Scenario string `json:"scenario"`
	Executor string `json:"executor"`
	// Cycles is the number of per-cycle rows compared.
	Cycles int `json:"cycles"`
	// PerCycle[i] = attacked mean estimate − honest mean estimate at
	// cycle i.
	PerCycle []float64 `json:"perCycle"`
	// MeanAbsBias and MaxAbsBias aggregate |bias| over the run;
	// MaxAbsBiasCycle is where it peaked; FinalAbsBias is the last row.
	MeanAbsBias     float64 `json:"meanAbsBias"`
	MaxAbsBias      float64 `json:"maxAbsBias"`
	MaxAbsBiasCycle int     `json:"maxAbsBiasCycle"`
	FinalAbsBias    float64 `json:"finalAbsBias"`
}

// String renders the report's aggregate lines for CLI summaries.
func (r BiasReport) String() string {
	return fmt.Sprintf("bias %s/%s: mean|b|=%.4g max|b|=%.4g (cycle %d) final|b|=%.4g over %d cycles",
		r.Scenario, r.Executor, r.MeanAbsBias, r.MaxAbsBias, r.MaxAbsBiasCycle, r.FinalAbsBias, r.Cycles)
}

// Bias aligns an attacked run with its honest twin by cycle index and
// reports the estimate bias the attack induced.
func Bias(attacked, honest *RunResult) BiasReport {
	rep := BiasReport{Scenario: attacked.Scenario, Executor: attacked.Executor}
	n := len(attacked.PerCycle)
	if len(honest.PerCycle) < n {
		n = len(honest.PerCycle)
	}
	rep.Cycles = n
	if n == 0 {
		return rep
	}
	rep.PerCycle = make([]float64, n)
	var sum float64
	for c := 0; c < n; c++ {
		b := attacked.PerCycle[c].MeanEstimate - honest.PerCycle[c].MeanEstimate
		rep.PerCycle[c] = b
		ab := math.Abs(b)
		sum += ab
		if ab > rep.MaxAbsBias {
			rep.MaxAbsBias = ab
			rep.MaxAbsBiasCycle = attacked.PerCycle[c].Cycle
		}
	}
	rep.MeanAbsBias = sum / float64(n)
	rep.FinalAbsBias = math.Abs(rep.PerCycle[n-1])
	return rep
}

// TwinResult pairs an attacked simulation run with its honest twin and
// the derived bias report.
type TwinResult struct {
	Attacked *RunResult `json:"attacked"`
	Honest   *RunResult `json:"honest"`
	Bias     BiasReport `json:"bias"`
}

// RunSimWithTwin executes the scenario twice on the same engine and
// seed — once with its adversary section stripped (HonestTwin) and once
// as configured — and reports the attack's per-cycle estimate bias. The
// honest twin runs first so the attacked run can publish the
// agg_adversary_bias gauge live against the twin's trajectory;
// telemetry options only apply to the attacked run.
func RunSimWithTwin(sc Scenario, opts SimOptions) (*TwinResult, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	twinOpts := opts
	twinOpts.Obs, twinOpts.Timeline, twinOpts.Logger = nil, nil, nil
	twinOpts.BiasBaseline = nil
	honest, err := RunSimWith(sc.HonestTwin(), twinOpts)
	if err != nil {
		return nil, err
	}
	opts.BiasBaseline = honest.PerCycle
	attacked, err := RunSimWith(sc, opts)
	if err != nil {
		return nil, err
	}
	return &TwinResult{Attacked: attacked, Honest: honest, Bias: Bias(attacked, honest)}, nil
}
