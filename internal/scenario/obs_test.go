package scenario

import (
	"context"
	"strings"
	"testing"
	"time"

	"antientropy/internal/obs"
	"antientropy/internal/theory"
)

func TestConvergenceWatchWithinEpoch(t *testing.T) {
	var w convergenceWatch
	// First sample only primes the window — nothing to report yet.
	if _, ok := w.observe(CycleMetrics{Epoch: 1, EstimateStdDev: 4}); ok {
		t.Error("first sample reported a rho")
	}
	// Variance 16 → 4 within the same epoch: rho = 0.25.
	rho, ok := w.observe(CycleMetrics{Epoch: 1, EstimateStdDev: 2})
	if !ok || rho != 0.25 {
		t.Errorf("rho = %g ok=%v, want 0.25 true", rho, ok)
	}
	rho, ok = w.observe(CycleMetrics{Epoch: 1, EstimateStdDev: 1})
	if !ok || rho != 0.25 {
		t.Errorf("second rho = %g ok=%v, want 0.25 true", rho, ok)
	}
}

func TestConvergenceWatchEpochBoundaryResets(t *testing.T) {
	var w convergenceWatch
	w.observe(CycleMetrics{Epoch: 1, EstimateStdDev: 2})
	// Epoch restart: estimates reset to fresh local values, so the ratio
	// across the boundary is meaningless and must be suppressed.
	if _, ok := w.observe(CycleMetrics{Epoch: 2, EstimateStdDev: 10}); ok {
		t.Error("cross-epoch ratio reported")
	}
	// But the new epoch's window is primed: the next same-epoch sample
	// reports again.
	rho, ok := w.observe(CycleMetrics{Epoch: 2, EstimateStdDev: 5})
	if !ok || rho != 0.25 {
		t.Errorf("post-reset rho = %g ok=%v, want 0.25 true", rho, ok)
	}
}

func TestConvergenceWatchZeroVarianceGuard(t *testing.T) {
	var w convergenceWatch
	w.observe(CycleMetrics{Epoch: 1, EstimateStdDev: 0})
	// prevVar == 0 would divide by zero; the watch must stay silent.
	if _, ok := w.observe(CycleMetrics{Epoch: 1, EstimateStdDev: 1}); ok {
		t.Error("rho reported against zero previous variance")
	}
}

// TestSimObsRegistryExports runs the deterministic simulator with a
// registry attached and checks the scenario gauges and convergence-watch
// series land in the Prometheus export.
func TestSimObsRegistryExports(t *testing.T) {
	sc := Scenario{Name: "obs-sim", N: 64, Cycles: 20, EpochLen: 20, Seed: 3}.WithDefaults()
	reg := obs.NewRegistry()
	if _, err := RunSimWith(sc, SimOptions{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"agg_scenario_cycle",
		"agg_scenario_alive",
		"agg_scenario_estimate_stddev",
		"agg_convergence_observed_rho",
		"agg_convergence_theory_rho",
		"agg_convergence_rho_ratio",
	} {
		if !strings.Contains(out, "\n"+name+" ") {
			t.Errorf("series %s missing from export", name)
		}
	}
	if !strings.Contains(out, "agg_scenario_cycle 20") {
		t.Errorf("final cycle gauge not 20:\n%s", out)
	}
	_ = theory.RhoPushPull
	if !strings.Contains(out, "agg_convergence_theory_rho 0.303") {
		t.Errorf("theory rho gauge wrong:\n%s", out)
	}
}

// TestLiveObsRegistryExports runs a short live fleet with a registry and
// trace ring attached and checks the agent counters, RTT histogram and
// trace all populate.
func TestLiveObsRegistryExports(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet test skipped in -short mode")
	}
	sc := Scenario{Name: "obs-live", N: 24, Cycles: 12, EpochLen: 6, Seed: 9}.WithDefaults()
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(512)
	res, err := RunLive(context.Background(), sc, LiveOptions{
		CycleLen: 20 * time.Millisecond, Obs: reg, Trace: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMessages() == 0 {
		t.Fatal("no exchanges attempted")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"agg_exchanges_initiated_total",
		"agg_exchanges_completed_total",
		"agg_exchange_rtt_seconds_count",
		"agg_scenario_cycle",
		"agg_convergence_theory_rho",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("series %s missing from export", name)
		}
	}
	if strings.Contains(out, "agg_exchanges_initiated_total 0\n") {
		t.Error("fleet initiated counter still zero after the run")
	}
	if ring.Total() == 0 {
		t.Error("trace ring recorded no exchange events")
	}
}
