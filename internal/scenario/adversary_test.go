package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"antientropy/internal/obs"
)

// TestAdvScheduleDeterministic pins the cross-executor contract: the
// Byzantine plan is a pure function of the scenario, so the supervisor,
// every UDP worker and both sim engines — each rebuilding the schedule
// independently — select the identical attacker set.
func TestAdvScheduleDeterministic(t *testing.T) {
	sc, err := ByName("inject-extreme")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 200
	a := newAdvSchedule(sc, sc.MaxSlots())
	b := newAdvSchedule(sc, sc.MaxSlots())
	if a == nil || b == nil {
		t.Fatal("attacked scenario produced a nil schedule")
	}
	if a.byzN != b.byzN || a.byzN != 10 { // 5% of 200
		t.Fatalf("byzN = %d/%d, want 10", a.byzN, b.byzN)
	}
	for slot := range a.byzOf {
		if a.byzOf[slot] != b.byzOf[slot] {
			t.Fatalf("slot %d: schedule disagrees (%d vs %d)", slot, a.byzOf[slot], b.byzOf[slot])
		}
	}
	honest := Scenario{Name: "h", N: 50, Cycles: 10, Seed: 1}.WithDefaults()
	if s := newAdvSchedule(honest, honest.MaxSlots()); s != nil {
		t.Fatal("honest scenario got a non-nil schedule — honest paths must stay untouched")
	}
}

// TestAttackedShardedDeterministicCSV extends the sharded determinism
// contract to attacked runs: same seed, same shard count, byte-identical
// CSV, at several shard counts.
func TestAttackedShardedDeterministicCSV(t *testing.T) {
	sc, err := ByName("inject-extreme")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 200
	sc.Cycles = 40
	for _, shards := range []int{1, 4} {
		render := func() []byte {
			res, err := RunSimWith(sc, SimOptions{Engine: EngineSharded, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if a, b := render(), render(); !bytes.Equal(a, b) {
			t.Fatalf("shards=%d: identical attacked runs produced different CSV", shards)
		}
	}
}

// TestHonestTwinZeroBiasWithoutAdversaries: a scenario with no
// adversaries is its own honest twin, so the bias report is identically
// zero — the baseline the attacked assertions lean on.
func TestHonestTwinZeroBiasWithoutAdversaries(t *testing.T) {
	sc, err := ByName("steady-churn")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 150
	sc.Cycles = 30
	twin, err := RunSimWithTwin(sc, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if twin.Bias.MeanAbsBias != 0 || twin.Bias.MaxAbsBias != 0 {
		t.Fatalf("honest scenario reported non-zero bias: %+v", twin.Bias)
	}
	if twin.Bias.Cycles != sc.Cycles+1 {
		t.Fatalf("bias covers %d cycles, want %d", twin.Bias.Cycles, sc.Cycles+1)
	}
}

// TestInjectExtremeBiasAgreesAcrossEngines runs the undefended attack on
// both engines: the induced bias is an attack property, not an engine
// artifact, so the two measurements must be close (execution differs,
// physics must not).
func TestInjectExtremeBiasAgreesAcrossEngines(t *testing.T) {
	sc, err := ByName("inject-extreme")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 300
	sc.Defense = Defense{}
	serial, err := RunSimWithTwin(sc, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunSimWithTwin(sc, SimOptions{Engine: EngineSharded, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sm, pm := serial.Bias.MeanAbsBias, sharded.Bias.MeanAbsBias
	if sm <= 0 || pm <= 0 {
		t.Fatalf("undefended attack induced no bias: serial %g, sharded %g", sm, pm)
	}
	if ratio := sm / pm; ratio < 0.5 || ratio > 2 {
		t.Fatalf("engines disagree on attack bias: serial %g vs sharded %g", sm, pm)
	}
}

// TestDefenseReducesBiasTenfold is the PR's acceptance gate, on both
// engines: with defenses off, inject-extreme at 5%% Byzantine shows
// measurable bias against the honest twin; with the canned defense
// (median-of-k) the mean |bias| drops at least 10x on the same seed.
func TestDefenseReducesBiasTenfold(t *testing.T) {
	sc, err := ByName("inject-extreme")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 300
	for _, opts := range []SimOptions{
		{},
		{Engine: EngineSharded, Shards: 4},
	} {
		bare := sc
		bare.Defense = Defense{}
		undefended, err := RunSimWithTwin(bare, opts)
		if err != nil {
			t.Fatal(err)
		}
		defended, err := RunSimWithTwin(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		u, d := undefended.Bias.MeanAbsBias, defended.Bias.MeanAbsBias
		// 5% of the population injecting 1e12 must leave a macroscopic
		// footprint in the honest estimates.
		if u < 1e9 {
			t.Fatalf("engine %q: undefended mean |bias| %g suspiciously small", opts.Engine, u)
		}
		if d <= 0 {
			t.Fatalf("engine %q: defended bias is exactly zero — twin plumbing broken?", opts.Engine)
		}
		if u/d < 10 {
			t.Fatalf("engine %q: defense reduced mean |bias| only %.1fx (undefended %g, defended %g), want >= 10x",
				opts.Engine, u/d, u, d)
		}
		// The defended run must actually converge back to the truth.
		if fb := defended.Bias.FinalAbsBias; fb > 100 {
			t.Fatalf("engine %q: defended final |bias| %g — the defense never recovered", opts.Engine, fb)
		}
	}
}

// TestSybilFloodJoinCap: the epoch-scoped join cap bounds how many
// identities the flood lands while the clamped mean bounds what each
// admitted sybil injects; without the defense the flood joins freely and
// swings the estimate.
func TestSybilFloodJoinCap(t *testing.T) {
	sc, err := ByName("sybil-flood")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 300
	bare := sc
	bare.Defense = Defense{}
	undefended, err := RunSimWithTwin(bare, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defended, err := RunSimWithTwin(sc, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The attack window (cycles 31-60, one epoch) attempts 600 joins;
	// uncapped they all land, capped at most JoinCap do.
	ua, da := undefended.Attacked.Final().Alive, defended.Attacked.Final().Alive
	if ua != sc.N+600 {
		t.Fatalf("undefended final alive = %d, want %d (every sybil admitted)", ua, sc.N+600)
	}
	if want := sc.N + sc.Defense.JoinCap; da != want {
		t.Fatalf("defended final alive = %d, want %d (join cap enforced)", da, want)
	}
	if u, d := undefended.Bias.MeanAbsBias, defended.Bias.MeanAbsBias; u/d < 10 {
		t.Fatalf("join cap + clamped mean reduced sybil bias only %.1fx (undefended %g, defended %g)",
			u/d, u, d)
	}
}

// TestLieEstimateBiasesWithoutMembershipChange: wire-level lying leaves
// the membership untouched (the attacker participates normally) but
// drags honest estimates toward the lie.
func TestLieEstimateBiasesWithoutMembershipChange(t *testing.T) {
	sc := Scenario{
		Name: "lie-unit", N: 200, Cycles: 60, Seed: 5,
		Adversaries: []Adversary{{Behavior: BehaviorLieEstimate, Fraction: 0.1, Value: 1e6}},
	}
	twin, err := RunSimWithTwin(sc, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := twin.Attacked.Final().Alive; got != sc.N {
		t.Fatalf("lying changed membership: final alive %d, want %d", got, sc.N)
	}
	if twin.Bias.MeanAbsBias < 1e4 {
		t.Fatalf("persistent lying induced mean |bias| %g — expected a strong pull toward 1e6",
			twin.Bias.MeanAbsBias)
	}
	if twin.Attacked.TotalMessages() == 0 {
		t.Fatal("no exchanges recorded")
	}
}

// TestReplayStaleInducesLagBias: replaying a two-epoch-old estimate
// under a value ramp biases honest estimates toward the past; the stale
// epoch tag it carries is exactly what §4.3 DropStale rejects, keeping
// the bias bounded.
func TestReplayStaleInducesLagBias(t *testing.T) {
	sc := Scenario{
		Name: "replay-unit", N: 200, Cycles: 90, Seed: 6,
		Adversaries: []Adversary{{Behavior: BehaviorReplayStale, Fraction: 0.1, Lag: 2}},
		Events:      []Event{{Kind: KindValueRamp, At: 1, Until: 90, Delta: 50}},
	}
	twin, err := RunSimWithTwin(sc, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if twin.Bias.MaxAbsBias == 0 {
		t.Fatal("replay attack induced no bias under a value ramp")
	}
	// The ramp moves truth by 50 over the run; a lag-2 replay must not
	// swing estimates by orders of magnitude more than the signal.
	if twin.Bias.MaxAbsBias > 500 {
		t.Fatalf("replay bias %g out of scale for a +50 ramp", twin.Bias.MaxAbsBias)
	}
}

// TestAdversaryObsExports: an attacked sim run with a registry attached
// exports the adversary telemetry family — hostile population, lie and
// rejection counters, join refusals and the live bias gauge.
func TestAdversaryObsExports(t *testing.T) {
	sc, err := ByName("inject-extreme")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 128
	sc.Cycles = 30
	// The clamping combiner counts every out-of-range peer sample it
	// bounds, so the rejection counter is observable (median-of-k
	// outvotes extremes without "rejecting" anything).
	sc.Defense = Defense{Combiner: "clamped-mean", ClampMin: -1e6, ClampMax: 1e6}
	reg := obs.NewRegistry()
	if _, err := RunSimWithTwin(sc, SimOptions{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"agg_adversary_nodes",
		"agg_adversary_lies_total",
		"agg_adversary_rejected_total",
		"agg_adversary_joins_refused_total",
		"agg_adversary_bias",
	} {
		if !strings.Contains(out, "\n"+name+" ") {
			t.Errorf("series %s missing from export", name)
		}
	}
	// 5% of 128 = 6 hostile slots.
	if !strings.Contains(out, "agg_adversary_nodes 6") {
		t.Errorf("hostile population gauge wrong:\n%s", out)
	}
	// median-of-k defense rejects/outvotes extreme samples over the run.
	if strings.Contains(out, "agg_adversary_rejected_total 0\n") {
		t.Error("defense rejected nothing during an inject-extreme run")
	}
}

// TestLiveLieEstimateTraceStitches is the live-fleet half of the
// acceptance: wire-level lying must not break exchange identity — the
// lied reply carries the untouched XID, so the shared trace ring still
// stitches both parties' events into completed spans, while the fleet's
// lie counter records the corruption.
func TestLiveLieEstimateTraceStitches(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet test skipped in -short mode")
	}
	sc := Scenario{
		Name: "live-lie", N: 24, Cycles: 12, EpochLen: 6, Seed: 9,
		Adversaries: []Adversary{{Behavior: BehaviorLieEstimate, Fraction: 0.2, Value: 1e6}},
	}.WithDefaults()
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(4096)
	res, err := RunLive(context.Background(), sc, LiveOptions{
		CycleLen: 20 * time.Millisecond, Obs: reg, Trace: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMessages() == 0 {
		t.Fatal("no exchanges attempted")
	}
	spans := obs.StitchSpans(ring.Events())
	completed := 0
	for _, sp := range spans {
		if sp.Outcome == "completed" {
			completed++
		}
	}
	if completed == 0 {
		t.Fatalf("no completed spans stitched from %d events — lying broke exchange identity",
			len(ring.Events()))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "agg_adversary_lies_total") {
		t.Fatal("lie counter missing from the live export")
	}
	if strings.Contains(out, "agg_adversary_lies_total 0\n") {
		t.Error("live Byzantine nodes reported no lies")
	}
	if !strings.Contains(out, "agg_adversary_nodes 5") { // round(0.2 * 24)
		t.Error("hostile population gauge missing or wrong in live export")
	}
}
