package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"antientropy/internal/agent"
	"antientropy/internal/obs"
)

// The UDP executor splits a scenario fleet across worker processes, each
// owning a contiguous-by-modulo slice of the node slots on real UDP
// sockets. The supervisor coordinates them over a line-delimited JSON
// control channel on the workers' stdin/stdout pipes:
//
//	supervisor → worker            worker → supervisor
//	--------------------           --------------------
//	init  (scenario, slot list)    ready   (slot → bound address)
//	start (anchor, bootstrap)      started
//	cycle (barrier + events)       ack     (slot → joiner address)
//	sample                         metrics (partial aggregates)
//	shutdown                       bye
//
// Every exchange is strictly request/response per worker, so the
// supervisor's cycle loop doubles as the barrier: no worker applies cycle
// c+1 events before every worker has acknowledged cycle c. A worker that
// hits an unrecoverable error replies with op "fatal" and exits; the
// supervisor then tears the whole fleet down.

// Control-channel ops.
const (
	udpOpInit     = "init"
	udpOpReady    = "ready"
	udpOpStart    = "start"
	udpOpStarted  = "started"
	udpOpCycle    = "cycle"
	udpOpAck      = "ack"
	udpOpSample   = "sample"
	udpOpMetrics  = "metrics"
	udpOpShutdown = "shutdown"
	udpOpBye      = "bye"
	udpOpFatal    = "fatal"
)

// Worker transport modes (udpMsg.Transport).
const (
	// udpTransportMux shares a small fixed socket set and one batched
	// reader pool across all slots of a worker (transport.UDPMux).
	udpTransportMux = "mux"
	// udpTransportEndpoint binds one socket and one reader goroutine per
	// slot — the pre-mux baseline, kept for A/B measurement.
	udpTransportEndpoint = "endpoint"
)

// udpJoin commands one slot to come up as a brand-new identity performing
// the §4.2 join against the given seed addresses. Group places the new
// endpoint into an active partition component (-1: none).
type udpJoin struct {
	Slot  int      `json:"slot"`
	Seeds []string `json:"seeds,omitempty"`
	Group int      `json:"group"`
	// Sybil marks an attacker join: the controlling adversary's index
	// plus one (0 = honest joiner). Sybil slot assignment is runtime
	// state only the supervisor knows, so it rides the join command;
	// the worker's own schedule covers the static Byzantine picks.
	Sybil int `json:"sybil,omitempty"`
}

// udpContacts hands one slot out-of-band contact addresses (the post-heal
// rendezvous refresh; see liveDriver.heal).
type udpContacts struct {
	Slot  int      `json:"slot"`
	Addrs []string `json:"addrs"`
}

// udpMsg is one line of the control channel. One flat struct covers every
// op; which fields are meaningful depends on Op.
type udpMsg struct {
	Op string `json:"op"`

	// init: the full scenario, this worker's index and slot assignment,
	// and the fleet-wide tuning the supervisor resolved.
	Scenario   *Scenario `json:"scenario,omitempty"`
	Worker     int       `json:"worker,omitempty"`
	Slots      []int     `json:"slots,omitempty"`
	CacheSize  int       `json:"cacheSize,omitempty"`
	CycleLenUS int64     `json:"cycleLenUs,omitempty"`
	QueueLen   int       `json:"queueLen,omitempty"`
	// TraceCap > 0 makes the worker keep a bounded exchange trace ring
	// of that capacity, dumped to its stderr at shutdown.
	TraceCap int `json:"traceCap,omitempty"`
	// Transport selects the worker's datagram layer: udpTransportMux
	// (default when blank) or udpTransportEndpoint.
	Transport string `json:"transport,omitempty"`

	// start: the shared schedule anchor and the founding address book.
	AnchorUnixNano int64    `json:"anchorUnixNano,omitempty"`
	Bootstrap      []string `json:"bootstrap,omitempty"`

	// cycle: the barrier tick plus this cycle's scripted interventions.
	// Loss is always present (the effective rate for the cycle); Groups
	// non-nil installs a partition, Heal clears it, Assign patches single
	// addresses in (joiners created while a partition is active).
	Cycle    int            `json:"cycle"`
	Loss     float64        `json:"loss"`
	Groups   map[string]int `json:"groups,omitempty"`
	Assign   map[string]int `json:"assign,omitempty"`
	Heal     bool           `json:"heal,omitempty"`
	Crash    []int          `json:"crash,omitempty"`
	Joins    []udpJoin      `json:"joins,omitempty"`
	Contacts []udpContacts  `json:"contacts,omitempty"`

	// ready / ack: slot → freshly bound endpoint address.
	Addrs map[int]string `json:"addrs,omitempty"`

	// metrics: this worker's partial aggregates for the sampled cycle.
	// Estimates travel as (n, Σx, Σx²) so the supervisor can merge the
	// per-worker moments exactly.
	Alive         int     `json:"alive,omitempty"`
	Participating int     `json:"participating,omitempty"`
	EstN          int     `json:"estN,omitempty"`
	EstSum        float64 `json:"estSum,omitempty"`
	EstSumSq      float64 `json:"estSumSq,omitempty"`
	Messages      int64   `json:"messages,omitempty"`
	QueueDrops    int64   `json:"queueDrops,omitempty"`
	FilterDrops   int64   `json:"filterDrops,omitempty"`
	// AgentTotals carries the worker's cumulative protocol counters
	// (live nodes plus crash-retired ones) and RTTHist its exchange
	// round-trip histogram snapshot, so the supervisor can export one
	// aggregated fleet on its /metrics endpoint.
	AgentTotals *agent.Metrics    `json:"agentTotals,omitempty"`
	RTTHist     *obs.HistSnapshot `json:"rttHist,omitempty"`
	// TransportQueueDepth is the worker mux's outbound-queue high
	// watermark and BatchHist its datagrams-per-syscall histogram
	// (absent in the per-socket transport mode).
	TransportQueueDepth int64             `json:"transportQueueDepth,omitempty"`
	BatchHist           *obs.HistSnapshot `json:"batchHist,omitempty"`
	// Trace is the worker's exchange-trace increment since its previous
	// report (metrics and bye replies): the supervisor merges the
	// batches of all workers into one fleet-wide ring, where events
	// sharing an exchange identifier stitch into cross-process spans.
	Trace []obs.TraceEvent `json:"trace,omitempty"`

	// fatal: the error that killed the sender.
	Err string `json:"err,omitempty"`
}

// udpConn frames udpMsg lines over a reader/writer pair. Writes are
// mutex-serialized; reads are single-consumer.
type udpConn struct {
	wmu sync.Mutex
	w   io.Writer
	sc  *bufio.Scanner
}

// udpMaxLine bounds one control line. The largest messages carry one
// address (~21 bytes) per node slot — a 10⁶-slot fleet stays under 32 MB.
const udpMaxLine = 32 << 20

func newUDPConn(r io.Reader, w io.Writer) *udpConn {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), udpMaxLine)
	return &udpConn{w: w, sc: sc}
}

// send writes one message as a JSON line.
func (c *udpConn) send(m udpMsg) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("scenario: encoding %s: %w", m.Op, err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("scenario: writing %s: %w", m.Op, err)
	}
	return nil
}

// recv reads the next message, skipping blank lines.
func (c *udpConn) recv() (udpMsg, error) {
	for c.sc.Scan() {
		line := c.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m udpMsg
		if err := json.Unmarshal(line, &m); err != nil {
			return udpMsg{}, fmt.Errorf("scenario: decoding control line: %w", err)
		}
		return m, nil
	}
	if err := c.sc.Err(); err != nil {
		return udpMsg{}, fmt.Errorf("scenario: reading control channel: %w", err)
	}
	return udpMsg{}, io.EOF
}
