package scenario

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"antientropy/internal/agent"
	"antientropy/internal/core"
	"antientropy/internal/obs"
	"antientropy/internal/transport"
)

// RunUDPWorker is the worker half of the UDP multi-process executor: it
// runs one fleet slice of live agent nodes on real UDP endpoints, driven
// by a supervisor (RunUDP) over the line-delimited JSON control channel
// on in/out (normally the process's stdin/stdout). It returns when the
// supervisor sends shutdown or closes the channel; a non-nil error means
// the worker died mid-run (after reporting a fatal message upstream).
//
// cmd/aggscen exposes it as the hidden -worker mode; embedders whose
// binary cannot be re-executed with that flag point UDPOptions.WorkerCmd
// at any program that calls this function.
func RunUDPWorker(in io.Reader, out io.Writer) error {
	w := &udpWorker{
		conn:  newUDPConn(in, out),
		nodes: make(map[int]*udpWorkerSlot),
	}
	defer w.stopAll()
	for {
		msg, err := w.conn.recv()
		if err != nil {
			if err == io.EOF {
				// Supervisor went away: wind the fleet slice down quietly.
				return nil
			}
			return err
		}
		reply, err := w.handle(msg)
		if err != nil {
			_ = w.conn.send(udpMsg{Op: udpOpFatal, Err: err.Error()})
			return err
		}
		if err := w.conn.send(reply); err != nil {
			return err
		}
		if reply.Op == udpOpBye {
			return nil
		}
	}
}

// nodeEndpoint is the transport attachment a worker slot runs on: either
// a dedicated UDP socket (*transport.UDPEndpoint, the legacy baseline) or
// a virtual endpoint of the worker's shared mux (*transport.MuxEndpoint).
type nodeEndpoint interface {
	transport.Endpoint
	QueueDrops() int64
	FilterDrops() int64
}

// udpWorkerSlot is one live node of this worker's fleet slice.
type udpWorkerSlot struct {
	node *agent.Node
	ep   nodeEndpoint
	addr string
}

// udpWorker executes control messages against its slice of the fleet.
type udpWorker struct {
	conn *udpConn

	sc        Scenario
	prog      *ValueProgram
	index     int
	cacheSize int
	queueLen  int
	cycleLen  time.Duration
	sched     core.Schedule
	transport string

	// cycleNow is the supervisor's cycle clock, advanced by every cycle
	// message; node Value suppliers read it so epoch restarts sample the
	// scripted signal at the current cycle.
	cycleNow atomic.Int64

	// adv is the worker's copy of the run's Byzantine plan, rebuilt from
	// the scenario in the init message — a pure function of the seed, so
	// it matches the supervisor's and the other executors' schedules.
	// Sybil slot assignment arrives on the join commands. advStale and
	// combiner mirror liveDriver's.
	adv      *advSchedule
	advStale []liveStaleState
	combiner core.Combiner

	// filter carries the supervisor's scripted drop rules; every endpoint
	// of this worker shares it.
	filter *transport.UDPFilter

	// mux is the worker's shared batched datagram layer: all slots of the
	// slice attach as virtual endpoints on a small fixed socket set (see
	// transport.UDPMux). Nil in the legacy per-socket transport mode,
	// where every slot binds its own UDP socket.
	mux *transport.UDPMux

	// rtt is the worker-wide exchange round-trip histogram every node of
	// this slice feeds; trace is the optional shared exchange trace ring
	// (nil unless the supervisor sent a TraceCap). traceCursor marks how
	// far the supervisor has drained the ring (see TraceRing.EventsSince).
	rtt         *obs.Histogram
	trace       *obs.TraceRing
	traceCursor uint64

	nodes map[int]*udpWorkerSlot

	// retired* preserve the counters of crashed nodes so the cumulative
	// per-worker metrics stay monotonic.
	retiredAgent       agent.Metrics
	retiredQueueDrops  int64
	retiredFilterDrops int64

	ctx      context.Context
	cancel   context.CancelFunc
	stopping sync.WaitGroup
	stopped  bool
}

// handle dispatches one control message and builds the reply.
func (w *udpWorker) handle(msg udpMsg) (udpMsg, error) {
	switch msg.Op {
	case udpOpInit:
		return w.handleInit(msg)
	case udpOpStart:
		return w.handleStart(msg)
	case udpOpCycle:
		return w.handleCycle(msg)
	case udpOpSample:
		return w.handleSample(msg)
	case udpOpShutdown:
		// Stop the fleet slice first, then drain the trace tail: the
		// bye reply carries every event recorded since the last sample,
		// so the supervisor's merged ring sees the run's final cycles.
		w.stopAll()
		bye := udpMsg{Op: udpOpBye}
		bye.Trace, w.traceCursor = w.trace.EventsSince(w.traceCursor)
		return bye, nil
	default:
		return udpMsg{}, fmt.Errorf("udp worker: unexpected op %q", msg.Op)
	}
}

// handleInit binds one UDP endpoint per assigned founding slot.
func (w *udpWorker) handleInit(msg udpMsg) (udpMsg, error) {
	if msg.Scenario == nil {
		return udpMsg{}, fmt.Errorf("udp worker: init without scenario")
	}
	w.sc = msg.Scenario.WithDefaults()
	if err := w.sc.Validate(); err != nil {
		return udpMsg{}, err
	}
	w.index = msg.Worker
	w.cacheSize = msg.CacheSize
	w.queueLen = msg.QueueLen
	w.cycleLen = time.Duration(msg.CycleLenUS) * time.Microsecond
	if w.cycleLen <= 0 {
		return udpMsg{}, fmt.Errorf("udp worker: non-positive cycle length")
	}
	w.prog = NewValueProgram(w.sc, w.sc.MaxSlots())
	w.adv = newAdvSchedule(w.sc, w.sc.MaxSlots())
	if w.adv != nil {
		w.advStale = make([]liveStaleState, w.sc.MaxSlots())
	}
	if c, err := w.sc.Defense.combiner(); err == nil {
		w.combiner = c // err pre-screened by Validate
	}
	w.rtt = obs.NewHistogram(obs.RTTBuckets)
	if msg.TraceCap > 0 {
		w.trace = obs.NewTraceRing(msg.TraceCap)
	}
	w.filter = transport.NewUDPFilter(int64(w.sc.Seed) + int64(w.index) + 2)
	// The baseline loss applies from the founding on, exactly as the
	// other executors do; loss bursts override it cycle by cycle.
	w.filter.SetLoss(w.sc.MessageLoss)
	w.ctx, w.cancel = context.WithCancel(context.Background())

	w.transport = msg.Transport
	if w.transport == "" {
		w.transport = udpTransportMux
	}
	if w.transport == udpTransportMux {
		mux, err := transport.NewUDPMux(transport.UDPMuxConfig{QueueLen: w.queueLen})
		if err != nil {
			return udpMsg{}, fmt.Errorf("udp worker %d: mux: %w", w.index, err)
		}
		mux.SetFilter(w.filter)
		w.mux = mux
	}

	addrs := make(map[int]string, len(msg.Slots))
	for _, slot := range msg.Slots {
		ep, err := w.newEndpoint()
		if err != nil {
			return udpMsg{}, fmt.Errorf("udp worker %d: slot %d: %w", w.index, slot, err)
		}
		w.nodes[slot] = &udpWorkerSlot{ep: ep, addr: ep.Addr()}
		addrs[slot] = ep.Addr()
	}
	return udpMsg{Op: udpOpReady, Addrs: addrs}, nil
}

// newEndpoint attaches one slot to the network in the worker's transport
// mode: a virtual endpoint on the shared mux, or a dedicated socket.
func (w *udpWorker) newEndpoint() (nodeEndpoint, error) {
	if w.mux != nil {
		return w.mux.Endpoint()
	}
	ep, err := transport.ListenUDP("127.0.0.1:0", w.queueLen)
	if err != nil {
		return nil, err
	}
	ep.SetFilter(w.filter)
	return ep, nil
}

// sortedSlots returns the live slot indices in ascending order, so every
// iteration-order-dependent path (metric merge, node start) is
// deterministic and -compare runs are byte-stable.
func (w *udpWorker) sortedSlots() []int {
	slots := make([]int, 0, len(w.nodes))
	for slot := range w.nodes {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	return slots
}

// handleStart builds and starts the founding nodes on the shared
// schedule, NEWSCAST-bootstrapped from the full founding address book.
func (w *udpWorker) handleStart(msg udpMsg) (udpMsg, error) {
	w.sched = core.Schedule{
		Start:    time.Unix(0, msg.AnchorUnixNano),
		Delta:    time.Duration(w.sc.EpochLen) * w.cycleLen,
		CycleLen: w.cycleLen,
		Gamma:    w.sc.EpochLen,
	}
	slots := w.sortedSlots()
	for _, slot := range slots {
		s := w.nodes[slot]
		node, err := w.newNode(slot, s.ep, nil, bootstrapSubset(msg.Bootstrap, w.sc.Seed, slot, w.cacheSize))
		if err != nil {
			return udpMsg{}, err
		}
		s.node = node
	}
	for _, slot := range slots {
		if err := w.nodes[slot].node.Start(w.ctx); err != nil {
			return udpMsg{}, fmt.Errorf("udp worker %d: starting node %d: %w", w.index, slot, err)
		}
	}
	return udpMsg{Op: udpOpStarted}, nil
}

// bootstrapSubset deterministically samples one node's founding contacts
// from the fleet address list. Seeding every node with the whole fleet is
// quadratic in fleet size — each node interns every address only to keep
// cache-size descriptors — and at 10⁴ nodes that alone blows the start
// barrier. A random subset a few times the cache size produces the same
// random out-degree-c overlay the paper assumes (§4). Small fleets pass
// through unchanged, so CI-scale divergence comparisons are unaffected.
func bootstrapSubset(all []string, seed uint64, slot, cacheSize int) []string {
	want := 4 * cacheSize
	if len(all) <= want+1 {
		return all
	}
	rng := rand.New(rand.NewPCG(seed, uint64(slot)*0x9e3779b97f4a7c15+0x6c62272e07bb0142))
	out := make([]string, 0, want)
	seen := make(map[int]struct{}, want)
	for len(out) < want {
		i := rng.IntN(len(all))
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, all[i])
	}
	return out
}

// newNode builds (but does not start) the agent for a slot, mirroring the
// live-mem executor's construction so the two fleets are comparable.
func (w *udpWorker) newNode(slot int, ep transport.Endpoint, seeds, bootstrap []string) (*agent.Node, error) {
	var hook func(uint64, float64) (float64, uint64, bool)
	if w.adv != nil {
		hook = w.adv.wireHook(slot, &w.advStale[slot], &w.cycleNow)
	}
	node, err := agent.New(agent.Config{
		Endpoint:     ep,
		Schedule:     w.sched,
		Function:     core.Average,
		Value:        liveValueSupplier(w.adv, w.prog, slot, &w.cycleNow),
		CacheSize:    w.cacheSize,
		Seeds:        seeds,
		Bootstrap:    bootstrap,
		Seed:         w.sc.Seed + uint64(slot)*0x9e3779b97f4a7c15 + 1,
		Logger:       slog.New(slog.DiscardHandler),
		RTT:          w.rtt,
		Trace:        w.trace,
		MaxViewBytes: w.sc.ViewCapBytes,
		Adversary:    hook,
		Combiner:     w.combiner,
		CombinerK:    w.sc.Defense.Samples,
	})
	if err != nil {
		return nil, fmt.Errorf("udp worker %d: building node %d: %w", w.index, slot, err)
	}
	if w.adv != nil {
		if lag := w.adv.replayLag(slot); lag > 0 {
			replayWatch(node, &w.advStale[slot], lag, &w.stopping)
		}
	}
	return node, nil
}

// handleCycle applies one cycle's scripted interventions to this slice.
func (w *udpWorker) handleCycle(msg udpMsg) (udpMsg, error) {
	w.cycleNow.Store(int64(msg.Cycle))
	for addr, g := range msg.Assign {
		w.filter.AssignGroup(addr, g)
	}
	if msg.Heal {
		w.filter.HealGroups()
	}
	if msg.Groups != nil {
		w.filter.PartitionGroups(msg.Groups)
	}
	w.filter.SetLoss(msg.Loss)
	for _, slot := range msg.Crash {
		w.crash(slot)
	}
	var addrs map[int]string
	for _, j := range msg.Joins {
		addr, err := w.join(j)
		if err != nil {
			return udpMsg{}, err
		}
		if addrs == nil {
			addrs = make(map[int]string, len(msg.Joins))
		}
		addrs[j.Slot] = addr
	}
	for _, c := range msg.Contacts {
		if s, ok := w.nodes[c.Slot]; ok {
			s.node.AddContacts(c.Addrs)
		}
	}
	return udpMsg{Op: udpOpAck, Cycle: msg.Cycle, Addrs: addrs}, nil
}

// crash stops a node ungracefully: its socket closes mid-protocol and
// peers time out, exactly as a process crash looks from the network. The
// stop completes in the background so one barrier tick can crash many
// nodes without stalling the fleet clock.
func (w *udpWorker) crash(slot int) {
	s, ok := w.nodes[slot]
	if !ok {
		return
	}
	delete(w.nodes, slot)
	w.retiredAgent.Accumulate(s.node.Metrics())
	w.retiredQueueDrops += s.ep.QueueDrops()
	w.retiredFilterDrops += s.ep.FilterDrops()
	node := s.node
	w.stopping.Add(1)
	go func() {
		defer w.stopping.Done()
		_ = node.Stop()
	}()
}

// join brings a slot up as a brand-new identity performing the §4.2 join:
// fresh endpoint (new port), seed contacts, participation from the next
// epoch on. A positive group places it into the active partition.
func (w *udpWorker) join(j udpJoin) (string, error) {
	ep, err := w.newEndpoint()
	if err != nil {
		return "", fmt.Errorf("udp worker %d: joiner %d: %w", w.index, j.Slot, err)
	}
	if j.Group >= 0 {
		w.filter.AssignGroup(ep.Addr(), j.Group)
	}
	if j.Sybil > 0 && w.adv != nil {
		// Mark before the node is built so its value supplier reports the
		// sybil value from the first epoch restart on.
		w.adv.markSybil(j.Slot, j.Sybil-1)
	}
	node, err := w.newNode(j.Slot, ep, j.Seeds, nil)
	if err != nil {
		_ = ep.Close()
		return "", err
	}
	if err := node.Start(w.ctx); err != nil {
		return "", fmt.Errorf("udp worker %d: starting joiner %d: %w", w.index, j.Slot, err)
	}
	w.nodes[j.Slot] = &udpWorkerSlot{node: node, ep: ep, addr: ep.Addr()}
	return ep.Addr(), nil
}

// handleSample reports this slice's partial metric aggregates. Estimates
// travel as (n, Σx, Σx²) for exact cross-worker moment merging; the full
// protocol-counter totals and the RTT histogram snapshot ride along so
// the supervisor's /metrics endpoint exports the whole fleet.
func (w *udpWorker) handleSample(msg udpMsg) (udpMsg, error) {
	reply := udpMsg{
		Op:          udpOpMetrics,
		Cycle:       msg.Cycle,
		Alive:       len(w.nodes),
		QueueDrops:  w.retiredQueueDrops,
		FilterDrops: w.retiredFilterDrops,
	}
	totals := w.retiredAgent
	for _, slot := range w.sortedSlots() {
		s := w.nodes[slot]
		totals.Accumulate(s.node.Metrics())
		reply.QueueDrops += s.ep.QueueDrops()
		reply.FilterDrops += s.ep.FilterDrops()
		if !s.node.Participating() {
			continue
		}
		reply.Participating++
		// Under an adversary the estimate moments cover the honest
		// population only (matching the other executors); hostile nodes
		// still count as alive and participating.
		if w.adv != nil && w.adv.hostile(slot) {
			continue
		}
		if v, ok := s.node.Estimate(); ok {
			reply.EstN++
			reply.EstSum += v
			reply.EstSumSq += v * v
		}
	}
	reply.Messages = totals.ExchangesInitiated
	reply.AgentTotals = &totals
	rttSnap := w.rtt.Snapshot()
	reply.RTTHist = &rttSnap
	if w.mux != nil {
		reply.TransportQueueDepth = w.mux.QueueDepthHighWatermark()
		batch := w.mux.BatchSizes()
		reply.BatchHist = &batch
	}
	reply.Trace, w.traceCursor = w.trace.EventsSince(w.traceCursor)
	return reply, nil
}

// stopAll terminates the fleet slice and waits for background stops.
func (w *udpWorker) stopAll() {
	if w.stopped {
		return
	}
	w.stopped = true
	if w.cancel != nil {
		w.cancel()
	}
	for slot, s := range w.nodes {
		delete(w.nodes, slot)
		if s.node != nil {
			_ = s.node.Stop()
		} else {
			_ = s.ep.Close()
		}
	}
	if w.mux != nil {
		_ = w.mux.Close()
	}
	w.stopping.Wait()
}
