package scenario

import "antientropy/internal/stats"

// This file holds the script-state machinery the executors share. The
// three drivers (sim, live-mem, udp) differ only in how an intervention
// is *performed* — engine hook, direct node call, or control-channel
// command — while the bookkeeping of who is alive where, which slot a
// join takes, how a partition slices the fleet and who bridges it after
// the heal must be identical, or the executors' metric streams stop
// being comparable.

// effectiveLoss resolves the message-loss rate for a cycle: the baseline
// unless a loss burst is active (the latest active event wins). Every
// executor applies this same rule.
func (s Scenario) effectiveLoss(cycle int) float64 {
	loss := s.MessageLoss
	for _, ev := range s.Events {
		if ev.Kind != KindLoss {
			continue
		}
		if from, to := ev.window(s.Cycles); cycle >= from && cycle <= to {
			loss = ev.Rate
		}
	}
	return loss
}

// partitionComponents assigns every slot to a partition component by the
// event's relative weights. Assigning all slots — not just the live
// ones — puts nodes that join mid-partition into a component too,
// exactly as a joiner lands on one side of a real split.
func partitionComponents(rng *stats.RNG, slots int, weights []float64) []int {
	var total float64
	for _, w := range weights {
		total += w
	}
	perm := make([]int, slots)
	rng.Perm(perm)
	groupOf := make([]int, slots)
	start := 0
	acc := 0.0
	for g, w := range weights {
		acc += w
		end := int(acc / total * float64(slots))
		if g == len(weights)-1 {
			end = slots
		}
		for _, slot := range perm[start:end] {
			groupOf[slot] = g
		}
		start = end
	}
	return groupOf
}

// partitionState tracks the active scripted partition.
type partitionState struct {
	groupOf []int
	on      bool
	until   int
}

// activate installs a component assignment (with the event's auto-heal
// bound, 0 = until an explicit heal).
func (p *partitionState) activate(groupOf []int, until int) {
	p.groupOf, p.on, p.until = groupOf, true, until
}

// expired reports whether the auto-heal window has passed.
func (p *partitionState) expired(cycle int) bool {
	return p.on && p.until > 0 && cycle > p.until
}

// clear ends the partition, reporting whether one was active.
func (p *partitionState) clear() bool {
	on := p.on
	p.on, p.until = false, 0
	return on
}

// slotAllocator hands out node slots for joins — vacant slots first,
// then crashed ones, newest first — and tracks the crash stack restart
// events pop from. All three executors allocate slots through it.
type slotAllocator struct {
	// nextJoin is the first never-used slot; capacity bounds it.
	nextJoin int
	capacity int
	// crashed collects slots available for restart events.
	crashed []int
}

func newSlotAllocator(capacity, initial int) slotAllocator {
	return slotAllocator{nextJoin: initial, capacity: capacity}
}

// pushCrashed records a slot as dead and available for restarts.
func (a *slotAllocator) pushCrashed(slot int) { a.crashed = append(a.crashed, slot) }

// popCrashed hands back the most recently crashed slot, for restarts and
// for churn (which reuses the slot it just freed).
func (a *slotAllocator) popCrashed() (int, bool) {
	if len(a.crashed) == 0 {
		return 0, false
	}
	slot := a.crashed[len(a.crashed)-1]
	a.crashed = a.crashed[:len(a.crashed)-1]
	return slot, true
}

// takeJoinSlot hands out a vacant slot, falling back to crashed ones.
func (a *slotAllocator) takeJoinSlot() (int, bool) {
	if a.nextJoin < a.capacity {
		slot := a.nextJoin
		a.nextJoin++
		return slot, true
	}
	return a.popCrashed()
}

// fleetRoster tracks which slot is alive at which transport address,
// plus the slot allocator — the script bookkeeping both real-fleet
// executors (live-mem and udp) share.
type fleetRoster struct {
	addr  []string
	alive []bool
	slotAllocator
}

// newFleetRoster allocates slots node slots, the first initial of which
// are the founding fleet.
func newFleetRoster(slots, initial int) *fleetRoster {
	return &fleetRoster{
		addr:          make([]string, slots),
		alive:         make([]bool, slots),
		slotAllocator: newSlotAllocator(slots, initial),
	}
}

func (r *fleetRoster) aliveCount() int {
	count := 0
	for _, a := range r.alive {
		if a {
			count++
		}
	}
	return count
}

func (r *fleetRoster) liveSlots() []int {
	live := make([]int, 0, len(r.alive))
	for i, a := range r.alive {
		if a {
			live = append(live, i)
		}
	}
	return live
}

func (r *fleetRoster) randomAlive(rng *stats.RNG) int {
	live := r.liveSlots()
	return live[rng.Intn(len(live))]
}

// seedAddrs samples up to n live contact addresses. Slots whose address
// is not known yet (a join still in flight on a worker) are skipped.
func (r *fleetRoster) seedAddrs(rng *stats.RNG, n int) []string {
	live := make([]int, 0, len(r.alive))
	for i, a := range r.alive {
		if a && r.addr[i] != "" {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return nil
	}
	seeds := make([]string, 0, n)
	for k := 0; k < n; k++ {
		seeds = append(seeds, r.addr[live[rng.Intn(len(live))]])
	}
	return seeds
}

// markCrashed records a slot's death (caller performs the actual stop).
func (r *fleetRoster) markCrashed(slot int) {
	r.alive[slot] = false
	r.pushCrashed(slot)
}

// slotContacts hands one slot fresh out-of-band contact addresses.
type slotContacts struct {
	slot  int
	addrs []string
}

// bridgeContacts picks the post-heal rendezvous refresh: a partition
// longer than the cache lifetime ages every cross-component descriptor
// out of the NEWSCAST views, so gossip alone can never remerge the
// overlay. Real deployments re-learn peers out-of-band (seed lists,
// DNS); model that by handing a few bridge slots per component fresh
// contacts from the other components — epidemic gossip spreads the
// bridges from there.
func bridgeContacts(rng *stats.RNG, r *fleetRoster, groupOf []int) []slotContacts {
	byGroup := make(map[int][]int)
	groups := 0
	for _, slot := range r.liveSlots() {
		if r.addr[slot] == "" {
			continue
		}
		g := groupOf[slot]
		byGroup[g] = append(byGroup[g], slot)
		if g+1 > groups {
			groups = g + 1
		}
	}
	const bridgesPerGroup, contactsPerBridge = 4, 3
	var out []slotContacts
	// Iterate components in id order: ranging over the map directly
	// would consume the script RNG in Go's randomized map order, breaking
	// repeat-run determinism of the picks.
	for g := 0; g < groups; g++ {
		members := byGroup[g]
		if len(members) == 0 {
			continue
		}
		var others []int
		for og := 0; og < groups; og++ {
			if og != g {
				others = append(others, byGroup[og]...)
			}
		}
		if len(others) == 0 {
			continue
		}
		for b := 0; b < bridgesPerGroup && b < len(members); b++ {
			bridge := members[rng.Intn(len(members))]
			contacts := make([]string, 0, contactsPerBridge)
			for c := 0; c < contactsPerBridge; c++ {
				contacts = append(contacts, r.addr[others[rng.Intn(len(others))]])
			}
			out = append(out, slotContacts{slot: bridge, addrs: contacts})
		}
	}
	return out
}
