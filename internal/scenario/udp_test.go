package scenario

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"antientropy/internal/obs"
)

// udpWorkerEnv gates the re-exec helper: the supervisor tests relaunch
// this test binary with it set, turning the process into a UDP worker.
const udpWorkerEnv = "ANTIENTROPY_UDP_WORKER"

// TestUDPWorkerHelper is not a test: it is the worker process of the
// two-process executor tests, entered only when the supervisor re-execs
// the test binary with udpWorkerEnv set.
func TestUDPWorkerHelper(t *testing.T) {
	if os.Getenv(udpWorkerEnv) != "1" {
		t.Skip("helper process for the UDP executor tests")
	}
	if err := RunUDPWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "udp worker helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// udpTestOptions relaunches this test binary as the worker processes.
func udpTestOptions(workers int) UDPOptions {
	return UDPOptions{
		Workers:   workers,
		CycleLen:  25 * time.Millisecond,
		WorkerCmd: []string{os.Args[0], "-test.run=^TestUDPWorkerHelper$"},
		WorkerEnv: []string{udpWorkerEnv + "=1"},
	}
}

// TestUDPWorkerProtocolHandshake drives one worker through the whole
// control conversation in-process (pipes instead of a fork), pinning the
// protocol: init/ready with one endpoint per slot, start/started,
// cycle/ack barriers, sample/metrics aggregates and shutdown/bye.
func TestUDPWorkerProtocolHandshake(t *testing.T) {
	supRead, workerWrite := io.Pipe()
	workerRead, supWrite := io.Pipe()
	workerDone := make(chan error, 1)
	go func() { workerDone <- RunUDPWorker(workerRead, workerWrite) }()
	conn := newUDPConn(supRead, supWrite)

	sc := Scenario{Name: "proto", N: 4, Cycles: 4, EpochLen: 2, Seed: 3}.WithDefaults()
	send := func(m udpMsg) udpMsg {
		t.Helper()
		if err := conn.send(m); err != nil {
			t.Fatalf("send %s: %v", m.Op, err)
		}
		reply, err := conn.recv()
		if err != nil {
			t.Fatalf("reply to %s: %v", m.Op, err)
		}
		if reply.Op == udpOpFatal {
			t.Fatalf("worker failed on %s: %s", m.Op, reply.Err)
		}
		return reply
	}

	ready := send(udpMsg{
		Op: udpOpInit, Scenario: &sc, Worker: 0,
		Slots: []int{0, 1, 2, 3}, CacheSize: 8, CycleLenUS: 20000, QueueLen: 64,
	})
	if ready.Op != udpOpReady || len(ready.Addrs) != 4 {
		t.Fatalf("ready = %+v, want 4 bound addresses", ready)
	}
	bootstrap := make([]string, 0, 4)
	for slot := 0; slot < 4; slot++ {
		addr, ok := ready.Addrs[slot]
		if !ok || addr == "" {
			t.Fatalf("slot %d missing from ready addrs %v", slot, ready.Addrs)
		}
		bootstrap = append(bootstrap, addr)
	}

	started := send(udpMsg{Op: udpOpStart, AnchorUnixNano: time.Now().UnixNano(), Bootstrap: bootstrap})
	if started.Op != udpOpStarted {
		t.Fatalf("started = %+v", started)
	}

	ack := send(udpMsg{Op: udpOpCycle, Cycle: 1, Loss: 0})
	if ack.Op != udpOpAck || ack.Cycle != 1 {
		t.Fatalf("ack = %+v", ack)
	}

	metrics := send(udpMsg{Op: udpOpSample, Cycle: 1})
	if metrics.Op != udpOpMetrics || metrics.Alive != 4 {
		t.Fatalf("metrics = %+v, want 4 alive", metrics)
	}
	if metrics.Participating != 4 || metrics.EstN != 4 {
		t.Fatalf("metrics = %+v, want 4 participating founders with estimates", metrics)
	}

	// Crash one node, join a fresh identity on a new slot: the ack must
	// carry the joiner's freshly bound address.
	ack = send(udpMsg{
		Op: udpOpCycle, Cycle: 2,
		Crash: []int{1},
		Joins: []udpJoin{{Slot: 4, Seeds: bootstrap[:2], Group: -1}},
	})
	if len(ack.Addrs) != 1 || ack.Addrs[4] == "" {
		t.Fatalf("ack after join = %+v, want the joiner address for slot 4", ack)
	}
	metrics = send(udpMsg{Op: udpOpSample, Cycle: 2})
	if metrics.Alive != 4 {
		t.Fatalf("alive after crash+join = %d, want 4", metrics.Alive)
	}

	bye := send(udpMsg{Op: udpOpShutdown})
	if bye.Op != udpOpBye {
		t.Fatalf("bye = %+v", bye)
	}
	supWrite.Close()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after shutdown")
	}
}

// TestUDPSpawnFailure pins the error path when a worker binary cannot be
// launched: RunUDP must surface the spawn error (not panic in teardown
// on a half-initialized worker table).
func TestUDPSpawnFailure(t *testing.T) {
	sc := Scenario{Name: "udp-spawn-fail", N: 4, Cycles: 2, EpochLen: 2, Seed: 1}.WithDefaults()
	opts := udpTestOptions(2)
	opts.WorkerCmd = []string{"/nonexistent/aggscen-worker-binary"}
	if _, err := RunUDP(context.Background(), sc, opts); err == nil {
		t.Fatal("RunUDP with an unlaunchable worker binary returned nil error")
	}
}

// TestUDPExecutorPartitionHeal runs a miniature partition-and-heal
// scenario across real worker processes on UDP loopback. Like the
// live-mem equivalent the run is wall-clock driven, so assertions are
// deliberately loose: the point is that a multi-process fleet on real
// sockets survives a scripted partition and re-converges after the heal.
func TestUDPExecutorPartitionHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process UDP fleet test skipped in -short mode")
	}
	sc := Scenario{
		Name: "udp-partition-heal", N: 24, Cycles: 24, EpochLen: 8, Seed: 9,
		Events: []Event{
			{Kind: KindPartition, At: 3, Groups: []float64{1, 1}},
			{Kind: KindHeal, At: 10},
		},
	}.WithDefaults()
	res, err := RunUDP(context.Background(), sc, udpTestOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCycle) != sc.Cycles+1 {
		t.Fatalf("got %d metric rows, want %d", len(res.PerCycle), sc.Cycles+1)
	}
	if res.Executor != "udp" {
		t.Fatalf("executor = %q, want udp", res.Executor)
	}
	f := res.Final()
	if f.Alive != sc.N {
		t.Fatalf("final alive = %d, want %d", f.Alive, sc.N)
	}
	if f.RelError > 0.05 {
		t.Fatalf("final rel error %g: UDP fleet did not re-converge after the heal", f.RelError)
	}
	if res.TotalMessages() == 0 {
		t.Fatal("no exchange attempts recorded")
	}
}

// TestUDPExecutorChurnJoinCrash exercises the remaining scripted event
// kinds across worker processes: churn, a join wave, a crash and a loss
// burst, checking the supervisor's fleet bookkeeping against the
// workers' reports.
func TestUDPExecutorChurnJoinCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process UDP fleet test skipped in -short mode")
	}
	sc := Scenario{
		Name: "udp-mixed", N: 20, Cycles: 20, EpochLen: 10, Seed: 6,
		Events: []Event{
			{Kind: KindChurn, At: 3, Until: 6, Count: 1},
			{Kind: KindJoin, At: 5, Count: 4},
			{Kind: KindCrash, At: 9, Count: 3},
			{Kind: KindLoss, At: 12, Until: 15, Rate: 0.2},
		},
	}.WithDefaults()
	res, err := RunUDP(context.Background(), sc, udpTestOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerCycle[6].Alive; got != 24 {
		t.Fatalf("alive after the join wave = %d, want 24", got)
	}
	if got := res.PerCycle[10].Alive; got != 21 {
		t.Fatalf("alive after the crash = %d, want 21", got)
	}
	// After the loss burst ends, a clean epoch (cycles 11-20 restarted at
	// 11) restores a close estimate.
	if f := res.Final(); f.RelError > 0.1 {
		t.Fatalf("final rel error %g after churn/join/crash/loss", f.RelError)
	}
}

// TestUDPExecutorLieEstimateTraceStitches is the multi-process half of
// the wire-lying acceptance: Byzantine workers corrupt their replies at
// the wire layer without touching the exchange ID, so the supervisor's
// merged fleet trace still stitches cross-process spans to completion,
// and the merged worker metrics surface the lie count.
func TestUDPExecutorLieEstimateTraceStitches(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process UDP fleet test skipped in -short mode")
	}
	sc := Scenario{
		Name: "udp-lie", N: 20, Cycles: 16, EpochLen: 8, Seed: 7,
		Adversaries: []Adversary{{Behavior: BehaviorLieEstimate, Fraction: 0.2, Value: 1e6}},
	}.WithDefaults()
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(8192)
	opts := udpTestOptions(2)
	opts.Obs = reg
	opts.Trace = ring
	res, err := RunUDP(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final().Alive; got != sc.N {
		t.Fatalf("final alive = %d, want %d (lying must not change membership)", got, sc.N)
	}
	spans := obs.StitchSpans(ring.Events())
	completed := 0
	for _, sp := range spans {
		if sp.Outcome == "completed" {
			completed++
		}
	}
	if completed == 0 {
		t.Fatalf("no completed spans stitched from %d merged events — lying broke exchange identity",
			len(ring.Events()))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "agg_adversary_lies_total") {
		t.Fatal("lie counter missing from the supervisor export")
	}
	if strings.Contains(out, "agg_adversary_lies_total 0\n") {
		t.Error("Byzantine workers reported no lies")
	}
	if !strings.Contains(out, "agg_adversary_nodes 4") { // round(0.2 * 20)
		t.Error("hostile population gauge missing or wrong in supervisor export")
	}
}
