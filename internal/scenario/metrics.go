package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// CycleMetrics is one cycle's observation of a scenario run. Both
// executors emit the same shape, so their CSV/JSON streams line up
// column-for-column.
type CycleMetrics struct {
	// Cycle index: 0 is the initialized state, 1..Cycles follow each
	// completed cycle.
	Cycle int `json:"cycle"`
	// Epoch the cycle belongs to.
	Epoch int `json:"epoch"`
	// Alive is the number of live nodes; Participating counts those
	// taking part in the current epoch.
	Alive         int `json:"alive"`
	Participating int `json:"participating"`
	// TrueMean is the instantaneous mean of the live nodes' local values —
	// the signal the protocol is chasing.
	TrueMean float64 `json:"trueMean"`
	// MeanEstimate and EstimateStdDev summarize the participants'
	// estimates.
	MeanEstimate   float64 `json:"meanEstimate"`
	EstimateStdDev float64 `json:"estimateStdDev"`
	// RelError is |MeanEstimate − TrueMean| normalized by the true mean's
	// magnitude.
	RelError float64 `json:"relError"`
	// Messages counts exchange attempts during this cycle.
	Messages int64 `json:"messages"`
}

// relError computes the normalized estimate error.
func relError(estimate, truth float64) float64 {
	scale := math.Abs(truth)
	if scale < 1e-12 {
		scale = 1
	}
	return math.Abs(estimate-truth) / scale
}

// RunResult is one executed scenario: metadata plus one CycleMetrics per
// observed cycle (Cycles+1 rows including cycle 0).
type RunResult struct {
	// Scenario name and the executor that ran it ("sim" or "live").
	Scenario string `json:"scenario"`
	Executor string `json:"executor"`
	// N is the initial network size; Slots the total capacity incl. joins.
	N     int `json:"n"`
	Slots int `json:"slots"`
	// Seed the run used.
	Seed uint64 `json:"seed"`
	// PerCycle are the per-cycle observations.
	PerCycle []CycleMetrics `json:"perCycle"`
}

// Final returns the last observation.
func (r *RunResult) Final() CycleMetrics {
	if len(r.PerCycle) == 0 {
		return CycleMetrics{}
	}
	return r.PerCycle[len(r.PerCycle)-1]
}

// TotalMessages sums the exchange attempts over the whole run.
func (r *RunResult) TotalMessages() int64 {
	var total int64
	for _, c := range r.PerCycle {
		total += c.Messages
	}
	return total
}

// MinAlive returns the smallest live-node count observed.
func (r *RunResult) MinAlive() int {
	min := math.MaxInt
	for _, c := range r.PerCycle {
		if c.Alive < min {
			min = c.Alive
		}
	}
	if min == math.MaxInt {
		return 0
	}
	return min
}

// CSVHeader is the column row of WriteCSV.
const CSVHeader = "scenario,executor,cycle,epoch,alive,participating,true_mean,mean_estimate,estimate_stddev,rel_error,messages"

// WriteCSV emits the per-cycle metrics as CSV, header included.
func (r *RunResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	return r.WriteCSVRows(w)
}

// WriteCSVRows emits the data rows only, for concatenating several runs
// under one header.
func (r *RunResult) WriteCSVRows(w io.Writer) error {
	for _, c := range r.PerCycle {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%g,%g,%g,%g,%d\n",
			r.Scenario, r.Executor, c.Cycle, c.Epoch, c.Alive, c.Participating,
			c.TrueMean, c.MeanEstimate, c.EstimateStdDev, c.RelError, c.Messages); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the whole result as indented JSON.
func (r *RunResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Divergence summarizes how two executions of the same scenario differ,
// cycle by cycle: the executor-comparison harness runs a scenario on the
// simulator and on the live fleet (or on the two sim engines) and
// reports how far the estimate streams drift apart. Both runs share the
// scripted value signal, so the divergence isolates executor effects —
// wall-clock jitter, transport loss realization, exchange ordering.
type Divergence struct {
	// ScenarioName and the two executors compared.
	ScenarioName string `json:"scenario"`
	ExecutorA    string `json:"executorA"`
	ExecutorB    string `json:"executorB"`
	// Cycles is the number of per-cycle rows compared (the shorter run
	// bounds it).
	Cycles int `json:"cycles"`
	// MeanAbsEstimate and MaxAbsEstimate aggregate |meanEstimateA −
	// meanEstimateB| over the compared cycles.
	MeanAbsEstimate float64 `json:"meanAbsEstimate"`
	MaxAbsEstimate  float64 `json:"maxAbsEstimate"`
	// MaxAbsEstimateCycle is the cycle at which the estimate gap peaked.
	MaxAbsEstimateCycle int `json:"maxAbsEstimateCycle"`
	// MeanAbsRelError aggregates |relErrorA − relErrorB|.
	MeanAbsRelError float64 `json:"meanAbsRelError"`
	// FinalAbsEstimate and FinalAbsRelError compare the last common cycle.
	FinalAbsEstimate float64 `json:"finalAbsEstimate"`
	FinalAbsRelError float64 `json:"finalAbsRelError"`
}

// Diverge computes the per-cycle divergence of two runs of the same
// scenario. The runs may come from different executors or engines; they
// are aligned by cycle index.
func Diverge(a, b *RunResult) Divergence {
	d := Divergence{ScenarioName: a.Scenario, ExecutorA: a.Executor, ExecutorB: b.Executor}
	n := len(a.PerCycle)
	if len(b.PerCycle) < n {
		n = len(b.PerCycle)
	}
	d.Cycles = n
	if n == 0 {
		return d
	}
	var sumEst, sumErr float64
	for c := 0; c < n; c++ {
		est := math.Abs(a.PerCycle[c].MeanEstimate - b.PerCycle[c].MeanEstimate)
		sumEst += est
		sumErr += math.Abs(a.PerCycle[c].RelError - b.PerCycle[c].RelError)
		if est > d.MaxAbsEstimate {
			d.MaxAbsEstimate = est
			d.MaxAbsEstimateCycle = a.PerCycle[c].Cycle
		}
	}
	d.MeanAbsEstimate = sumEst / float64(n)
	d.MeanAbsRelError = sumErr / float64(n)
	last := n - 1
	d.FinalAbsEstimate = math.Abs(a.PerCycle[last].MeanEstimate - b.PerCycle[last].MeanEstimate)
	d.FinalAbsRelError = math.Abs(a.PerCycle[last].RelError - b.PerCycle[last].RelError)
	return d
}

// String renders the divergence as one line.
func (d Divergence) String() string {
	return fmt.Sprintf("%s: %s vs %s over %d cycles: |Δest| mean %.4g max %.4g (cycle %d), |Δrelerr| mean %.2e, final |Δest| %.4g |Δrelerr| %.2e",
		d.ScenarioName, d.ExecutorA, d.ExecutorB, d.Cycles,
		d.MeanAbsEstimate, d.MaxAbsEstimate, d.MaxAbsEstimateCycle,
		d.MeanAbsRelError, d.FinalAbsEstimate, d.FinalAbsRelError)
}

// String summarizes the run in one line.
func (r *RunResult) String() string {
	f := r.Final()
	return fmt.Sprintf("%s/%s: %d cycles, alive %d→%d (min %d), final estimate %.4g vs true %.4g (rel err %.2e), %d messages",
		r.Scenario, r.Executor, len(r.PerCycle)-1, r.N, f.Alive, r.MinAlive(),
		f.MeanEstimate, f.TrueMean, f.RelError, r.TotalMessages())
}
