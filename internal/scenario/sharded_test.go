package scenario

import (
	"bytes"
	"testing"

	"antientropy/internal/sim"
)

// TestShardedDeterministicCSV pins the sharded engine's determinism
// contract at the executor level: the same seed and the same shard count
// must yield byte-identical CSV output across runs, at several shard
// counts.
func TestShardedDeterministicCSV(t *testing.T) {
	sc, err := ByName("partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 300
	for _, shards := range []int{1, 2, 8} {
		render := func() []byte {
			res, err := RunSimWith(sc, SimOptions{Engine: EngineSharded, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if a, b := render(), render(); !bytes.Equal(a, b) {
			t.Fatalf("shards=%d: identical runs produced different CSV output", shards)
		}
	}
}

// TestShardedRunsAllCannedScenarios is the engine-parity check: every
// canned scenario must produce valid metrics on the sharded engine, with
// the full row count and mass conservation wherever the script is
// lossless.
func TestShardedRunsAllCannedScenarios(t *testing.T) {
	for _, sc := range Canned() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sc.N = 200
			res, err := RunSimWith(sc, SimOptions{Engine: EngineSharded, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			if res.Executor != "sim-sharded" {
				t.Fatalf("executor = %q", res.Executor)
			}
			if len(res.PerCycle) != sc.Cycles+1 {
				t.Fatalf("got %d metric rows, want %d", len(res.PerCycle), sc.Cycles+1)
			}
			f := res.Final()
			if f.Alive <= 0 || f.Participating <= 0 {
				t.Fatalf("final row has no live participants: %+v", f)
			}
			if res.TotalMessages() == 0 {
				t.Fatal("no exchange attempts recorded")
			}
			// Transient error is expected while crashes, joins or value
			// dynamics move the truth mid-epoch, but every honest script
			// ends in (or tracks) a converged regime: the final estimate
			// must be close to the final truth. Attacked scenarios keep a
			// residual bias by design even when defended — their tracking
			// quality is asserted against the honest twin in the adversary
			// tests — so the tight gate covers honest scenarios only.
			if !sc.HasAdversary() && f.RelError > 0.05 {
				t.Fatalf("final rel error %g — sharded engine failed to track the aggregate", f.RelError)
			}
		})
	}
}

// TestShardedPartitionHealConservesMassAndReconverges is the sharded
// twin of the serial engine's partition test: mass holds through the
// split at every shard count, and the overlay remerges after the heal
// (the rendezvous reseed works through sim.Core on either engine).
func TestShardedPartitionHealConservesMassAndReconverges(t *testing.T) {
	sc, err := ByName("partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 400
	for _, shards := range []int{1, 2, 8} {
		res, err := RunSimWith(sc, SimOptions{Engine: EngineSharded, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.PerCycle {
			if c.RelError > 1e-9 {
				t.Fatalf("shards=%d cycle %d: rel error %g — partition broke mass conservation",
					shards, c.Cycle, c.RelError)
			}
		}
		if mid := res.PerCycle[39]; mid.EstimateStdDev < 1e-3 {
			t.Fatalf("shards=%d: cycle 39 (partitioned) stddev %g suspiciously low", shards, mid.EstimateStdDev)
		}
		if f := res.Final(); f.EstimateStdDev > 1e-3 {
			t.Fatalf("shards=%d: final stddev %g, want re-convergence after the heal", shards, f.EstimateStdDev)
		}
	}
}

// TestShardedVsSerialStatisticalAgreement runs the same scenario on both
// engines: the trajectories differ (different executions) but the final
// converged estimates must agree closely.
func TestShardedVsSerialStatisticalAgreement(t *testing.T) {
	sc, err := ByName("correlated-crash")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 400
	serial, err := RunSimWith(sc, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunSimWith(sc, SimOptions{Engine: EngineSharded, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	fs, fp := serial.Final(), sharded.Final()
	if fs.RelError > 1e-6 || fp.RelError > 1e-6 {
		t.Fatalf("final rel errors %g (serial) vs %g (sharded): one engine failed to converge",
			fs.RelError, fp.RelError)
	}
}

// TestDivergeIdenticalRunsIsZero pins the divergence report: a run
// compared against itself diverges nowhere, and against a genuinely
// different execution (another engine) it reports small but non-zero
// estimate drift.
func TestDivergeIdenticalRunsIsZero(t *testing.T) {
	sc, err := ByName("steady-churn")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 200
	a, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	self := Diverge(a, a)
	if self.Cycles != sc.Cycles+1 {
		t.Fatalf("compared %d cycles, want %d", self.Cycles, sc.Cycles+1)
	}
	if self.MeanAbsEstimate != 0 || self.MaxAbsEstimate != 0 || self.FinalAbsRelError != 0 {
		t.Fatalf("self-divergence not zero: %+v", self)
	}
	b, err := RunSimWith(sc, SimOptions{Engine: EngineSharded, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	cross := Diverge(a, b)
	if cross.MeanAbsEstimate == 0 {
		t.Fatal("different executions reported zero divergence")
	}
	if cross.MeanAbsEstimate > 1 {
		t.Fatalf("engines drifted too far apart: %+v", cross)
	}
	if cross.ExecutorA != "sim" || cross.ExecutorB != "sim-sharded" {
		t.Fatalf("executor labels wrong: %+v", cross)
	}
}

// TestRunSimWithRejectsBadOptions covers the engine-selection knob's
// error paths.
func TestRunSimWithRejectsBadOptions(t *testing.T) {
	sc, err := ByName("steady-churn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSimWith(sc, SimOptions{Engine: "warp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := RunSimWith(sc, SimOptions{Engine: EngineSharded, Overlay: sim.Newscast(30)}); err == nil {
		t.Fatal("sharded engine accepted a serial overlay builder")
	}
}
