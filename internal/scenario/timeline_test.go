package scenario

import (
	"context"
	"testing"

	"antientropy/internal/obs"
)

// TestSimTimelineHealthAlerts runs the partition-stall scenario with a
// flight recorder attached and checks the health engine's story: the
// convergence-stall alert fires while the partition holds the global
// estimate spread flat, stays active until the heal, and never
// reappears once the fleet finishes converging. The sim is
// deterministic, so the alert window is stable across runs.
func TestSimTimelineHealthAlerts(t *testing.T) {
	sc, err := ByName("partition-stall")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 64
	timeline := obs.NewTimeline(128)
	if _, err := RunSimWith(sc, SimOptions{Timeline: timeline}); err != nil {
		t.Fatal(err)
	}
	entries := timeline.Entries()
	if len(entries) != sc.Cycles+1 {
		t.Fatalf("timeline has %d entries, want one per sampled cycle (%d)",
			len(entries), sc.Cycles+1)
	}

	healAt := sc.Events[1].At
	stallCycles := make(map[int]bool)
	for _, e := range entries {
		for _, rule := range e.Alerts {
			if rule != obs.RuleConvergenceStall {
				continue
			}
			stallCycles[e.Cycle] = true
			if e.Cycle >= healAt {
				t.Errorf("convergence_stall still active at cycle %d, after the heal at %d",
					e.Cycle, healAt)
			}
			if e.RhoHat <= theoryRhoStallFloor {
				t.Errorf("cycle %d: stall active with rho %.3f — below the stall threshold",
					e.Cycle, e.RhoHat)
			}
		}
	}
	if len(stallCycles) == 0 {
		t.Fatal("convergence_stall never fired during the partition plateau")
	}
	// The streak gate means the alert cannot appear before the stall
	// condition held for the default 5 consecutive cycles.
	for c := range stallCycles {
		if c < sc.Events[0].At+5 {
			t.Errorf("convergence_stall active at cycle %d, before a 5-cycle streak was possible", c)
		}
	}
}

// theoryRhoStallFloor is the default stall threshold: twice the
// theoretical reduction factor (HealthConfig.StallRatio × theory).
const theoryRhoStallFloor = 2 * 0.303

// TestUDPExecutorCrossProcessTrace pins the tentpole end to end over
// real processes: with one node per worker every exchange crosses a
// process boundary, and the supervisor's merged trace ring must stitch
// the initiator's and responder's events into one span via the shared
// exchange ID.
func TestUDPExecutorCrossProcessTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process UDP fleet test skipped in -short mode")
	}
	sc := Scenario{Name: "udp-xproc-trace", N: 2, Cycles: 10, EpochLen: 5, Seed: 4}.WithDefaults()
	opts := udpTestOptions(2)
	opts.Trace = obs.NewTraceRing(512)
	res, err := RunUDP(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMessages() == 0 {
		t.Fatal("no exchange attempts recorded")
	}
	events := opts.Trace.Events()
	if len(events) == 0 {
		t.Fatal("supervisor merged no trace events from the workers")
	}
	nodes := make(map[string]bool)
	for _, ev := range events {
		nodes[ev.Node] = true
	}
	if len(nodes) != 2 {
		t.Fatalf("merged trace covers nodes %v, want both workers' nodes", nodes)
	}

	stitched := 0
	for _, sp := range obs.StitchSpans(events) {
		if sp.Outcome != "completed" {
			continue
		}
		if sp.Initiator == "" || sp.Responder == "" {
			t.Fatalf("completed span missing a party: %+v", sp)
		}
		if sp.Initiator == sp.Responder {
			t.Fatalf("span %d stitched both sides to one node %q", sp.XID, sp.Initiator)
		}
		stitched++
	}
	if stitched == 0 {
		t.Fatal("no completed cross-process span: XIDs did not stitch across workers")
	}
}
