package scenario

import (
	"antientropy/internal/obs"
	"antientropy/internal/theory"
)

// scenarioObs publishes the per-cycle scenario gauges and the
// convergence watch on a metrics registry. All three executors emit the
// same series, so a dashboard built against one applies to them all. A
// nil *scenarioObs ignores observations — executors thread optional
// telemetry without branching.
type scenarioObs struct {
	cycle          *obs.Gauge
	epoch          *obs.Gauge
	alive          *obs.Gauge
	participating  *obs.Gauge
	trueMean       *obs.Gauge
	meanEstimate   *obs.Gauge
	estimateStdDev *obs.Gauge
	relError       *obs.Gauge

	observedRho *obs.Gauge
	theoryRho   *obs.Gauge
	rhoRatio    *obs.Gauge

	watch convergenceWatch
}

// newScenarioObs registers the scenario gauge set on reg (nil reg → nil
// observer). Registration is idempotent, so re-running a scenario on
// the same registry rebinds nothing and keeps the series continuous.
func newScenarioObs(reg *obs.Registry) *scenarioObs {
	if reg == nil {
		return nil
	}
	s := &scenarioObs{
		cycle:          reg.Gauge("agg_scenario_cycle", "Current scenario cycle index."),
		epoch:          reg.Gauge("agg_scenario_epoch", "Epoch the current cycle belongs to."),
		alive:          reg.Gauge("agg_scenario_alive", "Live nodes at the last sample."),
		participating:  reg.Gauge("agg_scenario_participating", "Nodes participating in the current epoch."),
		trueMean:       reg.Gauge("agg_scenario_true_mean", "Instantaneous mean of the live nodes' local values."),
		meanEstimate:   reg.Gauge("agg_scenario_mean_estimate", "Mean of the participants' estimates."),
		estimateStdDev: reg.Gauge("agg_scenario_estimate_stddev", "Standard deviation of the participants' estimates."),
		relError:       reg.Gauge("agg_scenario_rel_error", "Normalized |estimate - true mean| error."),
		observedRho: reg.Gauge("agg_convergence_observed_rho",
			"Observed per-cycle variance reduction factor of the estimates (within the current epoch)."),
		theoryRho: reg.Gauge("agg_convergence_theory_rho",
			"Theoretical per-cycle variance reduction factor 1/(2*sqrt(e)) of push-pull averaging."),
		rhoRatio: reg.Gauge("agg_convergence_rho_ratio",
			"Observed over theoretical variance reduction; ~1 means the fleet converges at the paper's rate."),
	}
	s.theoryRho.Set(theory.RhoPushPull)
	return s
}

// observe publishes one cycle's metrics row.
func (s *scenarioObs) observe(c CycleMetrics) {
	if s == nil {
		return
	}
	s.cycle.Set(float64(c.Cycle))
	s.epoch.Set(float64(c.Epoch))
	s.alive.Set(float64(c.Alive))
	s.participating.Set(float64(c.Participating))
	s.trueMean.Set(c.TrueMean)
	s.meanEstimate.Set(c.MeanEstimate)
	s.estimateStdDev.Set(c.EstimateStdDev)
	s.relError.Set(c.RelError)
	if rho, ok := s.watch.observe(c); ok {
		s.observedRho.Set(rho)
		s.rhoRatio.Set(rho / theory.RhoPushPull)
	}
}

// convergenceWatch derives the observed per-cycle variance reduction
// factor ρ̂_i = σ²_i / σ²_{i−1} from consecutive same-epoch samples —
// the measured counterpart of the paper's §3 convergence factor. The
// ratio is only meaningful within one epoch: estimates restart from
// fresh local values at every epoch boundary (§4.1), so the first cycle
// of an epoch resets the baseline instead of reporting a bogus blow-up.
type convergenceWatch struct {
	havePrev  bool
	prevEpoch int
	prevVar   float64
}

// observe folds in one sample and reports the reduction factor when the
// previous cycle of the same epoch had positive estimate variance.
func (w *convergenceWatch) observe(c CycleMetrics) (rho float64, ok bool) {
	variance := c.EstimateStdDev * c.EstimateStdDev
	prevVar, usable := w.prevVar, w.havePrev && c.Epoch == w.prevEpoch
	w.havePrev, w.prevEpoch, w.prevVar = true, c.Epoch, variance
	if !usable || prevVar <= 0 {
		return 0, false
	}
	return variance / prevVar, true
}
