package scenario

import (
	"log/slog"

	"antientropy/internal/obs"
	"antientropy/internal/theory"
	"antientropy/internal/transport"
)

// protoTotals carries the fleet-cumulative protocol counters of one
// cycle sample to the health rules, which difference them between
// cycles. Each executor maps its own counter set onto this shape so
// the rules (and their thresholds) apply unchanged across executors.
type protoTotals struct {
	Initiated int64
	Completed int64
	Timeouts  int64
	Declined  int64
	Drops     int64
}

// scenarioObs publishes the per-cycle scenario gauges, the convergence
// watch, the flight-recorder timeline and the health rules. All three
// executors emit the same series, so a dashboard built against one
// applies to them all. A nil *scenarioObs ignores observations —
// executors thread optional telemetry without branching.
type scenarioObs struct {
	cycle          *obs.Gauge
	epoch          *obs.Gauge
	alive          *obs.Gauge
	participating  *obs.Gauge
	trueMean       *obs.Gauge
	meanEstimate   *obs.Gauge
	estimateStdDev *obs.Gauge
	relError       *obs.Gauge

	observedRho *obs.Gauge
	theoryRho   *obs.Gauge
	rhoRatio    *obs.Gauge

	// advBias publishes the attacked run's per-cycle estimate bias
	// against the honest-twin baseline (see SimOptions.BiasBaseline);
	// reg is retained so bindAdversary can hook the agg_adversary_*
	// counters to a run's adversary schedule at scrape time.
	advBias  *obs.Gauge
	baseline []CycleMetrics
	reg      *obs.Registry

	watch    convergenceWatch
	timeline *obs.Timeline
	health   *obs.Health
}

// Help strings of the adversary instruments, shared between the
// zero-valued registration of newScenarioObs and the live rebinding of
// bindAdversary so the registry sees one consistent schema.
const (
	advNodesHelp   = "Attacker-controlled nodes scheduled so far (Byzantine picks plus landed sybil joiners)."
	advLiesHelp    = "Corrupted wire reports emitted by Byzantine nodes."
	advRejectHelp  = "Peer-reported samples the merge-guard defense rejected or clamped."
	advRefusedHelp = "Joins refused by the defense's epoch-scoped join cap."
	advBiasHelp    = "Mean-estimate bias of the attacked run against its honest twin at the same cycle."
)

// newScenarioObs builds the cycle observer: gauges on reg (skipped when
// nil), snapshots on timeline (skipped when nil), and the health rules
// evaluated every cycle, logging fire/clear transitions to logger and
// counting them on reg. Nil reg and nil timeline → nil observer.
// Registration is idempotent, so re-running a scenario on the same
// registry rebinds nothing and keeps the series continuous.
func newScenarioObs(reg *obs.Registry, timeline *obs.Timeline, logger *slog.Logger) *scenarioObs {
	if reg == nil && timeline == nil {
		return nil
	}
	s := &scenarioObs{
		timeline: timeline,
		health:   obs.NewHealth(reg, obs.HealthConfig{Logger: logger}),
		reg:      reg,
	}
	if reg == nil {
		return s
	}
	s.cycle = reg.Gauge("agg_scenario_cycle", "Current scenario cycle index.")
	s.epoch = reg.Gauge("agg_scenario_epoch", "Epoch the current cycle belongs to.")
	s.alive = reg.Gauge("agg_scenario_alive", "Live nodes at the last sample.")
	s.participating = reg.Gauge("agg_scenario_participating", "Nodes participating in the current epoch.")
	s.trueMean = reg.Gauge("agg_scenario_true_mean", "Instantaneous mean of the live nodes' local values.")
	s.meanEstimate = reg.Gauge("agg_scenario_mean_estimate", "Mean of the participants' estimates.")
	s.estimateStdDev = reg.Gauge("agg_scenario_estimate_stddev", "Standard deviation of the participants' estimates.")
	s.relError = reg.Gauge("agg_scenario_rel_error", "Normalized |estimate - true mean| error.")
	s.observedRho = reg.Gauge("agg_convergence_observed_rho",
		"Observed per-cycle variance reduction factor of the estimates (within the current epoch).")
	s.theoryRho = reg.Gauge("agg_convergence_theory_rho",
		"Theoretical per-cycle variance reduction factor 1/(2*sqrt(e)) of push-pull averaging.")
	s.rhoRatio = reg.Gauge("agg_convergence_rho_ratio",
		"Observed over theoretical variance reduction; ~1 means the fleet converges at the paper's rate.")
	s.theoryRho.Set(theory.RhoPushPull)
	// Adversary series exist for every run — zero on honest scenarios —
	// so dashboards keep one schema; bindAdversary rebinds them to a
	// run's live schedule.
	reg.GaugeFunc("agg_adversary_nodes", advNodesHelp, func() float64 { return 0 })
	reg.CounterFunc("agg_adversary_lies_total", advLiesHelp, func() int64 { return 0 })
	reg.CounterFunc("agg_adversary_rejected_total", advRejectHelp, func() int64 { return 0 })
	reg.CounterFunc("agg_adversary_joins_refused_total", advRefusedHelp, func() int64 { return 0 })
	s.advBias = reg.Gauge("agg_adversary_bias", advBiasHelp)
	// Every executor exports the transport series so dashboards see one
	// schema; the live and udp executors rebind the funcs to their real
	// transports (registry funcs are rebindable), the simulator has no
	// wire and reports zeros.
	reg.GaugeFunc("agg_transport_queue_depth",
		"High watermark of the transport's internal queue depth.",
		func() float64 { return 0 })
	reg.HistogramFunc("agg_transport_batch_size",
		"Datagrams moved per batched socket operation.",
		func() obs.HistSnapshot {
			return obs.HistSnapshot{
				Bounds: transport.BatchSizeBuckets,
				Counts: make([]int64, len(transport.BatchSizeBuckets)),
			}
		})
	return s
}

// bindAdversary hooks the adversary instruments to one simulation run:
// the agg_adversary_* counters read the run's schedule, guard and join
// bookkeeping at scrape time, and observe() publishes the bias gauge
// against the honest-twin baseline (nil baseline = no bias series).
func (s *scenarioObs) bindAdversary(d *simDriver, baseline []CycleMetrics) {
	if s == nil {
		return
	}
	s.baseline = baseline
	if s.reg == nil || (d.adv == nil && d.guard == nil && d.sc.Defense.JoinCap == 0) {
		return
	}
	adv, guard := d.adv, d.guard
	s.reg.GaugeFunc("agg_adversary_nodes", advNodesHelp, func() float64 {
		if adv == nil {
			return 0
		}
		return float64(adv.HostileCount())
	})
	s.reg.CounterFunc("agg_adversary_lies_total", advLiesHelp, func() int64 {
		if adv == nil {
			return 0
		}
		return adv.Lies()
	})
	s.reg.CounterFunc("agg_adversary_rejected_total", advRejectHelp, func() int64 {
		if guard == nil {
			return 0
		}
		return guard.Rejected()
	})
	s.reg.CounterFunc("agg_adversary_joins_refused_total", advRefusedHelp, func() int64 {
		return d.joinsRefused.Load()
	})
}

// observe publishes one cycle's metrics row: gauges, convergence watch,
// health-rule evaluation, and the flight-recorder snapshot.
func (s *scenarioObs) observe(c CycleMetrics, proto protoTotals) {
	if s == nil {
		return
	}
	if s.cycle != nil {
		s.cycle.Set(float64(c.Cycle))
		s.epoch.Set(float64(c.Epoch))
		s.alive.Set(float64(c.Alive))
		s.participating.Set(float64(c.Participating))
		s.trueMean.Set(c.TrueMean)
		s.meanEstimate.Set(c.MeanEstimate)
		s.estimateStdDev.Set(c.EstimateStdDev)
		s.relError.Set(c.RelError)
		if s.baseline != nil && c.Cycle < len(s.baseline) {
			s.advBias.Set(c.MeanEstimate - s.baseline[c.Cycle].MeanEstimate)
		}
	}
	rho, ok := s.watch.observe(c)
	if !ok {
		rho = 0
	} else if s.observedRho != nil {
		s.observedRho.Set(rho)
		s.rhoRatio.Set(rho / theory.RhoPushPull)
	}
	alerts := s.health.Eval(obs.HealthSample{
		Cycle:          c.Cycle,
		Epoch:          uint64(c.Epoch),
		Alive:          c.Alive,
		Participating:  c.Participating,
		TrueMean:       c.TrueMean,
		MeanEstimate:   c.MeanEstimate,
		EstimateStdDev: c.EstimateStdDev,
		RelError:       c.RelError,
		RhoHat:         rho,
		TheoryRho:      theory.RhoPushPull,
		Initiated:      proto.Initiated,
		Completed:      proto.Completed,
		Timeouts:       proto.Timeouts,
		Declined:       proto.Declined,
		Drops:          proto.Drops,
	})
	s.timeline.Record(obs.TimelineEntry{
		Cycle:          c.Cycle,
		Epoch:          uint64(c.Epoch),
		Alive:          c.Alive,
		Participating:  c.Participating,
		TrueMean:       c.TrueMean,
		MeanEstimate:   c.MeanEstimate,
		EstimateStdDev: c.EstimateStdDev,
		RelError:       c.RelError,
		RhoHat:         rho,
		Drops:          proto.Drops,
		Alerts:         alerts,
	})
}

// convergenceWatch derives the observed per-cycle variance reduction
// factor ρ̂_i = σ²_i / σ²_{i−1} from consecutive same-epoch samples —
// the measured counterpart of the paper's §3 convergence factor. The
// ratio is only meaningful within one epoch: estimates restart from
// fresh local values at every epoch boundary (§4.1), so the first cycle
// of an epoch resets the baseline instead of reporting a bogus blow-up.
type convergenceWatch struct {
	havePrev  bool
	prevEpoch int
	prevVar   float64
}

// observe folds in one sample and reports the reduction factor when the
// previous cycle of the same epoch had positive estimate variance.
func (w *convergenceWatch) observe(c CycleMetrics) (rho float64, ok bool) {
	variance := c.EstimateStdDev * c.EstimateStdDev
	prevVar, usable := w.prevVar, w.havePrev && c.Epoch == w.prevEpoch
	w.havePrev, w.prevEpoch, w.prevVar = true, c.Epoch, variance
	if !usable || prevVar <= 0 {
		return 0, false
	}
	return variance / prevVar, true
}
