package scenario

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestCannedLibrary(t *testing.T) {
	canned := Canned()
	if len(canned) < 6 {
		t.Fatalf("canned library has %d scenarios, want at least 6", len(canned))
	}
	seen := map[string]bool{}
	for _, sc := range canned {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.Validate(); err != nil {
			t.Fatalf("canned scenario %q invalid: %v", sc.Name, err)
		}
		if sc.Description == "" {
			t.Fatalf("canned scenario %q has no description", sc.Name)
		}
	}
	if _, err := ByName("partition-heal"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Fatal("ByName must reject unknown names")
	}
}

func TestLoadJSONRoundTrip(t *testing.T) {
	sc, err := ByName("partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	data, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sc.Name || got.N != sc.N || len(got.Events) != len(sc.Events) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, sc)
	}
}

func TestLoadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"x","n":10,"cycles":5,"bogus":1}`,
		"no name":       `{"n":10,"cycles":5}`,
		"tiny network":  `{"name":"x","n":1,"cycles":5}`,
		"bad event kind": `{"name":"x","n":10,"cycles":5,
			"events":[{"kind":"explode","at":1}]}`,
		"event out of range": `{"name":"x","n":10,"cycles":5,
			"events":[{"kind":"crash","at":9,"until":2,"count":1}]}`,
		"partition one group": `{"name":"x","n":10,"cycles":5,
			"events":[{"kind":"partition","at":1,"groups":[1]}]}`,
		"loss rate 1": `{"name":"x","n":10,"cycles":5,
			"events":[{"kind":"loss","at":1,"rate":1}]}`,
		"crash without size": `{"name":"x","n":10,"cycles":5,
			"events":[{"kind":"crash","at":1}]}`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: Load accepted invalid input", name)
		}
	}
}

func TestMaxSlotsCountsJoins(t *testing.T) {
	sc := Scenario{
		Name: "x", N: 100, Cycles: 50,
		Events: []Event{
			{Kind: KindJoin, At: 10, Fraction: 0.5},
			{Kind: KindJoin, At: 20, Until: 22, Every: 1, Count: 3},
		},
	}.WithDefaults()
	if got := sc.MaxSlots(); got != 100+50+9 {
		t.Fatalf("MaxSlots = %d, want 159", got)
	}
}

func TestValueProgramDynamics(t *testing.T) {
	sc := Scenario{
		Name: "vals", N: 4, Cycles: 100,
		Values: ValueSpec{Kind: "const", Value: 10},
		Events: []Event{
			{Kind: KindValueStep, At: 10, Delta: 5},
			{Kind: KindValueRamp, At: 20, Until: 30, Delta: 10},
			{Kind: KindValueOscillate, At: 40, Until: 60, Amplitude: 2, Period: 8},
		},
	}.WithDefaults()
	p := NewValueProgram(sc, sc.N)
	check := func(cycle int, want float64) {
		t.Helper()
		if got := p.Value(0, cycle); math.Abs(got-want) > 1e-9 {
			t.Fatalf("value at cycle %d = %g, want %g", cycle, got, want)
		}
	}
	check(0, 10)   // base only
	check(9, 10)   // step not yet active
	check(10, 15)  // step applied
	check(25, 20)  // step + half the ramp
	check(35, 25)  // step + full ramp
	check(42, 27)  // + oscillation peak at quarter period
	check(70, 25)  // oscillation window over
	check(100, 25) // steady thereafter
}

func TestSimPartitionHealConservesMassAndReconverges(t *testing.T) {
	sc, err := ByName("partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 400
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCycle) != sc.Cycles+1 {
		t.Fatalf("got %d metric rows, want %d", len(res.PerCycle), sc.Cycles+1)
	}
	// Mass conservation: the participants' mean must equal the true mean
	// at every cycle, partitioned or not (no loss is configured).
	for _, c := range res.PerCycle {
		if c.RelError > 1e-9 {
			t.Fatalf("cycle %d: rel error %g — partition broke mass conservation", c.Cycle, c.RelError)
		}
	}
	// While partitioned (after the epoch restart at cycle 31 re-seeded
	// raw values), the two sides converge to different means, so the
	// cross-network spread must stay visible…
	if mid := res.PerCycle[39]; mid.EstimateStdDev < 1e-3 {
		t.Fatalf("cycle 39 (partitioned): stddev %g suspiciously low", mid.EstimateStdDev)
	}
	// …and after the heal the next full epoch re-converges globally.
	if f := res.Final(); f.EstimateStdDev > 1e-3 {
		t.Fatalf("final stddev %g, want re-convergence after the heal", f.EstimateStdDev)
	}
}

// TestSimPartitionUntilAutoHeals covers the Until form of a partition:
// the split must fire once (not re-randomize every cycle, which would
// leak state across the components) and auto-heal after Until.
func TestSimPartitionUntilAutoHeals(t *testing.T) {
	sc := Scenario{
		Name: "until-partition", N: 400, Cycles: 60, EpochLen: 20, Seed: 14,
		Events: []Event{
			{Kind: KindPartition, At: 3, Until: 30, Groups: []float64{1, 1}},
		},
	}.WithDefaults()
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	// After the epoch restart at cycle 21 (mid-partition) the two sides
	// must converge to *different* means — a re-randomized split would
	// mix them back to the global mean (stddev ~1e-4). With the
	// overlay-aware partition each side converges cleanly to its own
	// component mean, so the cross-network stddev settles at half the
	// component-mean gap (~0.15 for this seed) instead of the larger
	// unconverged residual seen when gossip leaked across the split.
	if mid := res.PerCycle[30]; mid.EstimateStdDev < 0.05 {
		t.Fatalf("cycle 30 (partitioned): stddev %g — components are mixing across the partition", mid.EstimateStdDev)
	}
	// Past Until the partition lifts and the next epoch re-converges.
	if f := res.Final(); f.EstimateStdDev > 1e-3 || f.RelError > 1e-9 {
		t.Fatalf("final stddev %g rel err %g: Until-partition did not auto-heal", f.EstimateStdDev, f.RelError)
	}
}

// TestSimFractionEventsSurviveSmallN guards the -n rescaling promise:
// fraction events round to nearest, so "1% churn" still churns one node
// per cycle at N=50 instead of truncating to zero.
func TestSimFractionEventsSurviveSmallN(t *testing.T) {
	sc, err := ByName("steady-churn")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 50
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Churned-in joiners sit out the running epoch, so with churn active
	// the participant count must dip below N between restarts.
	sawJoiners := false
	for _, c := range res.PerCycle {
		if c.Participating < c.Alive {
			sawJoiners = true
			break
		}
	}
	if !sawJoiners {
		t.Fatal("no joiners observed: fraction churn truncated to zero at small N")
	}
}

func TestSimCorrelatedCrashHalvesNetwork(t *testing.T) {
	sc, err := ByName("correlated-crash")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 400
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if before := res.PerCycle[44].Alive; before != 400 {
		t.Fatalf("alive before the crash = %d, want 400", before)
	}
	if after := res.PerCycle[45].Alive; after != 200 {
		t.Fatalf("alive after the crash = %d, want 200", after)
	}
	if f := res.Final(); f.RelError > 1e-6 {
		t.Fatalf("final rel error %g: survivors must re-agree on their own mean", f.RelError)
	}
}

func TestSimFlashCrowdFoldsJoinersInAtRestart(t *testing.T) {
	sc, err := ByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 400
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerCycle[35].Alive; got != 600 {
		t.Fatalf("alive after the flash crowd = %d, want 600", got)
	}
	// Joiners wait for the next epoch (cycle 61)…
	if got := res.PerCycle[40].Participating; got != 400 {
		t.Fatalf("participants mid-epoch = %d, want 400 (joiners wait)", got)
	}
	if got := res.PerCycle[65].Participating; got != 600 {
		t.Fatalf("participants after the restart = %d, want 600", got)
	}
	if f := res.Final(); f.RelError > 1e-6 {
		t.Fatalf("final rel error %g after absorbing the flash crowd", f.RelError)
	}
}

func TestSimSteadyChurnAndLossBurstStayAccurate(t *testing.T) {
	for _, name := range []string{"steady-churn", "loss-burst", "rolling-restart"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.N = 400
		res, err := RunSim(sc)
		if err != nil {
			t.Fatal(err)
		}
		if f := res.Final(); f.RelError > 0.05 {
			t.Errorf("%s: final rel error %g, want < 5%%", name, f.RelError)
		}
	}
}

func TestSimValueDriftTracksWithEpochLag(t *testing.T) {
	sc, err := ByName("value-drift")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 400
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The signal moved by ~50% of its mean over the run; the output must
	// track it within one epoch of lag, i.e. far closer than the total
	// drift.
	if f := res.Final(); f.RelError > 0.1 {
		t.Fatalf("final rel error %g: estimate lost the drifting aggregate", f.RelError)
	}
	// The estimate must actually move with the signal: compare early vs
	// late epoch outputs.
	early := res.PerCycle[30].MeanEstimate
	late := res.Final().MeanEstimate
	if late-early < 25 {
		t.Fatalf("estimate moved only %g (early %g, late %g); the drift is not tracked", late-early, early, late)
	}
}

func TestRunResultCSVAndJSON(t *testing.T) {
	sc := Scenario{Name: "mini", N: 50, Cycles: 5, EpochLen: 5, Seed: 3}.WithDefaults()
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(res.PerCycle) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(res.PerCycle))
	}
	if lines[0] != CSVHeader {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "mini,sim,0,") {
		t.Fatalf("first CSV row %q", lines[1])
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	reparsed := strings.Count(js.String(), `"cycle"`)
	if reparsed != len(res.PerCycle) {
		t.Fatalf("JSON contains %d cycle rows, want %d", reparsed, len(res.PerCycle))
	}
	if s := res.String(); !strings.Contains(s, "mini/sim") {
		t.Fatalf("summary %q", s)
	}
}

func TestRunSimRejectsInvalidScenario(t *testing.T) {
	if _, err := RunSim(Scenario{Name: "bad", N: 1, Cycles: 1}); err == nil {
		t.Fatal("RunSim must validate the scenario")
	}
}

// TestLoadSchemaVersionGating pins the v2 strict-decode contract: the
// adversary/defense section requires schema version 2, future versions
// are rejected, and malformed documents surface the typed *DecodeError.
func TestLoadSchemaVersionGating(t *testing.T) {
	rejected := map[string]string{
		"adversaries under v1": `{"version":1,"name":"x","n":10,"cycles":5,
			"adversaries":[{"behavior":"inject-extreme","count":1,"value":1e9}]}`,
		"defense under v1": `{"version":1,"name":"x","n":10,"cycles":5,
			"defense":{"combiner":"median-of-k"}}`,
		"future version": `{"version":3,"name":"x","n":10,"cycles":5}`,
		"unknown behavior": `{"name":"x","n":10,"cycles":5,
			"adversaries":[{"behavior":"gaslight","count":1}]}`,
		"lie without value or amplify": `{"name":"x","n":10,"cycles":5,
			"adversaries":[{"behavior":"lie-estimate","count":1}]}`,
		"unknown adversary field": `{"name":"x","n":10,"cycles":5,
			"adversaries":[{"behavior":"inject-extreme","count":1,"value":1,"sneaky":true}]}`,
	}
	for name, raw := range rejected {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: Load accepted invalid input", name)
		}
	}
	// Unknown fields surface as the typed *DecodeError.
	_, err := Load(strings.NewReader(`{"name":"x","n":10,"cycles":5,"bogus":1}`))
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("unknown field error is %T, want *DecodeError", err)
	}
	// A version-0 document is filled to the current schema and a v2
	// adversary document loads.
	sc, err := Load(strings.NewReader(`{"version":2,"name":"ok","n":10,"cycles":5,
		"adversaries":[{"behavior":"inject-extreme","count":1,"value":1e9}],
		"defense":{"combiner":"median-of-k","samples":5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Version != SchemaVersion || !sc.HasAdversary() {
		t.Fatalf("v2 adversary document mangled: %+v", sc)
	}
}
