package scenario

import (
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
)

// SimOptions tune the simulator executor.
type SimOptions struct {
	// Overlay overrides the overlay builder (default: NEWSCAST with the
	// paper's recommended cache size 30).
	Overlay sim.OverlayBuilder
}

// RunSim executes the scenario on the deterministic cycle-driven engine
// with default options.
func RunSim(sc Scenario) (*RunResult, error) { return RunSimWith(sc, SimOptions{}) }

// RunSimWith executes the scenario on internal/sim: epoch restarts go
// through Engine.Restart, scripted events through a sim.Script failure
// model, and partitions through the engine's exchange filter. The whole
// run is reproducible bit-for-bit from the scenario seed.
func RunSimWith(sc Scenario, opts SimOptions) (*RunResult, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	overlay := opts.Overlay
	if overlay == nil {
		overlay = sim.Newscast(30)
	}
	slots := sc.MaxSlots()
	d := &simDriver{
		sc:       sc,
		prog:     NewValueProgram(sc, slots),
		slots:    slots,
		rng:      stats.NewRNG(sc.Seed ^ 0x7363656e6172696f),
		nextJoin: sc.N,
	}
	result := &RunResult{
		Scenario: sc.Name, Executor: "sim",
		N: sc.N, Slots: slots, Seed: sc.Seed,
		PerCycle: make([]CycleMetrics, 0, sc.Cycles+1),
	}
	var prevAttempts int64
	_, err := sim.Run(sim.Config{
		N:            slots,
		InitialAlive: sc.N,
		Cycles:       sc.Cycles,
		Seed:         sc.Seed,
		Fn:           core.Average,
		Init:         func(node int) float64 { return d.prog.Value(node, 0) },
		Overlay:      overlay,
		MessageLoss:  sc.MessageLoss,
		LinkFailure:  sc.LinkFailure,
		BeforeCycle:  d.beforeCycle,
		Failures:     []sim.FailureModel{sim.Script(sc.Name, d.applyEvents)},
		Observe: func(cycle int, e *sim.Engine) {
			cur := e.Metrics()
			messages := cur.Attempts - prevAttempts
			prevAttempts = cur.Attempts
			result.PerCycle = append(result.PerCycle, d.observe(cycle, e, messages))
		},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: sim executor: %w", sc.Name, err)
	}
	return result, nil
}

// simDriver holds the mutable state the scripted events act on.
type simDriver struct {
	sc    Scenario
	prog  *ValueProgram
	slots int
	rng   *stats.RNG

	// nextJoin is the first vacant slot; crashed collects slots available
	// for restart events.
	nextJoin int
	crashed  []int

	// groupOf assigns every slot to a partition component while a
	// partition is active.
	groupOf        []int
	partitionOn    bool
	partitionUntil int
}

// beforeCycle implements §4.1/§4.2 at epoch boundaries: the protocol
// restarts from the current scripted values and waiting joiners become
// participants.
func (d *simDriver) beforeCycle(cycle int, e *sim.Engine) {
	if cycle > 1 && (cycle-1)%d.sc.EpochLen == 0 {
		e.Restart(func(node int) float64 { return d.prog.Value(node, cycle) })
	}
}

// applyEvents runs the script for one cycle.
func (d *simDriver) applyEvents(cycle int, e *sim.Engine) {
	if d.partitionOn && d.partitionUntil > 0 && cycle > d.partitionUntil {
		d.heal(e)
	}
	e.SetMessageLoss(d.effectiveLoss(cycle))
	for _, ev := range d.sc.Events {
		if !ev.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		switch ev.Kind {
		case KindCrash:
			count := ev.resolveCount(e.AliveCount())
			for k := 0; k < count && e.AliveCount() > 1; k++ {
				victim := e.RandomAlive()
				e.Kill(victim)
				d.crashed = append(d.crashed, victim)
			}
		case KindChurn:
			count := ev.resolveCount(e.AliveCount())
			for k := 0; k < count && e.AliveCount() > 0; k++ {
				victim := e.RandomAlive()
				e.Kill(victim)
				e.Replace(victim) // same slot, brand-new identity
			}
		case KindJoin:
			count := ev.resolveCount(d.sc.N)
			for k := 0; k < count; k++ {
				slot, ok := d.takeJoinSlot()
				if !ok {
					break
				}
				e.Replace(slot)
			}
		case KindRestart:
			count := ev.resolveCount(e.AliveCount())
			for k := 0; k < count && len(d.crashed) > 0; k++ {
				slot := d.crashed[len(d.crashed)-1]
				d.crashed = d.crashed[:len(d.crashed)-1]
				e.Replace(slot)
			}
		case KindPartition:
			// Fire once at At: activeAt also matches the [At, Until]
			// auto-heal window, and re-splitting every cycle would
			// re-randomize the components, leaking state across the
			// partition.
			if cycle == ev.At {
				d.partition(e, ev)
			}
		case KindHeal:
			d.heal(e)
		}
	}
}

// takeJoinSlot hands out a vacant slot, falling back to crashed ones.
func (d *simDriver) takeJoinSlot() (int, bool) {
	if d.nextJoin < d.slots {
		slot := d.nextJoin
		d.nextJoin++
		return slot, true
	}
	if len(d.crashed) > 0 {
		slot := d.crashed[len(d.crashed)-1]
		d.crashed = d.crashed[:len(d.crashed)-1]
		return slot, true
	}
	return 0, false
}

// effectiveLoss resolves the message-loss rate for the cycle: the
// baseline unless a loss burst is active (the latest active event wins).
func (d *simDriver) effectiveLoss(cycle int) float64 {
	loss := d.sc.MessageLoss
	for _, ev := range d.sc.Events {
		if ev.Kind != KindLoss {
			continue
		}
		if from, to := ev.window(d.sc.Cycles); cycle >= from && cycle <= to {
			loss = ev.Rate
		}
	}
	return loss
}

// partition assigns every slot to a component by the event's relative
// weights and installs the exchange veto. Assigning all slots — not just
// the live ones — puts nodes that join mid-partition into a component
// too, exactly as a joiner lands on one side of a real split.
func (d *simDriver) partition(e *sim.Engine, ev Event) {
	var total float64
	for _, w := range ev.Groups {
		total += w
	}
	perm := make([]int, d.slots)
	d.rng.Perm(perm)
	d.groupOf = make([]int, d.slots)
	start := 0
	acc := 0.0
	for g, w := range ev.Groups {
		acc += w
		end := int(acc / total * float64(d.slots))
		if g == len(ev.Groups)-1 {
			end = d.slots
		}
		for _, slot := range perm[start:end] {
			d.groupOf[slot] = g
		}
		start = end
	}
	d.partitionOn = true
	d.partitionUntil = ev.Until
	groupOf := d.groupOf
	e.SetExchangeFilter(func(i, j int) bool { return groupOf[i] == groupOf[j] })
}

// heal removes the active partition.
func (d *simDriver) heal(e *sim.Engine) {
	d.partitionOn = false
	d.partitionUntil = 0
	e.SetExchangeFilter(nil)
}

// observe builds one cycle's metrics row.
func (d *simDriver) observe(cycle int, e *sim.Engine, messages int64) CycleMetrics {
	est := e.ParticipantMoments()
	var truth stats.Moments
	for i := 0; i < d.slots; i++ {
		if e.Alive(i) {
			truth.Add(d.prog.Value(i, cycle))
		}
	}
	epoch := 0
	if cycle > 0 {
		epoch = (cycle - 1) / d.sc.EpochLen
	}
	return CycleMetrics{
		Cycle:          cycle,
		Epoch:          epoch,
		Alive:          e.AliveCount(),
		Participating:  e.ParticipantCount(),
		TrueMean:       truth.Mean(),
		MeanEstimate:   est.Mean(),
		EstimateStdDev: est.StdDev(),
		RelError:       relError(est.Mean(), truth.Mean()),
		Messages:       messages,
	}
}
