package scenario

import (
	"fmt"
	"log/slog"
	"sync/atomic"

	"antientropy/internal/core"
	"antientropy/internal/obs"
	"antientropy/internal/parsim"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
)

// Engine names for SimOptions.Engine.
const (
	// EngineSerial is the single-threaded engine of internal/sim — the
	// default, bit-for-bit deterministic from the scenario seed alone.
	EngineSerial = "serial"
	// EngineSharded is the sharded multi-core engine of internal/parsim:
	// deterministic per (seed, shard count), built for 10⁵–10⁶-node runs.
	EngineSharded = "sharded"
	// EngineAuto selects by scenario size: EngineSharded at
	// parsim.AutoEngineThreshold slots and above, EngineSerial below. An
	// explicit engine always wins; the executed engine is visible in
	// RunResult.Executor ("sim" vs "sim-sharded").
	EngineAuto = "auto"
)

// AutoEngine resolves EngineAuto for a run over `slots` node slots.
func AutoEngine(slots int) string {
	if slots >= parsim.AutoEngineThreshold {
		return EngineSharded
	}
	return EngineSerial
}

// SimOptions tune the simulator executor.
type SimOptions struct {
	// Overlay overrides the overlay builder of the serial engine
	// (default: NEWSCAST with the paper's recommended cache size 30).
	// It is incompatible with the sharded engine, which uses its own
	// shard-aware NEWSCAST implementation.
	Overlay sim.OverlayBuilder
	// Engine selects the executor engine: EngineSerial (also ""),
	// EngineSharded, or EngineAuto to pick by scenario size.
	Engine string
	// Shards is the shard count for the sharded engine (0 = GOMAXPROCS).
	// Results are deterministic per shard count: the same seed and the
	// same shard count reproduce a run bit-for-bit; different shard
	// counts are statistically equivalent but not identical.
	Shards int
	// Workers bounds the sharded engine's goroutines (0 = GOMAXPROCS).
	// Callers that already parallelize across repetitions set it to 1 to
	// avoid oversubscribing the cores; it never affects results.
	Workers int
	// Obs, when set, receives the per-cycle scenario gauges and the
	// convergence watch (agg_scenario_* / agg_convergence_*), updated as
	// each cycle is observed. It never affects results.
	Obs *obs.Registry
	// Timeline, when set, receives one flight-recorder snapshot per
	// observed cycle (see obs.Timeline). It never affects results.
	Timeline *obs.Timeline
	// BiasBaseline, when set, is an honest twin's per-cycle metrics; the
	// run then publishes the agg_adversary_bias gauge as its own mean
	// estimate minus the baseline's at the same cycle. RunSimWithTwin
	// sets it automatically. It never affects results.
	BiasBaseline []CycleMetrics
	// Logger receives the health engine's alert fire/clear events
	// (default: discard). Health rules are evaluated whenever Obs or
	// Timeline is set.
	Logger *slog.Logger
}

// RunSim executes the scenario on the deterministic cycle-driven engine
// with default options.
func RunSim(sc Scenario) (*RunResult, error) { return RunSimWith(sc, SimOptions{}) }

// RunSimWith executes the scenario on a simulation engine: epoch
// restarts go through Core.Restart, scripted events through the engines'
// script hooks, and partitions through the exchange filter (which both
// engines also forward to NEWSCAST gossip, so a partition splits the
// overlay exactly as the live executor's transport partition does). The
// whole run is reproducible bit-for-bit from the scenario seed — plus
// the shard count when the sharded engine is selected.
func RunSimWith(sc Scenario, opts SimOptions) (*RunResult, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	engine := opts.Engine
	if engine == EngineAuto {
		engine = AutoEngine(sc.MaxSlots())
	}
	switch engine {
	case "", EngineSerial:
		return runSimSerial(sc, opts)
	case EngineSharded:
		return runSimSharded(sc, opts)
	default:
		return nil, fmt.Errorf("scenario %s: unknown engine %q (want %q, %q or %q)",
			sc.Name, opts.Engine, EngineAuto, EngineSerial, EngineSharded)
	}
}

// newSimDriver builds the shared script driver and the result shell.
func newSimDriver(sc Scenario, executor string) (*simDriver, *RunResult) {
	slots := sc.MaxSlots()
	d := &simDriver{
		sc:    sc,
		prog:  NewValueProgram(sc, slots),
		slots: slots,
		rng:   stats.NewRNG(sc.Seed ^ 0x7363656e6172696f),
		alloc: newSlotAllocator(slots, sc.N),
		adv:   newAdvSchedule(sc, slots),
	}
	// The combiner error was already screened by Validate.
	if c, _ := sc.Defense.combiner(); c != nil {
		d.guard = core.NewMergeGuard(c, sc.Defense.Samples, slots)
	}
	result := &RunResult{
		Scenario: sc.Name, Executor: executor,
		N: sc.N, Slots: slots, Seed: sc.Seed,
		PerCycle: make([]CycleMetrics, 0, sc.Cycles+1),
	}
	return d, result
}

func runSimSerial(sc Scenario, opts SimOptions) (*RunResult, error) {
	overlay := opts.Overlay
	if overlay == nil {
		overlay = sim.Newscast(30)
	}
	d, result := newSimDriver(sc, "sim")
	sobs := newScenarioObs(opts.Obs, opts.Timeline, opts.Logger)
	sobs.bindAdversary(d, opts.BiasBaseline)
	_, err := sim.Run(sim.Config{
		N:            d.slots,
		InitialAlive: sc.N,
		Cycles:       sc.Cycles,
		Seed:         sc.Seed,
		Fn:           core.Average,
		Init:         func(node int) float64 { return d.initValue(node, 0) },
		Adversary:    d.advHook(),
		Guard:        d.guard,
		Overlay:      overlay,
		MessageLoss:  sc.MessageLoss,
		LinkFailure:  sc.LinkFailure,
		BeforeCycle:  func(cycle int, e *sim.Engine) { d.beforeCycle(cycle, e) },
		Failures:     []sim.FailureModel{sim.Script(sc.Name, d.applyEvents)},
		Observe: func(cycle int, e *sim.Engine) {
			row, proto := d.observe(cycle, e)
			sobs.observe(row, proto)
			result.PerCycle = append(result.PerCycle, row)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: sim executor: %w", sc.Name, err)
	}
	return result, nil
}

func runSimSharded(sc Scenario, opts SimOptions) (*RunResult, error) {
	if opts.Overlay != nil {
		return nil, fmt.Errorf("scenario %s: the sharded engine does not accept a serial overlay builder", sc.Name)
	}
	d, result := newSimDriver(sc, "sim-sharded")
	sobs := newScenarioObs(opts.Obs, opts.Timeline, opts.Logger)
	sobs.bindAdversary(d, opts.BiasBaseline)
	_, err := parsim.Run(parsim.Config{
		N:            d.slots,
		InitialAlive: sc.N,
		Cycles:       sc.Cycles,
		Seed:         sc.Seed,
		Shards:       opts.Shards,
		Workers:      opts.Workers,
		Fn:           core.Average,
		Init:         func(node int) float64 { return d.initValue(node, 0) },
		Adversary:    d.advHook(),
		Guard:        d.guard,
		Overlay:      parsim.Newscast(30),
		MessageLoss:  sc.MessageLoss,
		LinkFailure:  sc.LinkFailure,
		BeforeCycle:  func(cycle int, e *parsim.Engine) { d.beforeCycle(cycle, e) },
		Script:       func(cycle int, e *parsim.Engine) { d.applyEvents(cycle, e) },
		Observe: func(cycle int, e *parsim.Engine) {
			row, proto := d.observe(cycle, e)
			sobs.observe(row, proto)
			result.PerCycle = append(result.PerCycle, row)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: sharded sim executor: %w", sc.Name, err)
	}
	return result, nil
}

// simDriver holds the mutable state the scripted events act on. It is
// engine-agnostic: everything goes through sim.Core, so the serial and
// the sharded engine run the identical script logic.
type simDriver struct {
	sc    Scenario
	prog  *ValueProgram
	slots int
	rng   *stats.RNG

	// alloc hands out join slots and tracks the crash stack (shared with
	// the other executors' drivers).
	alloc slotAllocator

	part partitionState

	// adv is the Byzantine plan (nil for honest scenarios — the nil
	// schedule keeps the honest paths bit-identical to the legacy
	// engine); guard is the combiner defense (nil without one).
	adv   *advSchedule
	guard *core.MergeGuard

	// joinsThisEpoch enforces the defense's epoch-scoped join cap;
	// joinsRefused counts over-cap joins (atomic: telemetry scrapes read
	// it concurrently).
	joinsThisEpoch int
	joinsRefused   atomic.Int64

	prevAttempts int64
}

// initValue resolves a node's (re)start value: the honest scripted value
// unless the adversary schedule overrides it (inject-extreme poisoning,
// sybil slots). Cycle 0 is the initial state; its adversary window is
// evaluated as cycle 1, the first cycle the run executes.
func (d *simDriver) initValue(node, cycle int) float64 {
	honest := d.prog.Value(node, cycle)
	if d.adv == nil {
		return honest
	}
	wcycle := cycle
	if wcycle < 1 {
		wcycle = 1
	}
	return d.adv.initValue(node, wcycle, honest)
}

// advHook exposes the wire-lying hook for the engine configs (nil for
// honest scenarios).
func (d *simDriver) advHook() func(cycle, node int, local float64) (float64, bool) {
	if d.adv == nil {
		return nil
	}
	return d.adv.engineHook()
}

// admitJoin applies the defense's epoch-scoped join cap to flash-crowd
// and sybil joins alike (the cap cannot tell an honest joiner from an
// attacker — that is the point of the sybil attack).
func (d *simDriver) admitJoin() bool {
	if cap := d.sc.Defense.JoinCap; cap > 0 && d.joinsThisEpoch >= cap {
		d.joinsRefused.Add(1)
		return false
	}
	d.joinsThisEpoch++
	return true
}

// beforeCycle implements §4.1/§4.2 at epoch boundaries: the protocol
// restarts from the current scripted values and waiting joiners become
// participants. Replay-stale attackers snapshot the estimates they will
// replay just before the restart wipes them, and the join-cap budget
// renews with the epoch.
func (d *simDriver) beforeCycle(cycle int, e sim.Core) {
	if cycle > 1 && (cycle-1)%d.sc.EpochLen == 0 {
		if d.adv != nil {
			d.adv.snapshotEpoch(func(node int) float64 { return e.Value(node) })
		}
		d.joinsThisEpoch = 0
		e.Restart(func(node int) float64 { return d.initValue(node, cycle) })
	}
}

// applyEvents runs the script for one cycle.
func (d *simDriver) applyEvents(cycle int, e sim.Core) {
	if d.part.expired(cycle) {
		d.heal(e)
	}
	e.SetMessageLoss(d.sc.effectiveLoss(cycle))
	for _, ev := range d.sc.Events {
		if !ev.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		switch ev.Kind {
		case KindCrash:
			count := ev.resolveCount(e.AliveCount())
			for k := 0; k < count && e.AliveCount() > 1; k++ {
				victim := e.RandomAlive()
				e.Kill(victim)
				d.alloc.pushCrashed(victim)
			}
		case KindChurn:
			count := ev.resolveCount(e.AliveCount())
			for k := 0; k < count && e.AliveCount() > 0; k++ {
				victim := e.RandomAlive()
				e.Kill(victim)
				e.Replace(victim) // same slot, brand-new identity
			}
		case KindJoin:
			count := ev.resolveCount(d.sc.N)
			for k := 0; k < count; k++ {
				if !d.admitJoin() {
					continue
				}
				slot, ok := d.alloc.takeJoinSlot()
				if !ok {
					break
				}
				e.Replace(slot)
			}
		case KindRestart:
			count := ev.resolveCount(e.AliveCount())
			for k := 0; k < count; k++ {
				slot, ok := d.alloc.popCrashed()
				if !ok {
					break
				}
				e.Replace(slot)
			}
		case KindPartition:
			// Fire once at At: activeAt also matches the [At, Until]
			// auto-heal window, and re-splitting every cycle would
			// re-randomize the components, leaking state across the
			// partition.
			if cycle == ev.At {
				d.partition(e, ev)
			}
		case KindHeal:
			d.heal(e)
		}
	}
	d.sybilJoins(cycle, e)
}

// sybilJoins lands the active sybil-flood adversaries' attacker nodes —
// ordinary joins as far as the protocol can tell, except that the slots
// are marked hostile (their restart value is the attacker's, and the
// honest metrics exclude them). The defense's join cap throttles them
// exactly as it throttles flash crowds.
func (d *simDriver) sybilJoins(cycle int, e sim.Core) {
	if d.adv == nil {
		return
	}
	for ai, a := range d.sc.Adversaries {
		if a.Behavior != BehaviorSybilFlood || !a.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		for k := 0; k < a.Rate; k++ {
			if !d.admitJoin() {
				continue
			}
			slot, ok := d.alloc.takeJoinSlot()
			if !ok {
				break
			}
			d.adv.markSybil(slot, ai)
			e.Replace(slot)
		}
	}
}

// partition assigns every slot to a component (see partitionComponents)
// and installs the exchange veto — which both engines also apply to
// NEWSCAST gossip, so the overlay splits along with the aggregation
// traffic.
func (d *simDriver) partition(e sim.Core, ev Event) {
	d.part.activate(partitionComponents(d.rng, d.slots, ev.Groups), ev.Until)
	groupOf := d.part.groupOf
	e.SetExchangeFilter(func(i, j int) bool { return groupOf[i] == groupOf[j] })
}

// heal removes the active partition and performs the rendezvous refresh
// the live executor models with out-of-band contacts: a partition longer
// than the cache lifetime ages every cross-component descriptor out of
// the NEWSCAST views, so gossip alone can never remerge the overlay.
// Reseeding a few bridge nodes per component from the global membership
// restores cross-component descriptors; epidemic gossip spreads the
// bridges from there.
func (d *simDriver) heal(e sim.Core) {
	wasOn := d.part.clear()
	e.SetExchangeFilter(nil)
	if !wasOn {
		return
	}
	const bridgesPerGroup = 4
	groups := 0
	for _, g := range d.part.groupOf {
		if g+1 > groups {
			groups = g + 1
		}
	}
	for g := 0; g < groups; g++ {
		members := make([]int, 0, d.slots)
		for slot, sg := range d.part.groupOf {
			if sg == g && e.Alive(slot) {
				members = append(members, slot)
			}
		}
		if len(members) == 0 {
			continue
		}
		for b := 0; b < bridgesPerGroup; b++ {
			e.ReseedOverlay(members[d.rng.Intn(len(members))])
		}
	}
}

// observe builds one cycle's metrics row plus the cumulative protocol
// totals the health rules difference. The simulator has no wall-clock
// timeouts; every silently lost exchange (link drop, message loss,
// partition veto) plays the timeout role for the rules, while §7.1
// refusals map to declines.
func (d *simDriver) observe(cycle int, e sim.Core) (CycleMetrics, protoTotals) {
	cur := e.Metrics()
	messages := cur.Attempts - d.prevAttempts
	d.prevAttempts = cur.Attempts
	// Under an adversary the metrics cover the honest population only:
	// the attack's impact is what leaks into honest estimates, and the
	// truth signal attacker-controlled slots would contribute is fake.
	var est stats.Moments
	if d.adv == nil {
		est = e.ParticipantMoments()
	} else {
		e.ForEachParticipant(func(node int, v float64) {
			if !d.adv.hostile(node) {
				est.Add(v)
			}
		})
	}
	var truth stats.Moments
	for i := 0; i < d.slots; i++ {
		if e.Alive(i) && (d.adv == nil || !d.adv.hostile(i)) {
			truth.Add(d.prog.Value(i, cycle))
		}
	}
	epoch := 0
	if cycle > 0 {
		epoch = (cycle - 1) / d.sc.EpochLen
	}
	silent := cur.LinkDrops + cur.RequestLosses + cur.ReplyLosses + cur.PartitionDrops
	return CycleMetrics{
			Cycle:          cycle,
			Epoch:          epoch,
			Alive:          e.AliveCount(),
			Participating:  e.ParticipantCount(),
			TrueMean:       truth.Mean(),
			MeanEstimate:   est.Mean(),
			EstimateStdDev: est.StdDev(),
			RelError:       relError(est.Mean(), truth.Mean()),
			Messages:       messages,
		}, protoTotals{
			Initiated: cur.Attempts,
			Completed: cur.Completed,
			Timeouts:  cur.Timeouts + silent,
			Declined:  cur.Refusals,
			Drops:     silent,
		}
}
