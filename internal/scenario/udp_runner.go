package scenario

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"antientropy/internal/agent"
	"antientropy/internal/obs"
	"antientropy/internal/stats"
)

// UDPOptions tune the multi-process UDP executor.
type UDPOptions struct {
	// Workers is the number of worker processes the fleet is sliced
	// across (default 3, capped at the scenario's initial size). Slot i
	// lives in worker i mod Workers for the whole run.
	Workers int
	// CycleLen is δ, the wall-clock length of one protocol cycle. The
	// default scales with the fleet size and the machine's cores like the
	// live-mem executor's, with a higher floor: real sockets add syscall
	// and cross-process scheduling cost per exchange.
	CycleLen time.Duration
	// CacheSize is the NEWSCAST cache capacity (default 30).
	CacheSize int
	// QueueLen sizes each endpoint's inbound buffer (default 1024).
	QueueLen int
	// Transport selects the workers' datagram layer: "mux" (default)
	// shares a small batched socket set per worker, "endpoint" binds one
	// socket per node — the pre-mux baseline, kept for A/B measurement.
	Transport string
	// WorkerCmd is the argv that launches one worker process speaking the
	// control protocol on stdin/stdout (a program calling RunUDPWorker).
	// Default: the current executable with a single -worker argument —
	// what cmd/aggscen implements.
	WorkerCmd []string
	// WorkerEnv appends to the inherited environment of every worker.
	WorkerEnv []string
	// ControlTimeout bounds every wait for a worker reply (default 60s).
	ControlTimeout time.Duration
	// Logger receives supervisor progress and worker-drop accounting
	// (default: discard).
	Logger *slog.Logger
	// Obs, when set, exposes the whole fleet on the supervisor's metrics
	// registry: workers forward their cumulative protocol counters and
	// RTT histogram snapshots over the control channel at every sample,
	// and the supervisor exports the merged totals alongside the
	// per-cycle scenario gauges and the convergence watch — one
	// aggregated /metrics endpoint for a multi-process run.
	Obs *obs.Registry
	// TraceCap > 0 makes every worker keep an exchange trace ring of
	// that capacity, drained incrementally over the control channel at
	// every sample. Defaults to Trace's capacity hint (1024) when only
	// Trace is set.
	TraceCap int
	// Trace, when set, receives the merged exchange-trace events of
	// every worker: events sharing an exchange identifier stitch into
	// cross-process causal spans (see obs.StitchSpans), the supervisor's
	// fleet-wide /debug/trace view of a multi-process run.
	Trace *obs.TraceRing
	// Timeline, when set, receives one flight-recorder snapshot per
	// sampled cycle (see obs.Timeline). Health rules are evaluated
	// whenever Obs or Timeline is set, logging alert transitions to
	// Logger.
	Timeline *obs.Timeline
}

func (o UDPOptions) withDefaults(fleet int) (UDPOptions, error) {
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.CycleLen <= 0 {
		// Budget ~250µs of single-core compute per node per cycle (the
		// live-mem executor's 150µs plus UDP syscalls and cross-process
		// wakeups), spread across the cores, with a 25ms floor for timer
		// accuracy across process boundaries.
		perCore := 250 * time.Microsecond / time.Duration(runtime.GOMAXPROCS(0))
		o.CycleLen = time.Duration(fleet) * perCore
		if o.CycleLen < 25*time.Millisecond {
			o.CycleLen = 25 * time.Millisecond
		}
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 30
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	switch o.Transport {
	case "":
		o.Transport = udpTransportMux
	case udpTransportMux, udpTransportEndpoint:
	default:
		return o, fmt.Errorf("scenario: unknown udp transport %q (want %q or %q)",
			o.Transport, udpTransportMux, udpTransportEndpoint)
	}
	if o.ControlTimeout <= 0 {
		o.ControlTimeout = 60 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.Trace != nil && o.TraceCap <= 0 {
		o.TraceCap = 1024
	}
	if len(o.WorkerCmd) == 0 {
		self, err := os.Executable()
		if err != nil {
			return o, fmt.Errorf("scenario: resolving worker executable: %w", err)
		}
		o.WorkerCmd = []string{self, "-worker"}
	}
	return o, nil
}

// RunUDP executes the scenario against a fleet of real agent nodes over
// UDP loopback sockets, sliced across worker processes: the paper's
// runtime on a real network stack, with kernel scheduling, packet
// reordering and socket-buffer pressure in the loop. The supervisor forks
// Workers processes (see UDPOptions.WorkerCmd), coordinates cycle
// barriers and scripted events over stdin/stdout JSON, and injects
// partitions and loss through each worker's UDPFilter — the userspace
// stand-in for the iptables rules a privileged supervisor would install.
// Like the live-mem executor the run is wall-clock driven and therefore
// not bit-for-bit deterministic, but it chases the identical scripted
// value signal, so its metric stream is directly comparable to the other
// executors'.
func RunUDP(ctx context.Context, sc Scenario, opts UDPOptions) (*RunResult, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults(sc.MaxSlots())
	if err != nil {
		return nil, err
	}
	if opts.Workers > sc.N {
		opts.Workers = sc.N
	}

	slots := sc.MaxSlots()
	d := &udpDriver{
		sc:     sc,
		prog:   NewValueProgram(sc, slots),
		roster: newFleetRoster(slots, sc.N),
		rng:    stats.NewRNG(sc.Seed ^ 0x7564702d72756e), // "udp-run"
		opts:   opts,
		ctx:    ctx,
		adv:    newAdvSchedule(sc, slots),
		sobs:   newScenarioObs(opts.Obs, opts.Timeline, opts.Logger),
	}
	d.bindObs(opts.Obs)
	defer d.teardown()

	if err := d.spawnWorkers(); err != nil {
		return nil, err
	}
	if err := d.initWorkers(); err != nil {
		return nil, err
	}
	anchor, err := d.startFleet()
	if err != nil {
		return nil, err
	}

	result := &RunResult{
		Scenario: sc.Name, Executor: "udp",
		N: sc.N, Slots: slots, Seed: sc.Seed,
		PerCycle: make([]CycleMetrics, 0, sc.Cycles+1),
	}

	// Founding the fleet takes real time, during which the nodes'
	// wall-clock schedule has been running. Anchor scenario cycle 1 to the
	// next epoch boundary so scripted cycles line up exactly with the
	// fleet's epoch restarts (see RunLive).
	delta := time.Duration(sc.EpochLen) * opts.CycleLen
	startEpoch := time.Since(anchor)/delta + 1
	base := anchor.Add(startEpoch * delta)

	if err := sleepUntil(ctx, base.Add(-opts.CycleLen/2)); err != nil {
		return nil, err
	}
	row, err := d.sample(0)
	if err != nil {
		return nil, err
	}
	result.PerCycle = append(result.PerCycle, row)
	for cycle := 1; cycle <= sc.Cycles; cycle++ {
		edge := base.Add(time.Duration(cycle-1) * opts.CycleLen)
		if err := sleepUntil(ctx, edge); err != nil {
			return nil, err
		}
		if err := d.runCycle(cycle); err != nil {
			return nil, err
		}
		// Sample halfway into the cycle: node epochs flip at the cycle
		// edges, and sampling during the flip would mix two epochs.
		if err := sleepUntil(ctx, edge.Add(opts.CycleLen/2)); err != nil {
			return nil, err
		}
		row, err := d.sample(cycle)
		if err != nil {
			return nil, err
		}
		result.PerCycle = append(result.PerCycle, row)
	}
	if err := d.shutdownWorkers(); err != nil {
		return nil, err
	}
	d.opts.Logger.Info("udp executor finished",
		"scenario", sc.Name, "workers", opts.Workers, "transport", opts.Transport,
		"queueDrops", d.lastQueueDrops, "filterDrops", d.lastFilterDrops,
		"decodeErrors", d.lastDecodeErrors)
	return result, nil
}

// udpWorkerProc is the supervisor's handle on one worker process.
type udpWorkerProc struct {
	index int
	cmd   *exec.Cmd
	conn  *udpConn
	stdin io.WriteCloser

	// inbox carries decoded replies; the pump goroutine closes it at EOF
	// or error (readErr is set first).
	inbox   chan udpMsg
	readErr error
}

// udpDriver owns the worker fleet and the mutable script state. The
// script logic mirrors liveDriver through the shared fleetRoster and
// partitionState; the actions become control messages.
type udpDriver struct {
	sc     Scenario
	prog   *ValueProgram
	roster *fleetRoster
	rng    *stats.RNG
	opts   UDPOptions
	ctx    context.Context

	procs []*udpWorkerProc

	// adv is the run's Byzantine plan (nil for honest scenarios). The
	// workers rebuild the identical static schedule from the scenario in
	// their init message; sybil slot assignment happens here and rides
	// the join commands. The join-cap fields mirror liveDriver's.
	adv            *advSchedule
	joinEpoch      int
	joinsThisEpoch int
	joinsRefused   atomic.Int64

	part partitionState
	// pendingJoin tracks joins commanded this cycle whose addresses are
	// still unknown (the worker acks them at the barrier); a crash of
	// such a slot in the same cycle cancels the join instead of racing
	// it on the worker.
	pendingJoin map[int]bool
	// pendingAssign broadcasts mid-partition joiner addresses to every
	// worker's filter on the next barrier (the owner already knows).
	pendingAssign map[string]int

	delayWarned bool

	prevMessages    int64
	lastQueueDrops  int64
	lastFilterDrops int64

	// sobs publishes the per-cycle gauges; telMu guards the cached
	// worker telemetry the registry's scrape-time funcs read (the HTTP
	// scrape goroutine is concurrent with the driver's control loop).
	sobs           *scenarioObs
	telMu          sync.Mutex
	telTotals      agent.Metrics
	telRTT         obs.HistSnapshot
	telQueueDrops  int64
	telFilterDrops int64
	telQueueDepth  int64
	telBatch       obs.HistSnapshot

	lastDecodeErrors int64
}

// fleetAgentMetrics returns the last sampled fleet-wide counter totals —
// the scrape-time aggregation hook bound by RegisterMetrics.
func (d *udpDriver) fleetAgentMetrics() agent.Metrics {
	d.telMu.Lock()
	defer d.telMu.Unlock()
	return d.telTotals
}

// bindObs registers the fleet aggregates on the supervisor's registry.
// The funcs read the telemetry cache refreshed at every sample barrier,
// so scrapes between barriers see the last consistent fleet snapshot.
func (d *udpDriver) bindObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	if d.adv != nil || d.sc.Defense.JoinCap > 0 {
		// Rebind the zero-valued adversary series newScenarioObs just
		// registered. Lie and rejection counters ride the workers' merged
		// agent totals, exported by RegisterMetrics below.
		adv := d.adv
		reg.GaugeFunc("agg_adversary_nodes", advNodesHelp, func() float64 {
			if adv == nil {
				return 0
			}
			return float64(adv.HostileCount())
		})
		reg.CounterFunc("agg_adversary_joins_refused_total", advRefusedHelp, func() int64 {
			return d.joinsRefused.Load()
		})
	}
	agent.RegisterMetrics(reg, d.fleetAgentMetrics)
	reg.HistogramFunc("agg_exchange_rtt_seconds",
		"Exchange round-trip latency, initiate to reply, in seconds.",
		func() obs.HistSnapshot {
			d.telMu.Lock()
			defer d.telMu.Unlock()
			return d.telRTT
		})
	reg.CounterFunc("agg_transport_queue_drops_total",
		"Datagrams dropped at full endpoint inbound queues.",
		func() int64 {
			d.telMu.Lock()
			defer d.telMu.Unlock()
			return d.telQueueDrops
		})
	reg.CounterFunc("agg_transport_filter_drops_total",
		"Datagrams dropped by the scripted loss/partition filter.",
		func() int64 {
			d.telMu.Lock()
			defer d.telMu.Unlock()
			return d.telFilterDrops
		})
	reg.GaugeFunc("agg_transport_queue_depth",
		"High watermark of the transport's internal queue depth.",
		func() float64 {
			d.telMu.Lock()
			defer d.telMu.Unlock()
			return float64(d.telQueueDepth)
		})
	reg.HistogramFunc("agg_transport_batch_size",
		"Datagrams moved per batched socket operation.",
		func() obs.HistSnapshot {
			d.telMu.Lock()
			defer d.telMu.Unlock()
			return d.telBatch
		})
}

// owner returns the worker index a slot lives in.
func (d *udpDriver) owner(slot int) int { return slot % d.opts.Workers }

// spawnWorkers forks the worker processes and wires their pipes.
func (d *udpDriver) spawnWorkers() error {
	for i := 0; i < d.opts.Workers; i++ {
		cmd := exec.CommandContext(d.ctx, d.opts.WorkerCmd[0], d.opts.WorkerCmd[1:]...)
		cmd.Env = append(os.Environ(), d.opts.WorkerEnv...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fmt.Errorf("scenario %s: worker %d stdin: %w", d.sc.Name, i, err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fmt.Errorf("scenario %s: worker %d stdout: %w", d.sc.Name, i, err)
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("scenario %s: starting worker %d (%q): %w",
				d.sc.Name, i, d.opts.WorkerCmd[0], err)
		}
		p := &udpWorkerProc{
			index: i,
			cmd:   cmd,
			conn:  newUDPConn(stdout, stdin),
			stdin: stdin,
			inbox: make(chan udpMsg, 16),
		}
		go func() {
			for {
				m, err := p.conn.recv()
				if err != nil {
					if err != io.EOF {
						p.readErr = err
					}
					close(p.inbox)
					return
				}
				p.inbox <- m
			}
		}()
		// Append only fully wired handles: teardown walks d.procs on
		// every exit path, including a failure earlier in this loop.
		d.procs = append(d.procs, p)
	}
	return nil
}

// recv awaits one reply of the wanted op from a worker.
func (d *udpDriver) recv(p *udpWorkerProc, want string) (udpMsg, error) {
	timer := time.NewTimer(d.opts.ControlTimeout)
	defer timer.Stop()
	select {
	case <-d.ctx.Done():
		return udpMsg{}, d.ctx.Err()
	case <-timer.C:
		return udpMsg{}, fmt.Errorf("scenario %s: worker %d: no %s within %v",
			d.sc.Name, p.index, want, d.opts.ControlTimeout)
	case m, ok := <-p.inbox:
		if !ok {
			if p.readErr != nil {
				return udpMsg{}, fmt.Errorf("scenario %s: worker %d: %w", d.sc.Name, p.index, p.readErr)
			}
			return udpMsg{}, fmt.Errorf("scenario %s: worker %d exited mid-run", d.sc.Name, p.index)
		}
		if m.Op == udpOpFatal {
			return udpMsg{}, fmt.Errorf("scenario %s: worker %d failed: %s", d.sc.Name, p.index, m.Err)
		}
		if m.Op != want {
			return udpMsg{}, fmt.Errorf("scenario %s: worker %d replied %q, want %q",
				d.sc.Name, p.index, m.Op, want)
		}
		return m, nil
	}
}

// broadcast sends per-worker messages and gathers one reply of the
// wanted op from each, returning the replies indexed by worker.
func (d *udpDriver) broadcast(msgs []udpMsg, want string) ([]udpMsg, error) {
	for i, p := range d.procs {
		if err := p.conn.send(msgs[i]); err != nil {
			return nil, fmt.Errorf("scenario %s: worker %d: %w", d.sc.Name, i, err)
		}
	}
	replies := make([]udpMsg, len(d.procs))
	for i, p := range d.procs {
		m, err := d.recv(p, want)
		if err != nil {
			return nil, err
		}
		replies[i] = m
	}
	return replies, nil
}

// initWorkers distributes the founding slot assignment and collects the
// bound addresses.
func (d *udpDriver) initWorkers() error {
	msgs := make([]udpMsg, d.opts.Workers)
	for i := range msgs {
		var assigned []int
		for slot := 0; slot < d.sc.N; slot++ {
			if d.owner(slot) == i {
				assigned = append(assigned, slot)
			}
		}
		sc := d.sc
		msgs[i] = udpMsg{
			Op:         udpOpInit,
			Scenario:   &sc,
			Worker:     i,
			Slots:      assigned,
			CacheSize:  d.opts.CacheSize,
			CycleLenUS: d.opts.CycleLen.Microseconds(),
			QueueLen:   d.opts.QueueLen,
			TraceCap:   d.opts.TraceCap,
			Transport:  d.opts.Transport,
		}
	}
	replies, err := d.broadcast(msgs, udpOpReady)
	if err != nil {
		return err
	}
	for i, m := range replies {
		for slot, addr := range m.Addrs {
			if slot < 0 || slot >= d.sc.N || d.owner(slot) != i {
				return fmt.Errorf("scenario %s: worker %d reported foreign slot %d", d.sc.Name, i, slot)
			}
			d.roster.addr[slot] = addr
			d.roster.alive[slot] = true
		}
	}
	for slot := 0; slot < d.sc.N; slot++ {
		if !d.roster.alive[slot] {
			return fmt.Errorf("scenario %s: slot %d has no endpoint after init", d.sc.Name, slot)
		}
	}
	return nil
}

// startFleet anchors the shared schedule and starts every founding node.
func (d *udpDriver) startFleet() (time.Time, error) {
	bootstrap := make([]string, d.sc.N)
	copy(bootstrap, d.roster.addr[:d.sc.N])
	anchor := time.Now()
	msgs := make([]udpMsg, d.opts.Workers)
	for i := range msgs {
		msgs[i] = udpMsg{
			Op:             udpOpStart,
			AnchorUnixNano: anchor.UnixNano(),
			Bootstrap:      bootstrap,
		}
	}
	if _, err := d.broadcast(msgs, udpOpStarted); err != nil {
		return time.Time{}, err
	}
	return anchor, nil
}

// runCycle builds this cycle's per-worker event commands, runs the
// barrier, and folds reported joiner addresses back into the roster.
func (d *udpDriver) runCycle(cycle int) error {
	msgs := make([]udpMsg, d.opts.Workers)
	loss := d.sc.effectiveLoss(cycle)
	for i := range msgs {
		msgs[i] = udpMsg{Op: udpOpCycle, Cycle: cycle, Loss: loss, Assign: d.pendingAssign}
	}
	d.pendingAssign = nil
	d.pendingJoin = nil

	if epoch := (cycle - 1) / d.sc.EpochLen; epoch != d.joinEpoch {
		d.joinEpoch, d.joinsThisEpoch = epoch, 0
	}
	if d.part.expired(cycle) {
		d.heal(msgs)
	}
	for _, ev := range d.sc.Events {
		if !ev.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		switch ev.Kind {
		case KindCrash:
			count := ev.resolveCount(d.roster.aliveCount())
			for k := 0; k < count && d.roster.aliveCount() > 1; k++ {
				d.crash(msgs, d.roster.randomAlive(d.rng))
			}
		case KindChurn:
			count := ev.resolveCount(d.roster.aliveCount())
			for k := 0; k < count && d.roster.aliveCount() > 1; k++ {
				slot := d.roster.randomAlive(d.rng)
				d.crash(msgs, slot)
				d.join(msgs, slot)
				d.roster.popCrashed() // slot reused, not available for restarts
			}
		case KindJoin:
			count := ev.resolveCount(d.sc.N)
			for k := 0; k < count; k++ {
				if !d.admitJoin() {
					continue
				}
				slot, ok := d.roster.takeJoinSlot()
				if !ok {
					break
				}
				d.join(msgs, slot)
			}
		case KindRestart:
			count := ev.resolveCount(d.roster.aliveCount())
			for k := 0; k < count; k++ {
				slot, ok := d.roster.popCrashed()
				if !ok {
					break
				}
				d.join(msgs, slot)
			}
		case KindPartition:
			// Fire once at At (see the other executors): re-splitting
			// every cycle of the window would re-randomize the components.
			if cycle == ev.At {
				d.partition(msgs, ev)
			}
		case KindHeal:
			d.heal(msgs)
		case KindDelay:
			if !d.delayWarned {
				d.delayWarned = true
				d.opts.Logger.Warn("udp executor ignores delay events (no userspace latency injection)",
					"scenario", d.sc.Name)
			}
		}
	}
	d.sybilJoins(cycle, msgs)

	acks, err := d.broadcast(msgs, udpOpAck)
	if err != nil {
		return err
	}
	for i, ack := range acks {
		if ack.Cycle != cycle {
			return fmt.Errorf("scenario %s: worker %d acked cycle %d, want %d",
				d.sc.Name, i, ack.Cycle, cycle)
		}
		for slot, addr := range ack.Addrs {
			if slot < 0 || slot >= len(d.roster.alive) || d.owner(slot) != i {
				return fmt.Errorf("scenario %s: worker %d reported foreign joiner slot %d",
					d.sc.Name, i, slot)
			}
			d.roster.addr[slot] = addr
			if d.part.on {
				if d.pendingAssign == nil {
					d.pendingAssign = make(map[string]int)
				}
				d.pendingAssign[addr] = d.part.groupOf[slot]
			}
		}
	}
	return nil
}

// crash marks a slot dead and routes the stop command to its worker. A
// slot whose join was commanded earlier in the same cycle has no node on
// the worker yet, so the join is cancelled instead — the net effect
// (nothing running, slot available for restart) matches the other
// executors' sequential join-then-crash.
func (d *udpDriver) crash(msgs []udpMsg, slot int) {
	if !d.roster.alive[slot] {
		return
	}
	d.roster.markCrashed(slot)
	w := d.owner(slot)
	if d.pendingJoin[slot] {
		delete(d.pendingJoin, slot)
		joins := msgs[w].Joins
		for i := range joins {
			if joins[i].Slot == slot {
				msgs[w].Joins = append(joins[:i], joins[i+1:]...)
				break
			}
		}
		return
	}
	msgs[w].Crash = append(msgs[w].Crash, slot)
}

// join routes a fresh-identity start command to the slot's worker. The
// new node performs the §4.2 join against live seed contacts; while a
// partition is active it lands in the slot's component.
func (d *udpDriver) join(msgs []udpMsg, slot int) { d.joinAs(msgs, slot, -1) }

// joinAs is join with an optional controlling adversary: sybil >= 0
// marks the joiner attacker-controlled on both the supervisor's
// schedule and, via the join command, the owning worker's.
func (d *udpDriver) joinAs(msgs []udpMsg, slot, sybil int) {
	group := -1
	if d.part.on {
		group = d.part.groupOf[slot]
	}
	w := d.owner(slot)
	msgs[w].Joins = append(msgs[w].Joins, udpJoin{
		Slot: slot, Seeds: d.roster.seedAddrs(d.rng, 3), Group: group, Sybil: sybil + 1,
	})
	if d.pendingJoin == nil {
		d.pendingJoin = make(map[int]bool)
	}
	d.pendingJoin[slot] = true
	d.roster.alive[slot] = true
	// The joiner's address is known only after the worker acks; blank it
	// so seed sampling cannot hand out the stale address meanwhile.
	d.roster.addr[slot] = ""
}

// admitJoin applies the defense's epoch-scoped join cap. The cap cannot
// tell an honest joiner from an attacker: both draw from one budget.
func (d *udpDriver) admitJoin() bool {
	if cap := d.sc.Defense.JoinCap; cap > 0 && d.joinsThisEpoch >= cap {
		d.joinsRefused.Add(1)
		return false
	}
	d.joinsThisEpoch++
	return true
}

// sybilJoins routes the active sybil-flood attackers' joiners for the
// cycle to their owning workers, subject to the same epoch join cap as
// honest joins.
func (d *udpDriver) sybilJoins(cycle int, msgs []udpMsg) {
	if d.adv == nil {
		return
	}
	for ai, a := range d.sc.Adversaries {
		if a.Behavior != BehaviorSybilFlood || !a.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		for k := 0; k < a.Rate; k++ {
			if !d.admitJoin() {
				continue
			}
			slot, ok := d.roster.takeJoinSlot()
			if !ok {
				return
			}
			d.adv.markSybil(slot, ai)
			d.joinAs(msgs, slot, ai)
		}
	}
}

// partition splits the fleet: every slot gets a component, and the
// addr → group map is broadcast so every worker's filter drops
// cross-component datagrams on both the send and the receive path.
func (d *udpDriver) partition(msgs []udpMsg, ev Event) {
	d.part.activate(partitionComponents(d.rng, len(d.roster.alive), ev.Groups), ev.Until)
	groups := make(map[string]int, len(d.roster.alive))
	for _, slot := range d.roster.liveSlots() {
		if d.roster.addr[slot] != "" {
			groups[d.roster.addr[slot]] = d.part.groupOf[slot]
		}
	}
	for i := range msgs {
		msgs[i].Groups = groups
	}
}

// heal clears the partition on every worker and routes the rendezvous
// refresh (see bridgeContacts) to the bridge slots' owners.
func (d *udpDriver) heal(msgs []udpMsg) {
	wasOn := d.part.clear()
	for i := range msgs {
		msgs[i].Heal = true
		msgs[i].Groups = nil
	}
	d.pendingAssign = nil
	if !wasOn {
		return
	}
	for _, bc := range bridgeContacts(d.rng, d.roster, d.part.groupOf) {
		w := d.owner(bc.slot)
		msgs[w].Contacts = append(msgs[w].Contacts, udpContacts{Slot: bc.slot, Addrs: bc.addrs})
	}
}

// sample gathers the workers' partial aggregates into one metrics row.
func (d *udpDriver) sample(cycle int) (CycleMetrics, error) {
	msgs := make([]udpMsg, d.opts.Workers)
	for i := range msgs {
		msgs[i] = udpMsg{Op: udpOpSample, Cycle: cycle}
	}
	replies, err := d.broadcast(msgs, udpOpMetrics)
	if err != nil {
		return CycleMetrics{}, err
	}
	d.mergeTraces(replies)
	var alive, participating, estN int
	var estSum, estSumSq float64
	var messages, queueDrops, filterDrops, queueDepth int64
	var totals agent.Metrics
	var rtt, batch obs.HistSnapshot
	for _, m := range replies {
		alive += m.Alive
		participating += m.Participating
		estN += m.EstN
		estSum += m.EstSum
		estSumSq += m.EstSumSq
		messages += m.Messages
		queueDrops += m.QueueDrops
		filterDrops += m.FilterDrops
		if m.TransportQueueDepth > queueDepth {
			queueDepth = m.TransportQueueDepth
		}
		if m.AgentTotals != nil {
			totals.Accumulate(*m.AgentTotals)
		}
		if m.RTTHist != nil {
			if rtt.Counts == nil {
				rtt = *m.RTTHist
			} else {
				rtt = rtt.Merge(*m.RTTHist)
			}
		}
		if m.BatchHist != nil {
			if batch.Counts == nil {
				batch = *m.BatchHist
			} else {
				batch = batch.Merge(*m.BatchHist)
			}
		}
	}
	d.lastQueueDrops, d.lastFilterDrops = queueDrops, filterDrops
	d.lastDecodeErrors = totals.DecodeErrors
	d.telMu.Lock()
	d.telTotals, d.telRTT = totals, rtt
	d.telQueueDrops, d.telFilterDrops = queueDrops, filterDrops
	d.telQueueDepth, d.telBatch = queueDepth, batch
	d.telMu.Unlock()
	if alive != d.roster.aliveCount() {
		d.opts.Logger.Warn("udp executor: worker fleet drifted from script state",
			"cycle", cycle, "workersAlive", alive, "scriptAlive", d.roster.aliveCount())
	}

	// Under an adversary the truth covers the honest population only,
	// matching the other executors (the workers filter the estimate
	// moments the same way); hostile slots still count as alive.
	var truth stats.Moments
	for _, slot := range d.roster.liveSlots() {
		if d.adv != nil && d.adv.hostile(slot) {
			continue
		}
		truth.Add(d.prog.Value(slot, cycle))
	}
	var estMean, estStd float64
	if estN > 0 {
		estMean = estSum / float64(estN)
		if estN > 1 {
			variance := (estSumSq - estSum*estSum/float64(estN)) / float64(estN-1)
			if variance > 0 {
				estStd = math.Sqrt(variance)
			}
		}
	}
	epoch := 0
	if cycle > 0 {
		epoch = (cycle - 1) / d.sc.EpochLen
	}
	prev := d.prevMessages
	d.prevMessages = messages
	row := CycleMetrics{
		Cycle:          cycle,
		Epoch:          epoch,
		Alive:          alive,
		Participating:  participating,
		TrueMean:       truth.Mean(),
		MeanEstimate:   estMean,
		EstimateStdDev: estStd,
		RelError:       relError(estMean, truth.Mean()),
		Messages:       messages - prev,
	}
	d.sobs.observe(row, protoTotals{
		Initiated: totals.ExchangesInitiated,
		Completed: totals.ExchangesCompleted,
		Timeouts:  totals.Timeouts,
		Declined:  totals.PeerDeclined,
		Drops:     queueDrops + filterDrops,
	})
	return row, nil
}

// mergeTraces folds the workers' exchange-trace increments into the
// supervisor's fleet-wide ring. Events keep their worker-side
// timestamps — all workers run on this machine's clock — so the merged
// ring stitches cross-process spans exactly like a single-process one.
func (d *udpDriver) mergeTraces(replies []udpMsg) {
	if d.opts.Trace == nil {
		return
	}
	for _, m := range replies {
		for _, ev := range m.Trace {
			d.opts.Trace.Record(ev)
		}
	}
}

// shutdownWorkers winds the fleet down cleanly: shutdown/bye handshake,
// then process exit.
func (d *udpDriver) shutdownWorkers() error {
	msgs := make([]udpMsg, d.opts.Workers)
	for i := range msgs {
		msgs[i] = udpMsg{Op: udpOpShutdown}
	}
	replies, err := d.broadcast(msgs, udpOpBye)
	if err != nil {
		return err
	}
	d.mergeTraces(replies)
	var firstErr error
	for _, p := range d.procs {
		_ = p.stdin.Close()
		if err := p.cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("scenario %s: worker %d exit: %w", d.sc.Name, p.index, err)
		}
	}
	d.procs = nil
	return firstErr
}

// teardown force-kills any workers still running (error paths; the happy
// path already waited in shutdownWorkers).
func (d *udpDriver) teardown() {
	for _, p := range d.procs {
		_ = p.stdin.Close()
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
	}
	for _, p := range d.procs {
		// Drain the pump goroutine so it can exit, then reap the process.
		for range p.inbox {
		}
		_ = p.cmd.Wait()
	}
	d.procs = nil
}
