package scenario

import (
	"fmt"
	"sort"
)

// Canned returns the standard scenario library, sorted by name. Every
// entry is ready to run at its default size; cmd/aggscen rescales N on
// request (fraction-based events scale with it).
func Canned() []Scenario {
	scenarios := []Scenario{
		{
			Name: "steady-churn",
			Description: "1% of the network is replaced by fresh nodes every cycle " +
				"(fig 6b/8a regime); the estimate must stay near the true mean despite " +
				"continuous membership turnover",
			N: 1000, Cycles: 90, Seed: 11,
			Events: []Event{
				{Kind: KindChurn, At: 1, Fraction: 0.01},
			},
		},
		{
			Name: "flash-crowd",
			Description: "50% more nodes join at once mid-run; joiners sit out the " +
				"running epoch (§4.2) and are folded in at the next restart",
			N: 1000, Cycles: 90, Seed: 12,
			Events: []Event{
				{Kind: KindJoin, At: 35, Fraction: 0.5},
			},
		},
		{
			Name: "correlated-crash",
			Description: "half the network crashes simultaneously (fig 6a sudden " +
				"death); the surviving estimate mean must remain the survivors' mean",
			N: 1000, Cycles: 90, Seed: 13,
			Events: []Event{
				{Kind: KindCrash, At: 45, Fraction: 0.5},
			},
		},
		{
			Name: "partition-heal",
			Description: "the network splits into two equal components at cycle 10 " +
				"and heals at cycle 40; mass conservation holds through the " +
				"partition and the estimate re-converges to the true aggregate " +
				"after the heal",
			N: 1000, Cycles: 90, Seed: 14,
			Events: []Event{
				{Kind: KindPartition, At: 10, Groups: []float64{1, 1}},
				{Kind: KindHeal, At: 40},
			},
		},
		{
			Name: "partition-stall",
			Description: "a partition opens right after the epoch starts and lasts " +
				"most of it: each island converges internally while the global " +
				"estimate spread plateaus, the signature the convergence_stall " +
				"health rule detects; the heal lets the fleet finish converging " +
				"and the alert clear",
			N: 1000, Cycles: 50, EpochLen: 50, Seed: 18,
			Events: []Event{
				{Kind: KindPartition, At: 2, Groups: []float64{1, 1}},
				{Kind: KindHeal, At: 35},
			},
		},
		{
			Name: "loss-burst",
			Description: "30% message loss for one full epoch (fig 7b/8b regime), " +
				"then clean air; the restart mechanism flushes the accumulated error",
			N: 1000, Cycles: 90, Seed: 15,
			Events: []Event{
				{Kind: KindLoss, At: 31, Until: 60, Rate: 0.3},
			},
		},
		{
			Name: "value-drift",
			Description: "every node's local value ramps by +50 over the run with a " +
				"superimposed oscillation; epoch restarts (§4.1) make the output " +
				"track the moving aggregate with one epoch of lag",
			N: 1000, Cycles: 120, Seed: 16,
			Events: []Event{
				{Kind: KindValueRamp, At: 1, Until: 90, Delta: 50},
				{Kind: KindValueOscillate, At: 1, Amplitude: 10, Period: 20},
			},
		},
		{
			Name: "inject-extreme",
			Description: "5% of the nodes are Byzantine and restart every epoch with a " +
				"huge local value; the defended run takes the median-of-k per merge, " +
				"so a single extreme peer sample is outvoted instead of averaged in " +
				"(compare against the honest twin for the induced bias)",
			N: 1000, Cycles: 90, Seed: 19,
			Adversaries: []Adversary{
				{Behavior: BehaviorInjectExtreme, Fraction: 0.05, Value: 1e12},
			},
			Defense: Defense{Combiner: "median-of-k", Samples: 5},
		},
		{
			Name: "sybil-flood",
			Description: "an attacker joins 20 fake identities per cycle for two epochs, " +
				"each reporting an inflated value; the epoch-scoped join cap admits at " +
				"most 30 joins per epoch and the clamped mean bounds what each admitted " +
				"sybil can inject",
			N: 1000, Cycles: 90, Seed: 20,
			Adversaries: []Adversary{
				{Behavior: BehaviorSybilFlood, At: 31, Until: 60, Rate: 20, Value: 1e9},
			},
			Defense: Defense{
				Combiner: "clamped-mean", ClampMin: -1e6, ClampMax: 1e6,
				JoinCap: 30,
			},
		},
		{
			Name: "rolling-restart",
			Description: "a deployment-style rolling restart: 10% of the nodes crash " +
				"in waves every 10 cycles and are restarted 5 cycles later, under " +
				"5% background message loss and a brief delay burst",
			N: 1000, Cycles: 90, Seed: 17, MessageLoss: 0.05,
			Events: []Event{
				{Kind: KindCrash, At: 10, Until: 70, Every: 10, Fraction: 0.1},
				{Kind: KindRestart, At: 15, Until: 75, Every: 10, Fraction: 0.1},
				{Kind: KindDelay, At: 40, Until: 50, MinDelayMs: 1, MaxDelayMs: 4},
			},
		},
	}
	for i, s := range scenarios {
		scenarios[i] = s.WithDefaults()
	}
	sort.Slice(scenarios, func(i, j int) bool { return scenarios[i].Name < scenarios[j].Name })
	return scenarios
}

// ByName finds a canned scenario.
func ByName(name string) (Scenario, error) {
	for _, s := range Canned() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (see Canned)", name)
}
