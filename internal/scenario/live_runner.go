package scenario

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"antientropy/internal/agent"
	"antientropy/internal/core"
	"antientropy/internal/stats"
	"antientropy/internal/transport"
)

// LiveOptions tune the live-fleet executor.
type LiveOptions struct {
	// CycleLen is δ, the wall-clock length of one protocol cycle. The
	// default scales with the fleet size and the machine's cores so that
	// every node can complete its exchange within a cycle — a too-short δ
	// starves the fleet and convergence stalls.
	CycleLen time.Duration
	// CacheSize is the NEWSCAST cache capacity (default 30).
	CacheSize int
	// Logger receives node debug events (default: discard).
	Logger *slog.Logger
}

func (o LiveOptions) withDefaults(fleet int) LiveOptions {
	if o.CycleLen <= 0 {
		// Budget ~150µs of single-core compute per node per cycle (two
		// goroutine wakeups, two piggybacked-gossip datagrams, timer
		// churn), spread across the available cores, with a 15ms floor
		// for timer accuracy. Measured on one core, a 1000-node fleet
		// converges cleanly at 150ms cycles and starves at 50ms.
		perCore := 150 * time.Microsecond / time.Duration(runtime.GOMAXPROCS(0))
		o.CycleLen = time.Duration(fleet) * perCore
		if o.CycleLen < 15*time.Millisecond {
			o.CycleLen = 15 * time.Millisecond
		}
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 30
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// liveSlot tracks one node slot of the fleet.
type liveSlot struct {
	node  *agent.Node
	addr  string
	alive bool
}

// RunLive executes the scenario against a fleet of real agent nodes over
// the in-memory transport: every node runs the paper's active/passive
// goroutine pair with real timers, epochs and joins; partitions, loss and
// delay bursts are injected at the transport layer. Unlike the simulator
// executor the run is wall-clock driven and therefore not bit-for-bit
// deterministic, but it chases the identical scripted value signal, so
// the two metric streams are directly comparable.
func RunLive(ctx context.Context, sc Scenario, opts LiveOptions) (*RunResult, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(sc.MaxSlots())

	slots := sc.MaxSlots()
	prog := NewValueProgram(sc, slots)
	rng := stats.NewRNG(sc.Seed ^ 0x6c6976652d72756e)
	net := transport.NewMemNetwork(transport.MemNetworkConfig{
		Loss: sc.MessageLoss,
		Seed: int64(sc.Seed) + 1,
	})
	defer net.Close()

	schedule := core.Schedule{
		Start:    time.Now(),
		Delta:    time.Duration(sc.EpochLen) * opts.CycleLen,
		CycleLen: opts.CycleLen,
		Gamma:    sc.EpochLen,
	}

	d := &liveDriver{
		sc:    sc,
		prog:  prog,
		slots: make([]liveSlot, slots),
		rng:   rng,
		net:   net,
		opts:  opts,
		sched: schedule,
		ctx:   ctx,

		nextJoin: sc.N,
	}
	defer d.stopAll()

	// Found the deployment: the initial fleet bootstraps its NEWSCAST
	// caches from the full address list and starts in the first epoch.
	endpoints := make([]*transport.MemEndpoint, sc.N)
	bootstrap := make([]string, sc.N)
	for slot := 0; slot < sc.N; slot++ {
		endpoints[slot] = net.Endpoint()
		bootstrap[slot] = endpoints[slot].Addr()
		d.slots[slot].addr = bootstrap[slot]
	}
	for slot := 0; slot < sc.N; slot++ {
		node, err := d.newNode(slot, endpoints[slot], nil, bootstrap)
		if err != nil {
			return nil, err
		}
		d.slots[slot].node = node
	}
	for slot := 0; slot < sc.N; slot++ {
		if err := d.slots[slot].node.Start(ctx); err != nil {
			return nil, fmt.Errorf("scenario %s: starting node %d: %w", sc.Name, slot, err)
		}
		d.slots[slot].alive = true
	}

	result := &RunResult{
		Scenario: sc.Name, Executor: "live",
		N: sc.N, Slots: slots, Seed: sc.Seed,
		PerCycle: make([]CycleMetrics, 0, sc.Cycles+1),
	}

	// Founding a large fleet takes real time, during which the nodes'
	// wall-clock schedule has been running. Anchor scenario cycle 1 to
	// the next epoch boundary so scripted cycles line up exactly with the
	// fleet's epoch restarts, and derive every event/sample instant from
	// that anchor — a free-running ticker would slowly drift into the
	// restart edges.
	startEpoch := time.Since(schedule.Start)/schedule.Delta + 1
	base := schedule.Start.Add(startEpoch * schedule.Delta)

	if err := sleepUntil(ctx, base.Add(-opts.CycleLen/2)); err != nil {
		return nil, err
	}
	result.PerCycle = append(result.PerCycle, d.sample(0))
	for cycle := 1; cycle <= sc.Cycles; cycle++ {
		edge := base.Add(time.Duration(cycle-1) * opts.CycleLen)
		if err := sleepUntil(ctx, edge); err != nil {
			return nil, err
		}
		d.cycleNow.Store(int64(cycle))
		if err := d.applyEvents(cycle); err != nil {
			return nil, err
		}
		// Sample halfway into the cycle: node epochs flip at the cycle
		// edges (staggered by their random phases), and sampling during
		// the flip would mix estimates from two epochs.
		if err := sleepUntil(ctx, edge.Add(opts.CycleLen/2)); err != nil {
			return nil, err
		}
		result.PerCycle = append(result.PerCycle, d.sample(cycle))
	}
	return result, nil
}

// sleepUntil blocks until the wall-clock instant t or ctx cancellation.
func sleepUntil(ctx context.Context, t time.Time) error {
	wait := time.Until(t)
	if wait <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// liveDriver owns the fleet and the mutable script state.
type liveDriver struct {
	sc    Scenario
	prog  *ValueProgram
	slots []liveSlot
	rng   *stats.RNG
	net   *transport.MemNetwork
	opts  LiveOptions
	sched core.Schedule
	ctx   context.Context

	// cycleNow is the driver's cycle clock; node Value suppliers read it
	// so epoch restarts sample the scripted signal at the current cycle.
	cycleNow atomic.Int64

	nextJoin int
	crashed  []int

	groupOf        []int
	partitionOn    bool
	partitionUntil int

	// retiredMessages preserves the exchange counts of stopped nodes so
	// the per-cycle message metric stays monotonic.
	retiredMessages int64
	prevMessages    int64

	stopping sync.WaitGroup
}

// newNode builds (but does not start) the agent for a slot.
func (d *liveDriver) newNode(slot int, ep transport.Endpoint, seeds, bootstrap []string) (*agent.Node, error) {
	node, err := agent.New(agent.Config{
		Endpoint:  ep,
		Schedule:  d.sched,
		Function:  core.Average,
		Value:     func() float64 { return d.prog.Value(slot, int(d.cycleNow.Load())) },
		CacheSize: d.opts.CacheSize,
		Seeds:     seeds,
		Bootstrap: bootstrap,
		Seed:      d.sc.Seed + uint64(slot)*0x9e3779b97f4a7c15 + 1,
		Logger:    d.opts.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: building node %d: %w", d.sc.Name, slot, err)
	}
	return node, nil
}

// applyEvents runs the script for one wall-clock cycle.
func (d *liveDriver) applyEvents(cycle int) error {
	if d.partitionOn && d.partitionUntil > 0 && cycle > d.partitionUntil {
		d.heal()
	}
	d.net.SetLoss(d.effectiveLoss(cycle))
	d.applyDelay(cycle)
	for _, ev := range d.sc.Events {
		if !ev.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		switch ev.Kind {
		case KindCrash:
			count := ev.resolveCount(d.aliveCount())
			for k := 0; k < count && d.aliveCount() > 1; k++ {
				d.crash(d.randomAlive())
			}
		case KindChurn:
			count := ev.resolveCount(d.aliveCount())
			for k := 0; k < count && d.aliveCount() > 1; k++ {
				slot := d.randomAlive()
				d.crash(slot)
				if err := d.startJoiner(slot); err != nil {
					return err
				}
				d.crashed = d.crashed[:len(d.crashed)-1] // slot reused, not available
			}
		case KindJoin:
			count := ev.resolveCount(d.sc.N)
			for k := 0; k < count; k++ {
				slot, ok := d.takeJoinSlot()
				if !ok {
					break
				}
				if err := d.startJoiner(slot); err != nil {
					return err
				}
			}
		case KindRestart:
			count := ev.resolveCount(d.aliveCount())
			for k := 0; k < count && len(d.crashed) > 0; k++ {
				slot := d.crashed[len(d.crashed)-1]
				d.crashed = d.crashed[:len(d.crashed)-1]
				if err := d.startJoiner(slot); err != nil {
					return err
				}
			}
		case KindPartition:
			// Fire once at At (see the sim executor): re-splitting every
			// cycle of the [At, Until] window would re-randomize the
			// components.
			if cycle == ev.At {
				d.partition(ev)
			}
		case KindHeal:
			d.heal()
		}
	}
	return nil
}

// crash stops a node ungracefully (its endpoint vanishes; peers time
// out). The stop completes in the background so one tick can crash many
// nodes without stalling the clock.
func (d *liveDriver) crash(slot int) {
	s := &d.slots[slot]
	if !s.alive {
		return
	}
	s.alive = false
	d.crashed = append(d.crashed, slot)
	d.retiredMessages += s.node.Metrics().ExchangesInitiated
	node := s.node
	d.stopping.Add(1)
	go func() {
		defer d.stopping.Done()
		_ = node.Stop()
	}()
}

// startJoiner brings a slot up as a brand-new identity performing the
// §4.2 join: it seeds from live contacts and participates from the next
// epoch on.
func (d *liveDriver) startJoiner(slot int) error {
	ep := d.net.Endpoint()
	seeds := d.seedAddrs(3)
	node, err := d.newNode(slot, ep, seeds, nil)
	if err != nil {
		return err
	}
	if err := node.Start(d.ctx); err != nil {
		return fmt.Errorf("scenario %s: starting joiner %d: %w", d.sc.Name, slot, err)
	}
	d.slots[slot] = liveSlot{node: node, addr: ep.Addr(), alive: true}
	if d.partitionOn {
		d.net.AssignGroup(ep.Addr(), d.groupOf[slot])
	}
	return nil
}

// seedAddrs samples up to n live contact addresses.
func (d *liveDriver) seedAddrs(n int) []string {
	live := d.liveSlots()
	if len(live) == 0 {
		return nil
	}
	seeds := make([]string, 0, n)
	for k := 0; k < n; k++ {
		slot := live[d.rng.Intn(len(live))]
		seeds = append(seeds, d.slots[slot].addr)
	}
	return seeds
}

func (d *liveDriver) takeJoinSlot() (int, bool) {
	if d.nextJoin < len(d.slots) {
		slot := d.nextJoin
		d.nextJoin++
		return slot, true
	}
	if len(d.crashed) > 0 {
		slot := d.crashed[len(d.crashed)-1]
		d.crashed = d.crashed[:len(d.crashed)-1]
		return slot, true
	}
	return 0, false
}

func (d *liveDriver) aliveCount() int {
	count := 0
	for i := range d.slots {
		if d.slots[i].alive {
			count++
		}
	}
	return count
}

func (d *liveDriver) liveSlots() []int {
	live := make([]int, 0, len(d.slots))
	for i := range d.slots {
		if d.slots[i].alive {
			live = append(live, i)
		}
	}
	return live
}

func (d *liveDriver) randomAlive() int {
	live := d.liveSlots()
	return live[d.rng.Intn(len(live))]
}

// effectiveLoss mirrors the simulator executor's rule.
func (d *liveDriver) effectiveLoss(cycle int) float64 {
	loss := d.sc.MessageLoss
	for _, ev := range d.sc.Events {
		if ev.Kind != KindLoss {
			continue
		}
		if from, to := ev.window(d.sc.Cycles); cycle >= from && cycle <= to {
			loss = ev.Rate
		}
	}
	return loss
}

// applyDelay raises transport latency while a delay burst is active.
func (d *liveDriver) applyDelay(cycle int) {
	var min, max time.Duration
	for _, ev := range d.sc.Events {
		if ev.Kind != KindDelay {
			continue
		}
		if from, to := ev.window(d.sc.Cycles); cycle >= from && cycle <= to {
			min = time.Duration(ev.MinDelayMs) * time.Millisecond
			max = time.Duration(ev.MaxDelayMs) * time.Millisecond
		}
	}
	d.net.SetLatency(min, max)
}

// partition splits the fleet at the transport layer: every slot gets a
// component, live addresses are registered, and cross-component
// datagrams drop until the heal.
func (d *liveDriver) partition(ev Event) {
	var total float64
	for _, w := range ev.Groups {
		total += w
	}
	perm := make([]int, len(d.slots))
	d.rng.Perm(perm)
	d.groupOf = make([]int, len(d.slots))
	start := 0
	acc := 0.0
	for g, w := range ev.Groups {
		acc += w
		end := int(acc / total * float64(len(d.slots)))
		if g == len(ev.Groups)-1 {
			end = len(d.slots)
		}
		for _, slot := range perm[start:end] {
			d.groupOf[slot] = g
		}
		start = end
	}
	groups := make(map[string]int, len(d.slots))
	for slot := range d.slots {
		if d.slots[slot].alive {
			groups[d.slots[slot].addr] = d.groupOf[slot]
		}
	}
	d.partitionOn = true
	d.partitionUntil = ev.Until
	d.net.PartitionGroups(groups)
}

func (d *liveDriver) heal() {
	wasOn := d.partitionOn
	d.partitionOn = false
	d.partitionUntil = 0
	d.net.HealGroups()
	if !wasOn {
		return
	}
	// Rendezvous refresh: after a partition longer than the cache
	// lifetime, each side has evicted every descriptor of the other, so
	// gossip alone can never remerge the overlay. Real deployments
	// re-learn peers out-of-band (seed lists, DNS); model that by handing
	// a few nodes per component fresh contacts from the other components —
	// epidemic gossip spreads the bridge from there.
	byGroup := make(map[int][]int)
	for _, slot := range d.liveSlots() {
		g := d.groupOf[slot]
		byGroup[g] = append(byGroup[g], slot)
	}
	const bridgesPerGroup, contactsPerBridge = 4, 3
	for g, members := range byGroup {
		var others []int
		for og, om := range byGroup {
			if og != g {
				others = append(others, om...)
			}
		}
		if len(others) == 0 {
			continue
		}
		for b := 0; b < bridgesPerGroup && b < len(members); b++ {
			bridge := members[d.rng.Intn(len(members))]
			contacts := make([]string, 0, contactsPerBridge)
			for c := 0; c < contactsPerBridge; c++ {
				contacts = append(contacts, d.slots[others[d.rng.Intn(len(others))]].addr)
			}
			d.slots[bridge].node.AddContacts(contacts)
		}
	}
}

// sample builds one cycle's metrics row from the fleet.
func (d *liveDriver) sample(cycle int) CycleMetrics {
	var est, truth stats.Moments
	participating := 0
	var messages int64
	for i := range d.slots {
		s := &d.slots[i]
		if !s.alive {
			continue
		}
		truth.Add(d.prog.Value(i, cycle))
		messages += s.node.Metrics().ExchangesInitiated
		if !s.node.Participating() {
			continue
		}
		participating++
		if v, ok := s.node.Estimate(); ok {
			est.Add(v)
		}
	}
	messages += d.retiredMessages
	delta := messages - d.prevMessages
	d.prevMessages = messages
	epoch := 0
	if cycle > 0 {
		epoch = (cycle - 1) / d.sc.EpochLen
	}
	return CycleMetrics{
		Cycle:          cycle,
		Epoch:          epoch,
		Alive:          truth.N(),
		Participating:  participating,
		TrueMean:       truth.Mean(),
		MeanEstimate:   est.Mean(),
		EstimateStdDev: est.StdDev(),
		RelError:       relError(est.Mean(), truth.Mean()),
		Messages:       delta,
	}
}

// stopAll terminates every live node and waits for background stops.
func (d *liveDriver) stopAll() {
	for i := range d.slots {
		if d.slots[i].alive {
			d.slots[i].alive = false
			_ = d.slots[i].node.Stop()
		}
	}
	d.stopping.Wait()
}
