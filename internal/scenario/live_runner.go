package scenario

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"antientropy/internal/agent"
	"antientropy/internal/core"
	"antientropy/internal/obs"
	"antientropy/internal/stats"
	"antientropy/internal/transport"
)

// LiveOptions tune the live-fleet executor.
type LiveOptions struct {
	// CycleLen is δ, the wall-clock length of one protocol cycle. The
	// default scales with the fleet size and the machine's cores so that
	// every node can complete its exchange within a cycle — a too-short δ
	// starves the fleet and convergence stalls.
	CycleLen time.Duration
	// CacheSize is the NEWSCAST cache capacity (default 30).
	CacheSize int
	// Logger receives node debug events (default: discard).
	Logger *slog.Logger
	// Obs, when set, exposes the fleet on a metrics registry: the
	// aggregated agent counters (agg_*_total, summed over live nodes plus
	// crash-retired ones), one shared agg_exchange_rtt_seconds histogram,
	// the per-cycle scenario gauges and the convergence watch. Scrapes
	// read atomics and never block the protocol.
	Obs *obs.Registry
	// Trace, when set, receives exchange-lifecycle events from every node
	// of the fleet (one shared bounded ring).
	Trace *obs.TraceRing
	// Timeline, when set, receives one flight-recorder snapshot per
	// sampled cycle (see obs.Timeline). Health rules are evaluated
	// whenever Obs or Timeline is set, logging alert transitions to
	// Logger.
	Timeline *obs.Timeline
}

func (o LiveOptions) withDefaults(fleet int) LiveOptions {
	if o.CycleLen <= 0 {
		// Budget ~150µs of single-core compute per node per cycle (two
		// goroutine wakeups, two piggybacked-gossip datagrams, timer
		// churn), spread across the available cores, with a 15ms floor
		// for timer accuracy. Measured on one core, a 1000-node fleet
		// converges cleanly at 150ms cycles and starves at 50ms.
		perCore := 150 * time.Microsecond / time.Duration(runtime.GOMAXPROCS(0))
		o.CycleLen = time.Duration(fleet) * perCore
		if o.CycleLen < 15*time.Millisecond {
			o.CycleLen = 15 * time.Millisecond
		}
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 30
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// RunLive executes the scenario against a fleet of real agent nodes over
// the in-memory transport: every node runs the paper's active/passive
// goroutine pair with real timers, epochs and joins; partitions, loss and
// delay bursts are injected at the transport layer. Unlike the simulator
// executor the run is wall-clock driven and therefore not bit-for-bit
// deterministic, but it chases the identical scripted value signal, so
// the two metric streams are directly comparable.
func RunLive(ctx context.Context, sc Scenario, opts LiveOptions) (*RunResult, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(sc.MaxSlots())

	slots := sc.MaxSlots()
	prog := NewValueProgram(sc, slots)
	rng := stats.NewRNG(sc.Seed ^ 0x6c6976652d72756e)
	net := transport.NewMemNetwork(transport.MemNetworkConfig{
		Loss: sc.MessageLoss,
		Seed: int64(sc.Seed) + 1,
	})
	defer net.Close()

	schedule := core.Schedule{
		Start:    time.Now(),
		Delta:    time.Duration(sc.EpochLen) * opts.CycleLen,
		CycleLen: opts.CycleLen,
		Gamma:    sc.EpochLen,
	}

	d := &liveDriver{
		sc:     sc,
		prog:   prog,
		roster: newFleetRoster(slots, sc.N),
		nodes:  make([]*agent.Node, slots),
		rng:    rng,
		net:    net,
		opts:   opts,
		sched:  schedule,
		ctx:    ctx,
		adv:    newAdvSchedule(sc, slots),
		sobs:   newScenarioObs(opts.Obs, opts.Timeline, opts.Logger),
	}
	if d.adv != nil {
		d.advStale = make([]liveStaleState, slots)
	}
	if c, err := sc.Defense.combiner(); err == nil {
		d.combiner = c // err pre-screened by Validate
	}
	if opts.Obs != nil && (d.adv != nil || sc.Defense.JoinCap > 0) {
		// Rebind the zero-valued adversary series newScenarioObs just
		// registered to this run's schedule. The lie and rejection counters
		// live in the per-node agent metrics; RegisterMetrics below rebinds
		// those to the fleet aggregation.
		adv := d.adv
		opts.Obs.GaugeFunc("agg_adversary_nodes", advNodesHelp, func() float64 {
			if adv == nil {
				return 0
			}
			return float64(adv.HostileCount())
		})
		opts.Obs.CounterFunc("agg_adversary_joins_refused_total", advRefusedHelp, func() int64 {
			return d.joinsRefused.Load()
		})
	}
	if opts.Obs != nil {
		d.rtt = opts.Obs.Histogram("agg_exchange_rtt_seconds",
			"Exchange round-trip latency, initiate to reply, in seconds.", obs.RTTBuckets)
		opts.Obs.GaugeFunc("agg_transport_queue_depth",
			"High watermark of the transport's internal queue depth.",
			func() float64 { return float64(net.QueueDepthHighWatermark()) })
		opts.Obs.HistogramFunc("agg_transport_batch_size",
			"Datagrams moved per batched socket operation.",
			func() obs.HistSnapshot { return net.BatchSizes() })
	}
	defer d.stopAll()

	// Found the deployment: the initial fleet bootstraps its NEWSCAST
	// caches from the full address list and starts in the first epoch.
	endpoints := make([]*transport.MemEndpoint, sc.N)
	bootstrap := make([]string, sc.N)
	for slot := 0; slot < sc.N; slot++ {
		endpoints[slot] = net.Endpoint()
		bootstrap[slot] = endpoints[slot].Addr()
		d.roster.addr[slot] = bootstrap[slot]
	}
	for slot := 0; slot < sc.N; slot++ {
		node, err := d.newNode(slot, endpoints[slot], nil, bootstrap)
		if err != nil {
			return nil, err
		}
		d.nodes[slot] = node
	}
	for slot := 0; slot < sc.N; slot++ {
		if err := d.nodes[slot].Start(ctx); err != nil {
			return nil, fmt.Errorf("scenario %s: starting node %d: %w", sc.Name, slot, err)
		}
		d.roster.alive[slot] = true
	}
	// Bind the scrape-time aggregation only once the fleet exists; from
	// here on every roster mutation happens under d.mu, so a concurrent
	// scrape always sees a consistent node set.
	agent.RegisterMetrics(opts.Obs, d.fleetMetrics)

	result := &RunResult{
		Scenario: sc.Name, Executor: "live",
		N: sc.N, Slots: slots, Seed: sc.Seed,
		PerCycle: make([]CycleMetrics, 0, sc.Cycles+1),
	}

	// Founding a large fleet takes real time, during which the nodes'
	// wall-clock schedule has been running. Anchor scenario cycle 1 to
	// the next epoch boundary so scripted cycles line up exactly with the
	// fleet's epoch restarts, and derive every event/sample instant from
	// that anchor — a free-running ticker would slowly drift into the
	// restart edges.
	startEpoch := time.Since(schedule.Start)/schedule.Delta + 1
	base := schedule.Start.Add(startEpoch * schedule.Delta)

	if err := sleepUntil(ctx, base.Add(-opts.CycleLen/2)); err != nil {
		return nil, err
	}
	result.PerCycle = append(result.PerCycle, d.sample(0))
	for cycle := 1; cycle <= sc.Cycles; cycle++ {
		edge := base.Add(time.Duration(cycle-1) * opts.CycleLen)
		if err := sleepUntil(ctx, edge); err != nil {
			return nil, err
		}
		d.cycleNow.Store(int64(cycle))
		d.mu.Lock()
		err := d.applyEvents(cycle)
		d.mu.Unlock()
		if err != nil {
			return nil, err
		}
		// Sample halfway into the cycle: node epochs flip at the cycle
		// edges (staggered by their random phases), and sampling during
		// the flip would mix estimates from two epochs.
		if err := sleepUntil(ctx, edge.Add(opts.CycleLen/2)); err != nil {
			return nil, err
		}
		result.PerCycle = append(result.PerCycle, d.sample(cycle))
	}
	return result, nil
}

// sleepUntil blocks until the wall-clock instant t or ctx cancellation.
func sleepUntil(ctx context.Context, t time.Time) error {
	wait := time.Until(t)
	if wait <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// liveDriver owns the fleet and the mutable script state.
type liveDriver struct {
	sc     Scenario
	prog   *ValueProgram
	roster *fleetRoster
	nodes  []*agent.Node
	rng    *stats.RNG
	net    *transport.MemNetwork
	opts   LiveOptions
	sched  core.Schedule
	ctx    context.Context

	// cycleNow is the driver's cycle clock; node Value suppliers read it
	// so epoch restarts sample the scripted signal at the current cycle.
	cycleNow atomic.Int64

	// mu guards roster, nodes and retired against the telemetry scrape
	// goroutine: the driver mutates them while applying events and
	// sampling, fleetMetrics reads them from HTTP handlers.
	mu sync.Mutex

	part partitionState

	// retired preserves the counters of stopped nodes so the fleet
	// aggregates (and the per-cycle message metric) stay monotonic.
	retired      agent.Metrics
	prevMessages int64

	// rtt is the process-wide exchange round-trip histogram every node
	// feeds; sobs publishes the per-cycle gauges. Both nil without Obs.
	rtt  *obs.Histogram
	sobs *scenarioObs

	// adv is the run's Byzantine plan (nil for honest scenarios) — the
	// same seed-derived schedule the simulator executors materialize, so
	// the executors attack identical slots. advStale carries the
	// replay-stale attackers' lagged snapshots from the per-node output
	// subscriptions to the wire hooks; combiner is the defense's merge
	// policy handed to every node.
	adv      *advSchedule
	advStale []liveStaleState
	combiner core.Combiner

	// Epoch-scoped join-cap bookkeeping (the sybil-flood defense).
	// Honest script joins and sybil joins consume the same budget.
	joinEpoch      int
	joinsThisEpoch int
	joinsRefused   atomic.Int64

	stopping sync.WaitGroup
}

// fleetMetrics sums the live nodes' counters plus the retired totals —
// the scrape-time aggregation hook bound by RegisterMetrics.
func (d *liveDriver) fleetMetrics() agent.Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := d.retired
	for _, slot := range d.roster.liveSlots() {
		total.Accumulate(d.nodes[slot].Metrics())
	}
	return total
}

// newNode builds (but does not start) the agent for a slot. Slot-based
// adversary wiring happens here so a Byzantine slot that churns stays
// Byzantine, mirroring the simulator's slot-indexed schedule.
func (d *liveDriver) newNode(slot int, ep transport.Endpoint, seeds, bootstrap []string) (*agent.Node, error) {
	var hook func(uint64, float64) (float64, uint64, bool)
	if d.adv != nil {
		hook = d.adv.wireHook(slot, &d.advStale[slot], &d.cycleNow)
	}
	node, err := agent.New(agent.Config{
		Endpoint:     ep,
		Schedule:     d.sched,
		Function:     core.Average,
		Value:        liveValueSupplier(d.adv, d.prog, slot, &d.cycleNow),
		CacheSize:    d.opts.CacheSize,
		Seeds:        seeds,
		Bootstrap:    bootstrap,
		Seed:         d.sc.Seed + uint64(slot)*0x9e3779b97f4a7c15 + 1,
		Logger:       d.opts.Logger,
		RTT:          d.rtt,
		Trace:        d.opts.Trace,
		MaxViewBytes: d.sc.ViewCapBytes,
		Adversary:    hook,
		Combiner:     d.combiner,
		CombinerK:    d.sc.Defense.Samples,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: building node %d: %w", d.sc.Name, slot, err)
	}
	if d.adv != nil {
		if lag := d.adv.replayLag(slot); lag > 0 {
			replayWatch(node, &d.advStale[slot], lag, &d.stopping)
		}
	}
	return node, nil
}

// admitJoin applies the defense's epoch-scoped join cap. The cap cannot
// tell an honest joiner from an attacker: both draw from one budget.
func (d *liveDriver) admitJoin() bool {
	if cap := d.sc.Defense.JoinCap; cap > 0 && d.joinsThisEpoch >= cap {
		d.joinsRefused.Add(1)
		return false
	}
	d.joinsThisEpoch++
	return true
}

// sybilJoins lands the active sybil-flood attackers' joiners for the
// cycle. Each lands as a real joining node whose value supplier reports
// the configured sybil value; marking the slot before the node starts
// makes the supplier see it from the first restart.
func (d *liveDriver) sybilJoins(cycle int) error {
	if d.adv == nil {
		return nil
	}
	for ai, a := range d.sc.Adversaries {
		if a.Behavior != BehaviorSybilFlood || !a.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		for k := 0; k < a.Rate; k++ {
			if !d.admitJoin() {
				continue
			}
			slot, ok := d.roster.takeJoinSlot()
			if !ok {
				return nil
			}
			d.adv.markSybil(slot, ai)
			if err := d.startJoiner(slot); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyEvents runs the script for one wall-clock cycle.
func (d *liveDriver) applyEvents(cycle int) error {
	if epoch := (cycle - 1) / d.sc.EpochLen; epoch != d.joinEpoch {
		d.joinEpoch, d.joinsThisEpoch = epoch, 0
	}
	if d.part.expired(cycle) {
		d.heal()
	}
	d.net.SetLoss(d.sc.effectiveLoss(cycle))
	d.applyDelay(cycle)
	for _, ev := range d.sc.Events {
		if !ev.activeAt(cycle, d.sc.Cycles) {
			continue
		}
		switch ev.Kind {
		case KindCrash:
			count := ev.resolveCount(d.roster.aliveCount())
			for k := 0; k < count && d.roster.aliveCount() > 1; k++ {
				d.crash(d.roster.randomAlive(d.rng))
			}
		case KindChurn:
			count := ev.resolveCount(d.roster.aliveCount())
			for k := 0; k < count && d.roster.aliveCount() > 1; k++ {
				slot := d.roster.randomAlive(d.rng)
				d.crash(slot)
				if err := d.startJoiner(slot); err != nil {
					return err
				}
				d.roster.popCrashed() // slot reused, not available for restarts
			}
		case KindJoin:
			count := ev.resolveCount(d.sc.N)
			for k := 0; k < count; k++ {
				if !d.admitJoin() {
					continue
				}
				slot, ok := d.roster.takeJoinSlot()
				if !ok {
					break
				}
				if err := d.startJoiner(slot); err != nil {
					return err
				}
			}
		case KindRestart:
			count := ev.resolveCount(d.roster.aliveCount())
			for k := 0; k < count; k++ {
				slot, ok := d.roster.popCrashed()
				if !ok {
					break
				}
				if err := d.startJoiner(slot); err != nil {
					return err
				}
			}
		case KindPartition:
			// Fire once at At (see the sim executor): re-splitting every
			// cycle of the [At, Until] window would re-randomize the
			// components.
			if cycle == ev.At {
				d.partition(ev)
			}
		case KindHeal:
			d.heal()
		}
	}
	return d.sybilJoins(cycle)
}

// crash stops a node ungracefully (its endpoint vanishes; peers time
// out). The stop completes in the background so one tick can crash many
// nodes without stalling the clock.
func (d *liveDriver) crash(slot int) {
	if !d.roster.alive[slot] {
		return
	}
	d.roster.markCrashed(slot)
	d.retired.Accumulate(d.nodes[slot].Metrics())
	node := d.nodes[slot]
	d.stopping.Add(1)
	go func() {
		defer d.stopping.Done()
		_ = node.Stop()
	}()
}

// startJoiner brings a slot up as a brand-new identity performing the
// §4.2 join: it seeds from live contacts and participates from the next
// epoch on.
func (d *liveDriver) startJoiner(slot int) error {
	ep := d.net.Endpoint()
	seeds := d.roster.seedAddrs(d.rng, 3)
	node, err := d.newNode(slot, ep, seeds, nil)
	if err != nil {
		return err
	}
	if err := node.Start(d.ctx); err != nil {
		return fmt.Errorf("scenario %s: starting joiner %d: %w", d.sc.Name, slot, err)
	}
	d.nodes[slot] = node
	d.roster.addr[slot] = ep.Addr()
	d.roster.alive[slot] = true
	if d.part.on {
		d.net.AssignGroup(ep.Addr(), d.part.groupOf[slot])
	}
	return nil
}

// applyDelay raises transport latency while a delay burst is active.
func (d *liveDriver) applyDelay(cycle int) {
	var min, max time.Duration
	for _, ev := range d.sc.Events {
		if ev.Kind != KindDelay {
			continue
		}
		if from, to := ev.window(d.sc.Cycles); cycle >= from && cycle <= to {
			min = time.Duration(ev.MinDelayMs) * time.Millisecond
			max = time.Duration(ev.MaxDelayMs) * time.Millisecond
		}
	}
	d.net.SetLatency(min, max)
}

// partition splits the fleet at the transport layer: every slot gets a
// component, live addresses are registered, and cross-component
// datagrams drop until the heal.
func (d *liveDriver) partition(ev Event) {
	d.part.activate(partitionComponents(d.rng, len(d.roster.alive), ev.Groups), ev.Until)
	groups := make(map[string]int, len(d.roster.alive))
	for _, slot := range d.roster.liveSlots() {
		groups[d.roster.addr[slot]] = d.part.groupOf[slot]
	}
	d.net.PartitionGroups(groups)
}

// heal removes the partition and performs the rendezvous refresh (see
// bridgeContacts): a few bridge nodes per component learn contacts from
// the other components out-of-band, and gossip remerges the overlay.
func (d *liveDriver) heal() {
	wasOn := d.part.clear()
	d.net.HealGroups()
	if !wasOn {
		return
	}
	for _, bc := range bridgeContacts(d.rng, d.roster, d.part.groupOf) {
		d.nodes[bc.slot].AddContacts(bc.addrs)
	}
}

// sample builds one cycle's metrics row from the fleet.
func (d *liveDriver) sample(cycle int) CycleMetrics {
	d.mu.Lock()
	var est, truth stats.Moments
	alive, participating := 0, 0
	totals := d.retired
	// Under an adversary the estimate and truth moments cover the honest
	// population only (matching the simulator executors): the attack's
	// impact is what leaks into honest estimates, and the value signal
	// attacker-controlled slots would contribute is fake. Alive and
	// participating still count everyone — hostile nodes are real nodes.
	for _, slot := range d.roster.liveSlots() {
		node := d.nodes[slot]
		alive++
		totals.Accumulate(node.Metrics())
		hostile := d.adv != nil && d.adv.hostile(slot)
		if !hostile {
			truth.Add(d.prog.Value(slot, cycle))
		}
		if !node.Participating() {
			continue
		}
		participating++
		if hostile {
			continue
		}
		if v, ok := node.Estimate(); ok {
			est.Add(v)
		}
	}
	d.mu.Unlock()
	messages := totals.ExchangesInitiated
	delta := messages - d.prevMessages
	d.prevMessages = messages
	epoch := 0
	if cycle > 0 {
		epoch = (cycle - 1) / d.sc.EpochLen
	}
	row := CycleMetrics{
		Cycle:          cycle,
		Epoch:          epoch,
		Alive:          alive,
		Participating:  participating,
		TrueMean:       truth.Mean(),
		MeanEstimate:   est.Mean(),
		EstimateStdDev: est.StdDev(),
		RelError:       relError(est.Mean(), truth.Mean()),
		Messages:       delta,
	}
	d.sobs.observe(row, protoTotals{
		Initiated: totals.ExchangesInitiated,
		Completed: totals.ExchangesCompleted,
		Timeouts:  totals.Timeouts,
		Declined:  totals.PeerDeclined,
	})
	return row
}

// stopAll terminates every live node and waits for background stops.
// The final counters are folded into retired first, so a scrape after
// the run still reports the complete fleet totals.
func (d *liveDriver) stopAll() {
	d.mu.Lock()
	var stopping []*agent.Node
	for _, slot := range d.roster.liveSlots() {
		d.roster.alive[slot] = false
		d.retired.Accumulate(d.nodes[slot].Metrics())
		stopping = append(stopping, d.nodes[slot])
	}
	d.mu.Unlock()
	for _, node := range stopping {
		_ = node.Stop()
	}
	d.stopping.Wait()
}
