// Package scenario is the declarative adversarial-workload engine of the
// library: a Scenario scripts timed events over a run — churn waves,
// correlated crashes, flash-crowd joins, network partitions and heals,
// message-loss and delay bursts, and value dynamics that move the tracked
// aggregate while the protocol runs.
//
// One Scenario drives two executors against the same script:
//
//   - RunSim executes it on the deterministic cycle-driven engine of
//     internal/sim (partitions enforced via the engine's exchange filter,
//     epoch restarts via Engine.Restart),
//   - RunLive executes it on a fleet of real internal/agent nodes over the
//     in-memory transport (partitions and loss injected at the transport
//     layer).
//
// Both emit the same per-cycle metrics (estimate mean/spread/error,
// message counts, live-node count), so simulator predictions can be
// compared directly against live-runtime behaviour. A standard library of
// canned scenarios lives in Canned; cmd/aggscen lists, runs and compares
// them.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"antientropy/internal/core"
)

// SchemaVersion is the current scenario JSON schema version. Version 1
// is the original DSL (events only); version 2 adds the adversary and
// defense sections. Files without a version field decode as the current
// version; files declaring a newer version are rejected.
const SchemaVersion = 2

// DecodeError is the typed error strict scenario decoding returns: an
// unknown field (a typo that would otherwise silently no-op), malformed
// JSON, or an unsupported schema version.
type DecodeError struct {
	// Reason classifies the failure: "unknown-field", "syntax" or
	// "version".
	Reason string
	// Err is the underlying decoder error, when any.
	Err error
}

// Error describes the decode failure.
func (e *DecodeError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("scenario: strict decode (%s)", e.Reason)
	}
	return fmt.Sprintf("scenario: strict decode (%s): %v", e.Reason, e.Err)
}

// Unwrap exposes the underlying decoder error.
func (e *DecodeError) Unwrap() error { return e.Err }

// Kind names a scenario event type.
type Kind string

// Event kinds.
const (
	// KindCrash kills Count nodes (or Fraction of the live ones) without
	// replacement. One-shot at At unless Every/Until extend it.
	KindCrash Kind = "crash"
	// KindChurn substitutes Count nodes (or Fraction of the live ones)
	// with brand-new identities every active cycle, keeping the size
	// constant while the composition changes (§4.2 joiners sit out the
	// running epoch). Durative: defaults to the whole run from At.
	KindChurn Kind = "churn"
	// KindJoin adds Count fresh nodes (or Fraction of the initial N).
	// Joiners participate from the next epoch. One-shot at At unless
	// Every/Until extend it.
	KindJoin Kind = "join"
	// KindRestart revives Count previously crashed slots as brand-new
	// joiners. One-shot at At unless Every/Until extend it.
	KindRestart Kind = "restart"
	// KindPartition splits the live network into len(Groups) components
	// with the given relative sizes; exchanges across components are
	// dropped. Active until a KindHeal event (or Until, when set).
	KindPartition Kind = "partition"
	// KindHeal removes the active partition.
	KindHeal Kind = "heal"
	// KindLoss overrides the per-message loss probability with Rate
	// during [At, Until] (Until 0 = to the end of the run).
	KindLoss Kind = "loss"
	// KindDelay raises one-way delivery latency to [MinDelayMs,
	// MaxDelayMs] during [At, Until]. Live executor only: the cycle-driven
	// simulator has no notion of sub-cycle time and ignores it.
	KindDelay Kind = "delay"
	// KindValueStep adds Delta to every node's local value from At on.
	KindValueStep Kind = "value-step"
	// KindValueRamp linearly drifts every node's local value by Delta in
	// total across [At, Until].
	KindValueRamp Kind = "value-ramp"
	// KindValueOscillate adds Amplitude·sin(2π·(cycle−At)/Period) to every
	// node's local value while active (Until 0 = to the end of the run).
	KindValueOscillate Kind = "value-oscillate"
)

// Event is one timed intervention of a scenario. Which fields are
// meaningful depends on Kind; Validate rejects nonsensical combinations.
type Event struct {
	// Kind selects the intervention.
	Kind Kind `json:"kind"`
	// At is the first cycle (1-based) the event applies.
	At int `json:"at"`
	// Until is the last cycle (inclusive) for durative events; 0 means
	// "one-shot" for discrete kinds (crash, join, restart) and "until the
	// end of the run" for durative ones (churn, loss, delay, oscillate).
	Until int `json:"until,omitempty"`
	// Every spaces repeated firings of discrete kinds within [At, Until]
	// (e.g. a crash wave every 5 cycles). Implies Until = end of run when
	// Until is 0.
	Every int `json:"every,omitempty"`
	// Count is the absolute number of nodes affected (crash/churn/join/
	// restart).
	Count int `json:"count,omitempty"`
	// Fraction expresses Count relative to the live population (crash,
	// churn) or the initial size (join). Ignored when Count is set.
	Fraction float64 `json:"fraction,omitempty"`
	// Groups are the relative component sizes of a partition; they are
	// normalized, so [1, 1] is an even split.
	Groups []float64 `json:"groups,omitempty"`
	// Rate is the message-loss probability of a KindLoss burst.
	Rate float64 `json:"rate,omitempty"`
	// Delta is the total value change of a step or ramp.
	Delta float64 `json:"delta,omitempty"`
	// Amplitude and Period parameterize a value oscillation.
	Amplitude float64 `json:"amplitude,omitempty"`
	Period    int     `json:"period,omitempty"`
	// MinDelayMs and MaxDelayMs bound a delay burst (live executor).
	MinDelayMs int `json:"minDelayMs,omitempty"`
	MaxDelayMs int `json:"maxDelayMs,omitempty"`
}

// durative reports whether the event spans a window by default.
func (ev Event) durative() bool {
	switch ev.Kind {
	case KindChurn, KindLoss, KindDelay, KindValueOscillate, KindValueRamp:
		return true
	default:
		return false
	}
}

// window resolves the event's active cycle range within a run of the
// given total length.
func (ev Event) window(total int) (from, to int) {
	from = ev.At
	to = ev.Until
	if to == 0 {
		if ev.durative() || ev.Every > 0 {
			to = total
		} else {
			to = ev.At
		}
	}
	return from, to
}

// activeAt reports whether the event fires at the given cycle.
func (ev Event) activeAt(cycle, total int) bool {
	from, to := ev.window(total)
	if cycle < from || cycle > to {
		return false
	}
	if ev.Every > 1 && (cycle-from)%ev.Every != 0 {
		return false
	}
	return true
}

// ValueSpec describes the distribution nodes draw their local values
// from, both at initialization and whenever a fresh identity joins.
type ValueSpec struct {
	// Kind selects the distribution: "const" (every node = Value),
	// "uniform" (uniform in [Lo, Hi)), "linear" (node i = i), or "peak"
	// (node 0 = Value, everyone else 0 — the paper's hardest case).
	// Default: "uniform" over [0, 100).
	Kind string `json:"kind,omitempty"`
	// Value is the constant (Kind "const") or the peak total (Kind
	// "peak").
	Value float64 `json:"value,omitempty"`
	// Lo and Hi bound the uniform distribution.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
}

// Behavior names a typed Byzantine behavior of the adversary section.
type Behavior string

// Adversary behaviors (schema version 2).
const (
	// BehaviorInjectExtreme makes Byzantine nodes report huge local
	// values (Value; NaN/Inf are screened to a huge finite default), the
	// value-poisoning attack on AVERAGE: the extreme mass diffuses into
	// every honest estimate.
	BehaviorInjectExtreme Behavior = "inject-extreme"
	// BehaviorLieEstimate makes Byzantine nodes answer exchanges with a
	// fixed (Value) or amplified (Amplify × honest) estimate while their
	// local state stays honest — wire-level lying, invisible to the
	// liar's own trajectory.
	BehaviorLieEstimate Behavior = "lie-estimate"
	// BehaviorReplayStale makes Byzantine nodes answer with the estimate
	// (and, on the live executors, the epoch tag) they held Lag epochs
	// ago — a replay attack the epoch-synchronization rules (§4.3)
	// already blunt on the live path.
	BehaviorReplayStale Behavior = "replay-stale"
	// BehaviorSybilFlood joins Rate attacker-controlled nodes per active
	// cycle, each reporting Value — mass dilution through fake
	// identities, countered by the defense section's epoch-scoped join
	// cap.
	BehaviorSybilFlood Behavior = "sybil-flood"
)

// Adversary is one scheduled Byzantine condition: during [At, Until] a
// deterministic set of nodes (Count, or Fraction of the initial
// population, chosen once per run from the scenario seed) exhibits the
// typed Behavior. Which fields are meaningful depends on Behavior;
// Validate rejects nonsensical combinations. Requires schema version 2.
type Adversary struct {
	// Behavior selects the attack.
	Behavior Behavior `json:"behavior"`
	// At is the first cycle (1-based) the attack is active; 0 means 1.
	At int `json:"at,omitempty"`
	// Until is the last active cycle (inclusive); 0 means the end of the
	// run.
	Until int `json:"until,omitempty"`
	// Count is the absolute number of Byzantine nodes; Fraction
	// expresses it relative to the initial population when Count is 0.
	// Not used by sybil-flood (which creates its own nodes).
	Count    int     `json:"count,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	// Value is the reported scalar: the injected local value
	// (inject-extreme, default 1e12), the fixed lie (lie-estimate, when
	// Amplify is 0) or the sybil nodes' local value (sybil-flood,
	// default 0).
	Value float64 `json:"value,omitempty"`
	// Amplify, when non-zero, makes lie-estimate report Amplify × the
	// honest estimate instead of the fixed Value.
	Amplify float64 `json:"amplify,omitempty"`
	// Lag is how many epochs back replay-stale answers from (default 1).
	Lag int `json:"lag,omitempty"`
	// Rate is the sybil-flood join rate in attacker nodes per active
	// cycle.
	Rate int `json:"rate,omitempty"`
}

// window resolves the adversary's active cycle range within a run of
// the given total length.
func (a Adversary) window(total int) (from, to int) {
	from, to = a.At, a.Until
	if from < 1 {
		from = 1
	}
	if to == 0 {
		to = total
	}
	return from, to
}

// activeAt reports whether the adversary is active at the given cycle.
func (a Adversary) activeAt(cycle, total int) bool {
	from, to := a.window(total)
	return cycle >= from && cycle <= to
}

// Defense configures the cheap countermeasures paired with the
// adversary section: a pluggable merge combiner (value clamping,
// outlier rejection by median vote) and an epoch-scoped join cap.
// Requires schema version 2.
type Defense struct {
	// Combiner selects the merge policy: "mean" (undefended baseline),
	// "clamped-mean" (requires ClampMin < ClampMax), "median-of-k" or
	// "trimmed-mean". Empty keeps the classical hardcoded push-pull
	// merge.
	Combiner string `json:"combiner,omitempty"`
	// ClampMin and ClampMax bound admissible peer-reported estimates for
	// the clamped-mean combiner.
	ClampMin float64 `json:"clampMin,omitempty"`
	ClampMax float64 `json:"clampMax,omitempty"`
	// Samples is k, the per-merge sample budget of the combiner window
	// (local + current peer + k−2 recent peers). 0 selects
	// core.DefaultMergeK.
	Samples int `json:"samples,omitempty"`
	// JoinCap caps accepted joins per epoch (0 = unlimited) — the
	// sybil-flood countermeasure. Honest and attacker joins count
	// alike; over-cap joins are refused and counted.
	JoinCap int `json:"joinCap,omitempty"`
}

// Enabled reports whether the defense changes anything.
func (d Defense) Enabled() bool { return d.Combiner != "" || d.JoinCap > 0 }

// combiner resolves the configured core.Combiner (nil when Combiner is
// empty). Call on a validated scenario.
func (d Defense) combiner() (core.Combiner, error) {
	if d.Combiner == "" {
		return nil, nil
	}
	return core.CombinerByName(d.Combiner, d.ClampMin, d.ClampMax)
}

// Scenario is one declarative run description, loadable from JSON.
type Scenario struct {
	// Version is the schema version (0 = current; see SchemaVersion).
	Version int `json:"version,omitempty"`
	// Name identifies the scenario (aggscen -run NAME).
	Name string `json:"name"`
	// Description summarizes what the scenario exercises.
	Description string `json:"description,omitempty"`
	// N is the initial network size.
	N int `json:"n"`
	// Cycles is the total run length.
	Cycles int `json:"cycles"`
	// EpochLen is γ, the number of cycles per epoch: at every epoch
	// boundary the protocol restarts from the current local values
	// (§4.1) and waiting joiners become participants (§4.2). Default 30.
	EpochLen int `json:"epochLen,omitempty"`
	// Seed drives all scenario randomness (victim picks, group
	// assignment, value draws). Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Values describes the local-value distribution.
	Values ValueSpec `json:"values,omitempty"`
	// MessageLoss is the baseline per-message drop probability; KindLoss
	// events override it while active.
	MessageLoss float64 `json:"messageLoss,omitempty"`
	// LinkFailure is the baseline per-exchange drop probability P_d
	// (simulator executor only).
	LinkFailure float64 `json:"linkFailure,omitempty"`
	// ViewCapBytes caps the encoded piggybacked membership view per
	// exchange datagram, in bytes (0 = unlimited). The overlay tolerates
	// partial views (§4): trimmed descriptors are resent by later frames.
	// Live executors only; the cycle-driven simulator has no wire.
	ViewCapBytes int `json:"viewCapBytes,omitempty"`
	// Events are the scripted interventions, applied in order each cycle.
	Events []Event `json:"events,omitempty"`
	// Adversaries are the scheduled Byzantine conditions (version 2).
	Adversaries []Adversary `json:"adversaries,omitempty"`
	// Defense configures the countermeasures (version 2).
	Defense Defense `json:"defense,omitempty"`
}

// WithDefaults returns a copy with unset optional fields filled in.
func (s Scenario) WithDefaults() Scenario {
	if s.Version == 0 {
		s.Version = SchemaVersion
	}
	if s.EpochLen <= 0 {
		s.EpochLen = 30
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Values.Kind == "" {
		s.Values = ValueSpec{Kind: "uniform", Lo: 0, Hi: 100}
	}
	for i := range s.Adversaries {
		a := &s.Adversaries[i]
		if a.At < 1 {
			a.At = 1
		}
		switch a.Behavior {
		case BehaviorInjectExtreme:
			if a.Value == 0 || math.IsNaN(a.Value) || math.IsInf(a.Value, 0) {
				// "NaN-adjacent": huge but finite, so the undefended merge
				// arithmetic stays well-defined while the bias is massive.
				a.Value = 1e12
			}
		case BehaviorReplayStale:
			if a.Lag < 1 {
				a.Lag = 1
			}
		}
	}
	return s
}

// HasAdversary reports whether any adversary is configured.
func (s Scenario) HasAdversary() bool { return len(s.Adversaries) > 0 }

// HonestTwin returns the adversary-stripped copy of the scenario: same
// name, seed, events and defense, no Byzantine behavior. Running both
// with the same seed and engine isolates the attack's estimate bias
// (see Bias).
func (s Scenario) HonestTwin() Scenario {
	s.Adversaries = nil
	return s
}

// Validate reports the first configuration error, if any. Call on the
// WithDefaults form.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return errors.New("scenario: name is required")
	}
	if s.N < 2 {
		return fmt.Errorf("scenario %s: need at least 2 nodes, got %d", s.Name, s.N)
	}
	if s.Cycles < 1 {
		return fmt.Errorf("scenario %s: need at least 1 cycle, got %d", s.Name, s.Cycles)
	}
	if s.EpochLen < 1 {
		return fmt.Errorf("scenario %s: epoch length must be positive, got %d", s.Name, s.EpochLen)
	}
	if s.MessageLoss < 0 || s.MessageLoss >= 1 {
		return fmt.Errorf("scenario %s: message loss %g not in [0, 1)", s.Name, s.MessageLoss)
	}
	if s.ViewCapBytes < 0 {
		return fmt.Errorf("scenario %s: view cap %d bytes is negative", s.Name, s.ViewCapBytes)
	}
	if s.LinkFailure < 0 || s.LinkFailure >= 1 {
		return fmt.Errorf("scenario %s: link failure %g not in [0, 1)", s.Name, s.LinkFailure)
	}
	switch s.Values.Kind {
	case "const", "linear", "peak":
	case "uniform":
		if s.Values.Hi <= s.Values.Lo {
			return fmt.Errorf("scenario %s: uniform values need lo < hi", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown value distribution %q", s.Name, s.Values.Kind)
	}
	for i, ev := range s.Events {
		if err := s.validateEvent(ev); err != nil {
			return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
		}
	}
	if s.Version < 1 || s.Version > SchemaVersion {
		return fmt.Errorf("scenario %s: schema version %d not in [1, %d]", s.Name, s.Version, SchemaVersion)
	}
	if s.Version < 2 && (len(s.Adversaries) > 0 || s.Defense.Enabled()) {
		return fmt.Errorf("scenario %s: adversary and defense sections require schema version 2", s.Name)
	}
	for i, a := range s.Adversaries {
		if err := s.validateAdversary(a); err != nil {
			return fmt.Errorf("scenario %s: adversary %d: %w", s.Name, i, err)
		}
	}
	if err := s.validateDefense(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

func (s Scenario) validateAdversary(a Adversary) error {
	if a.At > s.Cycles {
		return fmt.Errorf("%s at cycle %d outside run of %d cycles", a.Behavior, a.At, s.Cycles)
	}
	if a.Until != 0 && a.Until < a.At {
		return fmt.Errorf("%s until %d before at %d", a.Behavior, a.Until, a.At)
	}
	if a.Count < 0 || a.Fraction < 0 || a.Fraction > 1 {
		return fmt.Errorf("%s needs count >= 0 and fraction in [0, 1]", a.Behavior)
	}
	switch a.Behavior {
	case BehaviorInjectExtreme, BehaviorLieEstimate, BehaviorReplayStale:
		if a.Count == 0 && a.Fraction <= 0 {
			return fmt.Errorf("%s needs count or fraction", a.Behavior)
		}
		if a.Behavior == BehaviorLieEstimate && a.Value == 0 && a.Amplify == 0 {
			return errors.New("lie-estimate needs value or amplify")
		}
		if a.Behavior == BehaviorReplayStale && a.Lag < 1 {
			return errors.New("replay-stale needs lag >= 1")
		}
	case BehaviorSybilFlood:
		if a.Rate < 1 {
			return errors.New("sybil-flood needs rate >= 1")
		}
	default:
		return fmt.Errorf("unknown adversary behavior %q", a.Behavior)
	}
	return nil
}

func (s Scenario) validateDefense() error {
	d := s.Defense
	if d.Samples < 0 {
		return fmt.Errorf("defense samples %d is negative", d.Samples)
	}
	if d.JoinCap < 0 {
		return fmt.Errorf("defense join cap %d is negative", d.JoinCap)
	}
	if _, err := d.combiner(); err != nil {
		return fmt.Errorf("defense: %w", err)
	}
	return nil
}

func (s Scenario) validateEvent(ev Event) error {
	if ev.At < 1 || ev.At > s.Cycles {
		return fmt.Errorf("%s at cycle %d outside run of %d cycles", ev.Kind, ev.At, s.Cycles)
	}
	if ev.Until != 0 && ev.Until < ev.At {
		return fmt.Errorf("%s until %d before at %d", ev.Kind, ev.Until, ev.At)
	}
	if ev.Every < 0 || ev.Count < 0 {
		return fmt.Errorf("%s has negative every/count", ev.Kind)
	}
	switch ev.Kind {
	case KindCrash, KindChurn, KindJoin, KindRestart:
		if ev.Count == 0 && ev.Fraction <= 0 {
			return fmt.Errorf("%s needs count or fraction", ev.Kind)
		}
		if ev.Fraction < 0 || ev.Fraction > 1 {
			return fmt.Errorf("%s fraction %g not in [0, 1]", ev.Kind, ev.Fraction)
		}
	case KindPartition:
		if len(ev.Groups) < 2 {
			return fmt.Errorf("partition needs at least 2 groups, got %d", len(ev.Groups))
		}
		for _, w := range ev.Groups {
			if w <= 0 {
				return errors.New("partition group weights must be positive")
			}
		}
	case KindHeal:
	case KindLoss:
		if ev.Rate < 0 || ev.Rate >= 1 {
			return fmt.Errorf("loss rate %g not in [0, 1)", ev.Rate)
		}
	case KindDelay:
		if ev.MinDelayMs < 0 || ev.MaxDelayMs < ev.MinDelayMs {
			return errors.New("delay needs 0 <= minDelayMs <= maxDelayMs")
		}
	case KindValueStep, KindValueRamp:
		if ev.Delta == 0 {
			return fmt.Errorf("%s needs a non-zero delta", ev.Kind)
		}
	case KindValueOscillate:
		if ev.Amplitude == 0 || ev.Period < 2 {
			return errors.New("value-oscillate needs amplitude and period >= 2")
		}
	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	return nil
}

// MaxSlots returns the node-slot capacity the scenario needs: the initial
// size plus every join the script can perform.
func (s Scenario) MaxSlots() int {
	slots := s.N
	for _, ev := range s.Events {
		if ev.Kind != KindJoin {
			continue
		}
		count := ev.Count
		if count == 0 {
			count = int(ev.Fraction * float64(s.N))
		}
		from, to := ev.window(s.Cycles)
		firings := 1
		if to > from {
			step := ev.Every
			if step < 1 {
				step = 1
			}
			firings = (to-from)/step + 1
		}
		slots += count * firings
	}
	for _, a := range s.Adversaries {
		if a.Behavior != BehaviorSybilFlood {
			continue
		}
		from, to := a.window(s.Cycles)
		slots += a.Rate * (to - from + 1)
	}
	return slots
}

// resolveCount turns an event's Count/Fraction into an absolute node
// count against the given base population. Fractions round to nearest
// so that rescaling a scenario to a small N (aggscen -n) cannot silently
// truncate an event to nothing — "1% churn" at N=50 still churns a node
// every cycle rather than none.
func (ev Event) resolveCount(base int) int {
	if ev.Count > 0 {
		return ev.Count
	}
	return int(math.Round(ev.Fraction * float64(base)))
}

// Load reads one JSON scenario with strict (version 2) decoding:
// unknown fields anywhere in the document are a *DecodeError, not a
// silent no-op.
func Load(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, decodeError(err)
	}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadJSON parses one JSON scenario from a byte slice with the same
// strict decoding as Load. (Before schema version 2 this path used a
// plain json.Unmarshal, so a typoed field name silently no-oped.)
func LoadJSON(data []byte) (Scenario, error) {
	return Load(bytes.NewReader(data))
}

// decodeError classifies a json decoder failure into the typed
// DecodeError strict loading returns.
func decodeError(err error) error {
	reason := "syntax"
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn), errors.As(err, &typ):
	default:
		// encoding/json reports unknown fields as a plain errorString
		// ("json: unknown field ..."), so everything that is not a syntax
		// or type error is classified by its message.
		if s := err.Error(); len(s) >= 19 && s[:19] == "json: unknown field" {
			reason = "unknown-field"
		}
	}
	return &DecodeError{Reason: reason, Err: err}
}

// JSON renders the scenario as indented JSON.
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
