// Package scenario is the declarative adversarial-workload engine of the
// library: a Scenario scripts timed events over a run — churn waves,
// correlated crashes, flash-crowd joins, network partitions and heals,
// message-loss and delay bursts, and value dynamics that move the tracked
// aggregate while the protocol runs.
//
// One Scenario drives two executors against the same script:
//
//   - RunSim executes it on the deterministic cycle-driven engine of
//     internal/sim (partitions enforced via the engine's exchange filter,
//     epoch restarts via Engine.Restart),
//   - RunLive executes it on a fleet of real internal/agent nodes over the
//     in-memory transport (partitions and loss injected at the transport
//     layer).
//
// Both emit the same per-cycle metrics (estimate mean/spread/error,
// message counts, live-node count), so simulator predictions can be
// compared directly against live-runtime behaviour. A standard library of
// canned scenarios lives in Canned; cmd/aggscen lists, runs and compares
// them.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Kind names a scenario event type.
type Kind string

// Event kinds.
const (
	// KindCrash kills Count nodes (or Fraction of the live ones) without
	// replacement. One-shot at At unless Every/Until extend it.
	KindCrash Kind = "crash"
	// KindChurn substitutes Count nodes (or Fraction of the live ones)
	// with brand-new identities every active cycle, keeping the size
	// constant while the composition changes (§4.2 joiners sit out the
	// running epoch). Durative: defaults to the whole run from At.
	KindChurn Kind = "churn"
	// KindJoin adds Count fresh nodes (or Fraction of the initial N).
	// Joiners participate from the next epoch. One-shot at At unless
	// Every/Until extend it.
	KindJoin Kind = "join"
	// KindRestart revives Count previously crashed slots as brand-new
	// joiners. One-shot at At unless Every/Until extend it.
	KindRestart Kind = "restart"
	// KindPartition splits the live network into len(Groups) components
	// with the given relative sizes; exchanges across components are
	// dropped. Active until a KindHeal event (or Until, when set).
	KindPartition Kind = "partition"
	// KindHeal removes the active partition.
	KindHeal Kind = "heal"
	// KindLoss overrides the per-message loss probability with Rate
	// during [At, Until] (Until 0 = to the end of the run).
	KindLoss Kind = "loss"
	// KindDelay raises one-way delivery latency to [MinDelayMs,
	// MaxDelayMs] during [At, Until]. Live executor only: the cycle-driven
	// simulator has no notion of sub-cycle time and ignores it.
	KindDelay Kind = "delay"
	// KindValueStep adds Delta to every node's local value from At on.
	KindValueStep Kind = "value-step"
	// KindValueRamp linearly drifts every node's local value by Delta in
	// total across [At, Until].
	KindValueRamp Kind = "value-ramp"
	// KindValueOscillate adds Amplitude·sin(2π·(cycle−At)/Period) to every
	// node's local value while active (Until 0 = to the end of the run).
	KindValueOscillate Kind = "value-oscillate"
)

// Event is one timed intervention of a scenario. Which fields are
// meaningful depends on Kind; Validate rejects nonsensical combinations.
type Event struct {
	// Kind selects the intervention.
	Kind Kind `json:"kind"`
	// At is the first cycle (1-based) the event applies.
	At int `json:"at"`
	// Until is the last cycle (inclusive) for durative events; 0 means
	// "one-shot" for discrete kinds (crash, join, restart) and "until the
	// end of the run" for durative ones (churn, loss, delay, oscillate).
	Until int `json:"until,omitempty"`
	// Every spaces repeated firings of discrete kinds within [At, Until]
	// (e.g. a crash wave every 5 cycles). Implies Until = end of run when
	// Until is 0.
	Every int `json:"every,omitempty"`
	// Count is the absolute number of nodes affected (crash/churn/join/
	// restart).
	Count int `json:"count,omitempty"`
	// Fraction expresses Count relative to the live population (crash,
	// churn) or the initial size (join). Ignored when Count is set.
	Fraction float64 `json:"fraction,omitempty"`
	// Groups are the relative component sizes of a partition; they are
	// normalized, so [1, 1] is an even split.
	Groups []float64 `json:"groups,omitempty"`
	// Rate is the message-loss probability of a KindLoss burst.
	Rate float64 `json:"rate,omitempty"`
	// Delta is the total value change of a step or ramp.
	Delta float64 `json:"delta,omitempty"`
	// Amplitude and Period parameterize a value oscillation.
	Amplitude float64 `json:"amplitude,omitempty"`
	Period    int     `json:"period,omitempty"`
	// MinDelayMs and MaxDelayMs bound a delay burst (live executor).
	MinDelayMs int `json:"minDelayMs,omitempty"`
	MaxDelayMs int `json:"maxDelayMs,omitempty"`
}

// durative reports whether the event spans a window by default.
func (ev Event) durative() bool {
	switch ev.Kind {
	case KindChurn, KindLoss, KindDelay, KindValueOscillate, KindValueRamp:
		return true
	default:
		return false
	}
}

// window resolves the event's active cycle range within a run of the
// given total length.
func (ev Event) window(total int) (from, to int) {
	from = ev.At
	to = ev.Until
	if to == 0 {
		if ev.durative() || ev.Every > 0 {
			to = total
		} else {
			to = ev.At
		}
	}
	return from, to
}

// activeAt reports whether the event fires at the given cycle.
func (ev Event) activeAt(cycle, total int) bool {
	from, to := ev.window(total)
	if cycle < from || cycle > to {
		return false
	}
	if ev.Every > 1 && (cycle-from)%ev.Every != 0 {
		return false
	}
	return true
}

// ValueSpec describes the distribution nodes draw their local values
// from, both at initialization and whenever a fresh identity joins.
type ValueSpec struct {
	// Kind selects the distribution: "const" (every node = Value),
	// "uniform" (uniform in [Lo, Hi)), "linear" (node i = i), or "peak"
	// (node 0 = Value, everyone else 0 — the paper's hardest case).
	// Default: "uniform" over [0, 100).
	Kind string `json:"kind,omitempty"`
	// Value is the constant (Kind "const") or the peak total (Kind
	// "peak").
	Value float64 `json:"value,omitempty"`
	// Lo and Hi bound the uniform distribution.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
}

// Scenario is one declarative run description, loadable from JSON.
type Scenario struct {
	// Name identifies the scenario (aggscen -run NAME).
	Name string `json:"name"`
	// Description summarizes what the scenario exercises.
	Description string `json:"description,omitempty"`
	// N is the initial network size.
	N int `json:"n"`
	// Cycles is the total run length.
	Cycles int `json:"cycles"`
	// EpochLen is γ, the number of cycles per epoch: at every epoch
	// boundary the protocol restarts from the current local values
	// (§4.1) and waiting joiners become participants (§4.2). Default 30.
	EpochLen int `json:"epochLen,omitempty"`
	// Seed drives all scenario randomness (victim picks, group
	// assignment, value draws). Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Values describes the local-value distribution.
	Values ValueSpec `json:"values,omitempty"`
	// MessageLoss is the baseline per-message drop probability; KindLoss
	// events override it while active.
	MessageLoss float64 `json:"messageLoss,omitempty"`
	// LinkFailure is the baseline per-exchange drop probability P_d
	// (simulator executor only).
	LinkFailure float64 `json:"linkFailure,omitempty"`
	// ViewCapBytes caps the encoded piggybacked membership view per
	// exchange datagram, in bytes (0 = unlimited). The overlay tolerates
	// partial views (§4): trimmed descriptors are resent by later frames.
	// Live executors only; the cycle-driven simulator has no wire.
	ViewCapBytes int `json:"viewCapBytes,omitempty"`
	// Events are the scripted interventions, applied in order each cycle.
	Events []Event `json:"events,omitempty"`
}

// WithDefaults returns a copy with unset optional fields filled in.
func (s Scenario) WithDefaults() Scenario {
	if s.EpochLen <= 0 {
		s.EpochLen = 30
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Values.Kind == "" {
		s.Values = ValueSpec{Kind: "uniform", Lo: 0, Hi: 100}
	}
	return s
}

// Validate reports the first configuration error, if any. Call on the
// WithDefaults form.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return errors.New("scenario: name is required")
	}
	if s.N < 2 {
		return fmt.Errorf("scenario %s: need at least 2 nodes, got %d", s.Name, s.N)
	}
	if s.Cycles < 1 {
		return fmt.Errorf("scenario %s: need at least 1 cycle, got %d", s.Name, s.Cycles)
	}
	if s.EpochLen < 1 {
		return fmt.Errorf("scenario %s: epoch length must be positive, got %d", s.Name, s.EpochLen)
	}
	if s.MessageLoss < 0 || s.MessageLoss >= 1 {
		return fmt.Errorf("scenario %s: message loss %g not in [0, 1)", s.Name, s.MessageLoss)
	}
	if s.ViewCapBytes < 0 {
		return fmt.Errorf("scenario %s: view cap %d bytes is negative", s.Name, s.ViewCapBytes)
	}
	if s.LinkFailure < 0 || s.LinkFailure >= 1 {
		return fmt.Errorf("scenario %s: link failure %g not in [0, 1)", s.Name, s.LinkFailure)
	}
	switch s.Values.Kind {
	case "const", "linear", "peak":
	case "uniform":
		if s.Values.Hi <= s.Values.Lo {
			return fmt.Errorf("scenario %s: uniform values need lo < hi", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown value distribution %q", s.Name, s.Values.Kind)
	}
	for i, ev := range s.Events {
		if err := s.validateEvent(ev); err != nil {
			return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
		}
	}
	return nil
}

func (s Scenario) validateEvent(ev Event) error {
	if ev.At < 1 || ev.At > s.Cycles {
		return fmt.Errorf("%s at cycle %d outside run of %d cycles", ev.Kind, ev.At, s.Cycles)
	}
	if ev.Until != 0 && ev.Until < ev.At {
		return fmt.Errorf("%s until %d before at %d", ev.Kind, ev.Until, ev.At)
	}
	if ev.Every < 0 || ev.Count < 0 {
		return fmt.Errorf("%s has negative every/count", ev.Kind)
	}
	switch ev.Kind {
	case KindCrash, KindChurn, KindJoin, KindRestart:
		if ev.Count == 0 && ev.Fraction <= 0 {
			return fmt.Errorf("%s needs count or fraction", ev.Kind)
		}
		if ev.Fraction < 0 || ev.Fraction > 1 {
			return fmt.Errorf("%s fraction %g not in [0, 1]", ev.Kind, ev.Fraction)
		}
	case KindPartition:
		if len(ev.Groups) < 2 {
			return fmt.Errorf("partition needs at least 2 groups, got %d", len(ev.Groups))
		}
		for _, w := range ev.Groups {
			if w <= 0 {
				return errors.New("partition group weights must be positive")
			}
		}
	case KindHeal:
	case KindLoss:
		if ev.Rate < 0 || ev.Rate >= 1 {
			return fmt.Errorf("loss rate %g not in [0, 1)", ev.Rate)
		}
	case KindDelay:
		if ev.MinDelayMs < 0 || ev.MaxDelayMs < ev.MinDelayMs {
			return errors.New("delay needs 0 <= minDelayMs <= maxDelayMs")
		}
	case KindValueStep, KindValueRamp:
		if ev.Delta == 0 {
			return fmt.Errorf("%s needs a non-zero delta", ev.Kind)
		}
	case KindValueOscillate:
		if ev.Amplitude == 0 || ev.Period < 2 {
			return errors.New("value-oscillate needs amplitude and period >= 2")
		}
	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	return nil
}

// MaxSlots returns the node-slot capacity the scenario needs: the initial
// size plus every join the script can perform.
func (s Scenario) MaxSlots() int {
	slots := s.N
	for _, ev := range s.Events {
		if ev.Kind != KindJoin {
			continue
		}
		count := ev.Count
		if count == 0 {
			count = int(ev.Fraction * float64(s.N))
		}
		from, to := ev.window(s.Cycles)
		firings := 1
		if to > from {
			step := ev.Every
			if step < 1 {
				step = 1
			}
			firings = (to-from)/step + 1
		}
		slots += count * firings
	}
	return slots
}

// resolveCount turns an event's Count/Fraction into an absolute node
// count against the given base population. Fractions round to nearest
// so that rescaling a scenario to a small N (aggscen -n) cannot silently
// truncate an event to nothing — "1% churn" at N=50 still churns a node
// every cycle rather than none.
func (ev Event) resolveCount(base int) int {
	if ev.Count > 0 {
		return ev.Count
	}
	return int(math.Round(ev.Fraction * float64(base)))
}

// Load reads one JSON scenario.
func Load(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadJSON parses one JSON scenario from a byte slice.
func LoadJSON(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// JSON renders the scenario as indented JSON.
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
