package scenario

import (
	"math"

	"antientropy/internal/stats"
)

// ValueProgram evaluates the scripted local-value signal: a per-slot base
// drawn from the scenario's ValueSpec plus the global offset accumulated
// from value-step, value-ramp and value-oscillate events. Both executors
// share it, so the "true" aggregate they chase is identical.
type ValueProgram struct {
	base   []float64
	events []Event
	cycles int
}

// NewValueProgram materializes the value signal for the given number of
// node slots. The base draw is deterministic in the scenario seed, so
// simulator and live runs agree on every node's value.
func NewValueProgram(s Scenario, slots int) *ValueProgram {
	p := &ValueProgram{base: make([]float64, slots), cycles: s.Cycles}
	rng := stats.NewRNG(s.Seed ^ 0x76616c756573) // decorrelate from engine streams
	for i := range p.base {
		switch s.Values.Kind {
		case "const":
			p.base[i] = s.Values.Value
		case "linear":
			p.base[i] = float64(i)
		case "peak":
			if i == 0 {
				p.base[i] = s.Values.Value
			}
		default: // uniform
			p.base[i] = s.Values.Lo + (s.Values.Hi-s.Values.Lo)*rng.Float64()
		}
	}
	for _, ev := range s.Events {
		switch ev.Kind {
		case KindValueStep, KindValueRamp, KindValueOscillate:
			p.events = append(p.events, ev)
		}
	}
	return p
}

// Offset returns the global value displacement at the given cycle.
func (p *ValueProgram) Offset(cycle int) float64 {
	var off float64
	for _, ev := range p.events {
		from, to := ev.window(p.cycles)
		switch ev.Kind {
		case KindValueStep:
			if cycle >= from {
				off += ev.Delta
			}
		case KindValueRamp:
			switch {
			case cycle < from:
			case cycle >= to:
				off += ev.Delta
			default:
				off += ev.Delta * float64(cycle-from) / float64(to-from)
			}
		case KindValueOscillate:
			if cycle >= from && cycle <= to {
				off += ev.Amplitude * math.Sin(2*math.Pi*float64(cycle-from)/float64(ev.Period))
			}
		}
	}
	return off
}

// Value returns node's local value at the given cycle.
func (p *ValueProgram) Value(node, cycle int) float64 {
	return p.base[node] + p.Offset(cycle)
}
