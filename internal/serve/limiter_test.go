package serve

import (
	"testing"
	"time"
)

// fakeClock drives the limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeLimiter() (*Limiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter()
	l.now = clk.now
	return l, clk
}

func TestLimiterUnconfiguredTenantAdmitted(t *testing.T) {
	l, _ := newFakeLimiter()
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("anyone"); !ok {
			t.Fatalf("request %d rejected for unconfigured tenant", i)
		}
	}
}

func TestLimiterZeroRateUnlimited(t *testing.T) {
	l, _ := newFakeLimiter()
	l.SetLimit("t", Limit{Rate: 0, Burst: 5})
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatalf("request %d rejected despite zero rate", i)
		}
	}
}

func TestLimiterBurstThenReject(t *testing.T) {
	l, _ := newFakeLimiter()
	l.SetLimit("t", Limit{Rate: 1, Burst: 3})
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.Allow("t")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// The bucket is exactly empty: the next token is one full period away.
	if want := time.Second; retry != want {
		t.Fatalf("retryAfter = %v, want %v", retry, want)
	}
}

func TestLimiterRefillMath(t *testing.T) {
	l, clk := newFakeLimiter()
	l.SetLimit("t", Limit{Rate: 2, Burst: 2}) // 2 tokens/s, capacity 2

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatalf("initial request %d rejected", i)
		}
	}
	if ok, retry := l.Allow("t"); ok || retry != 500*time.Millisecond {
		t.Fatalf("empty bucket: ok=%v retry=%v, want rejected with 500ms", ok, retry)
	}

	// 250ms refills half a token — still not enough for a request.
	clk.advance(250 * time.Millisecond)
	if ok, retry := l.Allow("t"); ok || retry != 250*time.Millisecond {
		t.Fatalf("half token: ok=%v retry=%v, want rejected with 250ms", ok, retry)
	}

	// Another 250ms completes the token.
	clk.advance(250 * time.Millisecond)
	if ok, _ := l.Allow("t"); !ok {
		t.Fatal("full token rejected")
	}

	// A long idle stretch refills only to Burst, never beyond.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatalf("post-idle request %d rejected", i)
		}
	}
	if ok, _ := l.Allow("t"); ok {
		t.Fatal("refill exceeded burst capacity")
	}
}

func TestLimiterTenantsIsolated(t *testing.T) {
	l, _ := newFakeLimiter()
	l.SetLimit("a", Limit{Rate: 1, Burst: 1})
	l.SetLimit("b", Limit{Rate: 1, Burst: 1})

	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("tenant a's first request rejected")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("tenant a admitted beyond its budget")
	}
	// Tenant a draining its bucket must not touch tenant b's.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("tenant b rejected after tenant a drained its own bucket")
	}
}

func TestLimiterMinimumBurst(t *testing.T) {
	l, _ := newFakeLimiter()
	l.SetLimit("t", Limit{Rate: 5, Burst: 0}) // burst clamped up to 1
	if ok, _ := l.Allow("t"); !ok {
		t.Fatal("first request rejected despite minimum burst of 1")
	}
	if ok, _ := l.Allow("t"); ok {
		t.Fatal("second immediate request admitted with burst 1")
	}
}
