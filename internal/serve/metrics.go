package serve

import (
	"time"

	"antientropy/internal/obs"
)

// requestSecondsBuckets bound the API request-latency histogram:
// in-process handlers sit well under a millisecond, estimate reads over
// large fleets in the low milliseconds.
var requestSecondsBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}

// Metrics is the agg_serve_* instrument set, registered on the shared
// obs registry so the serving series export next to the protocol's
// agg_* counters on the same /metrics. Per-tenant families are labeled
// by tenant name (operator-configured, bounded); per-instance families
// by instance name (operator-created, bounded by Limits.MaxInstances).
// A nil *Metrics is valid and records nothing.
type Metrics struct {
	requests   *obs.CounterVec // agg_serve_requests_total{tenant}
	rejected   *obs.CounterVec // agg_serve_rejected_total{tenant}
	instanceRq *obs.CounterVec // agg_serve_instance_requests_total{instance}
	feedLag    *obs.GaugeVec   // agg_serve_feed_lag_seconds{instance}
	staleness  *obs.GaugeVec   // agg_serve_estimate_staleness_seconds{instance}
	generation *obs.GaugeVec   // agg_serve_instance_generation{instance}
	instances  *obs.Gauge      // agg_serve_instances
	latency    *obs.Histogram  // agg_serve_request_seconds
}

// NewMetrics registers the agg_serve_* families on reg (nil reg returns
// a nil, no-op Metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		requests: reg.CounterVec("agg_serve_requests_total",
			"API requests received, by tenant (including rejected ones).", "tenant"),
		rejected: reg.CounterVec("agg_serve_rejected_total",
			"API requests rejected by admission control (429), by tenant.", "tenant"),
		instanceRq: reg.CounterVec("agg_serve_instance_requests_total",
			"Admitted API requests addressing a named instance.", "instance"),
		feedLag: reg.GaugeVec("agg_serve_feed_lag_seconds",
			"Seconds the newest feed waited (or is waiting) for an epoch restart to sample it.", "instance"),
		staleness: reg.GaugeVec("agg_serve_estimate_staleness_seconds",
			"Age of the newest sealed epoch output at the last estimate read.", "instance"),
		generation: reg.GaugeVec("agg_serve_instance_generation",
			"Epoch restarts since instance creation (the API generation number).", "instance"),
		instances: reg.Gauge("agg_serve_instances",
			"Live aggregation instances hosted by this daemon."),
		latency: reg.Histogram("agg_serve_request_seconds",
			"API request handling latency in seconds.", requestSecondsBuckets),
	}
}

// Request counts one received request for tenant.
func (m *Metrics) Request(tenant string) {
	if m == nil {
		return
	}
	m.requests.With(tenant).Inc()
}

// Reject counts one admission-control rejection for tenant.
func (m *Metrics) Reject(tenant string) {
	if m == nil {
		return
	}
	m.rejected.With(tenant).Inc()
}

// InstanceRequest counts one admitted request addressing an instance.
func (m *Metrics) InstanceRequest(instance string) {
	if m == nil {
		return
	}
	m.instanceRq.With(instance).Inc()
}

// ObserveEstimate records the freshness gauges of one estimate read.
func (m *Metrics) ObserveEstimate(est Estimate) {
	if m == nil {
		return
	}
	m.feedLag.With(est.Name).Set(est.FeedLagSeconds)
	m.staleness.With(est.Name).Set(est.StalenessSeconds)
	m.generation.With(est.Name).Set(float64(est.Generation))
}

// SetInstances records the live instance count.
func (m *Metrics) SetInstances(n int) {
	if m == nil {
		return
	}
	m.instances.Set(float64(n))
}

// ObserveLatency records one request's handling time.
func (m *Metrics) ObserveLatency(d time.Duration) {
	if m == nil {
		return
	}
	m.latency.Observe(d.Seconds())
}
