// Package serve is the aggregation-as-a-service layer: a registry of
// named, long-lived aggregation instances that clients create, feed
// values into and query over a versioned HTTP JSON API (cmd/aggd),
// with per-tenant token-bucket admission control and agg_serve_*
// telemetry on the shared obs registry.
//
// Each instance embeds a fleet of live agent.Nodes gossiping the
// paper's practical protocol (§4) over an in-memory transport (or a
// shared UDP mux): fed values become the nodes' local values at the
// next epoch restart (§4.1), the converged per-epoch estimate is what
// the API serves, and epoch restarts surface as API-visible generation
// numbers so clients can detect re-convergence after an update. The
// protocol underneath is exactly the one the simulators and the
// scenario executors run — the serving layer adds only lifecycle,
// admission and naming.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"antientropy/internal/agent"
	"antientropy/internal/core"
	"antientropy/internal/transport"
)

// Aggregation functions an instance can host.
const (
	// FuncAverage serves the arithmetic mean of the fed values (§3).
	FuncAverage = "average"
	// FuncCount serves a network-size estimate of the instance's own
	// fleet via the multi-leader COUNT protocol (§5) — the liveness
	// canary: its estimate should track the fleet size.
	FuncCount = "count"
	// FuncSum serves Σ values, derived as AVERAGE × value count (§5).
	FuncSum = "sum"
	// FuncVariance serves Var(values) = E[x²] − E[x]², derived from two
	// concurrent AVERAGE fleets over x and x² (§5).
	FuncVariance = "variance"
)

// Functions lists the supported instance functions.
func Functions() []string {
	return []string{FuncAverage, FuncCount, FuncSum, FuncVariance}
}

// Transport selects the wire the embedded fleets gossip over.
type Transport string

// Available transports.
const (
	// TransportMem runs each fleet on its own in-memory datagram
	// network — the default: no sockets, no syscalls.
	TransportMem Transport = "mem"
	// TransportUDP runs each fleet on a shared batched UDP mux over
	// loopback sockets — the same transport the UDP scenario executor
	// uses, for serving deployments that want real datagrams.
	TransportUDP Transport = "udp"
)

// InstanceConfig describes one aggregation instance. JSON tags match
// the POST /v1/instances request body.
type InstanceConfig struct {
	// Name identifies the instance; unique within the registry.
	Name string `json:"name"`
	// Function is one of Functions() (default average).
	Function string `json:"function"`
	// FleetSize is the number of embedded protocol nodes (default 16).
	FleetSize int `json:"fleet_size,omitempty"`
	// EpochMS is the epoch length Δ in milliseconds (default 1000):
	// how often the instance restarts and re-samples fed values.
	EpochMS int `json:"epoch_ms,omitempty"`
	// CycleMS is the gossip cycle length δ in milliseconds (default
	// EpochMS/20, minimum 10): γ = EpochMS/CycleMS cycles run per epoch.
	CycleMS int `json:"cycle_ms,omitempty"`
	// CacheSize is the NEWSCAST cache capacity (default 30).
	CacheSize int `json:"cache_size,omitempty"`
	// Combiner selects the fleet's per-exchange merge policy (one of
	// core.CombinerNames; empty keeps the classical push-pull mean) —
	// the defense API for untrusted feeders: "median-of-k" outvotes a
	// single outlier per merge, "clamped-mean" bounds every peer report.
	Combiner string `json:"combiner,omitempty"`
	// ClampMin/ClampMax bound admissible peer reports; both are required
	// by (and only valid with) the "clamped-mean" combiner, and must
	// satisfy clamp_min < clamp_max. Pointers distinguish "unset" from a
	// legitimate zero bound.
	ClampMin *float64 `json:"clamp_min,omitempty"`
	ClampMax *float64 `json:"clamp_max,omitempty"`
}

// Limits bound what the registry accepts — the static half of
// admission control (the Limiter is the rate half).
type Limits struct {
	// MaxInstances caps live instances (0 = 64).
	MaxInstances int
	// MaxFleet caps FleetSize per instance (0 = 256).
	MaxFleet int
}

func (l *Limits) withDefaults() {
	if l.MaxInstances <= 0 {
		l.MaxInstances = 64
	}
	if l.MaxFleet <= 0 {
		l.MaxFleet = 256
	}
}

// Registry errors, mapped onto HTTP statuses by the API layer.
var (
	// ErrExists reports a duplicate instance name (409).
	ErrExists = errors.New("serve: instance already exists")
	// ErrNotFound reports an unknown instance name (404).
	ErrNotFound = errors.New("serve: no such instance")
	// ErrClosed reports a registry shut down by Close (503).
	ErrClosed = errors.New("serve: registry closed")
	// ErrLimit reports a refused creation: the instance cap is reached
	// or the fleet size exceeds the per-instance bound (429/400).
	ErrLimit = errors.New("serve: admission limit")
)

// Registry owns the live instances of one daemon. All methods are safe
// for concurrent use.
type Registry struct {
	transport Transport
	limits    Limits
	logger    *slog.Logger

	mu        sync.Mutex
	instances map[string]*Instance
	closed    bool
}

// RegistryConfig tunes a Registry.
type RegistryConfig struct {
	// Transport selects the fleet wire (default TransportMem).
	Transport Transport
	// Limits bound instance creation.
	Limits Limits
	// Logger receives lifecycle events (default slog.Default).
	Logger *slog.Logger
}

// NewRegistry builds an empty instance registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Transport == "" {
		cfg.Transport = TransportMem
	}
	cfg.Limits.withDefaults()
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Registry{
		transport: cfg.Transport,
		limits:    cfg.Limits,
		logger:    cfg.Logger,
		instances: make(map[string]*Instance),
	}
}

// validateName enforces DNS-label-ish instance names: they appear in
// URLs and as metric label values.
func validateName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("serve: instance name must be 1-64 characters")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("serve: instance name %q: only [a-z0-9_-] allowed", name)
		}
	}
	return nil
}

// normalize validates cfg and fills defaults.
func (r *Registry) normalize(cfg *InstanceConfig) error {
	if err := validateName(cfg.Name); err != nil {
		return err
	}
	switch cfg.Function {
	case "":
		cfg.Function = FuncAverage
	case FuncAverage, FuncCount, FuncSum, FuncVariance:
	default:
		return fmt.Errorf("serve: unknown function %q (want one of %v)", cfg.Function, Functions())
	}
	if cfg.FleetSize <= 0 {
		cfg.FleetSize = 16
	}
	if cfg.FleetSize > r.limits.MaxFleet {
		return fmt.Errorf("%w: fleet size %d exceeds the per-instance cap %d",
			ErrLimit, cfg.FleetSize, r.limits.MaxFleet)
	}
	if cfg.EpochMS <= 0 {
		cfg.EpochMS = 1000
	}
	if cfg.CycleMS <= 0 {
		cfg.CycleMS = cfg.EpochMS / 20
	}
	if cfg.CycleMS < 10 {
		cfg.CycleMS = 10
	}
	if cfg.CycleMS > cfg.EpochMS {
		cfg.CycleMS = cfg.EpochMS
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 30
	}
	switch cfg.Combiner {
	case "", core.CombinerMean, core.CombinerMedianOfK, core.CombinerTrimmedMean:
		if cfg.ClampMin != nil || cfg.ClampMax != nil {
			return fmt.Errorf("serve: clamp_min/clamp_max require combiner %q", core.CombinerClampedMean)
		}
	case core.CombinerClampedMean:
		if cfg.ClampMin == nil || cfg.ClampMax == nil {
			return fmt.Errorf("serve: combiner %q needs both clamp_min and clamp_max", core.CombinerClampedMean)
		}
		if _, err := core.CombinerByName(cfg.Combiner, *cfg.ClampMin, *cfg.ClampMax); err != nil {
			return err
		}
	default:
		return fmt.Errorf("serve: unknown combiner %q (want one of %v)", cfg.Combiner, core.CombinerNames())
	}
	return nil
}

// combiner resolves the instance's configured merge policy (nil = the
// classical push-pull mean). Call on a normalized config.
func (cfg *InstanceConfig) combiner() core.Combiner {
	if cfg.Combiner == "" {
		return nil
	}
	var lo, hi float64
	if cfg.ClampMin != nil {
		lo = *cfg.ClampMin
	}
	if cfg.ClampMax != nil {
		hi = *cfg.ClampMax
	}
	c, err := core.CombinerByName(cfg.Combiner, lo, hi)
	if err != nil {
		return nil // unreachable on a normalized config
	}
	return c
}

// Create builds, starts and registers a new instance owned by tenant.
func (r *Registry) Create(cfg InstanceConfig, tenant string) (*Instance, error) {
	if err := r.normalize(&cfg); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := r.instances[cfg.Name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, cfg.Name)
	}
	if len(r.instances) >= r.limits.MaxInstances {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d instances live, cap %d",
			ErrLimit, len(r.instances), r.limits.MaxInstances)
	}
	// Reserve the name before the (slow) fleet launch so two concurrent
	// creations of one name cannot both build fleets.
	r.instances[cfg.Name] = nil
	r.mu.Unlock()

	inst, err := newInstance(cfg, tenant, r.transport, r.logger)
	r.mu.Lock()
	if err != nil {
		delete(r.instances, cfg.Name)
		r.mu.Unlock()
		return nil, err
	}
	if r.closed {
		delete(r.instances, cfg.Name)
		r.mu.Unlock()
		inst.stop()
		return nil, ErrClosed
	}
	r.instances[cfg.Name] = inst
	r.mu.Unlock()
	r.logger.Info("instance created", "instance", cfg.Name, "tenant", tenant,
		"function", cfg.Function, "fleet", cfg.FleetSize)
	return inst, nil
}

// Get returns the named live instance.
func (r *Registry) Get(name string) (*Instance, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.instances[name]
	if !ok || inst == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return inst, nil
}

// Delete tears the named instance down, releasing its fleet, endpoints
// and goroutines before returning.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	inst, ok := r.instances[name]
	if !ok || inst == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(r.instances, name)
	r.mu.Unlock()
	inst.stop()
	r.logger.Info("instance deleted", "instance", name)
	return nil
}

// List returns the live instances sorted by name.
func (r *Registry) List() []*Instance {
	r.mu.Lock()
	out := make([]*Instance, 0, len(r.instances))
	for _, inst := range r.instances {
		if inst != nil {
			out = append(out, inst)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Name < out[j].cfg.Name })
	return out
}

// Len reports the number of live instances.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, inst := range r.instances {
		if inst != nil {
			n++
		}
	}
	return n
}

// Close tears down every instance and refuses further creations — the
// daemon's drain path.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	insts := make([]*Instance, 0, len(r.instances))
	for name, inst := range r.instances {
		if inst != nil {
			insts = append(insts, inst)
		}
		delete(r.instances, name)
	}
	r.mu.Unlock()
	for _, inst := range insts {
		inst.stop()
	}
}

// fleet is one embedded set of protocol nodes plus the transport it
// owns. An instance has one fleet (average/count/sum) or two
// (variance: x and x²).
type fleet struct {
	nodes []*agent.Node
	mem   *transport.MemNetwork
	mux   *transport.UDPMux
}

func (f *fleet) stop() {
	for _, n := range f.nodes {
		_ = n.Stop()
	}
	if f.mem != nil {
		f.mem.Close()
	}
	if f.mux != nil {
		_ = f.mux.Close()
	}
}

// Instance is one named, long-running aggregate: an embedded protocol
// fleet, the client-fed value store, and the derived serving state.
type Instance struct {
	cfg       InstanceConfig
	tenant    string
	schedule  core.Schedule
	createdAt time.Time
	primary   *fleet
	squared   *fleet // variance only: the E[x²] fleet
	cancel    context.CancelFunc

	mu       sync.RWMutex
	vals     []float64
	keys     map[string]int
	lastFeed time.Time
}

// newInstance builds and starts the instance's fleet(s).
func newInstance(cfg InstanceConfig, tenant string, tr Transport, logger *slog.Logger) (*Instance, error) {
	now := time.Now()
	cycle := time.Duration(cfg.CycleMS) * time.Millisecond
	gamma := cfg.EpochMS / cfg.CycleMS
	if gamma < 1 {
		gamma = 1
	}
	inst := &Instance{
		cfg:    cfg,
		tenant: tenant,
		schedule: core.Schedule{
			// Anchored at creation: epoch 0 starts immediately and every
			// node of the fleet shares the schedule, so restarts (and the
			// generation numbers derived from them) line up.
			Start:    now,
			Delta:    time.Duration(gamma) * cycle,
			CycleLen: cycle,
			Gamma:    gamma,
		},
		createdAt: now,
		keys:      make(map[string]int),
	}
	ctx, cancel := context.WithCancel(context.Background())
	inst.cancel = cancel
	// Node debug chatter stays out of the daemon log: fleets are an
	// implementation detail of the instance.
	quiet := logger
	if quiet == nil {
		quiet = slog.Default()
	}
	quiet = slog.New(quiet.Handler()).With("instance", cfg.Name)

	var err error
	inst.primary, err = inst.launchFleet(ctx, tr, quiet, func(i int) func() float64 {
		if cfg.Function == FuncCount {
			return nil
		}
		return func() float64 { return inst.slotValue(i, false) }
	})
	if err != nil {
		cancel()
		return nil, err
	}
	if cfg.Function == FuncVariance {
		inst.squared, err = inst.launchFleet(ctx, tr, quiet, func(i int) func() float64 {
			return func() float64 { return inst.slotValue(i, true) }
		})
		if err != nil {
			cancel()
			inst.primary.stop()
			return nil, err
		}
	}
	return inst, nil
}

// launchFleet opens one transport, builds FleetSize founding nodes on
// it and starts them. value(i) supplies node i's value source; nil
// selects ModeCount.
func (in *Instance) launchFleet(ctx context.Context, tr Transport, logger *slog.Logger, value func(i int) func() float64) (*fleet, error) {
	f := &fleet{}
	n := in.cfg.FleetSize
	endpoints := make([]transport.Endpoint, n)
	addrs := make([]string, n)
	switch tr {
	case TransportUDP:
		mux, err := transport.NewUDPMux(transport.UDPMuxConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			return nil, fmt.Errorf("serve: opening udp mux: %w", err)
		}
		f.mux = mux
		for i := range endpoints {
			ep, err := mux.Endpoint()
			if err != nil {
				f.stop()
				return nil, fmt.Errorf("serve: opening mux endpoint: %w", err)
			}
			endpoints[i], addrs[i] = ep, ep.Addr()
		}
	default:
		f.mem = transport.NewMemNetwork(transport.MemNetworkConfig{QueueLen: 256})
		for i := range endpoints {
			ep := f.mem.Endpoint()
			endpoints[i], addrs[i] = ep, ep.Addr()
		}
	}
	for i := range endpoints {
		cfg := agent.Config{
			Endpoint:  endpoints[i],
			Schedule:  in.schedule,
			CacheSize: in.cfg.CacheSize,
			Bootstrap: addrs,
			Seed:      uint64(i + 1),
			Logger:    logger,
		}
		if v := value(i); v != nil {
			cfg.Mode = agent.ModeScalar
			cfg.Function = core.Average
			cfg.Value = v
			cfg.Combiner = in.cfg.combiner()
		} else {
			cfg.Mode = agent.ModeCount
			cfg.Concurrency = 4
			cfg.InitialSizeGuess = float64(n)
		}
		node, err := agent.New(cfg)
		if err != nil {
			f.stop()
			return nil, err
		}
		f.nodes = append(f.nodes, node)
		if err := node.Start(ctx); err != nil {
			f.stop()
			return nil, err
		}
	}
	return f, nil
}

// stop releases every fleet, endpoint and goroutine of the instance.
func (in *Instance) stop() {
	in.cancel()
	in.primary.stop()
	if in.squared != nil {
		in.squared.stop()
	}
}

// Config returns the instance's normalized configuration.
func (in *Instance) Config() InstanceConfig { return in.cfg }

// Tenant returns the creating tenant's name.
func (in *Instance) Tenant() string { return in.tenant }

// CreatedAt returns the creation time (= the schedule anchor).
func (in *Instance) CreatedAt() time.Time { return in.createdAt }

// slotValue maps fed values onto fleet node i (squared selects the x²
// assignment of the variance fleet). Values are dealt round-robin
// across the fleet; node 0 additionally absorbs the rounding residue
// so the fleet mean equals the fed mean (or fed mean of squares)
// exactly even when the fleet size is not a multiple of the value
// count. With no values fed yet every node holds 0.
func (in *Instance) slotValue(i int, squared bool) float64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	k := len(in.vals)
	if k == 0 {
		return 0
	}
	f := func(v float64) float64 {
		if squared {
			return v * v
		}
		return v
	}
	base := f(in.vals[i%k])
	if i != 0 {
		return base
	}
	n := in.cfg.FleetSize
	var sum, assigned float64
	for j, v := range in.vals {
		fv := f(v)
		sum += fv
		c := n / k
		if j < n%k {
			c++
		}
		assigned += float64(c) * fv
	}
	return base + (float64(n)*sum/float64(k) - assigned)
}

// Feed applies one value update: values sets positional slots 0..len-1,
// slots upserts named slots, reset clears the store first. The update
// is sampled by every fleet node at the next epoch restart (§4.1) —
// the returned generation is the one whose successor will reflect it.
func (in *Instance) Feed(values []float64, slots map[string]float64, reset bool) (slotCount int, gen uint64) {
	now := time.Now()
	in.mu.Lock()
	if reset {
		in.vals = in.vals[:0]
		in.keys = make(map[string]int)
	}
	for i, v := range values {
		for len(in.vals) <= i {
			in.vals = append(in.vals, 0)
		}
		in.vals[i] = v
	}
	// Named slots live after the positional ones; feeding more
	// positional values than before never displaces a named slot
	// because positions were reserved at first use.
	for key, v := range slots {
		idx, ok := in.keys[key]
		if !ok {
			idx = len(in.vals)
			in.vals = append(in.vals, 0)
			in.keys[key] = idx
		}
		in.vals[idx] = v
	}
	in.lastFeed = now
	slotCount = len(in.vals)
	in.mu.Unlock()
	return slotCount, in.generationAt(now)
}

// Slots reports the current fed-value count.
func (in *Instance) Slots() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.vals)
}

// generationAt maps wall-clock time to the API-visible generation
// number: whole epoch restarts since creation. Generation g's values
// were sampled at the start of epoch g; a feed during generation g is
// first reflected by generation g+1 — clients detect re-convergence by
// watching the generation advance past the one their feed returned.
func (in *Instance) generationAt(t time.Time) uint64 {
	return in.schedule.EpochAt(t)
}

// Estimate is the serving snapshot of one instance.
type Estimate struct {
	Name     string `json:"name"`
	Function string `json:"function"`
	// Estimate is the fleet's current converged (or converging) value;
	// OK is false while no node holds a usable estimate yet.
	Estimate float64 `json:"estimate"`
	OK       bool    `json:"ok"`
	// Epoch is the fleet's protocol epoch, Generation the epochs-since-
	// creation counter clients use to detect re-convergence.
	Epoch      uint64 `json:"epoch"`
	Generation uint64 `json:"generation"`
	// RelSpread is the dispersion of per-node estimates relative to
	// their mean — the paper's variance-reduction measure applied as a
	// convergence signal; Confidence is 1 bounded away by the spread,
	// and Converged reports spread below the serving threshold.
	RelSpread  float64 `json:"rel_spread"`
	Confidence float64 `json:"confidence"`
	Converged  bool    `json:"converged"`
	// Nodes is the fleet size, Reporting how many nodes contributed a
	// usable estimate, Slots the fed-value count.
	Nodes     int `json:"nodes"`
	Reporting int `json:"reporting"`
	Slots     int `json:"slots"`
	// FeedLagSeconds is how long the newest feed waited (or has been
	// waiting) for an epoch restart to sample it; StalenessSeconds is
	// the age of the newest sealed epoch output.
	FeedLagSeconds   float64 `json:"feed_lag_seconds"`
	StalenessSeconds float64 `json:"staleness_seconds"`
}

// convergedSpread is the RelSpread below which an estimate is served
// as converged: well inside the paper's post-γ variance-reduction
// plateau, loose enough for small fleets' COUNT jitter.
const convergedSpread = 0.02

// fleetMoments reads every node snapshot of a fleet and reduces it.
func fleetMoments(f *fleet) (mean, spread float64, reporting int, epoch uint64, newestOut time.Time) {
	var sum, sumSq float64
	for _, n := range f.nodes {
		s := n.Snapshot()
		if s.Epoch > epoch {
			epoch = s.Epoch
		}
		if s.HasOutput && s.LastOutput.At.After(newestOut) {
			newestOut = s.LastOutput.At
		}
		if !s.OK {
			continue
		}
		reporting++
		sum += s.Estimate
		sumSq += s.Estimate * s.Estimate
	}
	if reporting == 0 {
		return 0, math.Inf(1), 0, epoch, newestOut
	}
	mean = sum / float64(reporting)
	variance := sumSq/float64(reporting) - mean*mean
	if variance < 0 {
		variance = 0
	}
	denom := math.Abs(mean)
	if denom < 1e-9 {
		denom = 1e-9
	}
	spread = math.Sqrt(variance) / denom
	return mean, spread, reporting, epoch, newestOut
}

// Estimate computes the instance's serving snapshot.
func (in *Instance) Estimate() Estimate {
	now := time.Now()
	mean, spread, reporting, epoch, newestOut := fleetMoments(in.primary)
	est := Estimate{
		Name:       in.cfg.Name,
		Function:   in.cfg.Function,
		Estimate:   mean,
		OK:         reporting > 0,
		Epoch:      epoch,
		Generation: in.generationAt(now),
		RelSpread:  spread,
		Nodes:      in.cfg.FleetSize,
		Reporting:  reporting,
		Slots:      in.Slots(),
	}
	switch in.cfg.Function {
	case FuncSum:
		est.Estimate = core.SumFromAverage(mean, float64(est.Slots))
	case FuncVariance:
		m2, spread2, rep2, _, _ := fleetMoments(in.squared)
		est.Estimate = core.VarianceFromMoments(mean, m2)
		if spread2 > est.RelSpread {
			est.RelSpread = spread2
		}
		if rep2 == 0 {
			est.OK = false
		}
	}
	if est.OK && !math.IsInf(est.RelSpread, 1) {
		est.Converged = est.RelSpread <= convergedSpread
		est.Confidence = 1 / (1 + est.RelSpread)
	}
	in.mu.RLock()
	lastFeed := in.lastFeed
	in.mu.RUnlock()
	if !lastFeed.IsZero() {
		// A feed is sampled at the first epoch restart after it; until
		// then the lag is still growing.
		sampled := in.schedule.StartOf(in.schedule.EpochAt(lastFeed) + 1)
		if now.Before(sampled) {
			est.FeedLagSeconds = now.Sub(lastFeed).Seconds()
		} else {
			est.FeedLagSeconds = sampled.Sub(lastFeed).Seconds()
		}
	}
	switch {
	case !newestOut.IsZero():
		est.StalenessSeconds = now.Sub(newestOut).Seconds()
	default:
		est.StalenessSeconds = now.Sub(in.createdAt).Seconds()
	}
	return est
}
