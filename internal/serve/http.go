package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Tenant is one API client population: a name (metric label), the API
// key that resolves to it, and its admission limit.
type Tenant struct {
	// Name labels the tenant in metrics and logs.
	Name string
	// Key is the API key presented as `Authorization: Bearer <key>` or
	// `X-API-Key: <key>`. An empty key marks the open tenant: requests
	// carrying no key resolve to it.
	Key string
	// Limit is the tenant's token bucket (zero Rate = unlimited).
	Limit Limit
}

// Tenants resolves API keys to tenants.
type Tenants struct {
	byKey map[string]*Tenant
	open  *Tenant
}

// NewTenants builds a resolver. At most one tenant may have an empty
// key (the open tenant); duplicate keys are an error. An empty list
// yields a resolver admitting every request as the unlimited tenant
// "default" — single-user mode.
func NewTenants(list []Tenant) (*Tenants, error) {
	t := &Tenants{byKey: make(map[string]*Tenant)}
	for i := range list {
		ten := list[i]
		if ten.Name == "" {
			return nil, fmt.Errorf("serve: tenant %d has no name", i)
		}
		if ten.Key == "" {
			if t.open != nil {
				return nil, fmt.Errorf("serve: tenants %q and %q both have no key", t.open.Name, ten.Name)
			}
			t.open = &ten
			continue
		}
		if _, dup := t.byKey[ten.Key]; dup {
			return nil, fmt.Errorf("serve: duplicate API key for tenant %q", ten.Name)
		}
		t.byKey[ten.Key] = &ten
	}
	if t.open == nil && len(t.byKey) == 0 {
		t.open = &Tenant{Name: "default"}
	}
	return t, nil
}

// All returns every configured tenant (for limiter seeding).
func (t *Tenants) All() []Tenant {
	out := make([]Tenant, 0, len(t.byKey)+1)
	if t.open != nil {
		out = append(out, *t.open)
	}
	for _, ten := range t.byKey {
		out = append(out, *ten)
	}
	return out
}

// Resolve maps a request to its tenant: the Bearer token or X-API-Key
// header when present, the open tenant when absent. ok is false for an
// unknown key, or for a keyless request when no open tenant exists.
func (t *Tenants) Resolve(r *http.Request) (*Tenant, bool) {
	key := ""
	if auth := r.Header.Get("Authorization"); auth != "" {
		key, _ = strings.CutPrefix(auth, "Bearer ")
	}
	if key == "" {
		key = r.Header.Get("X-API-Key")
	}
	if key == "" {
		if t.open != nil {
			return t.open, true
		}
		return nil, false
	}
	ten, ok := t.byKey[key]
	return ten, ok
}

// APIConfig wires an API handler.
type APIConfig struct {
	// Registry hosts the instances (required).
	Registry *Registry
	// Tenants resolves API keys (required; NewTenants(nil) for open mode).
	Tenants *Tenants
	// Limiter admits requests per tenant (nil = no rate limiting).
	Limiter *Limiter
	// Metrics records agg_serve_* series (nil = none).
	Metrics *Metrics
	// Logger receives request errors (default slog.Default).
	Logger *slog.Logger
}

// API is the versioned HTTP JSON handler: POST /v1/instances,
// GET /v1/instances, GET|DELETE /v1/instances/{name},
// POST /v1/instances/{name}/values, GET /v1/instances/{name}/estimate.
// Every request is tenant-resolved and rate-limited before routing.
type API struct {
	cfg APIConfig
	mux *http.ServeMux
}

// NewAPI builds the handler.
func NewAPI(cfg APIConfig) *API {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	a := &API{cfg: cfg, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /v1/instances", a.create)
	a.mux.HandleFunc("GET /v1/instances", a.list)
	a.mux.HandleFunc("GET /v1/instances/{name}", a.get)
	a.mux.HandleFunc("DELETE /v1/instances/{name}", a.delete)
	a.mux.HandleFunc("POST /v1/instances/{name}/values", a.feed)
	a.mux.HandleFunc("GET /v1/instances/{name}/estimate", a.estimate)
	return a
}

// ServeHTTP authenticates, admits and routes one request.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tenant, ok := a.cfg.Tenants.Resolve(r)
	if !ok {
		writeError(w, http.StatusUnauthorized, "unknown or missing API key")
		return
	}
	a.cfg.Metrics.Request(tenant.Name)
	if a.cfg.Limiter != nil {
		if admitted, retry := a.cfg.Limiter.Allow(tenant.Name); !admitted {
			a.cfg.Metrics.Reject(tenant.Name)
			secs := int(math.Ceil(retry.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over its request rate; retry after %ds", tenant.Name, secs))
			return
		}
	}
	r.Header.Set(tenantHeader, tenant.Name)
	a.mux.ServeHTTP(w, r)
	a.cfg.Metrics.ObserveLatency(time.Since(start))
}

// tenantHeader carries the resolved tenant name from the admission
// wrapper to the route handlers (never read from the client: ServeHTTP
// overwrites it unconditionally).
const tenantHeader = "X-Resolved-Tenant"

// instanceInfo is the JSON shape of one instance in create/list/get
// responses.
type instanceInfo struct {
	InstanceConfig
	Tenant     string    `json:"tenant"`
	CreatedAt  time.Time `json:"created_at"`
	Generation uint64    `json:"generation"`
	Slots      int       `json:"slots"`
}

func info(in *Instance) instanceInfo {
	return instanceInfo{
		InstanceConfig: in.Config(),
		Tenant:         in.Tenant(),
		CreatedAt:      in.CreatedAt(),
		Generation:     in.generationAt(time.Now()),
		Slots:          in.Slots(),
	}
}

func (a *API) create(w http.ResponseWriter, r *http.Request) {
	var cfg InstanceConfig
	if err := decodeJSON(r, &cfg); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	inst, err := a.cfg.Registry.Create(cfg, r.Header.Get(tenantHeader))
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	a.cfg.Metrics.SetInstances(a.cfg.Registry.Len())
	writeJSON(w, http.StatusCreated, info(inst))
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	insts := a.cfg.Registry.List()
	out := make([]instanceInfo, 0, len(insts))
	for _, in := range insts {
		out = append(out, info(in))
	}
	writeJSON(w, http.StatusOK, map[string]any{"instances": out})
}

// lookup resolves the {name} path segment, counting the admitted
// instance-addressed request (routing has bound PathValue by now —
// the admission wrapper runs before the route match and cannot).
func (a *API) lookup(r *http.Request) (*Instance, error) {
	name := r.PathValue("name")
	a.cfg.Metrics.InstanceRequest(name)
	return a.cfg.Registry.Get(name)
}

func (a *API) get(w http.ResponseWriter, r *http.Request) {
	inst, err := a.lookup(r)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info(inst))
}

func (a *API) delete(w http.ResponseWriter, r *http.Request) {
	a.cfg.Metrics.InstanceRequest(r.PathValue("name"))
	if err := a.cfg.Registry.Delete(r.PathValue("name")); err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	a.cfg.Metrics.SetInstances(a.cfg.Registry.Len())
	w.WriteHeader(http.StatusNoContent)
}

// feedRequest is the POST /v1/instances/{name}/values body: positional
// values, named slots, or both; reset clears the store first.
type feedRequest struct {
	Values []float64          `json:"values"`
	Slots  map[string]float64 `json:"slots"`
	Reset  bool               `json:"reset"`
}

func (a *API) feed(w http.ResponseWriter, r *http.Request) {
	inst, err := a.lookup(r)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	var req feedRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Values) == 0 && len(req.Slots) == 0 && !req.Reset {
		writeError(w, http.StatusBadRequest, "feed carries no values")
		return
	}
	for _, v := range req.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			writeError(w, http.StatusBadRequest, "values must be finite")
			return
		}
	}
	for k, v := range req.Slots {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("slot %q must be finite", k))
			return
		}
	}
	slots, gen := inst.Feed(req.Values, req.Slots, req.Reset)
	// The fed values are sampled at the next epoch restart: generation
	// gen+1 is the first whose estimate reflects this feed.
	writeJSON(w, http.StatusOK, map[string]any{
		"slots":              slots,
		"generation":         gen,
		"visible_generation": gen + 1,
	})
}

func (a *API) estimate(w http.ResponseWriter, r *http.Request) {
	inst, err := a.lookup(r)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	est := inst.Estimate()
	a.cfg.Metrics.ObserveEstimate(est)
	writeJSON(w, http.StatusOK, est)
}

// statusFor maps registry errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrLimit):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// maxBodyBytes bounds request bodies: the largest legitimate feed is a
// few thousand floats.
const maxBodyBytes = 1 << 20

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
