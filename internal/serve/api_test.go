package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"antientropy/internal/obs"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestAPI builds an API over a fresh registry. tenants may be nil
// (open mode).
func newTestAPI(t *testing.T, tenants []Tenant, limiter *Limiter) (*API, *Registry, *obs.Registry) {
	t.Helper()
	reg := NewRegistry(RegistryConfig{Logger: quietLogger()})
	t.Cleanup(reg.Close)
	resolved, err := NewTenants(tenants)
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	metricsReg := obs.NewRegistry()
	api := NewAPI(APIConfig{
		Registry: reg,
		Tenants:  resolved,
		Limiter:  limiter,
		Metrics:  NewMetrics(metricsReg),
		Logger:   quietLogger(),
	})
	return api, reg, metricsReg
}

func doJSON(t *testing.T, api *API, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	api.ServeHTTP(w, req)
	return w
}

func TestAPITable(t *testing.T) {
	api, _, _ := newTestAPI(t, nil, nil)

	// Fast schedule so the feed/query steps below don't wait on defaults.
	create := `{"name":"temps","function":"average","fleet_size":4,"epoch_ms":100}`

	steps := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"create", "POST", "/v1/instances", create, http.StatusCreated},
		{"duplicate name", "POST", "/v1/instances", create, http.StatusConflict},
		{"bad function", "POST", "/v1/instances", `{"name":"x","function":"median"}`, http.StatusBadRequest},
		{"bad name", "POST", "/v1/instances", `{"name":"No Spaces!"}`, http.StatusBadRequest},
		{"bad json", "POST", "/v1/instances", `{"name":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/instances", `{"name":"y","bogus":1}`, http.StatusBadRequest},
		{"oversized fleet", "POST", "/v1/instances", `{"name":"big","fleet_size":100000}`, http.StatusTooManyRequests},
		{"list", "GET", "/v1/instances", "", http.StatusOK},
		{"get", "GET", "/v1/instances/temps", "", http.StatusOK},
		{"get unknown", "GET", "/v1/instances/nope", "", http.StatusNotFound},
		{"feed", "POST", "/v1/instances/temps/values", `{"values":[1,2,3]}`, http.StatusOK},
		{"feed unknown", "POST", "/v1/instances/nope/values", `{"values":[1]}`, http.StatusNotFound},
		{"feed empty", "POST", "/v1/instances/temps/values", `{}`, http.StatusBadRequest},
		{"feed non-finite", "POST", "/v1/instances/temps/values", `{"values":[1e999]}`, http.StatusBadRequest},
		{"estimate", "GET", "/v1/instances/temps/estimate", "", http.StatusOK},
		{"estimate unknown", "GET", "/v1/instances/nope/estimate", "", http.StatusNotFound},
		{"delete", "DELETE", "/v1/instances/temps", "", http.StatusNoContent},
		{"delete again", "DELETE", "/v1/instances/temps", "", http.StatusNotFound},
		{"estimate after delete", "GET", "/v1/instances/temps/estimate", "", http.StatusNotFound},
	}
	for _, step := range steps {
		w := doJSON(t, api, step.method, step.path, step.body, nil)
		if w.Code != step.wantStatus {
			t.Fatalf("%s: %s %s = %d, want %d (body %s)",
				step.name, step.method, step.path, w.Code, step.wantStatus, w.Body.String())
		}
	}
}

func TestAPIFeedReportsGenerations(t *testing.T) {
	api, _, _ := newTestAPI(t, nil, nil)
	w := doJSON(t, api, "POST", "/v1/instances",
		`{"name":"g","fleet_size":2,"epoch_ms":200}`, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", w.Code, w.Body.String())
	}
	w = doJSON(t, api, "POST", "/v1/instances/g/values", `{"values":[5,7]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("feed = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Slots             int    `json:"slots"`
		Generation        uint64 `json:"generation"`
		VisibleGeneration uint64 `json:"visible_generation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("feed response: %v", err)
	}
	if resp.Slots != 2 {
		t.Fatalf("slots = %d, want 2", resp.Slots)
	}
	if resp.VisibleGeneration != resp.Generation+1 {
		t.Fatalf("visible_generation = %d, want generation %d + 1",
			resp.VisibleGeneration, resp.Generation)
	}
}

func TestAPITenantAuth(t *testing.T) {
	tenants := []Tenant{
		{Name: "alpha", Key: "key-a"},
		{Name: "beta", Key: "key-b"},
	}
	api, _, _ := newTestAPI(t, tenants, nil)

	// No open tenant configured: keyless and wrong-key requests get 401.
	if w := doJSON(t, api, "GET", "/v1/instances", "", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("keyless request = %d, want 401", w.Code)
	}
	wrong := map[string]string{"X-API-Key": "nope"}
	if w := doJSON(t, api, "GET", "/v1/instances", "", wrong); w.Code != http.StatusUnauthorized {
		t.Fatalf("wrong key = %d, want 401", w.Code)
	}
	bearer := map[string]string{"Authorization": "Bearer key-a"}
	if w := doJSON(t, api, "GET", "/v1/instances", "", bearer); w.Code != http.StatusOK {
		t.Fatalf("bearer key = %d, want 200", w.Code)
	}
	header := map[string]string{"X-API-Key": "key-b"}
	if w := doJSON(t, api, "GET", "/v1/instances", "", header); w.Code != http.StatusOK {
		t.Fatalf("X-API-Key = %d, want 200", w.Code)
	}
	// A client must not be able to spoof the resolved-tenant header.
	spoof := map[string]string{"X-Resolved-Tenant": "alpha"}
	if w := doJSON(t, api, "GET", "/v1/instances", "", spoof); w.Code != http.StatusUnauthorized {
		t.Fatalf("spoofed tenant header = %d, want 401", w.Code)
	}
}

func TestAPIAdmissionControl(t *testing.T) {
	tenants := []Tenant{
		{Name: "paid", Key: "key-paid", Limit: Limit{}},
		{Name: "free", Key: "key-free", Limit: Limit{Rate: 0.001, Burst: 2}},
	}
	limiter := NewLimiter()
	clk := &fakeClock{t: time.Unix(2000, 0)}
	limiter.now = clk.now
	for _, ten := range tenants {
		limiter.SetLimit(ten.Name, ten.Limit)
	}
	api, _, metricsReg := newTestAPI(t, tenants, limiter)

	paid := map[string]string{"X-API-Key": "key-paid"}
	free := map[string]string{"X-API-Key": "key-free"}

	// The free tenant burns its burst, then gets 429 with Retry-After.
	for i := 0; i < 2; i++ {
		if w := doJSON(t, api, "GET", "/v1/instances", "", free); w.Code != http.StatusOK {
			t.Fatalf("free burst request %d = %d", i, w.Code)
		}
	}
	w := doJSON(t, api, "GET", "/v1/instances", "", free)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("free over-rate = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	// The paid tenant is unaffected by the free tenant's rejection.
	for i := 0; i < 20; i++ {
		if w := doJSON(t, api, "GET", "/v1/instances", "", paid); w.Code != http.StatusOK {
			t.Fatalf("paid request %d = %d after free tenant throttled", i, w.Code)
		}
	}

	// Both the received and the rejected request land in the metrics.
	var export strings.Builder
	metricsReg.WritePrometheus(&export)
	text := export.String()
	for _, want := range []string{
		`agg_serve_requests_total{tenant="free"} 3`,
		`agg_serve_rejected_total{tenant="free"} 1`,
		`agg_serve_requests_total{tenant="paid"} 20`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics export missing %q", want)
		}
	}
}

func TestAPIInstanceCapReturns429(t *testing.T) {
	reg := NewRegistry(RegistryConfig{
		Limits: Limits{MaxInstances: 1},
		Logger: quietLogger(),
	})
	t.Cleanup(reg.Close)
	resolved, err := NewTenants(nil)
	if err != nil {
		t.Fatal(err)
	}
	api := NewAPI(APIConfig{Registry: reg, Tenants: resolved, Logger: quietLogger()})
	body := func(name string) string {
		return fmt.Sprintf(`{"name":%q,"fleet_size":2,"epoch_ms":100}`, name)
	}
	if w := doJSON(t, api, "POST", "/v1/instances", body("one"), nil); w.Code != http.StatusCreated {
		t.Fatalf("first create = %d", w.Code)
	}
	if w := doJSON(t, api, "POST", "/v1/instances", body("two"), nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("create beyond cap = %d, want 429", w.Code)
	}
}

// TestAPICombinerConfig covers the defense half of the instance config:
// a combiner (with clamp bounds where required) is accepted, echoed back
// in GET and list responses, and invalid combinations answer 400.
func TestAPICombinerConfig(t *testing.T) {
	api, _, _ := newTestAPI(t, nil, nil)

	steps := []struct {
		name       string
		body       string
		wantStatus int
	}{
		{"median-of-k", `{"name":"med","fleet_size":4,"epoch_ms":100,"combiner":"median-of-k"}`, http.StatusCreated},
		{"clamped-mean", `{"name":"clamp","fleet_size":4,"epoch_ms":100,"combiner":"clamped-mean","clamp_min":-10,"clamp_max":10}`, http.StatusCreated},
		{"trimmed-mean", `{"name":"trim","fleet_size":4,"epoch_ms":100,"combiner":"trimmed-mean"}`, http.StatusCreated},
		{"unknown combiner", `{"name":"x1","combiner":"vibes"}`, http.StatusBadRequest},
		{"clamp without clamped-mean", `{"name":"x2","combiner":"median-of-k","clamp_min":0,"clamp_max":1}`, http.StatusBadRequest},
		{"clamped-mean missing bounds", `{"name":"x3","combiner":"clamped-mean"}`, http.StatusBadRequest},
		{"clamped-mean inverted range", `{"name":"x4","combiner":"clamped-mean","clamp_min":5,"clamp_max":-5}`, http.StatusBadRequest},
		{"clamp on default combiner", `{"name":"x5","clamp_min":0,"clamp_max":1}`, http.StatusBadRequest},
	}
	for _, step := range steps {
		w := doJSON(t, api, "POST", "/v1/instances", step.body, nil)
		if w.Code != step.wantStatus {
			t.Fatalf("%s: %d, want %d (body %s)", step.name, w.Code, step.wantStatus, w.Body.String())
		}
	}

	// The accepted config is echoed back verbatim on GET.
	w := doJSON(t, api, "GET", "/v1/instances/clamp", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET clamp: %d (body %s)", w.Code, w.Body.String())
	}
	var got struct {
		Combiner string   `json:"combiner"`
		ClampMin *float64 `json:"clamp_min"`
		ClampMax *float64 `json:"clamp_max"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Combiner != "clamped-mean" || got.ClampMin == nil || got.ClampMax == nil ||
		*got.ClampMin != -10 || *got.ClampMax != 10 {
		t.Fatalf("GET did not echo the combiner config: %s", w.Body.String())
	}
	// An instance created without a combiner omits the fields.
	doJSON(t, api, "POST", "/v1/instances", `{"name":"plain","fleet_size":4,"epoch_ms":100}`, nil)
	w = doJSON(t, api, "GET", "/v1/instances/plain", "", nil)
	if strings.Contains(w.Body.String(), "combiner") {
		t.Fatalf("plain instance leaked combiner fields: %s", w.Body.String())
	}
}

// TestAPICombinerInstanceConverges: a defended instance still serves the
// correct aggregate — the combiner changes the merge policy, not the
// fixed point.
func TestAPICombinerInstanceConverges(t *testing.T) {
	api, _, _ := newTestAPI(t, nil, nil)
	create := `{"name":"defended","function":"average","fleet_size":6,"epoch_ms":80,"combiner":"median-of-k"}`
	if w := doJSON(t, api, "POST", "/v1/instances", create, nil); w.Code != http.StatusCreated {
		t.Fatalf("create: %d (body %s)", w.Code, w.Body.String())
	}
	if w := doJSON(t, api, "POST", "/v1/instances/defended/values", `{"values":[2,4,6,8,10,12]}`, nil); w.Code != http.StatusOK {
		t.Fatalf("feed: %d (body %s)", w.Code, w.Body.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := doJSON(t, api, "GET", "/v1/instances/defended/estimate", "", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("estimate: %d (body %s)", w.Code, w.Body.String())
		}
		var est struct {
			Estimate  float64 `json:"estimate"`
			Converged bool    `json:"converged"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &est); err != nil {
			t.Fatal(err)
		}
		if est.Converged && est.Estimate > 6.9 && est.Estimate < 7.1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("defended instance never converged near 7: %s", w.Body.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
