package serve

import (
	"sync"
	"time"
)

// Limit is one tenant's token-bucket parameters.
type Limit struct {
	// Rate is the sustained request rate in tokens per second. Zero or
	// negative means unlimited.
	Rate float64
	// Burst is the bucket capacity: how many requests may arrive back to
	// back before the rate applies (minimum 1 when Rate > 0).
	Burst float64
}

// limited reports whether the limit actually constrains anything.
func (l Limit) limited() bool { return l.Rate > 0 }

// Limiter is per-tenant token-bucket admission control: each tenant
// owns an independent bucket of Burst tokens refilled at Rate per
// second; a request takes one token or is rejected with the wait until
// the next token. Buckets are isolated — one tenant exhausting its
// budget never delays another. Safe for concurrent use.
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	// now is the clock, swappable by tests.
	now func() time.Time
}

type bucket struct {
	limit  Limit
	tokens float64
	last   time.Time
}

// NewLimiter builds an empty limiter. Tenants without a configured
// limit are admitted unconditionally.
func NewLimiter() *Limiter {
	return &Limiter{buckets: make(map[string]*bucket), now: time.Now}
}

// SetLimit installs (or replaces) a tenant's limit. The bucket starts
// full: a freshly configured tenant gets its whole burst immediately.
func (l *Limiter) SetLimit(tenant string, limit Limit) {
	if limit.limited() && limit.Burst < 1 {
		limit.Burst = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buckets[tenant] = &bucket{limit: limit, tokens: limit.Burst, last: l.now()}
}

// Allow admits or rejects one request for tenant. On rejection,
// retryAfter is how long until a token will be available — the
// Retry-After the API layer serves with the 429.
func (l *Limiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[tenant]
	if !found || !b.limit.limited() {
		return true, 0
	}
	now := l.now()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.limit.Rate
		if b.tokens > b.limit.Burst {
			b.tokens = b.limit.Burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.limit.Rate * float64(time.Second))
}
