package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastConfig is the test schedule: 200ms epochs of 10ms cycles — γ=20
// gossip rounds per epoch, plenty for an 8-node fleet to converge.
func fastConfig(name, function string) InstanceConfig {
	return InstanceConfig{
		Name:      name,
		Function:  function,
		FleetSize: 8,
		EpochMS:   200,
		CycleMS:   10,
	}
}

// waitEstimate polls the instance until cond accepts an estimate or the
// deadline passes, returning the last estimate either way.
func waitEstimate(t *testing.T, inst *Instance, timeout time.Duration, cond func(Estimate) bool) Estimate {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var est Estimate
	for time.Now().Before(deadline) {
		est = inst.Estimate()
		if cond(est) {
			return est
		}
		time.Sleep(20 * time.Millisecond)
	}
	return est
}

func TestInstanceAverageConvergesToFedMean(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Logger: quietLogger()})
	defer reg.Close()
	inst, err := reg.Create(fastConfig("avg", FuncAverage), "default")
	if err != nil {
		t.Fatal(err)
	}
	fed := []float64{20.5, 21.0, 19.5, 23.0, 18.0}
	want := 0.0
	for _, v := range fed {
		want += v
	}
	want /= float64(len(fed))
	inst.Feed(fed, nil, false)

	est := waitEstimate(t, inst, 10*time.Second, func(e Estimate) bool {
		return e.OK && e.Converged && math.Abs(e.Estimate-want)/want <= 0.05
	})
	if !est.OK || !est.Converged {
		t.Fatalf("no converged estimate: %+v", est)
	}
	if rel := math.Abs(est.Estimate-want) / want; rel > 0.05 {
		t.Fatalf("estimate %g vs fed mean %g: rel error %g > 0.05", est.Estimate, want, rel)
	}
	if est.Reporting == 0 || est.Slots != len(fed) {
		t.Fatalf("reporting=%d slots=%d, want >0 and %d", est.Reporting, est.Slots, len(fed))
	}
}

func TestInstanceFeedUpdateReconverges(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Logger: quietLogger()})
	defer reg.Close()
	inst, err := reg.Create(fastConfig("upd", FuncAverage), "default")
	if err != nil {
		t.Fatal(err)
	}
	inst.Feed([]float64{10, 10, 10}, nil, false)
	first := waitEstimate(t, inst, 10*time.Second, func(e Estimate) bool {
		return e.OK && e.Converged && math.Abs(e.Estimate-10) <= 0.5
	})
	if !first.Converged {
		t.Fatalf("first value set never converged: %+v", first)
	}

	// Update the values; the fleet re-samples at the next restart and
	// the generation counter advances past the feed's.
	_, gen := inst.Feed([]float64{40, 40, 40}, nil, false)
	second := waitEstimate(t, inst, 10*time.Second, func(e Estimate) bool {
		return e.OK && e.Converged && e.Generation > gen && math.Abs(e.Estimate-40) <= 2
	})
	if !second.Converged || math.Abs(second.Estimate-40) > 2 {
		t.Fatalf("updated value set never re-converged: %+v", second)
	}
}

func TestInstanceCountTracksFleetSize(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Logger: quietLogger()})
	defer reg.Close()
	cfg := fastConfig("size", FuncCount)
	inst, err := reg.Create(cfg, "default")
	if err != nil {
		t.Fatal(err)
	}
	est := waitEstimate(t, inst, 15*time.Second, func(e Estimate) bool {
		return e.OK && math.Abs(e.Estimate-float64(cfg.FleetSize))/float64(cfg.FleetSize) <= 0.3
	})
	if !est.OK {
		t.Fatalf("COUNT instance produced no estimate: %+v", est)
	}
	if rel := math.Abs(est.Estimate-float64(cfg.FleetSize)) / float64(cfg.FleetSize); rel > 0.3 {
		t.Fatalf("COUNT estimate %g vs fleet size %d: rel error %g", est.Estimate, cfg.FleetSize, rel)
	}
}

func TestInstanceSumAndVariance(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Logger: quietLogger()})
	defer reg.Close()
	fed := []float64{2, 4, 6, 8}

	sum, err := reg.Create(fastConfig("sum", FuncSum), "default")
	if err != nil {
		t.Fatal(err)
	}
	sum.Feed(fed, nil, false)
	est := waitEstimate(t, sum, 10*time.Second, func(e Estimate) bool {
		return e.OK && e.Converged && math.Abs(e.Estimate-20) <= 1
	})
	if math.Abs(est.Estimate-20) > 1 {
		t.Fatalf("SUM estimate %g, want ≈ 20 (%+v)", est.Estimate, est)
	}

	vr, err := reg.Create(fastConfig("var", FuncVariance), "default")
	if err != nil {
		t.Fatal(err)
	}
	vr.Feed(fed, nil, false)
	// Var({2,4,6,8}) = E[x²] − E[x]² = 30 − 25 = 5.
	est = waitEstimate(t, vr, 10*time.Second, func(e Estimate) bool {
		return e.OK && e.Converged && math.Abs(e.Estimate-5) <= 0.5
	})
	if math.Abs(est.Estimate-5) > 0.5 {
		t.Fatalf("VARIANCE estimate %g, want ≈ 5 (%+v)", est.Estimate, est)
	}
}

func TestInstanceNamedSlots(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Logger: quietLogger()})
	defer reg.Close()
	inst, err := reg.Create(fastConfig("named", FuncAverage), "default")
	if err != nil {
		t.Fatal(err)
	}
	// Named slots upsert: re-feeding "web1" replaces its value rather
	// than appending a new slot.
	inst.Feed(nil, map[string]float64{"web1": 10, "web2": 20}, false)
	slots, _ := inst.Feed(nil, map[string]float64{"web1": 30}, false)
	if slots != 2 {
		t.Fatalf("slots = %d after named upsert, want 2", slots)
	}
	est := waitEstimate(t, inst, 10*time.Second, func(e Estimate) bool {
		return e.OK && e.Converged && math.Abs(e.Estimate-25) <= 1
	})
	if math.Abs(est.Estimate-25) > 1 {
		t.Fatalf("estimate %g after upsert, want ≈ 25 (%+v)", est.Estimate, est)
	}
}

// TestDeleteReleasesGoroutines is the leak check of ISSUE satellite 6:
// create-and-delete cycles must return the process to its baseline
// goroutine count — every node loop, transport reader and timer freed.
func TestDeleteReleasesGoroutines(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Logger: quietLogger()})
	defer reg.Close()

	// Warm up: one instance's lifetime populates any lazy global state.
	warm, err := reg.Create(fastConfig("warm", FuncAverage), "default")
	if err != nil {
		t.Fatal(err)
	}
	warm.Feed([]float64{1, 2}, nil, false)
	if err := reg.Delete("warm"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("leak-%d", i)
		inst, err := reg.Create(fastConfig(name, FuncVariance), "default")
		if err != nil {
			t.Fatal(err)
		}
		inst.Feed([]float64{1, 2, 3}, nil, false)
		inst.Estimate()
		if err := reg.Delete(name); err != nil {
			t.Fatal(err)
		}
	}

	// Goroutine teardown is asynchronous after Stop returns only for the
	// runtime's bookkeeping; poll briefly rather than sleeping long.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestConcurrentFeedAndQuery hammers one instance from many goroutines
// through the full HTTP handler — the -race exercise for the serving
// path (ISSUE satellite 3).
func TestConcurrentFeedAndQuery(t *testing.T) {
	api, _, _ := newTestAPI(t, nil, nil)
	w := doJSON(t, api, "POST", "/v1/instances",
		`{"name":"hammer","fleet_size":4,"epoch_ms":100}`, nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", w.Code, w.Body.String())
	}

	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var req *http.Request
				switch i % 3 {
				case 0:
					body := fmt.Sprintf(`{"values":[%d,%d]}`, g, i)
					req = httptest.NewRequest("POST", "/v1/instances/hammer/values", strings.NewReader(body))
				case 1:
					req = httptest.NewRequest("GET", "/v1/instances/hammer/estimate", nil)
				default:
					req = httptest.NewRequest("GET", "/v1/instances", nil)
				}
				rec := httptest.NewRecorder()
				api.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d round %d: %s = %d", g, i, req.URL.Path, rec.Code)
					return
				}
				if req.Method == "GET" && strings.HasSuffix(req.URL.Path, "estimate") {
					var est Estimate
					if err := json.Unmarshal(rec.Body.Bytes(), &est); err != nil {
						errs <- fmt.Errorf("worker %d round %d: bad estimate body: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
