// Package cliutil holds the daemon wiring the CLI binaries share: the
// -metrics-addr/-trace/-timeline/-log flag set and the telemetry state
// (logger, registry, trace ring, flight recorder) built from it, so
// aggnode and aggd expose identical observability surfaces without
// duplicating the plumbing.
package cliutil

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	"antientropy/internal/obs"
)

// TelemetryFlags is the shared daemon flag set, registered with
// RegisterTelemetry and resolved with Build after flag.Parse.
type TelemetryFlags struct {
	MetricsAddr *string
	TraceCap    *int
	TimelineCap *int
	LogLevel    *string
}

// RegisterTelemetry registers the shared -metrics-addr, -trace,
// -timeline and -log flags on fs with the given timeline default.
func RegisterTelemetry(fs *flag.FlagSet, timelineDefault int) *TelemetryFlags {
	return &TelemetryFlags{
		MetricsAddr: fs.String("metrics-addr", "",
			"serve Prometheus /metrics, /debug/trace, /debug/timeline and /debug/pprof on this address (empty: off)"),
		TraceCap: fs.Int("trace", 0,
			"retain the newest N exchange trace events (served on /debug/trace; 0: off)"),
		TimelineCap: fs.Int("timeline", timelineDefault,
			"retain the newest N status-tick flight-recorder snapshots (served on /debug/timeline; 0: off)"),
		LogLevel: fs.String("log", "info",
			"stderr log level: debug, info, warn or error"),
	}
}

// Telemetry is the built state: the structured logger plus the metric
// registry and rings selected by the flags.
type Telemetry struct {
	MetricsAddr string
	Logger      *slog.Logger
	// Registry is non-nil when -metrics-addr is set, or when Build was
	// asked to force it (daemons that always export metrics).
	Registry *obs.Registry
	Trace    *obs.TraceRing
	Timeline *obs.Timeline
}

// Build resolves the parsed flags. forceRegistry creates the metric
// registry even without -metrics-addr — for daemons like aggd whose
// primary listener serves /metrics regardless.
func (f *TelemetryFlags) Build(forceRegistry bool) (*Telemetry, error) {
	logger, err := ParseLogLevel(*f.LogLevel)
	if err != nil {
		return nil, err
	}
	t := &Telemetry{MetricsAddr: *f.MetricsAddr, Logger: logger}
	if *f.TraceCap > 0 {
		t.Trace = obs.NewTraceRing(*f.TraceCap)
	}
	if *f.TimelineCap > 0 {
		t.Timeline = obs.NewTimeline(*f.TimelineCap)
	}
	if t.MetricsAddr != "" || forceRegistry {
		t.Registry = obs.NewRegistry()
	}
	return t, nil
}

// Serve starts the telemetry server on -metrics-addr, returning (nil,
// nil) when the flag is unset. Close the server to drain and stop.
func (t *Telemetry) Serve() (*obs.Server, error) {
	if t.MetricsAddr == "" {
		return nil, nil
	}
	return obs.Serve(t.MetricsAddr, t.Registry, t.Trace, t.Timeline)
}

// ServeWith starts the telemetry server on addr with extra routes
// mounted on the same mux — the combined API + telemetry listener.
func (t *Telemetry) ServeWith(addr string, mount func(*http.ServeMux)) (*obs.Server, error) {
	return obs.ServeWith(addr, t.Registry, t.Trace, t.Timeline, mount)
}

// ParseLogLevel builds the stderr structured logger the daemons share,
// replacing ad-hoc stderr prints.
func ParseLogLevel(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}
