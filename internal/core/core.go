// Package core implements the primary contribution of the DSN'04 paper:
// anti-entropy, push-pull epidemic aggregation. It provides
//
//   - the elementary UPDATE functions of §3 and §5 (AVERAGE, MIN, MAX,
//     GEOMETRIC-MEAN) as symmetric exchange rules with conservation
//     guarantees,
//   - the multi-leader map state and merge rule of the COUNT protocol
//     (§5), together with leader election (P_lead = C/N̂),
//   - the epoch schedule, automatic restart and epoch-synchronization
//     rules of the practical protocol (§4.1–4.3),
//   - the multi-instance trimmed-mean combiner of §7.3, and
//   - the derived aggregates SUM, PRODUCT, VARIANCE and network size.
//
// The package is purely computational: the cycle-driven simulator
// (internal/sim) and the asynchronous runtime (internal/agent) both build
// on it.
package core

import (
	"errors"
	"fmt"
	"math"
)

// UpdateFunc is the elementary variance-reduction step of the protocol
// (method UPDATE in Figure 1 of the paper): given the two estimates
// exchanged by the initiator and the responder it returns their new
// estimates. All functions shipped with this package are symmetric — both
// peers install the same value — which is what makes the push-pull scheme
// mass-conserving.
type UpdateFunc func(a, b float64) (newA, newB float64)

// Function couples an update rule with its name and the properties the
// engine and tests rely on.
type Function struct {
	// Name identifies the aggregate ("average", "min", ...).
	Name string
	// Update is the elementary exchange step.
	Update UpdateFunc
	// Conserves describes the invariant preserved by Update, used by
	// property tests ("sum", "product", "set-max", "set-min", "none").
	Conserves string
}

// String returns the function name.
func (f Function) String() string { return f.Name }

// Average computes the global arithmetic mean: UPDATE(a, b) = ((a+b)/2,
// (a+b)/2). Every exchange preserves the sum of the two estimates, hence
// the global average, while strictly decreasing their spread (paper §3).
var Average = Function{
	Name:      "average",
	Conserves: "sum",
	Update: func(a, b float64) (float64, float64) {
		m := (a + b) / 2
		return m, m
	},
}

// Min propagates the global minimum: UPDATE(a, b) = (min, min). The
// minimum spreads like an epidemic broadcast (paper §5).
var Min = Function{
	Name:      "min",
	Conserves: "set-min",
	Update: func(a, b float64) (float64, float64) {
		m := math.Min(a, b)
		return m, m
	},
}

// Max propagates the global maximum (paper §5).
var Max = Function{
	Name:      "max",
	Conserves: "set-max",
	Update: func(a, b float64) (float64, float64) {
		m := math.Max(a, b)
		return m, m
	},
}

// GeometricMean converges to the global geometric mean: UPDATE(a, b) =
// (√(ab), √(ab)). Every exchange preserves the product of the two
// estimates (paper §5). Estimates must be non-negative; the protocol is
// typically run on positive measurements.
var GeometricMean = Function{
	Name:      "geometric-mean",
	Conserves: "product",
	Update: func(a, b float64) (float64, float64) {
		m := math.Sqrt(a * b)
		return m, m
	},
}

// Functions lists every scalar aggregate shipped with the package.
func Functions() []Function {
	return []Function{Average, Min, Max, GeometricMean}
}

// FunctionByName resolves a scalar aggregate by its name.
func FunctionByName(name string) (Function, error) {
	for _, f := range Functions() {
		if f.Name == name {
			return f, nil
		}
	}
	return Function{}, fmt.Errorf("core: unknown aggregation function %q", name)
}

// ErrNoEstimate is returned when an estimate is requested from a node
// that has not accumulated any mass for the requested instance.
var ErrNoEstimate = errors.New("core: no estimate available")

// SizeFromAverage converts a converged COUNT estimate into a network-size
// estimate: with the peak initialization (one leader holds 1, everyone
// else 0) the true average is 1/N, so N = 1/estimate (paper §5). A zero
// or negative estimate means the node has seen no mass from the leader —
// the paper notes the estimate "can even become infinite" if every node
// holding mass crashes; we report +Inf in that case.
func SizeFromAverage(avg float64) float64 {
	if avg <= 0 {
		return math.Inf(1)
	}
	return 1 / avg
}

// SumFromAverage composes SUM from the two concurrent protocols the paper
// prescribes (§5): the average of the values and the network size.
func SumFromAverage(avg, size float64) float64 { return avg * size }

// VarianceFromMoments composes VARIANCE from two concurrent averaging
// runs (§5): a = average of values, a2 = average of squared values;
// the variance estimate is a2 − a². Numerical cancellation can produce a
// tiny negative result, which is clamped to 0.
func VarianceFromMoments(avg, avgSq float64) float64 {
	v := avgSq - avg*avg
	if v < 0 {
		return 0
	}
	return v
}

// ProductFromGeometricMean composes PRODUCT from the geometric mean and
// the network size (§5): Π = gm^N.
func ProductFromGeometricMean(gm, size float64) float64 {
	return math.Pow(gm, size)
}
