package core

import (
	"antientropy/internal/stats"
)

// TrimDivisor is the k of the paper's §7.3 combiner: with t concurrent
// instances the ⌊t/k⌋ lowest and ⌊t/k⌋ highest estimates are discarded
// before averaging. The paper uses k = 3.
const TrimDivisor = 3

// Combine reduces the estimates produced by t concurrent instances of the
// aggregation protocol into a single robust output, exactly as §7.3
// prescribes: order the estimates, discard the ⌊t/3⌋ lowest and ⌊t/3⌋
// highest, and return the mean of the rest.
//
// Deprecated: use the pluggable Combiner interface —
// TrimmedMean{Divisor: TrimDivisor}.Combine — which this wraps.
func Combine(estimates []float64) (float64, error) {
	return stats.TrimmedMean(estimates, TrimDivisor)
}

// CombinePlain is the ablation baseline: the plain mean with no trimming.
// Benchmark AblationCombiner contrasts it with Combine under message
// loss.
//
// Deprecated: use Mean{}.Combine from the Combiner interface.
func CombinePlain(estimates []float64) (float64, error) {
	return stats.Mean(estimates)
}

// LeaderProbability returns P_lead = C/N̂, the probability with which each
// node should start a COUNT instance at the beginning of an epoch so that
// the number of concurrent instances is approximately Poisson with mean
// c (paper §5). estimatedSize is the size estimate N̂ obtained in the
// previous epoch; values below 1 are clamped so the probability stays in
// (0, 1].
func LeaderProbability(concurrent float64, estimatedSize float64) float64 {
	if concurrent <= 0 {
		return 0
	}
	if estimatedSize < 1 {
		estimatedSize = 1
	}
	p := concurrent / estimatedSize
	if p > 1 {
		return 1
	}
	return p
}

// ElectLeaders flips the P_lead coin for every node in [0, n) and returns
// the indices that become leaders of a COUNT instance this epoch. The
// returned slice may be empty: the paper accepts occasional leaderless
// epochs as part of the Poisson model.
func ElectLeaders(n int, pLead float64, rng *stats.RNG) []int {
	var leaders []int
	for i := 0; i < n; i++ {
		if rng.Bool(pLead) {
			leaders = append(leaders, i)
		}
	}
	return leaders
}
