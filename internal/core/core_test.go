package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAverageUpdate(t *testing.T) {
	a, b := Average.Update(10, 0)
	if a != 5 || b != 5 {
		t.Fatalf("Average.Update(10,0) = %g,%g", a, b)
	}
}

func TestAverageConservesSumProperty(t *testing.T) {
	if err := quick.Check(func(x, y float64) bool {
		x, y = math.Mod(x, 1e9), math.Mod(y, 1e9)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		nx, ny := Average.Update(x, y)
		return almostEqual(nx+ny, x+y, 1e-6*(math.Abs(x)+math.Abs(y)+1))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAverageReducesSpreadProperty(t *testing.T) {
	if err := quick.Check(func(x, y float64) bool {
		x, y = math.Mod(x, 1e9), math.Mod(y, 1e9)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		nx, ny := Average.Update(x, y)
		return math.Abs(nx-ny) <= math.Abs(x-y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxUpdate(t *testing.T) {
	tests := []struct {
		x, y float64
	}{{1, 2}, {-5, 3}, {7, 7}, {0, -1}}
	for _, tc := range tests {
		lo, lo2 := Min.Update(tc.x, tc.y)
		if lo != math.Min(tc.x, tc.y) || lo2 != lo {
			t.Errorf("Min.Update(%g,%g) = %g,%g", tc.x, tc.y, lo, lo2)
		}
		hi, hi2 := Max.Update(tc.x, tc.y)
		if hi != math.Max(tc.x, tc.y) || hi2 != hi {
			t.Errorf("Max.Update(%g,%g) = %g,%g", tc.x, tc.y, hi, hi2)
		}
	}
}

func TestMinMaxIdempotentProperty(t *testing.T) {
	// Applying the update twice must not change anything (epidemic
	// broadcast semantics).
	if err := quick.Check(func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		a1, b1 := Min.Update(x, y)
		a2, b2 := Min.Update(a1, b1)
		return a1 == a2 && b1 == b2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMeanUpdate(t *testing.T) {
	a, b := GeometricMean.Update(2, 8)
	if !almostEqual(a, 4, 1e-12) || !almostEqual(b, 4, 1e-12) {
		t.Fatalf("GeometricMean.Update(2,8) = %g,%g, want 4,4", a, b)
	}
}

func TestGeometricMeanConservesProductProperty(t *testing.T) {
	if err := quick.Check(func(rx, ry uint32) bool {
		// Positive, bounded inputs.
		x := 1 + float64(rx%100000)
		y := 1 + float64(ry%100000)
		nx, ny := GeometricMean.Update(x, y)
		return almostEqual(nx*ny, x*y, 1e-6*x*y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionByName(t *testing.T) {
	for _, f := range Functions() {
		got, err := FunctionByName(f.Name)
		if err != nil {
			t.Errorf("FunctionByName(%q): %v", f.Name, err)
		}
		if got.Name != f.Name {
			t.Errorf("FunctionByName(%q) returned %q", f.Name, got.Name)
		}
	}
	if _, err := FunctionByName("mode"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestFunctionString(t *testing.T) {
	if Average.String() != "average" {
		t.Fatalf("String = %q", Average.String())
	}
}

func TestSizeFromAverage(t *testing.T) {
	if got := SizeFromAverage(1.0 / 1000); !almostEqual(got, 1000, 1e-6) {
		t.Fatalf("SizeFromAverage = %g", got)
	}
	if !math.IsInf(SizeFromAverage(0), 1) {
		t.Error("zero average must give +Inf size")
	}
	if !math.IsInf(SizeFromAverage(-0.5), 1) {
		t.Error("negative average must give +Inf size")
	}
}

func TestDerivedAggregates(t *testing.T) {
	if got := SumFromAverage(2.5, 100); got != 250 {
		t.Fatalf("SumFromAverage = %g", got)
	}
	// Values {1,2,3}: mean 2, mean square 14/3, variance 14/3-4 = 2/3.
	if got := VarianceFromMoments(2, 14.0/3); !almostEqual(got, 2.0/3, 1e-12) {
		t.Fatalf("VarianceFromMoments = %g", got)
	}
	if got := VarianceFromMoments(2, 3.9); got != 0 {
		t.Fatalf("negative variance not clamped: %g", got)
	}
	// Values {2, 8}: gm = 4, product = 4² = 16.
	if got := ProductFromGeometricMean(4, 2); !almostEqual(got, 16, 1e-9) {
		t.Fatalf("ProductFromGeometricMean = %g", got)
	}
}

func TestMergeMatchedEntries(t *testing.T) {
	a := MapState{1: 0.4}
	b := MapState{1: 0.2}
	m := Merge(a, b)
	if !almostEqual(m[1], 0.3, 1e-12) {
		t.Fatalf("matched merge = %g, want 0.3", m[1])
	}
}

func TestMergeUnmatchedEntriesHalve(t *testing.T) {
	a := MapState{1: 0.8}
	b := MapState{2: 0.4}
	m := Merge(a, b)
	if !almostEqual(m[1], 0.4, 1e-12) || !almostEqual(m[2], 0.2, 1e-12) {
		t.Fatalf("unmatched merge = %v", m)
	}
	if len(m) != 2 {
		t.Fatalf("merged map has %d entries, want 2", len(m))
	}
}

func TestMergeConservesMassProperty(t *testing.T) {
	// Both peers install Merge(a, b); the total mass per leader across
	// the two nodes must be unchanged: 2·m[l] == a[l] + b[l].
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(av, bv []uint16) bool {
		a := MapState{}
		b := MapState{}
		for i, v := range av {
			a[LeaderID(i%8)] = float64(v) / 100
		}
		for i, v := range bv {
			b[LeaderID(i%8+4)] = float64(v) / 100
		}
		m := Merge(a, b)
		for l := LeaderID(0); l < 12; l++ {
			before := a[l] + b[l]
			after := 2 * m[l]
			if !almostEqual(before, after, 1e-9) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutativeProperty(t *testing.T) {
	if err := quick.Check(func(av, bv []uint16) bool {
		a := MapState{}
		b := MapState{}
		for i, v := range av {
			a[LeaderID(i%6)] = float64(v)
		}
		for i, v := range bv {
			b[LeaderID(i%6+3)] = float64(v)
		}
		m1 := Merge(a, b)
		m2 := Merge(b, a)
		if len(m1) != len(m2) {
			return false
		}
		for l, v := range m1 {
			if m2[l] != v {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEquivalentToVectorAverage(t *testing.T) {
	// The simulator's vector mode treats a missing entry as 0 and
	// averages element-wise; Merge must agree exactly.
	a := MapState{1: 0.5, 2: 0.25}
	b := MapState{2: 0.75, 3: 1}
	m := Merge(a, b)
	want := map[LeaderID]float64{
		1: (0.5 + 0) / 2,
		2: (0.25 + 0.75) / 2,
		3: (0 + 1) / 2.0,
	}
	for l, w := range want {
		if !almostEqual(m[l], w, 1e-12) {
			t.Errorf("leader %d: merge %g, vector %g", l, m[l], w)
		}
	}
}

func TestNewLeaderState(t *testing.T) {
	m := NewLeaderState(42)
	if len(m) != 1 || m[42] != 1 {
		t.Fatalf("NewLeaderState = %v", m)
	}
}

func TestMapStateClone(t *testing.T) {
	m := MapState{1: 0.5}
	c := m.Clone()
	c[1] = 0.9
	if m[1] != 0.5 {
		t.Fatal("Clone aliases original")
	}
}

func TestMapStateLeadersSorted(t *testing.T) {
	m := MapState{5: 1, 1: 1, 3: 1}
	ls := m.Leaders()
	if len(ls) != 3 || ls[0] != 1 || ls[1] != 3 || ls[2] != 5 {
		t.Fatalf("Leaders = %v", ls)
	}
}

func TestMapStateSizeEstimates(t *testing.T) {
	m := MapState{1: 0.001, 2: 0}
	ests := m.SizeEstimates()
	if !almostEqual(ests[1], 1000, 1e-6) {
		t.Fatalf("estimate for leader 1 = %g", ests[1])
	}
	if !math.IsInf(ests[2], 1) {
		t.Fatal("zero-mass instance must estimate +Inf")
	}
}

func TestMapStateCombinedSize(t *testing.T) {
	m := MapState{1: 1.0 / 90, 2: 1.0 / 100, 3: 1.0 / 110}
	got, err := m.CombinedSize()
	if err != nil {
		t.Fatal(err)
	}
	// Three estimates: 90, 100, 110 -> drop 1 low and 1 high -> 100.
	if !almostEqual(got, 100, 1e-6) {
		t.Fatalf("CombinedSize = %g, want 100", got)
	}
}

func TestMapStateCombinedSizeNoMass(t *testing.T) {
	m := MapState{1: 0}
	if _, err := m.CombinedSize(); err == nil {
		t.Fatal("massless map produced an estimate")
	}
}

func TestMassAbsentLeader(t *testing.T) {
	m := MapState{}
	if m.Mass(9) != 0 {
		t.Fatal("absent leader should report zero mass")
	}
}
