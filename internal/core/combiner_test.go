package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCombinerByName(t *testing.T) {
	for _, name := range CombinerNames() {
		min, max := 0.0, 0.0
		if name == CombinerClampedMean {
			min, max = -1, 1
		}
		c, err := CombinerByName(name, min, max)
		if err != nil {
			t.Fatalf("CombinerByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("CombinerByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := CombinerByName("vibes", 0, 0); err == nil {
		t.Fatal("unknown combiner accepted")
	}
	if _, err := CombinerByName(CombinerClampedMean, 5, 5); err == nil {
		t.Fatal("clamped-mean accepted an empty range")
	}
	if _, err := CombinerByName(CombinerClampedMean, math.Inf(-1), 0); err == nil {
		t.Fatal("clamped-mean accepted a non-finite bound")
	}
}

// TestMeanPairBitCompat pins the honest-path compatibility contract: the
// Mean combiner over exactly {local, peer} must be bit-identical to the
// classical (local+peer)/2 push-pull step — it is what every engine runs
// when no defense is configured.
func TestMeanPairBitCompat(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return Mean{}.Combine([]float64{a, b}) == (a+b)/2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMedianWithinHonestRangeProperty is the median's breakdown
// guarantee: with a minority of arbitrarily corrupted samples, the
// median stays inside the honest sample range.
func TestMedianWithinHonestRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		k := 3 + rng.Intn(8) // 3..10 samples
		bad := (k+1)/2 - 1   // strict minority: ceil(k/2)-1 corrupted
		honest := make([]float64, 0, k)
		samples := make([]float64, 0, k)
		for i := 0; i < k-bad; i++ {
			v := rng.NormFloat64() * 100
			honest = append(honest, v)
			samples = append(samples, v)
		}
		for i := 0; i < bad; i++ {
			v := (rng.Float64() - 0.5) * 1e15 // arbitrary extremes, both signs
			samples = append(samples, v)
		}
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		got := MedianOfK{}.Combine(samples)
		lo, hi := honest[0], honest[0]
		for _, v := range honest {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if got < lo || got > hi {
			t.Fatalf("trial %d: median %g escaped honest range [%g, %g] with %d/%d corrupted",
				trial, got, lo, hi, bad, k)
		}
	}
}

// TestMedianOfKOrderStatistics pins the even/odd central-element rule
// and input-order independence.
func TestMedianOfKOrderStatistics(t *testing.T) {
	if got := (MedianOfK{}).Combine([]float64{5, 1, 9}); got != 5 {
		t.Fatalf("odd median = %g, want 5", got)
	}
	if got := (MedianOfK{}).Combine([]float64{9, 1, 5, 3}); got != 4 {
		t.Fatalf("even median = %g, want 4", got)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		b := append([]float64(nil), a...)
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		if (MedianOfK{}).Combine(a) != (MedianOfK{}).Combine(b) {
			t.Fatal("median depends on sample order")
		}
	}
}

// TestCombinersDiscardNonFinite: NaN/Inf peer reports are dropped before
// combining, and an all-garbage sample set combines to 0 rather than
// propagating NaN into the estimate.
func TestCombinersDiscardNonFinite(t *testing.T) {
	garbage := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	combiners := []Combiner{Mean{}, ClampedMean{Min: -100, Max: 100}, MedianOfK{}, TrimmedMean{}}
	for _, c := range combiners {
		if got := c.Combine(garbage); got != 0 {
			t.Fatalf("%s over garbage = %g, want 0", c.Name(), got)
		}
		mixed := []float64{math.NaN(), 4, math.Inf(1), 6}
		if got := c.Combine(mixed); got != 5 {
			t.Fatalf("%s over {NaN,4,+Inf,6} = %g, want 5", c.Name(), got)
		}
	}
}

func TestClampedMeanBoundsContribution(t *testing.T) {
	c := ClampedMean{Min: -10, Max: 10}
	if got := c.Combine([]float64{1e12, 0}); got != 5 {
		t.Fatalf("clamped mean = %g, want 5 (extreme clamped to 10)", got)
	}
	if err := quick.Check(func(xs []float64) bool {
		got := c.Combine(xs)
		return got >= c.Min-1e-12 && got <= c.Max+1e-12 || got == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrimmedMeanMatchesHistoricalCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		want, err := Combine(sorted)
		if err != nil {
			t.Fatal(err)
		}
		got := (TrimmedMean{}).Combine(xs)
		if !almostEqual(got, want, 1e-9*(math.Abs(want)+1)) {
			t.Fatalf("trial %d: TrimmedMean = %g, historical Combine = %g", trial, got, want)
		}
	}
}

// TestMergeGuardMeanBitCompat: a Mean guard with the minimal window is
// the classical push-pull step, bit for bit — turning the guard on
// without a defense must not change honest runs.
func TestMergeGuardMeanBitCompat(t *testing.T) {
	g := NewMergeGuard(Mean{}, 2, 4)
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return g.Merge(1, a, b) == (a+b)/2
	}, nil); err != nil {
		t.Fatal(err)
	}
	if g.Rejected() != 0 {
		t.Fatalf("honest merges rejected: %d", g.Rejected())
	}
}

// TestMergeGuardWindowVotes: with a median guard and window k, one
// extreme peer sample after a run of honest ones is outvoted.
func TestMergeGuardWindowVotes(t *testing.T) {
	g := NewMergeGuard(MedianOfK{}, 5, 1)
	for i := 0; i < 4; i++ {
		g.Merge(0, 10, 10)
	}
	if got := g.Merge(0, 10, 1e12); got != 10 {
		t.Fatalf("median guard let the extreme through: %g", got)
	}
	if g.Merges() != 5 {
		t.Fatalf("merges = %d, want 5", g.Merges())
	}
}

// TestMergeGuardResetDropsWindow: epoch restarts must clear the sample
// windows — samples gathered under the previous epoch's value
// assignment must not vote in the next.
func TestMergeGuardResetDropsWindow(t *testing.T) {
	g := NewMergeGuard(MedianOfK{}, 5, 2)
	for i := 0; i < 4; i++ {
		g.Merge(0, 10, 10)
		g.Merge(1, 10, 10)
	}
	g.ResetNode(0)
	// Node 0's window is empty: {local, peer} median is the pair mean.
	if got := g.Merge(0, 0, 8); got != 4 {
		t.Fatalf("after ResetNode, merge = %g, want 4", got)
	}
	g.ResetAll()
	if got := g.Merge(1, 0, 8); got != 4 {
		t.Fatalf("after ResetAll, merge = %g, want 4", got)
	}
}

// TestMergeGuardRejectsGarbageAndCounts: non-finite peers are rejected
// outright (the local value survives) and counted.
func TestMergeGuardRejectsGarbageAndCounts(t *testing.T) {
	g := NewMergeGuard(Mean{}, 2, 1)
	if got := g.Merge(0, 7, math.NaN()); got != 7 {
		t.Fatalf("NaN peer changed the estimate: %g", got)
	}
	if got := g.Merge(0, 7, math.Inf(1)); got != 7 {
		t.Fatalf("Inf peer changed the estimate: %g", got)
	}
	if g.Rejected() != 2 {
		t.Fatalf("rejected = %d, want 2", g.Rejected())
	}
	cg := NewMergeGuard(ClampedMean{Min: -1, Max: 1}, 2, 1)
	cg.Merge(0, 0, 50) // clamped, counts as a rejection
	if cg.Rejected() != 1 {
		t.Fatalf("clamp rejections = %d, want 1", cg.Rejected())
	}
}

// BenchmarkCombinerMedianOfK measures the per-merge cost of the
// outlier-rejection defense at the default window size — the hot path
// of every defended exchange.
func BenchmarkCombinerMedianOfK(b *testing.B) {
	g := NewMergeGuard(MedianOfK{}, DefaultMergeK, 1)
	rng := rand.New(rand.NewSource(1))
	peers := make([]float64, 1024)
	for i := range peers {
		peers[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = g.Merge(0, sink, peers[i&1023])
	}
	_ = sink
}
