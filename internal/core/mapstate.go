package core

import (
	"math"
	"sort"
)

// LeaderID identifies the node that started a concurrent COUNT instance.
// In the simulator it is the node index; in the live runtime it is a hash
// of the leader's address (paper §5: "the address of the leader").
type LeaderID int64

// MapState is the state of the concurrent COUNT protocol (paper §5): a
// map associating each leader id with this node's current estimate for
// that leader's averaging instance. A missing entry is semantically an
// estimate of zero.
type MapState map[LeaderID]float64

// NewLeaderState returns the initial map of a node that leads an
// instance: {(l, 1)}.
func NewLeaderState(l LeaderID) MapState {
	return MapState{l: 1}
}

// Clone returns a deep copy of the map.
func (m MapState) Clone() MapState {
	out := make(MapState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Merge implements the paper's merge rule for two exchanged maps:
//
//	M = {(l, e/2)        | e = Mi(l), l ∉ D(Mj)} ∪
//	    {(l, e/2)        | e = Mj(l), l ∉ D(Mi)} ∪
//	    {(l, (ei+ej)/2)  | ei = Mi(l) ∧ ej = Mj(l)}
//
// and returns the new map M, which both peers install. Halving an
// unmatched entry is exactly averaging it with the implicit zero held by
// the peer, so Merge conserves the total mass of every instance across
// the two nodes.
func Merge(a, b MapState) MapState {
	out := make(MapState, len(a)+len(b))
	for l, ea := range a {
		if eb, ok := b[l]; ok {
			out[l] = (ea + eb) / 2
		} else {
			out[l] = ea / 2
		}
	}
	for l, eb := range b {
		if _, ok := a[l]; !ok {
			out[l] = eb / 2
		}
	}
	return out
}

// Mass returns the total estimate mass held for leader l (0 if absent).
func (m MapState) Mass(l LeaderID) float64 { return m[l] }

// Leaders returns the instance ids present in the map, sorted for
// deterministic iteration.
func (m MapState) Leaders() []LeaderID {
	out := make([]LeaderID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SizeEstimates converts every instance's averaging estimate into a
// network-size estimate 1/e (paper §5). Instances with non-positive mass
// report +Inf.
func (m MapState) SizeEstimates() map[LeaderID]float64 {
	out := make(map[LeaderID]float64, len(m))
	for l, e := range m {
		out[l] = SizeFromAverage(e)
	}
	return out
}

// CombinedSize reduces the per-instance size estimates with the
// multi-instance combiner of §7.3 (trimmed mean, see Combine). It returns
// ErrNoEstimate when no instance carries positive mass.
func (m MapState) CombinedSize() (float64, error) {
	ests := make([]float64, 0, len(m))
	for _, e := range m {
		if s := SizeFromAverage(e); !math.IsInf(s, 1) {
			ests = append(ests, s)
		}
	}
	if len(ests) == 0 {
		return 0, ErrNoEstimate
	}
	return Combine(ests)
}
