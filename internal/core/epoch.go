package core

import (
	"errors"
	"time"
)

// Schedule fixes the timing structure of the practical protocol
// (§4.1–4.3): execution is divided into consecutive epochs of length
// Delta; within an epoch the protocol runs Gamma cycles of length
// CycleLen (δ) and is then terminated, its estimate becoming the epoch's
// output; a fresh instance restarts from the current local values.
type Schedule struct {
	// Start anchors epoch 0.
	Start time.Time
	// Delta is the epoch length Δ.
	Delta time.Duration
	// CycleLen is the cycle length δ.
	CycleLen time.Duration
	// Gamma is the number of cycles γ executed per epoch. Gamma·CycleLen
	// may be smaller than Delta (idle tail) or larger (epochs overlap, in
	// which case messages must be tagged — which this implementation
	// always does).
	Gamma int
}

// Validate reports a configuration error, if any.
func (s Schedule) Validate() error {
	switch {
	case s.Delta <= 0:
		return errors.New("core: schedule Delta must be positive")
	case s.CycleLen <= 0:
		return errors.New("core: schedule CycleLen must be positive")
	case s.Gamma < 1:
		return errors.New("core: schedule Gamma must be at least 1")
	default:
		return nil
	}
}

// EpochAt returns the epoch identifier active at time t. Times before
// Start belong to epoch 0.
func (s Schedule) EpochAt(t time.Time) uint64 {
	if !t.After(s.Start) {
		return 0
	}
	return uint64(t.Sub(s.Start) / s.Delta)
}

// StartOf returns the wall-clock start of the given epoch.
func (s Schedule) StartOf(epoch uint64) time.Time {
	return s.Start.Add(time.Duration(epoch) * s.Delta)
}

// CycleWithin returns the cycle index within the epoch at time t, capped
// at Gamma (the protocol idles once its γ cycles are done).
func (s Schedule) CycleWithin(t time.Time) int {
	e := s.EpochAt(t)
	off := t.Sub(s.StartOf(e))
	if off < 0 {
		return 0
	}
	c := int(off / s.CycleLen)
	if c > s.Gamma {
		c = s.Gamma
	}
	return c
}

// SyncAction is the decision taken on receiving a message tagged with a
// remote epoch identifier (§4.3).
type SyncAction int

const (
	// KeepEpoch: the message belongs to the current epoch; process it.
	KeepEpoch SyncAction = iota + 1
	// DropStale: the message belongs to an earlier epoch; ignore it.
	DropStale
	// JumpForward: the message carries a later epoch id — stop the
	// current instance, restart from local values, and adopt the remote
	// epoch (epidemic epoch propagation).
	JumpForward
)

// String returns a human-readable action name.
func (a SyncAction) String() string {
	switch a {
	case KeepEpoch:
		return "keep"
	case DropStale:
		return "drop-stale"
	case JumpForward:
		return "jump-forward"
	default:
		return "unknown"
	}
}

// Synchronize implements the paper's epoch-synchronization rule: a node
// participating in epoch cur that receives a message tagged j decides
// whether to process it, drop it, or jump to the newer epoch.
func Synchronize(cur, incoming uint64) SyncAction {
	switch {
	case incoming == cur:
		return KeepEpoch
	case incoming < cur:
		return DropStale
	default:
		return JumpForward
	}
}

// JoinInfo is what an existing node hands a joining node (§4.2): joiners
// may not participate in the current epoch, only in the next one, so that
// each epoch converges to the average that existed at its start.
type JoinInfo struct {
	// NextEpoch is the identifier of the first epoch the joiner may take
	// part in.
	NextEpoch uint64
	// WaitFor is the time remaining until that epoch starts.
	WaitFor time.Duration
}

// JoinAt computes the join information handed out at time t under
// schedule s.
func (s Schedule) JoinAt(t time.Time) JoinInfo {
	cur := s.EpochAt(t)
	next := cur + 1
	wait := s.StartOf(next).Sub(t)
	if wait < 0 {
		wait = 0
	}
	return JoinInfo{NextEpoch: next, WaitFor: wait}
}
