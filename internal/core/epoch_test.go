package core

import (
	"testing"
	"time"

	"antientropy/internal/stats"
)

func validSchedule() Schedule {
	return Schedule{
		Start:    time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		Delta:    30 * time.Second,
		CycleLen: time.Second,
		Gamma:    30,
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := validSchedule().Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := validSchedule()
	bad.Delta = 0
	if bad.Validate() == nil {
		t.Error("zero Delta accepted")
	}
	bad = validSchedule()
	bad.CycleLen = -time.Second
	if bad.Validate() == nil {
		t.Error("negative CycleLen accepted")
	}
	bad = validSchedule()
	bad.Gamma = 0
	if bad.Validate() == nil {
		t.Error("zero Gamma accepted")
	}
}

func TestEpochAt(t *testing.T) {
	s := validSchedule()
	tests := []struct {
		offset time.Duration
		want   uint64
	}{
		{0, 0},
		{29 * time.Second, 0},
		{30 * time.Second, 1},
		{59 * time.Second, 1},
		{5 * time.Minute, 10},
		{-time.Hour, 0}, // before Start clamps to epoch 0
	}
	for _, tc := range tests {
		if got := s.EpochAt(s.Start.Add(tc.offset)); got != tc.want {
			t.Errorf("EpochAt(+%v) = %d, want %d", tc.offset, got, tc.want)
		}
	}
}

func TestStartOfRoundTrips(t *testing.T) {
	s := validSchedule()
	for e := uint64(0); e < 5; e++ {
		if got := s.EpochAt(s.StartOf(e)); got != e {
			t.Errorf("EpochAt(StartOf(%d)) = %d", e, got)
		}
	}
}

func TestCycleWithin(t *testing.T) {
	s := validSchedule()
	if got := s.CycleWithin(s.Start.Add(500 * time.Millisecond)); got != 0 {
		t.Errorf("cycle at +0.5s = %d", got)
	}
	if got := s.CycleWithin(s.Start.Add(5 * time.Second)); got != 5 {
		t.Errorf("cycle at +5s = %d", got)
	}
	// Capped at Gamma even if Delta allows more time.
	long := validSchedule()
	long.Delta = time.Minute
	if got := long.CycleWithin(long.Start.Add(45 * time.Second)); got != 30 {
		t.Errorf("cycle beyond gamma = %d, want 30 (capped)", got)
	}
}

func TestSynchronize(t *testing.T) {
	tests := []struct {
		cur, in uint64
		want    SyncAction
	}{
		{5, 5, KeepEpoch},
		{5, 4, DropStale},
		{5, 0, DropStale},
		{5, 6, JumpForward},
		{0, 100, JumpForward},
	}
	for _, tc := range tests {
		if got := Synchronize(tc.cur, tc.in); got != tc.want {
			t.Errorf("Synchronize(%d, %d) = %v, want %v", tc.cur, tc.in, got, tc.want)
		}
	}
}

func TestSyncActionString(t *testing.T) {
	if KeepEpoch.String() != "keep" || DropStale.String() != "drop-stale" ||
		JumpForward.String() != "jump-forward" || SyncAction(0).String() != "unknown" {
		t.Error("SyncAction strings wrong")
	}
}

func TestJoinAt(t *testing.T) {
	s := validSchedule()
	// Joining 10 s into epoch 2: next epoch 3 starts 20 s later.
	at := s.Start.Add(70 * time.Second)
	info := s.JoinAt(at)
	if info.NextEpoch != 3 {
		t.Fatalf("NextEpoch = %d, want 3", info.NextEpoch)
	}
	if info.WaitFor != 20*time.Second {
		t.Fatalf("WaitFor = %v, want 20s", info.WaitFor)
	}
}

func TestJoinAtBoundary(t *testing.T) {
	s := validSchedule()
	info := s.JoinAt(s.StartOf(4))
	if info.NextEpoch != 5 || info.WaitFor != s.Delta {
		t.Fatalf("boundary join = %+v", info)
	}
}

func TestCombine(t *testing.T) {
	// 6 instances sorted {1,2,90,100,110,95000}: drop the 2 lowest and 2
	// highest, leaving mean(90, 100) = 95.
	got, err := Combine([]float64{1, 90, 100, 110, 95000, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 95, 1e-9) {
		t.Fatalf("Combine = %g, want 95", got)
	}
}

func TestCombinePlainDiffersUnderOutliers(t *testing.T) {
	xs := []float64{100, 100, 100, 1e9, 100, 100}
	trimmed, err := Combine(xs)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CombinePlain(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(trimmed, 100, 1e-6) {
		t.Fatalf("trimmed = %g", trimmed)
	}
	if plain < 1e8 {
		t.Fatalf("plain mean should be dominated by the outlier, got %g", plain)
	}
}

func TestLeaderProbability(t *testing.T) {
	if got := LeaderProbability(10, 1000); !almostEqual(got, 0.01, 1e-12) {
		t.Fatalf("P_lead = %g, want 0.01", got)
	}
	if got := LeaderProbability(10, 5); got != 1 {
		t.Fatalf("P_lead should clamp to 1, got %g", got)
	}
	if got := LeaderProbability(0, 100); got != 0 {
		t.Fatalf("zero concurrency should give 0, got %g", got)
	}
	if got := LeaderProbability(2, 0.5); got != 1 {
		t.Fatalf("tiny estimated size should clamp, got %g", got)
	}
}

func TestElectLeadersPoissonCount(t *testing.T) {
	// With P_lead = C/N the number of leaders is ≈ Poisson(C).
	rng := stats.NewRNG(77)
	const n, c, trials = 2000, 8.0, 300
	var m stats.Moments
	for i := 0; i < trials; i++ {
		leaders := ElectLeaders(n, LeaderProbability(c, n), rng)
		for _, l := range leaders {
			if l < 0 || l >= n {
				t.Fatalf("leader index out of range: %d", l)
			}
		}
		m.Add(float64(len(leaders)))
	}
	if m.Mean() < c*0.85 || m.Mean() > c*1.15 {
		t.Fatalf("mean leader count %.2f, want ≈ %g", m.Mean(), c)
	}
	// Poisson: variance ≈ mean.
	if m.Variance() < c*0.6 || m.Variance() > c*1.5 {
		t.Fatalf("leader count variance %.2f, want ≈ %g", m.Variance(), c)
	}
}

func TestElectLeadersDegenerate(t *testing.T) {
	rng := stats.NewRNG(1)
	if got := ElectLeaders(100, 0, rng); len(got) != 0 {
		t.Fatal("P=0 elected leaders")
	}
	if got := ElectLeaders(100, 1, rng); len(got) != 100 {
		t.Fatal("P=1 must elect everyone")
	}
}
