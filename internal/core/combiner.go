package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Combiner reduces a set of estimate samples to one value. It is the
// pluggable merge policy of the defense API: the same interface covers
// the §7.3 multi-instance combination (reduce t concurrent instance
// outputs to one robust estimate) and the per-exchange push-pull merge
// (reduce {local, peer, recent peers} to the node's next estimate, see
// MergeGuard). Implementations must be deterministic pure functions of
// the sample multiset so the simulation engines stay bit-reproducible.
//
// Non-finite samples (NaN, ±Inf) are discarded by every shipped
// implementation — a Byzantine node reporting NaN must not be able to
// poison the merge. An all-discarded sample set combines to 0.
type Combiner interface {
	// Name identifies the combiner for configs, logs and the serve API.
	Name() string
	// Combine reduces the samples. It must not modify the slice.
	Combine(samples []float64) float64
}

// Combiner names accepted by CombinerByName (and the scenario DSL's
// defense section and the serve API's combiner field).
const (
	CombinerMean        = "mean"
	CombinerClampedMean = "clamped-mean"
	CombinerMedianOfK   = "median-of-k"
	CombinerTrimmedMean = "trimmed-mean"
)

// CombinerNames lists the recognized combiner names.
func CombinerNames() []string {
	return []string{CombinerMean, CombinerClampedMean, CombinerMedianOfK, CombinerTrimmedMean}
}

// CombinerByName resolves a combiner name. clampMin/clampMax only apply
// to "clamped-mean"; they must satisfy clampMin < clampMax and be
// finite.
func CombinerByName(name string, clampMin, clampMax float64) (Combiner, error) {
	switch name {
	case CombinerMean:
		return Mean{}, nil
	case CombinerClampedMean:
		if !(clampMin < clampMax) || math.IsInf(clampMin, 0) || math.IsInf(clampMax, 0) ||
			math.IsNaN(clampMin) || math.IsNaN(clampMax) {
			return nil, fmt.Errorf("core: clamped-mean needs finite clamp bounds with min < max, got [%g, %g]",
				clampMin, clampMax)
		}
		return ClampedMean{Min: clampMin, Max: clampMax}, nil
	case CombinerMedianOfK:
		return MedianOfK{}, nil
	case CombinerTrimmedMean:
		return TrimmedMean{Divisor: TrimDivisor}, nil
	default:
		return nil, fmt.Errorf("core: unknown combiner %q (want one of %v)", name, CombinerNames())
	}
}

// finite collects the finite samples of xs into dst (reused when
// capacity allows).
func finite(dst, xs []float64) []float64 {
	dst = dst[:0]
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			dst = append(dst, x)
		}
	}
	return dst
}

// Mean is the undefended baseline: the arithmetic mean of the finite
// samples. Over {local, peer} it reproduces the paper's elementary
// push-pull step (a+b)/2 exactly.
type Mean struct{}

// Name identifies the combiner.
func (Mean) Name() string { return CombinerMean }

// Combine averages the finite samples.
func (Mean) Combine(samples []float64) float64 {
	var sum float64
	n := 0
	for _, x := range samples {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ClampedMean clamps every sample into [Min, Max] before averaging —
// the value-clamping defense: a Byzantine extreme contributes at most
// the clamp bound, so the bias an attacker can inject per merge is
// bounded by (Max−Min)/k instead of unbounded.
type ClampedMean struct {
	// Min and Max bound the admissible value range (Min < Max).
	Min, Max float64
}

// Name identifies the combiner.
func (ClampedMean) Name() string { return CombinerClampedMean }

// Combine clamps each finite sample into [Min, Max] and averages.
func (c ClampedMean) Combine(samples []float64) float64 {
	var sum float64
	n := 0
	for _, x := range samples {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x < c.Min {
			x = c.Min
		}
		if x > c.Max {
			x = c.Max
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MedianOfK returns the median of the finite samples — the
// outlier-rejection defense for redundant exchanges: with k samples per
// merge, up to ⌈k/2⌉−1 of them can be arbitrarily corrupted without
// moving the output outside the honest sample range (the classical 50%
// breakdown point of the median).
type MedianOfK struct{}

// Name identifies the combiner.
func (MedianOfK) Name() string { return CombinerMedianOfK }

// Combine returns the median of the finite samples (mean of the two
// central order statistics for even counts).
func (MedianOfK) Combine(samples []float64) float64 {
	buf := finite(make([]float64, 0, len(samples)), samples)
	if len(buf) == 0 {
		return 0
	}
	sort.Float64s(buf)
	mid := len(buf) / 2
	if len(buf)%2 == 1 {
		return buf[mid]
	}
	return (buf[mid-1] + buf[mid]) / 2
}

// TrimmedMean is the paper's §7.3 combiner: sort, discard the
// ⌊len/Divisor⌋ lowest and highest samples, average the rest. With
// Divisor = TrimDivisor it is exactly the historical Combine helper.
type TrimmedMean struct {
	// Divisor is the paper's k (≤ 0 selects TrimDivisor).
	Divisor int
}

// Name identifies the combiner.
func (TrimmedMean) Name() string { return CombinerTrimmedMean }

// Combine trims and averages the finite samples. When trimming would
// discard everything it falls back to the plain mean, mirroring the
// historical helper.
func (t TrimmedMean) Combine(samples []float64) float64 {
	k := t.Divisor
	if k <= 0 {
		k = TrimDivisor
	}
	buf := finite(make([]float64, 0, len(samples)), samples)
	if len(buf) == 0 {
		return 0
	}
	drop := len(buf) / k
	if 2*drop >= len(buf) {
		return Mean{}.Combine(buf)
	}
	sort.Float64s(buf)
	return Mean{}.Combine(buf[drop : len(buf)-drop])
}

// MergeGuard applies a Combiner to the pairwise push-pull merge,
// keeping a per-node window of recent peer samples so that median-of-k
// style combiners have k samples to vote over instead of the two a
// single exchange provides. One guard instance serves a whole engine
// (node-indexed) or a single live node (n = 1, node 0).
//
// Merge(i, local, peer) combines {local, peer} ∪ window(i), then
// appends peer to window(i). With the Mean combiner and an empty window
// (k ≤ 2) the result is bit-identical to the classical (local+peer)/2
// push-pull step. Windows reset at epoch restarts (ResetAll) and on
// node replacement (ResetNode): samples gathered under a previous
// epoch's value assignment must not vote in the next.
//
// Concurrency: node i's window is only touched by Merge(i, ...) calls,
// which every engine issues from the goroutine owning node i (the
// sharded engine merges cross-shard exchanges serially), so windows
// need no locks. The rejection counters are atomics because shards
// observe rejections concurrently.
type MergeGuard struct {
	combiner Combiner
	k        int
	win      [][]float64

	rejected atomic.Int64
	merges   atomic.Int64
}

// DefaultMergeK is the sample-window size used when a defense enables
// a combiner without choosing k: local + current peer + 3 recent peers,
// enough for the median to outvote a single Byzantine sample per merge.
const DefaultMergeK = 5

// NewMergeGuard builds a guard over n node slots. k is the total
// sample budget per merge (local + current peer + up to k−2 recent
// peers); k < 2 selects DefaultMergeK.
func NewMergeGuard(c Combiner, k, n int) *MergeGuard {
	if k < 2 {
		k = DefaultMergeK
	}
	return &MergeGuard{combiner: c, k: k, win: make([][]float64, n)}
}

// Combiner returns the guard's combiner.
func (g *MergeGuard) Combiner() Combiner { return g.combiner }

// K returns the per-merge sample budget.
func (g *MergeGuard) K() int { return g.k }

// Merge combines node's local estimate with the incoming peer sample
// and the node's recent-sample window, then records peer in the window.
// A non-finite peer sample is rejected outright: it never enters the
// window and the merge degenerates to the window vote without it.
func (g *MergeGuard) Merge(node int, local, peer float64) float64 {
	g.merges.Add(1)
	w := g.win[node]
	// The sample buffer is per-call: shards of the parallel engine merge
	// concurrently, and a guard-level scratch would race.
	samples := make([]float64, 0, 2+len(w))
	samples = append(samples, local)
	if math.IsNaN(peer) || math.IsInf(peer, 0) {
		g.rejected.Add(1)
		if len(w) == 0 {
			return local
		}
		samples = append(samples, w...)
		return g.combiner.Combine(samples)
	}
	samples = append(samples, peer)
	samples = append(samples, w...)
	out := g.combiner.Combine(samples)
	if c, ok := g.combiner.(ClampedMean); ok && (peer < c.Min || peer > c.Max) {
		g.rejected.Add(1)
	}
	if g.k > 2 {
		if len(w) >= g.k-2 {
			copy(w, w[1:])
			w[len(w)-1] = peer
		} else {
			w = append(w, peer)
		}
		g.win[node] = w
	}
	return out
}

// ResetNode clears node's sample window (node replacement / join).
func (g *MergeGuard) ResetNode(node int) {
	if g.win[node] != nil {
		g.win[node] = g.win[node][:0]
	}
}

// ResetAll clears every window (epoch restart).
func (g *MergeGuard) ResetAll() {
	for i := range g.win {
		if g.win[i] != nil {
			g.win[i] = g.win[i][:0]
		}
	}
}

// Merges reports the total merges screened by the guard.
func (g *MergeGuard) Merges() int64 { return g.merges.Load() }

// Rejected reports the peer samples the guard rejected or clamped —
// the agg_adversary_rejected_total source.
func (g *MergeGuard) Rejected() int64 { return g.rejected.Load() }
