package sim

import (
	"math"
	"testing"

	"antientropy/internal/stats"
)

func derivedConfig(n int) DerivedConfig {
	return DerivedConfig{
		N:       n,
		Cycles:  30,
		Seed:    11,
		Values:  func(i int) float64 { return float64(i%10) + 1 }, // values 1..10
		Overlay: randomOverlay(20),
		Leader:  0,
	}
}

func TestDerivedConfigValidation(t *testing.T) {
	base := derivedConfig(100)
	tests := []struct {
		name   string
		mutate func(*DerivedConfig)
	}{
		{"zero nodes", func(c *DerivedConfig) { c.N = 0 }},
		{"zero cycles", func(c *DerivedConfig) { c.Cycles = 0 }},
		{"no values", func(c *DerivedConfig) { c.Values = nil }},
		{"no overlay", func(c *DerivedConfig) { c.Overlay = nil }},
		{"bad leader", func(c *DerivedConfig) { c.Leader = -1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := RunSum(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestRunSum(t *testing.T) {
	const n = 1000
	cfg := derivedConfig(n)
	res, err := RunSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// True sum: 100 groups of (1+…+10) = 100·55 = 5500... n=1000 → values
	// repeat 100 times.
	want := 0.0
	for i := 0; i < n; i++ {
		want += cfg.Values(i)
	}
	if res.Name != "sum" {
		t.Fatalf("name = %q", res.Name)
	}
	if res.Estimates.N() != n {
		t.Fatalf("%d estimates, want %d", res.Estimates.N(), n)
	}
	if math.Abs(res.Estimates.Mean()-want)/want > 0.001 {
		t.Fatalf("sum estimate %g, want %g", res.Estimates.Mean(), want)
	}
}

func TestRunVariance(t *testing.T) {
	const n = 1000
	cfg := derivedConfig(n)
	res, err := RunVariance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = cfg.Values(i)
	}
	var m stats.Moments
	m.AddAll(vals)
	want := m.PopVariance() // a2 − a² is the population variance
	if math.Abs(res.Estimates.Mean()-want)/want > 0.001 {
		t.Fatalf("variance estimate %g, want %g", res.Estimates.Mean(), want)
	}
}

func TestRunProduct(t *testing.T) {
	// Product over values that keep the result representable: mostly 1s
	// with a few 2s. True product = 2^(count of 2s).
	const n = 600
	cfg := derivedConfig(n)
	cfg.Values = func(i int) float64 {
		if i%100 == 0 {
			return 2
		}
		return 1
	}
	cfg.Cycles = 40
	res, err := RunProduct(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(2, 6) // six nodes hold 2
	if math.Abs(res.Estimates.Mean()-want)/want > 0.05 {
		t.Fatalf("product estimate %g, want %g", res.Estimates.Mean(), want)
	}
}

func TestRunProductRejectsNonPositive(t *testing.T) {
	cfg := derivedConfig(50)
	cfg.Values = func(i int) float64 { return float64(i) } // node 0 holds 0
	if _, err := RunProduct(cfg); err == nil {
		t.Fatal("non-positive values accepted")
	}
}

func TestVecInitMode(t *testing.T) {
	// VecInit and Leaders are mutually exclusive; VecInit alone works.
	const n = 400
	e, err := Run(Config{
		N: n, Cycles: 25, Seed: 3, Dim: 2,
		VecInit: func(node, dim int) float64 {
			if dim == 0 {
				return float64(node)
			}
			return 1
		},
		Overlay: randomOverlay(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.ForEachParticipantVec(func(node int, vec []float64) {
		if math.Abs(vec[0]-float64(n-1)/2) > 1e-3 {
			t.Fatalf("dim 0 at node %d = %g", node, vec[0])
		}
		if math.Abs(vec[1]-1) > 1e-9 {
			t.Fatalf("dim 1 at node %d = %g", node, vec[1])
		}
	})
	// Both set: rejected.
	_, err = New(Config{
		N: n, Cycles: 1, Dim: 1, Leaders: []int{0},
		VecInit: func(int, int) float64 { return 0 },
		Overlay: randomOverlay(10),
	})
	if err == nil {
		t.Fatal("Leaders+VecInit accepted")
	}
	// Neither set: rejected.
	_, err = New(Config{N: n, Cycles: 1, Dim: 1, Overlay: randomOverlay(10)})
	if err == nil {
		t.Fatal("vector mode without initialization accepted")
	}
}
