package sim

import (
	"errors"
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/stats"
)

// CountChainConfig drives the full COUNT lifecycle of §5 across epochs:
// at every epoch start each node becomes the leader of a concurrent
// instance with probability P_lead = C/N̂, where N̂ is the previous
// epoch's size estimate; the instances run for Gamma cycles and the
// §7.3 trimmed mean combines them into the epoch's output, which feeds
// the next election.
type CountChainConfig struct {
	// N is the network size.
	N int
	// Epochs to run.
	Epochs int
	// Gamma is the cycle count per epoch.
	Gamma int
	// Seed drives all randomness.
	Seed uint64
	// Concurrency is C, the desired number of concurrent instances.
	Concurrency float64
	// InitialGuess seeds N̂ before any epoch has completed.
	InitialGuess float64
	// MaxInstances caps the concurrent instances actually simulated
	// (memory guard: a wildly low N̂ makes P_lead ≈ 1 and would elect
	// every node; the surplus leaders are subsampled). Default 64.
	MaxInstances int
	// Overlay builds the overlay (rebuilt per epoch).
	Overlay OverlayBuilder
	// Failures are applied within every epoch.
	Failures []FailureModel
	// LinkFailure and MessageLoss apply within every epoch.
	LinkFailure float64
	MessageLoss float64
	// Runner executes each epoch's run; nil selects the serial engine.
	// Engine-agnostic callers inject a sharded runner here.
	Runner RunnerFunc
}

func (c CountChainConfig) validate() error {
	if c.N < 1 || c.Epochs < 1 || c.Gamma < 1 {
		return fmt.Errorf("sim: invalid count chain config %+v", c)
	}
	if c.Concurrency <= 0 {
		return errors.New("sim: count chain requires positive Concurrency")
	}
	if c.InitialGuess < 1 {
		return errors.New("sim: count chain requires InitialGuess >= 1")
	}
	if c.Overlay == nil {
		return errors.New("sim: count chain requires an overlay")
	}
	return nil
}

// CountEpochResult is one epoch of the COUNT lifecycle.
type CountEpochResult struct {
	// Epoch index (0-based).
	Epoch int
	// PLead is the election probability used this epoch.
	PLead float64
	// LeadersElected is the number of nodes that won the coin flip
	// (before the MaxInstances cap).
	LeadersElected int
	// Instances is the number of concurrent instances actually run.
	Instances int
	// Outputs summarizes the per-node combined size estimates at the
	// epoch's end (empty if no leader was elected).
	Outputs stats.Moments
}

// RunCountEpochChain executes the configured epochs and returns one
// result per epoch. Epochs that elect no leader produce no estimate and
// leave N̂ unchanged — exactly the behaviour the paper's Poisson model
// accepts as an occasional outcome.
func RunCountEpochChain(cfg CountChainConfig) ([]CountEpochResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxInstances := cfg.MaxInstances
	if maxInstances <= 0 {
		maxInstances = 64
	}
	runner := cfg.Runner
	if runner == nil {
		runner = SerialRunner
	}
	electionRNG := stats.NewRNG(cfg.Seed ^ 0xe1ec7)
	estimate := cfg.InitialGuess
	results := make([]CountEpochResult, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		pLead := core.LeaderProbability(cfg.Concurrency, estimate)
		leaders := core.ElectLeaders(cfg.N, pLead, electionRNG)
		res := CountEpochResult{
			Epoch:          epoch,
			PLead:          pLead,
			LeadersElected: len(leaders),
		}
		if len(leaders) > maxInstances {
			// Subsample: keep an arbitrary deterministic prefix after a
			// shuffle so the cap does not bias toward low node ids.
			electionRNG.Shuffle(len(leaders), func(i, j int) {
				leaders[i], leaders[j] = leaders[j], leaders[i]
			})
			leaders = leaders[:maxInstances]
		}
		res.Instances = len(leaders)
		if len(leaders) > 0 {
			e, err := runner(Config{
				N:           cfg.N,
				Cycles:      cfg.Gamma,
				Seed:        RepSeed(cfg.Seed, epoch),
				Dim:         len(leaders),
				Leaders:     leaders,
				Overlay:     cfg.Overlay,
				Failures:    cfg.Failures,
				LinkFailure: cfg.LinkFailure,
				MessageLoss: cfg.MessageLoss,
			})
			if err != nil {
				return nil, fmt.Errorf("sim: count chain epoch %d: %w", epoch, err)
			}
			res.Outputs = e.SizeMoments()
			if res.Outputs.N() > 0 {
				estimate = res.Outputs.Mean()
			}
		}
		results = append(results, res)
	}
	return results, nil
}
