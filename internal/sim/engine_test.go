package sim

import (
	"math"
	"testing"

	"antientropy/internal/core"
	"antientropy/internal/stats"
	"antientropy/internal/theory"
	"antientropy/internal/topology"
)

// randomOverlay is the paper's standard test overlay: random 20-out.
func randomOverlay(k int) OverlayBuilder {
	return StaticFunc(func(n int, rng *stats.RNG) (topology.Graph, error) {
		if k > n-1 {
			k = n - 1
		}
		return topology.NewRandomKOut(n, k, rng)
	})
}

func completeOverlay() OverlayBuilder {
	return StaticFunc(func(n int, _ *stats.RNG) (topology.Graph, error) {
		return topology.NewComplete(n)
	})
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		N:       10,
		Cycles:  1,
		Fn:      core.Average,
		Init:    ConstInit(1),
		Overlay: completeOverlay(),
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.N = 0 }},
		{"negative cycles", func(c *Config) { c.Cycles = -1 }},
		{"no mode", func(c *Config) { c.Fn = core.Function{}; c.Dim = 0 }},
		{"both modes", func(c *Config) { c.Dim = 1; c.Leaders = []int{0} }},
		{"missing init", func(c *Config) { c.Init = nil }},
		{"no overlay", func(c *Config) { c.Overlay = nil }},
		{"bad link failure", func(c *Config) { c.LinkFailure = 1.5 }},
		{"bad message loss", func(c *Config) { c.MessageLoss = -0.1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	// Vector mode validation.
	vec := Config{N: 10, Cycles: 1, Dim: 2, Leaders: []int{0, 1}, Overlay: completeOverlay()}
	if _, err := New(vec); err != nil {
		t.Fatalf("valid vector config rejected: %v", err)
	}
	vec.Leaders = []int{0}
	if _, err := New(vec); err == nil {
		t.Error("leader/dim mismatch accepted")
	}
	vec.Leaders = []int{0, 99}
	if _, err := New(vec); err == nil {
		t.Error("out-of-range leader accepted")
	}
}

func TestAverageConvergesAndConservesMass(t *testing.T) {
	const n = 1000
	e, err := Run(Config{
		N:       n,
		Cycles:  30,
		Seed:    1,
		Fn:      core.Average,
		Init:    LinearInit(), // true average (n-1)/2
		Overlay: randomOverlay(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := e.ParticipantMoments()
	want := float64(n-1) / 2
	if math.Abs(m.Mean()-want) > 1e-9*want {
		t.Fatalf("global average drifted: %g, want %g", m.Mean(), want)
	}
	// Initial variance ≈ 83k; after 30 cycles of ρ ≈ 0.303 the residual
	// is ~1e-11 — anything above 1e-6 would mean broken convergence.
	if m.Variance() > 1e-6 {
		t.Fatalf("variance after 30 cycles = %g, want ~0", m.Variance())
	}
	// Every node individually converged.
	if m.Max()-m.Min() > 1e-2 {
		t.Fatalf("spread after 30 cycles = %g", m.Max()-m.Min())
	}
}

func TestPeakDistributionConverges(t *testing.T) {
	// Figure 2 scenario: one node holds N, the rest 0; all estimates must
	// converge to 1.
	const n = 2000
	e, err := Run(Config{
		N:       n,
		Cycles:  30,
		Seed:    2,
		Fn:      core.Average,
		Init:    PeakInit(n, 0),
		Overlay: randomOverlay(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := e.ParticipantMoments()
	if math.Abs(m.Mean()-1) > 1e-6 {
		t.Fatalf("mean = %g, want 1", m.Mean())
	}
	if m.Min() < 0.999 || m.Max() > 1.001 {
		t.Fatalf("estimates not converged: [%g, %g]", m.Min(), m.Max())
	}
}

func TestConvergenceFactorMatchesTheory(t *testing.T) {
	// §3: on a sufficiently random overlay ρ ≈ 1/(2√e) ≈ 0.303. Average
	// the measured factor over cycles and repetitions; tolerance is
	// generous but tight enough to catch a broken exchange schedule
	// (push-only gives 0.5, random-pair 1/e ≈ 0.368).
	const n, cycles, reps = 5000, 15, 5
	factors := make([]float64, reps)
	err := ParallelReps(reps, 99, func(rep int, seed uint64) error {
		var tracker stats.ConvergenceTracker
		_, err := Run(Config{
			N:       n,
			Cycles:  cycles,
			Seed:    seed,
			Fn:      core.Average,
			Init:    UniformInit(0, 1, seed+1),
			Overlay: randomOverlay(20),
			Observe: func(cycle int, e *Engine) {
				m := e.ParticipantMoments()
				tracker.Record(m.Variance())
			},
		})
		if err != nil {
			return err
		}
		f, err := tracker.AverageFactor(cycles)
		if err != nil {
			return err
		}
		factors[rep] = f
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := stats.Mean(factors)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-theory.RhoPushPull) > 0.02 {
		t.Fatalf("convergence factor = %.4f, theory %.4f", mean, theory.RhoPushPull)
	}
}

func TestMinMaxBroadcast(t *testing.T) {
	const n = 512
	for _, tc := range []struct {
		fn   core.Function
		want float64
	}{
		{core.Min, 0},
		{core.Max, float64(n - 1)},
	} {
		e, err := Run(Config{
			N:       n,
			Cycles:  20, // super-exponential spread: 20 cycles is plenty
			Seed:    3,
			Fn:      tc.fn,
			Init:    LinearInit(),
			Overlay: randomOverlay(10),
		})
		if err != nil {
			t.Fatal(err)
		}
		m := e.ParticipantMoments()
		if m.Min() != tc.want || m.Max() != tc.want {
			t.Fatalf("%s did not broadcast: [%g, %g], want %g", tc.fn.Name, m.Min(), m.Max(), tc.want)
		}
	}
}

func TestGeometricMeanConverges(t *testing.T) {
	const n = 500
	e, err := Run(Config{
		N:       n,
		Cycles:  40,
		Seed:    4,
		Fn:      core.GeometricMean,
		Init:    func(i int) float64 { return float64(i%9) + 1 }, // values 1..9
		Overlay: randomOverlay(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	// True geometric mean of the initial values.
	vals := make([]float64, n)
	init := func(i int) float64 { return float64(i%9) + 1 }
	for i := range vals {
		vals[i] = init(i)
	}
	want, err := stats.GeometricMean(vals)
	if err != nil {
		t.Fatal(err)
	}
	m := e.ParticipantMoments()
	if math.Abs(m.Mean()-want) > 1e-6*want {
		t.Fatalf("geometric mean = %g, want %g", m.Mean(), want)
	}
}

func TestVectorModeCountSingleLeader(t *testing.T) {
	const n = 1000
	e, err := Run(Config{
		N:       n,
		Cycles:  30,
		Seed:    5,
		Dim:     1,
		Leaders: []int{17},
		Overlay: randomOverlay(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := e.SizeMoments()
	if sizes.N() != n {
		t.Fatalf("only %d of %d nodes produced estimates", sizes.N(), n)
	}
	if math.Abs(sizes.Mean()-n) > 0.01 {
		t.Fatalf("size estimate = %g, want %d", sizes.Mean(), n)
	}
}

func TestVectorModeMultiInstance(t *testing.T) {
	const n, dim = 600, 9
	leaders := make([]int, dim)
	for d := range leaders {
		leaders[d] = d * 7
	}
	e, err := Run(Config{
		N:       n,
		Cycles:  30,
		Seed:    6,
		Dim:     dim,
		Leaders: leaders,
		Overlay: randomOverlay(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every instance conserves unit mass: summed over nodes each
	// dimension must still hold exactly 1 (no failures configured).
	for d := 0; d < dim; d++ {
		total := 0.0
		for i := 0; i < n; i++ {
			total += e.Vector(i)[d]
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("instance %d mass = %g, want 1", d, total)
		}
	}
	sizes := e.SizeMoments()
	if math.Abs(sizes.Mean()-n) > 0.1 {
		t.Fatalf("combined size estimate = %g, want %d", sizes.Mean(), n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e, err := Run(Config{
			N:       200,
			Cycles:  10,
			Seed:    7,
			Fn:      core.Average,
			Init:    LinearInit(),
			Overlay: Newscast(10),
			Failures: []FailureModel{
				Churn{PerCycle: 3},
			},
			LinkFailure: 0.1,
			MessageLoss: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 200)
		e.ForEachParticipant(func(_ int, v float64) { out = append(out, v) })
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("participant counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at participant %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestMassConservedWithLinkFailureAndTimeouts(t *testing.T) {
	// Link failure and crashed-peer timeouts skip whole exchanges and
	// must not change the global sum over live nodes... crashes remove
	// mass, so run without crashes here.
	const n = 400
	e, err := Run(Config{
		N:           n,
		Cycles:      20,
		Seed:        8,
		Fn:          core.Average,
		Init:        LinearInit(),
		Overlay:     randomOverlay(10),
		LinkFailure: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := e.ParticipantMoments()
	want := float64(n-1) / 2
	if math.Abs(m.Mean()-want) > 1e-9*want {
		t.Fatalf("link failure changed the mean: %g, want %g", m.Mean(), want)
	}
	if e.Metrics().LinkDrops == 0 {
		t.Fatal("no link drops recorded at Pd=0.4")
	}
}

func TestReplyLossChangesMass(t *testing.T) {
	// §7.2: losing responses changes the global average.
	const n = 400
	e, err := Run(Config{
		N:           n,
		Cycles:      10,
		Seed:        9,
		Fn:          core.Average,
		Init:        PeakInit(n, 0),
		Overlay:     randomOverlay(10),
		MessageLoss: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	met := e.Metrics()
	if met.ReplyLosses == 0 || met.RequestLosses == 0 {
		t.Fatalf("loss not exercised: %+v", met)
	}
	total := 0.0
	e.ForEachParticipant(func(_ int, v float64) { total += v })
	if math.Abs(total-n) < 1e-9 {
		t.Fatal("30% message loss left the global sum exactly intact — reply-loss semantics missing")
	}
}

func TestLinkFailureSlowsConvergence(t *testing.T) {
	rho := func(pd float64) float64 {
		var tracker stats.ConvergenceTracker
		_, err := Run(Config{
			N:           3000,
			Cycles:      12,
			Seed:        10,
			Fn:          core.Average,
			Init:        UniformInit(0, 1, 11),
			Overlay:     randomOverlay(20),
			LinkFailure: pd,
			Observe: func(_ int, e *Engine) {
				m := e.ParticipantMoments()
				tracker.Record(m.Variance())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := tracker.AverageFactor(12)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	r0, r5, r8 := rho(0), rho(0.5), rho(0.8)
	if !(r0 < r5 && r5 < r8) {
		t.Fatalf("convergence factor not increasing with Pd: %.3f, %.3f, %.3f", r0, r5, r8)
	}
	// §6.2 upper bound.
	if bound := theory.LinkFailureBound(0.5); r5 > bound+0.03 {
		t.Fatalf("rho(0.5) = %.3f exceeds theoretical bound %.3f", r5, bound)
	}
}

func TestCrashFractionRemovesNodes(t *testing.T) {
	const n = 1000
	e, err := Run(Config{
		N:        n,
		Cycles:   5,
		Seed:     12,
		Fn:       core.Average,
		Init:     ConstInit(1),
		Overlay:  completeOverlay(),
		Failures: []FailureModel{CrashFraction{P: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// After 5 cycles of 10% proportional crashes: n·0.9⁵ ≈ 590.
	want := float64(n) * math.Pow(0.9, 5)
	if math.Abs(float64(e.AliveCount())-want) > 3 {
		t.Fatalf("alive = %d, want ≈ %.0f", e.AliveCount(), want)
	}
}

func TestSuddenDeathTriggersOnce(t *testing.T) {
	const n = 1000
	e, err := New(Config{
		N:        n,
		Cycles:   10,
		Seed:     13,
		Fn:       core.Average,
		Init:     ConstInit(1),
		Overlay:  completeOverlay(),
		Failures: []FailureModel{SuddenDeath{AtCycle: 3, Fraction: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{}
	for i := 0; i < 6; i++ {
		e.Step()
		counts = append(counts, e.AliveCount())
	}
	if counts[0] != n || counts[1] != n {
		t.Fatalf("early crash: %v", counts)
	}
	if counts[2] != n/2 {
		t.Fatalf("sudden death at cycle 3 left %d alive, want %d", counts[2], n/2)
	}
	if counts[5] != n/2 {
		t.Fatalf("sudden death re-triggered: %v", counts)
	}
}

func TestChurnKeepsSizeConstant(t *testing.T) {
	const n = 500
	e, err := Run(Config{
		N:        n,
		Cycles:   10,
		Seed:     14,
		Fn:       core.Average,
		Init:     ConstInit(2),
		Overlay:  Newscast(10),
		Failures: []FailureModel{Churn{PerCycle: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.AliveCount() != n {
		t.Fatalf("churn changed network size: %d", e.AliveCount())
	}
	// Participants shrink by roughly the substituted count (some slots
	// are hit more than once).
	participants := 0
	e.ForEachParticipant(func(int, float64) { participants++ })
	if participants >= n || participants < n-10*20 {
		t.Fatalf("participants = %d after churning 200 slots", participants)
	}
	if e.Metrics().Refusals == 0 {
		t.Fatal("joiners never refused an exchange — §7.1 semantics missing")
	}
}

func TestCrashCount(t *testing.T) {
	e, err := Run(Config{
		N:        100,
		Cycles:   5,
		Seed:     15,
		Fn:       core.Average,
		Init:     ConstInit(1),
		Overlay:  completeOverlay(),
		Failures: []FailureModel{CrashCount{PerCycle: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.AliveCount() != 50 {
		t.Fatalf("alive = %d, want 50", e.AliveCount())
	}
}

func TestKillNeverEmptiesNetwork(t *testing.T) {
	e, err := Run(Config{
		N:        10,
		Cycles:   20,
		Seed:     16,
		Fn:       core.Average,
		Init:     ConstInit(1),
		Overlay:  completeOverlay(),
		Failures: []FailureModel{CrashCount{PerCycle: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.AliveCount() < 1 {
		t.Fatal("network emptied out")
	}
}

func TestMetricsAccounting(t *testing.T) {
	e, err := Run(Config{
		N:           300,
		Cycles:      10,
		Seed:        17,
		Fn:          core.Average,
		Init:        ConstInit(1),
		Overlay:     Newscast(8),
		Failures:    []FailureModel{Churn{PerCycle: 5}},
		LinkFailure: 0.1,
		MessageLoss: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	sum := m.Completed + m.Timeouts + m.Refusals + m.LinkDrops + m.RequestLosses + m.ReplyLosses
	if sum != m.Attempts {
		t.Fatalf("metrics do not add up: %+v (sum %d != attempts %d)", m, sum, m.Attempts)
	}
	if m.Attempts == 0 {
		t.Fatal("no attempts recorded")
	}
}

func TestExchangeDistributionMatchesPoissonModel(t *testing.T) {
	// §4.5: exchanges per node per cycle ≈ 1 + Poisson(1): mean 2,
	// variance 1.
	const n = 5000
	var m stats.Moments
	e, err := New(Config{
		N:              n,
		Cycles:         5,
		Seed:           18,
		Fn:             core.Average,
		Init:           ConstInit(1),
		Overlay:        completeOverlay(),
		TrackExchanges: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 5; c++ {
		e.Step()
		for i := 0; i < n; i++ {
			count, err := e.ExchangeCount(i)
			if err != nil {
				t.Fatal(err)
			}
			m.Add(float64(count))
		}
	}
	if math.Abs(m.Mean()-2) > 0.05 {
		t.Fatalf("mean exchanges = %.3f, want ≈ 2", m.Mean())
	}
	if math.Abs(m.Variance()-1) > 0.1 {
		t.Fatalf("exchange variance = %.3f, want ≈ 1", m.Variance())
	}
}

func TestExchangeCountRequiresTracking(t *testing.T) {
	e, err := New(Config{
		N: 10, Cycles: 1, Fn: core.Average, Init: ConstInit(1),
		Overlay: completeOverlay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExchangeCount(0); err == nil {
		t.Fatal("ExchangeCount without tracking should error")
	}
}

func TestObserverCalledEveryCycle(t *testing.T) {
	var cycles []int
	_, err := Run(Config{
		N: 10, Cycles: 3, Seed: 19, Fn: core.Average, Init: ConstInit(1),
		Overlay: completeOverlay(),
		Observe: func(cycle int, _ *Engine) { cycles = append(cycles, cycle) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(cycles) != len(want) {
		t.Fatalf("observer calls = %v", cycles)
	}
	for i := range want {
		if cycles[i] != want[i] {
			t.Fatalf("observer calls = %v, want %v", cycles, want)
		}
	}
}

func TestIndexSet(t *testing.T) {
	s := NewIndexSet(5, false)
	if s.Len() != 0 {
		t.Fatal("empty set has members")
	}
	s.Add(3)
	s.Add(1)
	s.Add(3) // duplicate add is a no-op
	if s.Len() != 2 || !s.Contains(3) || !s.Contains(1) || s.Contains(0) {
		t.Fatalf("set state wrong after adds")
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 1 {
		t.Fatal("remove failed")
	}
	s.Remove(3) // double remove is a no-op
	if s.Len() != 1 {
		t.Fatal("double remove corrupted set")
	}
	full := NewIndexSet(4, true)
	if full.Len() != 4 {
		t.Fatal("full set incomplete")
	}
	rng := stats.NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[full.Random(rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random sampling missed members: %v", seen)
	}
}

func TestRepSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for rep := 0; rep < 1000; rep++ {
		s := RepSeed(42, rep)
		if seen[s] {
			t.Fatalf("seed collision at rep %d", rep)
		}
		seen[s] = true
	}
}

func TestParallelRepsRunsAll(t *testing.T) {
	const reps = 37
	done := make([]bool, reps)
	err := ParallelReps(reps, 1, func(rep int, seed uint64) error {
		done[rep] = true
		if seed != RepSeed(1, rep) {
			t.Errorf("rep %d got wrong seed", rep)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rep, ok := range done {
		if !ok {
			t.Fatalf("rep %d never ran", rep)
		}
	}
}

func TestParallelRepsPropagatesError(t *testing.T) {
	err := ParallelReps(10, 1, func(rep int, _ uint64) error {
		if rep == 5 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("error not propagated: %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
