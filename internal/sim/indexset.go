package sim

import "antientropy/internal/stats"

// IndexSet is a constant-time add/remove/sample set over [0, n). Both the
// serial engine and the sharded engine (internal/parsim) track their live
// membership with it. It is not safe for concurrent mutation, but
// concurrent reads (Contains, Random with caller-owned RNGs) are safe
// while no writer runs — the property the sharded engine's parallel
// exchange phase relies on.
type IndexSet struct {
	items []int32
	pos   []int32 // pos[id] = index into items, or -1
}

// NewIndexSet returns a set over [0, n), full or empty.
func NewIndexSet(n int, full bool) *IndexSet {
	s := &IndexSet{items: make([]int32, 0, n), pos: make([]int32, n)}
	for i := range s.pos {
		s.pos[i] = -1
	}
	if full {
		for i := 0; i < n; i++ {
			s.items = append(s.items, int32(i))
			s.pos[i] = int32(i)
		}
	}
	return s
}

// Len returns the number of members.
func (s *IndexSet) Len() int { return len(s.items) }

// Contains reports membership of id.
func (s *IndexSet) Contains(id int) bool { return s.pos[id] >= 0 }

// Add inserts id (no-op when present).
func (s *IndexSet) Add(id int) {
	if s.pos[id] >= 0 {
		return
	}
	s.pos[id] = int32(len(s.items))
	s.items = append(s.items, int32(id))
}

// Remove deletes id (no-op when absent).
func (s *IndexSet) Remove(id int) {
	p := s.pos[id]
	if p < 0 {
		return
	}
	last := int32(len(s.items) - 1)
	moved := s.items[last]
	s.items[p] = moved
	s.pos[moved] = p
	s.items = s.items[:last]
	s.pos[id] = -1
}

// Random returns a uniformly random member; the set must be non-empty.
func (s *IndexSet) Random(rng *stats.RNG) int {
	return int(s.items[rng.Intn(len(s.items))])
}

// Items exposes the member slice in arbitrary order. Callers must treat
// it as read-only and must not retain it across mutations.
func (s *IndexSet) Items() []int32 { return s.items }
