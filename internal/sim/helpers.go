package sim

import (
	"math"
	"runtime"
	"sync"

	"antientropy/internal/core"
	"antientropy/internal/stats"
)

// PeakInit returns the paper's peak distribution: node `at` starts with
// `total`, every other node with zero. With total = N the global average
// is 1; this is both the COUNT initialization and the paper's most
// demanding robustness scenario (§3).
func PeakInit(total float64, at int) func(node int) float64 {
	return func(node int) float64 {
		if node == at {
			return total
		}
		return 0
	}
}

// ConstInit starts every node with the same value v.
func ConstInit(v float64) func(node int) float64 {
	return func(int) float64 { return v }
}

// UniformInit draws each node's initial value uniformly from [lo, hi)
// using a dedicated generator, independent of the engine's stream.
func UniformInit(lo, hi float64, seed uint64) func(node int) float64 {
	rng := stats.NewRNG(seed)
	return func(int) float64 { return lo + (hi-lo)*rng.Float64() }
}

// LinearInit assigns node i the value i, handy for known-mean workloads.
func LinearInit() func(node int) float64 {
	return func(node int) float64 { return float64(node) }
}

// SizeEstimateAt converts node's vector-mode state into a network-size
// estimate using the §7.3 combiner across the run's concurrent instances.
// Instances from which the node holds no mass are excluded; if none carry
// mass the estimate is +Inf (the paper notes estimates "can even become
// infinite" when every mass holder crashes).
func (e *Engine) SizeEstimateAt(node int) float64 {
	dim := e.cfg.Dim
	if dim == 0 {
		return core.SizeFromAverage(e.scalar[node])
	}
	ests := make([]float64, 0, dim)
	for d := 0; d < dim; d++ {
		v := e.vec[node*dim+d]
		if v > 0 {
			ests = append(ests, core.SizeFromAverage(v))
		}
	}
	if len(ests) == 0 {
		return math.Inf(1)
	}
	combined, err := core.Combine(ests)
	if err != nil {
		return math.Inf(1)
	}
	return combined
}

// SizeMoments aggregates the finite size estimates of all participants.
func (e *Engine) SizeMoments() stats.Moments {
	var m stats.Moments
	dim := e.cfg.Dim
	if dim == 0 {
		e.ForEachParticipant(func(_ int, v float64) {
			if s := core.SizeFromAverage(v); !math.IsInf(s, 1) {
				m.Add(s)
			}
		})
		return m
	}
	for _, id := range e.alive.Items() {
		i := int(id)
		if !e.participating[i] {
			continue
		}
		if s := e.SizeEstimateAt(i); !math.IsInf(s, 1) {
			m.Add(s)
		}
	}
	return m
}

// ParallelReps runs reps independent experiment repetitions across the
// available CPUs. Each repetition receives a seed derived from the master
// seed so results are reproducible regardless of scheduling. The first
// error (if any) is returned.
func ParallelReps(reps int, seed uint64, run func(rep int, seed uint64) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range jobs {
				if err := run(rep, RepSeed(seed, rep)); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for rep := 0; rep < reps; rep++ {
		jobs <- rep
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// RepSeed derives the deterministic seed of repetition rep from the
// master seed.
func RepSeed(master uint64, rep int) uint64 {
	// One splitmix64-style scramble keeps the per-rep streams decorrelated.
	x := master ^ (0x9e3779b97f4a7c15 * (uint64(rep) + 1))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
