package sim

import (
	"math"
	"testing"

	"antientropy/internal/core"
)

// baseConfig returns a small scalar AVERAGE run over the live-complete
// overlay, the simplest substrate for failure-path tests.
func baseConfig(n, cycles int) Config {
	return Config{
		N:       n,
		Cycles:  cycles,
		Seed:    7,
		Fn:      core.Average,
		Init:    LinearInit(),
		Overlay: CompleteLive(),
	}
}

// participantSum adds up all live participants' estimates — the mass the
// protocol must conserve.
func participantSum(e *Engine) float64 {
	sum := 0.0
	e.ForEachParticipant(func(_ int, v float64) { sum += v })
	return sum
}

func TestCrashFractionKillsProportion(t *testing.T) {
	cfg := baseConfig(1000, 10)
	// A static overlay keeps crashed neighbors in the graph, so attempts
	// at them surface as timeouts (§6.1).
	cfg.Overlay = randomOverlay(20)
	cfg.Failures = []FailureModel{CrashFraction{P: 0.1}}
	e, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 · 0.9^10 ≈ 348, with integer truncation drift.
	if got := e.AliveCount(); got < 330 || got > 370 {
		t.Fatalf("alive after 10 cycles of 10%% crashes = %d, want ≈ 348", got)
	}
	if e.Metrics().Timeouts == 0 {
		t.Fatal("no timeouts recorded despite mass crashes")
	}
}

func TestSuddenDeathFiresOnceAtCycle(t *testing.T) {
	alive := make(map[int]int)
	cfg := baseConfig(400, 6)
	cfg.Failures = []FailureModel{SuddenDeath{AtCycle: 3, Fraction: 0.5}}
	cfg.Observe = func(cycle int, e *Engine) { alive[cycle] = e.AliveCount() }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if alive[2] != 400 || alive[3] != 200 || alive[6] != 200 {
		t.Fatalf("alive trajectory %v, want 400 before cycle 3, 200 from cycle 3 on", alive)
	}
}

func TestChurnKeepsSizeAndJoinersRefuse(t *testing.T) {
	cfg := baseConfig(300, 8)
	cfg.Failures = []FailureModel{Churn{PerCycle: 30}}
	e, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.AliveCount(); got != 300 {
		t.Fatalf("churn changed the network size: %d", got)
	}
	if e.ParticipantCount() >= 300 {
		t.Fatal("churned-in joiners should not participate in the running epoch")
	}
	if e.Metrics().Refusals == 0 {
		t.Fatal("no §7.1 refusals recorded despite churned-in joiners")
	}
}

func TestCrashCountNeverKillsLastNode(t *testing.T) {
	cfg := baseConfig(10, 30)
	cfg.Failures = []FailureModel{CrashCount{PerCycle: 4}}
	e, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.AliveCount(); got != 1 {
		t.Fatalf("alive = %d, want the guard to stop at 1", got)
	}
}

func TestScriptRunsEveryCycleBetweenBeforeCycleAndOverlay(t *testing.T) {
	var order []string
	cfg := baseConfig(50, 4)
	cfg.BeforeCycle = func(cycle int, _ *Engine) { order = append(order, "hook") }
	cfg.Failures = []FailureModel{Script("probe", func(cycle int, _ Core) {
		order = append(order, "script")
	})}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("hook+script fired %d times, want 8", len(order))
	}
	for i, step := range order {
		want := "hook"
		if i%2 == 1 {
			want = "script"
		}
		if step != want {
			t.Fatalf("order %v: BeforeCycle must run before the failure models", order)
		}
	}
	if got := Script("probe", nil).String(); got != "scripted(probe)" {
		t.Fatalf("Script.String() = %q", got)
	}
}

func TestSetMessageLossMidRun(t *testing.T) {
	cfg := baseConfig(200, 6)
	cfg.Failures = []FailureModel{Script("loss-burst", func(cycle int, e Core) {
		if cycle == 4 {
			e.SetMessageLoss(0.5)
		}
	})}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		e.Step()
	}
	if m := e.Metrics(); m.RequestLosses != 0 || m.ReplyLosses != 0 {
		t.Fatalf("losses before the burst: %+v", m)
	}
	for c := 0; c < 3; c++ {
		e.Step()
	}
	if m := e.Metrics(); m.RequestLosses == 0 {
		t.Fatalf("no request losses after SetMessageLoss(0.5): %+v", m)
	}
	e.SetMessageLoss(-1)
	e.SetLinkFailure(2)
	before := e.Metrics().LinkDrops
	e.Step()
	if got := e.Metrics().LinkDrops; got == before {
		t.Fatal("SetLinkFailure(2) clamped to 1 should drop every exchange")
	}
}

// TestExchangeFilterPartitionConservesMass is the scenario subsystem's
// core invariant: a partition enforced through the exchange filter keeps
// the global mass constant, each side converges to its own average, and
// after the heal the network re-converges to the original global mean.
func TestExchangeFilterPartitionConservesMass(t *testing.T) {
	const n = 400
	side := func(i int) int { return i % 2 }
	var sideMeans [2]float64
	for i := 0; i < n; i++ {
		sideMeans[side(i)] += float64(i) * 2 / n
	}
	globalMean := float64(n-1) / 2

	cfg := baseConfig(n, 40)
	cfg.Failures = []FailureModel{Script("partition", func(cycle int, e Core) {
		switch cycle {
		case 1:
			e.SetExchangeFilter(func(i, j int) bool { return side(i) == side(j) })
		case 21:
			e.SetExchangeFilter(nil)
		}
	})}
	var mass []float64
	cfg.Observe = func(cycle int, e *Engine) {
		mass = append(mass, participantSum(e))
		if cycle == 20 {
			// Mid-partition: each side must have converged to its own mean.
			var got [2]float64
			var count [2]int
			e.ForEachParticipant(func(i int, v float64) {
				got[side(i)] += v
				count[side(i)]++
			})
			for s := 0; s < 2; s++ {
				if m := got[s] / float64(count[s]); math.Abs(m-sideMeans[s]) > 1e-6 {
					t.Errorf("side %d mean = %g, want %g", s, m, sideMeans[s])
				}
			}
		}
	}
	e, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mass[0]
	for c, got := range mass {
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("cycle %d: mass %g, want %g (conservation violated)", c, got, want)
		}
	}
	if e.Metrics().PartitionDrops == 0 {
		t.Fatal("no partition drops recorded while the filter was active")
	}
	m := e.ParticipantMoments()
	if math.Abs(m.Mean()-globalMean) > 1e-6 {
		t.Fatalf("post-heal mean = %g, want %g", m.Mean(), globalMean)
	}
	if m.Variance() > 1e-6 {
		t.Fatalf("post-heal variance = %g, want ≈ 0 (re-convergence)", m.Variance())
	}
}

func TestInitialAliveReplaceAndRestart(t *testing.T) {
	cfg := baseConfig(100, 0)
	cfg.InitialAlive = 60
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.AliveCount(); got != 60 {
		t.Fatalf("alive = %d, want 60", got)
	}
	if e.Alive(60) {
		t.Fatal("slot 60 must start vacant")
	}
	e.Replace(60)
	if !e.Alive(60) || e.Participating(60) {
		t.Fatal("a replaced slot must be alive but not participating")
	}
	if got := e.ParticipantCount(); got != 60 {
		t.Fatalf("participants = %d, want 60 before the restart", got)
	}
	e.Restart(func(node int) float64 { return 42 })
	if !e.Participating(60) {
		t.Fatal("restart must fold joiners into the new epoch")
	}
	if got := e.Value(60); got != 42 {
		t.Fatalf("restart value = %g, want 42", got)
	}
	if got := e.ParticipantCount(); got != 61 {
		t.Fatalf("participants = %d, want 61 after the restart", got)
	}
	e.SetScalar(60, 7)
	if got := e.Value(60); got != 7 {
		t.Fatalf("SetScalar: value = %g, want 7", got)
	}
}

func TestInitialAliveValidation(t *testing.T) {
	cfg := baseConfig(10, 1)
	cfg.InitialAlive = 11
	if _, err := New(cfg); err == nil {
		t.Fatal("InitialAlive > N must be rejected")
	}
	vec := Config{N: 10, InitialAlive: 5, Cycles: 1, Seed: 1, Dim: 1,
		Leaders: []int{7}, Overlay: CompleteLive()}
	if _, err := New(vec); err == nil {
		t.Fatal("a leader in a vacant slot must be rejected")
	}
}

func TestRandomAliveDrawsLiveNodes(t *testing.T) {
	cfg := baseConfig(10, 0)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		e.Kill(i)
	}
	for k := 0; k < 20; k++ {
		if got := e.RandomAlive(); got != 0 {
			t.Fatalf("RandomAlive = %d, want 0 (only survivor)", got)
		}
	}
	e.Kill(0)
	if got := e.RandomAlive(); got != -1 {
		t.Fatalf("RandomAlive on an empty network = %d, want -1", got)
	}
}
