package sim

import (
	"fmt"

	"antientropy/internal/overlay"
	"antientropy/internal/stats"
	"antientropy/internal/topology"
)

// Overlay is the engine's view of the overlay network: it answers
// GETNEIGHBOR for the aggregation protocol and may evolve once per cycle
// (NEWSCAST does; static topologies do not).
type Overlay interface {
	// Neighbor returns the peer node would contact, or -1 when the node
	// currently knows no peers.
	Neighbor(node int, rng *stats.RNG) int
	// Step advances the overlay by one cycle (descriptor gossip etc.).
	Step(cycle int)
	// OnJoin integrates a (re)joining node, seeding its view.
	OnJoin(node int, cycle int)
}

// OverlayContext carries what an overlay builder may depend on.
type OverlayContext struct {
	// N is the node count.
	N int
	// RNG is the builder's private generator (already split from the
	// engine's).
	RNG *stats.RNG
	// Alive reports whether a node is currently alive; overlays use it to
	// model exchange timeouts with crashed peers.
	Alive func(node int) bool
	// RandomAlive returns a uniformly random live node (-1 if none). The
	// live-complete overlay uses it to model full membership knowledge.
	RandomAlive func(rng *stats.RNG) int
}

// OverlayBuilder constructs an overlay for one experiment repetition.
type OverlayBuilder func(ctx OverlayContext) (Overlay, error)

// staticOverlay adapts a topology.Graph: links never change.
type staticOverlay struct {
	g topology.Graph
}

var _ Overlay = (*staticOverlay)(nil)

func (s *staticOverlay) Neighbor(node int, rng *stats.RNG) int {
	return s.g.Neighbor(node, rng)
}

func (s *staticOverlay) Step(int)        {}
func (s *staticOverlay) OnJoin(int, int) {}

// Static wraps an already-built graph as an overlay builder. The graph
// must have exactly ctx.N nodes.
func Static(g topology.Graph) OverlayBuilder {
	return func(ctx OverlayContext) (Overlay, error) {
		if g.N() != ctx.N {
			return nil, fmt.Errorf("sim: static overlay has %d nodes, engine expects %d", g.N(), ctx.N)
		}
		return &staticOverlay{g: g}, nil
	}
}

// StaticFunc defers graph construction to experiment time so each
// repetition draws an independent random graph.
func StaticFunc(build func(n int, rng *stats.RNG) (topology.Graph, error)) OverlayBuilder {
	return func(ctx OverlayContext) (Overlay, error) {
		g, err := build(ctx.N, ctx.RNG)
		if err != nil {
			return nil, err
		}
		return &staticOverlay{g: g}, nil
	}
}

// liveComplete is the fully connected overlay over the current membership:
// every node can contact every other live node. This models the paper's
// "fully connected topology" under crashes, where a crashed node is simply
// no longer part of anyone's membership.
type liveComplete struct {
	randomAlive func(rng *stats.RNG) int
}

var _ Overlay = (*liveComplete)(nil)

func (l *liveComplete) Neighbor(node int, rng *stats.RNG) int {
	// Rejection-sample a live peer different from the caller; bounded
	// retries guard the one-survivor corner.
	for attempt := 0; attempt < 64; attempt++ {
		j := l.randomAlive(rng)
		if j < 0 {
			return -1
		}
		if j != node {
			return j
		}
	}
	return -1
}

func (l *liveComplete) Step(int)        {}
func (l *liveComplete) OnJoin(int, int) {}

// CompleteLive returns the fully connected overlay over live nodes.
func CompleteLive() OverlayBuilder {
	return func(ctx OverlayContext) (Overlay, error) {
		if ctx.RandomAlive == nil {
			return nil, fmt.Errorf("sim: CompleteLive requires a RandomAlive context")
		}
		return &liveComplete{randomAlive: ctx.RandomAlive}, nil
	}
}

// NewscastOverlay runs one NEWSCAST instance per node inside the
// simulator: every cycle each live node performs one cache exchange with
// a random cache member (skipped, like a timed-out connection, when that
// member has crashed), and the aggregation protocol draws its neighbors
// from the same caches. The caches live in one flat packed
// overlay.Table — the identical representation (and merge code) the
// sharded engine and the live agent use, so a serial NEWSCAST sweep
// inherits the packed-exchange speedup and the engines' merge results
// agree descriptor for descriptor.
type NewscastOverlay struct {
	t       *overlay.Table
	alive   func(int) bool
	rng     *stats.RNG
	perm    []int
	scratch []uint64
	// bootstrapSize is how many random live contacts a joiner is seeded
	// with (out-of-band discovery, paper §4.2).
	bootstrapSize int
	// filter, when non-nil, vetoes gossip exchanges between node pairs
	// (partition enforcement; see Engine.SetExchangeFilter).
	filter func(i, j int) bool
}

var (
	_ Overlay          = (*NewscastOverlay)(nil)
	_ GossipFilterable = (*NewscastOverlay)(nil)
)

// Newscast returns an overlay builder running NEWSCAST with cache size c.
// The initial caches are seeded with c random peers each, modelling a
// warmed-up overlay, which is what the paper's experiments assume.
func Newscast(c int) OverlayBuilder {
	return func(ctx OverlayContext) (Overlay, error) {
		t, err := overlay.NewTable(ctx.N, c)
		if err != nil {
			return nil, err
		}
		o := &NewscastOverlay{
			t:             t,
			alive:         ctx.Alive,
			rng:           ctx.RNG,
			perm:          make([]int, ctx.N),
			scratch:       make([]uint64, 0, 2*c+2),
			bootstrapSize: min(c, ctx.N-1),
		}
		// Seeding keeps the historical sample-without-replacement draws
		// (not the sharded engine's rejection loop) so serial runs stay
		// bit-identical across the packed-cache migration.
		seedBuf := make([]int, min(c, ctx.N-1))
		entries := make([]overlay.Entry, len(seedBuf))
		for i := 0; i < ctx.N; i++ {
			ctx.RNG.Sample(seedBuf, ctx.N, func(v int) bool { return v == i })
			for j, v := range seedBuf {
				entries[j] = overlay.Entry{Key: int32(v), Stamp: 0}
			}
			t.At(i).Seed(entries)
		}
		return o, nil
	}
}

// Neighbor draws a uniform member of the node's current cache.
func (o *NewscastOverlay) Neighbor(node int, rng *stats.RNG) int {
	return o.t.Neighbor(node, rng)
}

// Step performs one NEWSCAST round: every live node initiates one cache
// exchange. Exchanges with crashed peers time out and are skipped; the
// stale descriptor ages out on its own as fresher information spreads.
// Exchanges vetoed by the gossip filter (partitioned pairs) are dropped
// the same way.
func (o *NewscastOverlay) Step(cycle int) {
	o.rng.Perm(o.perm)
	for _, i := range o.perm {
		if !o.alive(i) {
			continue
		}
		j := o.t.Neighbor(i, o.rng)
		if j < 0 {
			continue
		}
		if !o.alive(j) {
			continue
		}
		if o.filter != nil && !o.filter(i, j) {
			continue
		}
		o.scratch = o.t.Exchange(o.scratch, i, j, cycle)
	}
}

// SetGossipFilter installs (or removes, with nil) the partition veto on
// NEWSCAST's own exchanges.
func (o *NewscastOverlay) SetGossipFilter(filter func(i, j int) bool) {
	o.filter = filter
}

// OnJoin reseeds the cache of a node that took over a slot (churn): the
// joiner bootstraps from a handful of random live contacts.
func (o *NewscastOverlay) OnJoin(node int, cycle int) {
	n := o.t.N()
	size := o.bootstrapSize
	if size > n-1 {
		size = n - 1
	}
	if size < 1 {
		return
	}
	// Joiners may momentarily be seeded with a dead contact; NEWSCAST
	// repairs that within a cycle or two, as in a real deployment.
	buf := make([]int, size)
	o.rng.Sample(buf, n, func(v int) bool { return v == node })
	entries := make([]overlay.Entry, size)
	for j, v := range buf {
		entries[j] = overlay.Entry{Key: int32(v), Stamp: int32(cycle)}
	}
	o.t.At(node).Seed(entries)
}

// Cache exposes a node's NEWSCAST membership view for inspection in
// tests and overlay-quality experiments.
func (o *NewscastOverlay) Cache(node int) *overlay.Membership {
	return o.t.At(node)
}

// frozenNewscast is the A3 ablation overlay: NEWSCAST caches are
// bootstrapped but descriptor gossip never runs, so aggregation keeps
// sampling the same static random views. It quantifies what continuous
// overlay refresh buys.
type frozenNewscast struct {
	*NewscastOverlay
}

// Step is deliberately a no-op: the caches stay frozen.
func (f *frozenNewscast) Step(int) {}

// NewscastFrozen returns a NEWSCAST overlay whose gossip is disabled
// after bootstrap (ablation A3).
func NewscastFrozen(c int) OverlayBuilder {
	inner := Newscast(c)
	return func(ctx OverlayContext) (Overlay, error) {
		ov, err := inner(ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := ov.(*NewscastOverlay)
		if !ok {
			return nil, fmt.Errorf("sim: unexpected overlay type %T", ov)
		}
		return &frozenNewscast{NewscastOverlay: ns}, nil
	}
}
