// Package sim is the cycle-driven overlay simulator used to reproduce the
// paper's evaluation — the Go equivalent of the authors' PeerSim setup
// (§7). Time advances in cycles; in every cycle each live node initiates
// one push-pull exchange with a neighbor drawn from the overlay, exactly
// as in Figure 1 of the paper. Failure models inject node crashes, churn,
// link failures and message omissions with the paper's §6/§7 semantics.
//
// The engine is deterministic: all randomness derives from Config.Seed.
package sim

import (
	"errors"
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/stats"
)

// Config describes one simulated epoch.
type Config struct {
	// N is the initial number of nodes.
	N int
	// InitialAlive, when positive, starts only the slots [0, InitialAlive)
	// alive and participating; the remaining slots are vacant and can be
	// brought up later with Replace (scenario joins and flash crowds).
	// Zero means all N slots start alive.
	InitialAlive int
	// Cycles is the number of cycles to run (γ in the paper; 30 for most
	// experiments).
	Cycles int
	// Seed drives all randomness of the run.
	Seed uint64

	// Fn is the scalar aggregation function (scalar mode). Exactly one of
	// Fn.Update or Dim must be set.
	Fn core.Function
	// Init yields node i's initial scalar estimate (scalar mode).
	Init func(node int) float64

	// Dim > 0 selects vector mode: the state is a Dim-dimensional vector
	// averaged element-wise, the flattened equivalent of the COUNT
	// protocol's map state (one dimension per concurrent instance; a
	// missing map entry is a zero component — see core.Merge).
	Dim int
	// Leaders[d] is the node whose d-th component starts at 1 (the leader
	// of instance d); all other components start at 0. Exactly one of
	// Leaders and VecInit must be set in vector mode.
	Leaders []int
	// VecInit initializes component d of node i arbitrarily, enabling the
	// §5 derived aggregates: e.g. dim 0 = values and dim 1 = a COUNT peak
	// composes SUM; dim 0 = values and dim 1 = squared values composes
	// VARIANCE.
	VecInit func(node, dim int) float64

	// Overlay builds the overlay for this run.
	Overlay OverlayBuilder
	// Failures are applied in order at the beginning of every cycle.
	Failures []FailureModel

	// LinkFailure is P_d: each exchange is dropped entirely with this
	// probability (§6.2 — slows convergence, no approximation error).
	LinkFailure float64
	// MessageLoss is the per-message drop probability (§7.2): a lost
	// request skips the exchange; a lost reply leaves the responder
	// updated but not the initiator, changing the global sum.
	MessageLoss float64

	// TrackExchanges enables per-node exchange counting (§4.5 validation).
	TrackExchanges bool

	// Adversary, when non-nil, rewrites the scalar estimate a node
	// reports to its exchange peer — the Byzantine wire-lying hook the
	// scenario engine's adversary schedules drive. Local state stays
	// honest; only the transmitted sample is corrupted. The hook returns
	// the reported value and whether the node lied this time. Scalar
	// mode only.
	Adversary func(cycle, node int, local float64) (float64, bool)

	// Guard, when non-nil, replaces the hardcoded push-pull average
	// merge of scalar exchanges with the pluggable Combiner defense:
	// each side's new estimate is Guard.Merge(node, local, reportedPeer)
	// instead of Fn.Update. With the Mean combiner and no sample window
	// this reproduces the classical (a+b)/2 step; clamped-mean and
	// median-of-k reject or outvote Byzantine samples. Scalar mode only.
	Guard *core.MergeGuard

	// BeforeCycle, when non-nil, runs at the start of every cycle, before
	// the Failures are applied and before the overlay evolves. It is the
	// scenario engine's hook point: epoch restarts, scripted churn waves,
	// partitions and failure-rate changes are injected here.
	BeforeCycle func(cycle int, e *Engine)

	// Observe, when non-nil, is called after initialization (cycle 0) and
	// after every completed cycle.
	Observe func(cycle int, e *Engine)
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("sim: invalid node count %d", c.N)
	}
	if c.Cycles < 0 {
		return fmt.Errorf("sim: invalid cycle count %d", c.Cycles)
	}
	if c.InitialAlive < 0 || c.InitialAlive > c.N {
		return fmt.Errorf("sim: initial alive count %d not in [0, %d]", c.InitialAlive, c.N)
	}
	scalar := c.Fn.Update != nil
	vector := c.Dim > 0
	if scalar == vector {
		return errors.New("sim: exactly one of Fn (scalar mode) and Dim (vector mode) must be set")
	}
	if scalar && c.Init == nil {
		return errors.New("sim: scalar mode requires Init")
	}
	if vector {
		hasLeaders := len(c.Leaders) > 0
		hasVecInit := c.VecInit != nil
		if hasLeaders == hasVecInit {
			return errors.New("sim: vector mode requires exactly one of Leaders and VecInit")
		}
		if hasLeaders {
			if len(c.Leaders) != c.Dim {
				return fmt.Errorf("sim: vector mode needs exactly Dim=%d leaders, got %d", c.Dim, len(c.Leaders))
			}
			live := c.N
			if c.InitialAlive > 0 {
				live = c.InitialAlive
			}
			for d, l := range c.Leaders {
				if l < 0 || l >= live {
					return fmt.Errorf("sim: leader %d of instance %d out of range", l, d)
				}
			}
		}
	}
	if c.Overlay == nil {
		return errors.New("sim: overlay builder is required")
	}
	if c.LinkFailure < 0 || c.LinkFailure > 1 {
		return fmt.Errorf("sim: link failure probability %g not in [0,1]", c.LinkFailure)
	}
	if c.MessageLoss < 0 || c.MessageLoss > 1 {
		return fmt.Errorf("sim: message loss probability %g not in [0,1]", c.MessageLoss)
	}
	return nil
}

// Metrics counts exchange outcomes over a run.
type Metrics struct {
	// Attempts counts initiated exchange attempts.
	Attempts int64
	// Completed counts fully successful push-pull exchanges.
	Completed int64
	// Timeouts counts attempts aimed at crashed peers.
	Timeouts int64
	// Refusals counts attempts aimed at nodes that joined mid-epoch and
	// refuse connections for the current epoch (§7.1).
	Refusals int64
	// LinkDrops counts exchanges lost to link failure (P_d).
	LinkDrops int64
	// RequestLosses counts exchanges whose initiating message was lost.
	RequestLosses int64
	// ReplyLosses counts exchanges whose response was lost after the
	// responder had already updated its state.
	ReplyLosses int64
	// PartitionDrops counts exchanges vetoed by the exchange filter
	// (partitioned node pairs). Like a link drop, a vetoed exchange is a
	// complete no-op, so it conserves mass.
	PartitionDrops int64
}

// Engine runs one epoch of the protocol over a simulated overlay. It
// implements Core, the surface shared with the sharded engine.
type Engine struct {
	cfg     Config
	rng     *stats.RNG
	overlay Overlay

	n     int
	alive *IndexSet
	// participating marks nodes taking part in the current epoch; nodes
	// that join mid-epoch wait for the next one (§4.2).
	participating []bool

	scalar []float64
	vec    []float64 // flattened [node*dim+d], vector mode

	cycle   int
	perm    []int
	metrics Metrics

	// filter, when non-nil, vetoes exchanges between node pairs (partition
	// enforcement; see SetExchangeFilter).
	filter func(i, j int) bool

	// exchanges[i] counts node i's exchange participations in the current
	// cycle (reset each cycle; valid when TrackExchanges).
	exchanges []int
}

// New validates cfg, builds the overlay, initializes node states and
// returns an engine positioned before cycle 1.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	initialAlive := cfg.N
	if cfg.InitialAlive > 0 {
		initialAlive = cfg.InitialAlive
	}
	e := &Engine{
		cfg:           cfg,
		rng:           stats.NewRNG(cfg.Seed),
		n:             cfg.N,
		alive:         NewIndexSet(cfg.N, false),
		participating: make([]bool, cfg.N),
		perm:          make([]int, cfg.N),
	}
	for i := 0; i < initialAlive; i++ {
		e.alive.Add(i)
		e.participating[i] = true
	}
	if cfg.TrackExchanges {
		e.exchanges = make([]int, cfg.N)
	}
	overlayRNG := e.rng.Split()
	ov, err := cfg.Overlay(OverlayContext{
		N:     cfg.N,
		RNG:   overlayRNG,
		Alive: func(i int) bool { return e.alive.Contains(i) },
		RandomAlive: func(rng *stats.RNG) int {
			if e.alive.Len() == 0 {
				return -1
			}
			return e.alive.Random(rng)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("sim: building overlay: %w", err)
	}
	e.overlay = ov
	if cfg.Dim > 0 {
		e.vec = make([]float64, cfg.N*cfg.Dim)
		if cfg.VecInit != nil {
			for i := 0; i < cfg.N; i++ {
				for d := 0; d < cfg.Dim; d++ {
					e.vec[i*cfg.Dim+d] = cfg.VecInit(i, d)
				}
			}
		} else {
			for d, l := range cfg.Leaders {
				e.vec[l*cfg.Dim+d] = 1
			}
		}
	} else {
		e.scalar = make([]float64, cfg.N)
		for i := range e.scalar {
			e.scalar[i] = cfg.Init(i)
		}
	}
	return e, nil
}

// Run executes all configured cycles, invoking the observer after
// initialization and after each cycle.
func Run(cfg Config) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.observe()
	for e.cycle < cfg.Cycles {
		e.Step()
		e.observe()
	}
	return e, nil
}

func (e *Engine) observe() {
	if e.cfg.Observe != nil {
		e.cfg.Observe(e.cycle, e)
	}
}

var _ Core = (*Engine)(nil)

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int { return e.cycle }

// N returns the (constant) number of node slots.
func (e *Engine) N() int { return e.n }

// Dim returns the state-vector dimension (0 in scalar mode).
func (e *Engine) Dim() int { return e.cfg.Dim }

// AliveCount returns the number of currently live nodes.
func (e *Engine) AliveCount() int { return e.alive.Len() }

// Alive reports whether node is currently live.
func (e *Engine) Alive(node int) bool { return e.alive.Contains(node) }

// Participating reports whether node is live and part of the current
// epoch.
func (e *Engine) Participating(node int) bool {
	return e.alive.Contains(node) && e.participating[node]
}

// Metrics returns the exchange counters accumulated so far.
func (e *Engine) Metrics() Metrics { return e.metrics }

// Overlay returns the overlay driving this run.
func (e *Engine) Overlay() Overlay { return e.overlay }

// Step advances the simulation by one full cycle: failures are injected
// first (the paper's worst case — variance is maximal at cycle start),
// the overlay evolves, then every live participant initiates one
// push-pull exchange in random order.
func (e *Engine) Step() {
	e.cycle++
	if e.cfg.BeforeCycle != nil {
		e.cfg.BeforeCycle(e.cycle, e)
	}
	for _, f := range e.cfg.Failures {
		f.Apply(e.cycle, e)
	}
	e.overlay.Step(e.cycle)
	if e.exchanges != nil {
		for i := range e.exchanges {
			e.exchanges[i] = 0
		}
	}
	e.rng.Perm(e.perm)
	for _, i := range e.perm {
		if !e.alive.Contains(i) || !e.participating[i] {
			continue
		}
		e.initiateExchange(i)
	}
}

// initiateExchange performs node i's active-thread step of Figure 1 with
// the §6/§7 failure semantics (shared with the sharded engine through
// DecideExchange).
func (e *Engine) initiateExchange(i int) {
	j := e.overlay.Neighbor(i, e.rng)
	if j < 0 || j == i {
		return
	}
	allowed := e.filter == nil || e.filter(i, j)
	proceed, replyLost := DecideExchange(e.rng, &e.metrics,
		e.alive.Contains(j), e.participating[j], allowed,
		e.cfg.LinkFailure, e.cfg.MessageLoss)
	if !proceed {
		return
	}
	if e.cfg.Dim > 0 {
		e.exchangeVector(i, j, replyLost)
	} else {
		e.exchangeScalar(i, j, replyLost)
	}
	if e.exchanges != nil {
		e.exchanges[i]++
		e.exchanges[j]++
	}
}

func (e *Engine) exchangeScalar(i, j int, replyLost bool) {
	si, sj := e.scalar[i], e.scalar[j]
	if e.cfg.Adversary == nil && e.cfg.Guard == nil {
		ni, nj := e.cfg.Fn.Update(si, sj)
		// The responder received the request and always updates; the
		// initiator updates only if the reply arrives.
		e.scalar[j] = nj
		if !replyLost {
			e.scalar[i] = ni
		}
		return
	}
	// Byzantine path: each side sees the peer's *reported* value, which
	// the adversary hook may have corrupted; local state stays honest.
	ri, rj := si, sj
	if adv := e.cfg.Adversary; adv != nil {
		if v, lied := adv(e.cycle, i, si); lied {
			ri = v
		}
		if v, lied := adv(e.cycle, j, sj); lied {
			rj = v
		}
	}
	if g := e.cfg.Guard; g != nil {
		e.scalar[j] = g.Merge(j, sj, ri)
		if !replyLost {
			e.scalar[i] = g.Merge(i, si, rj)
		}
		return
	}
	ni, _ := e.cfg.Fn.Update(si, rj)
	_, nj := e.cfg.Fn.Update(ri, sj)
	e.scalar[j] = nj
	if !replyLost {
		e.scalar[i] = ni
	}
}

func (e *Engine) exchangeVector(i, j int, replyLost bool) {
	dim := e.cfg.Dim
	vi := e.vec[i*dim : (i+1)*dim]
	vj := e.vec[j*dim : (j+1)*dim]
	for d := range vj {
		m := (vi[d] + vj[d]) / 2
		vj[d] = m
		if !replyLost {
			vi[d] = m
		}
	}
}

// Value returns node's scalar estimate (scalar mode).
func (e *Engine) Value(node int) float64 { return e.scalar[node] }

// Vector returns a copy of node's state vector (vector mode).
func (e *Engine) Vector(node int) []float64 {
	dim := e.cfg.Dim
	return append([]float64(nil), e.vec[node*dim:(node+1)*dim]...)
}

// ForEachParticipant calls fn for every live, participating node with its
// scalar estimate.
func (e *Engine) ForEachParticipant(fn func(node int, value float64)) {
	for _, id := range e.alive.Items() {
		i := int(id)
		if e.participating[i] {
			fn(i, e.scalar[i])
		}
	}
}

// ForEachParticipantVec calls fn for every live, participating node with
// a read-only view of its state vector. The slice must not be retained or
// modified.
func (e *Engine) ForEachParticipantVec(fn func(node int, vec []float64)) {
	dim := e.cfg.Dim
	for _, id := range e.alive.Items() {
		i := int(id)
		if e.participating[i] {
			fn(i, e.vec[i*dim:(i+1)*dim])
		}
	}
}

// ParticipantMoments returns streaming moments (count/mean/variance/
// min/max) of the participants' scalar estimates.
func (e *Engine) ParticipantMoments() stats.Moments {
	var m stats.Moments
	e.ForEachParticipant(func(_ int, v float64) { m.Add(v) })
	return m
}

// ExchangeCount returns node's number of exchange participations in the
// last completed cycle. It returns an error unless TrackExchanges is on.
func (e *Engine) ExchangeCount(node int) (int, error) {
	if e.exchanges == nil {
		return 0, errors.New("sim: exchange tracking not enabled")
	}
	return e.exchanges[node], nil
}

// Kill marks a node as crashed. Its state becomes unreachable, exactly as
// a crash renders a node's local value inaccessible (§6.1).
func (e *Engine) Kill(node int) {
	e.alive.Remove(node)
}

// Replace models churn: the slot is taken over by a brand-new node that
// may not participate in the current epoch (§4.2) but immediately joins
// the membership overlay. It also revives a vacant slot (InitialAlive /
// flash-crowd joins).
func (e *Engine) Replace(node int) {
	e.alive.Add(node)
	e.participating[node] = false
	if e.cfg.Dim > 0 {
		dim := e.cfg.Dim
		for d := 0; d < dim; d++ {
			e.vec[node*dim+d] = 0
		}
	} else {
		e.scalar[node] = 0
	}
	if e.cfg.Guard != nil {
		e.cfg.Guard.ResetNode(node)
	}
	e.overlay.OnJoin(node, e.cycle)
}

// Restart begins a new epoch in place (§4.1 automatic restart): every
// live node — including joiners that sat out the finished epoch —
// becomes a participant and, in scalar mode, reloads a fresh local value
// from init. The scenario engine calls this at epoch boundaries so the
// tracked aggregate follows the scripted value dynamics.
func (e *Engine) Restart(init func(node int) float64) {
	if e.cfg.Guard != nil {
		// Peer samples gathered under the previous epoch's value
		// assignment must not vote in the next.
		e.cfg.Guard.ResetAll()
	}
	for _, id := range e.alive.Items() {
		i := int(id)
		e.participating[i] = true
		if e.scalar != nil && init != nil {
			e.scalar[i] = init(i)
		}
	}
}

// RestartVec begins a new epoch in vector mode (§5 COUNT lifecycle):
// every live node becomes a participant and, when init is non-nil,
// reloads component d of its state vector from init(node, d) — e.g. a
// fresh leader indicator set for the next COUNT election.
func (e *Engine) RestartVec(init func(node, dim int) float64) {
	dim := e.cfg.Dim
	for _, id := range e.alive.Items() {
		i := int(id)
		e.participating[i] = true
		if e.vec != nil && init != nil {
			for d := 0; d < dim; d++ {
				e.vec[i*dim+d] = init(i, d)
			}
		}
	}
}

// SetScalar overwrites node's scalar estimate (scalar mode only), for
// scripted interventions that move a local value mid-epoch. Note that
// this deliberately changes the mass the running instance conserves;
// the scenario engine's own value dynamics instead take effect at epoch
// boundaries through Restart.
func (e *Engine) SetScalar(node int, v float64) {
	e.scalar[node] = v
}

// SetExchangeFilter installs (or, with nil, removes) a veto on exchanges:
// when the filter returns false for a pair (i, j), the exchange is
// dropped as if the link between them had failed — the scenario engine's
// network-partition enforcement. A vetoed exchange is a complete no-op,
// so mass is conserved across a partition until it heals. The filter is
// forwarded to the overlay when it supports gossip filtering, so a
// partition also blocks membership gossip — exactly as the live executor
// drops both message kinds at the transport layer.
func (e *Engine) SetExchangeFilter(filter func(i, j int) bool) {
	e.filter = filter
	if gf, ok := e.overlay.(GossipFilterable); ok {
		gf.SetGossipFilter(filter)
	}
}

// ReseedOverlay refreshes node's overlay view from a random sample of the
// whole network, modelling the out-of-band rendezvous (seed lists, DNS) a
// real deployment performs after a long partition has aged every
// cross-component descriptor out of the caches.
func (e *Engine) ReseedOverlay(node int) {
	e.overlay.OnJoin(node, e.cycle)
}

// SetMessageLoss changes the per-message drop probability mid-run
// (scenario loss bursts). Values are clamped to [0, 1].
func (e *Engine) SetMessageLoss(p float64) {
	e.cfg.MessageLoss = clamp01(p)
}

// SetLinkFailure changes the per-exchange drop probability P_d mid-run
// (the link-failure counterpart of SetMessageLoss, for scripted failure
// models). Values are clamped to [0, 1].
func (e *Engine) SetLinkFailure(p float64) {
	e.cfg.LinkFailure = clamp01(p)
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// ParticipantCount returns the number of live nodes taking part in the
// current epoch.
func (e *Engine) ParticipantCount() int {
	count := 0
	for _, id := range e.alive.Items() {
		if e.participating[id] {
			count++
		}
	}
	return count
}

// RandomAlive returns a uniformly random live node, or -1 when none is
// left. Scenario events use it to pick churn and crash victims from the
// engine's own deterministic stream.
func (e *Engine) RandomAlive() int {
	if e.alive.Len() == 0 {
		return -1
	}
	return e.alive.Random(e.rng)
}

// RNG exposes the engine's generator to failure models so the whole run
// stays deterministic under a single seed.
func (e *Engine) RNG() *stats.RNG { return e.rng }
