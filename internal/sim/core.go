package sim

import "antientropy/internal/stats"

// Core is the engine surface the declarative scenario executor and the
// figure sweeps consume. Two engines implement it: the serial *Engine in
// this package and the sharded *parsim.Engine, so one driver (epoch
// restarts, scripted churn, partitions, loss changes, per-cycle metrics,
// participant snapshots) runs unchanged on either. All methods are
// serial-phase operations: they may only be called from the engine's own
// hooks (BeforeCycle, failure models, Observe) or between cycles, never
// concurrently with a running cycle.
//
// Scalar-mode observation (Value, ForEachParticipant,
// ParticipantMoments) is only valid when Dim() == 0; vector-mode
// observation (ForEachParticipantVec, SizeEstimateAt, SizeMoments,
// RestartVec) only when Dim() > 0 — exactly the contract the concrete
// engines have always had.
type Core interface {
	// Cycle returns the number of completed cycles.
	Cycle() int
	// Step advances the simulation by one full cycle: hooks and failures
	// first, then the overlay round, then the exchange loop.
	Step()
	// N returns the (constant) number of node slots.
	N() int
	// Dim returns the state-vector dimension (0 in scalar mode).
	Dim() int
	// AliveCount returns the number of currently live nodes.
	AliveCount() int
	// Alive reports whether node is currently live.
	Alive(node int) bool
	// Participating reports whether node is live and part of the current
	// epoch.
	Participating(node int) bool
	// ParticipantCount returns the number of live nodes taking part in
	// the current epoch.
	ParticipantCount() int
	// ParticipantMoments returns streaming moments of the participants'
	// scalar estimates.
	ParticipantMoments() stats.Moments
	// Value returns node's scalar estimate (scalar mode).
	Value(node int) float64
	// ForEachParticipant calls fn for every live, participating node with
	// its scalar estimate (scalar mode).
	ForEachParticipant(fn func(node int, value float64))
	// ForEachParticipantVec calls fn for every live, participating node
	// with a read-only view of its state vector (vector mode). The slice
	// must not be retained or modified.
	ForEachParticipantVec(fn func(node int, vec []float64))
	// SizeEstimateAt converts node's vector-mode state into a network-size
	// estimate with the §7.3 combiner (+Inf when the node holds no mass).
	SizeEstimateAt(node int) float64
	// SizeMoments aggregates the finite size estimates of all
	// participants (vector mode).
	SizeMoments() stats.Moments
	// Metrics returns the exchange counters accumulated so far.
	Metrics() Metrics
	// Kill marks a node as crashed.
	Kill(node int)
	// Replace substitutes the slot with a brand-new joiner identity.
	Replace(node int)
	// Restart begins a new epoch in place (§4.1 automatic restart).
	Restart(init func(node int) float64)
	// RestartVec begins a new epoch in vector mode, reinitializing
	// component d of node i from init (the §5 COUNT lifecycle's restart).
	RestartVec(init func(node, dim int) float64)
	// SetScalar overwrites node's scalar estimate.
	SetScalar(node int, v float64)
	// SetExchangeFilter installs (or removes, with nil) the partition
	// veto on exchanges — aggregation and overlay gossip alike.
	SetExchangeFilter(filter func(i, j int) bool)
	// SetMessageLoss changes the per-message drop probability mid-run.
	SetMessageLoss(p float64)
	// SetLinkFailure changes the per-exchange drop probability mid-run.
	SetLinkFailure(p float64)
	// RandomAlive returns a uniformly random live node, or -1 when none.
	RandomAlive() int
	// ReseedOverlay refreshes node's overlay view from a random sample of
	// the whole network, as an out-of-band rendezvous (seed lists, DNS)
	// would after a partition heals.
	ReseedOverlay(node int)
}

// RunnerFunc executes one configured run on some engine and returns the
// finished engine as a Core. The multi-epoch chain drivers
// (RunEpochChain, RunCountEpochChain) accept one so the §4.1 restart and
// §5 COUNT-lifecycle experiments can run on the sharded engine too: a
// non-serial runner maps the Config onto its own engine (ignoring the
// serial-only Overlay builder) and must honor every other field it can
// express — and reject, rather than drop, any it cannot (the
// *Engine-typed BeforeCycle/Observe hooks are serial-only).
type RunnerFunc func(Config) (Core, error)

// SerialRunner is the default RunnerFunc: Run on this package's engine.
func SerialRunner(cfg Config) (Core, error) { return Run(cfg) }

// GossipFilterable is implemented by overlays whose own descriptor
// traffic can be vetoed per node pair. Engine.SetExchangeFilter forwards
// the partition filter to such overlays so a partition blocks membership
// gossip exactly as it blocks aggregation exchanges — matching the live
// executor, which drops both at the transport layer.
type GossipFilterable interface {
	// SetGossipFilter installs (or removes, with nil) the veto: when the
	// filter returns false for (i, j), the gossip exchange is skipped.
	SetGossipFilter(filter func(i, j int) bool)
}

// DecideExchange classifies one initiated exchange attempt with the
// paper's §6/§7 failure semantics, updating the metric counters. The
// caller has already resolved the peer j (j ≥ 0, j ≠ i); peerAlive,
// peerParticipating and allowed describe j's state and the partition
// filter's verdict. It returns proceed = true when the exchange happens,
// with replyLost telling whether only the responder updates (a lost
// reply leaves the responder updated but not the initiator, §7.2).
//
// Both engines funnel every exchange through this function, so the
// failure semantics — and the per-attempt RNG consumption order, which
// fixes the serial engine's bit-exact behavior — live in one place.
func DecideExchange(rng *stats.RNG, m *Metrics, peerAlive, peerParticipating, allowed bool, linkFailure, messageLoss float64) (proceed, replyLost bool) {
	m.Attempts++
	switch {
	case !peerAlive:
		m.Timeouts++
	case !peerParticipating:
		m.Refusals++
	case !allowed:
		m.PartitionDrops++
	case rng.Bool(linkFailure):
		m.LinkDrops++
	case rng.Bool(messageLoss):
		// The initiating message never arrived: nothing happened.
		m.RequestLosses++
	default:
		replyLost = rng.Bool(messageLoss)
		if replyLost {
			m.ReplyLosses++
		} else {
			m.Completed++
		}
		return true, replyLost
	}
	return false, false
}

// Add accumulates other's counters into m — the sharded engine folds its
// per-shard counters with it after every cycle.
func (m *Metrics) Add(other Metrics) {
	m.Attempts += other.Attempts
	m.Completed += other.Completed
	m.Timeouts += other.Timeouts
	m.Refusals += other.Refusals
	m.LinkDrops += other.LinkDrops
	m.RequestLosses += other.RequestLosses
	m.ReplyLosses += other.ReplyLosses
	m.PartitionDrops += other.PartitionDrops
}
