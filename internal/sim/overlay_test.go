package sim

import (
	"math"
	"testing"

	"antientropy/internal/core"
	"antientropy/internal/stats"
	"antientropy/internal/theory"
	"antientropy/internal/topology"
)

func TestStaticOverlayRejectsWrongSize(t *testing.T) {
	g, err := topology.NewComplete(5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		N: 10, Cycles: 1, Fn: core.Average, Init: ConstInit(1),
		Overlay: Static(g),
	})
	if err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestStaticOverlayFixedGraph(t *testing.T) {
	g, err := topology.NewComplete(50)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Run(Config{
		N: 50, Cycles: 10, Seed: 1, Fn: core.Average, Init: LinearInit(),
		Overlay: Static(g),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := e.ParticipantMoments()
	if math.Abs(m.Mean()-24.5) > 1e-9 {
		t.Fatalf("mean = %g", m.Mean())
	}
}

func TestNewscastOverlayBootstraps(t *testing.T) {
	ctx := OverlayContext{
		N:     100,
		RNG:   stats.NewRNG(1),
		Alive: func(int) bool { return true },
	}
	ov, err := Newscast(20)(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ns, ok := ov.(*NewscastOverlay)
	if !ok {
		t.Fatal("builder returned wrong type")
	}
	for i := 0; i < 100; i++ {
		if ns.Cache(i).Len() != 20 {
			t.Fatalf("node %d bootstrapped with %d entries, want 20", i, ns.Cache(i).Len())
		}
		if ns.Cache(i).Contains(int32(i)) {
			t.Fatalf("node %d knows itself", i)
		}
	}
}

func TestNewscastOverlaySmallNetwork(t *testing.T) {
	// Cache size larger than the network must degrade gracefully.
	ctx := OverlayContext{N: 3, RNG: stats.NewRNG(2), Alive: func(int) bool { return true }}
	ov, err := Newscast(30)(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ns := ov.(*NewscastOverlay)
	if ns.Cache(0).Len() != 2 {
		t.Fatalf("bootstrap len = %d, want 2", ns.Cache(0).Len())
	}
}

func TestNewscastNeighborFromCache(t *testing.T) {
	ctx := OverlayContext{N: 50, RNG: stats.NewRNG(3), Alive: func(int) bool { return true }}
	ov, err := Newscast(10)(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ns := ov.(*NewscastOverlay)
	rng := stats.NewRNG(4)
	for trial := 0; trial < 100; trial++ {
		p := ns.Neighbor(7, rng)
		if p < 0 || p >= 50 || p == 7 {
			t.Fatalf("bad neighbor %d", p)
		}
		if !ns.Cache(7).Contains(int32(p)) {
			t.Fatalf("neighbor %d not in cache", p)
		}
	}
}

func TestNewscastStepRefreshesStamps(t *testing.T) {
	ctx := OverlayContext{N: 60, RNG: stats.NewRNG(5), Alive: func(int) bool { return true }}
	ov, err := Newscast(8)(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ns := ov.(*NewscastOverlay)
	for cycle := 1; cycle <= 10; cycle++ {
		ns.Step(cycle)
	}
	// After 10 cycles of gossip the caches should hold recent stamps.
	stale := 0
	for i := 0; i < 60; i++ {
		if oldest, ok := ns.Cache(i).Oldest(); ok && oldest < 5 {
			stale++
		}
	}
	if stale > 6 {
		t.Fatalf("%d of 60 caches still hold stamps older than cycle 5", stale)
	}
}

func TestNewscastOnJoinReseeds(t *testing.T) {
	ctx := OverlayContext{N: 40, RNG: stats.NewRNG(6), Alive: func(int) bool { return true }}
	ov, err := Newscast(10)(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ns := ov.(*NewscastOverlay)
	before := ns.Cache(5).Entries()
	ns.OnJoin(5, 17)
	after := ns.Cache(5).Entries()
	if len(after) == 0 {
		t.Fatal("join left empty cache")
	}
	for _, e := range after {
		if e.Stamp != 17 {
			t.Fatalf("joiner seeded with stale stamp %d", e.Stamp)
		}
		if e.Key == 5 {
			t.Fatal("joiner seeded with itself")
		}
	}
	_ = before
}

func TestNewscastAggregationConvergesLikeRandom(t *testing.T) {
	// §4.4 / Figure 4(b): with c = 30 NEWSCAST converges about as fast as
	// a random graph (rho within a few percent of 1/(2√e)).
	var tracker stats.ConvergenceTracker
	_, err := Run(Config{
		N:       3000,
		Cycles:  15,
		Seed:    7,
		Fn:      core.Average,
		Init:    UniformInit(0, 1, 8),
		Overlay: Newscast(30),
		Observe: func(_ int, e *Engine) {
			m := e.ParticipantMoments()
			tracker.Record(m.Variance())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := tracker.AverageFactor(15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-theory.RhoPushPull) > 0.05 {
		t.Fatalf("NEWSCAST rho = %.4f, want ≈ %.4f", rho, theory.RhoPushPull)
	}
}

func TestNewscastSmallCacheConvergesSlower(t *testing.T) {
	// Figure 4(b): tiny caches (c = 2) hurt convergence.
	rho := func(c int) float64 {
		var tracker stats.ConvergenceTracker
		_, err := Run(Config{
			N:       1500,
			Cycles:  15,
			Seed:    9,
			Fn:      core.Average,
			Init:    UniformInit(0, 1, 10),
			Overlay: Newscast(c),
			Observe: func(_ int, e *Engine) {
				m := e.ParticipantMoments()
				tracker.Record(m.Variance())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := tracker.AverageFactor(15)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	small, large := rho(2), rho(30)
	if small <= large+0.02 {
		t.Fatalf("c=2 (%.3f) should converge measurably slower than c=30 (%.3f)", small, large)
	}
}

func TestNewscastSurvivesMassCrash(t *testing.T) {
	// The overlay must stay usable when half the network dies: exchanges
	// keep completing and estimates keep converging.
	e, err := Run(Config{
		N:        2000,
		Cycles:   30,
		Seed:     11,
		Fn:       core.Average,
		Init:     ConstInit(5),
		Overlay:  Newscast(30),
		Failures: []FailureModel{SuddenDeath{AtCycle: 10, Fraction: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.AliveCount() != 1000 {
		t.Fatalf("alive = %d", e.AliveCount())
	}
	m := e.ParticipantMoments()
	if math.Abs(m.Mean()-5) > 1e-9 {
		t.Fatalf("constant distribution disturbed: %g", m.Mean())
	}
	// In the last cycles exchanges must mostly succeed again (overlay
	// repaired): timeouts happen right after the crash, then fade.
	met := e.Metrics()
	if met.Completed == 0 {
		t.Fatal("no exchanges completed")
	}
	ratio := float64(met.Timeouts) / float64(met.Attempts)
	if ratio > 0.25 {
		t.Fatalf("timeout ratio %.2f — overlay not repairing", ratio)
	}
}
