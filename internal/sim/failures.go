package sim

import "fmt"

// FailureModel injects failures at the beginning of each cycle (§6.1:
// crashing nodes at cycle start, when the variance among local values is
// maximal, is the worst case). Models act through the Core surface, so
// the same failure scripts drive the serial and the sharded engine.
type FailureModel interface {
	// Apply injects this cycle's failures into the engine.
	Apply(cycle int, e Core)
	// String describes the model for logs and experiment records.
	String() string
}

// CrashFraction implements the §6.1 failure model: before every cycle a
// fixed proportion P_f of the currently live nodes crashes, without
// replacement.
type CrashFraction struct {
	// P is P_f, the per-cycle crash proportion in [0, 1).
	P float64
}

var _ FailureModel = CrashFraction{}

// Apply kills ⌊P·alive⌋ random live nodes.
func (c CrashFraction) Apply(_ int, e Core) {
	count := int(c.P * float64(e.AliveCount()))
	killRandom(e, count)
}

// String describes the model.
func (c CrashFraction) String() string { return fmt.Sprintf("crash-fraction(Pf=%g)", c.P) }

// SuddenDeath implements the Figure 6(a) scenario: at one specific cycle
// a large fraction of the network crashes simultaneously.
type SuddenDeath struct {
	// AtCycle is the cycle at the start of which the crash happens.
	AtCycle int
	// Fraction of live nodes that crash.
	Fraction float64
}

var _ FailureModel = SuddenDeath{}

// Apply kills the configured fraction once, at the configured cycle.
func (s SuddenDeath) Apply(cycle int, e Core) {
	if cycle != s.AtCycle {
		return
	}
	killRandom(e, int(s.Fraction*float64(e.AliveCount())))
}

// String describes the model.
func (s SuddenDeath) String() string {
	return fmt.Sprintf("sudden-death(cycle=%d, frac=%g)", s.AtCycle, s.Fraction)
}

// Churn implements the Figure 6(b)/8(a) scenario: every cycle a fixed
// number of nodes crashes and the same number of new nodes joins, keeping
// the network size constant while its composition changes. Joiners do not
// participate in the running epoch (§4.2) and refuse its exchanges
// (§7.1).
type Churn struct {
	// PerCycle is the number of nodes substituted each cycle.
	PerCycle int
}

var _ FailureModel = Churn{}

// Apply substitutes PerCycle random live nodes with fresh ones.
func (c Churn) Apply(_ int, e Core) {
	count := c.PerCycle
	if count > e.AliveCount() {
		count = e.AliveCount()
	}
	for k := 0; k < count; k++ {
		victim := e.RandomAlive()
		e.Kill(victim)
		e.Replace(victim) // same slot, brand-new identity
	}
}

// String describes the model.
func (c Churn) String() string { return fmt.Sprintf("churn(%d/cycle)", c.PerCycle) }

// CrashCount kills a fixed number of live nodes per cycle without
// replacement (used by ablations; the paper's figures use CrashFraction,
// SuddenDeath and Churn).
type CrashCount struct {
	// PerCycle is the number of nodes crashed each cycle.
	PerCycle int
}

var _ FailureModel = CrashCount{}

// Apply kills PerCycle random live nodes.
func (c CrashCount) Apply(_ int, e Core) {
	killRandom(e, c.PerCycle)
}

// String describes the model.
func (c CrashCount) String() string { return fmt.Sprintf("crash-count(%d/cycle)", c.PerCycle) }

// killRandom removes count uniformly random live nodes, never killing the
// last one (a zero-node network has no defined aggregate).
func killRandom(e Core, count int) {
	for k := 0; k < count && e.AliveCount() > 1; k++ {
		e.Kill(e.RandomAlive())
	}
}

// ScriptedFailure adapts an arbitrary per-cycle function into a
// FailureModel — the hook point declarative scenarios use to drive timed
// churn waves, partitions, loss bursts and value dynamics through the
// same pipeline as the paper's fixed failure models.
type ScriptedFailure struct {
	// Name describes the script for logs and experiment records.
	Name string
	// Fn is invoked at the beginning of every cycle.
	Fn func(cycle int, e Core)
}

var _ FailureModel = ScriptedFailure{}

// Apply runs the scripted function.
func (s ScriptedFailure) Apply(cycle int, e Core) {
	if s.Fn != nil {
		s.Fn(cycle, e)
	}
}

// String describes the script.
func (s ScriptedFailure) String() string { return fmt.Sprintf("scripted(%s)", s.Name) }

// Script wraps fn as a named FailureModel.
func Script(name string, fn func(cycle int, e Core)) FailureModel {
	return ScriptedFailure{Name: name, Fn: fn}
}
