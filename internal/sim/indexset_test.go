package sim

import (
	"testing"
	"testing/quick"

	"antientropy/internal/core"
	"antientropy/internal/stats"
	"antientropy/internal/topology"
)

// TestIndexSetModelProperty drives the index set with arbitrary
// add/remove sequences and checks it against a plain map model.
func TestIndexSetModelProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(ops []uint16) bool {
		const n = 64
		s := NewIndexSet(n, false)
		model := make(map[int]bool)
		for _, op := range ops {
			id := int(op) % n
			if op&0x8000 != 0 {
				s.Remove(id)
				delete(model, id)
			} else {
				s.Add(id)
				model[id] = true
			}
			if s.Len() != len(model) {
				return false
			}
			if s.Contains(id) != model[id] {
				return false
			}
		}
		// Every model member must be present, and sampling must only
		// return members.
		for id := range model {
			if !s.Contains(id) {
				return false
			}
		}
		if len(model) > 0 {
			rng := stats.NewRNG(1)
			for i := 0; i < 32; i++ {
				if !model[s.Random(rng)] {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteLiveSamplesOnlyAlive(t *testing.T) {
	// Kill most of the network; the live-complete overlay must never
	// select a dead neighbor, so no timeouts can occur.
	e, err := Run(Config{
		N:        200,
		Cycles:   10,
		Seed:     5,
		Fn:       core.Average,
		Init:     ConstInit(3),
		Overlay:  CompleteLive(),
		Failures: []FailureModel{SuddenDeath{AtCycle: 2, Fraction: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Metrics().Timeouts != 0 {
		t.Fatalf("live-complete overlay produced %d timeouts", e.Metrics().Timeouts)
	}
	if e.AliveCount() != 20 {
		t.Fatalf("alive = %d", e.AliveCount())
	}
	m := e.ParticipantMoments()
	if m.Mean() != 3 {
		t.Fatalf("constant distribution disturbed: %g", m.Mean())
	}
}

func TestCompleteLiveSingleSurvivor(t *testing.T) {
	// One live node left: Neighbor must return -1 (no one to talk to)
	// rather than looping forever.
	e, err := New(Config{
		N:       4,
		Cycles:  5,
		Seed:    6,
		Fn:      core.Average,
		Init:    ConstInit(1),
		Overlay: CompleteLive(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, victim := range []int{1, 2, 3} {
		e.Kill(victim)
	}
	e.Step() // must terminate
	if got := e.AliveCount(); got != 1 {
		t.Fatalf("alive = %d", got)
	}
}

func TestCompleteLiveRequiresContext(t *testing.T) {
	if _, err := CompleteLive()(OverlayContext{N: 5, RNG: stats.NewRNG(1)}); err == nil {
		t.Fatal("missing RandomAlive accepted")
	}
}

func TestStaticFuncPropagatesBuildErrors(t *testing.T) {
	builder := StaticFunc(func(n int, rng *stats.RNG) (topology.Graph, error) {
		return nil, errBuild
	})
	_, err := New(Config{
		N: 10, Cycles: 1, Fn: core.Average, Init: ConstInit(1),
		Overlay: builder,
	})
	if err == nil {
		t.Fatal("builder error swallowed")
	}
}

var errBuild = &buildError{}

type buildError struct{}

func (*buildError) Error() string { return "build failed" }
