package sim

import (
	"math"
	"testing"
)

func TestEpochChainValidation(t *testing.T) {
	base := EpochChainConfig{
		N: 100, Epochs: 2, Gamma: 10, Seed: 1,
		ValueAt: func(epoch, node int) float64 { return 1 },
		Overlay: randomOverlay(10),
	}
	if _, err := RunEpochChain(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*EpochChainConfig)
	}{
		{"zero nodes", func(c *EpochChainConfig) { c.N = 0 }},
		{"zero epochs", func(c *EpochChainConfig) { c.Epochs = 0 }},
		{"zero gamma", func(c *EpochChainConfig) { c.Gamma = 0 }},
		{"no values", func(c *EpochChainConfig) { c.ValueAt = nil }},
		{"no overlay", func(c *EpochChainConfig) { c.Overlay = nil }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := RunEpochChain(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestEpochChainTracksDriftingSignal(t *testing.T) {
	// §4.1: each epoch's output converges to that epoch's true average.
	results, err := RunEpochChain(EpochChainConfig{
		N: 500, Epochs: 4, Gamma: 30, Seed: 2,
		ValueAt: func(epoch, node int) float64 {
			return float64(100*(epoch+1)) + float64(node%10)
		},
		Overlay: randomOverlay(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		wantTruth := float64(100*(r.Epoch+1)) + 4.5
		if math.Abs(r.TrueAverage-wantTruth) > 1e-9 {
			t.Fatalf("epoch %d truth = %g, want %g", r.Epoch, r.TrueAverage, wantTruth)
		}
		if math.Abs(r.Outputs.Mean()-r.TrueAverage)/r.TrueAverage > 1e-6 {
			t.Errorf("epoch %d output %g vs truth %g", r.Epoch, r.Outputs.Mean(), r.TrueAverage)
		}
		if r.Outputs.N() != 500 {
			t.Errorf("epoch %d has %d outputs", r.Epoch, r.Outputs.N())
		}
	}
}

func TestEpochChainWithFailures(t *testing.T) {
	// The chain composes with failure models: under churn the epoch
	// outputs still land near the truth.
	results, err := RunEpochChain(EpochChainConfig{
		N: 500, Epochs: 3, Gamma: 30, Seed: 3,
		ValueAt:  func(epoch, node int) float64 { return 10 },
		Overlay:  Newscast(20),
		Failures: []FailureModel{Churn{PerCycle: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if math.Abs(r.Outputs.Mean()-10) > 1e-6 {
			t.Errorf("epoch %d output %g under churn (constant values)", r.Epoch, r.Outputs.Mean())
		}
		if r.Outputs.N() >= 500 {
			t.Errorf("epoch %d: joiners should not be counted", r.Epoch)
		}
	}
}

func TestEpochChainDeterminism(t *testing.T) {
	run := func() []float64 {
		results, err := RunEpochChain(EpochChainConfig{
			N: 200, Epochs: 3, Gamma: 10, Seed: 7,
			ValueAt:     func(epoch, node int) float64 { return float64(epoch + node) },
			Overlay:     Newscast(10),
			MessageLoss: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 3)
		for _, r := range results {
			out = append(out, r.Outputs.Mean())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch chain not deterministic: %v vs %v", a, b)
		}
	}
}
