package sim

import (
	"errors"
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/stats"
)

// DerivedConfig parameterizes the §5 composed aggregates, which run
// multiple concurrent averaging instances and combine their outputs.
type DerivedConfig struct {
	// N is the network size.
	N int
	// Cycles per epoch.
	Cycles int
	// Seed drives the randomness.
	Seed uint64
	// Values yields node i's local value.
	Values func(node int) float64
	// Overlay builds the overlay.
	Overlay OverlayBuilder
	// Leader is the node that holds the COUNT peak (SUM and PRODUCT need
	// a size estimate).
	Leader int
}

func (c DerivedConfig) validate() error {
	if c.N < 1 || c.Cycles < 1 {
		return fmt.Errorf("sim: invalid derived config %+v", c)
	}
	if c.Values == nil {
		return errors.New("sim: derived aggregates need Values")
	}
	if c.Overlay == nil {
		return errors.New("sim: derived aggregates need an overlay")
	}
	if c.Leader < 0 || c.Leader >= c.N {
		return fmt.Errorf("sim: leader %d out of range", c.Leader)
	}
	return nil
}

// DerivedResult carries the per-node combined estimates of a derived
// aggregate at the end of the epoch.
type DerivedResult struct {
	// Name of the aggregate ("sum", "variance", "product").
	Name string
	// Estimates summarizes the per-node outputs.
	Estimates stats.Moments
}

// RunSum composes SUM exactly as §5 prescribes: one averaging instance
// over the values and one COUNT instance run concurrently; every node
// multiplies its two estimates.
func RunSum(cfg DerivedConfig) (*DerivedResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, err := Run(Config{
		N:      cfg.N,
		Cycles: cfg.Cycles,
		Seed:   cfg.Seed,
		Dim:    2,
		VecInit: func(node, dim int) float64 {
			if dim == 0 {
				return cfg.Values(node)
			}
			if node == cfg.Leader {
				return 1
			}
			return 0
		},
		Overlay: cfg.Overlay,
	})
	if err != nil {
		return nil, err
	}
	res := &DerivedResult{Name: "sum"}
	e.ForEachParticipantVec(func(_ int, vec []float64) {
		size := core.SizeFromAverage(vec[1])
		res.Estimates.Add(core.SumFromAverage(vec[0], size))
	})
	return res, nil
}

// RunVariance composes VARIANCE (§5): two concurrent averaging instances,
// over the values and over their squares; the estimate is a2 − a².
func RunVariance(cfg DerivedConfig) (*DerivedResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, err := Run(Config{
		N:      cfg.N,
		Cycles: cfg.Cycles,
		Seed:   cfg.Seed,
		Dim:    2,
		VecInit: func(node, dim int) float64 {
			v := cfg.Values(node)
			if dim == 0 {
				return v
			}
			return v * v
		},
		Overlay: cfg.Overlay,
	})
	if err != nil {
		return nil, err
	}
	res := &DerivedResult{Name: "variance"}
	e.ForEachParticipantVec(func(_ int, vec []float64) {
		res.Estimates.Add(core.VarianceFromMoments(vec[0], vec[1]))
	})
	return res, nil
}

// RunProduct composes PRODUCT (§5): a GEOMETRIC-MEAN instance and a COUNT
// instance; the estimate is gm^N. Values must be positive. The geometric
// mean instance uses the scalar engine (its update is not element-wise
// averaging), sharing the seed-derived overlay with the COUNT run.
func RunProduct(cfg DerivedConfig) (*DerivedResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		if cfg.Values(i) <= 0 {
			return nil, fmt.Errorf("sim: product needs positive values, node %d has %g", i, cfg.Values(i))
		}
	}
	gm, err := Run(Config{
		N:       cfg.N,
		Cycles:  cfg.Cycles,
		Seed:    cfg.Seed,
		Fn:      core.GeometricMean,
		Init:    cfg.Values,
		Overlay: cfg.Overlay,
	})
	if err != nil {
		return nil, err
	}
	count, err := Run(Config{
		N:       cfg.N,
		Cycles:  cfg.Cycles,
		Seed:    cfg.Seed + 1,
		Dim:     1,
		Leaders: []int{cfg.Leader},
		Overlay: cfg.Overlay,
	})
	if err != nil {
		return nil, err
	}
	// Pair the two runs' estimates per node id.
	sizes := make([]float64, cfg.N)
	count.ForEachParticipantVec(func(node int, vec []float64) {
		sizes[node] = core.SizeFromAverage(vec[0])
	})
	res := &DerivedResult{Name: "product"}
	gm.ForEachParticipant(func(node int, g float64) {
		if sizes[node] > 0 {
			res.Estimates.Add(core.ProductFromGeometricMean(g, sizes[node]))
		}
	})
	return res, nil
}
