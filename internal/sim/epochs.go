package sim

import (
	"errors"
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/stats"
)

// EpochChainConfig drives a multi-epoch simulation implementing the §4.1
// automatic-restart scheme in the deterministic substrate: the protocol
// runs Gamma cycles, its estimate becomes the epoch output, and a fresh
// instance restarts from the (possibly changed) local values. This is
// what makes the protocol adaptive — the output follows the signal with
// one epoch of lag.
type EpochChainConfig struct {
	// N is the network size.
	N int
	// Epochs to run.
	Epochs int
	// Gamma is the cycle count per epoch.
	Gamma int
	// Seed drives all randomness.
	Seed uint64
	// ValueAt yields node i's local value at the start of the given
	// epoch (the "dynamic aspect of the node or its environment", §3).
	ValueAt func(epoch, node int) float64
	// Overlay builds the overlay, rebuilt fresh per epoch for static
	// graphs (NEWSCAST state is also restarted; in a deployment it
	// persists, which only helps).
	Overlay OverlayBuilder
	// LinkFailure and MessageLoss apply within every epoch.
	LinkFailure float64
	MessageLoss float64
	// Failures are applied within every epoch.
	Failures []FailureModel
	// Runner executes each epoch's run; nil selects the serial engine.
	// Engine-agnostic callers inject a sharded runner here.
	Runner RunnerFunc
}

func (c EpochChainConfig) validate() error {
	if c.N < 1 || c.Epochs < 1 || c.Gamma < 1 {
		return fmt.Errorf("sim: invalid epoch chain config %+v", c)
	}
	if c.ValueAt == nil {
		return errors.New("sim: epoch chain requires ValueAt")
	}
	if c.Overlay == nil {
		return errors.New("sim: epoch chain requires an overlay")
	}
	return nil
}

// EpochResult is one epoch's outcome.
type EpochResult struct {
	// Epoch index (0-based).
	Epoch int
	// TrueAverage of the values the epoch started from.
	TrueAverage float64
	// Outputs summarizes the per-node estimates at the epoch's end.
	Outputs stats.Moments
}

// RunEpochChain executes the configured epochs and returns one result per
// epoch.
func RunEpochChain(cfg EpochChainConfig) ([]EpochResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	runner := cfg.Runner
	if runner == nil {
		runner = SerialRunner
	}
	results := make([]EpochResult, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var truth stats.Moments
		for i := 0; i < cfg.N; i++ {
			truth.Add(cfg.ValueAt(epoch, i))
		}
		e, err := runner(Config{
			N:           cfg.N,
			Cycles:      cfg.Gamma,
			Seed:        RepSeed(cfg.Seed, epoch),
			Fn:          core.Average,
			Init:        func(node int) float64 { return cfg.ValueAt(epoch, node) },
			Overlay:     cfg.Overlay,
			Failures:    cfg.Failures,
			LinkFailure: cfg.LinkFailure,
			MessageLoss: cfg.MessageLoss,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: epoch %d: %w", epoch, err)
		}
		res := EpochResult{Epoch: epoch, TrueAverage: truth.Mean()}
		e.ForEachParticipant(func(_ int, v float64) { res.Outputs.Add(v) })
		results = append(results, res)
	}
	return results, nil
}
