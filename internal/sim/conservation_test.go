package sim

import (
	"math"
	"testing"
	"testing/quick"

	"antientropy/internal/core"
)

// TestEngineMassConservationProperty checks the engine's core physical
// invariant over arbitrary failure-free configurations: with AVERAGE and
// no crashes or message loss, the sum of all estimates never changes, no
// matter the topology, seed, size or link-failure rate.
func TestEngineMassConservationProperty(t *testing.T) {
	overlays := []OverlayBuilder{
		randomOverlay(8),
		completeOverlay(),
		Newscast(8),
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(seedRaw uint32, nRaw uint8, overlayPick uint8, pdRaw uint8) bool {
		n := 50 + int(nRaw)%200
		pd := float64(pdRaw%90) / 100
		e, err := Run(Config{
			N:           n,
			Cycles:      8,
			Seed:        uint64(seedRaw) + 1,
			Fn:          core.Average,
			Init:        LinearInit(),
			Overlay:     overlays[int(overlayPick)%len(overlays)],
			LinkFailure: pd,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		want := float64(n*(n-1)) / 2
		got := 0.0
		e.ForEachParticipant(func(_ int, v float64) { got += v })
		return math.Abs(got-want) < 1e-6*want
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEngineVectorMassConservationProperty is the same invariant for the
// vector engine: each instance's unit mass is preserved.
func TestEngineVectorMassConservationProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(func(seedRaw uint32, nRaw uint8, dimRaw uint8) bool {
		n := 50 + int(nRaw)%150
		dim := 1 + int(dimRaw)%8
		leaders := make([]int, dim)
		for d := range leaders {
			leaders[d] = (d * 13) % n
		}
		e, err := Run(Config{
			N:       n,
			Cycles:  6,
			Seed:    uint64(seedRaw) + 1,
			Dim:     dim,
			Leaders: leaders,
			Overlay: randomOverlay(8),
		})
		if err != nil {
			t.Log(err)
			return false
		}
		// Duplicate leader slots stack their mass: compute expected mass
		// per dimension (1 each).
		for d := 0; d < dim; d++ {
			total := 0.0
			for i := 0; i < n; i++ {
				total += e.Vector(i)[d]
			}
			if math.Abs(total-1) > 1e-9 {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestVarianceNeverIncreasesWithoutFailures: each AVERAGE exchange can
// only shrink the spread, so the per-cycle variance sequence must be
// non-increasing in a failure-free run.
func TestVarianceNeverIncreasesWithoutFailures(t *testing.T) {
	var variances []float64
	_, err := Run(Config{
		N:       500,
		Cycles:  25,
		Seed:    9,
		Fn:      core.Average,
		Init:    UniformInit(0, 100, 10),
		Overlay: Newscast(15),
		Observe: func(_ int, e *Engine) {
			m := e.ParticipantMoments()
			variances = append(variances, m.Variance())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(variances); i++ {
		if variances[i] > variances[i-1]*(1+1e-12) {
			t.Fatalf("variance grew at cycle %d: %g -> %g", i, variances[i-1], variances[i])
		}
	}
}
