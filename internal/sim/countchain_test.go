package sim

import (
	"math"
	"testing"
)

func countChainConfig(n int) CountChainConfig {
	return CountChainConfig{
		N:            n,
		Epochs:       4,
		Gamma:        30,
		Seed:         13,
		Concurrency:  8,
		InitialGuess: float64(n),
		Overlay:      Newscast(20),
	}
}

func TestCountChainValidation(t *testing.T) {
	base := countChainConfig(100)
	tests := []struct {
		name   string
		mutate func(*CountChainConfig)
	}{
		{"zero nodes", func(c *CountChainConfig) { c.N = 0 }},
		{"zero epochs", func(c *CountChainConfig) { c.Epochs = 0 }},
		{"zero gamma", func(c *CountChainConfig) { c.Gamma = 0 }},
		{"zero concurrency", func(c *CountChainConfig) { c.Concurrency = 0 }},
		{"bad guess", func(c *CountChainConfig) { c.InitialGuess = 0 }},
		{"no overlay", func(c *CountChainConfig) { c.Overlay = nil }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := RunCountEpochChain(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestCountChainEstimatesSize(t *testing.T) {
	const n = 2000
	results, err := RunCountEpochChain(countChainConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	sawEstimate := false
	for _, r := range results {
		if r.Outputs.N() == 0 {
			continue // leaderless epoch: acceptable Poisson outcome
		}
		sawEstimate = true
		if math.Abs(r.Outputs.Mean()-n)/n > 0.05 {
			t.Errorf("epoch %d: estimate %g, want ≈ %d (instances %d)",
				r.Epoch, r.Outputs.Mean(), n, r.Instances)
		}
	}
	if !sawEstimate {
		t.Fatal("no epoch produced an estimate")
	}
}

func TestCountChainRecoversFromBadGuess(t *testing.T) {
	// A wildly low initial N̂ makes P_lead ≈ 1 (everyone a leader, capped
	// by MaxInstances); one epoch later the estimate is correct and the
	// election normalizes to ≈ C leaders.
	const n = 1500
	cfg := countChainConfig(n)
	cfg.InitialGuess = 2
	cfg.Epochs = 3
	results, err := RunCountEpochChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := results[0]
	if first.PLead != 1 {
		t.Fatalf("P_lead with N̂=2 and C=8 should clamp to 1, got %g", first.PLead)
	}
	if first.Instances > 64 {
		t.Fatalf("instance cap not applied: %d", first.Instances)
	}
	if first.Outputs.N() == 0 {
		t.Fatal("first epoch produced no estimate")
	}
	// Later epochs elect roughly C leaders, not N.
	last := results[len(results)-1]
	if last.LeadersElected > 40 {
		t.Fatalf("election did not normalize: %d leaders at epoch %d (P_lead %g)",
			last.LeadersElected, last.Epoch, last.PLead)
	}
	if math.Abs(last.Outputs.Mean()-n)/n > 0.05 {
		t.Fatalf("final estimate %g, want ≈ %d", last.Outputs.Mean(), n)
	}
}

func TestCountChainUnderChurn(t *testing.T) {
	const n = 1500
	cfg := countChainConfig(n)
	cfg.Failures = []FailureModel{Churn{PerCycle: n / 100}}
	results, err := RunCountEpochChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Outputs.N() == 0 {
			continue
		}
		if math.Abs(r.Outputs.Mean()-n)/n > 0.25 {
			t.Errorf("epoch %d under churn: estimate %g", r.Epoch, r.Outputs.Mean())
		}
	}
}

func TestCountChainDeterminism(t *testing.T) {
	run := func() []float64 {
		results, err := RunCountEpochChain(countChainConfig(500))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, len(results))
		for _, r := range results {
			out = append(out, r.Outputs.Mean())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("count chain not deterministic: %v vs %v", a, b)
		}
	}
}
