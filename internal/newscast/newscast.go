// Package newscast implements the NEWSCAST decentralized membership
// protocol the DSN'04 paper uses as its dynamic overlay (§4.4, citing
// Jelasity, Kowalczyk & van Steen). Each node maintains a cache of c node
// descriptors tagged with timestamps; a periodic epidemic exchange merges
// the two caches plus fresh self-descriptors and keeps the c freshest
// entries. Crashed nodes stop injecting their descriptor, so their
// entries age out and the overlay repairs itself.
//
// The cache is generic over the node key so the cycle-driven simulator
// (integer node ids, logical clock) and the live runtime (string
// addresses, wall-clock) share one implementation. Keys must be ordered
// so that merges are fully deterministic.
package newscast

import (
	"cmp"
	"errors"
	"slices"

	"antientropy/internal/stats"
)

// Entry is a node descriptor: a key (identifier/address) and the
// timestamp at which the node injected it.
type Entry[K cmp.Ordered] struct {
	Key   K
	Stamp int64
}

// Cache is one node's partial view of the network. It never contains the
// node's own descriptor and never exceeds its capacity c. Cache is not
// safe for concurrent use.
type Cache[K cmp.Ordered] struct {
	self    K
	cap     int
	entries []Entry[K]
	scratch []Entry[K]
}

// DefaultCacheSize is the cache size the paper recommends: "choosing
// c = 30 is already sufficient to obtain fast convergence … and very
// stable and robust connectivity" (§4.4).
const DefaultCacheSize = 30

// ErrBadCacheSize reports an invalid capacity.
var ErrBadCacheSize = errors.New("newscast: cache size must be at least 1")

// NewCache returns an empty cache of capacity c for node self.
func NewCache[K cmp.Ordered](self K, c int) (*Cache[K], error) {
	if c < 1 {
		return nil, ErrBadCacheSize
	}
	return &Cache[K]{self: self, cap: c, entries: make([]Entry[K], 0, c)}, nil
}

// Self returns the owning node's key.
func (c *Cache[K]) Self() K { return c.self }

// Capacity returns the cache capacity c.
func (c *Cache[K]) Capacity() int { return c.cap }

// Len returns the number of descriptors currently cached.
func (c *Cache[K]) Len() int { return len(c.entries) }

// Entries returns a copy of the cached descriptors.
func (c *Cache[K]) Entries() []Entry[K] {
	return append([]Entry[K](nil), c.entries...)
}

// Contains reports whether the cache holds a descriptor for key.
func (c *Cache[K]) Contains(key K) bool {
	for _, e := range c.entries {
		if e.Key == key {
			return true
		}
	}
	return false
}

// Stamp returns the timestamp cached for key (ok = false if absent).
func (c *Cache[K]) Stamp(key K) (int64, bool) {
	for _, e := range c.entries {
		if e.Key == key {
			return e.Stamp, true
		}
	}
	return 0, false
}

// Seed bootstraps the cache of a joining node from out-of-band contacts
// (§4.2 assumes such a discovery mechanism exists). Existing content is
// replaced.
func (c *Cache[K]) Seed(entries []Entry[K]) {
	c.entries = c.entries[:0]
	c.Absorb(entries)
}

// Peer returns a uniformly random cached descriptor key, used by
// GETNEIGHBOR of the aggregation protocol and by NEWSCAST itself. The
// second result is false when the cache is empty.
func (c *Cache[K]) Peer(rng *stats.RNG) (K, bool) {
	if len(c.entries) == 0 {
		var zero K
		return zero, false
	}
	return c.entries[rng.Intn(len(c.entries))].Key, true
}

// View returns what the node sends in an exchange: its cache content plus
// its own descriptor stamped now. Nodes continuously inject their own
// fresh descriptor this way; crashed nodes, by definition, stop (§4.4).
func (c *Cache[K]) View(now int64) []Entry[K] {
	out := make([]Entry[K], 0, len(c.entries)+1)
	out = append(out, c.entries...)
	out = append(out, Entry[K]{Key: c.self, Stamp: now})
	return out
}

// Absorb merges remote descriptors into the cache: the union of the
// current content and the remote view is deduplicated per key keeping the
// freshest stamp, the node's own descriptor is dropped, and the c
// freshest survivors are kept. Ties on the stamp are broken by key so
// that the merge is fully deterministic.
func (c *Cache[K]) Absorb(remote []Entry[K]) {
	// merged is built in the reusable scratch buffer; entries and scratch
	// never share a backing array because the result is always copied back.
	merged := append(c.scratch[:0], c.entries...)
	for _, e := range remote {
		if e.Key != c.self {
			merged = append(merged, e)
		}
	}
	// Group per key with the freshest stamp first, then dedupe in place.
	// slices.SortFunc (generic pdqsort) rather than sort.Slice: the
	// reflection-based swapper dominated whole-simulation profiles.
	slices.SortFunc(merged, func(a, b Entry[K]) int {
		if a.Key != b.Key {
			return cmp.Compare(a.Key, b.Key)
		}
		return cmp.Compare(b.Stamp, a.Stamp)
	})
	out := merged[:0]
	for i, e := range merged {
		if i == 0 || e.Key != merged[i-1].Key {
			out = append(out, e)
		}
	}
	// Keep the c freshest (stamp desc, key asc on ties).
	slices.SortFunc(out, func(a, b Entry[K]) int {
		if a.Stamp != b.Stamp {
			return cmp.Compare(b.Stamp, a.Stamp)
		}
		return cmp.Compare(a.Key, b.Key)
	})
	if len(out) > c.cap {
		out = out[:c.cap]
	}
	c.entries = append(c.entries[:0], out...)
	c.scratch = merged[:0]
}

// Exchange performs one full NEWSCAST exchange between two live nodes at
// logical time now: both send their view (cache + fresh self descriptor)
// and both absorb the other's view.
func Exchange[K cmp.Ordered](a, b *Cache[K], now int64) {
	va := a.View(now)
	vb := b.View(now)
	a.Absorb(vb)
	b.Absorb(va)
}

// Oldest returns the smallest stamp in the cache (0, false when empty);
// used to monitor overlay freshness and in tests of crash repair.
func (c *Cache[K]) Oldest() (int64, bool) {
	if len(c.entries) == 0 {
		return 0, false
	}
	min := c.entries[0].Stamp
	for _, e := range c.entries[1:] {
		if e.Stamp < min {
			min = e.Stamp
		}
	}
	return min, true
}
