// Package newscast is the compatibility shim over the unified
// membership layer in internal/overlay, kept so that historical callers
// (and external code written against the original generic API) continue
// to compile. It contains no protocol logic of its own: every type and
// function is an alias for, or a one-line delegation to, the legacy
// generic implementation that now lives in overlay.
//
// Deprecated: new code should use overlay.Membership — the packed
// canonical implementation backing the serial simulator, the sharded
// simulator and the live agent — or overlay.Table for whole-network
// views. The generic cache this package exposes implements the identical
// merge contract (pinned by overlay's TestPackedMatchesGenericOnStampTies)
// but is ~5× slower per exchange.
package newscast

import (
	"cmp"

	"antientropy/internal/overlay"
)

// Entry is a node descriptor: a key (identifier/address) and the
// timestamp at which the node injected it.
type Entry[K cmp.Ordered] = overlay.GenericEntry[K]

// Cache is one node's partial view of the network. It never contains the
// node's own descriptor and never exceeds its capacity c. Cache is not
// safe for concurrent use.
type Cache[K cmp.Ordered] = overlay.Generic[K]

// DefaultCacheSize is the cache size the paper recommends (§4.4).
const DefaultCacheSize = overlay.DefaultCacheSize

// ErrBadCacheSize reports an invalid capacity.
var ErrBadCacheSize = overlay.ErrBadCacheSize

// NewCache returns an empty cache of capacity c for node self.
func NewCache[K cmp.Ordered](self K, c int) (*Cache[K], error) {
	return overlay.NewGeneric(self, c)
}

// Exchange performs one full NEWSCAST exchange between two live nodes at
// logical time now: both send their view (cache + fresh self descriptor)
// and both absorb the other's view.
func Exchange[K cmp.Ordered](a, b *Cache[K], now int64) {
	overlay.ExchangeGeneric(a, b, now)
}
