package newscast

import (
	"testing"
	"testing/quick"

	"antientropy/internal/stats"
)

func mustCache(t *testing.T, self int32, c int) *Cache[int32] {
	t.Helper()
	cache, err := NewCache(self, c)
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache[int32](0, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewCache[int32](0, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	c, err := NewCache[int32](7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != 7 || c.Capacity() != 5 || c.Len() != 0 {
		t.Fatalf("fresh cache state wrong: self=%d cap=%d len=%d", c.Self(), c.Capacity(), c.Len())
	}
}

func TestViewIncludesFreshSelfDescriptor(t *testing.T) {
	c := mustCache(t, 3, 4)
	c.Absorb([]Entry[int32]{{Key: 1, Stamp: 10}})
	view := c.View(99)
	foundSelf := false
	for _, e := range view {
		if e.Key == 3 {
			foundSelf = true
			if e.Stamp != 99 {
				t.Fatalf("self descriptor stamp = %d, want 99", e.Stamp)
			}
		}
	}
	if !foundSelf {
		t.Fatal("view lacks the node's own fresh descriptor")
	}
}

func TestAbsorbKeepsFreshestPerKey(t *testing.T) {
	c := mustCache(t, 0, 10)
	c.Absorb([]Entry[int32]{{Key: 1, Stamp: 5}})
	c.Absorb([]Entry[int32]{{Key: 1, Stamp: 9}})
	if s, ok := c.Stamp(1); !ok || s != 9 {
		t.Fatalf("stamp = %d (present=%v), want 9", s, ok)
	}
	// An older descriptor must not overwrite a fresher one.
	c.Absorb([]Entry[int32]{{Key: 1, Stamp: 2}})
	if s, _ := c.Stamp(1); s != 9 {
		t.Fatalf("stale descriptor overwrote fresh one: stamp = %d", s)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate key retained: len = %d", c.Len())
	}
}

func TestAbsorbDropsOwnDescriptor(t *testing.T) {
	c := mustCache(t, 5, 10)
	c.Absorb([]Entry[int32]{{Key: 5, Stamp: 100}, {Key: 2, Stamp: 1}})
	if c.Contains(5) {
		t.Fatal("cache stored its own descriptor")
	}
	if !c.Contains(2) {
		t.Fatal("legitimate descriptor dropped")
	}
}

func TestAbsorbEnforcesCapacityKeepingFreshest(t *testing.T) {
	c := mustCache(t, 0, 3)
	c.Absorb([]Entry[int32]{
		{Key: 1, Stamp: 1}, {Key: 2, Stamp: 9},
		{Key: 3, Stamp: 5}, {Key: 4, Stamp: 7}, {Key: 5, Stamp: 3},
	})
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	for _, want := range []int32{2, 4, 3} {
		if !c.Contains(want) {
			t.Errorf("freshest entry %d evicted", want)
		}
	}
	if c.Contains(1) || c.Contains(5) {
		t.Error("stale entry survived over fresher ones")
	}
}

func TestAbsorbDeterministicTieBreak(t *testing.T) {
	// Equal stamps: lower keys win, independent of insertion order.
	a := mustCache(t, 0, 2)
	b := mustCache(t, 0, 2)
	a.Absorb([]Entry[int32]{{Key: 3, Stamp: 5}, {Key: 1, Stamp: 5}, {Key: 2, Stamp: 5}})
	b.Absorb([]Entry[int32]{{Key: 2, Stamp: 5}, {Key: 3, Stamp: 5}, {Key: 1, Stamp: 5}})
	for _, k := range []int32{1, 2} {
		if !a.Contains(k) || !b.Contains(k) {
			t.Fatalf("tie-break not deterministic: a=%v b=%v", a.Entries(), b.Entries())
		}
	}
}

func TestSeedReplacesContent(t *testing.T) {
	c := mustCache(t, 0, 5)
	c.Absorb([]Entry[int32]{{Key: 9, Stamp: 1}})
	c.Seed([]Entry[int32]{{Key: 1, Stamp: 2}, {Key: 2, Stamp: 2}})
	if c.Contains(9) {
		t.Error("Seed kept stale content")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestPeerSamplesUniformly(t *testing.T) {
	c := mustCache(t, 0, 10)
	c.Absorb([]Entry[int32]{
		{Key: 1, Stamp: 1}, {Key: 2, Stamp: 1}, {Key: 3, Stamp: 1},
	})
	rng := stats.NewRNG(1)
	counts := map[int32]int{}
	const draws = 30000
	for i := 0; i < draws; i++ {
		p, ok := c.Peer(rng)
		if !ok {
			t.Fatal("Peer failed on non-empty cache")
		}
		counts[p]++
	}
	for k, n := range counts {
		frac := float64(n) / draws
		if frac < 0.30 || frac > 0.37 {
			t.Errorf("peer %d drawn with frequency %.3f, want ~1/3", k, frac)
		}
	}
}

func TestPeerEmptyCache(t *testing.T) {
	c := mustCache(t, 0, 3)
	if _, ok := c.Peer(stats.NewRNG(1)); ok {
		t.Fatal("Peer succeeded on empty cache")
	}
}

func TestExchangeSharesDescriptors(t *testing.T) {
	a := mustCache(t, 1, 5)
	b := mustCache(t, 2, 5)
	a.Absorb([]Entry[int32]{{Key: 10, Stamp: 3}})
	b.Absorb([]Entry[int32]{{Key: 20, Stamp: 4}})
	Exchange(a, b, 7)
	// Both caches must now know each other and each other's contacts.
	if !a.Contains(2) || !a.Contains(20) || !a.Contains(10) {
		t.Fatalf("a incomplete after exchange: %v", a.Entries())
	}
	if !b.Contains(1) || !b.Contains(10) || !b.Contains(20) {
		t.Fatalf("b incomplete after exchange: %v", b.Entries())
	}
	// The fresh self-descriptors carry the exchange timestamp.
	if s, _ := b.Stamp(1); s != 7 {
		t.Fatalf("b's descriptor of a stamped %d, want 7", s)
	}
}

func TestOldest(t *testing.T) {
	c := mustCache(t, 0, 5)
	if _, ok := c.Oldest(); ok {
		t.Fatal("Oldest on empty cache returned ok")
	}
	c.Absorb([]Entry[int32]{{Key: 1, Stamp: 4}, {Key: 2, Stamp: 9}})
	if s, ok := c.Oldest(); !ok || s != 4 {
		t.Fatalf("Oldest = %d (%v), want 4", s, ok)
	}
}

func TestEntriesReturnsCopy(t *testing.T) {
	c := mustCache(t, 0, 5)
	c.Absorb([]Entry[int32]{{Key: 1, Stamp: 4}})
	es := c.Entries()
	es[0].Key = 99
	if c.Contains(99) || !c.Contains(1) {
		t.Fatal("Entries exposed internal storage")
	}
}

func TestCrashRepair(t *testing.T) {
	// A mini NEWSCAST network: node 0 crashes at cycle 10 and must
	// disappear from every cache once fresher descriptors crowd it out.
	const n, cap = 30, 5
	caches := make([]*Cache[int32], n)
	for i := range caches {
		caches[i] = mustCache(t, int32(i), cap)
	}
	rng := stats.NewRNG(42)
	// Bootstrap: everyone knows the next node in a ring.
	for i := range caches {
		caches[i].Seed([]Entry[int32]{{Key: int32((i + 1) % n), Stamp: 0}})
	}
	crashed := 0
	for cycle := 1; cycle <= 60; cycle++ {
		for i := 1; i < n; i++ { // node 0 stops gossiping after cycle 10
			if cycle <= 10 {
				// everyone lives
			}
			peer, ok := caches[i].Peer(rng)
			if !ok {
				continue
			}
			if peer == 0 && cycle > 10 {
				continue // timeout against the dead node
			}
			if int(peer) == i {
				continue
			}
			Exchange(caches[i], caches[peer], int64(cycle))
		}
		if cycle <= 10 {
			// Node 0 actively gossips while alive.
			peer, ok := caches[0].Peer(rng)
			if ok && peer != 0 {
				Exchange(caches[0], caches[peer], int64(cycle))
			}
		}
		crashed = 0
		for i := 1; i < n; i++ {
			if caches[i].Contains(0) {
				crashed++
			}
		}
	}
	if crashed != 0 {
		t.Fatalf("dead node still cached by %d of %d nodes after 50 repair cycles", crashed, n-1)
	}
	// Overlay must remain well-populated.
	for i := 1; i < n; i++ {
		if caches[i].Len() < cap {
			t.Fatalf("node %d cache shrank to %d", i, caches[i].Len())
		}
	}
}

func TestAbsorbInvariantsProperty(t *testing.T) {
	// For arbitrary merge inputs: size ≤ cap, no self, no duplicate keys,
	// every kept entry at least as fresh as any dropped entry of the same
	// key.
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(keys []uint8, stamps []int8, capRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		c, err := NewCache[int32](0, capacity)
		if err != nil {
			return false
		}
		nEntries := len(keys)
		if len(stamps) < nEntries {
			nEntries = len(stamps)
		}
		remote := make([]Entry[int32], 0, nEntries)
		for i := 0; i < nEntries; i++ {
			remote = append(remote, Entry[int32]{Key: int32(keys[i] % 20), Stamp: int64(stamps[i])})
		}
		c.Absorb(remote)
		if c.Len() > capacity {
			return false
		}
		if c.Contains(0) {
			return false
		}
		seen := map[int32]bool{}
		for _, e := range c.Entries() {
			if seen[e.Key] {
				return false
			}
			seen[e.Key] = true
			// The kept stamp must be the max stamp of that key in input.
			max := int64(-1 << 62)
			for _, r := range remote {
				if r.Key == e.Key && r.Stamp > max {
					max = r.Stamp
				}
			}
			if e.Stamp != max {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeys(t *testing.T) {
	// The live runtime uses addresses as keys; exercise the generic path.
	a, err := NewCache("10.0.0.1:7000", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCache("10.0.0.2:7000", 3)
	if err != nil {
		t.Fatal(err)
	}
	Exchange(a, b, 1)
	if !a.Contains("10.0.0.2:7000") || !b.Contains("10.0.0.1:7000") {
		t.Fatal("string-keyed exchange failed")
	}
}
