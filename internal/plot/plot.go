// Package plot renders experiment series as ASCII scatter plots so that
// cmd/aggsim output can be eyeballed against the paper's figures without
// any plotting dependency. Linear and log₁₀ scales are supported on both
// axes (the paper plots most y axes logarithmically).
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Series is one labelled point set.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Config controls the rendering.
type Config struct {
	// Width and Height of the plot area in characters (defaults 72×20).
	Width  int
	Height int
	// LogX / LogY select log₁₀ axes; non-positive values are dropped.
	LogX bool
	LogY bool
	// Title is printed above the plot.
	Title string
}

// markers distinguish up to eight overlaid series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series into a string. Points outside a degenerate
// range are centered; NaN/Inf points are skipped.
func Render(cfg Config, series ...Series) (string, error) {
	if len(series) == 0 {
		return "", errors.New("plot: no series")
	}
	if cfg.Width <= 0 {
		cfg.Width = 72
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}
	if cfg.Width < 16 || cfg.Height < 4 {
		return "", fmt.Errorf("plot: area %dx%d too small", cfg.Width, cfg.Height)
	}

	// Transform and collect the usable points.
	type pt struct {
		x, y float64
		m    byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x but %d y values", s.Label, len(s.X), len(s.Y))
		}
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if cfg.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, pt{x: x, y: y, m: m})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if len(pts) == 0 {
		return "", errors.New("plot: no drawable points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for _, p := range pts {
		col := int(math.Round((p.x - minX) / (maxX - minX) * float64(cfg.Width-1)))
		row := cfg.Height - 1 - int(math.Round((p.y-minY)/(maxY-minY)*float64(cfg.Height-1)))
		grid[row][col] = p.m
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	topLabel, botLabel := axisLabel(maxY, cfg.LogY), axisLabel(minY, cfg.LogY)
	labelWidth := len(topLabel)
	if len(botLabel) > labelWidth {
		labelWidth = len(botLabel)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, topLabel)
		case cfg.Height - 1:
			label = fmt.Sprintf("%*s", labelWidth, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", cfg.Width))
	left, right := axisLabel(minX, cfg.LogX), axisLabel(maxX, cfg.LogX)
	pad := cfg.Width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), left, strings.Repeat(" ", pad), right)
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String(), nil
}

// axisLabel formats an axis endpoint, undoing the log transform.
func axisLabel(v float64, logScale bool) string {
	if logScale {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}
