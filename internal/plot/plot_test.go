package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out, err := Render(Config{Title: "test", Width: 40, Height: 10},
		Series{Label: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* line") {
		t.Error("legend missing")
	}
	if strings.Count(out, "*") < 3 {
		t.Errorf("points missing:\n%s", out)
	}
	// Axis labels for the corners.
	if !strings.Contains(out, "0") || !strings.Contains(out, "2") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	out, err := Render(Config{Width: 40, Height: 8},
		Series{Label: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		Series{Label: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("series markers wrong:\n%s", out)
	}
}

func TestRenderLogScaleDropsNonPositive(t *testing.T) {
	out, err := Render(Config{Width: 40, Height: 8, LogY: true},
		Series{Label: "s", X: []float64{1, 2, 3}, Y: []float64{0, 10, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	// The zero point must be dropped; two points survive.
	if strings.Count(out, "*") != 2+1 { // +1 for the legend marker
		t.Errorf("expected 2 plotted points:\n%s", out)
	}
	if !strings.Contains(out, "1e+03") && !strings.Contains(out, "1000") {
		t.Errorf("log axis label missing:\n%s", out)
	}
}

func TestRenderSkipsNaNAndInf(t *testing.T) {
	out, err := Render(Config{Width: 40, Height: 8},
		Series{Label: "s", X: []float64{1, 2, 3, 4},
			Y: []float64{1, math.NaN(), math.Inf(1), 2}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "*") != 2+1 {
		t.Errorf("NaN/Inf not skipped:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(Config{}); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Render(Config{Width: 4, Height: 2},
		Series{X: []float64{1}, Y: []float64{1}}); err == nil {
		t.Error("tiny area accepted")
	}
	if _, err := Render(Config{},
		Series{Label: "bad", X: []float64{1, 2}, Y: []float64{1}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Render(Config{LogY: true},
		Series{Label: "allneg", X: []float64{1}, Y: []float64{-5}}); err == nil {
		t.Error("no drawable points accepted")
	}
}

func TestRenderDegenerateRange(t *testing.T) {
	// All points identical: must not divide by zero.
	out, err := Render(Config{Width: 40, Height: 8},
		Series{Label: "s", X: []float64{5, 5}, Y: []float64{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("point missing")
	}
}

func TestRenderDefaults(t *testing.T) {
	out, err := Render(Config{}, Series{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	// 20 rows + frame + labels + legend.
	if len(lines) < 22 {
		t.Errorf("default size wrong: %d lines", len(lines))
	}
}
