package theory

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRhoConstants(t *testing.T) {
	if !almostEqual(RhoPushPull, 0.3032653298563167, 1e-12) {
		t.Errorf("RhoPushPull = %v", RhoPushPull)
	}
	if !almostEqual(RhoRandomPair, 0.36787944117144233, 1e-12) {
		t.Errorf("RhoRandomPair = %v", RhoRandomPair)
	}
	if RhoPushPull >= RhoRandomPair {
		t.Error("push-pull must converge faster (smaller rho) than the random-pair model")
	}
}

func TestLinkFailureBound(t *testing.T) {
	tests := []struct {
		pd   float64
		want float64
	}{
		{0, 1 / math.E},
		{1, 1},
		{0.5, math.Exp(-0.5)},
	}
	for _, tc := range tests {
		if got := LinkFailureBound(tc.pd); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("LinkFailureBound(%g) = %g, want %g", tc.pd, got, tc.want)
		}
	}
	// Equation (5) sanity: the bound satisfies ρ_d^{1/(1−P_d)} = 1/e.
	for _, pd := range []float64{0.1, 0.3, 0.7, 0.9} {
		rho := LinkFailureBound(pd)
		if !almostEqual(math.Pow(rho, 1/(1-pd)), 1/math.E, 1e-9) {
			t.Errorf("bound identity violated at pd=%g", pd)
		}
	}
	// Monotonically increasing in pd: more failure, slower convergence.
	prev := -1.0
	for pd := 0.0; pd <= 1.0; pd += 0.05 {
		b := LinkFailureBound(pd)
		if b <= prev {
			t.Fatalf("bound not increasing at pd=%g", pd)
		}
		prev = b
	}
}

func TestCrashVarianceFormula(t *testing.T) {
	// Hand-computed check of Theorem 1 with easy numbers:
	// pf=0.5, N=10, σ²₀=1, ρ=0.25, i=2:
	// q = 0.25/0.5 = 0.5; lead = 0.5/(10·0.5)·1 = 0.1
	// Var = 0.1·(1−0.5²)/(1−0.5) = 0.1·1.5 = 0.15
	got, err := CrashVariance(0.5, 10, 1, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.15, 1e-12) {
		t.Fatalf("CrashVariance = %g, want 0.15", got)
	}
}

func TestCrashVarianceZeroPf(t *testing.T) {
	got, err := CrashVariance(0, 1000, 5, RhoPushPull, 20)
	if err != nil || got != 0 {
		t.Fatalf("no crashes must mean zero mean-variance, got %g, %v", got, err)
	}
}

func TestCrashVarianceDegenerateQ(t *testing.T) {
	// ρ/(1−pf) = 1 exactly: each cycle contributes equally.
	got, err := CrashVariance(0.5, 10, 1, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	lead := 0.5 / (10 * 0.5) * 1
	if !almostEqual(got, lead*4, 1e-12) {
		t.Fatalf("degenerate-q variance = %g, want %g", got, lead*4)
	}
}

func TestCrashVarianceMonotoneInPf(t *testing.T) {
	prev := -1.0
	for _, pf := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		v, err := CrashVariance(pf, 1e5, 1e5, RhoPushPull, 20)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev && pf > 0 {
			t.Fatalf("variance not increasing at pf=%g", pf)
		}
		prev = v
	}
}

func TestCrashVarianceScalesInverselyWithN(t *testing.T) {
	// Larger networks approximate better (paper §6.1: "optimal for
	// scalability").
	small, _ := CrashVariance(0.1, 1000, 1, RhoPushPull, 20)
	large, _ := CrashVariance(0.1, 100000, 1, RhoPushPull, 20)
	if !almostEqual(small/large, 100, 1e-6) {
		t.Fatalf("variance should scale as 1/N: ratio = %g", small/large)
	}
}

func TestCrashVarianceErrors(t *testing.T) {
	if _, err := CrashVariance(-0.1, 10, 1, 0.3, 5); err == nil {
		t.Error("negative pf accepted")
	}
	if _, err := CrashVariance(1, 10, 1, 0.3, 5); err == nil {
		t.Error("pf = 1 accepted")
	}
	if _, err := CrashVariance(0.1, 0, 1, 0.3, 5); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := CrashVariance(0.1, 10, 1, 0.3, -1); err == nil {
		t.Error("negative cycles accepted")
	}
}

func TestCrashVarianceBounded(t *testing.T) {
	// Bounded iff ρ ≤ 1 − pf (§6.1).
	if !CrashVarianceBounded(0.3, RhoPushPull) {
		t.Error("pf=0.3 with push-pull rho should be bounded")
	}
	if CrashVarianceBounded(0.8, RhoPushPull) {
		t.Error("pf=0.8 should be unbounded (1-pf=0.2 < rho)")
	}
}

func TestCyclesForAccuracy(t *testing.T) {
	// γ ≥ log_ρ ε. With ρ = 0.1 and ε = 1e-3 exactly 3 cycles.
	got, err := CyclesForAccuracy(0.1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("CyclesForAccuracy = %d, want 3", got)
	}
	// The paper's standard epoch: ρ = 1/(2√e), 30 cycles gives < 1e-15.
	g, err := CyclesForAccuracy(RhoPushPull, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if g > 30 {
		t.Fatalf("30-cycle epoch should reach 1e-15 accuracy, needs %d", g)
	}
	if _, err := CyclesForAccuracy(0, 0.1); err == nil {
		t.Error("rho=0 accepted")
	}
	if _, err := CyclesForAccuracy(1, 0.1); err == nil {
		t.Error("rho=1 accepted")
	}
	if _, err := CyclesForAccuracy(0.5, 0); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := CyclesForAccuracy(0.5, 2); err == nil {
		t.Error("epsilon=2 accepted")
	}
}

func TestExpectedVarianceAfter(t *testing.T) {
	if got := ExpectedVarianceAfter(0.5, 16, 4); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("ExpectedVarianceAfter = %g, want 1", got)
	}
	if got := ExpectedVarianceAfter(0.5, 16, 0); got != 16 {
		t.Fatalf("zero cycles should return sigma0, got %g", got)
	}
}

func TestExchangesPerCycleCDF(t *testing.T) {
	// X = 1 + Poisson(1): P(X ≤ 0) = 0, P(X ≤ 1) = e⁻¹,
	// P(X ≤ 2) = 2e⁻¹, P(X ≤ 3) = 2.5e⁻¹.
	if got := ExchangesPerCycleCDF(0); got != 0 {
		t.Fatalf("CDF(0) = %g", got)
	}
	if got := ExchangesPerCycleCDF(1); !almostEqual(got, math.Exp(-1), 1e-12) {
		t.Fatalf("CDF(1) = %g", got)
	}
	if got := ExchangesPerCycleCDF(2); !almostEqual(got, 2*math.Exp(-1), 1e-12) {
		t.Fatalf("CDF(2) = %g", got)
	}
	if got := ExchangesPerCycleCDF(3); !almostEqual(got, 2.5*math.Exp(-1), 1e-12) {
		t.Fatalf("CDF(3) = %g", got)
	}
	// CDF must approach 1.
	if got := ExchangesPerCycleCDF(40); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("CDF(40) = %g, want ~1", got)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for k := 0; k < 20; k++ {
		v := ExchangesPerCycleCDF(k)
		if v < prev {
			t.Fatalf("CDF decreasing at k=%d", k)
		}
		prev = v
	}
}
