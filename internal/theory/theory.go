// Package theory provides the closed-form predictions the DSN'04 paper
// derives for the anti-entropy aggregation protocol, so that the
// experiment harness can plot measured values against theory exactly as
// the paper does (Figures 5 and 7a, and the §3/§4.5 convergence results).
package theory

import (
	"errors"
	"math"
)

// RhoPushPull is the per-cycle variance reduction factor ρ ≈ 1/(2√e) of
// the push-pull averaging protocol on a sufficiently random overlay
// (paper §3): every node initiates exactly one exchange per cycle and the
// expected variance drops by this factor each cycle.
var RhoPushPull = 1 / (2 * math.Sqrt(math.E))

// RhoRandomPair is the reduction factor ρ = 1/e of the fully random
// pairwise-exchange model (paper §6.2, from [5]), in which each variance
// reduction step picks a uniform random pair and a node may not
// participate in a given cycle at all.
var RhoRandomPair = 1 / math.E

// LinkFailureBound returns the paper's upper bound (equation (5)) on the
// average convergence factor when each link is down with probability pd:
//
//	ρ_d = (1/e)^(1−pd) = e^(pd−1).
//
// Link failure only slows convergence; it introduces no approximation
// error.
func LinkFailureBound(pd float64) float64 {
	return math.Exp(pd - 1)
}

// CrashVariance returns Theorem 1's prediction for Var(µ_i), the variance
// of the running mean of the surviving estimates after i cycles when a
// proportion pf of the nodes crashes at the beginning of every cycle:
//
//	Var(µ_i) = pf/(N(1−pf)) · E(σ²₀) · (1 − (ρ/(1−pf))^i) / (1 − ρ/(1−pf))
//
// with ρ the per-cycle variance reduction factor. n is the initial network
// size and sigma0 is E(σ²₀), the expected variance of the initial values.
func CrashVariance(pf float64, n int, sigma0 float64, rho float64, cycles int) (float64, error) {
	if pf < 0 || pf >= 1 {
		return 0, errors.New("theory: pf must be in [0, 1)")
	}
	if n <= 0 {
		return 0, errors.New("theory: n must be positive")
	}
	if cycles < 0 {
		return 0, errors.New("theory: cycles must be non-negative")
	}
	if pf == 0 {
		return 0, nil
	}
	q := rho / (1 - pf)
	lead := pf / (float64(n) * (1 - pf)) * sigma0
	if q == 1 {
		// Degenerate geometric series: each term contributes equally.
		return lead * float64(cycles), nil
	}
	return lead * (1 - math.Pow(q, float64(cycles))) / (1 - q), nil
}

// CrashVarianceBounded reports whether the variance of µ_i stays bounded
// as i → ∞ for the given crash rate: bounded iff ρ ≤ 1 − pf (paper §6.1).
func CrashVarianceBounded(pf, rho float64) bool {
	return rho <= 1-pf
}

// CyclesForAccuracy returns the smallest number of cycles γ such that the
// expected variance reduction ρ^γ is at most epsilon (paper §4.5:
// γ ≥ log_ρ ε). rho must be in (0, 1) and epsilon in (0, 1].
func CyclesForAccuracy(rho, epsilon float64) (int, error) {
	if rho <= 0 || rho >= 1 {
		return 0, errors.New("theory: rho must be in (0, 1)")
	}
	if epsilon <= 0 || epsilon > 1 {
		return 0, errors.New("theory: epsilon must be in (0, 1]")
	}
	return int(math.Ceil(math.Log(epsilon) / math.Log(rho))), nil
}

// ExpectedVarianceAfter returns E(σ²_γ) = ρ^γ · sigma0 (paper §4.5).
func ExpectedVarianceAfter(rho, sigma0 float64, cycles int) float64 {
	return sigma0 * math.Pow(rho, float64(cycles))
}

// EpidemicRoundsBound returns a standard upper bound on the number of
// gossip rounds needed to spread one datum (the global MIN or MAX, §5) to
// all n nodes. For push-only gossip, Pittel's theorem gives
// log₂n + ln n + O(1); push-pull is strictly faster, so this bounds the
// MIN/MAX protocols from above with high probability.
func EpidemicRoundsBound(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n)) + math.Log(float64(n)) + 4
}

// ExchangesPerCycleCDF returns P(X ≤ k) where X = 1 + Poisson(1) is the
// paper's §4.5 model of the number of exchanges a node performs in one
// cycle (one self-initiated plus a Poisson(1) number of passive ones).
func ExchangesPerCycleCDF(k int) float64 {
	if k < 1 {
		return 0
	}
	// P(Poisson(1) ≤ k−1) = e^{-1} Σ_{j=0}^{k−1} 1/j!
	sum := 0.0
	term := 1.0 // 1/0!
	for j := 0; j <= k-1; j++ {
		if j > 0 {
			term /= float64(j)
		}
		sum += term
	}
	return math.Exp(-1) * sum
}
