// Package transport provides the point-to-point messaging substrate of
// the live aggregation runtime, matching the paper's system model (§2):
// unreliable, unordered datagram delivery with unpredictable delays.
//
// Two implementations are provided: an in-memory network with
// configurable latency, loss and partitions (for tests and simulation of
// deployments), and a UDP transport for real networks.
package transport

import (
	"errors"
	"sync"
)

// Packet is one received datagram.
type Packet struct {
	// From is the sender's address.
	From string
	// Data is the raw datagram content. It may alias a pooled receive
	// buffer: the consumer owns it until Release.
	Data []byte

	// buf is the pooled backing buffer, nil for packets whose Data was
	// heap-allocated (in-memory transport, hand-built test packets).
	buf *[]byte
}

// Release returns the packet's backing buffer to the receive pool.
// Optional: an unreleased buffer is simply collected by the GC, but the
// steady-state receive path stays allocation-free only when consumers
// release. Call at most once, and never touch Data afterwards.
func (p *Packet) Release() {
	if p.buf != nil {
		putBuf(p.buf)
		p.buf = nil
		p.Data = nil
	}
}

// bufPool recycles MaxDatagram-sized receive buffers across all UDP
// endpoints and muxes of the process: one Get per datagram in flight,
// zero allocations in the steady state.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, MaxDatagram)
	return &b
}}

// sendBufSize is the small size class backing coalesced sends: gossip
// frames are a few hundred bytes, and thousands of them can sit in the
// outbound queues at once — parking MaxDatagram buffers there would
// balloon the heap and defeat the pools through GC churn.
const sendBufSize = 2048

var sendPool = sync.Pool{New: func() any {
	b := make([]byte, sendBufSize)
	return &b
}}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// getSendBuf returns a pooled buffer with capacity for n bytes, from
// the small class when the payload fits.
func getSendBuf(n int) *[]byte {
	if n <= sendBufSize {
		return sendPool.Get().(*[]byte)
	}
	return getBuf()
}

// putBuf returns a pooled buffer to its size class.
func putBuf(b *[]byte) {
	if cap(*b) >= MaxDatagram {
		bufPool.Put(b)
	} else {
		sendPool.Put(b)
	}
}

// Endpoint is one node's attachment to a network. Implementations must be
// safe for concurrent use.
type Endpoint interface {
	// Addr returns this endpoint's address, usable as a Send target by
	// peers.
	Addr() string
	// Send transmits a datagram. Delivery is best-effort: an error means
	// the datagram was certainly not sent; no error means it may arrive.
	Send(to string, data []byte) error
	// Recv returns the inbound datagram channel. It is closed when the
	// endpoint is closed.
	Recv() <-chan Packet
	// Close releases the endpoint. Safe to call more than once.
	Close() error
}

// HandlerEndpoint is implemented by endpoints that can deliver inbound
// packets by calling a handler on the transport's own reader goroutines
// instead of through the Recv channel — the shared receive pipeline of
// UDPMux. Once a handler is set the Recv channel stays silent; anything
// buffered there before the handler existed is drained into it. The
// handler must be safe for concurrent calls and should Release the
// packet when done.
type HandlerEndpoint interface {
	Endpoint
	SetHandler(fn func(Packet))
}

// Errors shared by implementations.
var (
	// ErrClosed is returned by Send after Close.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnknownPeer is returned by the in-memory network when the
	// destination was never registered.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrTooLarge is returned when a datagram exceeds the maximum size.
	ErrTooLarge = errors.New("transport: datagram too large")
)

// MaxDatagram is the largest accepted datagram; generous for our wire
// format yet within a safe UDP payload size after fragmentation.
const MaxDatagram = 60000
