// Package transport provides the point-to-point messaging substrate of
// the live aggregation runtime, matching the paper's system model (§2):
// unreliable, unordered datagram delivery with unpredictable delays.
//
// Two implementations are provided: an in-memory network with
// configurable latency, loss and partitions (for tests and simulation of
// deployments), and a UDP transport for real networks.
package transport

import "errors"

// Packet is one received datagram.
type Packet struct {
	// From is the sender's address.
	From string
	// Data is the raw datagram content.
	Data []byte
}

// Endpoint is one node's attachment to a network. Implementations must be
// safe for concurrent use.
type Endpoint interface {
	// Addr returns this endpoint's address, usable as a Send target by
	// peers.
	Addr() string
	// Send transmits a datagram. Delivery is best-effort: an error means
	// the datagram was certainly not sent; no error means it may arrive.
	Send(to string, data []byte) error
	// Recv returns the inbound datagram channel. It is closed when the
	// endpoint is closed.
	Recv() <-chan Packet
	// Close releases the endpoint. Safe to call more than once.
	Close() error
}

// Errors shared by implementations.
var (
	// ErrClosed is returned by Send after Close.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnknownPeer is returned by the in-memory network when the
	// destination was never registered.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrTooLarge is returned when a datagram exceeds the maximum size.
	ErrTooLarge = errors.New("transport: datagram too large")
)

// MaxDatagram is the largest accepted datagram; generous for our wire
// format yet within a safe UDP payload size after fragmentation.
const MaxDatagram = 60000
