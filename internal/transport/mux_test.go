package transport

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestMux(t *testing.T, cfg UDPMuxConfig) *UDPMux {
	t.Helper()
	m, err := NewUDPMux(cfg)
	if err != nil {
		t.Fatalf("NewUDPMux: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func muxEndpoint(t *testing.T, m *UDPMux) *MuxEndpoint {
	t.Helper()
	ep, err := m.Endpoint()
	if err != nil {
		t.Fatalf("mux.Endpoint: %v", err)
	}
	return ep
}

func muxRecvOne(t *testing.T, e Endpoint) Packet {
	t.Helper()
	select {
	case p, ok := <-e.Recv():
		if !ok {
			t.Fatalf("recv channel closed while waiting for a packet")
		}
		return p
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for a packet on %s", e.Addr())
	}
	panic("unreachable")
}

func TestMuxRoundTrip(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 2})
	a, b := muxEndpoint(t, m), muxEndpoint(t, m)

	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatalf("send a->b: %v", err)
	}
	p := muxRecvOne(t, b)
	if string(p.Data) != "ping" {
		t.Fatalf("payload = %q, want %q", p.Data, "ping")
	}
	// From must equal the sender's advertised address so replies and
	// filter rules route symmetrically.
	if p.From != a.Addr() {
		t.Fatalf("From = %q, want sender addr %q", p.From, a.Addr())
	}
	if err := b.Send(p.From, []byte("pong")); err != nil {
		t.Fatalf("send b->a: %v", err)
	}
	q := muxRecvOne(t, a)
	if string(q.Data) != "pong" || q.From != b.Addr() {
		t.Fatalf("reply = %q from %q, want %q from %q", q.Data, q.From, "pong", b.Addr())
	}
	p.Release()
	q.Release()
}

func TestMuxDistinctAddresses(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 1})
	seen := make(map[string]bool)
	for i := 0; i < 8; i++ {
		ep := muxEndpoint(t, m)
		if seen[ep.Addr()] {
			t.Fatalf("duplicate endpoint address %q", ep.Addr())
		}
		seen[ep.Addr()] = true
	}
}

func TestMuxHandlerMode(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 1})
	a, b := muxEndpoint(t, m), muxEndpoint(t, m)

	// Datagrams arriving before SetHandler buffer on the channel and
	// must be drained into the handler, not lost.
	if err := a.Send(b.Addr(), []byte("early")); err != nil {
		t.Fatalf("send: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for len(b.in) == 0 {
		select {
		case <-deadline:
			t.Fatalf("early datagram never buffered")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	got := make(chan string, 16)
	b.SetHandler(func(p Packet) {
		got <- string(p.Data)
		p.Release()
	})
	if err := a.Send(b.Addr(), []byte("late")); err != nil {
		t.Fatalf("send: %v", err)
	}
	want := map[string]bool{"early": true, "late": true}
	for i := 0; i < 2; i++ {
		select {
		case s := <-got:
			if !want[s] {
				t.Fatalf("unexpected payload %q", s)
			}
			delete(want, s)
		case <-time.After(5 * time.Second):
			t.Fatalf("missing handler deliveries, still waiting for %v", want)
		}
	}
}

func TestMuxEndpointClose(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 1})
	a, b := muxEndpoint(t, m), muxEndpoint(t, m)

	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Fatalf("recv channel still open after Close")
	}
	if err := b.Send(a.Addr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed endpoint = %v, want ErrClosed", err)
	}
	// Traffic for the closed id is dropped, not misdelivered; the next
	// endpoint gets a fresh id.
	if err := a.Send(b.Addr(), []byte("stale")); err != nil {
		t.Fatalf("send to closed endpoint: %v", err)
	}
	c := muxEndpoint(t, m)
	if c.Addr() == b.Addr() {
		t.Fatalf("endpoint id reused: %q", c.Addr())
	}
	deadline := time.After(5 * time.Second)
	for m.Unrouted() == 0 {
		select {
		case <-deadline:
			t.Fatalf("datagram for closed endpoint not counted as unrouted")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestMuxCloseAll(t *testing.T) {
	m, err := NewUDPMux(UDPMuxConfig{Sockets: 2})
	if err != nil {
		t.Fatalf("NewUDPMux: %v", err)
	}
	ep, err := m.Endpoint()
	if err != nil {
		t.Fatalf("endpoint: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := ep.Send("127.0.0.1:9", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after mux close = %v, want ErrClosed", err)
	}
	if _, err := m.Endpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Endpoint after close = %v, want ErrClosed", err)
	}
}

func TestMuxTooLarge(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 1})
	a, b := muxEndpoint(t, m), muxEndpoint(t, m)
	// Framed sends lose muxHeaderLen bytes of payload budget.
	big := make([]byte, MaxDatagram-muxHeaderLen+1)
	if err := a.Send(b.Addr(), big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("framed oversized send = %v, want ErrTooLarge", err)
	}
	if err := a.Send(b.Addr(), big[:MaxDatagram-muxHeaderLen]); err != nil {
		t.Fatalf("framed max-size send: %v", err)
	}
}

func TestMuxFilterPartition(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 1})
	a, b, c := muxEndpoint(t, m), muxEndpoint(t, m), muxEndpoint(t, m)

	f := NewUDPFilter(1)
	f.PartitionGroups(map[string]int{a.Addr(): 0, b.Addr(): 1, c.Addr(): 0})
	m.SetFilter(f)

	if err := a.Send(b.Addr(), []byte("cut")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := a.Send(c.Addr(), []byte("same-group")); err != nil {
		t.Fatalf("send: %v", err)
	}
	p := muxRecvOne(t, c)
	if string(p.Data) != "same-group" {
		t.Fatalf("payload = %q", p.Data)
	}
	p.Release()
	select {
	case q := <-b.Recv():
		t.Fatalf("partitioned datagram delivered: %q from %q", q.Data, q.From)
	case <-time.After(100 * time.Millisecond):
	}
	if a.FilterDrops() == 0 {
		t.Fatalf("filter drop not counted on sending endpoint")
	}
}

func TestMuxPlainSendToLegacyEndpoint(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 1})
	a := muxEndpoint(t, m)
	legacy, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer legacy.Close()

	// A plain "host:port" target goes out unframed so legacy endpoints
	// (aggnode deployments) read the raw payload.
	if err := a.Send(legacy.Addr(), []byte("raw")); err != nil {
		t.Fatalf("send: %v", err)
	}
	p := muxRecvOne(t, legacy)
	if string(p.Data) != "raw" {
		t.Fatalf("legacy endpoint got %q, want %q", p.Data, "raw")
	}
	// The legacy endpoint sees the socket address, not the "#id" form.
	if p.From != a.sock.addr {
		t.Fatalf("legacy From = %q, want mux socket addr %q", p.From, a.sock.addr)
	}
	p.Release()
}

// TestMuxSharedReaderRace hammers one mux from many goroutines — mixed
// handler and channel endpoints, filter churn, mid-run endpoint closes —
// so the race job exercises the shared reader/flusher pool.
func TestMuxSharedReaderRace(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 2, Batch: 8, QueueLen: 64})
	const nEps = 16
	eps := make([]*MuxEndpoint, nEps)
	var received atomic.Int64
	for i := range eps {
		eps[i] = muxEndpoint(t, m)
		if i%2 == 0 {
			eps[i].SetHandler(func(p Packet) {
				received.Add(1)
				p.Release()
			})
		}
	}
	// Channel endpoints need consumers or their buffers just fill up.
	var consumers sync.WaitGroup
	for i := 1; i < nEps; i += 2 {
		consumers.Add(1)
		go func(ep *MuxEndpoint) {
			defer consumers.Done()
			for p := range ep.Recv() {
				received.Add(1)
				p.Release()
			}
		}(eps[i])
	}

	var senders sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		senders.Add(1)
		go func(seed int64) {
			defer senders.Done()
			rng := rand.New(rand.NewSource(seed))
			payload := []byte("race-payload")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dst := eps[rng.Intn(nEps)]
				src := eps[rng.Intn(nEps)]
				_ = src.Send(dst.Addr(), payload)
				if i%64 == 0 {
					// Yield so single-CPU runners schedule the shared
					// reader goroutines under the send storm.
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(int64(g))
	}
	// Filter churn while traffic flows.
	senders.Add(1)
	go func() {
		defer senders.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				f := NewUDPFilter(int64(i))
				f.SetLoss(0.1)
				m.SetFilter(f)
			} else {
				m.SetFilter(nil)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait for traffic to actually flow before injecting the closes, so
	// slow single-CPU runners still exercise delivery.
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Close a handler endpoint and a channel endpoint mid-traffic.
	eps[0].Close()
	eps[1].Close()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	senders.Wait()
	if err := m.Close(); err != nil {
		t.Fatalf("mux close: %v", err)
	}
	consumers.Wait()
	if received.Load() == 0 {
		t.Fatalf("no datagrams delivered during the race run")
	}
	if m.BatchSizes().Count == 0 {
		t.Fatalf("batch-size histogram never observed a batch")
	}
}

func TestMuxQueueDepthWatermark(t *testing.T) {
	m := newTestMux(t, UDPMuxConfig{Sockets: 1, QueueLen: 8})
	a, b := muxEndpoint(t, m), muxEndpoint(t, m)
	for i := 0; i < 4; i++ {
		if err := a.Send(b.Addr(), []byte("fill")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	deadline := time.After(5 * time.Second)
	for m.QueueDepthHighWatermark() == 0 {
		select {
		case <-deadline:
			t.Fatalf("queue depth watermark never rose")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestUDPEndpointRecvAllocs guards the pooled receive path of the legacy
// per-node endpoint: once caches are warm, a send+recv+release round
// must not allocate per datagram (the old path copied every datagram).
func TestUDPEndpointRecvAllocs(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer b.Close()

	payload := []byte("steady-state datagram")
	// Warm the resolve and From-string caches.
	for i := 0; i < 3; i++ {
		if err := a.Send(b.Addr(), payload); err != nil {
			t.Fatalf("send: %v", err)
		}
		p := muxRecvOne(t, b)
		p.Release()
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := a.Send(b.Addr(), payload); err != nil {
			t.Fatalf("send: %v", err)
		}
		p := <-b.Recv()
		p.Release()
	})
	// Zero in the steady state; tolerate a stray pool refill after a GC.
	if avg > 2 {
		t.Fatalf("send+recv+release allocates %.1f times per datagram, want ~0", avg)
	}
}

// BenchmarkUDPMuxRoundTrip measures one framed request/reply pair
// between two handler-mode endpoints sharing a mux.
func BenchmarkUDPMuxRoundTrip(b *testing.B) {
	m, err := NewUDPMux(UDPMuxConfig{Sockets: 2, ReadBuffer: 1 << 20})
	if err != nil {
		b.Fatalf("NewUDPMux: %v", err)
	}
	defer m.Close()
	cli, err := m.Endpoint()
	if err != nil {
		b.Fatalf("endpoint: %v", err)
	}
	srv, err := m.Endpoint()
	if err != nil {
		b.Fatalf("endpoint: %v", err)
	}
	srv.SetHandler(func(p Packet) {
		_ = srv.Send(p.From, p.Data)
		p.Release()
	})
	done := make(chan struct{}, 1)
	cli.SetHandler(func(p Packet) {
		p.Release()
		select {
		case done <- struct{}{}:
		default:
		}
	})
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Send(srv.Addr(), payload); err != nil {
			b.Fatalf("send: %v", err)
		}
		select {
		case <-done:
		case <-time.After(time.Second):
			// UDP: a lost datagram must not hang the benchmark.
			i--
		}
	}
}

// BenchmarkUDPWorkerCycle is the tentpole gate: one "cycle" has every
// node of a worker-sized slice fire one request at a fixed peer and the
// peer answer, i.e. 2·nodes datagrams through the transport. The mux
// sub-benchmark shares a handful of sockets and reader goroutines; the
// endpoint sub-benchmark is the old architecture — one socket, one
// reader goroutine and one consumer goroutine per node.
func BenchmarkUDPWorkerCycle(b *testing.B) {
	const nodes = 3000
	b.Run("mux", func(b *testing.B) {
		m, err := NewUDPMux(UDPMuxConfig{ReadBuffer: 1 << 22})
		if err != nil {
			b.Fatalf("NewUDPMux: %v", err)
		}
		defer m.Close()
		eps := make([]*MuxEndpoint, nodes)
		for i := range eps {
			if eps[i], err = m.Endpoint(); err != nil {
				b.Fatalf("endpoint %d: %v", i, err)
			}
		}
		var completed atomic.Int64
		for i := range eps {
			ep := eps[i]
			ep.SetHandler(func(p Packet) {
				if len(p.Data) > 0 && p.Data[0] == 0 {
					reply := []byte{1}
					_ = ep.Send(p.From, reply)
				} else {
					completed.Add(1)
				}
				p.Release()
			})
		}
		addrs := make([]string, nodes)
		for i, ep := range eps {
			addrs[i] = ep.Addr()
		}
		benchWorkerCycles(b, nodes, &completed, func(i int) {
			_ = eps[i].Send(addrs[(i+1)%nodes], []byte{0})
		})
	})
	b.Run("endpoint", func(b *testing.B) {
		eps := make([]*UDPEndpoint, nodes)
		var wg sync.WaitGroup
		defer func() {
			for _, ep := range eps {
				if ep != nil {
					ep.Close()
				}
			}
			wg.Wait()
		}()
		var completed atomic.Int64
		for i := range eps {
			ep, err := ListenUDP("127.0.0.1:0", 0)
			if err != nil {
				// Per-node sockets need nodes+ file descriptors; skip
				// (rather than fail) on fd-limited machines.
				b.Skipf("per-node sockets unavailable at %d nodes: %v", nodes, err)
			}
			eps[i] = ep
			wg.Add(1)
			go func(ep *UDPEndpoint) {
				defer wg.Done()
				for p := range ep.Recv() {
					if len(p.Data) > 0 && p.Data[0] == 0 {
						_ = ep.Send(p.From, []byte{1})
					} else {
						completed.Add(1)
					}
					p.Release()
				}
			}(ep)
		}
		addrs := make([]string, nodes)
		for i, ep := range eps {
			addrs[i] = ep.Addr()
		}
		benchWorkerCycles(b, nodes, &completed, func(i int) {
			_ = eps[i].Send(addrs[(i+1)%nodes], []byte{0})
		})
	})
}

// benchWorkerCycles drives b.N cycles: fan the per-node sends across
// GOMAXPROCS goroutines, then wait for ≥95% of round trips (UDP loss
// must not hang the run) or a timeout.
func benchWorkerCycles(b *testing.B, nodes int, completed *atomic.Int64, send func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		completed.Store(0)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < nodes; i += workers {
					send(i)
				}
			}(w)
		}
		wg.Wait()
		want := int64(nodes) * 95 / 100
		deadline := time.Now().Add(5 * time.Second)
		for completed.Load() < want {
			if time.Now().After(deadline) {
				b.Fatalf("cycle %d: only %d/%d round trips completed", iter, completed.Load(), nodes)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}
