package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"antientropy/internal/obs"
)

// UDPMux multiplexes many lightweight endpoints over a small fixed set
// of UDP sockets: one reader goroutine and one flusher goroutine per
// socket instead of one socket + goroutine per node. A worker process
// carrying thousands of agent.Nodes shares the sockets, the receive
// buffers (pooled, no per-datagram copy) and one resolve/address cache.
//
// Mux endpoints address each other as "host:port#id": the socket's
// address plus a per-mux endpoint id carried in a 10-byte frame header
// on every datagram (magic "MX", destination id, source id, all
// big-endian). Sending to a plain "host:port" address transmits the
// payload unframed, so a mux endpoint can talk to a legacy UDPEndpoint
// or aggnode; the reverse direction needs the peer to understand the
// "#id" suffix and is mux-to-mux only.
//
// On linux/amd64 and linux/arm64 the sockets use recvmmsg/sendmmsg to
// move up to Batch datagrams per syscall; elsewhere a portable
// single-datagram fallback keeps identical semantics.
type UDPMux struct {
	cfg   UDPMuxConfig
	socks []*muxSock
	done  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	nextID uint32

	// eps routes inbound frames by destination id: read per-datagram,
	// written only on Endpoint/Close.
	eps sync.Map // uint32 -> *MuxEndpoint

	// filter, when set, applies scripted drop rules to every endpoint of
	// the mux; rules are keyed on the endpoints' "host:port#id" strings.
	filter atomic.Pointer[UDPFilter]

	// resolved caches Send-target resolution mux-wide; froms interns
	// Packet.From strings per (source socket, source id).
	resolved  sync.Map // string -> muxDst
	resolvedN atomic.Int64
	froms     sync.Map // fromKey -> string
	fromsN    atomic.Int64

	// queueDepth is the high watermark across the per-socket outbound
	// queues and the per-endpoint inbound buffers; unrouted counts
	// inbound datagrams with no parseable frame or no live endpoint.
	queueDepth atomic.Int64
	unrouted   atomic.Int64

	// batchSizes records datagrams moved per ReadBatch/WriteBatch call:
	// mass near 1 means the batching machinery is overhead, mass in the
	// high buckets means syscalls are being amortized.
	batchSizes *obs.Histogram
}

// UDPMuxConfig tunes a UDPMux. The zero value is usable: loopback
// sockets, CPU-scaled socket count, batch 32.
type UDPMuxConfig struct {
	// Listen is the bind address for every socket ("host:port"; the
	// default "127.0.0.1:0" picks free ports).
	Listen string
	// Sockets is the number of sockets (and reader/flusher goroutine
	// pairs). Default min(GOMAXPROCS, 4).
	Sockets int
	// Batch is the number of datagrams moved per syscall on the batched
	// path and the flush coalescing limit. Default 64.
	Batch int
	// QueueLen sizes each endpoint's inbound buffer (channel mode only;
	// handler-mode endpoints bypass it). Default 1024.
	QueueLen int
	// OutQueueLen sizes each socket's outbound queue. Default 4096.
	OutQueueLen int
	// ReadBuffer, when positive, sets SO_RCVBUF on each socket. Shared
	// sockets carry the traffic of a whole worker slice, so the kernel
	// default is usually too small; 1 MiB is a reasonable floor.
	ReadBuffer int
}

func (c *UDPMuxConfig) withDefaults() {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Sockets <= 0 {
		c.Sockets = min(runtime.GOMAXPROCS(0), 4)
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.OutQueueLen <= 0 {
		c.OutQueueLen = 4096
	}
}

// muxHeaderLen is the frame header: 2 magic bytes + dst id + src id.
const muxHeaderLen = 10

// BatchSizeBuckets are the histogram bounds for datagrams-per-syscall;
// the top bucket matches the largest sensible Batch.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// muxSock is one shared socket with its outbound queue.
type muxSock struct {
	conn *net.UDPConn
	bc   batchConn
	addr string
	out  chan outMsg
}

// outMsg is one queued outbound datagram; buf is pooled and holds the
// framed bytes in (*buf)[:n].
type outMsg struct {
	buf  *[]byte
	n    int
	addr netip.AddrPort
}

// muxDst is a resolved Send target.
type muxDst struct {
	ap     netip.AddrPort
	id     uint32
	framed bool
}

// fromKey identifies a remote mux endpoint for From-string interning.
type fromKey struct {
	ap netip.AddrPort
	id uint32
}

// ioMsg is one datagram slot for the batched socket backends. For reads
// Buf is the capacity buffer and N/Addr are filled in; for writes Buf is
// the exact payload and Addr the destination.
type ioMsg struct {
	Buf  []byte
	N    int
	Addr netip.AddrPort
}

// batchConn moves datagrams in batches. ReadBatch blocks until at least
// one datagram arrived and returns how many slots it filled; WriteBatch
// sends a prefix of ms and returns how many it consumed.
type batchConn interface {
	ReadBatch(ms []ioMsg) (int, error)
	WriteBatch(ms []ioMsg) (int, error)
}

// NewUDPMux opens the shared sockets and starts the reader/flusher
// goroutine pairs.
func NewUDPMux(cfg UDPMuxConfig) (*UDPMux, error) {
	cfg.withDefaults()
	m := &UDPMux{
		cfg:        cfg,
		done:       make(chan struct{}),
		batchSizes: obs.NewHistogram(BatchSizeBuckets),
	}
	for i := 0; i < cfg.Sockets; i++ {
		laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: resolving %q: %w", cfg.Listen, err)
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: listening on %q: %w", cfg.Listen, err)
		}
		if cfg.ReadBuffer > 0 {
			// Best-effort: a small SO_RCVBUF shows up as QueueDrops-like
			// kernel drops, not an error.
			_ = conn.SetReadBuffer(cfg.ReadBuffer)
		}
		s := &muxSock{
			conn: conn,
			bc:   newBatchConn(conn),
			addr: addrPortString(conn.LocalAddr().(*net.UDPAddr).AddrPort()),
			out:  make(chan outMsg, cfg.OutQueueLen),
		}
		m.socks = append(m.socks, s)
	}
	m.wg.Add(2 * len(m.socks))
	for _, s := range m.socks {
		go m.readLoop(s)
		go m.flushLoop(s)
	}
	return m, nil
}

// Addr returns the first socket's address: where unframed traffic for
// this mux would originate. Individual endpoints have their own
// "host:port#id" addresses.
func (m *UDPMux) Addr() string { return m.socks[0].addr }

// SetFilter installs (or, with nil, removes) the drop-rule filter shared
// by every endpoint of the mux.
func (m *UDPMux) SetFilter(f *UDPFilter) { m.filter.Store(f) }

// QueueDepthHighWatermark reports the deepest any outbound socket queue
// or inbound endpoint buffer has been: congestion becomes visible here
// before it becomes drops.
func (m *UDPMux) QueueDepthHighWatermark() int64 { return m.queueDepth.Load() }

// Unrouted reports inbound datagrams dropped for want of a frame header
// or a live destination endpoint (stale traffic for closed nodes).
func (m *UDPMux) Unrouted() int64 { return m.unrouted.Load() }

// BatchSizes snapshots the datagrams-per-syscall histogram.
func (m *UDPMux) BatchSizes() obs.HistSnapshot { return m.batchSizes.Snapshot() }

// Endpoint attaches a new endpoint to the mux. Ids are never reused, so
// late datagrams for a closed endpoint are dropped rather than
// misdelivered to a successor.
func (m *UDPMux) Endpoint() (*MuxEndpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	id := m.nextID
	m.nextID++
	s := m.socks[int(id)%len(m.socks)]
	ep := &MuxEndpoint{
		mux:  m,
		id:   id,
		sock: s,
		addr: s.addr + "#" + strconv.FormatUint(uint64(id), 10),
		in:   make(chan Packet, m.cfg.QueueLen),
	}
	m.eps.Store(id, ep)
	return ep, nil
}

// Close closes every endpoint, then the sockets, and waits for the
// reader and flusher goroutines. Safe to call more than once.
func (m *UDPMux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.eps.Range(func(_, v any) bool {
		v.(*MuxEndpoint).Close()
		return true
	})
	close(m.done)
	var err error
	for _, s := range m.socks {
		if e := s.conn.Close(); e != nil && err == nil {
			err = e
		}
	}
	m.wg.Wait()
	return err
}

func (m *UDPMux) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// readLoop owns one socket's inbound side: batch-read, parse, route.
func (m *UDPMux) readLoop(s *muxSock) {
	defer m.wg.Done()
	ms := make([]ioMsg, m.cfg.Batch)
	bufs := make([]*[]byte, m.cfg.Batch)
	for i := range ms {
		bufs[i] = getBuf()
		ms[i].Buf = *bufs[i]
	}
	release := func() {
		for _, b := range bufs {
			putBuf(b)
		}
	}
	for {
		n, err := s.bc.ReadBatch(ms)
		if err != nil {
			if errors.Is(err, net.ErrClosed) || m.isClosed() {
				release()
				return
			}
			// Transient read errors are loss, as on the per-node path.
			continue
		}
		m.batchSizes.Observe(float64(n))
		for i := 0; i < n; i++ {
			if m.dispatch(ms[i].Buf[:ms[i].N], ms[i].Addr, bufs[i]) {
				// Buffer ownership moved to the consumer; restock the slot.
				bufs[i] = getBuf()
				ms[i].Buf = *bufs[i]
			}
		}
	}
}

// dispatch routes one inbound datagram and reports whether buffer
// ownership transferred to the destination endpoint.
func (m *UDPMux) dispatch(data []byte, src netip.AddrPort, buf *[]byte) bool {
	if len(data) < muxHeaderLen || data[0] != 'M' || data[1] != 'X' {
		m.unrouted.Add(1)
		return false
	}
	dstID := binary.BigEndian.Uint32(data[2:6])
	srcID := binary.BigEndian.Uint32(data[6:10])
	v, ok := m.eps.Load(dstID)
	if !ok {
		m.unrouted.Add(1)
		return false
	}
	ep := v.(*MuxEndpoint)
	from := m.fromString(src, srcID)
	if f := m.filter.Load(); f != nil && f.DropInbound(ep.addr, from) {
		ep.filterDrops.Add(1)
		return false
	}
	return ep.deliver(Packet{From: from, Data: data[muxHeaderLen:], buf: buf})
}

// flushLoop owns one socket's outbound side: block for the first queued
// datagram, coalesce whatever else is ready up to Batch, write.
func (m *UDPMux) flushLoop(s *muxSock) {
	defer m.wg.Done()
	ms := make([]ioMsg, 0, m.cfg.Batch)
	bufs := make([]*[]byte, 0, m.cfg.Batch)
	for {
		var first outMsg
		select {
		case first = <-s.out:
		case <-m.done:
			return
		}
		ms = append(ms[:0], ioMsg{Buf: (*first.buf)[:first.n], Addr: first.addr})
		bufs = append(bufs[:0], first.buf)
		for len(ms) < m.cfg.Batch {
			var om outMsg
			select {
			case om = <-s.out:
			default:
				om.buf = nil
			}
			if om.buf == nil {
				break
			}
			ms = append(ms, ioMsg{Buf: (*om.buf)[:om.n], Addr: om.addr})
			bufs = append(bufs, om.buf)
		}
		m.batchSizes.Observe(float64(len(ms)))
		closed := false
		for off := 0; off < len(ms); {
			n, err := s.bc.WriteBatch(ms[off:])
			off += n
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					closed = true
				} else if n == 0 {
					// Transient error with no progress: treat the head
					// datagram as lost so the flusher cannot spin.
					off++
				}
				if closed {
					break
				}
			}
		}
		for _, b := range bufs {
			putBuf(b)
		}
		if closed {
			return
		}
	}
}

// fromString interns the "host:port#id" From string for a remote mux
// endpoint, so receiving from a known peer does not allocate.
func (m *UDPMux) fromString(src netip.AddrPort, id uint32) string {
	k := fromKey{ap: src, id: id}
	if v, ok := m.froms.Load(k); ok {
		return v.(string)
	}
	s := addrPortString(src) + "#" + strconv.FormatUint(uint64(id), 10)
	if m.fromsN.Load() < 65536 {
		if _, loaded := m.froms.LoadOrStore(k, s); !loaded {
			m.fromsN.Add(1)
		}
	}
	return s
}

// resolve turns a Send target into a wire destination, caching mux-wide.
func (m *UDPMux) resolve(to string) (muxDst, error) {
	if v, ok := m.resolved.Load(to); ok {
		return v.(muxDst), nil
	}
	var d muxDst
	if i := strings.LastIndexByte(to, '#'); i >= 0 {
		id, err := strconv.ParseUint(to[i+1:], 10, 32)
		if err != nil {
			return muxDst{}, fmt.Errorf("transport: bad mux address %q: %w", to, err)
		}
		ap, err := resolveAddrPort(to[:i])
		if err != nil {
			return muxDst{}, err
		}
		d = muxDst{ap: ap, id: uint32(id), framed: true}
	} else {
		ap, err := resolveAddrPort(to)
		if err != nil {
			return muxDst{}, err
		}
		d = muxDst{ap: ap}
	}
	// Bound the cache so a hostile peer list cannot grow it without
	// limit.
	if m.resolvedN.Load() < 65536 {
		if _, loaded := m.resolved.LoadOrStore(to, d); !loaded {
			m.resolvedN.Add(1)
		}
	}
	return d, nil
}

// MuxEndpoint is one node's attachment to a UDPMux. It satisfies
// HandlerEndpoint: with SetHandler, inbound packets are delivered on the
// mux's shared reader goroutines and the per-node recv goroutine (and
// its channel hop) disappears.
type MuxEndpoint struct {
	mux  *UDPMux
	id   uint32
	sock *muxSock
	addr string
	in   chan Packet

	// hmu guards handler and closed. deliver holds the read side for the
	// whole handler call, so Close (write side) doubles as the barrier
	// that waits out in-flight deliveries.
	hmu     sync.RWMutex
	handler func(Packet)
	closed  bool

	// queueDrops counts datagrams this endpoint lost at a full queue
	// (inbound buffer or shared outbound queue); filterDrops counts
	// datagrams consumed by the mux's drop-rule filter.
	queueDrops  atomic.Int64
	filterDrops atomic.Int64
}

var _ HandlerEndpoint = (*MuxEndpoint)(nil)

// Addr returns the endpoint's "host:port#id" address.
func (ep *MuxEndpoint) Addr() string { return ep.addr }

// QueueDrops reports datagrams this endpoint lost at a full queue,
// inbound and outbound combined.
func (ep *MuxEndpoint) QueueDrops() int64 { return ep.queueDrops.Load() }

// FilterDrops reports datagrams the drop-rule filter consumed for this
// endpoint, outbound and inbound combined.
func (ep *MuxEndpoint) FilterDrops() int64 { return ep.filterDrops.Load() }

// Send queues one datagram. Mux targets ("host:port#id") are framed;
// plain "host:port" targets go out raw for legacy peers. A full
// outbound queue behaves as loss (counted in QueueDrops), matching the
// transport's delivery contract.
func (ep *MuxEndpoint) Send(to string, data []byte) error {
	m := ep.mux
	if ep.isClosed() {
		return ErrClosed
	}
	if f := m.filter.Load(); f != nil && f.DropOutbound(ep.addr, to) {
		ep.filterDrops.Add(1)
		return nil
	}
	dst, err := m.resolve(to)
	if err != nil {
		return err
	}
	max := MaxDatagram
	if dst.framed {
		max -= muxHeaderLen
	}
	if len(data) > max {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	buf := getSendBuf(len(data) + muxHeaderLen)
	b := (*buf)[:0]
	if dst.framed {
		b = append(b, 'M', 'X')
		b = binary.BigEndian.AppendUint32(b, dst.id)
		b = binary.BigEndian.AppendUint32(b, ep.id)
	}
	b = append(b, data...)
	select {
	case ep.sock.out <- outMsg{buf: buf, n: len(b), addr: dst.ap}:
		maxInt64(&m.queueDepth, int64(len(ep.sock.out)))
	default:
		ep.queueDrops.Add(1)
		putBuf(buf)
	}
	return nil
}

// deliver hands one packet to the endpoint and reports whether buffer
// ownership transferred.
func (ep *MuxEndpoint) deliver(p Packet) bool {
	ep.hmu.RLock()
	defer ep.hmu.RUnlock()
	if ep.closed {
		return false
	}
	if ep.handler != nil {
		ep.handler(p)
		return true
	}
	select {
	case ep.in <- p:
		maxInt64(&ep.mux.queueDepth, int64(len(ep.in)))
		return true
	default:
		ep.queueDrops.Add(1)
		return false
	}
}

// SetHandler switches the endpoint to handler-mode delivery and drains
// anything already buffered on the Recv channel through the handler.
func (ep *MuxEndpoint) SetHandler(fn func(Packet)) {
	ep.hmu.Lock()
	ep.handler = fn
	ep.hmu.Unlock()
	for {
		select {
		case p, ok := <-ep.in:
			if !ok {
				return
			}
			fn(p)
		default:
			return
		}
	}
}

// Recv returns the inbound channel; silent once a handler is set,
// closed when the endpoint closes.
func (ep *MuxEndpoint) Recv() <-chan Packet { return ep.in }

// Close detaches the endpoint from the mux. It waits out in-flight
// handler calls, so after Close returns the handler will not be invoked
// again. Safe to call more than once.
func (ep *MuxEndpoint) Close() error {
	ep.hmu.Lock()
	if ep.closed {
		ep.hmu.Unlock()
		return nil
	}
	ep.closed = true
	ep.hmu.Unlock()
	ep.mux.eps.Delete(ep.id)
	close(ep.in)
	return nil
}

func (ep *MuxEndpoint) isClosed() bool {
	ep.hmu.RLock()
	defer ep.hmu.RUnlock()
	return ep.closed
}
