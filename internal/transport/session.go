package transport

// Sessions is a bounded per-peer session table for connectionless
// transports: datagram endpoints have no connection object to hang
// negotiated protocol state on (wire version, delta-gossip codec state),
// so the runtime keys that state by peer address here. The table is
// LRU-bounded — a long-lived node meets an unbounded stream of peers,
// and a session that has been idle longest is the one whose state is
// cheapest to lose: the protocols layered on top (wire.ViewCodec, the
// version handshake) are built to re-establish themselves from nothing.
//
// Sessions is not safe for concurrent use; callers serialize access
// under their own lock (the agent holds its node mutex).
type Sessions[S any] struct {
	cap   int
	newFn func(peer string) *S
	used  uint64
	m     map[string]*sessionEntry[S]
}

type sessionEntry[S any] struct {
	val  *S
	used uint64
}

// DefaultSessionCap bounds the session table when the caller passes no
// explicit capacity: comfortably above a NEWSCAST view plus transient
// contacts, small enough that state stays negligible per node.
const DefaultSessionCap = 512

// NewSessions builds a session table holding at most cap peers
// (DefaultSessionCap when cap < 1); newFn creates the state for a peer
// seen for the first time (or seen again after eviction).
func NewSessions[S any](cap int, newFn func(peer string) *S) *Sessions[S] {
	if cap < 1 {
		cap = DefaultSessionCap
	}
	return &Sessions[S]{cap: cap, newFn: newFn, m: make(map[string]*sessionEntry[S])}
}

// Get returns the session for peer, creating it on first contact and
// marking it most recently used. When the table is full, the least
// recently used session is evicted to make room.
func (s *Sessions[S]) Get(peer string) *S {
	e, ok := s.m[peer]
	if !ok {
		if len(s.m) >= s.cap {
			s.evictOldest()
		}
		e = &sessionEntry[S]{val: s.newFn(peer)}
		s.m[peer] = e
	}
	s.used++
	e.used = s.used
	return e.val
}

// Peek returns the session for peer without creating one or touching
// recency.
func (s *Sessions[S]) Peek(peer string) (*S, bool) {
	e, ok := s.m[peer]
	if !ok {
		return nil, false
	}
	return e.val, true
}

// Forget drops the session for peer, if any.
func (s *Sessions[S]) Forget(peer string) {
	delete(s.m, peer)
}

// Len returns the number of tracked peers.
func (s *Sessions[S]) Len() int { return len(s.m) }

// evictOldest removes the least recently used entry. A linear scan is
// deliberate: eviction only happens when the table is at capacity, and
// the capacity is small enough that a scan beats the bookkeeping of an
// intrusive list on every Get.
func (s *Sessions[S]) evictOldest() {
	var oldestKey string
	var oldest uint64
	first := true
	for k, e := range s.m {
		if first || e.used < oldest {
			first = false
			oldest = e.used
			oldestKey = k
		}
	}
	if !first {
		delete(s.m, oldestKey)
	}
}
