package transport

import (
	"math/rand"
	"sync"
	"time"
)

// UDPFilter is a process-local packet filter for UDP endpoints: the
// userspace stand-in for the iptables drop rules a root supervisor would
// install. Scenario supervisors use it to script partitions and loss
// bursts over real sockets — every endpoint of a worker process shares
// one filter, and the supervisor's control channel updates it, so the
// same scripted events apply identically to the in-memory and the UDP
// transport (mirroring MemNetwork.PartitionGroups/SetLoss).
//
// Deterministic rules (partition groups, the predicate) are evaluated on
// both the outbound and the inbound path, so a partition holds even while
// a rule update is still propagating to the other end. The probabilistic
// loss rule fires on the outbound path only — applying it on both sides
// would square the delivery probability.
//
// A UDPFilter is safe for concurrent use; the zero value is unusable, use
// NewUDPFilter.
type UDPFilter struct {
	mu     sync.Mutex
	rng    *rand.Rand
	loss   float64
	groups map[string]int
	pred   func(local, peer string) bool
}

// NewUDPFilter creates an empty (all-pass) filter. seed drives the loss
// randomness; 0 picks a time seed.
func NewUDPFilter(seed int64) *UDPFilter {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &UDPFilter{rng: rand.New(rand.NewSource(seed))}
}

// SetLoss changes the outbound datagram loss probability (clamped to
// [0, 1]).
func (f *UDPFilter) SetLoss(p float64) {
	switch {
	case p < 0:
		p = 0
	case p > 1:
		p = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loss = p
}

// PartitionGroups splits the network into groups: datagrams between
// addresses assigned to different groups are dropped, exactly as a
// network partition loses them. Addresses missing from the map are
// unrestricted. The assignment replaces any previous group partition; the
// map is copied.
func (f *UDPFilter) PartitionGroups(groups map[string]int) {
	cp := make(map[string]int, len(groups))
	for addr, g := range groups {
		cp[addr] = g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.groups = cp
}

// AssignGroup places one address into a partition group, creating the
// group partition if none is active (nodes joining mid-partition).
func (f *UDPFilter) AssignGroup(addr string, group int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.groups == nil {
		f.groups = make(map[string]int)
	}
	f.groups[addr] = group
}

// HealGroups removes the group partition: all groups can talk again.
func (f *UDPFilter) HealGroups() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.groups = nil
}

// SetDrop installs a custom drop predicate evaluated on both paths with
// (local address, peer address); nil removes it. It composes with the
// group partition: a datagram is dropped when either rule matches.
func (f *UDPFilter) SetDrop(pred func(local, peer string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pred = pred
}

// dropDeterministic evaluates the group and predicate rules.
func (f *UDPFilter) dropDeterministic(local, peer string) bool {
	if f.groups != nil {
		gl, okl := f.groups[local]
		gp, okp := f.groups[peer]
		if okl && okp && gl != gp {
			return true
		}
	}
	return f.pred != nil && f.pred(local, peer)
}

// DropOutbound reports whether a datagram from local to peer should be
// dropped before it reaches the socket (deterministic rules + loss).
func (f *UDPFilter) DropOutbound(local, peer string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropDeterministic(local, peer) {
		return true
	}
	return f.loss > 0 && f.rng.Float64() < f.loss
}

// DropInbound reports whether a datagram received by local from peer
// should be discarded (deterministic rules only; loss is sender-side).
func (f *UDPFilter) DropInbound(local, peer string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropDeterministic(local, peer)
}
