//go:build linux && (amd64 || arm64)

package transport

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// newBatchConn selects the recvmmsg/sendmmsg backend, falling back to
// the portable path if the raw connection is unavailable.
func newBatchConn(c *net.UDPConn) batchConn {
	if bc, err := newMMsgConn(c); err == nil {
		return bc
	}
	return newSingleConn(c)
}

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// per-message transfer length, padded to pointer alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// mmsgConn moves up to len(ms) datagrams per recvmmsg/sendmmsg syscall,
// staying on the runtime netpoller through syscall.RawConn: the raw
// syscalls run non-blocking (MSG_DONTWAIT) inside RawConn.Read/Write,
// which park the goroutine on EAGAIN exactly like the net package does.
//
// The scatter/gather arrays persist across calls. Read state and write
// state are disjoint because one reader and one flusher goroutine share
// the conn; neither side is safe for concurrent use with itself.
type mmsgConn struct {
	c  *net.UDPConn
	rc syscall.RawConn
	v6 bool

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrAny

	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames []syscall.RawSockaddrAny
}

func newMMsgConn(c *net.UDPConn) (*mmsgConn, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	laddr, _ := c.LocalAddr().(*net.UDPAddr)
	v6 := laddr != nil && laddr.IP.To4() == nil
	return &mmsgConn{c: c, rc: rc, v6: v6}, nil
}

func (m *mmsgConn) ReadBatch(ms []ioMsg) (int, error) {
	n := len(ms)
	if n == 0 {
		return 0, nil
	}
	if len(m.rhdrs) < n {
		m.rhdrs = make([]mmsghdr, n)
		m.riovs = make([]syscall.Iovec, n)
		m.rnames = make([]syscall.RawSockaddrAny, n)
	}
	for i := 0; i < n; i++ {
		m.riovs[i] = syscall.Iovec{Base: unsafe.SliceData(ms[i].Buf)}
		m.riovs[i].SetLen(len(ms[i].Buf))
		m.rhdrs[i].hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&m.rnames[i])),
			Namelen: syscall.SizeofSockaddrAny,
			Iov:     &m.riovs[i],
		}
		m.rhdrs[i].hdr.Iovlen = 1
		m.rhdrs[i].len = 0
	}
	var got int
	var errno syscall.Errno
	err := m.rc.Read(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&m.rhdrs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		got, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < got; i++ {
		ms[i].N = int(m.rhdrs[i].len)
		ms[i].Addr = sockaddrToAddrPort(&m.rnames[i])
	}
	return got, nil
}

func (m *mmsgConn) WriteBatch(ms []ioMsg) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if len(m.whdrs) < len(ms) {
		m.whdrs = make([]mmsghdr, len(ms))
		m.wiovs = make([]syscall.Iovec, len(ms))
		m.wnames = make([]syscall.RawSockaddrAny, len(ms))
	}
	// Encode the longest prefix of destinations this socket's family can
	// carry; an unencodable head datagram is consumed as loss.
	k := 0
	for k < len(ms) {
		nl := addrPortToSockaddr(ms[k].Addr, &m.wnames[k], m.v6)
		if nl == 0 {
			break
		}
		m.wiovs[k] = syscall.Iovec{Base: unsafe.SliceData(ms[k].Buf)}
		m.wiovs[k].SetLen(len(ms[k].Buf))
		m.whdrs[k].hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&m.wnames[k])),
			Namelen: nl,
			Iov:     &m.wiovs[k],
		}
		m.whdrs[k].hdr.Iovlen = 1
		m.whdrs[k].len = 0
		k++
	}
	if k == 0 {
		return 1, nil
	}
	var sent int
	var errno syscall.Errno
	err := m.rc.Write(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&m.whdrs[0])), uintptr(k),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		sent, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	return sent, nil
}

// sockaddrToAddrPort decodes a kernel-filled source address.
func sockaddrToAddrPort(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), ntohs(sa.Port))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), ntohs(sa.Port))
	}
	return netip.AddrPort{}
}

// addrPortToSockaddr encodes a destination for this socket's family,
// returning the sockaddr length or 0 if the family cannot carry it.
func addrPortToSockaddr(ap netip.AddrPort, rsa *syscall.RawSockaddrAny, v6 bool) uint32 {
	a := ap.Addr()
	if v6 {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet6{
			Family: syscall.AF_INET6,
			Port:   htons(ap.Port()),
			// As16 maps IPv4 destinations to ::ffff:a.b.c.d, which a
			// dual-stack socket routes over IPv4.
			Addr: a.As16(),
		}
		return syscall.SizeofSockaddrInet6
	}
	if !a.Is4() && !a.Is4In6() {
		return 0
	}
	sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
	*sa = syscall.RawSockaddrInet4{
		Family: syscall.AF_INET,
		Port:   htons(ap.Port()),
		Addr:   a.Unmap().As4(),
	}
	return syscall.SizeofSockaddrInet4
}

// htons/ntohs convert a port between host and network byte order,
// endian-agnostically: sockaddr Port fields hold network order in
// native memory.
func htons(v uint16) uint16 {
	b := [2]byte{byte(v >> 8), byte(v)}
	return *(*uint16)(unsafe.Pointer(&b[0]))
}

func ntohs(v uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(&v))
	return uint16(b[0])<<8 | uint16(b[1])
}
