package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"antientropy/internal/obs"
)

// MemNetworkConfig tunes the simulated network conditions.
type MemNetworkConfig struct {
	// MinLatency and MaxLatency bound the uniformly distributed one-way
	// delivery delay. Zero values mean synchronous delivery: the datagram
	// is enqueued into the destination's inbound buffer before Send
	// returns (receivers still process it on their own goroutine).
	MinLatency time.Duration
	MaxLatency time.Duration
	// Loss is the probability that a datagram silently disappears.
	Loss float64
	// Seed drives the loss/latency randomness (0 picks a time seed).
	Seed int64
	// QueueLen is each endpoint's inbound buffer; datagrams arriving at a
	// full buffer are dropped, as a congested socket would. Default 1024.
	QueueLen int
}

// MemNetwork is an in-memory datagram network connecting MemEndpoints.
// It is safe for concurrent use.
type MemNetwork struct {
	cfg MemNetworkConfig

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*MemEndpoint
	// partitioned[a][b] marks one-way link cuts a -> b.
	partitioned map[string]map[string]bool
	// groups assigns addresses to partition groups: datagrams between
	// addresses in different groups are dropped. Addresses absent from the
	// map communicate freely. Group-based partitions compose with the
	// pairwise cuts above and cost O(1) per send instead of O(N²) state.
	groups   map[string]int
	nextAddr int
	wg       sync.WaitGroup
	closed   bool

	// queueDepth is the high watermark across all endpoints' inbound
	// buffers; delivered counts datagrams enqueued network-wide. Both
	// feed the same transport telemetry series the UDP executors export.
	queueDepth atomic.Int64
	delivered  atomic.Int64
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork(cfg MemNetworkConfig) *MemNetwork {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &MemNetwork{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(seed)),
		endpoints:   make(map[string]*MemEndpoint),
		partitioned: make(map[string]map[string]bool),
	}
}

// Endpoint registers and returns a new endpoint with a generated address
// of the form "mem-N".
func (n *MemNetwork) Endpoint() *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr := fmt.Sprintf("mem-%d", n.nextAddr)
	n.nextAddr++
	ep := &MemEndpoint{
		net:  n,
		addr: addr,
		in:   make(chan Packet, n.cfg.QueueLen),
	}
	n.endpoints[addr] = ep
	return ep
}

// Partition cuts the one-way link from a to b (datagrams silently
// dropped). Heal restores it.
func (n *MemNetwork) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned[a] == nil {
		n.partitioned[a] = make(map[string]bool)
	}
	n.partitioned[a][b] = true
}

// Heal restores the one-way link from a to b.
func (n *MemNetwork) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned[a], b)
}

// PartitionBoth cuts the link in both directions.
func (n *MemNetwork) PartitionBoth(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// HealBoth restores the link in both directions.
func (n *MemNetwork) HealBoth(a, b string) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// PartitionGroups splits the network into groups: datagrams between
// addresses assigned to different groups are silently dropped, exactly as
// a network partition loses them. Addresses missing from the map are
// unrestricted. The assignment replaces any previous group partition; the
// map is copied.
func (n *MemNetwork) PartitionGroups(groups map[string]int) {
	cp := make(map[string]int, len(groups))
	for addr, g := range groups {
		cp[addr] = g
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = cp
}

// AssignGroup places one address into a partition group, creating the
// group partition if none is active (nodes joining mid-partition).
func (n *MemNetwork) AssignGroup(addr string, group int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.groups == nil {
		n.groups = make(map[string]int)
	}
	n.groups[addr] = group
}

// HealGroups removes the group partition: all groups can talk again.
func (n *MemNetwork) HealGroups() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = nil
}

// SetLoss changes the datagram loss probability mid-run (scenario loss
// bursts). Values are clamped to [0, 1].
func (n *MemNetwork) SetLoss(p float64) {
	switch {
	case p < 0:
		p = 0
	case p > 1:
		p = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Loss = p
}

// SetLatency changes the one-way delivery delay bounds mid-run (scenario
// delay bursts). Negative values are treated as zero; when max < min, max
// is raised to min.
func (n *MemNetwork) SetLatency(min, max time.Duration) {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.MinLatency, n.cfg.MaxLatency = min, max
}

// Close shuts down the network and every endpoint, waiting for in-flight
// deliveries to drain.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*MemEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	n.wg.Wait()
	for _, ep := range eps {
		ep.close(false)
	}
}

// send routes a datagram, applying loss, latency and partitions.
func (n *MemNetwork) send(from, to string, data []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	if n.partitioned[from][to] {
		// Partition behaves like loss: the sender cannot tell.
		n.mu.Unlock()
		return nil
	}
	if n.groups != nil {
		gf, okf := n.groups[from]
		gt, okt := n.groups[to]
		if okf && okt && gf != gt {
			n.mu.Unlock()
			return nil
		}
	}
	if p := n.cfg.Loss; p > 0 && n.rng.Float64() < p {
		n.mu.Unlock()
		return nil
	}
	var delay time.Duration
	if n.cfg.MaxLatency > 0 {
		span := n.cfg.MaxLatency - n.cfg.MinLatency
		if span > 0 {
			delay = n.cfg.MinLatency + time.Duration(n.rng.Int63n(int64(span)))
		} else {
			delay = n.cfg.MinLatency
		}
	}
	// Copy: the caller may reuse its buffer after Send returns.
	buf := append([]byte(nil), data...)
	n.wg.Add(1)
	n.mu.Unlock()

	deliver := func() {
		defer n.wg.Done()
		dst.deliver(Packet{From: from, Data: buf})
	}
	if delay <= 0 {
		// Immediate delivery runs inline: it only enqueues into the
		// destination's buffered channel (never blocks — a full buffer
		// drops), so there is no deadlock risk, and skipping the
		// goroutine spawn roughly halves the per-datagram cost for
		// large in-memory fleets.
		deliver()
	} else {
		time.AfterFunc(delay, deliver)
	}
	return nil
}

// MemEndpoint is one node's attachment to a MemNetwork.
type MemEndpoint struct {
	net  *MemNetwork
	addr string

	mu     sync.Mutex
	in     chan Packet
	closed bool
	// dropped counts datagrams discarded because the inbound buffer was
	// full.
	dropped int
}

var _ Endpoint = (*MemEndpoint)(nil)

// Addr returns the endpoint's address.
func (e *MemEndpoint) Addr() string { return e.addr }

// Send transmits a datagram through the network.
func (e *MemEndpoint) Send(to string, data []byte) error {
	if len(data) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.net.send(e.addr, to, data)
}

// Recv returns the inbound channel.
func (e *MemEndpoint) Recv() <-chan Packet { return e.in }

// Close detaches the endpoint: subsequent sends fail and the receive
// channel is closed.
func (e *MemEndpoint) Close() error {
	e.close(true)
	return nil
}

func (e *MemEndpoint) close(unregister bool) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.in)
	e.mu.Unlock()
	if unregister {
		e.net.mu.Lock()
		delete(e.net.endpoints, e.addr)
		e.net.mu.Unlock()
	}
}

// Dropped reports how many inbound datagrams were discarded due to a full
// buffer.
func (e *MemEndpoint) Dropped() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

func (e *MemEndpoint) deliver(p Packet) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.in <- p:
		e.net.delivered.Add(1)
		maxInt64(&e.net.queueDepth, int64(len(e.in)))
	default:
		e.dropped++
	}
}

// QueueDepthHighWatermark reports the deepest any endpoint's inbound
// buffer has been across the network's lifetime.
func (n *MemNetwork) QueueDepthHighWatermark() int64 { return n.queueDepth.Load() }

// BatchSizes reports the network's datagram deliveries in the shape of
// the UDP transports' batch-size histogram: in-memory delivery moves one
// datagram at a time, so all mass sits in the first bucket. Keeping the
// series shape identical across executors lets dashboards compare them
// directly.
func (n *MemNetwork) BatchSizes() obs.HistSnapshot {
	d := n.delivered.Load()
	counts := make([]int64, len(BatchSizeBuckets)+1)
	counts[0] = d
	return obs.HistSnapshot{
		Bounds: BatchSizeBuckets,
		Counts: counts,
		Count:  d,
		Sum:    float64(d),
	}
}
