//go:build linux && (amd64 || arm64)

package transport

import (
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"
)

// batchBackends builds both backends over fresh loopback sockets so the
// mmsg path and the portable fallback can be driven side by side.
func parityConn(t *testing.T) (*net.UDPConn, netip.AddrPort) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := conn.SetReadBuffer(1 << 22); err != nil {
		t.Fatalf("SetReadBuffer: %v", err)
	}
	return conn, unmapAddrPort(conn.LocalAddr().(*net.UDPAddr).AddrPort())
}

// TestBatchConnParity asserts the recvmmsg/sendmmsg path and the
// portable single-syscall fallback deliver identical packet streams:
// same payload multiset, same source addresses, loss-free on loopback.
// Ordering is not asserted — UDP does not promise it.
func TestBatchConnParity(t *testing.T) {
	const total = 256
	const window = 16

	type backend struct {
		name string
		mk   func(c *net.UDPConn) (batchConn, error)
	}
	backends := []backend{
		{"mmsg", func(c *net.UDPConn) (batchConn, error) { return newMMsgConn(c) }},
		{"single", func(c *net.UDPConn) (batchConn, error) { return newSingleConn(c), nil }},
	}

	results := make(map[string]map[string]int)
	for _, sender := range backends {
		for _, receiver := range backends {
			name := sender.name + "->" + receiver.name
			t.Run(name, func(t *testing.T) {
				sconn, saddr := parityConn(t)
				rconn, raddr := parityConn(t)
				sbc, err := sender.mk(sconn)
				if err != nil {
					t.Fatalf("sender backend: %v", err)
				}
				rbc, err := receiver.mk(rconn)
				if err != nil {
					t.Fatalf("receiver backend: %v", err)
				}

				// Send in small windows with a read pass between them so
				// the loopback socket buffer never overflows: the parity
				// contract assumes loss-free transfer.
				got := make(map[string]int)
				sent := 0
				read := func(deadline time.Time) {
					ms := make([]ioMsg, window)
					for i := range ms {
						ms[i].Buf = make([]byte, 512)
					}
					for mapTotal(got) < sent {
						rconn.SetReadDeadline(deadline)
						n, err := rbc.ReadBatch(ms)
						if err != nil {
							t.Fatalf("ReadBatch after %d/%d payloads: %v", mapTotal(got), sent, err)
						}
						for i := 0; i < n; i++ {
							if ms[i].Addr != saddr {
								t.Fatalf("source addr = %v, want %v", ms[i].Addr, saddr)
							}
							got[string(ms[i].Buf[:ms[i].N])]++
						}
					}
				}
				for sent < total {
					ms := make([]ioMsg, 0, window)
					for i := 0; i < window && sent < total; i++ {
						ms = append(ms, ioMsg{
							Buf:  []byte(fmt.Sprintf("parity-%03d", sent)),
							Addr: raddr,
						})
						sent++
					}
					for off := 0; off < len(ms); {
						n, err := sbc.WriteBatch(ms[off:])
						if err != nil {
							t.Fatalf("WriteBatch: %v", err)
						}
						if n == 0 {
							t.Fatalf("WriteBatch made no progress")
						}
						off += n
					}
					read(time.Now().Add(5 * time.Second))
				}
				if mapTotal(got) != total {
					t.Fatalf("received %d payloads, want %d", mapTotal(got), total)
				}
				results[name] = got
			})
		}
	}

	// Every backend pairing must have produced the exact same multiset.
	var refName string
	var ref map[string]int
	for name, got := range results {
		if ref == nil {
			refName, ref = name, got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s saw %d distinct payloads, %s saw %d", name, len(got), refName, len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("payload %q: %s saw %d, %s saw %d", k, name, got[k], refName, v)
			}
		}
	}
}

func mapTotal(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
