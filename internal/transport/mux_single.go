package transport

import (
	"errors"
	"net"
)

// singleConn is the portable batchConn: one syscall per datagram through
// the net package, with semantics identical to the batched Linux path —
// ReadBatch fills exactly one slot, WriteBatch consumes the whole prefix
// it can, treating transient per-datagram write errors as loss. Compiled
// on every platform; the parity test pits it against the mmsg path on
// Linux.
type singleConn struct {
	c *net.UDPConn
}

func newSingleConn(c *net.UDPConn) *singleConn { return &singleConn{c: c} }

func (s *singleConn) ReadBatch(ms []ioMsg) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := s.c.ReadFromUDPAddrPort(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = addr
	return 1, nil
}

func (s *singleConn) WriteBatch(ms []ioMsg) (int, error) {
	for i := range ms {
		if _, err := s.c.WriteToUDPAddrPort(ms[i].Buf, ms[i].Addr); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return i, err
			}
			// Transient write errors (ICMP unreachable surfacing, ENOBUFS)
			// are loss: skip the datagram and keep going.
			continue
		}
	}
	return len(ms), nil
}
