//go:build linux && arm64

package transport

// Syscall numbers for the batched datagram path; see the amd64 twin for
// why they are pinned here.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
