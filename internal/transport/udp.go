package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
)

// UDPEndpoint is a real-network datagram endpoint. Aggregation state fits
// in single datagrams, and the protocol tolerates loss by design (§6, §7),
// which makes UDP the natural transport.
//
// One endpoint owns one socket and one reader goroutine; fleets packing
// thousands of nodes into a process should share sockets through UDPMux
// instead.
type UDPEndpoint struct {
	conn *net.UDPConn
	addr string
	in   chan Packet

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// filter, when set, applies scripted drop rules (partitions, loss) to
	// both directions; see UDPFilter.
	filter atomic.Pointer[UDPFilter]

	// queueDrops counts inbound datagrams discarded because the buffer
	// was full; filterDrops counts datagrams (either direction) consumed
	// by the drop-rule filter; queueDepth is the high watermark of the
	// inbound buffer, the early-warning signal before drops start.
	queueDrops  atomic.Int64
	filterDrops atomic.Int64
	queueDepth  atomic.Int64

	// resolve caches peer address resolution; froms interns sender
	// address strings so the steady-state receive path allocates nothing.
	resolveMu sync.Mutex
	resolved  map[string]netip.AddrPort
	fromMu    sync.Mutex
	froms     map[netip.AddrPort]string
}

var _ Endpoint = (*UDPEndpoint)(nil)

// ListenUDP opens a UDP endpoint on the given address ("host:port";
// ":0" picks a free port). queueLen sizes the inbound buffer (default
// 1024 if <= 0).
func ListenUDP(listen string, queueLen int) (*UDPEndpoint, error) {
	if queueLen <= 0 {
		queueLen = 1024
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", listen, err)
	}
	e := &UDPEndpoint{
		conn:     conn,
		addr:     conn.LocalAddr().String(),
		in:       make(chan Packet, queueLen),
		resolved: make(map[string]netip.AddrPort),
		froms:    make(map[netip.AddrPort]string),
	}
	e.wg.Add(1)
	go e.readLoop()
	return e, nil
}

// Addr returns the bound local address.
func (e *UDPEndpoint) Addr() string { return e.addr }

// SetFilter installs (or, with nil, removes) the endpoint's drop-rule
// filter. Several endpoints of one process typically share a filter so a
// scripted partition applies to the whole fleet slice at once.
func (e *UDPEndpoint) SetFilter(f *UDPFilter) { e.filter.Store(f) }

// QueueDrops reports how many inbound datagrams were discarded because
// the inbound buffer was full (the userspace analogue of a kernel socket
// buffer overflow).
func (e *UDPEndpoint) QueueDrops() int64 { return e.queueDrops.Load() }

// FilterDrops reports how many datagrams the drop-rule filter consumed,
// outbound and inbound combined.
func (e *UDPEndpoint) FilterDrops() int64 { return e.filterDrops.Load() }

// QueueDepthHighWatermark reports the deepest the inbound buffer has
// been: congestion becomes visible here before it becomes QueueDrops.
func (e *UDPEndpoint) QueueDepthHighWatermark() int64 { return e.queueDepth.Load() }

// Send transmits one datagram to a "host:port" peer.
func (e *UDPEndpoint) Send(to string, data []byte) error {
	if len(data) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if f := e.filter.Load(); f != nil && f.DropOutbound(e.addr, to) {
		// Scripted drop behaves like network loss: the sender cannot tell.
		e.filterDrops.Add(1)
		return nil
	}
	raddr, err := e.resolve(to)
	if err != nil {
		return err
	}
	if _, err := e.conn.WriteToUDPAddrPort(data, raddr); err != nil {
		// Close may race an in-flight Send; report the endpoint state
		// rather than a raw "use of closed network connection".
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: sending to %s: %w", to, err)
	}
	return nil
}

func (e *UDPEndpoint) resolve(to string) (netip.AddrPort, error) {
	e.resolveMu.Lock()
	defer e.resolveMu.Unlock()
	if a, ok := e.resolved[to]; ok {
		return a, nil
	}
	a, err := resolveAddrPort(to)
	if err != nil {
		return netip.AddrPort{}, err
	}
	// Bound the cache so a hostile peer list cannot grow it without
	// limit.
	if len(e.resolved) < 65536 {
		e.resolved[to] = a
	}
	return a, nil
}

// resolveAddrPort turns a "host:port" peer string into a sendable
// netip.AddrPort, going through the resolver only for non-literal hosts.
func resolveAddrPort(to string) (netip.AddrPort, error) {
	if ap, err := netip.ParseAddrPort(to); err == nil {
		return unmapAddrPort(ap), nil
	}
	a, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("transport: resolving peer %q: %w", to, err)
	}
	return unmapAddrPort(a.AddrPort()), nil
}

// unmapAddrPort strips an IPv4-mapped IPv6 wrapper so equal peers
// compare equal as map keys regardless of which API produced them.
func unmapAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// fromString interns the sender's "host:port" string for a source
// address, so receiving from a known peer does not allocate.
func (e *UDPEndpoint) fromString(ap netip.AddrPort) string {
	e.fromMu.Lock()
	defer e.fromMu.Unlock()
	if s, ok := e.froms[ap]; ok {
		return s
	}
	s := addrPortString(ap)
	if len(e.froms) < 65536 {
		e.froms[ap] = s
	}
	return s
}

// addrPortString renders an AddrPort the way net.UDPAddr.String renders
// the same peer, with IPv4-mapped IPv6 addresses unmapped first — Send
// targets and Packet.From values must agree for filter rules keyed on
// address strings.
func addrPortString(ap netip.AddrPort) string {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()).String()
}

// Recv returns the inbound channel; closed when the endpoint closes.
func (e *UDPEndpoint) Recv() <-chan Packet { return e.in }

// Close shuts the socket down and drains the read loop. Safe to call
// more than once and concurrently with Send (which then reports
// ErrClosed).
func (e *UDPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.conn.Close()
	e.wg.Wait()
	close(e.in)
	return err
}

func (e *UDPEndpoint) readLoop() {
	defer e.wg.Done()
	buf := getBuf()
	for {
		n, raddr, err := e.conn.ReadFromUDPAddrPort(*buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				putBuf(buf)
				return
			}
			// Transient read errors (e.g. ICMP unreachable surfacing) are
			// ignored; the protocol treats them as loss.
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed {
				putBuf(buf)
				return
			}
			continue
		}
		from := e.fromString(raddr)
		if f := e.filter.Load(); f != nil && f.DropInbound(e.addr, from) {
			e.filterDrops.Add(1)
			continue
		}
		select {
		case e.in <- Packet{From: from, Data: (*buf)[:n], buf: buf}:
			// Ownership of buf moved to the consumer (released via
			// Packet.Release or collected by the GC); grab a fresh one.
			maxInt64(&e.queueDepth, int64(len(e.in)))
			buf = getBuf()
		default:
			// Full buffer: drop, as a kernel socket would — but account
			// for it so deployments can see the congestion. buf is reused
			// for the next datagram.
			e.queueDrops.Add(1)
		}
	}
}

// maxInt64 raises *w to at least v (atomic high-watermark update).
func maxInt64(w *atomic.Int64, v int64) {
	for {
		cur := w.Load()
		if v <= cur || w.CompareAndSwap(cur, v) {
			return
		}
	}
}
