package transport

import "testing"

func TestSessionsCreateAndReuse(t *testing.T) {
	created := 0
	s := NewSessions(4, func(peer string) *int {
		created++
		v := created
		return &v
	})
	a := s.Get("a")
	if *a != 1 {
		t.Fatalf("first session = %d", *a)
	}
	if again := s.Get("a"); again != a {
		t.Fatal("Get did not reuse the session")
	}
	if created != 1 {
		t.Fatalf("newFn ran %d times", created)
	}
	if _, ok := s.Peek("b"); ok {
		t.Fatal("Peek created a session")
	}
}

func TestSessionsLRUEviction(t *testing.T) {
	s := NewSessions(2, func(peer string) *string { p := peer; return &p })
	s.Get("a")
	s.Get("b")
	s.Get("a") // refresh a; b is now oldest
	s.Get("c") // evicts b
	if _, ok := s.Peek("b"); ok {
		t.Fatal("least recently used session survived")
	}
	if _, ok := s.Peek("a"); !ok {
		t.Fatal("recently used session evicted")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSessionsForget(t *testing.T) {
	s := NewSessions(0, func(peer string) *struct{} { return &struct{}{} })
	s.Get("a")
	s.Forget("a")
	if s.Len() != 0 {
		t.Fatal("Forget left the session")
	}
}
