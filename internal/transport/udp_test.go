package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// udpEndpoints opens n loopback endpoints and tears them down with the
// test.
func udpEndpoints(t *testing.T, n, queueLen int) []*UDPEndpoint {
	t.Helper()
	eps := make([]*UDPEndpoint, n)
	for i := range eps {
		e, err := ListenUDP("127.0.0.1:0", queueLen)
		if err != nil {
			t.Fatalf("ListenUDP: %v", err)
		}
		t.Cleanup(func() { _ = e.Close() })
		eps[i] = e
	}
	return eps
}

// udpRecvOne waits for one packet or fails.
func udpRecvOne(t *testing.T, e *UDPEndpoint) Packet {
	t.Helper()
	select {
	case p := <-e.Recv():
		return p
	case <-time.After(5 * time.Second):
		t.Fatalf("endpoint %s: no packet within 5s", e.Addr())
		return Packet{}
	}
}

// udpExpectNone asserts no packet arrives within the window.
func udpExpectNone(t *testing.T, e *UDPEndpoint, window time.Duration) {
	t.Helper()
	select {
	case p := <-e.Recv():
		t.Fatalf("endpoint %s: unexpected packet from %s", e.Addr(), p.From)
	case <-time.After(window):
	}
}

func TestUDPFilterPartitionGroups(t *testing.T) {
	eps := udpEndpoints(t, 3, 0)
	a, b, c := eps[0], eps[1], eps[2]
	f := NewUDPFilter(1)
	for _, e := range eps {
		e.SetFilter(f)
	}
	f.PartitionGroups(map[string]int{a.Addr(): 0, b.Addr(): 1, c.Addr(): 0})

	// Cross-group traffic drops silently, same-group traffic flows.
	if err := a.Send(b.Addr(), []byte("cross")); err != nil {
		t.Fatalf("cross-group send errored (should look like loss): %v", err)
	}
	if err := a.Send(c.Addr(), []byte("same")); err != nil {
		t.Fatalf("same-group send: %v", err)
	}
	if got := string(udpRecvOne(t, c).Data); got != "same" {
		t.Fatalf("same-group payload = %q", got)
	}
	udpExpectNone(t, b, 200*time.Millisecond)
	if a.FilterDrops() == 0 {
		t.Fatal("outbound filter drop not counted")
	}

	// A node learning of the partition late is still protected by the
	// receiver-side rule: clear the sender's filter, keep the receiver's.
	a.SetFilter(nil)
	if err := a.Send(b.Addr(), []byte("straggler")); err != nil {
		t.Fatalf("unfiltered send: %v", err)
	}
	udpExpectNone(t, b, 200*time.Millisecond)
	if b.FilterDrops() == 0 {
		t.Fatal("inbound filter drop not counted")
	}
	a.SetFilter(f)

	// Heal: everything flows again.
	f.HealGroups()
	if err := a.Send(b.Addr(), []byte("healed")); err != nil {
		t.Fatalf("post-heal send: %v", err)
	}
	if got := string(udpRecvOne(t, b).Data); got != "healed" {
		t.Fatalf("post-heal payload = %q", got)
	}
}

func TestUDPFilterAssignGroupAndLoss(t *testing.T) {
	eps := udpEndpoints(t, 2, 0)
	a, b := eps[0], eps[1]
	f := NewUDPFilter(7)
	a.SetFilter(f)
	b.SetFilter(f)

	// AssignGroup creates the partition incrementally (joiners landing on
	// one side of an active split).
	f.AssignGroup(a.Addr(), 0)
	f.AssignGroup(b.Addr(), 1)
	_ = a.Send(b.Addr(), []byte("x"))
	udpExpectNone(t, b, 200*time.Millisecond)
	f.HealGroups()

	// Loss 1 drops everything, loss 0 restores delivery.
	f.SetLoss(1)
	_ = a.Send(b.Addr(), []byte("lost"))
	udpExpectNone(t, b, 200*time.Millisecond)
	f.SetLoss(0)
	if err := a.Send(b.Addr(), []byte("clear")); err != nil {
		t.Fatalf("send after loss cleared: %v", err)
	}
	if got := string(udpRecvOne(t, b).Data); got != "clear" {
		t.Fatalf("payload = %q", got)
	}
}

func TestUDPFilterDropPredicate(t *testing.T) {
	eps := udpEndpoints(t, 2, 0)
	a, b := eps[0], eps[1]
	f := NewUDPFilter(3)
	a.SetFilter(f)
	blocked := b.Addr()
	f.SetDrop(func(local, peer string) bool { return peer == blocked })
	_ = a.Send(b.Addr(), []byte("x"))
	udpExpectNone(t, b, 200*time.Millisecond)
	f.SetDrop(nil)
	if err := a.Send(b.Addr(), []byte("open")); err != nil {
		t.Fatalf("send after predicate removed: %v", err)
	}
	if got := string(udpRecvOne(t, b).Data); got != "open" {
		t.Fatalf("payload = %q", got)
	}
}

// TestUDPCloseSendRace hammers Send from several goroutines while the
// endpoint closes; every outcome must be clean (nil or ErrClosed), and
// the run must be data-race free under -race.
func TestUDPCloseSendRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		eps := udpEndpoints(t, 2, 0)
		src, dst := eps[0], eps[1]
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := src.Send(dst.Addr(), []byte("race")); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Send during Close: %v", err)
						}
						return
					}
				}
			}()
		}
		_ = src.Close()
		wg.Wait()
		if err := src.Send(dst.Addr(), []byte("after")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Send after Close = %v, want ErrClosed", err)
		}
	}
}

// TestUDPQueueDropCounter fills a tiny inbound buffer and checks the
// overflow is accounted instead of silently discarded.
func TestUDPQueueDropCounter(t *testing.T) {
	src, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	deadline := time.Now().Add(5 * time.Second)
	for dst.QueueDrops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no queue drop recorded despite a full inbound buffer")
		}
		for i := 0; i < 32; i++ {
			if err := src.Send(dst.Addr(), []byte("flood")); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The buffered packet is still deliverable.
	udpRecvOne(t, dst)
}
