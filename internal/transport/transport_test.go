package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func recvOne(t *testing.T, ep Endpoint, timeout time.Duration) Packet {
	t.Helper()
	select {
	case p, ok := <-ep.Recv():
		if !ok {
			t.Fatal("receive channel closed")
		}
		return p
	case <-time.After(timeout):
		t.Fatal("timed out waiting for packet")
	}
	return Packet{}
}

func TestMemBasicDelivery(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	if a.Addr() == b.Addr() {
		t.Fatal("duplicate addresses")
	}
	if err := a.Send(b.Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, time.Second)
	if p.From != a.Addr() || string(p.Data) != "hello" {
		t.Fatalf("got %+v", p)
	}
}

func TestMemSendCopiesBuffer(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	buf := []byte("original")
	if err := a.Send(b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	p := recvOne(t, b, time.Second)
	if string(p.Data) != "original" {
		t.Fatalf("buffer aliasing: got %q", p.Data)
	}
}

func TestMemUnknownPeer(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1})
	defer net.Close()
	a := net.Endpoint()
	if err := a.Send("mem-99", []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemTooLarge(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	if err := a.Send(b.Addr(), make([]byte, MaxDatagram+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemLoss(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Loss: 1, Seed: 1})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	for i := 0; i < 50; i++ {
		if err := a.Send(b.Addr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case p := <-b.Recv():
		t.Fatalf("100%% loss delivered %+v", p)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMemPartialLossStatistics(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Loss: 0.5, Seed: 7})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	const sends = 2000
	for i := 0; i < sends; i++ {
		if err := a.Send(b.Addr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	deadline := time.After(2 * time.Second)
drain:
	for {
		select {
		case <-b.Recv():
			received++
		case <-deadline:
			break drain
		case <-time.After(100 * time.Millisecond):
			break drain
		}
	}
	if received < sends*35/100 || received > sends*65/100 {
		t.Fatalf("received %d of %d at 50%% loss", received, sends)
	}
}

func TestMemLatency(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{
		MinLatency: 20 * time.Millisecond,
		MaxLatency: 30 * time.Millisecond,
		Seed:       1,
	})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	start := time.Now()
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered too fast: %v", elapsed)
	}
}

func TestMemPartition(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	net.PartitionBoth(a.Addr(), b.Addr())
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatal(err) // partition looks like loss, not like an error
	}
	select {
	case <-b.Recv():
		t.Fatal("partitioned message delivered")
	case <-time.After(50 * time.Millisecond):
	}
	net.HealBoth(a.Addr(), b.Addr())
	if err := a.Send(b.Addr(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, time.Second)
	if string(p.Data) != "y" {
		t.Fatalf("after heal got %q", p.Data)
	}
}

func TestMemCloseEndpoint(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close should be fine:", err)
	}
	if err := b.Send(a.Addr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	// Sending to a closed/unregistered endpoint errors as unknown.
	if err := a.Send(b.Addr(), []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to closed peer: %v", err)
	}
	// The receive channel must be closed.
	if _, ok := <-b.Recv(); ok {
		t.Fatal("receive channel still open")
	}
}

func TestMemQueueOverflowDrops(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1, QueueLen: 4})
	defer net.Close()
	a, b := net.Endpoint(), net.Endpoint()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Send(b.Addr(), []byte("x"))
		}()
	}
	wg.Wait()
	// Allow deliveries to finish.
	time.Sleep(50 * time.Millisecond)
	received := 0
drain:
	for {
		select {
		case <-b.Recv():
			received++
		default:
			break drain
		}
	}
	if received > 4 {
		t.Fatalf("queue of 4 held %d", received)
	}
	if b.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestMemConcurrentSends(t *testing.T) {
	net := NewMemNetwork(MemNetworkConfig{Seed: 1})
	defer net.Close()
	const peers = 8
	eps := make([]*MemEndpoint, peers)
	for i := range eps {
		eps[i] = net.Endpoint()
	}
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = eps[i].Send(eps[(i+1)%peers].Addr(), []byte("m"))
			}
		}(i)
	}
	wg.Wait()
	time.Sleep(50 * time.Millisecond)
	total := 0
	for _, ep := range eps {
	drain:
		for {
			select {
			case <-ep.Recv():
				total++
			default:
				break drain
			}
		}
	}
	if total != peers*100 {
		t.Fatalf("delivered %d of %d", total, peers*100)
	}
}

func TestUDPLoopback(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send(b.Addr(), []byte("over udp")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, 2*time.Second)
	if string(p.Data) != "over udp" {
		t.Fatalf("got %q", p.Data)
	}
	if p.From != a.Addr() {
		t.Fatalf("from = %s, want %s", p.From, a.Addr())
	}
}

func TestUDPBidirectional(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b, 2*time.Second)
	if err := b.Send(p.From, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	p2 := recvOne(t, a, 2*time.Second)
	if string(p2.Data) != "pong" {
		t.Fatalf("got %q", p2.Data)
	}
}

func TestUDPClose(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close:", err)
	}
	if err := a.Send("127.0.0.1:9", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, ok := <-a.Recv(); ok {
		t.Fatal("receive channel still open after close")
	}
}

func TestUDPTooLarge(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("127.0.0.1:9", make([]byte, MaxDatagram+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestUDPBadAddress(t *testing.T) {
	if _, err := ListenUDP("not-an-address", 0); err == nil {
		t.Fatal("bad listen address accepted")
	}
	a, err := ListenUDP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("::::bad::::", []byte("x")); err == nil {
		t.Fatal("bad peer address accepted")
	}
}
