//go:build linux && amd64

package transport

// The frozen syscall package predates sendmmsg on amd64 (recvmmsg made
// the table, sendmmsg did not), so both numbers are pinned here per
// arch. They are ABI constants and cannot change.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
