//go:build !linux || (!amd64 && !arm64)

package transport

import "net"

// newBatchConn selects the portable single-datagram backend on
// platforms without the raw recvmmsg/sendmmsg wrappers.
func newBatchConn(c *net.UDPConn) batchConn { return newSingleConn(c) }
