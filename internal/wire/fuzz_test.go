package wire

import (
	"errors"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary datagrams: it must never
// panic, and every successfully decoded message must re-encode. Seeds
// cover every message type at the current version — both view-frame
// kinds included — plus legacy version-1 encodings, whose decoded form
// (an un-numbered full frame) must re-encode at the current version.
func FuzzDecode(f *testing.F) {
	fullView := ViewFrame{Kind: ViewFull, Gen: 1,
		Entries: []Descriptor{{Addr: "b:2", Stamp: 9}}}
	deltaView := ViewFrame{Kind: ViewDelta, Gen: 6, Ack: 3, Base: 2,
		Entries: []Descriptor{{Addr: "c:9", Stamp: 11}, {Addr: "d:1", Stamp: 12}}}
	seeds := []Message{
		&ExchangeRequest{From: "a:1", Payload: Payload{Seq: 1, XID: 0xfeedface, Epoch: 2, FuncID: FuncAverage, Scalar: 1.5,
			Entries: []MapEntry{{Leader: 3, Value: 0.5}},
			View:    fullView}},
		&ExchangeRequest{From: "a:2", Payload: Payload{Seq: 4, Epoch: 2, FuncID: FuncAverage,
			View: deltaView}},
		&ExchangeReply{From: "b:2", Payload: Payload{Seq: 1, Flags: FlagRefused}},
		&JoinRequest{From: "c:3", Seq: 7},
		&JoinReply{Seq: 7, NextEpoch: 8, WaitMicros: 100, Seeds: []Descriptor{{Addr: "d:4", Stamp: 1}}},
		&Membership{From: "e:5", Seq: 9, View: fullView},
		&Membership{From: "e:6", Seq: 10, View: deltaView},
		&MembershipReply{From: "g:7", Seq: 9},
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Legacy version-1 encodings (deltas cannot be downgraded — skip).
	for _, m := range seeds {
		data, err := EncodeLegacy(m)
		if errors.Is(err, ErrBadViewKind) {
			continue
		}
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("AE04"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, version, err := DecodeExt(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if version != Version && version != VersionDelta && version != VersionLegacy {
			t.Fatalf("decoder accepted version %d", version)
		}
		// Decoded messages must round-trip at the current version.
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		if m.Type() != m2.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
	})
}

// FuzzViewCodec hammers the delta codec with arbitrary frame sequences:
// whatever the peer claims, Observe must not panic and EncodeView must
// keep producing frames whose entries are a subset of the current view.
func FuzzViewCodec(f *testing.F) {
	f.Add(uint8(1), uint32(1), uint32(0), uint32(0), int32(5))
	f.Add(uint8(2), uint32(9), uint32(3), uint32(2), int32(-1))
	f.Add(uint8(0), uint32(0), uint32(7), uint32(0), int32(0))
	f.Fuzz(func(t *testing.T, kind uint8, gen, ack, base uint32, stamp int32) {
		var local, remote ViewCodec
		view := pview(1, stamp, 2, stamp+1)
		for round := int32(0); round < 4; round++ {
			frame := local.EncodeView(view, addrOf)
			if frame.Kind != ViewFull && frame.Kind != ViewDelta {
				t.Fatalf("EncodeView produced %v frame", frame.Kind)
			}
			if len(frame.Entries) > len(view) {
				t.Fatalf("frame carries %d entries for a %d-entry view", len(frame.Entries), len(view))
			}
			remote.Observe(frame)
			// The adversarial peer responds with an arbitrary frame.
			local.Observe(ViewFrame{Kind: ViewKind(kind % 3), Gen: gen, Ack: ack, Base: base,
				Entries: []Descriptor{{Addr: "x", Stamp: int64(stamp)}}})
			view = pview(1, stamp+round+1, 2, stamp+1)
		}
	})
}

// TestDecodeUnknownVersionTyped pins the typed rejection: any version
// other than the supported ones must fail with ErrBadVersion, for both
// past (0) and future (4, 99) numbers.
func TestDecodeUnknownVersionTyped(t *testing.T) {
	valid, err := Encode(&JoinRequest{From: "a", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []byte{0, 4, 99, 255} {
		data := append([]byte(nil), valid...)
		data[4] = version
		if _, err := Decode(data); !errors.Is(err, ErrBadVersion) {
			t.Errorf("version %d: Decode = %v, want ErrBadVersion", version, err)
		}
	}
	// All supported versions still decode.
	encDelta := func(m Message) ([]byte, error) { return EncodeVersion(m, VersionDelta) }
	for _, enc := range []func(Message) ([]byte, error){Encode, encDelta, EncodeLegacy} {
		data, err := enc(&JoinRequest{From: "a", Seq: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(data); err != nil {
			t.Errorf("supported version rejected: %v", err)
		}
	}
}

// TestDecodeUnknownViewKindTyped pins the typed rejection of a frame
// kind the codec does not know.
func TestDecodeUnknownViewKindTyped(t *testing.T) {
	data, err := Encode(&Membership{From: "a", Seq: 1, View: ViewFrame{Kind: ViewFull, Gen: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The frame trailer is kind(1) + gen(4) + ack(4) + count(2).
	data[len(data)-11] = 9
	if _, err := Decode(data); !errors.Is(err, ErrBadViewKind) {
		t.Errorf("Decode = %v, want ErrBadViewKind", err)
	}
}
