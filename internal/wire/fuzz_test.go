package wire

import "testing"

// FuzzDecode drives the decoder with arbitrary datagrams: it must never
// panic, and every successfully decoded message must re-encode.
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings of every message type.
	seeds := []Message{
		&ExchangeRequest{From: "a:1", Payload: Payload{Seq: 1, Epoch: 2, FuncID: FuncAverage, Scalar: 1.5,
			Entries: []MapEntry{{Leader: 3, Value: 0.5}},
			Gossip:  []Descriptor{{Addr: "b:2", Stamp: 9}}}},
		&ExchangeReply{From: "b:2", Payload: Payload{Seq: 1, Flags: FlagRefused}},
		&JoinRequest{From: "c:3", Seq: 7},
		&JoinReply{Seq: 7, NextEpoch: 8, WaitMicros: 100, Seeds: []Descriptor{{Addr: "d:4", Stamp: 1}}},
		&Membership{From: "e:5", Seq: 9, Entries: []Descriptor{{Addr: "f:6", Stamp: 2}}},
		&MembershipReply{From: "g:7", Seq: 9},
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("AE04"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// Decoded messages must round-trip.
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		if m.Type() != m2.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
	})
}
