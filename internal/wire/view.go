package wire

import "antientropy/internal/overlay"

// ViewCodec holds one side's delta-gossip state for a single peer
// connection: which snapshot of our view the peer has acknowledged
// (so the next frame can carry only what changed), which frame of the
// peer we last received (so our next frame acknowledges it), and the
// running generation counter. The agent keeps one codec per peer in its
// transport session table; the codec itself is transport- and
// lock-agnostic.
//
// The codec works directly on the packed uint64 representation of
// overlay.Membership: both the view and the acknowledged snapshot are
// kept as sorted packed sets, the delta is a single two-pointer set
// difference, and peer addresses are resolved to wire strings only for
// the descriptors that are actually sent — in the steady state a
// handful per frame instead of the whole view.
//
// The protocol is deliberately tolerant of datagram loss and peer
// restarts: a lost delta only delays descriptors that re-spread
// epidemically anyway, and a peer that lost its state re-opens with a
// full frame whose regressed generation makes Observe drop the acked
// snapshot, so encoding falls back to full frames until the handshake
// re-establishes itself.
type ViewCodec struct {
	// nextGen numbers outgoing frames (1-based).
	nextGen uint32
	// ackedGen is the newest generation the peer has confirmed; acked is
	// the sorted packed snapshot of what that confirmation covers (keys
	// in the sender's own address-book id space). Suppression is by
	// exact (key, stamp) match: a descriptor the peer has seen in this
	// precise freshness is not resent, anything else is — which can only
	// err toward a harmless resend.
	ackedGen uint32
	acked    []uint64
	// pendingGen/pendingFull/pendingPacked is the most recently sent
	// frame awaiting confirmation; the entries are merged into the acked
	// snapshot only when (and if) the ack arrives, keeping the per-encode
	// cost free of snapshot copying. Only the newest in-flight frame is
	// tracked: gossip is a steady per-cycle stream, so an older ack
	// simply keeps the current base.
	pendingGen    uint32
	pendingFull   bool
	pendingPacked []uint64
	// deltaScratch and mergeScratch are reusable work buffers.
	deltaScratch []uint64
	mergeScratch []uint64
	// recvGen is the newest generation received from the peer — the Ack
	// our next outgoing frame carries.
	recvGen uint32
}

// ackedSnapshotCap bounds the per-peer snapshot map. A NEWSCAST view
// holds at most MaxDescriptors entries, so snapshots stay naturally
// small; the cap only guards against pathological accumulation.
const ackedSnapshotCap = 4 * MaxDescriptors

// DescriptorWireSize is the encoded size of one descriptor: a uint16
// length prefix, the address bytes and the int64 stamp. View-byte
// budgets are accounted in these units.
func DescriptorWireSize(addr string) int { return 2 + len(addr) + 8 }

// EncodeView builds the next outgoing frame for this peer from our
// current packed view, sorted ascending (cache content plus fresh
// self-descriptor; see overlay.Membership), resolving keys to wire
// addresses with addr only for the entries actually sent. It returns a
// delta against the peer's last-acknowledged snapshot when that is
// established and strictly smaller than the full view, and a full frame
// otherwise. An unsorted view degrades gracefully: entries the peer has
// seen may be resent, never lost.
func (c *ViewCodec) EncodeView(packed []uint64, addr func(int32) string) ViewFrame {
	return c.EncodeViewBudget(packed, addr, 0)
}

// EncodeViewBudget is EncodeView under a piggyback budget: when
// maxBytes > 0, the frame carries only the longest prefix of the
// would-be entries whose descriptors fit in maxBytes encoded bytes
// (DescriptorWireSize each). The overlay tolerates partial views by
// design (§4) — a trimmed entry is simply not recorded as pending, so
// it stays outside the acked snapshot and is resent by a later frame
// instead of being lost. Under fast peer rotation, where the delta
// codec degrades to full frames, the budget is the bandwidth backstop.
func (c *ViewCodec) EncodeViewBudget(packed []uint64, addr func(int32) string, maxBytes int) ViewFrame {
	c.nextGen++
	frame := ViewFrame{Kind: ViewFull, Gen: c.nextGen, Ack: c.recvGen}
	send := packed
	if c.ackedGen != 0 {
		// Two-pointer sorted set difference: everything in the view the
		// peer has not confirmed at exactly this freshness.
		delta := c.deltaScratch[:0]
		j := 0
		for _, e := range packed {
			for j < len(c.acked) && c.acked[j] < e {
				j++
			}
			if j < len(c.acked) && c.acked[j] == e {
				continue
			}
			delta = append(delta, e)
		}
		c.deltaScratch = delta
		if len(delta) < len(packed) {
			frame.Kind = ViewDelta
			frame.Base = c.ackedGen
			send = delta
		}
	}
	entries := make([]Descriptor, 0, len(send))
	budget := maxBytes
	for _, e := range send {
		a := addr(overlay.UnpackKey(e))
		if maxBytes > 0 {
			sz := DescriptorWireSize(a)
			if sz > budget {
				break
			}
			budget -= sz
		}
		entries = append(entries, Descriptor{Addr: a, Stamp: int64(overlay.UnpackStamp(e))})
	}
	// pendingPacked must mirror what was actually sent: entries trimmed
	// by the budget may never enter the acked snapshot, or delta
	// suppression would starve the peer of them permanently.
	send = send[:len(entries)]
	frame.Entries = entries
	c.pendingGen = frame.Gen
	c.pendingFull = frame.Kind == ViewFull
	c.pendingPacked = append(c.pendingPacked[:0], send...)
	return frame
}

// promotePending folds the acknowledged frame into the acked snapshot:
// what the peer has now seen from us is the sent entries on top of the
// already-confirmed snapshot (for a full frame the snapshot is the frame
// itself — older entries are not in our view anymore and would never be
// resent anyway).
func (c *ViewCodec) promotePending() {
	if c.pendingFull || len(c.acked) > ackedSnapshotCap {
		// Full frame — or a snapshot that outgrew its bound (a peer
		// lifetime of deltas over ever-new addresses): restart from the
		// sent entries alone. Resending a descriptor the peer has already
		// seen is harmless, so shrinking the suppression set is safe.
		c.acked = append(c.acked[:0], c.pendingPacked...)
	} else {
		// Sorted-merge union of the confirmed snapshot and the sent
		// entries (both sorted; pendingPacked is a subsequence of a
		// sorted view).
		merged := c.mergeScratch[:0]
		i, j := 0, 0
		for i < len(c.acked) && j < len(c.pendingPacked) {
			switch {
			case c.acked[i] < c.pendingPacked[j]:
				merged = append(merged, c.acked[i])
				i++
			case c.acked[i] > c.pendingPacked[j]:
				merged = append(merged, c.pendingPacked[j])
				j++
			default:
				merged = append(merged, c.acked[i])
				i, j = i+1, j+1
			}
		}
		merged = append(merged, c.acked[i:]...)
		merged = append(merged, c.pendingPacked[j:]...)
		c.mergeScratch = c.acked[:0]
		c.acked = merged
	}
	c.pendingGen = 0
	c.pendingPacked = c.pendingPacked[:0]
}

// Observe processes an incoming frame from the peer: it applies the
// frame's acknowledgement to our send state, records the frame's
// generation for our next Ack, and returns the descriptors to absorb.
func (c *ViewCodec) Observe(f ViewFrame) []Descriptor {
	if f.Ack != 0 && f.Ack == c.pendingGen {
		c.ackedGen = f.Ack
		c.promotePending()
	}
	switch f.Kind {
	case ViewFull:
		// A full frame restarts the peer's stream (first contact or a
		// peer that lost its state and reset its generations).
		if f.Gen != 0 {
			if f.Gen < c.recvGen {
				// Generation regression: the peer restarted (or evicted
				// our session) and knows nothing of the snapshot it once
				// acknowledged. Drop our send state too, so the next
				// frames go out full until the handshake re-forms —
				// deltas against a base the peer no longer holds would
				// silently starve it of unchanged descriptors.
				c.ackedGen = 0
				c.acked = c.acked[:0]
				c.pendingGen = 0
				c.pendingPacked = c.pendingPacked[:0]
			}
			c.recvGen = f.Gen
		}
	case ViewDelta:
		if f.Gen > c.recvGen {
			c.recvGen = f.Gen
		}
	}
	return f.Entries
}

// AckedGen reports the generation the peer last confirmed (0 = none;
// full frames are being sent).
func (c *ViewCodec) AckedGen() uint32 { return c.ackedGen }
