// Package wire defines the binary message format spoken by live
// aggregation nodes (internal/agent) over any transport. The format is
// hand-rolled on encoding/binary — length-prefixed, versioned, and
// strictly validated, so a malformed datagram can never crash a node.
//
// Layout (big endian):
//
//	magic   [4]byte  "AE04"
//	version uint8    (currently 3; versions 2 and 1 are decoded for compatibility)
//	type    uint8    message type tag
//	body    ...      type-specific fields
//
// Strings are uint16 length + bytes; descriptor and map-entry lists are
// uint16 count + records, capped to keep every message inside a single
// UDP datagram.
//
// # Versioned view codec (version 2)
//
// Version 1 piggybacked the full NEWSCAST view — ~30 descriptors, most
// of them unchanged since the previous cycle — on every exchange, and
// that encode/decode dominated the live runtime's per-cycle CPU.
// Version 2 replaces the plain descriptor list with a ViewFrame: a full
// packed view is sent only on first contact (or when a delta would not
// be smaller), and subsequent frames carry only the descriptors that are
// new or fresher than the snapshot the peer last acknowledged. Frames
// are numbered per connection (Gen) and acknowledge the highest frame
// received from the peer (Ack); ViewCodec maintains the per-peer state
// on both sides. Because NEWSCAST absorption is a merge that keeps the
// freshest descriptor per key, a lost delta never corrupts a view — the
// peer merely misses entries that re-spread epidemically — so the codec
// needs no retransmission machinery. Version 1 messages decode into the
// same structures (their descriptor list becomes an un-numbered full
// frame) and EncodeLegacy emits them, so mixed-version deployments
// interoperate at full-view rates.
//
// # Exchange identifiers (version 3)
//
// Version 3 extends the exchange payload with a 64-bit exchange ID
// (XID), stamped by the initiator and echoed verbatim in every reply
// (including refusal NACKs). The ID exists purely for observability:
// it lets the initiate, served and absorb/timeout trace events of one
// exchange — recorded on different nodes, possibly in different
// processes — stitch into a single causal span. The body layout is
// otherwise identical to version 2 (the XID rides directly after Seq
// in the payload head), membership and join messages are unchanged,
// and version-2 peers keep interoperating: frames sent to them simply
// omit the XID, and their traces show XID 0.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic identifies the protocol ("Anti-Entropy, DSN 2004").
var Magic = [4]byte{'A', 'E', '0', '4'}

// Version is the current wire version (delta-encoded membership views
// plus traceable per-exchange identifiers).
const Version = 3

// VersionDelta is the delta-view wire version without exchange IDs,
// still fully supported for mixed-version deployments.
const VersionDelta = 2

// VersionLegacy is the pre-delta wire version, still decoded (and, via
// EncodeLegacy, encoded) for compatibility with old nodes.
const VersionLegacy = 1

// Limits that keep any message within one UDP datagram.
const (
	// MaxAddrLen bounds an address string.
	MaxAddrLen = 256
	// MaxDescriptors bounds a membership gossip list.
	MaxDescriptors = 128
	// MaxMapEntries bounds the COUNT map payload.
	MaxMapEntries = 512
)

// Message type tags.
type MsgType uint8

// Message kinds exchanged by live nodes.
const (
	TExchangeRequest MsgType = iota + 1
	TExchangeReply
	TJoinRequest
	TJoinReply
	TMembership
	TMembershipReply
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TExchangeRequest:
		return "exchange-request"
	case TExchangeReply:
		return "exchange-reply"
	case TJoinRequest:
		return "join-request"
	case TJoinReply:
		return "join-reply"
	case TMembership:
		return "membership"
	case TMembershipReply:
		return "membership-reply"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Errors returned by Decode and Encode.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadType     = errors.New("wire: unknown message type")
	ErrTooLarge    = errors.New("wire: field exceeds limit")
	ErrBadViewKind = errors.New("wire: unknown view frame kind")
)

// Descriptor is a NEWSCAST membership entry on the wire.
type Descriptor struct {
	Addr  string
	Stamp int64
}

// MapEntry is one (leader, estimate) pair of the COUNT map state.
type MapEntry struct {
	Leader int64
	Value  float64
}

// ViewKind tags a membership view frame.
type ViewKind uint8

// View frame kinds.
const (
	// ViewNone is the zero frame: no membership information attached
	// (refusal NACKs). Encoded as a single byte.
	ViewNone ViewKind = iota
	// ViewFull carries the sender's complete view — first contact, or a
	// refresh when a delta would not be smaller.
	ViewFull
	// ViewDelta carries only the descriptors that are new or fresher
	// than the snapshot the peer acknowledged (frame Base).
	ViewDelta
)

// String names the frame kind.
func (k ViewKind) String() string {
	switch k {
	case ViewNone:
		return "none"
	case ViewFull:
		return "full"
	case ViewDelta:
		return "delta"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(k))
	}
}

// ViewFrame is the versioned membership view attached to gossiping
// messages: a full packed view on first contact, deltas thereafter.
type ViewFrame struct {
	// Kind selects full, delta or no view.
	Kind ViewKind
	// Gen numbers this frame within the sender→receiver connection
	// (1-based; 0 means the sender does not track generations, e.g. a
	// frame synthesized from a legacy version-1 message).
	Gen uint32
	// Ack echoes the highest Gen received from the peer (0 = none yet);
	// it is what promotes the sender's pending snapshot on the other
	// side and thereby enables delta frames in the reverse direction.
	Ack uint32
	// Base is the acknowledged generation this delta is relative to
	// (ViewDelta only).
	Base uint32
	// Entries are the carried descriptors.
	Entries []Descriptor
}

// Payload is the aggregation state carried by exchange messages.
type Payload struct {
	// Seq matches replies to requests.
	Seq uint64
	// XID is the fleet-wide exchange identifier (wire version 3):
	// stamped by the initiator, echoed in replies, recorded in trace
	// events on both sides. Zero on pre-v3 wires.
	XID uint64
	// Epoch tags the protocol instance (§4.1).
	Epoch uint64
	// FuncID identifies the aggregate (see FuncID* constants).
	FuncID uint8
	// Flags carries exchange modifiers (FlagRefused).
	Flags uint8
	// Scalar is the estimate for scalar aggregates.
	Scalar float64
	// Entries is the map state for the COUNT aggregate.
	Entries []MapEntry
	// View piggybacks the NEWSCAST membership frame on every exchange.
	View ViewFrame
}

// FlagRefused marks a reply that declines the exchange (responder busy or
// not yet participating). The net effect equals the paper's timed-out
// exchange — it is skipped — but the initiator learns immediately instead
// of waiting out the timeout.
const FlagRefused uint8 = 1 << 0

// Function identifiers for Payload.FuncID.
const (
	FuncAverage uint8 = iota + 1
	FuncMin
	FuncMax
	FuncGeometricMean
	FuncCount
)

// Message is any decodable wire message.
type Message interface {
	// Type returns the message's wire tag.
	Type() MsgType
}

// ExchangeRequest opens a push-pull exchange (active thread of Figure 1).
type ExchangeRequest struct {
	From string
	Payload
}

// Type returns TExchangeRequest.
func (*ExchangeRequest) Type() MsgType { return TExchangeRequest }

// ExchangeReply answers an ExchangeRequest with the responder's state.
type ExchangeReply struct {
	From string
	Payload
}

// Type returns TExchangeReply.
func (*ExchangeReply) Type() MsgType { return TExchangeReply }

// JoinRequest asks an existing node for epoch timing and bootstrap
// contacts (§4.2).
type JoinRequest struct {
	From string
	Seq  uint64
}

// Type returns TJoinRequest.
func (*JoinRequest) Type() MsgType { return TJoinRequest }

// JoinReply hands a joiner the next epoch it may participate in, the time
// until that epoch starts, and membership seeds. Seeds stay a plain
// descriptor list: a join is by definition first contact, where a delta
// has no base to build on.
type JoinReply struct {
	Seq        uint64
	NextEpoch  uint64
	WaitMicros int64
	Seeds      []Descriptor
}

// Type returns TJoinReply.
func (*JoinReply) Type() MsgType { return TJoinReply }

// Membership is a standalone NEWSCAST view exchange (used by joiners
// that may not take part in aggregation yet, and by idle post-γ nodes).
type Membership struct {
	From string
	Seq  uint64
	View ViewFrame
}

// Type returns TMembership.
func (*Membership) Type() MsgType { return TMembership }

// MembershipReply answers a Membership exchange.
type MembershipReply struct {
	From string
	Seq  uint64
	View ViewFrame
}

// Type returns TMembershipReply.
func (*MembershipReply) Type() MsgType { return TMembershipReply }

// appender accumulates the encoding.
type appender struct {
	buf []byte
	err error
}

func (a *appender) u8(v uint8)   { a.buf = append(a.buf, v) }
func (a *appender) u16(v uint16) { a.buf = binary.BigEndian.AppendUint16(a.buf, v) }
func (a *appender) u32(v uint32) { a.buf = binary.BigEndian.AppendUint32(a.buf, v) }
func (a *appender) u64(v uint64) { a.buf = binary.BigEndian.AppendUint64(a.buf, v) }
func (a *appender) i64(v int64)  { a.u64(uint64(v)) }
func (a *appender) f64(v float64) {
	a.u64(math.Float64bits(v))
}

func (a *appender) str(s string) {
	if len(s) > MaxAddrLen {
		a.err = fmt.Errorf("%w: address %d bytes", ErrTooLarge, len(s))
		return
	}
	a.u16(uint16(len(s)))
	a.buf = append(a.buf, s...)
}

func (a *appender) descriptors(ds []Descriptor) {
	if len(ds) > MaxDescriptors {
		a.err = fmt.Errorf("%w: %d descriptors", ErrTooLarge, len(ds))
		return
	}
	a.u16(uint16(len(ds)))
	for _, d := range ds {
		a.str(d.Addr)
		a.i64(d.Stamp)
	}
}

func (a *appender) viewFrame(f ViewFrame) {
	a.u8(uint8(f.Kind))
	switch f.Kind {
	case ViewNone:
		if len(f.Entries) != 0 {
			a.err = fmt.Errorf("%w: none frame carries %d entries", ErrBadViewKind, len(f.Entries))
		}
	case ViewFull:
		a.u32(f.Gen)
		a.u32(f.Ack)
		a.descriptors(f.Entries)
	case ViewDelta:
		a.u32(f.Gen)
		a.u32(f.Ack)
		a.u32(f.Base)
		a.descriptors(f.Entries)
	default:
		a.err = fmt.Errorf("%w: %d", ErrBadViewKind, uint8(f.Kind))
	}
}

// legacyEntries flattens a view frame into the version-1 descriptor
// list. Only full (or empty) frames can be downgraded: a delta is
// meaningless to a peer that tracks no generations.
func legacyEntries(f ViewFrame) ([]Descriptor, error) {
	switch f.Kind {
	case ViewNone:
		return nil, nil
	case ViewFull:
		return f.Entries, nil
	default:
		return nil, fmt.Errorf("%w: cannot downgrade %s frame to version %d",
			ErrBadViewKind, f.Kind, VersionLegacy)
	}
}

func (a *appender) mapEntries(es []MapEntry) {
	if len(es) > MaxMapEntries {
		a.err = fmt.Errorf("%w: %d map entries", ErrTooLarge, len(es))
		return
	}
	a.u16(uint16(len(es)))
	for _, e := range es {
		a.i64(e.Leader)
		a.f64(e.Value)
	}
}

func (a *appender) payloadHead(p Payload, version uint8) {
	a.u64(p.Seq)
	if version >= Version {
		a.u64(p.XID)
	}
	a.u64(p.Epoch)
	a.u8(p.FuncID)
	a.u8(p.Flags)
	a.f64(p.Scalar)
	a.mapEntries(p.Entries)
}

// Encode serializes a message at the current wire version.
func Encode(m Message) ([]byte, error) { return EncodeVersion(m, Version) }

// EncodeLegacy serializes a message at the pre-delta version 1, for
// peers that have not demonstrated version-2 support. View frames must
// be full (or empty); deltas cannot be downgraded.
func EncodeLegacy(m Message) ([]byte, error) { return EncodeVersion(m, VersionLegacy) }

// EncodeVersion serializes a message at an explicit wire version.
func EncodeVersion(m Message, version uint8) ([]byte, error) {
	if version != Version && version != VersionDelta && version != VersionLegacy {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	a := &appender{buf: make([]byte, 0, 256)}
	a.buf = append(a.buf, Magic[:]...)
	a.u8(version)
	a.u8(uint8(m.Type()))
	view := func(f ViewFrame) {
		if version == VersionLegacy {
			ds, err := legacyEntries(f)
			if err != nil {
				a.err = err
				return
			}
			a.descriptors(ds)
			return
		}
		a.viewFrame(f)
	}
	switch v := m.(type) {
	case *ExchangeRequest:
		a.str(v.From)
		a.payloadHead(v.Payload, version)
		view(v.View)
	case *ExchangeReply:
		a.str(v.From)
		a.payloadHead(v.Payload, version)
		view(v.View)
	case *JoinRequest:
		a.str(v.From)
		a.u64(v.Seq)
	case *JoinReply:
		a.u64(v.Seq)
		a.u64(v.NextEpoch)
		a.i64(v.WaitMicros)
		a.descriptors(v.Seeds)
	case *Membership:
		a.str(v.From)
		a.u64(v.Seq)
		view(v.View)
	case *MembershipReply:
		a.str(v.From)
		a.u64(v.Seq)
		view(v.View)
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", m)
	}
	if a.err != nil {
		return nil, a.err
	}
	return a.buf, nil
}

// reader consumes the encoding.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u16())
	if n > MaxAddrLen {
		r.err = fmt.Errorf("%w: address %d bytes", ErrTooLarge, n)
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *reader) descriptors() []Descriptor {
	n := int(r.u16())
	if n > MaxDescriptors {
		r.err = fmt.Errorf("%w: %d descriptors", ErrTooLarge, n)
		return nil
	}
	out := make([]Descriptor, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, Descriptor{Addr: r.str(), Stamp: r.i64()})
	}
	return out
}

// viewFrame reads a version-2 frame.
func (r *reader) viewFrame() ViewFrame {
	kind := ViewKind(r.u8())
	switch kind {
	case ViewNone:
		return ViewFrame{}
	case ViewFull:
		return ViewFrame{Kind: ViewFull, Gen: r.u32(), Ack: r.u32(), Entries: r.descriptors()}
	case ViewDelta:
		return ViewFrame{Kind: ViewDelta, Gen: r.u32(), Ack: r.u32(), Base: r.u32(), Entries: r.descriptors()}
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: %d", ErrBadViewKind, uint8(kind))
		}
		return ViewFrame{}
	}
}

// legacyFrame reads a version-1 descriptor list as an un-numbered full
// frame (an empty list stays the zero frame, matching what version 1
// meant by it).
func (r *reader) legacyFrame() ViewFrame {
	ds := r.descriptors()
	if len(ds) == 0 {
		return ViewFrame{}
	}
	return ViewFrame{Kind: ViewFull, Entries: ds}
}

func (r *reader) mapEntries() []MapEntry {
	n := int(r.u16())
	if n > MaxMapEntries {
		r.err = fmt.Errorf("%w: %d map entries", ErrTooLarge, n)
		return nil
	}
	out := make([]MapEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, MapEntry{Leader: r.i64(), Value: r.f64()})
	}
	return out
}

func (r *reader) payload(version uint8) Payload {
	p := Payload{Seq: r.u64()}
	if version >= Version {
		p.XID = r.u64()
	}
	p.Epoch = r.u64()
	p.FuncID = r.u8()
	p.Flags = r.u8()
	p.Scalar = r.f64()
	p.Entries = r.mapEntries()
	if version == VersionLegacy {
		p.View = r.legacyFrame()
	} else {
		p.View = r.viewFrame()
	}
	return p
}

// Decode parses a message. The input slice is not retained.
func Decode(data []byte) (Message, error) {
	m, _, err := DecodeExt(data)
	return m, err
}

// DecodeExt parses a message and additionally reports the wire version
// it was encoded at, letting callers track per-peer version support.
func DecodeExt(data []byte) (Message, uint8, error) {
	r := &reader{buf: data}
	magic := r.take(4)
	if r.err != nil {
		return nil, 0, r.err
	}
	if [4]byte(magic) != Magic {
		return nil, 0, ErrBadMagic
	}
	version := r.u8()
	if version != Version && version != VersionDelta && version != VersionLegacy {
		if r.err != nil {
			return nil, 0, r.err
		}
		return nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	frame := r.viewFrame
	if version == VersionLegacy {
		frame = r.legacyFrame
	}
	t := MsgType(r.u8())
	var m Message
	switch t {
	case TExchangeRequest:
		m = &ExchangeRequest{From: r.str(), Payload: r.payload(version)}
	case TExchangeReply:
		m = &ExchangeReply{From: r.str(), Payload: r.payload(version)}
	case TJoinRequest:
		m = &JoinRequest{From: r.str(), Seq: r.u64()}
	case TJoinReply:
		m = &JoinReply{Seq: r.u64(), NextEpoch: r.u64(), WaitMicros: r.i64(), Seeds: r.descriptors()}
	case TMembership:
		m = &Membership{From: r.str(), Seq: r.u64(), View: frame()}
	case TMembershipReply:
		m = &MembershipReply{From: r.str(), Seq: r.u64(), View: frame()}
	default:
		if r.err != nil {
			return nil, 0, r.err
		}
		return nil, 0, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	if r.off != len(data) {
		return nil, 0, fmt.Errorf("wire: %d trailing bytes", len(data)-r.off)
	}
	return m, version, nil
}

// FuncIDFor maps a core function name to its wire id.
func FuncIDFor(name string) (uint8, error) {
	switch name {
	case "average":
		return FuncAverage, nil
	case "min":
		return FuncMin, nil
	case "max":
		return FuncMax, nil
	case "geometric-mean":
		return FuncGeometricMean, nil
	case "count":
		return FuncCount, nil
	default:
		return 0, fmt.Errorf("wire: unknown function %q", name)
	}
}
