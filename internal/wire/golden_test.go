package wire

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"
)

// The golden byte sequences pin the version-2 and version-3 wire
// layouts: a change that shifts a single byte breaks cross-version
// deployments, so these tests fail on any accidental layout change.
// Regenerate the literals only for a deliberate, version-bumped format
// change.

// goldenFull is a Membership carrying a full view frame:
//
//	magic "AE04" | version 2 | type 5 (membership)
//	From  "n1"   | Seq 7
//	frame: kind 1 (full) | gen 1 | ack 0 | 2 descriptors
//	  "n2" stamp 16, "n3" stamp 17
const goldenFull = "41453034" + "02" + "05" +
	"0002" + "6e31" + "0000000000000007" +
	"01" + "00000001" + "00000000" + "0002" +
	"0002" + "6e32" + "0000000000000010" +
	"0002" + "6e33" + "0000000000000011"

// goldenDelta is an ExchangeRequest whose payload piggybacks a delta
// frame:
//
//	magic "AE04" | version 2 | type 1 (exchange-request)
//	From "n1" | Seq 2 | Epoch 3 | FuncID 1 | Flags 0 | Scalar 1.5
//	0 map entries
//	frame: kind 2 (delta) | gen 5 | ack 4 | base 3 | 1 descriptor
//	  "n9" stamp 18
const goldenDelta = "41453034" + "02" + "01" +
	"0002" + "6e31" +
	"0000000000000002" + "0000000000000003" + "01" + "00" +
	"3ff8000000000000" + "0000" +
	"02" + "00000005" + "00000004" + "00000003" + "0001" +
	"0002" + "6e39" + "0000000000000012"

// goldenXID is the same ExchangeRequest at version 3: the only layout
// change is the version byte and the 64-bit exchange ID following Seq.
//
//	magic "AE04" | version 3 | type 1 (exchange-request)
//	From "n1" | Seq 2 | XID 0xCAFEF00D | Epoch 3 | FuncID 1 | Flags 0
//	Scalar 1.5 | 0 map entries
//	frame: kind 2 (delta) | gen 5 | ack 4 | base 3 | 1 descriptor
//	  "n9" stamp 18
const goldenXID = "41453034" + "03" + "01" +
	"0002" + "6e31" +
	"0000000000000002" + "00000000cafef00d" +
	"0000000000000003" + "01" + "00" +
	"3ff8000000000000" + "0000" +
	"02" + "00000005" + "00000004" + "00000003" + "0001" +
	"0002" + "6e39" + "0000000000000012"

func TestGoldenFullFrame(t *testing.T) {
	msg := &Membership{From: "n1", Seq: 7, View: ViewFrame{
		Kind: ViewFull, Gen: 1, Ack: 0,
		Entries: []Descriptor{{Addr: "n2", Stamp: 16}, {Addr: "n3", Stamp: 17}},
	}}
	checkGolden(t, msg, goldenFull, VersionDelta)
}

func TestGoldenDeltaFrame(t *testing.T) {
	msg := &ExchangeRequest{From: "n1", Payload: Payload{
		Seq: 2, Epoch: 3, FuncID: FuncAverage, Scalar: 1.5,
		Entries: []MapEntry{},
		View: ViewFrame{Kind: ViewDelta, Gen: 5, Ack: 4, Base: 3,
			Entries: []Descriptor{{Addr: "n9", Stamp: 18}}},
	}}
	checkGolden(t, msg, goldenDelta, VersionDelta)
}

func TestGoldenXIDFrame(t *testing.T) {
	msg := &ExchangeRequest{From: "n1", Payload: Payload{
		Seq: 2, XID: 0xCAFEF00D, Epoch: 3, FuncID: FuncAverage, Scalar: 1.5,
		Entries: []MapEntry{},
		View: ViewFrame{Kind: ViewDelta, Gen: 5, Ack: 4, Base: 3,
			Entries: []Descriptor{{Addr: "n9", Stamp: 18}}},
	}}
	checkGolden(t, msg, goldenXID, Version)
}

func checkGolden(t *testing.T, msg Message, golden string, version uint8) {
	t.Helper()
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatalf("bad golden literal: %v", err)
	}
	got, err := EncodeVersion(msg, version)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted from golden bytes:\n got %x\nwant %x", got, want)
	}
	back, err := Decode(want)
	if err != nil {
		t.Fatalf("golden bytes do not decode: %v", err)
	}
	if !reflect.DeepEqual(back, msg) {
		t.Fatalf("golden bytes decode to\n%#v\nwant\n%#v", back, msg)
	}
}

// TestGoldenLegacy pins the version-1 layout the compatibility decoder
// accepts: the same Membership, with the view as a plain descriptor
// list, decodes into an un-numbered full frame.
func TestGoldenLegacy(t *testing.T) {
	legacy := "41453034" + "01" + "05" +
		"0002" + "6e31" + "0000000000000007" +
		"0002" +
		"0002" + "6e32" + "0000000000000010" +
		"0002" + "6e33" + "0000000000000011"
	data, err := hex.DecodeString(legacy)
	if err != nil {
		t.Fatal(err)
	}
	m, version, err := DecodeExt(data)
	if err != nil {
		t.Fatal(err)
	}
	if version != VersionLegacy {
		t.Fatalf("version = %d, want %d", version, VersionLegacy)
	}
	got, ok := m.(*Membership)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	want := &Membership{From: "n1", Seq: 7, View: ViewFrame{
		Kind:    ViewFull,
		Entries: []Descriptor{{Addr: "n2", Stamp: 16}, {Addr: "n3", Stamp: 17}},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy decode:\n got %#v\nwant %#v", got, want)
	}
	// And EncodeLegacy reproduces the same bytes from the frame.
	re, err := EncodeLegacy(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, data) {
		t.Fatalf("legacy re-encoding drifted:\n got %x\nwant %x", re, data)
	}
}
