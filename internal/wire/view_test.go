package wire

import (
	"fmt"
	"slices"
	"testing"

	"antientropy/internal/overlay"
)

// pview builds a sorted packed view from (key, stamp) pairs — the form
// the agent hands the codec.
func pview(pairs ...int32) []uint64 {
	out := make([]uint64, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, overlay.Pack(pairs[i], pairs[i+1]))
	}
	slices.Sort(out)
	return out
}

// addrOf is the test resolver: id → "n<id>".
func addrOf(id int32) string { return fmt.Sprintf("n%d", id) }

// TestViewCodecHandshake walks the full first-contact → ack → delta
// sequence between two codecs, the way the agent drives them in a
// request/reply exchange. Key 0 plays the sender's self-descriptor,
// whose stamp refreshes every cycle.
func TestViewCodecHandshake(t *testing.T) {
	var a, b ViewCodec

	// First contact: a full frame, no ack to build deltas on yet.
	f1 := a.EncodeView(pview(1, 5, 2, 5, 0, 10), addrOf)
	if f1.Kind != ViewFull || f1.Gen != 1 || f1.Ack != 0 {
		t.Fatalf("first frame = %+v, want full gen 1 ack 0", f1)
	}
	if got := b.Observe(f1); len(got) != 3 {
		t.Fatalf("receiver absorbed %d entries, want 3", len(got))
	}

	// The reply acks gen 1; a's snapshot is promoted on receipt.
	r1 := b.EncodeView(pview(7, 6, 9, 10), addrOf)
	if r1.Ack != 1 {
		t.Fatalf("reply ack = %d, want 1", r1.Ack)
	}
	a.Observe(r1)
	if a.AckedGen() != 1 {
		t.Fatalf("ackedGen = %d, want 1", a.AckedGen())
	}

	// Next cycle: only the refreshed self-descriptor changed → delta of 1.
	f2 := a.EncodeView(pview(1, 5, 2, 5, 0, 11), addrOf)
	if f2.Kind != ViewDelta || f2.Base != 1 {
		t.Fatalf("second frame = %+v, want delta base 1", f2)
	}
	if len(f2.Entries) != 1 || f2.Entries[0].Addr != "n0" || f2.Entries[0].Stamp != 11 {
		t.Fatalf("delta entries = %v, want refreshed self only", f2.Entries)
	}

	// A new peer and a fresher known one appear → both in the delta;
	// unchanged descriptors stay suppressed. (The second frame was never
	// acked, so the base is still the full frame's snapshot and the
	// refreshed self rides along again.)
	f3 := a.EncodeView(pview(1, 9, 2, 5, 4, 12, 0, 12), addrOf)
	if f3.Kind != ViewDelta || f3.Base != 1 {
		t.Fatalf("third frame = %+v, want delta base 1", f3)
	}
	got := map[string]int64{}
	for _, d := range f3.Entries {
		got[d.Addr] = d.Stamp
	}
	if len(got) != 3 || got["n0"] != 12 || got["n1"] != 9 || got["n4"] != 12 {
		t.Fatalf("delta entries = %v, want n0/n1/n4", f3.Entries)
	}
}

// TestViewCodecDeltaAckAdvancesBase verifies cumulative promotion: after
// a delta frame is acked, the entries it carried join the suppression
// snapshot and are not resent.
func TestViewCodecDeltaAckAdvancesBase(t *testing.T) {
	var a ViewCodec
	a.EncodeView(pview(1, 5, 0, 10), addrOf)             // gen 1, full
	a.Observe(ViewFrame{Kind: ViewFull, Gen: 1, Ack: 1}) // acked
	f2 := a.EncodeView(pview(1, 5, 3, 7, 0, 11), addrOf) // delta: 3 and self
	if f2.Kind != ViewDelta || len(f2.Entries) != 2 {
		t.Fatalf("second frame = %+v", f2)
	}
	a.Observe(ViewFrame{Kind: ViewDelta, Gen: 2, Ack: f2.Gen}) // delta acked
	f3 := a.EncodeView(pview(1, 5, 3, 7, 0, 12), addrOf)
	if f3.Kind != ViewDelta || f3.Base != f2.Gen {
		t.Fatalf("third frame = %+v, want delta base %d", f3, f2.Gen)
	}
	if len(f3.Entries) != 1 || f3.Entries[0].Addr != "n0" {
		t.Fatalf("acked delta entries resent: %v", f3.Entries)
	}
}

// TestViewCodecFallsBackToFull verifies the degenerate case: when every
// descriptor changed, the codec sends a full frame (which also refreshes
// the peer's base).
func TestViewCodecFallsBackToFull(t *testing.T) {
	var a ViewCodec
	a.EncodeView(pview(1, 1, 0, 1), addrOf)
	a.Observe(ViewFrame{Kind: ViewFull, Gen: 1, Ack: 1})
	f := a.EncodeView(pview(1, 2, 0, 2), addrOf)
	if f.Kind != ViewFull {
		t.Fatalf("all-changed frame = %+v, want full", f)
	}
}

// TestViewCodecLostAckKeepsFull verifies loss tolerance: while no ack
// ever arrives, every frame stays full — the receiver can always absorb
// it with no shared state.
func TestViewCodecLostAckKeepsFull(t *testing.T) {
	var a ViewCodec
	for i := int32(0); i < 3; i++ {
		f := a.EncodeView(pview(1, 5, 0, 10+i), addrOf)
		if f.Kind != ViewFull {
			t.Fatalf("frame %d = %+v, want full without acks", i, f)
		}
	}
}

// TestViewCodecStaleAckIgnored verifies that an ack for an older frame
// (frames crossed on the wire) does not promote the newer pending
// snapshot.
func TestViewCodecStaleAckIgnored(t *testing.T) {
	var a ViewCodec
	a.EncodeView(pview(0, 1), addrOf) // gen 1
	a.EncodeView(pview(0, 2), addrOf) // gen 2, pending
	a.Observe(ViewFrame{Kind: ViewFull, Gen: 1, Ack: 1})
	if a.AckedGen() != 0 {
		t.Fatalf("stale ack promoted: ackedGen = %d", a.AckedGen())
	}
	a.Observe(ViewFrame{Kind: ViewFull, Gen: 2, Ack: 2})
	if a.AckedGen() != 2 {
		t.Fatalf("current ack not promoted: ackedGen = %d", a.AckedGen())
	}
}

// TestViewCodecPeerRestart verifies self-healing after a peer loses its
// state: its generations restart, and the generation regression on its
// full frame resets both our receive state and our send-side snapshot,
// so we return to full frames until the handshake re-forms — a delta
// against a base the restarted peer never held would silently starve it.
func TestViewCodecPeerRestart(t *testing.T) {
	var a ViewCodec
	// Establish a delta-mode connection.
	f1 := a.EncodeView(pview(1, 5, 0, 10), addrOf)
	a.Observe(ViewFrame{Kind: ViewDelta, Gen: 90, Ack: f1.Gen})
	if a.recvGen != 90 || a.AckedGen() == 0 {
		t.Fatalf("handshake not formed: recvGen=%d acked=%d", a.recvGen, a.AckedGen())
	}
	if f := a.EncodeView(pview(1, 5, 0, 11), addrOf); f.Kind != ViewDelta {
		t.Fatalf("established connection not in delta mode: %+v", f)
	}
	// The restarted peer speaks from gen 1 again with a full frame: the
	// regression must clear our acked snapshot along with recvGen.
	a.Observe(ViewFrame{Kind: ViewFull, Gen: 1})
	if a.recvGen != 1 {
		t.Fatalf("full frame did not reset recvGen: %d", a.recvGen)
	}
	if a.AckedGen() != 0 {
		t.Fatalf("restart did not clear the acked snapshot: %d", a.AckedGen())
	}
	if f := a.EncodeView(pview(1, 5, 0, 12), addrOf); f.Kind != ViewFull {
		t.Fatalf("post-restart frame = %+v, want full", f)
	}
	// An un-numbered legacy frame leaves the receive state alone.
	a.Observe(ViewFrame{Kind: ViewFull, Gen: 0})
	if a.recvGen != 1 {
		t.Fatalf("legacy frame touched recvGen: %d", a.recvGen)
	}
}

// TestViewCodecBudgetTrimsPrefix verifies the byte budget: the frame
// carries the longest entry prefix whose encoded descriptors fit, and a
// zero budget means unlimited.
func TestViewCodecBudgetTrimsPrefix(t *testing.T) {
	view := pview(1, 5, 2, 6, 3, 7, 0, 10)
	per := DescriptorWireSize("n1") // all test addrs encode to 12 bytes

	var unlimited ViewCodec
	if f := unlimited.EncodeViewBudget(view, addrOf, 0); len(f.Entries) != 4 {
		t.Fatalf("zero budget trimmed to %d entries, want 4", len(f.Entries))
	}

	var a ViewCodec
	f := a.EncodeViewBudget(view, addrOf, 2*per+1)
	if len(f.Entries) != 2 {
		t.Fatalf("budget for 2 descriptors sent %d entries", len(f.Entries))
	}
	var total int
	for _, d := range f.Entries {
		total += DescriptorWireSize(d.Addr)
	}
	if total > 2*per+1 {
		t.Fatalf("encoded %d descriptor bytes over budget %d", total, 2*per+1)
	}
	// A budget too small for even one descriptor yields an empty frame —
	// still a valid generation carrying the Ack.
	if f := a.EncodeViewBudget(view, addrOf, per-1); len(f.Entries) != 0 {
		t.Fatalf("sub-descriptor budget sent %d entries", len(f.Entries))
	}
}

// TestViewCodecBudgetResendsTrimmed verifies the safety property of the
// budget: a trimmed entry never enters the acked snapshot, so once the
// budget allows it the entry is resent rather than silently starved.
func TestViewCodecBudgetResendsTrimmed(t *testing.T) {
	var a ViewCodec
	view := pview(1, 5, 2, 6, 3, 7, 0, 10)
	per := DescriptorWireSize("n1")

	// Gen 1: budget admits only two of four descriptors; the peer acks.
	f1 := a.EncodeViewBudget(view, addrOf, 2*per)
	if len(f1.Entries) != 2 {
		t.Fatalf("first frame sent %d entries, want 2", len(f1.Entries))
	}
	a.Observe(ViewFrame{Kind: ViewFull, Gen: 1, Ack: f1.Gen})

	// Gen 2, unlimited: the trimmed descriptors must reappear in the
	// delta — they were sent to nobody and may not be suppressed.
	f2 := a.EncodeViewBudget(view, addrOf, 0)
	if f2.Kind != ViewDelta {
		t.Fatalf("second frame = %+v, want delta", f2)
	}
	got := map[string]bool{}
	for _, d := range f2.Entries {
		got[d.Addr] = true
	}
	sent := map[string]bool{}
	for _, d := range f1.Entries {
		sent[d.Addr] = true
	}
	for _, addr := range []string{"n0", "n1", "n2", "n3"} {
		if sent[addr] && got[addr] {
			t.Fatalf("acked descriptor %s resent in delta %v", addr, f2.Entries)
		}
		if !sent[addr] && !got[addr] {
			t.Fatalf("trimmed descriptor %s starved: delta %v", addr, f2.Entries)
		}
	}
}
