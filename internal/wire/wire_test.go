package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	payload := Payload{
		Seq: 7, Epoch: 42, FuncID: FuncAverage, Scalar: 3.14,
		Entries: []MapEntry{{Leader: 9, Value: 0.5}},
		View: ViewFrame{Kind: ViewFull, Gen: 3, Ack: 2,
			Entries: []Descriptor{{Addr: "10.0.0.1:9", Stamp: 100}}},
	}
	msgs := []Message{
		&ExchangeRequest{From: "a:1", Payload: payload},
		&ExchangeReply{From: "b:2", Payload: payload},
		&JoinRequest{From: "c:3", Seq: 5},
		&JoinReply{Seq: 5, NextEpoch: 43, WaitMicros: 123456,
			Seeds: []Descriptor{{Addr: "d:4", Stamp: -7}}},
		&Membership{From: "e:5", Seq: 9,
			View: ViewFrame{Kind: ViewDelta, Gen: 7, Ack: 4, Base: 2,
				Entries: []Descriptor{{Addr: "f:6", Stamp: 1}, {Addr: "g:7", Stamp: 2}}}},
		&MembershipReply{From: "h:8", Seq: 9,
			View: ViewFrame{Kind: ViewFull, Gen: 1,
				Entries: []Descriptor{{Addr: "i:9", Stamp: 3}}}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s round trip mismatch:\n in: %#v\nout: %#v", m.Type(), m, got)
		}
	}
}

func TestRoundTripEmptyLists(t *testing.T) {
	m := &ExchangeRequest{From: "x", Payload: Payload{Seq: 1, FuncID: FuncMin}}
	got := roundTrip(t, m).(*ExchangeRequest)
	if len(got.Entries) != 0 || got.View.Kind != ViewNone || len(got.View.Entries) != 0 {
		t.Fatalf("empty lists decoded as %v / %v", got.Entries, got.View)
	}
}

func TestRoundTripSpecialFloats(t *testing.T) {
	for _, v := range []float64{0, -0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		m := &ExchangeReply{From: "x", Payload: Payload{Scalar: v}}
		got := roundTrip(t, m).(*ExchangeReply)
		if got.Scalar != v {
			t.Errorf("float %g decoded as %g", v, got.Scalar)
		}
	}
	// NaN round trips to NaN.
	m := &ExchangeReply{From: "x", Payload: Payload{Scalar: math.NaN()}}
	got := roundTrip(t, m).(*ExchangeReply)
	if !math.IsNaN(got.Scalar) {
		t.Error("NaN did not survive")
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(from string, seq, epoch uint64, fid uint8, scalar float64,
		leaders []int64, stamps []int16) bool {
		if len(from) > MaxAddrLen {
			from = from[:MaxAddrLen]
		}
		if len(leaders) > MaxMapEntries {
			leaders = leaders[:MaxMapEntries]
		}
		entries := make([]MapEntry, 0, len(leaders))
		for i, l := range leaders {
			entries = append(entries, MapEntry{Leader: l, Value: float64(i)})
		}
		gossip := make([]Descriptor, 0, len(stamps))
		for i, s := range stamps {
			if i >= MaxDescriptors {
				break
			}
			gossip = append(gossip, Descriptor{Addr: "peer", Stamp: int64(s)})
		}
		in := &ExchangeRequest{From: from, Payload: Payload{
			Seq: seq, Epoch: epoch, FuncID: fid, Scalar: scalar,
			Entries: entries,
			View:    ViewFrame{Kind: ViewFull, Gen: 1, Entries: gossip},
		}}
		data, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		got, ok := out.(*ExchangeRequest)
		if !ok || got.From != in.From || got.Seq != in.Seq || got.Epoch != in.Epoch {
			return false
		}
		if math.IsNaN(scalar) {
			if !math.IsNaN(got.Scalar) {
				return false
			}
		} else if got.Scalar != scalar {
			return false
		}
		if len(got.Entries) != len(entries) || len(got.View.Entries) != len(gossip) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := Encode(&JoinRequest{From: "a", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short magic", []byte{'A', 'E'}, ErrTruncated},
		{"bad magic", append([]byte("XXXX"), valid[4:]...), ErrBadMagic},
		{"bad version", append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...), ErrBadVersion},
		{"bad type", func() []byte {
			d := append([]byte{}, valid...)
			d[5] = 200
			return d
		}(), ErrBadType},
		{"truncated body", valid[:len(valid)-3], ErrTruncated},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Errorf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	valid, err := Encode(&JoinRequest{From: "a", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(valid, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestEncodeLimits(t *testing.T) {
	longAddr := make([]byte, MaxAddrLen+1)
	if _, err := Encode(&JoinRequest{From: string(longAddr)}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize address: %v", err)
	}
	manyDescriptors := make([]Descriptor, MaxDescriptors+1)
	oversizeView := ViewFrame{Kind: ViewFull, Gen: 1, Entries: manyDescriptors}
	if _, err := Encode(&Membership{From: "a", View: oversizeView}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize descriptor list: %v", err)
	}
	manyEntries := make([]MapEntry, MaxMapEntries+1)
	if _, err := Encode(&ExchangeRequest{From: "a", Payload: Payload{Entries: manyEntries}}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize map payload: %v", err)
	}
}

func TestDecodeRejectsOversizeCounts(t *testing.T) {
	// Craft a message claiming an enormous descriptor list.
	data, err := Encode(&Membership{From: "a", Seq: 1, View: ViewFrame{Kind: ViewFull, Gen: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The descriptor count is the last 2 bytes before the (empty) list.
	data[len(data)-2] = 0xFF
	data[len(data)-1] = 0xFF
	if _, err := Decode(data); !errors.Is(err, ErrTooLarge) && !errors.Is(err, ErrTruncated) {
		t.Errorf("oversize count accepted: %v", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		TExchangeRequest: "exchange-request",
		TExchangeReply:   "exchange-reply",
		TJoinRequest:     "join-request",
		TJoinReply:       "join-reply",
		TMembership:      "membership",
		TMembershipReply: "membership-reply",
		MsgType(99):      "unknown(99)",
	}
	for tpe, want := range names {
		if got := tpe.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", tpe, got, want)
		}
	}
}

func TestFuncIDFor(t *testing.T) {
	ids := map[string]uint8{
		"average": FuncAverage, "min": FuncMin, "max": FuncMax,
		"geometric-mean": FuncGeometricMean, "count": FuncCount,
	}
	for name, want := range ids {
		got, err := FuncIDFor(name)
		if err != nil || got != want {
			t.Errorf("FuncIDFor(%q) = %d, %v", name, got, err)
		}
	}
	if _, err := FuncIDFor("median"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestDecodeFuzzSafety(t *testing.T) {
	// Decode must never panic on arbitrary input.
	if err := quick.Check(func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
