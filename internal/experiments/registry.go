package experiments

import (
	"fmt"
	"sort"
)

// Options override the paper-scale defaults of an experiment; zero values
// keep the default. They exist so one CLI can drive every figure.
type Options struct {
	// N overrides the network size.
	N int
	// Reps overrides the repetition count.
	Reps int
	// Seed overrides the master seed (0 keeps the default — the paper
	// figures are seeded deterministically).
	Seed uint64
	// Engine selects the simulation engine for every experiment — the
	// figure sweeps, ablations, extensions and scenario-based entries
	// alike: EngineSerial, EngineSharded, or ""/EngineAuto to pick by the
	// sweep's largest network size (sharded at
	// parsim.AutoEngineThreshold and above). The resolved engine is
	// echoed in Result.Engine.
	Engine string
	// Shards is the shard count for the sharded engine (0 = GOMAXPROCS).
	// Sharded results are deterministic per (seed, shard count).
	Shards int
}

// sel bundles the engine choice for embedding into experiment configs.
func (o Options) sel() EngineSel { return EngineSel{Engine: o.Engine, Shards: o.Shards} }

func (o Options) n(def int) int {
	if o.N > 0 {
		return o.N
	}
	return def
}

func (o Options) reps(def int) int {
	if o.Reps > 0 {
		return o.Reps
	}
	return def
}

func (o Options) seed(def uint64) uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// Runner is a registered experiment.
type Runner struct {
	// ID is the figure identifier ("fig2" … "fig8b", "ablation-…").
	ID string
	// Description summarizes what the experiment reproduces.
	Description string
	// Run executes the experiment.
	Run func(Options) (*Result, error)
}

// Registry returns every registered experiment, sorted by ID.
func Registry() []Runner {
	runners := []Runner{
		{
			ID:          "fig2",
			Description: "AVERAGE min/max trajectory, peak distribution, 30 cycles",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig2()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig2(cfg)
			},
		},
		{
			ID:          "fig3a",
			Description: "convergence factor vs network size, 8 topologies",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig3a()
				if o.N > 0 {
					cfg.MaxN = o.N
				}
				cfg.Reps, cfg.Seed, cfg.EngineSel = o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig3a(cfg)
			},
		},
		{
			ID:          "fig3b",
			Description: "normalized variance reduction per cycle, 8 topologies",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig3b()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig3b(cfg)
			},
		},
		{
			ID:          "fig4a",
			Description: "convergence factor vs Watts-Strogatz beta",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig4a()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig4a(cfg)
			},
		},
		{
			ID:          "fig4b",
			Description: "convergence factor vs NEWSCAST cache size",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig4b()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig4b(cfg)
			},
		},
		{
			ID:          "fig5",
			Description: "Var(mu_20)/E(sigma^2_0) vs crash rate Pf + Theorem 1",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig5()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig5(cfg)
			},
		},
		{
			ID:          "fig6a",
			Description: "COUNT vs sudden-death cycle (50% crash)",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig6a()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig6a(cfg)
			},
		},
		{
			ID:          "fig6b",
			Description: "COUNT under churn (constant size)",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig6b()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				if o.N > 0 {
					// Keep the paper's churn-to-size proportion (2.5% of N
					// per cycle at the top of the sweep).
					cfg.MaxSubstitution = o.N / 40
				}
				return RunFig6b(cfg)
			},
		},
		{
			ID:          "fig7a",
			Description: "COUNT convergence factor vs link failure Pd + bound",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig7a()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig7a(cfg)
			},
		},
		{
			ID:          "fig7b",
			Description: "COUNT size estimates vs message loss",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig7b()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig7b(cfg)
			},
		},
		{
			ID:          "fig8a",
			Description: "multi-instance COUNT vs t under churn",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig8a()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				if o.N > 0 {
					cfg.ChurnPerCycle = o.N / 100 // paper: 1% of N per cycle
				}
				return RunFig8a(cfg)
			},
		},
		{
			ID:          "fig8b",
			Description: "multi-instance COUNT vs t under 20% message loss",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultFig8b()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunFig8b(cfg)
			},
		},
		{
			ID:          "extension-adaptivity",
			Description: "§4.1 restart tracks a drifting average across epochs",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultExtension()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunExtensionAdaptivity(cfg)
			},
		},
		{
			ID:          "extension-countchain",
			Description: "§5 COUNT lifecycle: P_lead=C/N-hat feedback across epochs",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultExtension()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunExtensionCountChain(cfg)
			},
		},
		{
			ID:          "extension-minmax",
			Description: "§5 MIN/MAX epidemic broadcast: O(log N) propagation",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultExtension()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunExtensionMinMax(cfg)
			},
		},
		{
			ID:          "scenario-steady-churn",
			Description: "fig 6b/8a churn regime re-expressed as a declarative scenario",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultScenarioFig("steady-churn")
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.N, o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunScenarioFig(cfg)
			},
		},
		{
			ID:          "scenario-partition-heal",
			Description: "partition-and-heal scenario: mass conserved, estimate re-converges",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultScenarioFig("partition-heal")
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.N, o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunScenarioFig(cfg)
			},
		},
		{
			ID:          "advbias-inject-extreme",
			Description: "Byzantine value injection: |bias| vs honest twin, defense off/on",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultAdvBias("inject-extreme")
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.N, o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunAdvBias(cfg)
			},
		},
		{
			ID:          "advbias-sybil-flood",
			Description: "sybil join flood: |bias| vs honest twin, defense off/on",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultAdvBias("sybil-flood")
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.N, o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunAdvBias(cfg)
			},
		},
		{
			ID:          "ablation-pushpull",
			Description: "A1: push-pull vs push-sum vs push-only under loss",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultAblation()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunAblationPushPull(cfg)
			},
		},
		{
			ID:          "ablation-combiner",
			Description: "A2: trimmed-mean vs plain-mean combiner",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultAblation()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunAblationCombiner(cfg)
			},
		},
		{
			ID:          "ablation-peer-selection",
			Description: "A3: fresh vs frozen NEWSCAST vs uniform selection",
			Run: func(o Options) (*Result, error) {
				cfg := DefaultAblation()
				cfg.N, cfg.Reps, cfg.Seed, cfg.EngineSel = o.n(cfg.N), o.reps(cfg.Reps), o.seed(cfg.Seed), o.sel()
				return RunAblationPeerSelection(cfg)
			},
		},
	}
	sort.Slice(runners, func(i, j int) bool { return runners[i].ID < runners[j].ID })
	return runners
}

// Lookup finds a registered experiment by ID.
func Lookup(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
