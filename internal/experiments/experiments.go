// Package experiments regenerates every table and figure of the DSN'04
// paper's evaluation (§3, §4, §6, §7). Each figure has a Config with
// paper-scale defaults, a Run function that executes the sweep across all
// CPU cores, and a Result that prints the same series the paper plots.
//
// Paper-scale runs (10⁵ nodes, 50 repetitions) are reproduced by
// cmd/aggsim; the test suite and benchmarks run the same code at reduced
// scale, which is valid because the paper itself demonstrates (Figure 3a)
// that the convergence behaviour is independent of network size.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"antientropy/internal/parsim"
	"antientropy/internal/plot"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
	"antientropy/internal/topology"
)

// Point is one x position of a series with the distribution of the
// observed values across repetitions.
type Point struct {
	X    float64
	Mean float64
	Min  float64
	Max  float64
	// Reps is the number of repetitions aggregated into this point.
	Reps int
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Result is a regenerated figure: metadata plus one or more series.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Engine names the simulation engine the sweep ran on ("serial" or
	// "sharded") — echoed by cmd/aggsim so auto-selection is visible.
	Engine string
	Series []Series
}

// WriteCSV emits the result as CSV: id, series, x, mean, min, max, reps.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,series,x,mean,min,max,reps"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%d\n",
				r.ID, s.Label, p.X, p.Mean, p.Min, p.Max, p.Reps); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders a human-readable table of all series.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "x = %s, y = %s\n", r.XLabel, r.YLabel)
	if r.Engine != "" {
		fmt.Fprintf(&b, "engine = %s\n", r.Engine)
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\n[%s]\n", s.Label)
		fmt.Fprintf(&b, "%14s %14s %14s %14s\n", "x", "mean", "min", "max")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%14.6g %14.6g %14.6g %14.6g\n", p.X, p.Mean, p.Min, p.Max)
		}
	}
	return b.String()
}

// SeriesByLabel returns the series with the given label.
func (r *Result) SeriesByLabel(label string) (Series, error) {
	for _, s := range r.Series {
		if s.Label == label {
			return s, nil
		}
	}
	return Series{}, fmt.Errorf("experiments: no series %q in %s", label, r.ID)
}

// Plot renders the result as an ASCII figure. The y axis is drawn
// logarithmically when the values span more than two decades (as most of
// the paper's figures do).
func (r *Result) Plot() (string, error) {
	series := make([]plot.Series, 0, len(r.Series))
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		ps := plot.Series{Label: s.Label}
		for _, p := range s.Points {
			if math.IsNaN(p.Mean) || math.IsInf(p.Mean, 0) {
				continue
			}
			ps.X = append(ps.X, p.X)
			ps.Y = append(ps.Y, p.Mean)
			if p.Mean > 0 {
				minY = math.Min(minY, p.Mean)
				maxY = math.Max(maxY, p.Mean)
			}
		}
		series = append(series, ps)
	}
	logY := minY > 0 && maxY/minY > 100
	return plot.Render(plot.Config{
		Title: fmt.Sprintf("%s — %s (y: %s%s, x: %s)", r.ID, r.Title, r.YLabel, logSuffix(logY), r.XLabel),
		LogY:  logY,
	}, series...)
}

func logSuffix(log bool) string {
	if log {
		return ", log scale"
	}
	return ""
}

// summarize converts per-rep values into a Point, ignoring NaNs and
// infinities (a COUNT run in which every mass holder crashed reports
// +Inf; the paper excludes those from its figures too).
func summarize(x float64, values []float64) Point {
	p := Point{X: x, Min: math.Inf(1), Max: math.Inf(-1)}
	var m stats.Moments
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		m.Add(v)
	}
	p.Mean = m.Mean()
	p.Min = m.Min()
	p.Max = m.Max()
	p.Reps = m.N()
	return p
}

// TopologySpec names an overlay construction used across the figure
// sweeps, with one builder per engine: Overlay for the serial engine and
// Sharded for the sharded one. Every topology family of the evaluation
// carries both, which is what lets the sweeps dispatch freely.
type TopologySpec struct {
	Name    string
	Overlay sim.OverlayBuilder
	Sharded parsim.OverlaySpec
}

// graphTopology wraps a static graph generator for both engines: the
// serial engine adapts the graph directly, the sharded engine serves the
// same packed CSR adjacency to its parallel exchange phases.
func graphTopology(name string, build func(n int, rng *stats.RNG) (topology.Graph, error)) TopologySpec {
	return TopologySpec{
		Name:    name,
		Overlay: sim.StaticFunc(build),
		Sharded: parsim.Static(build),
	}
}

// NewscastTopology is the NEWSCAST overlay with cache size c on either
// engine.
func NewscastTopology(c int) TopologySpec {
	return TopologySpec{Name: "Newscast", Overlay: sim.Newscast(c), Sharded: parsim.Newscast(c)}
}

// CompleteLiveTopology is the fully connected overlay over the live
// membership on either engine.
func CompleteLiveTopology() TopologySpec {
	return TopologySpec{Name: "CompleteLive", Overlay: sim.CompleteLive(), Sharded: parsim.CompleteLive()}
}

// newscastFrozenTopology is NEWSCAST with gossip disabled after
// bootstrap (ablation A3) on either engine.
func newscastFrozenTopology(c int) TopologySpec {
	return TopologySpec{Name: "NewscastFrozen", Overlay: sim.NewscastFrozen(c), Sharded: parsim.NewscastFrozen(c)}
}

// wattsStrogatzTopology is the small-world family of Figures 3–4.
func wattsStrogatzTopology(name string, degree int, beta float64) TopologySpec {
	return graphTopology(name, func(n int, rng *stats.RNG) (topology.Graph, error) {
		return topology.NewWattsStrogatz(n, fitEvenDegree(degree, n), beta, rng)
	})
}

// RandomTopology is the paper's default test overlay on either engine: a
// random graph where every node knows `degree` random peers.
func RandomTopology(degree int) TopologySpec {
	return graphTopology("Random", func(n int, rng *stats.RNG) (topology.Graph, error) {
		k := degree
		if k > n-1 {
			k = n - 1
		}
		return topology.NewRandomKOut(n, k, rng)
	})
}

// CompleteTopology is the static fully connected topology on either
// engine.
func CompleteTopology() TopologySpec {
	return graphTopology("Complete", func(n int, _ *stats.RNG) (topology.Graph, error) {
		return topology.NewComplete(n)
	})
}

// StandardTopologies returns the eight overlay families of Figure 3, all
// with the paper's parameters: regular degree `degree` (20 in the paper)
// for the static graphs, cache size `newscastC` (30) for NEWSCAST, and
// attachment m = degree/2 for the scale-free graphs so the average degree
// matches.
func StandardTopologies(degree, newscastC int) []TopologySpec {
	ws := func(beta float64) TopologySpec {
		return wattsStrogatzTopology(fmt.Sprintf("W-S (beta=%.2f)", beta), degree, beta)
	}
	return []TopologySpec{
		ws(0.00), ws(0.25), ws(0.50), ws(0.75),
		NewscastTopology(newscastC),
		graphTopology("Scale-Free", func(n int, rng *stats.RNG) (topology.Graph, error) {
			m := degree / 2
			if m >= n {
				m = n - 1
			}
			return topology.NewBarabasiAlbert(n, m, rng)
		}),
		RandomTopology(degree),
		CompleteTopology(),
	}
}

// RandomOverlay is the serial-engine builder of RandomTopology, kept for
// callers that drive sim.Config directly.
func RandomOverlay(degree int) sim.OverlayBuilder { return RandomTopology(degree).Overlay }

// CompleteOverlay is the serial-engine builder of CompleteTopology.
func CompleteOverlay() sim.OverlayBuilder { return CompleteTopology().Overlay }

// fitEvenDegree clamps a lattice degree to something valid for n nodes.
func fitEvenDegree(degree, n int) int {
	k := degree
	if k >= n {
		k = n - 1
	}
	if k%2 != 0 {
		k--
	}
	if k < 2 {
		k = 2
	}
	return k
}

// measureConvergenceFactor runs the AVERAGE protocol once on the
// selected engine and returns the average convergence factor over the
// first `cycles` cycles (the quantity of Figures 3a, 4a, 4b and 7a).
func measureConvergenceFactor(eng sweepEngine, n, cycles int, seed uint64, topo TopologySpec, pd float64) (float64, error) {
	var tracker stats.ConvergenceTracker
	_, err := eng.run(coreConfig{
		N:           n,
		Cycles:      cycles,
		Seed:        seed,
		Fn:          averageFn,
		Init:        sim.UniformInit(0, 1, seed^0xabcdef),
		Topology:    topo,
		LinkFailure: pd,
		Observe: func(_ int, e sim.Core) {
			m := e.ParticipantMoments()
			tracker.Record(m.Variance())
		},
	})
	if err != nil {
		return 0, err
	}
	return tracker.AverageFactor(cycles)
}

// repMeans runs fn for every repetition in parallel and returns the
// per-rep results in deterministic (rep-indexed) order.
func repValues(reps int, seed uint64, fn func(rep int, seed uint64) (float64, error)) ([]float64, error) {
	out := make([]float64, reps)
	err := sim.ParallelReps(reps, seed, func(rep int, s uint64) error {
		v, err := fn(rep, s)
		if err != nil {
			return err
		}
		out[rep] = v
		return nil
	})
	return out, err
}

// logGrid returns approximately-log-spaced integer network sizes from lo
// to hi inclusive (powers of 10 with the paper's half-decade points).
func logGrid(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 10 {
		out = append(out, v)
		if half := v * 3; half <= hi && half > v {
			out = append(out, half)
		}
	}
	sort.Ints(out)
	return out
}

var averageFn = mustFunction("average")

// leaderRNG builds the dedicated generator used to draw instance leaders.
func leaderRNG(seed uint64) *stats.RNG {
	return stats.NewRNG(seed ^ 0x1eade5)
}
