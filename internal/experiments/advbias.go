package experiments

import (
	"fmt"
	"math"

	"antientropy/internal/scenario"
	"antientropy/internal/sim"
)

// AdvBiasConfig parameterizes the adversary-bias figure: an attacked
// canned scenario executed against its honest twin, once with its
// defense section stripped and once as configured, so the two |bias|
// trajectories show what the defense buys.
type AdvBiasConfig struct {
	// Scenario is the canned scenario name; it must declare adversaries.
	Scenario string
	// N overrides the scenario's network size (0 keeps it).
	N int
	// Reps is the number of independent repetitions.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultAdvBias returns laptop-scale defaults for the given attacked
// scenario.
func DefaultAdvBias(name string) AdvBiasConfig {
	return AdvBiasConfig{Scenario: name, Reps: 3, Seed: 29}
}

// RunAdvBias executes the attacked scenario Reps times in two variants —
// defense stripped and defense as declared — each against its honest
// twin on the same seed, and plots the per-cycle |estimate bias| of
// both. The gap between the two series is the defense's effect under
// identical attack schedules.
func RunAdvBias(cfg AdvBiasConfig) (*Result, error) {
	if cfg.Reps < 1 {
		return nil, fmt.Errorf("experiments: invalid adversary-bias config %+v", cfg)
	}
	sc, err := scenario.ByName(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if !sc.HasAdversary() {
		return nil, fmt.Errorf("experiments: scenario %s declares no adversaries", cfg.Scenario)
	}
	if cfg.N > 0 {
		sc.N = cfg.N
	}
	eng, err := cfg.EngineSel.resolve(sc.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	opts := scenario.SimOptions{Engine: eng.name, Shards: eng.shards, Workers: eng.workers}
	type pair struct{ undefended, defended scenario.BiasReport }
	reports := make([]pair, cfg.Reps)
	err = sim.ParallelReps(cfg.Reps, cfg.Seed, func(rep int, seed uint64) error {
		attacked := sc
		attacked.Seed = seed
		bare := attacked
		bare.Defense = scenario.Defense{}
		undef, err := scenario.RunSimWithTwin(bare, opts)
		if err != nil {
			return err
		}
		def, err := scenario.RunSimWithTwin(attacked, opts)
		if err != nil {
			return err
		}
		reports[rep] = pair{undefended: undef.Bias, defended: def.Bias}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: adversary bias %s: %w", cfg.Scenario, err)
	}
	cycles := len(reports[0].undefended.PerCycle)
	if c := len(reports[0].defended.PerCycle); c < cycles {
		cycles = c
	}
	undefended := Series{Label: "undefended |bias|"}
	defended := Series{Label: "defended |bias|"}
	for c := 0; c < cycles; c++ {
		var us, ds []float64
		for _, p := range reports {
			us = append(us, math.Abs(p.undefended.PerCycle[c]))
			ds = append(ds, math.Abs(p.defended.PerCycle[c]))
		}
		x := float64(c)
		undefended.Points = append(undefended.Points, summarize(x, us))
		defended.Points = append(defended.Points, summarize(x, ds))
	}
	return &Result{
		ID:     "advbias-" + cfg.Scenario,
		Title:  fmt.Sprintf("Attack bias vs honest twin, %q, defense off/on", cfg.Scenario),
		XLabel: "cycle",
		YLabel: "|attacked mean estimate - honest mean estimate|",
		Engine: eng.name,
		Series: []Series{undefended, defended},
	}, nil
}
