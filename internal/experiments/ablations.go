package experiments

import (
	"fmt"
	"math"

	"antientropy/internal/baseline"
	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
)

// AblationConfig parameterizes the design-choice ablations (DESIGN.md
// A1–A3). They are not paper figures, but quantify the decisions the
// paper argues for in §3, §7.3 and §4.4.
type AblationConfig struct {
	// N is the network size.
	N int
	// Cycles (or rounds) per run.
	Cycles int
	// Reps per point.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine for the protocol runs. The
	// push-sum/push-only reference baselines of A1 always execute on
	// their own serial implementations — they are comparison yardsticks,
	// not engine workloads.
	EngineSel
}

// DefaultAblation returns laptop-scale defaults (the ablations compare
// mechanisms, so moderate N suffices).
func DefaultAblation() AblationConfig {
	return AblationConfig{N: 10000, Cycles: 30, Reps: 10, Seed: 21}
}

func (c AblationConfig) validate() error {
	if c.N < 10 || c.Cycles < 1 || c.Reps < 1 {
		return fmt.Errorf("experiments: invalid ablation config %+v", c)
	}
	return nil
}

// RunAblationPushPull contrasts the paper's push-pull scheme with the
// Kempe et al. push-sum baseline and naive push-only averaging (A1): for
// each loss level, the mean relative error of the final estimates on the
// uniform [0,1) workload.
func RunAblationPushPull(cfg AblationConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	lossLevels := []float64{0, 0.05, 0.1, 0.2, 0.3}
	topo := RandomTopology(20)
	overlay := topo.Overlay
	result := &Result{
		ID:     "ablation-pushpull",
		Title:  "Push-pull vs push-sum vs push-only: relative error vs message loss",
		XLabel: "message loss fraction",
		YLabel: "mean |estimate − truth| / truth",
		Engine: eng.name,
	}
	type runner struct {
		label string
		run   func(seed uint64, loss float64) (float64, error)
	}
	// Truth: uniform values with known per-seed mean, measured directly.
	values := func(seed uint64, n int) []float64 {
		init := sim.UniformInit(0, 1, seed^0x7777)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = init(i)
		}
		return vals
	}
	meanError := func(est stats.Moments, truth float64) float64 {
		if est.N() == 0 {
			return math.Inf(1)
		}
		return math.Abs(est.Mean()-truth) / truth
	}
	runners := []runner{
		{"push-pull", func(seed uint64, loss float64) (float64, error) {
			vals := values(seed, cfg.N)
			truth, err := stats.Mean(vals)
			if err != nil {
				return 0, err
			}
			e, err := eng.run(coreConfig{
				N: cfg.N, Cycles: cfg.Cycles, Seed: seed,
				Fn:          core.Average,
				Init:        func(i int) float64 { return vals[i] },
				Topology:    topo,
				MessageLoss: loss,
			})
			if err != nil {
				return 0, err
			}
			return meanError(e.ParticipantMoments(), truth), nil
		}},
		{"push-sum", func(seed uint64, loss float64) (float64, error) {
			vals := values(seed, cfg.N)
			truth, err := stats.Mean(vals)
			if err != nil {
				return 0, err
			}
			ps, err := baseline.RunPushSum(baseline.Config{
				N: cfg.N, Rounds: cfg.Cycles, Seed: seed,
				SInit:       func(i int) float64 { return vals[i] },
				WInit:       func(int) float64 { return 1 },
				Overlay:     overlay,
				MessageLoss: loss,
			})
			if err != nil {
				return 0, err
			}
			return meanError(ps.Moments(), truth), nil
		}},
		{"push-only", func(seed uint64, loss float64) (float64, error) {
			vals := values(seed, cfg.N)
			truth, err := stats.Mean(vals)
			if err != nil {
				return 0, err
			}
			po, err := baseline.RunPushOnly(baseline.Config{
				N: cfg.N, Rounds: cfg.Cycles, Seed: seed,
				SInit:       func(i int) float64 { return vals[i] },
				Overlay:     overlay,
				MessageLoss: loss,
			})
			if err != nil {
				return 0, err
			}
			return meanError(po.Moments(), truth), nil
		}},
	}
	for _, r := range runners {
		series := Series{Label: r.label, Points: make([]Point, 0, len(lossLevels))}
		for li, loss := range lossLevels {
			seed := cfg.Seed ^ hashLabel(r.label) ^ (uint64(li+1) << 12)
			vals, err := repValues(cfg.Reps, seed, func(_ int, s uint64) (float64, error) {
				return r.run(s, loss)
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation A1 %s loss=%g: %w", r.label, loss, err)
			}
			series.Points = append(series.Points, summarize(loss, vals))
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// RunAblationCombiner contrasts the §7.3 trimmed-mean combiner with a
// plain mean over the same multi-instance COUNT runs under 20% message
// loss (A2): per t, the mean relative error of the combined estimate.
func RunAblationCombiner(cfg AblationConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	instanceCounts := []int{3, 6, 12, 24, 48}
	const loss = 0.2
	result := &Result{
		ID:     "ablation-combiner",
		Title:  "Trimmed-mean vs plain-mean combiner under 20% message loss",
		XLabel: "number of aggregation instances t",
		YLabel: "mean |estimate − N| / N",
		Engine: eng.name,
	}
	topo := NewscastTopology(30)
	trimmed := Series{Label: "trimmed mean (paper)", Points: make([]Point, 0, len(instanceCounts))}
	plain := Series{Label: "plain mean", Points: make([]Point, 0, len(instanceCounts))}
	for ti, t := range instanceCounts {
		seed := cfg.Seed ^ (uint64(ti+1) << 12)
		errTrim := make([]float64, cfg.Reps)
		errPlain := make([]float64, cfg.Reps)
		err := sim.ParallelReps(cfg.Reps, seed, func(rep int, s uint64) error {
			e, err := eng.run(coreConfig{
				N: cfg.N, Cycles: cfg.Cycles, Seed: s,
				Dim:         t,
				Leaders:     leadersFor(cfg.N, t, s),
				Topology:    topo,
				MessageLoss: loss,
			})
			if err != nil {
				return err
			}
			var mTrim, mPlain stats.Moments
			e.ForEachParticipantVec(func(node int, vec []float64) {
				ests := make([]float64, 0, t)
				for _, v := range vec {
					if v > 0 {
						ests = append(ests, core.SizeFromAverage(v))
					}
				}
				if len(ests) == 0 {
					return
				}
				if v, err := core.Combine(ests); err == nil {
					mTrim.Add(v)
				}
				if v, err := core.CombinePlain(ests); err == nil {
					mPlain.Add(v)
				}
			})
			n := float64(cfg.N)
			errTrim[rep] = math.Abs(mTrim.Mean()-n) / n
			errPlain[rep] = math.Abs(mPlain.Mean()-n) / n
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation A2 t=%d: %w", t, err)
		}
		trimmed.Points = append(trimmed.Points, summarize(float64(t), errTrim))
		plain.Points = append(plain.Points, summarize(float64(t), errPlain))
	}
	result.Series = append(result.Series, trimmed, plain)
	return result, nil
}

// RunAblationPeerSelection compares peer-selection quality (A3): NEWSCAST
// refreshed every cycle vs a NEWSCAST whose gossip is frozen after
// bootstrap (stale caches) vs uniform random selection, measured by the
// convergence factor.
func RunAblationPeerSelection(cfg AblationConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	named := func(name string, t TopologySpec) TopologySpec {
		t.Name = name
		return t
	}
	specs := []TopologySpec{
		named("uniform random (ideal)", CompleteTopology()),
		named("newscast c=30 (fresh)", NewscastTopology(30)),
		named("newscast c=30 (frozen)", newscastFrozenTopology(30)),
		named("newscast c=5 (fresh)", NewscastTopology(5)),
	}
	result := &Result{
		ID:     "ablation-peer-selection",
		Title:  "Peer selection quality: convergence factor by overlay freshness",
		XLabel: "series index",
		YLabel: "convergence factor",
		Engine: eng.name,
	}
	for si, spec := range specs {
		seed := cfg.Seed ^ hashLabel(spec.Name)
		vals, err := repValues(cfg.Reps, seed, func(_ int, s uint64) (float64, error) {
			return measureConvergenceFactor(eng, cfg.N, min(cfg.Cycles, 20), s, spec, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation A3 %s: %w", spec.Name, err)
		}
		result.Series = append(result.Series, Series{
			Label:  spec.Name,
			Points: []Point{summarize(float64(si), vals)},
		})
	}
	return result, nil
}
