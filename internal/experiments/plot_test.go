package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestResultPlotLinear(t *testing.T) {
	res := &Result{
		ID: "figX", Title: "Linear", XLabel: "x", YLabel: "y",
		Series: []Series{{
			Label: "s",
			Points: []Point{
				{X: 0, Mean: 1}, {X: 1, Mean: 2}, {X: 2, Mean: 3},
			},
		}},
	}
	out, err := res.Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "figX") || !strings.Contains(out, "* s") {
		t.Errorf("plot output incomplete:\n%s", out)
	}
	if strings.Contains(out, "log scale") {
		t.Error("narrow range must use a linear axis")
	}
}

func TestResultPlotAutoLogScale(t *testing.T) {
	res := &Result{
		ID: "figY", Title: "Wide", XLabel: "x", YLabel: "y",
		Series: []Series{{
			Label: "s",
			Points: []Point{
				{X: 0, Mean: 1}, {X: 1, Mean: 1e6},
			},
		}},
	}
	out, err := res.Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log scale") {
		t.Errorf("wide range must switch to a log axis:\n%s", out)
	}
}

func TestResultPlotSkipsInfinities(t *testing.T) {
	res := &Result{
		ID: "figZ", Title: "Inf", XLabel: "x", YLabel: "y",
		Series: []Series{{
			Label: "s",
			Points: []Point{
				{X: 0, Mean: math.Inf(1)}, {X: 1, Mean: 5}, {X: 2, Mean: 6},
			},
		}},
	}
	out, err := res.Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* s") {
		t.Errorf("plot missing series:\n%s", out)
	}
}
