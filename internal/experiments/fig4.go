package experiments

import "fmt"

// Fig4aConfig parameterizes Figure 4(a): convergence factor of AVERAGE on
// Watts–Strogatz graphs as a function of the rewiring probability β.
type Fig4aConfig struct {
	// N is the network size (paper: 10⁵).
	N int
	// Degree of the lattice (paper: 20).
	Degree int
	// Cycles over which the factor is averaged (paper: 20).
	Cycles int
	// BetaSteps is the number of β grid points in [0, 1].
	BetaSteps int
	// Reps per β point.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig4a returns the paper's parameters.
func DefaultFig4a() Fig4aConfig {
	return Fig4aConfig{N: 100000, Degree: 20, Cycles: 20, BetaSteps: 21, Reps: 10, Seed: 5}
}

// RunFig4a regenerates Figure 4(a): β from complete order (0) to complete
// disorder (1); increased randomness must improve (lower) the factor with
// no sharp phase transition.
func RunFig4a(cfg Fig4aConfig) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || cfg.BetaSteps < 2 || cfg.Reps < 1 {
		return nil, fmt.Errorf("experiments: invalid fig4a config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	series := Series{Label: "W-S", Points: make([]Point, 0, cfg.BetaSteps)}
	for step := 0; step < cfg.BetaSteps; step++ {
		beta := float64(step) / float64(cfg.BetaSteps-1)
		topo := wattsStrogatzTopology("W-S", cfg.Degree, beta)
		vals, err := repValues(cfg.Reps, cfg.Seed^(uint64(step+1)<<16), func(_ int, s uint64) (float64, error) {
			return measureConvergenceFactor(eng, cfg.N, cfg.Cycles, s, topo, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4a beta=%g: %w", beta, err)
		}
		series.Points = append(series.Points, summarize(beta, vals))
	}
	return &Result{
		ID:     "fig4a",
		Title:  "Convergence factor for Watts-Strogatz graphs vs beta",
		XLabel: "beta",
		YLabel: "convergence factor",
		Engine: eng.name,
		Series: []Series{series},
	}, nil
}

// Fig4bConfig parameterizes Figure 4(b): convergence factor on NEWSCAST
// overlays as a function of the cache size c.
type Fig4bConfig struct {
	// N is the network size (paper: 10⁵).
	N int
	// Cycles over which the factor is averaged.
	Cycles int
	// CacheSizes to sweep (paper: 2…50).
	CacheSizes []int
	// Reps per point.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig4b returns the paper's parameters.
func DefaultFig4b() Fig4bConfig {
	return Fig4bConfig{
		N:          100000,
		Cycles:     20,
		CacheSizes: []int{2, 3, 4, 5, 7, 10, 15, 20, 25, 30, 35, 40, 45, 50},
		Reps:       10,
		Seed:       6,
	}
}

// RunFig4b regenerates Figure 4(b): the factor must be poor at c = 2,
// drop steeply, and plateau near the random-graph level by c ≈ 30 — the
// basis for the paper's recommendation of c = 30.
func RunFig4b(cfg Fig4bConfig) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || len(cfg.CacheSizes) == 0 || cfg.Reps < 1 {
		return nil, fmt.Errorf("experiments: invalid fig4b config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	series := Series{Label: "Newscast", Points: make([]Point, 0, len(cfg.CacheSizes))}
	for i, c := range cfg.CacheSizes {
		if c < 1 {
			return nil, fmt.Errorf("experiments: invalid cache size %d", c)
		}
		topo := NewscastTopology(c)
		vals, err := repValues(cfg.Reps, cfg.Seed^(uint64(i+1)<<16), func(_ int, s uint64) (float64, error) {
			return measureConvergenceFactor(eng, cfg.N, cfg.Cycles, s, topo, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4b c=%d: %w", c, err)
		}
		series.Points = append(series.Points, summarize(float64(c), vals))
	}
	return &Result{
		ID:     "fig4b",
		Title:  "Convergence factor for NEWSCAST graphs vs cache size c",
		XLabel: "cache size c",
		YLabel: "convergence factor",
		Engine: eng.name,
		Series: []Series{series},
	}, nil
}
