package experiments

import (
	"fmt"
	"math"

	"antientropy/internal/sim"
)

// countEpoch runs one COUNT epoch (single leader, peak initialization)
// on the selected engine under the given failure models and returns the
// average network-size estimate over the nodes still participating at
// the end of the epoch — exactly the quantity Figure 6 plots.
func countEpoch(eng sweepEngine, n, cycles int, seed uint64, topo TopologySpec,
	failures []sim.FailureModel, loss float64) (float64, error) {
	e, err := eng.run(coreConfig{
		N:           n,
		Cycles:      cycles,
		Seed:        seed,
		Dim:         1,
		Leaders:     []int{0},
		Topology:    topo,
		Failures:    failures,
		MessageLoss: loss,
	})
	if err != nil {
		return 0, err
	}
	m := e.SizeMoments()
	if m.N() == 0 {
		// Every node holding mass crashed: the estimate diverged (§7.1
		// notes it "can even become infinite").
		return math.Inf(1), nil
	}
	return m.Mean(), nil
}

// Fig6aConfig parameterizes Figure 6(a): COUNT under the "sudden death"
// of half the network at varying cycles of the epoch.
type Fig6aConfig struct {
	// N is the network size (paper: 10⁵).
	N int
	// NewscastC is the overlay cache size (paper: 30).
	NewscastC int
	// Cycles per epoch (paper: 30).
	Cycles int
	// DeathFraction of nodes crashing at once (paper: 0.5).
	DeathFraction float64
	// MaxCycle is the largest sudden-death cycle swept (paper: 20).
	MaxCycle int
	// Reps per point (paper: 50).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig6a returns the paper's parameters.
func DefaultFig6a() Fig6aConfig {
	return Fig6aConfig{
		N: 100000, NewscastC: 30, Cycles: 30,
		DeathFraction: 0.5, MaxCycle: 20, Reps: 50, Seed: 8,
	}
}

// RunFig6a regenerates Figure 6(a): x = cycle of the sudden death, y =
// estimated size at the end of the epoch. Early deaths can remove most of
// the leader's mass and blow the estimate up by orders of magnitude;
// after cycle ~10 the variance is so small that the damage is negligible.
func RunFig6a(cfg Fig6aConfig) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || cfg.MaxCycle < 0 || cfg.Reps < 1 ||
		cfg.DeathFraction < 0 || cfg.DeathFraction >= 1 {
		return nil, fmt.Errorf("experiments: invalid fig6a config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := NewscastTopology(cfg.NewscastC)
	series := Series{Label: "Experiments", Points: make([]Point, 0, cfg.MaxCycle+1)}
	for at := 0; at <= cfg.MaxCycle; at++ {
		// Cycle 0 in the paper's x axis means "at the very start"; our
		// failure hook runs at the start of cycle 1.
		deathCycle := at
		if deathCycle < 1 {
			deathCycle = 1
		}
		seed := cfg.Seed ^ (uint64(at+1) << 20)
		vals, err := repValues(cfg.Reps, seed, func(_ int, s uint64) (float64, error) {
			return countEpoch(eng, cfg.N, cfg.Cycles, s, topo,
				[]sim.FailureModel{sim.SuddenDeath{AtCycle: deathCycle, Fraction: cfg.DeathFraction}}, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6a cycle=%d: %w", at, err)
		}
		series.Points = append(series.Points, summarize(float64(at), vals))
	}
	return &Result{
		ID:     "fig6a",
		Title:  "COUNT with 50% sudden death at cycle x",
		XLabel: "cycle of sudden death",
		YLabel: "estimated size",
		Engine: eng.name,
		Series: []Series{series},
	}, nil
}

// Fig6bConfig parameterizes Figure 6(b): COUNT in a network of constant
// size with continuous churn.
type Fig6bConfig struct {
	// N is the (constant) network size (paper: 10⁵).
	N int
	// NewscastC is the overlay cache size.
	NewscastC int
	// Cycles per epoch (paper: 30).
	Cycles int
	// MaxSubstitution is the largest per-cycle substitution count swept
	// (paper: 2500 at N = 10⁵, i.e. up to 75% of nodes replaced per
	// epoch).
	MaxSubstitution int
	// Steps over [0, MaxSubstitution].
	Steps int
	// Reps per point (paper: 50).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig6b returns the paper's parameters.
func DefaultFig6b() Fig6bConfig {
	return Fig6bConfig{
		N: 100000, NewscastC: 30, Cycles: 30,
		MaxSubstitution: 2500, Steps: 11, Reps: 50, Seed: 9,
	}
}

// RunFig6b regenerates Figure 6(b): x = nodes substituted per cycle, y =
// estimated size at the end of the epoch over the surviving participants.
// The correct answer remains N (the epoch reports the size at its start).
func RunFig6b(cfg Fig6bConfig) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || cfg.Steps < 2 || cfg.Reps < 1 || cfg.MaxSubstitution < 0 {
		return nil, fmt.Errorf("experiments: invalid fig6b config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := NewscastTopology(cfg.NewscastC)
	series := Series{Label: "Experiments", Points: make([]Point, 0, cfg.Steps)}
	for step := 0; step < cfg.Steps; step++ {
		perCycle := cfg.MaxSubstitution * step / (cfg.Steps - 1)
		var failures []sim.FailureModel
		if perCycle > 0 {
			failures = append(failures, sim.Churn{PerCycle: perCycle})
		}
		seed := cfg.Seed ^ (uint64(step+1) << 20)
		vals, err := repValues(cfg.Reps, seed, func(_ int, s uint64) (float64, error) {
			return countEpoch(eng, cfg.N, cfg.Cycles, s, topo, failures, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6b churn=%d: %w", perCycle, err)
		}
		series.Points = append(series.Points, summarize(float64(perCycle), vals))
	}
	return &Result{
		ID:     "fig6b",
		Title:  "COUNT under continuous churn (constant network size)",
		XLabel: "nodes substituted per cycle",
		YLabel: "estimated size",
		Engine: eng.name,
		Series: []Series{series},
	}, nil
}
