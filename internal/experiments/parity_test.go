package experiments

import (
	"math"
	"testing"

	"antientropy/internal/parsim"
)

func TestEngineAutoSelection(t *testing.T) {
	cases := []struct {
		sel  EngineSel
		n    int
		want string
	}{
		{EngineSel{}, parsim.AutoEngineThreshold, EngineSharded},
		{EngineSel{}, parsim.AutoEngineThreshold - 1, EngineSerial},
		{EngineSel{Engine: EngineAuto}, parsim.AutoEngineThreshold, EngineSharded},
		// An explicit choice always wins over size-based selection.
		{EngineSel{Engine: EngineSerial}, 10 * parsim.AutoEngineThreshold, EngineSerial},
		{EngineSel{Engine: EngineSharded}, 10, EngineSharded},
	}
	for i, tc := range cases {
		eng, err := tc.sel.resolve(tc.n, 3)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if eng.name != tc.want {
			t.Errorf("case %d: resolved %q, want %q", i, eng.name, tc.want)
		}
	}
	if _, err := (EngineSel{Engine: "warp"}).resolve(100, 1); err == nil {
		t.Error("unknown engine accepted")
	}
}

// The serial and the sharded engine are different (equally valid)
// executions of the same protocol: trajectories differ per run, but the
// rep-averaged series a figure plots must agree statistically. These
// tests run fig2 (the AVERAGE envelope trajectory) and fig6b (COUNT
// under churn) on both engines at reduced scale and bound the
// disagreement — the acceptance check for the engine-agnostic sweep
// layer.
//
// Since the unified membership layer both engines now run on the same
// packed overlay.Membership/Table implementation: a NEWSCAST merge
// produces identical results descriptor for descriptor on either engine
// (pinned at the overlay level by TestPackedMatchesGenericOnStampTies),
// and the only remaining differences are the per-engine RNG stream
// layouts and the sharded engine's deferred cross-shard exchange order.
// These parity bounds therefore pin exactly that residue; a widening
// here would indicate an engine-level regression, not an overlay one.

func runBothEngines(t *testing.T, run func(sel EngineSel) (*Result, error)) (serial, sharded *Result) {
	t.Helper()
	serial, err := run(EngineSel{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err = run(EngineSel{Engine: EngineSharded, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Engine != EngineSerial || sharded.Engine != EngineSharded {
		t.Fatalf("engines not echoed: %q / %q", serial.Engine, sharded.Engine)
	}
	return serial, sharded
}

func TestFig2SerialShardedParity(t *testing.T) {
	cfg := DefaultFig2()
	cfg.N, cfg.Reps, cfg.Cycles = 600, 6, 25
	serial, sharded := runBothEngines(t, func(sel EngineSel) (*Result, error) {
		c := cfg
		c.EngineSel = sel
		return RunFig2(c)
	})
	for _, label := range []string{"Minimum", "Maximum"} {
		ss, err := serial.SeriesByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := sharded.SeriesByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		if len(ss.Points) != len(ps.Points) {
			t.Fatalf("%s: series lengths differ: %d vs %d", label, len(ss.Points), len(ps.Points))
		}
		// Both engines must converge the envelope to the true average 1.
		last := len(ss.Points) - 1
		if math.Abs(ss.Points[last].Mean-1) > 0.01 || math.Abs(ps.Points[last].Mean-1) > 0.01 {
			t.Errorf("%s: final envelopes %g (serial) vs %g (sharded), want ≈ 1",
				label, ss.Points[last].Mean, ps.Points[last].Mean)
		}
	}
	// Trajectory parity on the closing Maximum envelope: per cycle, the
	// rep-averaged means must agree within a small factor once the decay
	// is underway (the first cycles are dominated by single-exchange
	// variance).
	ss, _ := serial.SeriesByLabel("Maximum")
	ps, _ := sharded.SeriesByLabel("Maximum")
	for c := 5; c < len(ss.Points); c++ {
		a, b := ss.Points[c].Mean, ps.Points[c].Mean
		if a <= 1 || b <= 1 {
			continue // converged to the floor on both engines
		}
		// Compare the decaying excess over the limit on a log scale.
		ratio := math.Log(a-1+1e-12) - math.Log(b-1+1e-12)
		if math.Abs(ratio) > math.Log(8) {
			t.Errorf("cycle %d: max envelope serial %g vs sharded %g beyond tolerance", c, a, b)
		}
	}
}

func TestFig6bSerialShardedParity(t *testing.T) {
	cfg := DefaultFig6b()
	cfg.N, cfg.Reps, cfg.Steps = 1000, 4, 3
	cfg.MaxSubstitution = cfg.N / 40 // paper proportion: 2.5% per cycle
	serial, sharded := runBothEngines(t, func(sel EngineSel) (*Result, error) {
		c := cfg
		c.EngineSel = sel
		return RunFig6b(c)
	})
	ss := serial.Series[0].Points
	ps := sharded.Series[0].Points
	if len(ss) != len(ps) {
		t.Fatalf("series lengths differ: %d vs %d", len(ss), len(ps))
	}
	n := float64(cfg.N)
	for i := range ss {
		if ss[i].Reps == 0 || ps[i].Reps == 0 {
			t.Fatalf("point %d: no finite estimates (serial %d, sharded %d reps)", i, ss[i].Reps, ps[i].Reps)
		}
		// Both engines report the pre-churn size within the paper's
		// "reasonable range"…
		if math.Abs(ss[i].Mean-n)/n > 0.25 || math.Abs(ps[i].Mean-n)/n > 0.25 {
			t.Errorf("churn=%g: estimates %g (serial) vs %g (sharded) stray from N=%g",
				ss[i].X, ss[i].Mean, ps[i].Mean, n)
		}
		// …and agree with each other.
		if math.Abs(ss[i].Mean-ps[i].Mean)/n > 0.2 {
			t.Errorf("churn=%g: serial %g and sharded %g disagree beyond tolerance",
				ss[i].X, ss[i].Mean, ps[i].Mean)
		}
	}
}
