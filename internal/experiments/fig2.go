package experiments

import (
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/sim"
)

// mustFunction resolves a core function at package init; the names are
// compile-time constants so failure is a programming error.
func mustFunction(name string) core.Function {
	f, err := core.FunctionByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Fig2Config parameterizes Figure 2: the trajectory of the minimum and
// maximum AVERAGE estimates under the peak distribution on a random
// overlay.
type Fig2Config struct {
	// N is the network size (paper: 10⁵).
	N int
	// Degree of the random overlay (paper: 20).
	Degree int
	// Cycles per epoch (paper: 30).
	Cycles int
	// Reps is the number of independent experiments (paper: 50).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig2 returns the paper's parameters.
func DefaultFig2() Fig2Config {
	return Fig2Config{N: 100000, Degree: 20, Cycles: 30, Reps: 50, Seed: 2}
}

func (c Fig2Config) validate() error {
	if c.N < 2 || c.Cycles < 1 || c.Reps < 1 || c.Degree < 1 {
		return fmt.Errorf("experiments: invalid fig2 config %+v", c)
	}
	return nil
}

// RunFig2 regenerates Figure 2: two series ("Minimum", "Maximum") of the
// extreme estimates per cycle, averaged over repetitions. Initially a
// single node holds the value N while all others hold 0, so the true
// average is 1.
func RunFig2(cfg Fig2Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	cycles := cfg.Cycles
	mins := make([][]float64, cfg.Reps)
	maxs := make([][]float64, cfg.Reps)
	err = sim.ParallelReps(cfg.Reps, cfg.Seed, func(rep int, seed uint64) error {
		lo := make([]float64, 0, cycles+1)
		hi := make([]float64, 0, cycles+1)
		_, err := eng.run(coreConfig{
			N:        cfg.N,
			Cycles:   cycles,
			Seed:     seed,
			Fn:       core.Average,
			Init:     sim.PeakInit(float64(cfg.N), 0),
			Topology: RandomTopology(cfg.Degree),
			Observe: func(_ int, e sim.Core) {
				m := e.ParticipantMoments()
				lo = append(lo, m.Min())
				hi = append(hi, m.Max())
			},
		})
		if err != nil {
			return err
		}
		mins[rep] = lo
		maxs[rep] = hi
		return nil
	})
	if err != nil {
		return nil, err
	}
	minSeries := Series{Label: "Minimum", Points: make([]Point, 0, cycles+1)}
	maxSeries := Series{Label: "Maximum", Points: make([]Point, 0, cycles+1)}
	perRep := make([]float64, cfg.Reps)
	for c := 0; c <= cycles; c++ {
		for rep := 0; rep < cfg.Reps; rep++ {
			perRep[rep] = mins[rep][c]
		}
		minSeries.Points = append(minSeries.Points, summarize(float64(c), perRep))
		for rep := 0; rep < cfg.Reps; rep++ {
			perRep[rep] = maxs[rep][c]
		}
		maxSeries.Points = append(maxSeries.Points, summarize(float64(c), perRep))
	}
	return &Result{
		ID:     "fig2",
		Title:  "Behavior of protocol AVERAGE (peak distribution)",
		XLabel: "cycle",
		YLabel: "estimated average (min/max over nodes)",
		Engine: eng.name,
		Series: []Series{minSeries, maxSeries},
	}, nil
}
