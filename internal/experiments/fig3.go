package experiments

import (
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
)

// Fig3aConfig parameterizes Figure 3(a): average convergence factor over
// 20 cycles as a function of network size, for eight topology families.
type Fig3aConfig struct {
	// MinN and MaxN bound the size sweep (paper: 10²…10⁶).
	MinN int
	MaxN int
	// Degree of the static overlays (paper: 20).
	Degree int
	// NewscastC is the NEWSCAST cache size (paper: 30... the paper's
	// figure uses the protocol's standard configuration).
	NewscastC int
	// Cycles over which the factor is averaged (paper: 20).
	Cycles int
	// Reps per (topology, size) point.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine (auto resolves against
	// MaxN, the sweep's largest size).
	EngineSel
}

// DefaultFig3a returns the paper's parameters. Beware: the full sweep
// touches 10⁶-node graphs; use cmd/aggsim for that scale.
func DefaultFig3a() Fig3aConfig {
	return Fig3aConfig{
		MinN: 100, MaxN: 1000000,
		Degree: 20, NewscastC: 30, Cycles: 20, Reps: 10, Seed: 3,
	}
}

// RunFig3a regenerates Figure 3(a): one series per topology, x = network
// size, y = average convergence factor. The paper's headline observation
// — performance independent of size, strongly dependent on topology — is
// asserted by the accompanying tests.
func RunFig3a(cfg Fig3aConfig) (*Result, error) {
	if cfg.MinN < 10 || cfg.MaxN < cfg.MinN || cfg.Cycles < 1 || cfg.Reps < 1 {
		return nil, fmt.Errorf("experiments: invalid fig3a config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.MaxN, cfg.Reps)
	if err != nil {
		return nil, err
	}
	sizes := logGrid(cfg.MinN, cfg.MaxN)
	specs := StandardTopologies(cfg.Degree, cfg.NewscastC)
	result := &Result{
		ID:     "fig3a",
		Title:  "Average convergence factor over 20 cycles vs network size",
		XLabel: "network size",
		YLabel: "convergence factor",
		Engine: eng.name,
	}
	for _, spec := range specs {
		series := Series{Label: spec.Name, Points: make([]Point, 0, len(sizes))}
		for si, n := range sizes {
			// Fewer reps at the largest sizes keeps full-scale runs
			// tractable; the factor's variance shrinks with N anyway.
			reps := cfg.Reps
			if n >= 300000 && reps > 3 {
				reps = 3
			}
			seed := cfg.Seed ^ (uint64(si+1) << 8) ^ hashLabel(spec.Name)
			vals, err := repValues(reps, seed, func(_ int, s uint64) (float64, error) {
				return measureConvergenceFactor(eng, n, cfg.Cycles, s, spec, 0)
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig3a %s n=%d: %w", spec.Name, n, err)
			}
			series.Points = append(series.Points, summarize(float64(n), vals))
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// Fig3bConfig parameterizes Figure 3(b): normalized variance reduction
// per cycle at fixed network size for the same eight topologies.
type Fig3bConfig struct {
	// N is the network size (paper: 10⁵).
	N int
	// Degree of the static overlays (paper: 20).
	Degree int
	// NewscastC is the NEWSCAST cache size.
	NewscastC int
	// Cycles to run (paper: 50).
	Cycles int
	// Reps per topology.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig3b returns the paper's parameters.
func DefaultFig3b() Fig3bConfig {
	return Fig3bConfig{N: 100000, Degree: 20, NewscastC: 30, Cycles: 50, Reps: 10, Seed: 4}
}

// RunFig3b regenerates Figure 3(b): per topology, the variance of the
// estimates normalized by the initial variance, cycle by cycle (geometric
// decay appears as a straight line on the paper's log plot).
func RunFig3b(cfg Fig3bConfig) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || cfg.Reps < 1 {
		return nil, fmt.Errorf("experiments: invalid fig3b config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	specs := StandardTopologies(cfg.Degree, cfg.NewscastC)
	result := &Result{
		ID:     "fig3b",
		Title:  "Variance reduction normalized by initial variance",
		XLabel: "cycle",
		YLabel: "sigma^2_i / sigma^2_0",
		Engine: eng.name,
	}
	for _, spec := range specs {
		reductions := make([][]float64, cfg.Reps)
		seed := cfg.Seed ^ hashLabel(spec.Name)
		err := sim.ParallelReps(cfg.Reps, seed, func(rep int, s uint64) error {
			var tracker stats.ConvergenceTracker
			_, err := eng.run(coreConfig{
				N:        cfg.N,
				Cycles:   cfg.Cycles,
				Seed:     s,
				Fn:       core.Average,
				Init:     sim.UniformInit(0, 1, s^0x5eed),
				Topology: spec,
				Observe: func(_ int, e sim.Core) {
					m := e.ParticipantMoments()
					tracker.Record(m.Variance())
				},
			})
			if err != nil {
				return err
			}
			reductions[rep] = tracker.NormalizedReduction()
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3b %s: %w", spec.Name, err)
		}
		series := Series{Label: spec.Name, Points: make([]Point, 0, cfg.Cycles+1)}
		perRep := make([]float64, cfg.Reps)
		for c := 0; c <= cfg.Cycles; c++ {
			for rep := range reductions {
				perRep[rep] = reductions[rep][c]
			}
			series.Points = append(series.Points, summarize(float64(c), perRep))
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// hashLabel derives a seed perturbation from a series label so that each
// topology family uses an independent random stream.
func hashLabel(label string) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}
