package experiments

import (
	"testing"
)

func ablationTestConfig() AblationConfig {
	return AblationConfig{N: 1500, Cycles: 25, Reps: 3, Seed: 31}
}

func TestAblationPushPull(t *testing.T) {
	res, err := RunAblationPushPull(ablationTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	pp, err := res.SeriesByLabel("push-pull")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := res.SeriesByLabel("push-sum")
	if err != nil {
		t.Fatal(err)
	}
	po, err := res.SeriesByLabel("push-only")
	if err != nil {
		t.Fatal(err)
	}
	// Loss-free: push-pull and push-sum are exact (error ~ 0); push-only
	// drifts.
	if pp.Points[0].Mean > 1e-9 {
		t.Errorf("loss-free push-pull error %g", pp.Points[0].Mean)
	}
	// Push-sum diffuses more slowly, so after the same number of rounds a
	// small residual spread remains.
	if ps.Points[0].Mean > 1e-4 {
		t.Errorf("loss-free push-sum error %g", ps.Points[0].Mean)
	}
	if po.Points[0].Mean < 1e-9 {
		t.Errorf("loss-free push-only error suspiciously zero")
	}
	// Under 30% loss every protocol degrades (error > loss-free case).
	last := len(pp.Points) - 1
	if pp.Points[last].Mean <= pp.Points[0].Mean {
		t.Errorf("push-pull error did not grow under loss")
	}
}

func TestAblationCombiner(t *testing.T) {
	res, err := RunAblationCombiner(ablationTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := res.SeriesByLabel("trimmed mean (paper)")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := res.SeriesByLabel("plain mean")
	if err != nil {
		t.Fatal(err)
	}
	// Averaged over the sweep, trimming should never be much worse and
	// usually better. Assert it wins or ties (within noise) at the
	// largest t.
	last := len(trimmed.Points) - 1
	if trimmed.Points[last].Mean > plain.Points[last].Mean*1.6+0.01 {
		t.Errorf("trimmed error %.4f much worse than plain %.4f",
			trimmed.Points[last].Mean, plain.Points[last].Mean)
	}
}

func TestAblationPeerSelection(t *testing.T) {
	res, err := RunAblationPeerSelection(ablationTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	rho := func(label string) float64 {
		s, err := res.SeriesByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		return s.Points[0].Mean
	}
	uniform := rho("uniform random (ideal)")
	fresh := rho("newscast c=30 (fresh)")
	// Fresh NEWSCAST must track the uniform ideal closely.
	if fresh > uniform+0.05 {
		t.Errorf("fresh newscast rho %.3f far above uniform %.3f", fresh, uniform)
	}
	// A tiny cache is measurably worse than the ideal.
	if small := rho("newscast c=5 (fresh)"); small <= uniform+0.01 {
		t.Errorf("c=5 rho %.3f not worse than uniform %.3f", small, uniform)
	}
}
