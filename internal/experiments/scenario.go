package experiments

import (
	"fmt"

	"antientropy/internal/scenario"
	"antientropy/internal/sim"
)

// ScenarioFigConfig parameterizes a figure regenerated through the
// declarative scenario engine instead of a hand-rolled sweep: the figure
// 6b/8a-style failure regimes are re-expressed as canned scenarios and
// their per-cycle metric stream becomes the plotted series.
type ScenarioFigConfig struct {
	// Scenario is the canned scenario name.
	Scenario string
	// N overrides the scenario's network size (0 keeps it).
	N int
	// Reps is the number of independent repetitions.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine (auto resolves against the
	// scenario's effective network size).
	EngineSel
}

// DefaultScenarioFig returns laptop-scale defaults for the given canned
// scenario.
func DefaultScenarioFig(name string) ScenarioFigConfig {
	return ScenarioFigConfig{Scenario: name, Reps: 5, Seed: 21}
}

// RunScenarioFig executes the scenario Reps times on the simulator
// executor and aggregates three per-cycle series: the relative estimate
// error, the estimate spread, and the live-node fraction. It is the
// scenario-engine re-expression of the paper's trajectory figures — the
// same churn regime as Figure 6(b)/8(a) plotted from the generic engine
// rather than a bespoke experiment loop.
func RunScenarioFig(cfg ScenarioFigConfig) (*Result, error) {
	if cfg.Reps < 1 {
		return nil, fmt.Errorf("experiments: invalid scenario figure config %+v", cfg)
	}
	sc, err := scenario.ByName(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if cfg.N > 0 {
		sc.N = cfg.N
	}
	// The sweepEngine already pins Workers to 1 for multi-rep runs:
	// ParallelReps spreads the repetitions across the cores, and sharding
	// still changes the execution (deterministic per shard count) without
	// engine-level goroutines oversubscribing the CPU.
	eng, err := cfg.EngineSel.resolve(sc.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	runs := make([]*scenario.RunResult, cfg.Reps)
	err = sim.ParallelReps(cfg.Reps, cfg.Seed, func(rep int, seed uint64) error {
		s := sc
		s.Seed = seed
		res, err := scenario.RunSimWith(s, scenario.SimOptions{
			Engine: eng.name, Shards: eng.shards, Workers: eng.workers,
		})
		if err != nil {
			return err
		}
		runs[rep] = res
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: scenario %s: %w", cfg.Scenario, err)
	}
	cycles := len(runs[0].PerCycle)
	relErr := Series{Label: "rel error"}
	spread := Series{Label: "estimate stddev"}
	alive := Series{Label: "live fraction"}
	for c := 0; c < cycles; c++ {
		var errs, stds, fracs []float64
		for _, r := range runs {
			m := r.PerCycle[c]
			errs = append(errs, m.RelError)
			stds = append(stds, m.EstimateStdDev)
			fracs = append(fracs, float64(m.Alive)/float64(r.N))
		}
		x := float64(c)
		relErr.Points = append(relErr.Points, summarize(x, errs))
		spread.Points = append(spread.Points, summarize(x, stds))
		alive.Points = append(alive.Points, summarize(x, fracs))
	}
	return &Result{
		ID:     "scenario-" + cfg.Scenario,
		Title:  fmt.Sprintf("Scenario %q on the sim executor (%s)", cfg.Scenario, sc.Description),
		XLabel: "cycle",
		YLabel: "rel error / stddev / live fraction",
		Engine: eng.name,
		Series: []Series{relErr, spread, alive},
	}, nil
}
