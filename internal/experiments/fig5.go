package experiments

import (
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
	"antientropy/internal/theory"
)

// Fig5Config parameterizes Figure 5: the variance of the mean estimate
// µ₂₀ under per-cycle proportional crashes, against Theorem 1.
type Fig5Config struct {
	// N is the network size (paper: 10⁵).
	N int
	// Degree of the static overlay used for the "fully connected"
	// comparison point is irrelevant (complete graph); NewscastC
	// configures the NEWSCAST series (paper: 30).
	NewscastC int
	// Cycle at which µ is measured (paper: 20).
	Cycle int
	// PfSteps grid points over [0, MaxPf].
	PfSteps int
	// MaxPf is the largest crash proportion (paper: 0.3).
	MaxPf float64
	// Reps per point (paper: 100).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig5 returns the paper's parameters.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		N: 100000, NewscastC: 30, Cycle: 20,
		PfSteps: 7, MaxPf: 0.3, Reps: 100, Seed: 7,
	}
}

// RunFig5 regenerates Figure 5: three series — empirical
// Var(µ₂₀)/E(σ²₀) on the fully connected topology, on NEWSCAST, and the
// Theorem 1 prediction with ρ = 1/(2√e). The initial distribution is the
// paper's peak distribution.
func RunFig5(cfg Fig5Config) (*Result, error) {
	if cfg.N < 10 || cfg.Cycle < 1 || cfg.PfSteps < 2 || cfg.Reps < 2 ||
		cfg.MaxPf < 0 || cfg.MaxPf >= 1 {
		return nil, fmt.Errorf("experiments: invalid fig5 config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	// "Fully connected" means full knowledge of the *current* membership:
	// crashed nodes are no longer anyone's neighbors. A static complete
	// graph would keep timing out against the dead and stall convergence,
	// which the paper's model excludes.
	fullyConnected := CompleteLiveTopology()
	fullyConnected.Name = "fully connected topology"
	newscast := NewscastTopology(cfg.NewscastC)
	newscast.Name = "newscast"
	specs := []TopologySpec{fullyConnected, newscast}
	result := &Result{
		ID:     "fig5",
		Title:  "Effects of node crashes on the variance of AVERAGE at cycle 20",
		XLabel: "Pf",
		YLabel: "Var(mu_20) / E(sigma^2_0)",
		Engine: eng.name,
	}
	// σ²₀ of the peak distribution {N, 0, …, 0} is exactly N (unbiased).
	sigma0 := float64(cfg.N)
	for _, spec := range specs {
		series := Series{Label: spec.Name, Points: make([]Point, 0, cfg.PfSteps)}
		for step := 0; step < cfg.PfSteps; step++ {
			pf := cfg.MaxPf * float64(step) / float64(cfg.PfSteps-1)
			seed := cfg.Seed ^ hashLabel(spec.Name) ^ (uint64(step+1) << 24)
			mus, err := repValues(cfg.Reps, seed, func(_ int, s uint64) (float64, error) {
				var failures []sim.FailureModel
				if pf > 0 {
					failures = append(failures, sim.CrashFraction{P: pf})
				}
				e, err := eng.run(coreConfig{
					N:        cfg.N,
					Cycles:   cfg.Cycle,
					Seed:     s,
					Fn:       core.Average,
					Init:     sim.PeakInit(float64(cfg.N), 0),
					Topology: spec,
					Failures: failures,
				})
				if err != nil {
					return 0, err
				}
				return e.ParticipantMoments().Mean(), nil
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig5 %s pf=%g: %w", spec.Name, pf, err)
			}
			muVar, err := stats.Variance(mus)
			if err != nil {
				return nil, err
			}
			p := summarize(pf, mus)
			p.Mean = muVar / sigma0
			p.Min, p.Max = p.Mean, p.Mean
			series.Points = append(series.Points, p)
		}
		result.Series = append(result.Series, series)
	}
	// Theorem 1 prediction.
	pred := Series{Label: "predicted", Points: make([]Point, 0, cfg.PfSteps)}
	for step := 0; step < cfg.PfSteps; step++ {
		pf := cfg.MaxPf * float64(step) / float64(cfg.PfSteps-1)
		v, err := theory.CrashVariance(pf, cfg.N, sigma0, theory.RhoPushPull, cfg.Cycle)
		if err != nil {
			return nil, err
		}
		norm := v / sigma0
		pred.Points = append(pred.Points, Point{X: pf, Mean: norm, Min: norm, Max: norm, Reps: 0})
	}
	result.Series = append(result.Series, pred)
	return result, nil
}
