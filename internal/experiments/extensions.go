package experiments

import (
	"fmt"
	"math"

	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/theory"
)

// ExtensionConfig parameterizes the extension experiments: behaviours the
// paper claims in prose (§4.1 adaptivity, §5 epidemic MIN/MAX) but does
// not plot.
type ExtensionConfig struct {
	// N is the network size.
	N int
	// Reps per point.
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultExtension returns laptop-scale defaults.
func DefaultExtension() ExtensionConfig {
	return ExtensionConfig{N: 10000, Reps: 10, Seed: 41}
}

func (c ExtensionConfig) validate() error {
	if c.N < 10 || c.Reps < 1 {
		return fmt.Errorf("experiments: invalid extension config %+v", c)
	}
	return nil
}

// RunExtensionAdaptivity demonstrates §4.1: the epoch-restart scheme
// makes the output track a drifting signal with one-epoch lag. The
// global average follows a ramp; the experiment reports, per epoch, the
// relative error between the epoch output and the epoch's true average.
func RunExtensionAdaptivity(cfg ExtensionConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := NewscastTopology(30)
	const epochs = 8
	errSeries := make([][]float64, cfg.Reps)
	err = sim.ParallelReps(cfg.Reps, cfg.Seed, func(rep int, seed uint64) error {
		results, err := sim.RunEpochChain(sim.EpochChainConfig{
			N:      cfg.N,
			Epochs: epochs,
			Gamma:  30,
			Seed:   seed,
			// The environment ramps by 50% per epoch plus a per-node
			// component, so every epoch has a fresh target.
			ValueAt: func(epoch, node int) float64 {
				base := 100 * math.Pow(1.5, float64(epoch))
				return base + float64(node%100)
			},
			Overlay: topo.Overlay,
			Runner:  eng.runner(topo),
		})
		if err != nil {
			return err
		}
		es := make([]float64, 0, epochs)
		for _, r := range results {
			es = append(es, math.Abs(r.Outputs.Mean()-r.TrueAverage)/r.TrueAverage)
		}
		errSeries[rep] = es
		return nil
	})
	if err != nil {
		return nil, err
	}
	series := Series{Label: "relative error per epoch", Points: make([]Point, 0, epochs)}
	perRep := make([]float64, cfg.Reps)
	for e := 0; e < epochs; e++ {
		for rep := range errSeries {
			perRep[rep] = errSeries[rep][e]
		}
		series.Points = append(series.Points, summarize(float64(e), perRep))
	}
	return &Result{
		ID:     "extension-adaptivity",
		Title:  "Automatic restart tracks a drifting global average (§4.1)",
		XLabel: "epoch",
		YLabel: "relative error of the epoch output",
		Engine: eng.name,
		Series: []Series{series},
	}, nil
}

// RunExtensionCountChain demonstrates the full §5 COUNT lifecycle: the
// P_lead = C/N̂ election is fed by the previous epoch's estimate. The
// experiment starts from a deliberately wrong size guess (N̂₀ = 2) and
// reports, per epoch, the mean size estimate and the number of leaders
// elected — the estimate must lock onto N after the first epoch and the
// leader count must settle near C.
func RunExtensionCountChain(cfg ExtensionConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := NewscastTopology(30)
	const epochs = 6
	const concurrency = 8
	estSeries := make([][]float64, cfg.Reps)
	leadSeries := make([][]float64, cfg.Reps)
	err = sim.ParallelReps(cfg.Reps, cfg.Seed, func(rep int, seed uint64) error {
		results, err := sim.RunCountEpochChain(sim.CountChainConfig{
			N:            cfg.N,
			Epochs:       epochs,
			Gamma:        30,
			Seed:         seed,
			Concurrency:  concurrency,
			InitialGuess: 2, // deliberately wrong: forces the feedback loop to correct it
			Overlay:      topo.Overlay,
			Runner:       eng.runner(topo),
		})
		if err != nil {
			return err
		}
		es := make([]float64, 0, epochs)
		ls := make([]float64, 0, epochs)
		for _, r := range results {
			if r.Outputs.N() > 0 {
				es = append(es, r.Outputs.Mean())
			} else {
				es = append(es, math.NaN()) // leaderless epoch
			}
			ls = append(ls, float64(r.LeadersElected))
		}
		estSeries[rep] = es
		leadSeries[rep] = ls
		return nil
	})
	if err != nil {
		return nil, err
	}
	estimates := Series{Label: "size estimate", Points: make([]Point, 0, epochs)}
	leaders := Series{Label: "leaders elected", Points: make([]Point, 0, epochs)}
	perRep := make([]float64, cfg.Reps)
	for e := 0; e < epochs; e++ {
		for rep := range estSeries {
			perRep[rep] = estSeries[rep][e]
		}
		estimates.Points = append(estimates.Points, summarize(float64(e), perRep))
		for rep := range leadSeries {
			perRep[rep] = leadSeries[rep][e]
		}
		leaders.Points = append(leaders.Points, summarize(float64(e), perRep))
	}
	return &Result{
		ID:     "extension-countchain",
		Title:  "COUNT lifecycle: P_lead = C/N-hat feedback across epochs (§5)",
		XLabel: "epoch",
		YLabel: "size estimate / leaders elected",
		Engine: eng.name,
		Series: []Series{estimates, leaders},
	}, nil
}

// RunExtensionMinMax demonstrates §5: MIN/MAX spread like an epidemic
// broadcast — the number of cycles to full propagation grows
// logarithmically in N and stays under the Pittel push-gossip bound.
func RunExtensionMinMax(cfg ExtensionConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := RandomTopology(20)
	sizes := logGrid(100, cfg.N)
	measured := Series{Label: "cycles to full MIN propagation", Points: make([]Point, 0, len(sizes))}
	bound := Series{Label: "Pittel push bound", Points: make([]Point, 0, len(sizes))}
	for si, n := range sizes {
		seed := cfg.Seed ^ (uint64(si+1) << 10)
		vals, err := repValues(cfg.Reps, seed, func(_ int, s uint64) (float64, error) {
			e, err := eng.start(coreConfig{
				N:      n,
				Cycles: 10 * 64, // safety margin; we stop early below
				Seed:   s,
				Fn:     core.Min,
				// Node 0 holds the unique minimum.
				Init:     func(node int) float64 { return float64(1 + node) },
				Topology: topo,
			})
			if err != nil {
				return 0, err
			}
			for cycle := 1; cycle <= 640; cycle++ {
				e.Step()
				m := e.ParticipantMoments()
				if m.Max() == 1 { // everyone has the minimum
					return float64(cycle), nil
				}
			}
			return 0, fmt.Errorf("experiments: MIN did not propagate in 640 cycles at n=%d", n)
		})
		if err != nil {
			return nil, err
		}
		measured.Points = append(measured.Points, summarize(float64(n), vals))
		b := theory.EpidemicRoundsBound(n)
		bound.Points = append(bound.Points, Point{X: float64(n), Mean: b, Min: b, Max: b})
	}
	return &Result{
		ID:     "extension-minmax",
		Title:  "MIN spreads as an epidemic broadcast (§5)",
		XLabel: "network size",
		YLabel: "cycles to full propagation",
		Engine: eng.name,
		Series: []Series{measured, bound},
	}, nil
}
