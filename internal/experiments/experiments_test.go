package experiments

import (
	"math"
	"strings"
	"testing"

	"antientropy/internal/theory"
)

// Test scale: big enough for statistical shape, small enough for CI.
const (
	testN    = 2000
	testReps = 3
)

func TestFig2Shape(t *testing.T) {
	cfg := DefaultFig2()
	cfg.N, cfg.Reps = testN, testReps
	res, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minS, err := res.SeriesByLabel("Minimum")
	if err != nil {
		t.Fatal(err)
	}
	maxS, err := res.SeriesByLabel("Maximum")
	if err != nil {
		t.Fatal(err)
	}
	if len(minS.Points) != cfg.Cycles+1 || len(maxS.Points) != cfg.Cycles+1 {
		t.Fatalf("series lengths %d/%d, want %d", len(minS.Points), len(maxS.Points), cfg.Cycles+1)
	}
	// Cycle 0: min 0, max N (the peak).
	if minS.Points[0].Mean != 0 {
		t.Errorf("initial min = %g", minS.Points[0].Mean)
	}
	if maxS.Points[0].Mean != float64(cfg.N) {
		t.Errorf("initial max = %g", maxS.Points[0].Mean)
	}
	// Final cycle: both envelopes at the true average 1 within 1%.
	last := cfg.Cycles
	if math.Abs(minS.Points[last].Mean-1) > 0.01 || math.Abs(maxS.Points[last].Mean-1) > 0.01 {
		t.Errorf("envelopes did not converge to 1: min %g max %g",
			minS.Points[last].Mean, maxS.Points[last].Mean)
	}
	// Max must be non-increasing and min non-decreasing (monotone closing
	// envelopes).
	for c := 1; c <= last; c++ {
		if maxS.Points[c].Mean > maxS.Points[c-1].Mean*(1+1e-9) {
			t.Fatalf("max envelope grew at cycle %d", c)
		}
		if minS.Points[c].Mean < minS.Points[c-1].Mean-1e-9 {
			t.Fatalf("min envelope shrank at cycle %d", c)
		}
	}
}

func TestFig3aShape(t *testing.T) {
	cfg := DefaultFig3a()
	cfg.MinN, cfg.MaxN, cfg.Reps, cfg.Cycles = 100, 1000, testReps, 15
	res, err := RunFig3a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 8 {
		t.Fatalf("%d series, want 8 topologies", len(res.Series))
	}
	// Shape 1: random/complete/scale-free/newscast near the theory value
	// at every size; W-S(0) way above.
	for _, label := range []string{"Random", "Complete", "Newscast"} {
		s, err := res.SeriesByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range s.Points {
			if math.Abs(p.Mean-theory.RhoPushPull) > 0.06 {
				t.Errorf("%s at n=%g: rho %.3f, want ≈ %.3f", label, p.X, p.Mean, theory.RhoPushPull)
			}
		}
	}
	ws0, err := res.SeriesByLabel("W-S (beta=0.00)")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ws0.Points {
		if p.Mean < 0.5 {
			t.Errorf("W-S(0) at n=%g: rho %.3f suspiciously good", p.X, p.Mean)
		}
	}
	// Shape 2: size independence — for the random topology the factor at
	// the smallest and largest size differ by little.
	rand, _ := res.SeriesByLabel("Random")
	first, last := rand.Points[0].Mean, rand.Points[len(rand.Points)-1].Mean
	if math.Abs(first-last) > 0.08 {
		t.Errorf("convergence factor not size-independent: %.3f vs %.3f", first, last)
	}
	// Shape 3: more rewiring converges faster (ordering of W-S curves).
	rhoAt := func(label string) float64 {
		s, err := res.SeriesByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		return s.Points[len(s.Points)-1].Mean
	}
	if !(rhoAt("W-S (beta=0.00)") > rhoAt("W-S (beta=0.25)") &&
		rhoAt("W-S (beta=0.25)") > rhoAt("W-S (beta=0.50)") &&
		rhoAt("W-S (beta=0.50)") > rhoAt("W-S (beta=0.75)")) {
		t.Errorf("W-S ordering violated: %.3f, %.3f, %.3f, %.3f",
			rhoAt("W-S (beta=0.00)"), rhoAt("W-S (beta=0.25)"),
			rhoAt("W-S (beta=0.50)"), rhoAt("W-S (beta=0.75)"))
	}
}

func TestFig3bShape(t *testing.T) {
	cfg := DefaultFig3b()
	cfg.N, cfg.Reps, cfg.Cycles = testN, testReps, 20
	res, err := RunFig3b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized variance starts at 1 and decays monotonically (modulo
	// tiny noise) for every topology; random reaches below 1e-8 by cycle
	// 20 while W-S(0) stays orders of magnitude higher.
	for _, s := range res.Series {
		if math.Abs(s.Points[0].Mean-1) > 1e-9 {
			t.Errorf("%s: initial normalized variance %g != 1", s.Label, s.Points[0].Mean)
		}
		if s.Points[len(s.Points)-1].Mean > s.Points[0].Mean {
			t.Errorf("%s: variance grew", s.Label)
		}
	}
	rand, err := res.SeriesByLabel("Random")
	if err != nil {
		t.Fatal(err)
	}
	if final := rand.Points[len(rand.Points)-1].Mean; final > 1e-8 {
		t.Errorf("random topology reduction after 20 cycles = %g, want < 1e-8", final)
	}
	ws0, err := res.SeriesByLabel("W-S (beta=0.00)")
	if err != nil {
		t.Fatal(err)
	}
	if final := ws0.Points[len(ws0.Points)-1].Mean; final < 1e-6 {
		t.Errorf("lattice reduced variance implausibly fast: %g", final)
	}
}

func TestFig4aShape(t *testing.T) {
	cfg := DefaultFig4a()
	cfg.N, cfg.Reps, cfg.BetaSteps, cfg.Cycles = testN, testReps, 5, 15
	res, err := RunFig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// Overall trend: rho at beta=0 clearly above rho at beta=1; no point
	// below the theoretical floor.
	if pts[0].Mean <= pts[len(pts)-1].Mean+0.1 {
		t.Errorf("no improvement from rewiring: %.3f -> %.3f", pts[0].Mean, pts[len(pts)-1].Mean)
	}
	for _, p := range pts {
		if p.Mean < theory.RhoPushPull-0.05 {
			t.Errorf("beta=%g: rho %.3f below theoretical floor", p.X, p.Mean)
		}
	}
}

func TestFig4bShape(t *testing.T) {
	cfg := DefaultFig4b()
	cfg.N, cfg.Reps, cfg.Cycles = testN, testReps, 15
	cfg.CacheSizes = []int{2, 5, 30}
	res, err := RunFig4b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	// c=2 clearly worse than c=30; c=30 near theory.
	if pts[0].Mean <= pts[2].Mean+0.02 {
		t.Errorf("c=2 (%.3f) not worse than c=30 (%.3f)", pts[0].Mean, pts[2].Mean)
	}
	if math.Abs(pts[2].Mean-theory.RhoPushPull) > 0.05 {
		t.Errorf("c=30 rho = %.3f, want ≈ %.3f", pts[2].Mean, theory.RhoPushPull)
	}
}

func TestFig5MatchesTheorem1(t *testing.T) {
	cfg := DefaultFig5()
	cfg.N, cfg.Reps, cfg.PfSteps = testN, 60, 4
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := res.SeriesByLabel("fully connected topology")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := res.SeriesByLabel("predicted")
	if err != nil {
		t.Fatal(err)
	}
	// At Pf = 0 both are 0; at the largest Pf the empirical normalized
	// variance must be within a factor ~3 of Theorem 1 (it is a variance
	// estimate from 60 samples — generous band, still catches e.g. a
	// missing (1-Pf)^i term, which would change it by orders of
	// magnitude).
	if emp.Points[0].Mean > 1e-12 {
		t.Errorf("empirical variance at Pf=0 is %g", emp.Points[0].Mean)
	}
	lastE, lastP := emp.Points[len(emp.Points)-1], pred.Points[len(pred.Points)-1]
	if lastP.Mean <= 0 {
		t.Fatalf("prediction at max Pf = %g", lastP.Mean)
	}
	ratio := lastE.Mean / lastP.Mean
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("empirical/predicted = %.2f at Pf=%.2f (emp %.3g, pred %.3g)",
			ratio, lastE.X, lastE.Mean, lastP.Mean)
	}
	// Variance grows with Pf.
	if emp.Points[len(emp.Points)-1].Mean <= emp.Points[1].Mean {
		t.Errorf("empirical variance not increasing with Pf")
	}
}

func TestFig6aShape(t *testing.T) {
	cfg := DefaultFig6a()
	cfg.N, cfg.Reps, cfg.MaxCycle = testN, testReps, 16
	res, err := RunFig6a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	// Late sudden death (cycle 16 of 30): estimate ≈ N within a few
	// percent.
	last := pts[len(pts)-1]
	if math.Abs(last.Mean-float64(cfg.N))/float64(cfg.N) > 0.05 {
		t.Errorf("late death estimate %g, want ≈ %d", last.Mean, cfg.N)
	}
	// Early death must disturb the estimate far more than late death
	// (often upward by a lot — mass holders die).
	early := pts[1]
	lateErr := math.Abs(last.Mean - float64(cfg.N))
	earlyErr := math.Abs(early.Mean - float64(cfg.N))
	if earlyErr <= lateErr {
		t.Errorf("early death (err %g) not worse than late (err %g)", earlyErr, lateErr)
	}
}

func TestFig6bShape(t *testing.T) {
	cfg := DefaultFig6b()
	cfg.N, cfg.Reps, cfg.Steps = testN, testReps, 3
	cfg.MaxSubstitution = testN / 40 // paper proportion: 2.5% per cycle
	res, err := RunFig6b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	// No churn: estimate exact. Heavy churn: mean still within ~25% of N
	// (paper: "most of the estimates are included in a reasonable
	// range").
	if math.Abs(pts[0].Mean-float64(cfg.N)) > 1 {
		t.Errorf("churn-free estimate %g", pts[0].Mean)
	}
	heavy := pts[len(pts)-1]
	if heavy.Reps == 0 {
		t.Fatal("no finite estimates under churn")
	}
	if math.Abs(heavy.Mean-float64(cfg.N))/float64(cfg.N) > 0.25 {
		t.Errorf("heavy churn estimate %g, want within 25%% of %d", heavy.Mean, cfg.N)
	}
}

func TestFig7aShape(t *testing.T) {
	cfg := DefaultFig7a()
	cfg.N, cfg.Reps, cfg.PdSteps, cfg.MaxPd = testN, testReps, 4, 0.75
	res, err := RunFig7a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := res.SeriesByLabel("Average Convergence Factor")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.SeriesByLabel("Theoretical Upper Bound")
	if err != nil {
		t.Fatal(err)
	}
	// Monotone degradation with Pd, always at or below the bound (small
	// statistical slack).
	for i := 1; i < len(meas.Points); i++ {
		if meas.Points[i].Mean <= meas.Points[i-1].Mean-0.02 {
			t.Errorf("factor not increasing at Pd=%g", meas.Points[i].X)
		}
	}
	for i, p := range meas.Points {
		if p.Mean > bound.Points[i].Mean+0.04 {
			t.Errorf("Pd=%g: measured %.3f above bound %.3f", p.X, p.Mean, bound.Points[i].Mean)
		}
	}
}

func TestFig7bShape(t *testing.T) {
	cfg := DefaultFig7b()
	cfg.N, cfg.Reps, cfg.LossSteps = testN, testReps, 3
	res, err := RunFig7b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxS, err := res.SeriesByLabel("Max values")
	if err != nil {
		t.Fatal(err)
	}
	minS, err := res.SeriesByLabel("Min values")
	if err != nil {
		t.Fatal(err)
	}
	// No loss: both envelopes ≈ N. Half the messages lost: spread over
	// at least an order of magnitude (paper: "several orders").
	if math.Abs(maxS.Points[0].Mean-float64(cfg.N))/float64(cfg.N) > 0.02 {
		t.Errorf("loss-free max %g", maxS.Points[0].Mean)
	}
	lastMax, lastMin := maxS.Points[len(maxS.Points)-1], minS.Points[len(minS.Points)-1]
	if lastMin.Reps > 0 && lastMax.Reps > 0 && lastMax.Mean/lastMin.Mean < 10 {
		t.Errorf("at 50%% loss max/min = %.1f, want ≥ 10", lastMax.Mean/lastMin.Mean)
	}
}

func TestFig8TightensWithInstances(t *testing.T) {
	cfg := DefaultFig8b()
	cfg.N, cfg.Reps = testN, testReps
	cfg.Instances = []int{1, 20}
	res, err := RunFig8b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxS, err := res.SeriesByLabel("Max")
	if err != nil {
		t.Fatal(err)
	}
	minS, err := res.SeriesByLabel("Min")
	if err != nil {
		t.Fatal(err)
	}
	spread := func(i int) float64 {
		if minS.Points[i].Mean <= 0 {
			return math.Inf(1)
		}
		return maxS.Points[i].Mean / minS.Points[i].Mean
	}
	if spread(1) >= spread(0) {
		t.Errorf("t=20 spread %.2f not tighter than t=1 spread %.2f", spread(1), spread(0))
	}
	// With 20 instances the envelopes should be within ~50% of N.
	n := float64(cfg.N)
	if maxS.Points[1].Mean > 1.5*n || minS.Points[1].Mean < 0.5*n {
		t.Errorf("t=20 envelopes [%g, %g] too loose around %g",
			minS.Points[1].Mean, maxS.Points[1].Mean, n)
	}
}

func TestFig8aChurn(t *testing.T) {
	cfg := DefaultFig8a()
	cfg.N, cfg.Reps = testN, testReps
	cfg.ChurnPerCycle = testN / 100
	cfg.Instances = []int{10}
	res, err := RunFig8a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxS, _ := res.SeriesByLabel("Max")
	minS, _ := res.SeriesByLabel("Min")
	n := float64(cfg.N)
	if maxS.Points[0].Mean > 1.5*n || minS.Points[0].Mean < 0.6*n {
		t.Errorf("churned t=10 envelopes [%g, %g] around %g",
			minS.Points[0].Mean, maxS.Points[0].Mean, n)
	}
}

func TestResultFormatting(t *testing.T) {
	res := &Result{
		ID: "figX", Title: "Test", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", Points: []Point{{X: 1, Mean: 2, Min: 1.5, Max: 2.5, Reps: 3}}}},
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	if !strings.Contains(csv, "figure,series,x,mean,min,max,reps") ||
		!strings.Contains(csv, "figX,s,1,2,1.5,2.5,3") {
		t.Errorf("CSV output wrong:\n%s", csv)
	}
	text := res.String()
	if !strings.Contains(text, "figX") || !strings.Contains(text, "[s]") {
		t.Errorf("text output wrong:\n%s", text)
	}
	if _, err := res.SeriesByLabel("missing"); err == nil {
		t.Error("missing series lookup succeeded")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	wantIDs := []string{
		"ablation-combiner", "ablation-peer-selection", "ablation-pushpull",
		"advbias-inject-extreme", "advbias-sybil-flood",
		"extension-adaptivity", "extension-countchain", "extension-minmax",
		"fig2", "fig3a", "fig3b", "fig4a", "fig4b", "fig5",
		"fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b",
		"scenario-partition-heal", "scenario-steady-churn",
	}
	if len(reg) != len(wantIDs) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(wantIDs))
	}
	for i, want := range wantIDs {
		if reg[i].ID != want {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, want)
		}
		if reg[i].Description == "" || reg[i].Run == nil {
			t.Errorf("registry entry %s incomplete", reg[i].ID)
		}
	}
	if _, err := Lookup("fig2"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown lookup succeeded")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	if _, err := RunFig2(Fig2Config{}); err == nil {
		t.Error("empty fig2 config accepted")
	}
	if _, err := RunFig3a(Fig3aConfig{}); err == nil {
		t.Error("empty fig3a config accepted")
	}
	if _, err := RunFig3b(Fig3bConfig{}); err == nil {
		t.Error("empty fig3b config accepted")
	}
	if _, err := RunFig4a(Fig4aConfig{}); err == nil {
		t.Error("empty fig4a config accepted")
	}
	if _, err := RunFig4b(Fig4bConfig{}); err == nil {
		t.Error("empty fig4b config accepted")
	}
	if _, err := RunFig5(Fig5Config{}); err == nil {
		t.Error("empty fig5 config accepted")
	}
	if _, err := RunFig6a(Fig6aConfig{}); err == nil {
		t.Error("empty fig6a config accepted")
	}
	if _, err := RunFig6b(Fig6bConfig{}); err == nil {
		t.Error("empty fig6b config accepted")
	}
	if _, err := RunFig7a(Fig7aConfig{}); err == nil {
		t.Error("empty fig7a config accepted")
	}
	if _, err := RunFig7b(Fig7bConfig{}); err == nil {
		t.Error("empty fig7b config accepted")
	}
	if _, err := RunFig8a(Fig8Config{}); err == nil {
		t.Error("empty fig8 config accepted")
	}
	if _, err := RunAblationPushPull(AblationConfig{}); err == nil {
		t.Error("empty ablation config accepted")
	}
}

func TestLogGrid(t *testing.T) {
	got := logGrid(100, 10000)
	want := []int{100, 300, 1000, 3000, 10000}
	if len(got) != len(want) {
		t.Fatalf("logGrid = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logGrid = %v, want %v", got, want)
		}
	}
}

func TestLeadersForDistinct(t *testing.T) {
	leaders := leadersFor(100, 50, 7)
	seen := map[int]bool{}
	for _, l := range leaders {
		if l < 0 || l >= 100 || seen[l] {
			t.Fatalf("bad leader set %v", leaders)
		}
		seen[l] = true
	}
}
